// Package vacuumpack is the public API of the Vacuum Packing
// reproduction: hardware-detected program phases extracted into
// phase-specialized, relocated, optimizable code packages (Barnes, Merten,
// Nystrom, Hwu — MICRO 2002).
//
// The package is a thin facade over the implementation packages; the types
// it exposes are aliases, so values flow freely between the facade and the
// subsystem APIs for advanced use.
//
// A minimal end-to-end run:
//
//	bench, _ := vacuumpack.Benchmark("perl")
//	program := bench.Build(bench.Inputs[0])
//	outcome, err := vacuumpack.Run(vacuumpack.ScaledConfig(), program)
//	if err != nil { ... }
//	ev, err := outcome.Evaluate(vacuumpack.DefaultMachine(), 0)
//	fmt.Printf("coverage %.1f%% speedup %.3f\n", ev.Coverage*100, ev.Speedup)
//
// Hand-written programs enter through Assemble (see the assembly syntax in
// the asm package docs), synthetic SPEC-analogue workloads through
// Benchmark/Benchmarks, and programmatic construction through NewBuilder.
package vacuumpack

import (
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Program construction and inspection.
type (
	// Program is a structured VPIR program: functions of basic blocks.
	Program = prog.Program
	// Func is one function; Block one basic block.
	Func = prog.Func
	// Block is a basic block with an explicit terminator.
	Block = prog.Block
	// Builder constructs programs in Go code.
	Builder = prog.Builder
	// Image is a linearized (address-assigned) program.
	Image = prog.Image
)

// NewBuilder returns a builder over a fresh program.
func NewBuilder() *Builder { return prog.NewBuilder() }

// Assemble parses VPIR assembly into a verified program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// Disassemble renders a program in reassemblable VPIR assembly.
func Disassemble(p *Program) string { return asm.Disassemble(p) }

// Pipeline configuration and execution.
type (
	// Config gathers every pipeline knob; start from DefaultConfig or
	// ScaledConfig.
	Config = core.Config
	// Variant is one of the paper's four evaluation configurations.
	Variant = core.Variant
	// Outcome is a pipeline run's result: the packed program, the phase
	// database, regions, packages and profile statistics.
	Outcome = core.Outcome
	// Evaluation is the timed original-vs-packed comparison.
	Evaluation = core.Evaluation
)

// DefaultConfig returns the paper's configuration (Table 2 detector).
func DefaultConfig() Config { return core.DefaultConfig() }

// ScaledConfig returns the workload-scaled configuration the evaluation
// suite uses (see DESIGN.md for the scaling substitution).
func ScaledConfig() Config { return core.ScaledConfig() }

// Variants lists the four Figure 8/10 configurations in paper order.
func Variants() []Variant { return core.Variants() }

// Run executes the full Vacuum Packing pipeline on p: profile under the
// Hot Spot Detector, filter phases, identify regions, extract + link +
// optimize packages. p is mutated into the packed program; the Outcome
// carries a pristine clone for baselines. Run is a thin no-op-observer
// wrapper around RunObserved.
func Run(cfg Config, p *Program) (*Outcome, error) { return core.Run(cfg, p) }

// Sentinel pipeline failures, re-exported from core. Both are always
// wrapped with run detail, so match with errors.Is:
//
//	if errors.Is(err, vacuumpack.ErrNoPhases) { ... }
var (
	// ErrNoPhases: region identification left no usable phase (nothing
	// detected, or every detected phase was skipped).
	ErrNoPhases = core.ErrNoPhases
	// ErrNoPackages: package construction failed for every region.
	ErrNoPackages = core.ErrNoPackages
	// ErrVerifyFailed: the static verifier (Config.Verify) rejected a
	// pipeline stage's output; the chain carries the rule diagnostics.
	ErrVerifyFailed = core.ErrVerifyFailed
	// ErrStaleArtifact: a staged-pipeline artifact was applied to a
	// program whose image differs from the artifact's origin.
	ErrStaleArtifact = core.ErrStaleArtifact
)

// Staged pipeline API. The three stages behind Run are independently
// invokable and exchange typed, serializable artifacts (stable JSON
// codecs, content hashes) — the basis of persistent profiles and the
// vpackd continuous-optimization daemon:
//
//	img, _ := program.Linearize()
//	pa, err := vacuumpack.ProfileStage(cfg, img, nil)
//	ra, err := vacuumpack.RegionStage(cfg, img, pa)
//	set, err := vacuumpack.PackageStage(cfg, program, img, ra)
type (
	// ProfileArtifact is stage 1's output: the filtered phase database
	// plus profiling statistics, stamped with the image hash.
	ProfileArtifact = core.ProfileArtifact
	// RegionArtifact is stage 2's output: identified hot regions by
	// program-stable block IDs.
	RegionArtifact = core.RegionArtifact
	// PackageSet is stage 3's output: the packed program with its
	// installed, optimized packages, versionable and servable.
	PackageSet = core.PackageSet
)

// ProfileStage profiles img under the Hot Spot Detector (stage 1).
func ProfileStage(cfg Config, img *Image, obsFn func(*StepInfo)) (*ProfileArtifact, error) {
	return core.ProfileStage(cfg, img, obsFn)
}

// RegionStage selects phases and identifies hot regions (stage 2).
func RegionStage(cfg Config, img *Image, pa *ProfileArtifact) (*RegionArtifact, error) {
	return core.RegionStage(cfg, img, pa)
}

// PackageStage extracts, links and optimizes packages into p (stage 3).
func PackageStage(cfg Config, p *Program, img *Image, ra *RegionArtifact) (*PackageSet, error) {
	return core.PackageStage(cfg, p, img, ra)
}

// DecodeProfileArtifact, DecodeRegionArtifact and DecodePackageSet read
// artifacts previously written by their EncodeJSON methods.
var (
	DecodeProfileArtifact = core.DecodeProfileArtifact
	DecodeRegionArtifact  = core.DecodeRegionArtifact
	DecodePackageSet      = core.DecodePackageSet
)

// Observability. The pipeline reports stage-scoped spans, a typed event
// stream and counter/gauge metrics to an Observer; a Recorder collects
// them and exports a JSON Trace. The disabled path (Run, or RunObserved
// with NopObserver) costs nothing.
type (
	// Observer receives spans, events and metrics from a pipeline run.
	Observer = obs.Observer
	// Span is a handle to one open stage span.
	Span = obs.Span
	// Event is one typed pipeline occurrence (phase detected/filtered/
	// skipped, region grown, package built/linked, pass applied).
	Event = obs.Event
	// EventKind types the event stream.
	EventKind = obs.EventKind
	// Metrics is the exported counter/gauge registry.
	Metrics = obs.Metrics
	// Recorder is the collecting Observer implementation.
	Recorder = obs.Recorder
	// Trace is a recorder's exported, JSON-serializable form. (The
	// Dynamo-style trace-extraction baseline is TraceConfig/TraceResult.)
	Trace = obs.Trace
	// HistogramRecord is one exported histogram (log-spaced buckets
	// shared by every histogram; see obs.HistogramBounds).
	HistogramRecord = obs.HistogramRecord
	// TraceDiff compares two traces' stage wall times and counters
	// (vptrace diff's engine); build one with DiffTraces.
	TraceDiff = obs.Diff
	// TraceDiffOptions parameterizes DiffTraces.
	TraceDiffOptions = obs.DiffOptions
)

// NewRecorder returns an empty collecting observer.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// NopObserver returns the zero-cost disabled observer.
func NopObserver() Observer { return obs.Nop{} }

// DiffTraces compares two traces' per-stage wall-time totals and
// counters, flagging rows that regress past the threshold.
func DiffTraces(oldT, newT *Trace, opts TraceDiffOptions) *TraceDiff {
	return obs.DiffTraces(oldT, newT, opts)
}

// RunObserved is Run reporting every stage's spans, events and metrics to
// an observer:
//
//	rec := vacuumpack.NewRecorder()
//	outcome, err := vacuumpack.RunObserved(cfg, program, rec)
//	...
//	rec.Export().WriteJSON(os.Stdout)
func RunObserved(cfg Config, p *Program, o Observer) (*Outcome, error) {
	return core.RunObserved(cfg, p, o)
}

// Machine model.
type (
	// MachineConfig parameterizes the cycle-level EPIC timing model.
	MachineConfig = cpu.Config
	// TimingStats aggregates one timed run.
	TimingStats = cpu.TimingStats
	// Machine is the functional VPIR emulator.
	Machine = cpu.Machine
	// StepInfo describes one retired instruction for run observers.
	StepInfo = cpu.StepInfo
	// BlockCache holds an image's pre-decoded basic blocks for the
	// block-structured timed simulator.
	BlockCache = cpu.BlockCache
	// BlockCacheStats counts block-cache dispatches and evictions.
	BlockCacheStats = cpu.BlockCacheStats
	// SuperblockStats counts tier-1 trace promotion, demotion, side
	// exits and the instructions retired inside chained traces.
	SuperblockStats = cpu.SuperblockStats
)

// DefaultMachine returns the paper's Table 2 machine model.
func DefaultMachine() MachineConfig { return cpu.DefaultConfig() }

// NewMachine builds a functional emulator for a linearized image.
func NewMachine(img *Image) *Machine { return cpu.NewMachine(img) }

// RunTimed runs an image to completion under the timing model.
func RunTimed(mc MachineConfig, img *Image, limit uint64) (TimingStats, *Machine, error) {
	return cpu.RunTimed(mc, img, limit)
}

// NewBlockCache returns an empty basic-block cache bound to img.
func NewBlockCache(img *Image) *BlockCache { return cpu.NewBlockCache(img) }

// RunTimedCached is RunTimed with a caller-owned block cache, so repeated
// timed runs of one image skip block decode entirely.
func RunTimedCached(mc MachineConfig, img *Image, limit uint64, bc *BlockCache) (TimingStats, *Machine, error) {
	return cpu.RunTimedCached(mc, img, limit, bc)
}

// Profiling building blocks, for callers that want the detector stream
// without the rest of the pipeline.
type (
	// Detector is the Hot Spot Detector hardware model.
	Detector = hsd.Detector
	// DetectorConfig sizes the detector.
	DetectorConfig = hsd.Config
	// HotSpot is one raw detection.
	HotSpot = hsd.HotSpot
	// PhaseDB filters raw detections into unique phases.
	PhaseDB = phasedb.DB
	// Phase is one unique program phase.
	Phase = phasedb.Phase
	// Category is the Figure 9 branch taxonomy.
	Category = phasedb.Category
	// Categorization is the dynamic-weighted Figure 9 breakdown.
	Categorization = phasedb.Categorization
)

// NumCategories is the number of Figure 9 branch categories.
const NumCategories = phasedb.NumCategories

// NewDetector builds a Hot Spot Detector that calls onDetect per hot spot.
func NewDetector(cfg DetectorConfig, onDetect func(HotSpot)) *Detector {
	return hsd.New(cfg, onDetect)
}

// NewPhaseDB returns an empty phase database with the paper's §3.1
// filtering thresholds (zero-valued cfg fields take defaults).
func NewPhaseDB() *PhaseDB { return phasedb.New(phasedb.DefaultConfig()) }

// Workloads.
type (
	// Workload is one synthetic SPEC-analogue benchmark.
	Workload = workload.Benchmark
	// WorkloadInput is one of a workload's input rows.
	WorkloadInput = workload.Input
)

// Benchmark returns a workload by name (go, m88ksim, li, ijpeg, gzip, vpr,
// mcf, perl, vortex, parser, twolf, mpeg2dec).
func Benchmark(name string) (*Workload, error) { return workload.ByName(name) }

// Benchmarks returns the whole suite in the paper's Table 1 order.
func Benchmarks() []*Workload { return workload.Ordered() }

// Trace baseline.
type (
	// TraceConfig controls the Dynamo-style trace-extraction baseline.
	TraceConfig = trace.Config
	// TraceResult summarizes a trace deployment.
	TraceResult = trace.Result
)

// BuildTraces deploys the trace-based baseline on p from a phase database
// gathered on an identically-linearizing image.
func BuildTraces(cfg TraceConfig, p *Program, img *Image, db *PhaseDB) (*TraceResult, error) {
	return trace.Build(cfg, p, img, db)
}
