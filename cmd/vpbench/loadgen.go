// Load-generator mode (-daemon): instead of running the suite locally,
// vpbench plays the role of many deployed clients whose hardware
// detectors stream hot-spot records to a vpackd instance. It discovers
// the daemon's registered programs, captures genuine detector output by
// profiling each benchmark locally, streams the records over -streams
// concurrent connections, waits for the daemon to publish a package
// version per program, and finally scrapes /metrics and exits nonzero —
// naming every missing series — unless the daemon's queue/latency and
// drift series are all exported. With -phaseshift it additionally
// synthesizes a phase shift (hot-set drop + bias flips) after the
// baseline publishes and asserts the daemon's drift score rises.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/drift"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// The daemon's v1 wire format (cmd/vpackd). Hash and count fields big
// enough to lose precision in float64 travel as JSON strings.
type wireBranch struct {
	PC    int64  `json:"pc"`
	Exec  uint32 `json:"exec"`
	Taken uint32 `json:"taken"`
}

type wireHotSpot struct {
	Seq      int          `json:"seq"`
	AtBranch uint64       `json:"at_branch,string"`
	AtInst   uint64       `json:"at_inst,string"`
	Branches []wireBranch `json:"branches"`
}

type wirePost struct {
	ProgramHash uint64        `json:"program_hash,string"`
	HotSpots    []wireHotSpot `json:"hot_spots"`
}

type wireProgram struct {
	Program     string `json:"program"`
	Input       string `json:"input"`
	Scale       int64  `json:"scale"`
	ProgramHash uint64 `json:"program_hash,string"`
}

// postChunk bounds how many hot spots ride in one POST, so a stream is
// many small requests (like real trickling clients), not one big one.
const postChunk = 10

func runLoadgen(url string, streams, records int, benches, logMode string, phaseShift bool, driftCfg drift.Config) int {
	logger, err := telemetry.NewLogger(logMode, os.Stderr, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpbench:", err)
		return 2
	}
	if err := loadgen(url, streams, records, benches, logger, phaseShift, driftCfg); err != nil {
		fmt.Fprintln(os.Stderr, "vpbench: daemon:", err)
		if errors.Is(err, core.ErrStaleArtifact) {
			fmt.Fprintln(os.Stderr, "vpbench: hint: the daemon serves a different build of the program; restart vpackd with matching -bench/-scale")
		}
		return 1
	}
	return 0
}

func loadgen(url string, streams, records int, benches string, logger *slog.Logger, phaseShift bool, driftCfg drift.Config) error {
	url = strings.TrimSuffix(url, "/")
	if streams < 1 {
		streams = 1
	}
	if records < 1 {
		records = 1
	}
	client := &http.Client{Timeout: 60 * time.Second}

	var progs []wireProgram
	if err := getJSON(client, url+"/v1/programs", &progs); err != nil {
		return err
	}
	if benches != "" {
		want := make(map[string]bool)
		for _, b := range strings.Split(benches, ",") {
			want[strings.TrimSpace(b)] = true
		}
		var sel []wireProgram
		for _, p := range progs {
			if want[p.Program] {
				sel = append(sel, p)
			}
		}
		progs = sel
	}
	if len(progs) == 0 {
		return fmt.Errorf("daemon at %s serves no matching programs", url)
	}

	captured := make(map[string][]wireHotSpot, len(progs))
	for _, p := range progs {
		spots, err := captureSpots(p)
		if err != nil {
			return err
		}
		captured[p.Program] = spots
		logger.Info("captured", "program", p.Program, "hot_spots", len(spots))
		if err := streamSpots(client, url, p, spots, streams, records, logger); err != nil {
			return err
		}
	}

	for _, p := range progs {
		set, version, err := awaitPackage(client, url, p)
		if err != nil {
			return err
		}
		logger.Info("package ready", "program", p.Program, "version", version,
			"packages", len(set.Packages), "code_growth", fmt.Sprintf("%.3f", set.CodeGrowth()))
	}

	var peak float64
	if phaseShift {
		var err error
		if peak, err = runPhaseShift(client, url, progs, captured, streams, driftCfg, logger); err != nil {
			return err
		}
	}

	if err := checkMetrics(client, url); err != nil {
		return err
	}
	if phaseShift {
		fmt.Printf("daemon ok: %d programs, %d records x %d streams each, packages fetched, phase shift drove drift peak to %.3f, metrics exported\n",
			len(progs), records, streams, peak)
	} else {
		fmt.Printf("daemon ok: %d programs, %d records x %d streams each, packages fetched, metrics exported\n",
			len(progs), records, streams)
	}
	return nil
}

// shiftWireSpots synthesizes a phase shift from captured records: the
// first ~40% of each record's branches drop out of the hot set and the
// survivors' taken counts flip. PCs stay real, so the daemon's database
// accepts the records — only their phase shape changes.
func shiftWireSpots(spots []wireHotSpot) []wireHotSpot {
	out := make([]wireHotSpot, len(spots))
	for i, s := range spots {
		ns := s
		drop := len(s.Branches) * 2 / 5
		ns.Branches = make([]wireBranch, 0, len(s.Branches)-drop)
		for _, b := range s.Branches[drop:] {
			b.Taken = b.Exec - b.Taken
			ns.Branches = append(ns.Branches, b)
		}
		out[i] = ns
	}
	return out
}

// runPhaseShift streams synthesized shifted records for every program
// and polls /v1/drift until the daemon's score demonstrably rises,
// returning the highest peak observed. The burst is sized off the drift
// window so enough windows close to move the composite; pass the same
// -driftwindow the daemon runs with.
func runPhaseShift(client *http.Client, url string, progs []wireProgram, captured map[string][]wireHotSpot, streams int, driftCfg drift.Config, logger *slog.Logger) (float64, error) {
	if !driftCfg.Enabled() {
		return 0, fmt.Errorf("-phaseshift needs drift tracking enabled (-driftwindow/-driftring > 0)")
	}
	// Enough records to close several windows per program even if some
	// interleave with the tail of the baseline stream.
	burst := driftCfg.Window * 8
	var best float64
	for _, p := range progs {
		shifted := shiftWireSpots(captured[p.Program])
		if err := streamSpots(client, url, p, shifted, streams, burst, logger); err != nil {
			return 0, fmt.Errorf("%s: shifted stream: %w", p.Program, err)
		}
		peak, err := awaitDrift(client, url, p.Program)
		if err != nil {
			return 0, err
		}
		logger.Info("drift moved", "program", p.Program, "peak", fmt.Sprintf("%.3f", peak))
		if peak > best {
			best = peak
		}
	}
	return best, nil
}

// driftRiseThreshold is what "demonstrably moved" means for -phaseshift:
// the synthesized shift (40% hot-set drop + full bias flip) saturates
// the composite near 1.0 on a quiet stream, so well past this.
const driftRiseThreshold = 0.2

// awaitDrift polls the program's drift status until the peak score
// crosses driftRiseThreshold (the tracker's peak never resets, so a
// concurrent repack re-baselining cannot hide the excursion).
func awaitDrift(client *http.Client, url, program string) (float64, error) {
	deadline := time.Now().Add(60 * time.Second)
	var last drift.Status
	for {
		if err := getJSON(client, url+"/v1/drift/"+program, &last); err != nil {
			return 0, fmt.Errorf("%s: drift status: %w", program, err)
		}
		if last.Score.Peak > driftRiseThreshold {
			return last.Score.Peak, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("%s: drift score did not rise above %.2f after 60s (peak %.3f over %d windows; do the daemon's -driftwindow/-driftring match?)",
				program, driftRiseThreshold, last.Score.Peak, last.Windows)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// captureSpots rebuilds the advertised benchmark input and profiles it
// locally, keeping the detector's raw hot-spot records — exactly what a
// deployed client's hardware monitor would stream.
func captureSpots(p wireProgram) ([]wireHotSpot, error) {
	b, err := workload.ByName(p.Program)
	if err != nil {
		return nil, err
	}
	in, err := b.InputByName(p.Input)
	if err != nil {
		return nil, err
	}
	in.Scale = p.Scale
	img, err := b.Build(in).Linearize()
	if err != nil {
		return nil, err
	}
	if h := core.ImageHash(img); h != p.ProgramHash {
		return nil, fmt.Errorf("%s: local image %016x, daemon image %016x: %w",
			p.Program, h, p.ProgramHash, core.ErrStaleArtifact)
	}

	cfg := core.ScaledConfig()
	var spots []wireHotSpot
	det := hsd.New(cfg.Detector, func(h hsd.HotSpot) {
		w := wireHotSpot{
			Seq:      h.Seq,
			AtBranch: h.DetectedAtBranch,
			AtInst:   h.DetectedAtInst,
			Branches: make([]wireBranch, len(h.Branches)),
		}
		for i, br := range h.Branches {
			w.Branches[i] = wireBranch{PC: br.PC, Exec: br.Exec, Taken: br.Taken}
		}
		spots = append(spots, w)
	})
	m := cpu.NewMachine(img)
	err = m.Run(cfg.ProfileLimit, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.SetInstCount(m.InstCount)
			det.Branch(si.PC, si.Taken)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("%s: profile: %w", p.Program, err)
	}
	if len(spots) == 0 {
		return nil, fmt.Errorf("%s: no hot spots detected; raise the daemon's -scale", p.Program)
	}
	return spots, nil
}

// streamSpots posts records total hot-spot records for one program over
// streams concurrent connections, cycling the captured spots as needed.
func streamSpots(client *http.Client, url string, p wireProgram, spots []wireHotSpot, streams, records int, logger *slog.Logger) error {
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for s := 0; s < streams; s++ {
		// Spread the total across the streams, front-loading remainders.
		n := records / streams
		if s < records%streams {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(s, n int) {
			defer wg.Done()
			for sent := 0; sent < n; {
				chunk := min(postChunk, n-sent)
				batch := make([]wireHotSpot, chunk)
				for i := 0; i < chunk; i++ {
					batch[i] = spots[(s+sent+i)%len(spots)]
				}
				if err := postProfile(client, url, p, batch); err != nil {
					errs[s] = err
					return
				}
				sent += chunk
			}
		}(s, n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	logger.Info("streamed", "program", p.Program, "records", records, "streams", streams)
	return nil
}

func postProfile(client *http.Client, url string, p wireProgram, spots []wireHotSpot) error {
	body, err := json.Marshal(wirePost{ProgramHash: p.ProgramHash, HotSpots: spots})
	if err != nil {
		return err
	}
	resp, err := client.Post(url+"/v1/profiles/"+p.Program, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		err := fmt.Errorf("%s: POST profile: %s: %s", p.Program, resp.Status, strings.TrimSpace(string(msg)))
		if resp.StatusCode == http.StatusConflict {
			err = fmt.Errorf("%w: %w", err, core.ErrStaleArtifact)
		}
		return err
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// awaitPackage polls the program's latest package version until the
// daemon has built one, then decodes and sanity-checks it.
func awaitPackage(client *http.Client, url string, p wireProgram) (*core.PackageSet, int, error) {
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(url + "/v1/packages/" + p.Program + "/latest")
		if err != nil {
			return nil, 0, err
		}
		if resp.StatusCode == http.StatusOK {
			set, err := core.DecodePackageSet(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, 0, fmt.Errorf("%s: decode package: %w", p.Program, err)
			}
			version := 0
			fmt.Sscanf(resp.Header.Get("Vpackd-Version"), "%d", &version)
			if set.ProgramHash != p.ProgramHash {
				return nil, 0, fmt.Errorf("%s: package for image %016x, daemon advertised %016x: %w",
					p.Program, set.ProgramHash, p.ProgramHash, core.ErrStaleArtifact)
			}
			return set, version, nil
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if time.Now().After(deadline) {
			return nil, 0, fmt.Errorf("%s: no package version after 60s (status %s)", p.Program, resp.Status)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// checkMetrics scrapes /metrics and asserts every daemon series the
// serving contract promises: queue depth/wait, repack latency, record
// counters, and (when drift tracking is on) the vp_drift_* series. All
// failures are collected into one error naming each missing series, so a
// failing run says exactly what broke instead of the first thing it
// noticed; the caller exits nonzero on it. The drift series are part of
// the always-present contract, so they must exist even when the daemon
// runs with drift tracking disabled.
func checkMetrics(client *http.Client, url string) error {
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	want := []string{
		obs.DaemonQueueDepthGauge,
		obs.DaemonRepackLatencyHist,
		obs.DaemonQueueWaitHist,
		obs.DaemonRecordsCounter,
		obs.DaemonQueueRejectedCounter,
	}
	want = append(want, obs.DriftCounters()...)
	want = append(want, obs.DriftGauges()...)
	want = append(want, obs.DriftHistograms()...)
	var missing []string
	for _, name := range want {
		if series := telemetry.MetricName(name); !strings.Contains(string(body), series) {
			missing = append(missing, series)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("metrics assertion failed: /metrics is missing %d series: %s",
			len(missing), strings.Join(missing, ", "))
	}
	return nil
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
