// Command vpbench regenerates the paper's evaluation tables and figures
// over the synthetic benchmark suite.
//
// Usage:
//
//	vpbench                 # everything (Tables 1-3, Figures 8-10)
//	vpbench -table 3        # one table
//	vpbench -figure 8       # one figure
//	vpbench -bench perl     # restrict the suite
//	vpbench -scale 1        # force a smaller iteration scale
//	vpbench -j 4            # run 4 inputs concurrently (default GOMAXPROCS)
//	vpbench -reps 3         # run the suite 3 times, report the best rep
//	vpbench -blockcache off # legacy instruction-at-a-time timed simulation
//	vpbench -superblock off # tier-0 only: block cache without trace chaining
//	vpbench -sbthreshold 64 # override the tier-1 promotion threshold
//	vpbench -benchjson f    # write machine-readable timing JSON to f
//	vpbench -cpuprofile f   # write a pprof CPU profile of the run to f
//	vpbench -metrics        # per-stage wall-time, counter and histogram tables
//	vpbench -trace f        # write the suite's JSON span/event trace to f
//	vpbench -serve :9090    # expose /metrics, /trace, /healthz, /readyz,
//	                        # /debug/pprof while the suite runs
//	vpbench -log json       # structured progress records (text|json|off)
//	vpbench -verify         # static verifier gates every stage (exit 3 on violation)
//	vpbench -verifyoverhead # extra verify-on run, overhead recorded in -benchjson
//	vpbench -equiv          # prove every optimized package equivalent (exit 4 on refutation)
//	vpbench -equivoverhead  # extra equiv-on run, overhead recorded in -benchjson;
//	                        # with -store -storecompare also measures the warm
//	                        # (store-served proofs) steady-state overhead
//	vpbench -store DIR      # suite profiles/packages served from + written to DIR
//	vpbench -store DIR -storecompare  # storeless main suite, then cold+warm
//	                        # store-backed runs recorded in -benchjson
//	vpbench -daemon URL     # load generator: stream hot-spot profiles to vpackd
//	                        # (-streams, -records size the load; see loadgen.go)
//	vpbench -daemon URL -phaseshift  # then shift the phase and assert the
//	                        # daemon's drift score rises (-driftwindow sizes
//	                        # the shifted burst; match the daemon's flag)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cas"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// benchJSON is the machine-readable trajectory record -benchjson emits so
// successive PRs can track suite wall time and simulation throughput (the
// BENCH_*.json files at the repo root).
type benchJSON struct {
	Schema         string  `json:"schema"`
	Timestamp      string  `json:"timestamp"`
	GoVersion      string  `json:"go_version"`
	NumCPU         int     `json:"num_cpu"`
	Jobs           int     `json:"jobs"`
	Scale          int64   `json:"scale"`
	WallSeconds    float64 `json:"wall_seconds"`
	TotalInsts     uint64  `json:"total_insts"`
	InstsPerSecond float64 `json:"insts_per_second"`

	// Reps is the -reps best-of count; WallSeconds is the best rep.
	Reps int `json:"reps,omitempty"`
	// VerifyWallSeconds is the wall time of the extra verify-on suite run
	// -verifyoverhead performs; VerifyOverheadFraction relates it to the
	// main run (0.03 = 3% slower with the static verifier gating every
	// stage). The fraction floors at 0 — the verifier cannot speed the
	// suite up, so a negative sample is scheduler noise — and is a
	// pointer so a measured zero still appears in the JSON.
	VerifyWallSeconds      float64  `json:"verify_wall_seconds,omitempty"`
	VerifyOverheadFraction *float64 `json:"verify_overhead_fraction,omitempty"`
	// EquivWallSeconds/EquivOverheadFraction mirror the verify pair for
	// -equivoverhead: an extra suite run with translation validation
	// proving every optimized package from scratch, timed against the
	// main run. This is the cold cost of full symbolic proving.
	EquivWallSeconds      float64  `json:"equiv_wall_seconds,omitempty"`
	EquivOverheadFraction *float64 `json:"equiv_overhead_fraction,omitempty"`
	// EquivWarmWallSeconds/EquivWarmOverheadFraction record the
	// steady-state cost (with -equivoverhead -store -storecompare):
	// certificates are part of the package-set artifact and keyed by the
	// config hash, so a warm store-backed run serves every proved package
	// from disk and re-proves nothing. The fraction compares the warm
	// equiv-on run against the warm equiv-off run — the regime a
	// continuously-operating pipeline (vpackd) actually pays for, and the
	// number the <5% budget in scripts/bench.sh gates on.
	EquivWarmWallSeconds      float64  `json:"equiv_warm_wall_seconds,omitempty"`
	EquivWarmOverheadFraction *float64 `json:"equiv_warm_overhead_fraction,omitempty"`
	// StoreColdWallSeconds/StoreWarmWallSeconds are -storecompare's
	// measurement: one suite run against a fresh artifact store (cold,
	// every profile and package computed and written through) and one
	// against the store it left behind (warm, every stage served from
	// disk). Store carries the warm run's hit/miss tally and footprint.
	StoreColdWallSeconds float64     `json:"store_cold_wall_seconds,omitempty"`
	StoreWarmWallSeconds float64     `json:"store_warm_wall_seconds,omitempty"`
	Store                *benchStore `json:"store,omitempty"`
	// BlockCacheHitRate aggregates the timed runs' basic-block cache
	// traffic across all variants (absent when -blockcache=off).
	BlockCacheHitRate float64 `json:"blockcache_hit_rate,omitempty"`
	// SuperblockCoverage is the fraction of timed-run instructions retired
	// inside tier-1 superblock traces; SuperblockPromoted/Demoted/SideExits
	// aggregate the tier's promotion churn (absent when -superblock=off).
	SuperblockCoverage  float64 `json:"superblock_coverage,omitempty"`
	SuperblockPromoted  uint64  `json:"superblock_promoted,omitempty"`
	SuperblockDemoted   uint64  `json:"superblock_demoted,omitempty"`
	SuperblockSideExits uint64  `json:"superblock_side_exits,omitempty"`

	Inputs []benchInput `json:"inputs"`
}

type benchInput struct {
	Bench   string  `json:"bench"`
	Input   string  `json:"input"`
	Insts   uint64  `json:"insts"`
	Seconds float64 `json:"seconds"`
}

// benchStore is the artifact-store block of a -benchjson record: the
// suite's hit/miss tally by artifact class and the store's footprint
// after the run.
type benchStore struct {
	ProfileHits   uint64 `json:"profile_hits"`
	ProfileMisses uint64 `json:"profile_misses"`
	PackageHits   uint64 `json:"package_hits"`
	PackageMisses uint64 `json:"package_misses"`
	Bytes         int64  `json:"bytes"`
	Segments      int    `json:"segments"`
}

// storeBlock lowers a suite's store tally to the JSON block, nil when
// the suite ran storeless.
func storeBlock(s *report.Suite) *benchStore {
	if s.StoreProfileHits+s.StoreProfileMisses+s.StorePackageHits+s.StorePackageMisses == 0 && s.StoreBytes == 0 {
		return nil
	}
	return &benchStore{
		ProfileHits:   s.StoreProfileHits,
		ProfileMisses: s.StoreProfileMisses,
		PackageHits:   s.StorePackageHits,
		PackageMisses: s.StorePackageMisses,
		Bytes:         s.StoreBytes,
		Segments:      s.StoreSegments,
	}
}

func main() {
	var (
		table      = flag.Int("table", 0, "print only Table N (1, 2 or 3)")
		figure     = flag.Int("figure", 0, "print only Figure N (8, 9 or 10)")
		benches    = flag.String("bench", "", "comma-separated benchmark subset")
		scale      = flag.Int64("scale", 0, "override every input's iteration scale")
		jobs       = flag.Int("j", 0, "concurrent benchmark inputs (0 = GOMAXPROCS, 1 = sequential)")
		reps       = flag.Int("reps", 1, "run the suite N times and report the best (fastest) rep")
		machine    = cliflags.MachineFlags(flag.CommandLine)
		logf       = cliflags.LogFlags(flag.CommandLine, "suppress progress records (same as -log off)")
		serve      = flag.String("serve", "", "serve /metrics, /trace, /healthz, /readyz and /debug/pprof on `addr` during the run")
		benchjson  = flag.String("benchjson", "", "write machine-readable suite timing JSON to `file`")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to `file`")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to `file`")
		metrics    = flag.Bool("metrics", false, "print per-stage wall-time, counter, gauge and histogram tables after the suite")
		tracePath  = flag.String("trace", "", "write the suite's JSON span/event/metric trace to `file`")
		verifyOn   = cliflags.VerifyFlag(flag.CommandLine)
		verifyOH   = flag.Bool("verifyoverhead", false, "additionally run the suite once with -verify on and record the overhead in -benchjson")
		equivOn    = cliflags.EquivFlag(flag.CommandLine)
		equivOH    = flag.Bool("equivoverhead", false, "additionally run the suite once with -equiv on and record the overhead in -benchjson")
		daemonURL  = flag.String("daemon", "", "load-generator mode: stream hot-spot profiles to a running vpackd at `url` instead of running the suite")
		streams    = flag.Int("streams", 8, "concurrent profile streams in -daemon mode")
		records    = flag.Int("records", 100, "total hot-spot records to stream in -daemon mode")
		phaseShift = flag.Bool("phaseshift", false, "in -daemon mode, follow the stream with a synthesized phase shift and assert the daemon's drift score rises")
		driftf     = cliflags.DriftFlags(flag.CommandLine)
		storeDir   = cliflags.StoreFlag(flag.CommandLine)
		storeComp  = flag.Bool("storecompare", false, "with -store: keep the main suite storeless, then run one cold and one warm store-backed suite and record both wall times in -benchjson")
	)
	flag.Parse()

	if *storeComp && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "vpbench: -storecompare requires -store")
		os.Exit(2)
	}

	if *daemonURL != "" {
		os.Exit(runLoadgen(*daemonURL, *streams, *records, *benches, logf.Mode(), *phaseShift, driftf.Config()))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *table == 2 {
		fmt.Print(report.Table2(cpu.DefaultConfig()))
		return
	}

	opts := report.Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		ScaleOverride: *scale,
		Jobs:          *jobs,
	}
	opts.Core.Verify = *verifyOn
	opts.Core.Equiv = *equivOn
	if err := machine.Apply(&opts.Machine); err != nil {
		fmt.Fprintln(os.Stderr, "vpbench:", err)
		os.Exit(2)
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	var rec *obs.Recorder
	if *metrics || *tracePath != "" || *serve != "" {
		rec = obs.NewRecorder()
		opts.Observer = rec
	}

	logger, err := telemetry.NewLogger(logf.Mode(), os.Stderr, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpbench:", err)
		os.Exit(2)
	}
	opts.Logger = logger

	// The main suite uses the store directly when -store is given alone;
	// -storecompare keeps it storeless so the trajectory numbers stay
	// comparable across PRs and measures cold/warm separately below.
	if *storeDir != "" && !*storeComp {
		s, err := cas.Open(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench:", err)
			os.Exit(1)
		}
		defer s.Close()
		opts.Store = s
	}

	if *serve != "" {
		srv := telemetry.NewServer(rec)
		// Store series are always present (zero without a -store), so
		// dashboards never see gaps.
		srv.AlwaysCounters(obs.StoreCounters()...)
		srv.AlwaysCounters(obs.EquivCounters()...)
		srv.AlwaysGauges(obs.StoreGauges()...)
		addr, err := srv.Listen(*serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: serve:", err)
			os.Exit(1)
		}
		defer srv.Close()
		srv.SetReady(true)
		logger.Info("telemetry serving", "addr", addr)
	}

	// Best-of-N reps: each rep runs the full suite; tables, metrics,
	// traces and -benchjson all come from the fastest rep. The telemetry
	// server streams one live run, so -serve pins reps to 1.
	nreps := *reps
	if nreps < 1 {
		nreps = 1
	}
	if *serve != "" && nreps > 1 {
		logger.Warn("-serve streams a single live run; forcing -reps 1")
		nreps = 1
	}
	var suite *report.Suite
	for r := 1; r <= nreps; r++ {
		runOpts := opts
		runRec := rec
		if r > 1 && rec != nil {
			// Later reps record into fresh recorders so the reported
			// metrics describe exactly one suite run, not an accumulation.
			runRec = obs.NewRecorder()
			runOpts.Observer = runRec
		}
		s, err := report.RunSuite(runOpts)
		if err != nil {
			if runRec != nil && *tracePath != "" {
				if werr := writeTrace(*tracePath, runRec); werr != nil {
					fmt.Fprintln(os.Stderr, "vpbench: trace:", werr)
				}
			}
			if errors.Is(err, core.ErrNoPhases) || errors.Is(err, core.ErrNoPackages) {
				fmt.Fprintln(os.Stderr, "vpbench: hint: some inputs were too short for the detector; raise -scale")
			}
			fmt.Fprintln(os.Stderr, "vpbench:", err)
			if errors.Is(err, core.ErrVerifyFailed) {
				os.Exit(3)
			}
			if errors.Is(err, core.ErrNotEquivalent) {
				os.Exit(4)
			}
			os.Exit(1)
		}
		if nreps > 1 {
			logger.Info("rep complete", "rep", r, "of", nreps, "wall", s.Elapsed)
		}
		if suite == nil || s.Elapsed < suite.Elapsed {
			suite = s
			rec = runRec
		}
	}
	if rec != nil && *tracePath != "" {
		if werr := writeTrace(*tracePath, rec); werr != nil {
			fmt.Fprintln(os.Stderr, "vpbench: trace:", werr)
		}
	}

	// Verifier overhead measurement: extra suite runs with every stage
	// gate on, timed against the main run. Best-of-nreps on both sides, so
	// the recorded fraction compares like with like instead of one noisy
	// run against the best baseline. Tables and traces still come from the
	// main run.
	verifyWall := 0.0
	if *verifyOH {
		vOpts := opts
		vOpts.Core.Verify = true
		vOpts.Observer = nil
		for r := 1; r <= nreps; r++ {
			vSuite, err := report.RunSuite(vOpts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vpbench: verify-on run:", err)
				if errors.Is(err, core.ErrVerifyFailed) {
					os.Exit(3)
				}
				os.Exit(1)
			}
			if verifyWall == 0 || vSuite.Elapsed.Seconds() < verifyWall {
				verifyWall = vSuite.Elapsed.Seconds()
			}
		}
		logger.Info("verify-on suite complete", "wall", verifyWall,
			"overhead", fmt.Sprintf("%+.2f%%", 100*(verifyWall/suite.Elapsed.Seconds()-1)))
	}

	// Translation-validation overhead: same protocol as -verifyoverhead —
	// extra suite runs with every package proved, best-of-nreps on both
	// sides. A refutation here is a miscompile and fails the measurement.
	equivWall := 0.0
	if *equivOH {
		eOpts := opts
		eOpts.Core.Equiv = true
		eOpts.Observer = nil
		for r := 1; r <= nreps; r++ {
			eSuite, err := report.RunSuite(eOpts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vpbench: equiv-on run:", err)
				if errors.Is(err, core.ErrNotEquivalent) {
					os.Exit(4)
				}
				os.Exit(1)
			}
			if equivWall == 0 || eSuite.Elapsed.Seconds() < equivWall {
				equivWall = eSuite.Elapsed.Seconds()
			}
		}
		logger.Info("equiv-on suite complete", "wall", equivWall,
			"overhead", fmt.Sprintf("%+.2f%%", 100*(equivWall/suite.Elapsed.Seconds()-1)))
	}

	// Cold/warm store measurement: one suite run populating the store
	// from scratch, then one rerun against it. The warm run must serve
	// every profile and package from disk — a nonzero miss count means
	// the key scheme broke, which is worth failing loudly here rather
	// than silently recording a meaningless "warm" number.
	var storeCold, storeWarm float64
	storeStats := storeBlock(suite)
	if *storeComp {
		cold, err := storeSuiteRun(opts, *storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: store cold run:", err)
			os.Exit(1)
		}
		warm, err := storeSuiteRun(opts, *storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: store warm run:", err)
			os.Exit(1)
		}
		if warm.StoreProfileMisses+warm.StorePackageMisses > 0 {
			fmt.Fprintf(os.Stderr, "vpbench: warm store run missed (%d profile, %d package) — store keys are broken\n",
				warm.StoreProfileMisses, warm.StorePackageMisses)
			os.Exit(1)
		}
		storeCold = cold.Elapsed.Seconds()
		storeWarm = warm.Elapsed.Seconds()
		storeStats = storeBlock(warm)
		logger.Info("store compare", "cold", cold.Elapsed, "warm", warm.Elapsed,
			"profile_hits", warm.StoreProfileHits, "package_hits", warm.StorePackageHits)
	}

	// Steady-state translation-validation overhead: the certificates ride
	// the package-set artifact, keyed by the config hash, so once a store
	// holds the proved packages a rerun serves them from disk without
	// re-proving. The warm equiv-on run is compared against the warm
	// equiv-off run from -storecompare above; a package miss here means
	// the key scheme broke and the "warm" number would be meaningless.
	equivWarmWall := 0.0
	if *equivOH && *storeComp {
		eOpts := opts
		eOpts.Core.Equiv = true
		if _, err := storeSuiteRun(eOpts, *storeDir); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: equiv store cold run:", err)
			if errors.Is(err, core.ErrNotEquivalent) {
				os.Exit(4)
			}
			os.Exit(1)
		}
		for r := 1; r <= nreps; r++ {
			wSuite, err := storeSuiteRun(eOpts, *storeDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "vpbench: equiv store warm run:", err)
				if errors.Is(err, core.ErrNotEquivalent) {
					os.Exit(4)
				}
				os.Exit(1)
			}
			if wSuite.StoreProfileMisses+wSuite.StorePackageMisses > 0 {
				fmt.Fprintf(os.Stderr, "vpbench: warm equiv run missed (%d profile, %d package) — store keys are broken\n",
					wSuite.StoreProfileMisses, wSuite.StorePackageMisses)
				os.Exit(1)
			}
			if equivWarmWall == 0 || wSuite.Elapsed.Seconds() < equivWarmWall {
				equivWarmWall = wSuite.Elapsed.Seconds()
			}
		}
		if storeWarm > 0 {
			logger.Info("equiv warm suite complete", "wall", equivWarmWall,
				"overhead", fmt.Sprintf("%+.2f%%", 100*(equivWarmWall/storeWarm-1)))
		}
	}

	if *benchjson != "" {
		if err := writeBenchJSON(*benchjson, suite, *scale, nreps, verifyWall, equivWall, equivWarmWall, storeCold, storeWarm, storeStats); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench:", err)
			os.Exit(1)
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: memprofile:", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "vpbench: memprofile:", err)
			os.Exit(1)
		}
		f.Close()
	}

	if *metrics {
		printMetrics(rec.Export())
		if *table == 0 && *figure == 0 {
			return
		}
	}

	switch {
	case *table == 1:
		fmt.Print(suite.Table1())
	case *table == 3:
		fmt.Print(suite.Table3())
	case *figure == 8:
		fmt.Print(suite.Figure8())
	case *figure == 9:
		fmt.Print(suite.Figure9())
	case *figure == 10:
		fmt.Print(suite.Figure10())
	case *table != 0 || *figure != 0:
		fmt.Fprintln(os.Stderr, "vpbench: unknown table/figure")
		os.Exit(2)
	default:
		fmt.Println(suite.Table1())
		fmt.Println(report.Table2(cpu.DefaultConfig()))
		fmt.Println(suite.Figure8())
		fmt.Println(suite.Table3())
		fmt.Println(suite.Figure9())
		fmt.Println(suite.Figure10())
	}
}

// storeSuiteRun runs one observerless suite against the store in dir,
// opening and closing the store around the run so the next call starts
// from the manifest on disk — a genuine warm restart, not a shared
// in-memory handle.
func storeSuiteRun(opts report.Options, dir string) (*report.Suite, error) {
	s, err := cas.Open(dir)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	runOpts := opts
	runOpts.Observer = nil
	runOpts.Store = s
	return report.RunSuite(runOpts)
}

// writeTrace dumps the recorder's trace as indented JSON.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return rec.Export().WriteJSON(f)
}

// printMetrics renders the per-stage wall-time table (canonical stages
// first, other spans after) and the counter/gauge tables.
func printMetrics(t *obs.Trace) {
	totals := t.SpanTotals()
	byName := make(map[string]obs.SpanTotal, len(totals))
	for _, st := range totals {
		byName[st.Name] = st
	}
	fmt.Println("stage                        spans      total wall")
	seen := make(map[string]bool)
	for _, name := range obs.Stages() {
		if st, ok := byName[name]; ok {
			fmt.Printf("%-26s %6d  %14v\n", st.Name, st.Count, st.Total.Round(time.Microsecond))
			seen[name] = true
		}
	}
	other := 0
	var otherTotal time.Duration
	for _, st := range totals {
		if !seen[st.Name] {
			other += st.Count
			otherTotal += st.Total
		}
	}
	if other > 0 {
		fmt.Printf("%-26s %6d  %14v\n", "(input/variant spans)", other, otherTotal.Round(time.Microsecond))
	}

	if len(t.Metrics.Counters) > 0 {
		fmt.Println("\ncounter                                 value")
		names := make([]string, 0, len(t.Metrics.Counters))
		for name := range t.Metrics.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-34s %10d\n", name, t.Metrics.Counters[name])
		}
	}
	if len(t.Metrics.Gauges) > 0 {
		fmt.Println("\ngauge                                   value")
		names := make([]string, 0, len(t.Metrics.Gauges))
		for name := range t.Metrics.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-34s %10.3f\n", name, t.Metrics.Gauges[name])
		}
	}
	if len(t.Metrics.Histograms) > 0 {
		fmt.Println("\nhistogram                               count         mean       ~p50       ~p99")
		names := make([]string, 0, len(t.Metrics.Histograms))
		for name := range t.Metrics.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := t.Metrics.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Printf("%-34s %10d %12.1f %10v %10v\n", name, h.Count,
				h.Sum/float64(h.Count), histQuantile(h, 0.50), histQuantile(h, 0.99))
		}
	}
}

// histQuantile returns the upper bound of the bucket holding the q-th
// observation — an order-of-magnitude quantile, which is all the
// power-of-two layout resolves.
func histQuantile(h obs.HistogramRecord, q float64) string {
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	bounds := obs.HistogramBounds()
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= target {
			if i < len(bounds) {
				return strconv.FormatFloat(bounds[i], 'g', -1, 64)
			}
			break
		}
	}
	return ">" + strconv.FormatFloat(bounds[len(bounds)-1], 'g', -1, 64)
}

// trajectory is the on-disk shape of the BENCH_*.json files: a curated
// history of past measurements (kept verbatim across refreshes) plus the
// latest run. Refreshing via -benchjson never discards history entries.
type trajectory struct {
	Schema  string            `json:"schema"`
	History []json.RawMessage `json:"history,omitempty"`
	Latest  benchJSON         `json:"latest"`
}

func writeBenchJSON(path string, suite *report.Suite, scale int64, reps int, verifyWall, equivWall, equivWarmWall, storeCold, storeWarm float64, storeStats *benchStore) error {
	wall := suite.Elapsed.Seconds()
	rec := benchJSON{
		Schema:      "vpbench-suite/v1",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Jobs:        suite.Jobs,
		Scale:       scale,
		WallSeconds: wall,
		TotalInsts:  suite.TotalInsts(),
	}
	if reps > 1 {
		rec.Reps = reps
	}
	if verifyWall > 0 {
		rec.VerifyWallSeconds = verifyWall
		if wall > 0 {
			f := max(verifyWall/wall-1, 0)
			rec.VerifyOverheadFraction = &f
		}
	}
	if equivWall > 0 {
		rec.EquivWallSeconds = equivWall
		if wall > 0 {
			f := max(equivWall/wall-1, 0)
			rec.EquivOverheadFraction = &f
		}
	}
	if equivWarmWall > 0 {
		rec.EquivWarmWallSeconds = equivWarmWall
		if storeWarm > 0 {
			f := max(equivWarmWall/storeWarm-1, 0)
			rec.EquivWarmOverheadFraction = &f
		}
	}
	rec.StoreColdWallSeconds = storeCold
	rec.StoreWarmWallSeconds = storeWarm
	rec.Store = storeStats
	if wall > 0 {
		rec.InstsPerSecond = float64(rec.TotalInsts) / wall
	}
	var bcHits, bcMisses, sbInsts, timedInsts uint64
	for i := range suite.Results {
		r := &suite.Results[i]
		rec.Inputs = append(rec.Inputs, benchInput{
			Bench:   r.Bench,
			Input:   r.Input,
			Insts:   r.DynInsts,
			Seconds: r.Elapsed.Seconds(),
		})
		for j := range r.Variants {
			v := &r.Variants[j]
			bcHits += v.BlockCacheHits
			bcMisses += v.BlockCacheMisses
			sbInsts += v.SuperblockInsts
			timedInsts += v.TimedInsts
			rec.SuperblockPromoted += v.SuperblocksPromoted
			rec.SuperblockDemoted += v.SuperblocksDemoted
			rec.SuperblockSideExits += v.SuperblockSideExits
		}
	}
	if bcHits+bcMisses > 0 {
		rec.BlockCacheHitRate = float64(bcHits) / float64(bcHits+bcMisses)
	}
	if timedInsts > 0 {
		rec.SuperblockCoverage = float64(sbInsts) / float64(timedInsts)
	}
	traj := trajectory{Schema: "bench-trajectory/v1", Latest: rec}
	if old, err := os.ReadFile(path); err == nil {
		var prev trajectory
		if json.Unmarshal(old, &prev) == nil && prev.Schema == traj.Schema {
			traj.History = prev.History
		}
	}
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
