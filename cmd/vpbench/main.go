// Command vpbench regenerates the paper's evaluation tables and figures
// over the synthetic benchmark suite.
//
// Usage:
//
//	vpbench                 # everything (Tables 1-3, Figures 8-10)
//	vpbench -table 3        # one table
//	vpbench -figure 8       # one figure
//	vpbench -bench perl     # restrict the suite
//	vpbench -scale 1        # force a smaller iteration scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/report"
)

func main() {
	var (
		table   = flag.Int("table", 0, "print only Table N (1, 2 or 3)")
		figure  = flag.Int("figure", 0, "print only Figure N (8, 9 or 10)")
		benches = flag.String("bench", "", "comma-separated benchmark subset")
		scale   = flag.Int64("scale", 0, "override every input's iteration scale")
		quiet   = flag.Bool("q", false, "suppress per-input progress lines")
	)
	flag.Parse()

	if *table == 2 {
		fmt.Print(report.Table2(cpu.DefaultConfig()))
		return
	}

	opts := report.Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		ScaleOverride: *scale,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}

	suite, err := report.RunSuite(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpbench:", err)
		os.Exit(1)
	}

	switch {
	case *table == 1:
		fmt.Print(suite.Table1())
	case *table == 3:
		fmt.Print(suite.Table3())
	case *figure == 8:
		fmt.Print(suite.Figure8())
	case *figure == 9:
		fmt.Print(suite.Figure9())
	case *figure == 10:
		fmt.Print(suite.Figure10())
	case *table != 0 || *figure != 0:
		fmt.Fprintln(os.Stderr, "vpbench: unknown table/figure")
		os.Exit(2)
	default:
		fmt.Println(suite.Table1())
		fmt.Println(report.Table2(cpu.DefaultConfig()))
		fmt.Println(suite.Figure8())
		fmt.Println(suite.Table3())
		fmt.Println(suite.Figure9())
		fmt.Println(suite.Figure10())
	}
}
