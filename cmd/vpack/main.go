// Command vpack runs the full Vacuum Packing pipeline on one benchmark
// input and prints a detailed report: detected phases, identified regions,
// constructed packages with their links and launch points, and the timed
// original-vs-packed comparison.
//
// Usage:
//
//	vpack -bench perl -input A [-scale N] [-noinfer] [-nolink] [-v]
//	vpack -asm program.vpasm [-v]
//	vpack -bench perl -trace out.json   # JSON span/event/metric trace
//	vpack -bench perl -store .vpstore   # reuse/persist profiles across runs
//	vpack -bench perl -q                # only the coverage/speedup line
//	vpack -log json                     # diagnostics as JSON slog records
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/asm"
	"repro/internal/cas"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/equiv"
	"repro/internal/obs"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// logger carries diagnostics (hints, trace-write failures); -log selects
// its format and -q silences it. The packing report itself stays on
// stdout.
var logger = slog.New(slog.DiscardHandler)

// tracing carries the optional -trace recorder; flush writes whatever has
// been recorded so far, so even a failed run leaves a usable trace.
var tracing struct {
	rec  *obs.Recorder
	path string
}

func flushTrace() {
	if tracing.rec == nil {
		return
	}
	f, err := os.Create(tracing.path)
	if err != nil {
		logger.Error("trace write failed", "err", err)
		return
	}
	defer f.Close()
	if err := tracing.rec.Export().WriteJSON(f); err != nil {
		logger.Error("trace write failed", "err", err)
	}
}

func main() {
	var (
		asmPath   = flag.String("asm", "", "run a hand-written VPIR assembly file instead of a benchmark")
		bench     = flag.String("bench", "perl", "benchmark name (see -list)")
		input     = flag.String("input", "A", "input name: A, B or C")
		scale     = flag.Int64("scale", 0, "override the input's iteration scale")
		noInfer   = flag.Bool("noinfer", false, "disable temperature inference")
		noLink    = flag.Bool("nolink", false, "disable package linking")
		dynL      = flag.Bool("dynlaunch", false, "use dynamic launch-point selection instead of static links")
		noOpt     = flag.Bool("noopt", false, "disable layout and rescheduling")
		verifyOn  = cliflags.VerifyFlag(flag.CommandLine)
		equivOn   = cliflags.EquivFlag(flag.CommandLine)
		list      = flag.Bool("list", false, "list benchmarks and exit")
		verbose   = flag.Bool("v", false, "per-phase and per-package detail")
		logf      = cliflags.LogFlags(flag.CommandLine, "print only the final coverage/speedup line (same as -log off for diagnostics)")
		tracePath = flag.String("trace", "", "write a JSON span/event/metric trace of the run to `file`")
		storeDir  = cliflags.StoreFlag(flag.CommandLine)
		machine   = cliflags.MachineFlags(flag.CommandLine)
	)
	flag.Parse()
	quiet := logf.Quiet()

	mc := cpu.DefaultConfig()
	if err := machine.Apply(&mc); err != nil {
		fmt.Fprintln(os.Stderr, "vpack:", err)
		os.Exit(2)
	}

	var o obs.Observer = obs.Nop{}
	if *tracePath != "" {
		tracing.rec = obs.NewRecorder()
		tracing.path = *tracePath
		o = tracing.rec
	}

	lg, err := telemetry.NewLogger(logf.Mode(), os.Stderr, tracing.rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpack:", err)
		os.Exit(2)
	}
	logger = lg

	if *list {
		for _, b := range workload.Ordered() {
			fmt.Printf("%-10s %-40s inputs:", b.Name, b.Paper)
			for _, in := range b.Inputs {
				fmt.Printf(" %s(x%d)", in.Name, in.Scale)
			}
			fmt.Println()
		}
		return
	}

	var p *prog.Program
	var title string
	if *asmPath != "" {
		src, err := os.ReadFile(*asmPath)
		if err != nil {
			fatal(err)
		}
		p, err = asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		title = *asmPath
	} else {
		b, err := workload.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		in, err := b.InputByName(*input)
		if err != nil {
			fatal(err)
		}
		if *scale > 0 {
			in.Scale = *scale
		}
		p = b.Build(in)
		title = fmt.Sprintf("%s/%s", b.Name, in.Name)
	}

	cfg := core.ScaledConfig()
	cfg.Region.EnableInference = !*noInfer
	cfg.Pack.EnableLinking = !*noLink
	cfg.Pack.DynamicLaunch = *dynL
	if *dynL {
		cfg.Pack.EnableLinking = false
	}
	cfg.EnableLayout = !*noOpt
	cfg.EnableSchedule = !*noOpt
	cfg.Verify = *verifyOn
	cfg.Equiv = *equivOn

	if !quiet {
		fmt.Printf("%s: %d funcs, %d blocks, %d static insts\n",
			title, len(p.Funcs), p.NumBlocks(), p.NumInsts())
	}

	// With -store, the pipeline reuses a persisted profile when one
	// matches this image and writes a fresh one through; the emitted
	// trace is identical either way (the golden-trace gate runs both).
	var store *cas.Store
	if *storeDir != "" {
		store, err = cas.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
	}

	out, err := cas.PipelineObserved(store, cfg, p, o)
	if err != nil {
		if errors.Is(err, core.ErrNoPhases) || errors.Is(err, core.ErrNoPackages) {
			logger.Warn("the run may be too short for the detector; raise -scale")
		}
		fatal(err)
	}
	if !quiet {
		fmt.Printf("profile: %d insts, %d cond branches, %d raw detections -> %d phases (%d redundant, %d skipped)\n",
			out.ProfileInsts, out.ProfileBranches, out.Detections,
			len(out.DB.Phases), out.DB.Redundant, out.SkippedPhases)
	}

	if *verbose {
		for _, ph := range out.DB.Phases {
			fmt.Printf("  phase %d: %d branches, %d detections, exec weight %d\n",
				ph.ID, len(ph.Branches), ph.Detections, ph.TotalExec())
		}
		for _, r := range out.Regions {
			fmt.Printf("  region phase %d: %d profiled, %d hot blocks, +%d inferred hot, %d inferred cold, %d grown\n",
				r.PhaseID, r.ProfiledBranches, r.NumHot(), r.InferredHot, r.InferredCold, r.GrownBlocks)
		}
		for _, pk := range out.Pack.Packages {
			linked := 0
			for _, e := range pk.Exits {
				if e.Linked != nil {
					linked++
				}
			}
			fmt.Printf("  package %-24s root=%-12s blocks=%-4d branches=%-3d entries=%d exits=%d linked=%d inlines=%d\n",
				pk.Fn.Name, pk.Root.Name, len(pk.Fn.Blocks), pk.Branches,
				len(pk.Entries), len(pk.Exits), linked, pk.InlinedCalls)
		}
	}

	if *equivOn && !quiet {
		proved, fuzzed := 0, 0
		for _, c := range out.Equiv {
			proved += c.PathsProved
			if c.BudgetExceeded {
				fuzzed++
			}
		}
		fmt.Printf("equiv: %d packages proved equivalent (%d paths, %d budget-capped to differential fuzzing)\n",
			len(out.Equiv), proved, fuzzed)
	}

	if !quiet {
		fmt.Printf("packages: %d in %d groups, %d links, %d monitors, %d launch points\n",
			len(out.Pack.Packages), len(out.Pack.Groups), out.Pack.Links, out.Pack.Monitors, out.Pack.LaunchPoints)
		fmt.Printf("static: orig %d insts, +%d added (%.1f%%), %d selected (%.1f%%), replication %.2f\n",
			out.Pack.OrigInsts, out.Pack.AddedInsts, out.Pack.CodeGrowth()*100,
			out.Pack.SelectedInsts, out.Pack.SelectedFraction()*100, out.Pack.Replication())
	}

	ev, err := out.EvaluateObserved(mc, 0, o)
	if err != nil {
		fatal(err)
	}
	eq := "EQUIVALENT"
	if !ev.Equivalent {
		eq = "DIVERGED (BUG)"
	}
	if !quiet {
		fmt.Printf("timed: base %d cycles (IPC %.2f) vs packed %d cycles (IPC %.2f)\n",
			ev.Base.Cycles, ev.Base.IPC(), ev.Packed.Cycles, ev.Packed.IPC())
	}
	fmt.Printf("coverage %.1f%%  speedup %.3f  %s\n", ev.Coverage*100, ev.Speedup, eq)

	if !quiet {
		cz := out.DB.Categorize()
		fmt.Printf("branch categories (dynamic-weighted):")
		for c := phasedb.Category(0); c < phasedb.NumCategories; c++ {
			fmt.Printf(" %s=%.1f%%", c, cz.Fraction(c)*100)
		}
		fmt.Println()
	}
	flushTrace()
}

func fatal(err error) {
	flushTrace()
	fmt.Fprintln(os.Stderr, "vpack:", err)
	if errors.Is(err, core.ErrVerifyFailed) {
		os.Exit(3)
	}
	if errors.Is(err, core.ErrNotEquivalent) {
		for _, ce := range equiv.Counterexamples(err) {
			fmt.Fprintln(os.Stderr, "vpack: counterexample:", ce.String())
		}
		os.Exit(4)
	}
	os.Exit(1)
}
