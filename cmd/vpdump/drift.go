package main

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/drift"
	"repro/internal/hsd"
	"repro/internal/phasedb"
	"repro/internal/prog"
)

// driftReport runs the offline twin of vpackd's drift tracking: profile
// the program once, build the baseline phase database from half of the
// detected hot spots (a repack's snapshot), then replay the other half
// through a tracker and print the window timeline and score
// breakdown. With shift set the replayed half is synthetically
// phase-shifted the same way vpbench -phaseshift shifts its streams, so
// the report demonstrates a rising score without a daemon.
func driftReport(w io.Writer, cfg core.Config, p *prog.Program, name string, dcfg drift.Config, shift bool) error {
	if !dcfg.Enabled() {
		return fmt.Errorf("drift tracking disabled (-driftwindow 0); nothing to report")
	}
	img, err := p.Linearize()
	if err != nil {
		return err
	}

	var spots []hsd.HotSpot
	det := hsd.New(cfg.Detector, func(h hsd.HotSpot) { spots = append(spots, h) })
	m := cpu.NewMachine(img)
	err = m.Run(cfg.ProfileLimit, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.SetInstCount(m.InstCount)
			det.Branch(si.PC, si.Taken)
		}
	})
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	if len(spots) < 2 {
		return fmt.Errorf("%s: %d hot spots detected; need at least 2 to split baseline/replay", name, len(spots))
	}

	// Even-indexed spots seed the phase database whose snapshot becomes
	// the baseline (what the daemon digests at each repack); odd-indexed
	// spots are the replayed stream. Interleaving rather than halving
	// keeps both sides sampling the program's whole phase behavior, so a
	// stable replay keeps divergence and bias flips near zero and
	// -driftshift stands out on every axis.
	db := phasedb.New(cfg.Filter)
	var replay []hsd.HotSpot
	for i, hs := range spots {
		if i%2 == 0 {
			db.Record(hs)
		} else {
			replay = append(replay, hs)
		}
	}
	if shift {
		replay = shiftHotSpots(replay)
	}
	// Short local runs rarely fill a daemon-sized window; shrink so the
	// replay closes at least two windows and the score is measured.
	if dcfg.Window > len(replay)/2 {
		dcfg.Window = max(1, len(replay)/2)
		fmt.Fprintf(w, "note: only %d replay records; window shrunk to %d\n", len(replay), dcfg.Window)
	}

	tr := drift.NewTracker(dcfg, name, nil)
	tr.SetBaseline(db.Snapshot(), 1)
	for _, hs := range replay {
		id := -1
		if ph := db.Record(hs); ph != nil {
			id = ph.ID
		}
		tr.Observe(hs, id)
	}

	mode := "stable replay"
	if shift {
		mode = "phase-shifted replay"
	}
	fmt.Fprintf(w, "%s: %d hot spots (%d baseline, %d replay, %s), %d baseline phases\n",
		name, len(spots), len(spots)-len(replay), len(replay), mode, len(db.Phases))
	fmt.Fprintf(w, "window %d records, ring %d windows\n\n", dcfg.Window, dcfg.Ring)

	fmt.Fprintf(w, "%4s %7s %8s %-12s %9s %6s %8s %7s\n",
		"win", "records", "branches", "phases", "diverg", "flips", "crossed", "score")
	for _, ws := range tr.Timeline() {
		fmt.Fprintf(w, "%4d %7d %8d %-12s %9.3f %6d %8v %7.3f\n",
			ws.Seq, ws.Records, ws.Branches, phaseList(ws.Phases),
			ws.Divergence, ws.BiasFlips, ws.Crossed, ws.Score)
	}

	sc := tr.Score()
	fmt.Fprintf(w, "\nscore breakdown (over the %d most recent windows):\n", sc.WindowsScored)
	fmt.Fprintf(w, "  hot-set divergence  %6.3f\n", sc.HotSetDivergence)
	fmt.Fprintf(w, "  bias flips          %6d\n", sc.BiasFlips)
	fmt.Fprintf(w, "  filter crossings    %6.3f\n", sc.FilterCrossings)
	fmt.Fprintf(w, "  composite           %6.3f   (peak %.3f, baseline v%d)\n",
		sc.Composite, sc.Peak, sc.BaselineVersion)
	return nil
}

// shiftHotSpots applies the same synthetic phase shift vpbench's
// -phaseshift mode applies on the wire: drop the first two fifths of
// each record's branch set (a >30% set difference) and flip every
// surviving branch's taken count, inverting its bias. PCs stay real so
// the phase database still accepts the records.
func shiftHotSpots(spots []hsd.HotSpot) []hsd.HotSpot {
	out := make([]hsd.HotSpot, len(spots))
	for i, hs := range spots {
		drop := 2 * len(hs.Branches) / 5
		brs := make([]hsd.BranchRecord, 0, len(hs.Branches)-drop)
		for _, b := range hs.Branches[drop:] {
			b.Taken = b.Exec - b.Taken
			brs = append(brs, b)
		}
		out[i] = hs
		out[i].Branches = brs
	}
	return out
}

// phaseList renders a window's phase attributions compactly.
func phaseList(ids []int) string {
	if len(ids) == 0 {
		return "-"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, ",")
}
