// Command vpdump renders control-flow graphs as Graphviz DOT: a whole
// function, a phase's region temperatures superimposed on it (the paper's
// Figure 3 view), or an extracted package with its exits and links.
//
// Usage:
//
//	vpdump -bench m88ksim -fn simulate                 # plain CFG
//	vpdump -bench m88ksim -fn simulate -phase 0        # region temperatures
//	vpdump -bench m88ksim -pkg 0                       # extracted package
//	vpdump -asm prog.vpasm -fn main -phase 0
//	vpdump -bench m88ksim -drift                       # self-baselined drift report
//	vpdump -bench m88ksim -drift -driftshift           # ...with an induced phase shift
//
// Pipe the DOT output to `dot -Tsvg`. -drift prints a text report
// instead: the program is profiled once, half of the detected hot spots
// (interleaved) build a phase database whose snapshot becomes the drift
// baseline (what vpackd does at each repack), and the other half is
// replayed through a drift tracker sized by the shared
// -driftwindow/-driftring knobs. A stable replay keeps the divergence
// and bias-flip axes near zero (windows straddling the program's own
// phase transitions may still cross the 30% filter rule); -driftshift
// replays a synthetically phase-shifted stream and every axis rises —
// the offline twin of `vpbench -daemon URL -phaseshift`.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/cas"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// logger carries the profiling/stage diagnostics on stderr (stdout
// carries the DOT graph); -log selects its format, -q silences it.
var logger = slog.New(slog.DiscardHandler)

// logProfileStats reports the profiling run.
func logProfileStats(st core.ProfileStats, phases int) {
	logger.Info("profile",
		"insts", st.Insts, "branches", st.Branches,
		"detections", st.Detections, "phases", phases)
}

// logStageStats reports per-stage wall times and per-phase skip reasons
// gathered during an observed pipeline run.
func logStageStats(t *obs.Trace) {
	byName := make(map[string]time.Duration)
	for _, st := range t.SpanTotals() {
		byName[st.Name] = st.Total
	}
	// Shares are of the summed stage wall time (the suite/pipeline wrapper
	// spans are excluded as they would double-count their children), so the
	// profile-vs-evaluate balance reads directly off the log line.
	var total time.Duration
	for _, name := range obs.Stages() {
		if d, ok := byName[name]; ok && name != obs.StageSuite && name != obs.StagePipeline {
			total += d
		}
	}
	attrs := make([]any, 0, 2*len(byName))
	for _, name := range obs.Stages() {
		if d, ok := byName[name]; ok && name != obs.StageSuite && name != obs.StagePipeline {
			v := d.Round(time.Microsecond).String()
			if total > 0 {
				v = fmt.Sprintf("%v (%.1f%%)", d.Round(time.Microsecond), 100*float64(d)/float64(total))
			}
			attrs = append(attrs, name, v)
		}
	}
	logger.Info("stages", attrs...)
	// Execution-engine counters (block cache + superblock tier) from the
	// timed evaluation runs, when the run recorded any.
	engine := make([]any, 0, 2*7)
	for _, name := range obs.EngineCounters() {
		if v, ok := t.Metrics.Counters[name]; ok {
			engine = append(engine, name, v)
		}
	}
	if len(engine) > 0 {
		logger.Info("engine", engine...)
	}
	for _, e := range t.Events {
		if e.Kind == obs.PhaseSkipped.String() {
			logger.Warn("phase skipped", "phase", e.Phase, "reason", e.Name)
		}
	}
}

func main() {
	var (
		asmPath    = flag.String("asm", "", "dump a hand-written VPIR assembly file")
		bench      = flag.String("bench", "m88ksim", "benchmark name")
		input      = flag.String("input", "A", "input name")
		fnName     = flag.String("fn", "", "function to dump (default: hottest region function)")
		phase      = flag.Int("phase", -1, "overlay this phase's region temperatures")
		pkgIdx     = flag.Int("pkg", -1, "dump the Nth extracted package instead")
		driftOn    = flag.Bool("drift", false, "print a self-baselined drift report instead of DOT")
		driftShift = flag.Bool("driftshift", false, "with -drift: phase-shift the replayed half so the score rises")
		driftf     = cliflags.DriftFlags(flag.CommandLine)
		storeDir   = cliflags.StoreFlag(flag.CommandLine)
		logf       = cliflags.LogFlags(flag.CommandLine, "suppress profiling/stage diagnostics (same as -log off)")
	)
	flag.Parse()

	lg, err := telemetry.NewLogger(logf.Mode(), os.Stderr, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpdump:", err)
		os.Exit(2)
	}
	logger = lg

	var p *prog.Program
	if *asmPath != "" {
		src, err := os.ReadFile(*asmPath)
		if err != nil {
			fatal(err)
		}
		p, err = asm.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
	} else {
		b, err := workload.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		in, err := b.InputByName(*input)
		if err != nil {
			fatal(err)
		}
		p = b.Build(in)
	}

	cfg := core.ScaledConfig()
	if *driftOn {
		name := *bench
		if *asmPath != "" {
			name = *asmPath
		}
		if err := driftReport(os.Stdout, cfg, p, name, driftf.Config(), *driftShift); err != nil {
			fatal(err)
		}
		return
	}
	// -store reuses a persisted profile for the -pkg pipeline run (and
	// writes one through on a miss), so repeated dumps of the same
	// benchmark skip the profiling pass.
	var store *cas.Store
	if *storeDir != "" {
		s, err := cas.Open(*storeDir)
		if err != nil {
			fatal(err)
		}
		defer s.Close()
		store = s
	}
	if *pkgIdx >= 0 {
		rec := obs.NewRecorder()
		out, err := cas.PipelineObserved(store, cfg, p, rec)
		if out != nil {
			logProfileStats(core.ProfileStats{
				Insts: out.ProfileInsts, Branches: out.ProfileBranches, Detections: out.Detections,
			}, len(out.DB.Phases))
			// A timed evaluation run feeds the evaluate span and the
			// block-cache/superblock engine counters into the stage view.
			if err == nil {
				if _, everr := out.EvaluateObserved(cpu.DefaultConfig(), 0, rec); everr != nil {
					logger.Warn("evaluation failed", "err", everr)
				}
			}
			logStageStats(rec.Export())
			if out.SkippedPhases > 0 {
				logger.Warn("phases skipped", "count", out.SkippedPhases)
			}
		}
		if err != nil {
			fatal(err)
		}
		if *pkgIdx >= len(out.Pack.Packages) {
			fatal(fmt.Errorf("only %d packages", len(out.Pack.Packages)))
		}
		pk := out.Pack.Packages[*pkgIdx]
		fmt.Print(DumpFunc(pk.Fn, nil))
		return
	}

	var reg *region.Region
	if *phase >= 0 {
		img, err := p.Linearize()
		if err != nil {
			fatal(err)
		}
		db, st, err := core.Profile(cfg, img, nil)
		if db != nil {
			logProfileStats(st, len(db.Phases))
		}
		if err != nil {
			fatal(err)
		}
		if *phase >= len(db.Phases) {
			fatal(fmt.Errorf("only %d phases detected", len(db.Phases)))
		}
		reg, err = region.Identify(cfg.Region, img, db.Phases[*phase])
		if err != nil {
			fatal(err)
		}
	}

	fn := p.FuncByName(*fnName)
	if fn == nil && reg != nil {
		if funcs := reg.HotFuncs(p); len(funcs) > 0 {
			fn = funcs[0]
		}
	}
	if fn == nil {
		fn = p.Main
	}
	fmt.Print(DumpFunc(fn, reg))
}

// DumpFunc renders one function's CFG as DOT, coloring blocks and arcs by
// region temperature when a region is supplied.
func DumpFunc(fn *prog.Func, reg *region.Region) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n  node [shape=box, fontname=monospace];\n", fn.Name)
	blockColor := func(b *prog.Block) string {
		if reg == nil {
			return "white"
		}
		switch reg.BlockTemp[b] {
		case region.Hot:
			return "tomato"
		case region.Cold:
			return "lightblue"
		default:
			return "lightgray"
		}
	}
	arcAttr := func(k region.ArcKey) string {
		label := "F"
		if k.Taken {
			label = "T"
		}
		if reg == nil {
			return fmt.Sprintf("label=%q", label)
		}
		switch reg.ArcTemp[k] {
		case region.Hot:
			return fmt.Sprintf("label=%q, color=red, penwidth=2", label)
		case region.Cold:
			return fmt.Sprintf("label=%q, color=blue, style=dashed", label)
		default:
			return fmt.Sprintf("label=%q, color=gray", label)
		}
	}
	for _, b := range fn.Blocks {
		label := fmt.Sprintf("b%d (%d insts)\\n%s", b.ID, len(b.Insts), b.Kind)
		if len(b.ExitConsumes) > 0 {
			label += fmt.Sprintf("\\nconsumes %d regs", len(b.ExitConsumes))
		}
		fmt.Fprintf(&sb, "  b%d [label=%q, style=filled, fillcolor=%s];\n", b.ID, label, blockColor(b))
	}
	escape := func(dst *prog.Block, attr string) string {
		if dst.Fn == fn {
			return fmt.Sprintf("b%d [%s]", dst.ID, attr)
		}
		// Cross-function arc: render a distinct terminal node.
		return fmt.Sprintf("%q [%s, style=dotted]", dst.String(), attr)
	}
	for _, b := range fn.Blocks {
		switch b.Kind {
		case prog.TermFall:
			fmt.Fprintf(&sb, "  b%d -> %s;\n", b.ID, escape(b.Next, arcAttr(region.ArcKey{From: b, Taken: false})))
		case prog.TermBranch:
			fmt.Fprintf(&sb, "  b%d -> %s;\n", b.ID, escape(b.Taken, arcAttr(region.ArcKey{From: b, Taken: true})))
			fmt.Fprintf(&sb, "  b%d -> %s;\n", b.ID, escape(b.Next, arcAttr(region.ArcKey{From: b, Taken: false})))
		case prog.TermCall:
			fmt.Fprintf(&sb, "  b%d -> %s;\n", b.ID, escape(b.Next, arcAttr(region.ArcKey{From: b, Taken: false})))
			fmt.Fprintf(&sb, "  b%d -> %q [style=dotted, label=\"call\"];\n", b.ID, b.Callee.Name)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpdump:", err)
	os.Exit(1)
}
