// Command vplint adapts internal/lint to the `go vet -vettool` protocol,
// so the repository's custom checks (insts-mutation, dropped-observer,
// mutate-after-hash) run over every package with ordinary build caching:
//
//	go build -o bin/vplint ./cmd/vplint
//	go vet -vettool=$PWD/bin/vplint ./...
//
// The protocol (the same one golang.org/x/tools' unitchecker speaks,
// reimplemented here on the standard library alone): cmd/go first probes
// the tool with -V=full (version for the build cache key) and -flags
// (supported analyzer flags, JSON), then invokes it once per package with
// the path of a JSON "vet config" describing the compilation unit. The
// tool must write the facts file named by VetxOutput even when it has
// nothing to say, print findings as file:line:col: msg on stderr, and
// exit 2 when there are findings.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/lint"
)

// vetConfig mirrors the JSON compilation-unit description cmd/go hands a
// vettool. Fields we don't consult are omitted.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-flags":
			fmt.Println("[]") // no analyzer flags
			return
		case strings.HasPrefix(os.Args[1], "-V"):
			// Build-cache identity probe. cmd/go requires the form
			// "name version devel ... buildID=<id>" and keys its vet cache
			// on the id, so derive it from this binary's content hash —
			// rebuilding vplint then correctly invalidates cached results.
			fmt.Printf("%s version devel buildID=%s\n", filepath.Base(os.Args[0]), selfID())
			return
		}
	}
	exit := 0
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-") {
			continue
		}
		if runUnit(arg) {
			exit = 2
		}
	}
	os.Exit(exit)
}

// runUnit lints one compilation unit and reports whether it produced
// findings. Any protocol or typecheck problem is treated as "nothing to
// report" — vet must not fail the build for packages we cannot load.
func runUnit(cfgPath string) bool {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatal(err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(fmt.Errorf("%s: %v", cfgPath, err))
	}
	// cmd/go caches on the facts file; write it unconditionally, first,
	// so every early return below still satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatal(err)
		}
	}
	if cfg.VetxOnly {
		return false
	}
	// Only our module's packages; dependencies and the standard library
	// are none of this linter's business.
	if cfg.ImportPath != "repro" && !strings.HasPrefix(cfg.ImportPath, "repro/") {
		return false
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Test files corrupt IR and stub observers on purpose.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, 0)
		if err != nil {
			return false // typecheck-failure policy: stay silent
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	tconf := types.Config{Importer: imp, Error: func(error) {}}
	if _, err := tconf.Check(cfg.ImportPath, fset, files, info); err != nil {
		return false // SucceedOnTypecheckFailure: vet proper reports these
	}

	diags := lint.Analyze(fset, files, info, cfg.ImportPath)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s: %s\n", pos, d)
	}
	return len(diags) > 0
}

// selfID returns a hex content hash of the running executable, for the
// -V=full build-cache identity.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vplint:", err)
	os.Exit(1)
}
