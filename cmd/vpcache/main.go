// Command vpcache inspects and maintains the persistent artifact store
// (internal/cas) that vpack, vpbench and vpackd share via -store.
//
// Usage:
//
//	vpcache ls -store DIR                      # every entry: kind, key, size, age
//	vpcache stat -store DIR                    # footprint summary (entries, chunks, segments, bytes)
//	vpcache verify -store DIR                  # reassemble and checksum every entry; exit 1 on corruption
//	vpcache gc -store DIR [-maxbytes N] [-maxage DUR]
//
// gc evicts oldest-first until the live payload fits -maxbytes (0 = no
// size bound) and drops entries older than -maxage (0 = no age bound),
// then compacts the survivors into a fresh segment; with both bounds
// zero it still reclaims overwrite garbage. verify exits nonzero if any
// entry fails its checksums, so scripts can gate on store health.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cas"
	"repro/internal/cliflags"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "ls":
		cmdLs(os.Args[2:])
	case "stat":
		cmdStat(os.Args[2:])
	case "verify":
		cmdVerify(os.Args[2:])
	case "gc":
		cmdGC(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vpcache ls -store DIR
  vpcache stat -store DIR
  vpcache verify -store DIR
  vpcache gc -store DIR [-maxbytes N] [-maxage DUR]`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpcache:", err)
	os.Exit(1)
}

// openStore opens the -store directory a subcommand parsed; every
// subcommand requires it.
func openStore(dir string) *cas.Store {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "vpcache: -store is required")
		os.Exit(2)
	}
	s, err := cas.Open(dir)
	if err != nil {
		fatal(err)
	}
	return s
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := cliflags.StoreFlag(fs)
	kind := fs.String("kind", "", "show only entries of this kind")
	fs.Parse(args)
	s := openStore(*dir)
	defer s.Close()

	entries := s.List()
	fmt.Printf("%-18s %-33s %10s  %s\n", "kind", "key", "bytes", "created")
	shown := 0
	for _, e := range entries {
		if *kind != "" && e.Kind != *kind {
			continue
		}
		fmt.Printf("%-18s %016x/%016x %10d  %s\n",
			e.Kind, e.Key.A, e.Key.B, e.Size,
			time.Unix(e.Created, 0).UTC().Format(time.RFC3339))
		shown++
	}
	fmt.Printf("%d entries\n", shown)
}

func cmdStat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	dir := cliflags.StoreFlag(fs)
	fs.Parse(args)
	s := openStore(*dir)
	defer s.Close()

	st := s.Stats()
	byKind := map[string]int{}
	for _, e := range s.List() {
		byKind[e.Kind]++
	}
	fmt.Printf("store      %s\n", s.Dir())
	fmt.Printf("entries    %d\n", st.Entries)
	for _, k := range []string{cas.KindProfile, cas.KindBaseline, cas.KindRegion, cas.KindPackageSet, cas.KindVersion, cas.KindProv} {
		if n := byKind[k]; n > 0 {
			fmt.Printf("  %-17s %d\n", k, n)
		}
	}
	fmt.Printf("chunks     %d (%d deduplicated)\n", st.Chunks, st.DedupChunks)
	fmt.Printf("segments   %d\n", st.Segments)
	fmt.Printf("disk       %d bytes\n", st.DiskBytes)
	fmt.Printf("live       %d bytes\n", st.LiveBytes)
	if st.GCRuns > 0 {
		fmt.Printf("gc         %d runs, %d bytes reclaimed\n", st.GCRuns, st.GCReclaimedBytes)
	}
	if err := s.LoadErr(); err != nil {
		fmt.Printf("DEGRADED   %v\n", err)
	}
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := cliflags.StoreFlag(fs)
	fs.Parse(args)
	s := openStore(*dir)
	defer s.Close()

	errs := s.Verify()
	st := s.Stats()
	if len(errs) == 0 {
		fmt.Printf("ok: %d entries, %d segments, %d bytes\n", st.Entries, st.Segments, st.DiskBytes)
		return
	}
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "vpcache:", err)
	}
	fmt.Fprintf(os.Stderr, "vpcache: %d problem(s) in %d entries\n", len(errs), st.Entries)
	os.Exit(1)
}

func cmdGC(args []string) {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	dir := cliflags.StoreFlag(fs)
	maxBytes := fs.Int64("maxbytes", 0, "evict oldest entries until the live payload fits (0: no size bound)")
	maxAge := fs.Duration("maxage", 0, "drop entries older than this (0: no age bound)")
	fs.Parse(args)
	s := openStore(*dir)
	defer s.Close()

	res, err := s.GC(*maxBytes, *maxAge)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("reclaimed %d bytes, dropped %d entries; %d entries (%d bytes) live\n",
		res.ReclaimedBytes, res.DroppedEntries, res.LiveEntries, res.LiveBytes)
}
