// Command vpackd is the continuous-optimization daemon: it accepts
// hardware hot-spot records streamed over HTTP from many concurrent
// clients, aggregates them into per-program profile artifacts, and
// continuously repackages each program through the staged pipeline API
// (RegionStage + PackageStage), serving the resulting versioned
// PackageSets back out. This is the paper's vacuum-packing loop run as
// a service: detection happens at the clients, packing here.
//
// Every ingest and repack is request-scoped: profile POSTs carry (or are
// assigned) a Vpackd-Trace ID that flows through the queue into the
// published version's provenance record, and per-program drift trackers
// score the live stream against the snapshot behind the latest published
// packages (vp_drift_* metrics, /v1/drift, /v1/timeline, /v1/events).
//
// API (JSON):
//
//	GET  /v1/programs                         registered programs + stats
//	POST /v1/profiles/{program}               stream hot-spot records
//	GET  /v1/packages/{program}/{version}     fetch a PackageSet ("latest" ok)
//	GET  /v1/provenance/{program}/{version}   a version's build record
//	GET  /v1/drift/{program}                  live drift status + score
//	GET  /v1/timeline/{program}               retained drift windows
//	GET  /v1/events?after=N&limit=M           bounded event ring (cursor)
//	GET  /metrics, /trace, /healthz, /readyz, /debug/pprof/...
//
// Usage:
//
//	vpackd -addr :8090
//	vpackd -bench m88ksim,vortex -batch 50 -workers 2
//	vpackd -driftwindow 8 -driftring 32        # drift tracker sizing
//	vpbench -daemon http://localhost:8090      # load generator
//	vpbench -daemon URL -phaseshift            # drift-inducing load
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cas"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address (\":0\" picks a free port)")
		addrFile = flag.String("addrfile", "", "write the bound address to this `file` once listening (for scripted startup)")
		benches  = flag.String("bench", "", "comma-separated benchmarks to serve (default: all)")
		scale    = flag.Int64("scale", 0, "override the benchmark input scale (0: input default)")
		workers  = flag.Int("workers", 2, "repack worker goroutines")
		queueCap = flag.Int("queue", 8, "bounded repack queue capacity")
		batch    = flag.Int("batch", 25, "hot-spot records accumulated before a shard is re-queued for repacking")
		driftf   = cliflags.DriftFlags(flag.CommandLine)
		storeDir = cliflags.StoreFlag(flag.CommandLine)
		verifyOn = cliflags.VerifyFlag(flag.CommandLine)
		equivOn  = cliflags.EquivFlag(flag.CommandLine)
		logf     = cliflags.LogFlags(flag.CommandLine, "no daemon logs (same as -log off)")
	)
	flag.Parse()
	os.Exit(run(*addr, *addrFile, *benches, *scale, *workers, *queueCap, *batch, driftf.Config(), *storeDir, *verifyOn, *equivOn, logf.Mode()))
}

func run(addr, addrFile, benches string, scale int64, workers, queueCap, batch int, driftCfg drift.Config, storeDir string, verify, equiv bool, logMode string) int {
	rec := obs.NewRecorder()
	logger, err := telemetry.NewLogger(logMode, os.Stderr, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpackd:", err)
		return 2
	}

	cfg := core.ScaledConfig()
	cfg.Verify = verify
	cfg.Equiv = equiv

	// The daemon owns the store for its whole lifetime: versions recover
	// from it at boot and Close flushes it on the signal path below.
	var store *cas.Store
	if storeDir != "" {
		store, err = cas.Open(storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vpackd:", err)
			return 2
		}
		if lerr := store.LoadErr(); lerr != nil {
			logger.Warn("store opened degraded", "dir", storeDir, "err", lerr)
		}
	}

	d, err := NewDaemon(cfg, splitList(benches), scale, workers, queueCap, batch, driftCfg, store, rec, logger)
	if err != nil {
		if store != nil {
			store.Close()
		}
		fmt.Fprintln(os.Stderr, "vpackd:", err)
		if errors.Is(err, ErrUnknownProgram) {
			var names []string
			for _, b := range workload.Ordered() {
				names = append(names, b.Name)
			}
			fmt.Fprintln(os.Stderr, "vpackd: known benchmarks:", strings.Join(names, ", "))
		}
		return 2
	}

	srv := &http.Server{Addr: addr, Handler: d.Handler()}
	ln, err := listen(srv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpackd:", err)
		return 1
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln+"\n"), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vpackd:", err)
			return 1
		}
	}
	logger.Info("listening", "addr", ln, "programs", len(d.programs),
		"workers", workers, "queue", queueCap, "batch", batch)

	// SIGINT/SIGTERM: stop accepting requests, drain in-flight handlers,
	// then drain the repack queue so no version is lost mid-build.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "vpackd: shutdown:", err)
	}
	d.Close()
	logger.Info("stopped")
	return 0
}

// listen binds srv.Addr and starts serving in the background, returning
// the bound address (resolving ":0").
func listen(srv *http.Server) (string, error) {
	ln, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		return "", err
	}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
