package main

import (
	"bytes"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// openStore opens a store in dir, failing the test on error. No cleanup
// is registered: the daemon under test owns and closes it.
func openStore(t *testing.T, dir string) *cas.Store {
	t.Helper()
	s, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDaemonStoreRestart is the acceptance test for daemon persistence:
// a store-backed daemon publishes versions, shuts down cleanly, and a
// fresh daemon on the same store serves the previous latest PackageSet
// and its provenance immediately — zero repacks, zero ingests.
func TestDaemonStoreRestart(t *testing.T) {
	dir := t.TempDir()

	// First incarnation: stream, publish, shut down (Close flushes the
	// store — the graceful-shutdown path main.go drives on SIGTERM).
	d1, _ := newTestDaemonStore(t, 3, openStore(t, dir))
	h1 := d1.Handler()
	spots := captureSpots(t, d1, "m88ksim")
	for i := 0; i < 3; i++ {
		if w := postSpots(t, h1, "m88ksim", 0, spots); w.Code != http.StatusOK {
			t.Fatalf("POST: %d", w.Code)
		}
	}
	pkg1 := awaitVersion(t, h1, "m88ksim")
	prov1 := get(h1, "/v1/provenance/m88ksim/latest")
	if prov1.Code != http.StatusOK {
		t.Fatalf("GET provenance: %d", prov1.Code)
	}
	d1.Close()

	// Second incarnation on the same directory: the version history is
	// recovered at boot and served without any repack.
	d2, rec2 := newTestDaemonStore(t, 3, openStore(t, dir))
	h2 := d2.Handler()

	w := get(h2, "/v1/packages/m88ksim/latest")
	if w.Code != http.StatusOK {
		t.Fatalf("restarted daemon has no latest version: %d: %s", w.Code, w.Body.String())
	}
	if !bytes.Equal(w.Body.Bytes(), pkg1.Body.Bytes()) {
		t.Fatal("recovered PackageSet differs from the one published before restart")
	}
	set, err := core.DecodePackageSet(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if set.ProgramHash != d2.programs["m88ksim"].hash {
		t.Fatal("recovered version is for a different program build")
	}

	pw := get(h2, "/v1/provenance/m88ksim/latest")
	if pw.Code != http.StatusOK {
		t.Fatalf("restarted daemon has no provenance: %d", pw.Code)
	}
	got, err := core.DecodeProvenance(bytes.NewReader(pw.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.DecodeProvenance(bytes.NewReader(prov1.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != want.Trace || got.Version != want.Version || got.PackageHash != want.PackageHash {
		t.Fatalf("recovered provenance %+v, want %+v", got, want)
	}

	tr := rec2.Export()
	if n := tr.Metrics.Counters[obs.DaemonRepacksCounter]; n != 0 {
		t.Fatalf("restart ran %d repacks; recovery must serve without repacking", n)
	}
	if n := tr.Metrics.Counters[obs.DaemonRecoveredCounter]; n == 0 {
		t.Fatal("recovery counter not incremented")
	}

	// The store series render on /metrics with a real footprint.
	body := get(h2, "/metrics").Body.String()
	if !strings.Contains(body, telemetry.MetricName(obs.StoreBytesGauge)) {
		t.Error("/metrics missing the store bytes gauge")
	}
	if !strings.Contains(body, telemetry.MetricName(obs.DaemonRecoveredCounter)) {
		t.Error("/metrics missing the recovered-versions counter")
	}
}

// TestDaemonStoreRepackContinues: after recovery, fresh streams continue
// the version sequence — version N+1, not a restart at 1 — and persist
// in turn.
func TestDaemonStoreRepackContinues(t *testing.T) {
	dir := t.TempDir()

	d1, _ := newTestDaemonStore(t, 3, openStore(t, dir))
	h1 := d1.Handler()
	spots := captureSpots(t, d1, "m88ksim")
	for i := 0; i < 3; i++ {
		postSpots(t, h1, "m88ksim", 0, spots)
	}
	awaitVersion(t, h1, "m88ksim")
	d1.programs["m88ksim"].mu.Lock()
	n1 := len(d1.programs["m88ksim"].versions)
	d1.programs["m88ksim"].mu.Unlock()
	d1.Close()

	d2, _ := newTestDaemonStore(t, 3, openStore(t, dir))
	h2 := d2.Handler()
	for i := 0; i < 3; i++ {
		postSpots(t, h2, "m88ksim", 0, spots)
	}
	// Wait until a version *newer* than the recovered history publishes.
	deadlineVersion(t, h2, "m88ksim", n1+1)
	d2.Close()

	// Third incarnation sees the continued sequence.
	d3, _ := newTestDaemonStore(t, 3, openStore(t, dir))
	st := d3.programs["m88ksim"]
	st.mu.Lock()
	n3 := len(st.versions)
	provOK := len(st.provs) == n3 && st.provs[n3-1].Version == n3
	st.mu.Unlock()
	if n3 < n1+1 {
		t.Fatalf("third boot recovered %d versions, want >= %d", n3, n1+1)
	}
	if !provOK {
		t.Fatal("recovered provenance chain inconsistent with version history")
	}
}

// TestDaemonStoreStaleProgram: a store holding versions for a different
// program build (hash mismatch) is ignored at boot — the daemon starts
// empty rather than serving packages for a program it isn't running.
func TestDaemonStoreStaleProgram(t *testing.T) {
	dir := t.TempDir()

	d1, _ := newTestDaemonStore(t, 3, openStore(t, dir))
	h1 := d1.Handler()
	spots := captureSpots(t, d1, "m88ksim")
	for i := 0; i < 3; i++ {
		postSpots(t, h1, "m88ksim", 0, spots)
	}
	w := awaitVersion(t, h1, "m88ksim")
	d1.Close()

	// Corrupt the stored version's program hash by re-publishing a set
	// that claims a different build.
	set, err := core.DecodePackageSet(bytes.NewReader(w.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	set.ProgramHash ^= 1
	var buf bytes.Buffer
	if err := set.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := openStore(t, dir)
	if err := s.PutDaemonVersion("m88ksim", 1, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	d2, rec2 := newTestDaemonStore(t, 3, openStore(t, dir))
	if w := get(d2.Handler(), "/v1/packages/m88ksim/latest"); w.Code == http.StatusOK {
		t.Fatal("daemon served a version for a different program build")
	}
	if n := rec2.Export().Metrics.Counters[obs.DaemonRecoveredCounter]; n != 0 {
		t.Fatalf("stale store counted %d recovered versions", n)
	}
}

// deadlineVersion polls until /v1/packages/{program}/{v} resolves.
func deadlineVersion(t *testing.T, h http.Handler, program string, v int) {
	t.Helper()
	path := "/v1/packages/" + program + "/" + strconv.Itoa(v)
	for i := 0; i < 3000; i++ {
		if w := get(h, path); w.Code == http.StatusOK {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("version %d never published", v)
}
