// HTTP/JSON shim: the v1 wire format and route table. Versioned under
// /v1 so the codec can evolve; everything else (/metrics, /trace,
// /healthz, /readyz, /debug/pprof) is the shared telemetry serving tier.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// branchWire is one branch of a streamed hot-spot record.
type branchWire struct {
	PC    int64  `json:"pc"`
	Exec  uint32 `json:"exec"`
	Taken uint32 `json:"taken"`
}

// hotSpotWire is one hot-spot detection as clients stream it: the
// monitor-table contents at detection, in BBB order.
type hotSpotWire struct {
	Seq      int          `json:"seq"`
	AtBranch uint64       `json:"at_branch,string"`
	AtInst   uint64       `json:"at_inst,string"`
	Branches []branchWire `json:"branches"`
}

func (h *hotSpotWire) toHSD() hsd.HotSpot {
	hs := hsd.HotSpot{
		Seq:              h.Seq,
		DetectedAtBranch: h.AtBranch,
		DetectedAtInst:   h.AtInst,
		Branches:         make([]hsd.BranchRecord, len(h.Branches)),
	}
	for i, b := range h.Branches {
		hs.Branches[i] = hsd.BranchRecord{PC: b.PC, Exec: b.Exec, Taken: b.Taken}
	}
	return hs
}

// fromHSD lowers a detector hot spot to the wire form; the daemon's
// tests and load paths use it to build realistic ingest bodies.
func fromHSD(hs hsd.HotSpot) hotSpotWire {
	w := hotSpotWire{
		Seq:      hs.Seq,
		AtBranch: hs.DetectedAtBranch,
		AtInst:   hs.DetectedAtInst,
		Branches: make([]branchWire, len(hs.Branches)),
	}
	for i, b := range hs.Branches {
		w.Branches[i] = branchWire{PC: b.PC, Exec: b.Exec, Taken: b.Taken}
	}
	return w
}

// profilePost is POST /v1/profiles/{program}'s body. ProgramHash, when
// non-zero, must match the daemon's image for the program — a mismatch
// is answered 409 (the client's profile came from a different build).
type profilePost struct {
	ProgramHash uint64        `json:"program_hash,string"`
	HotSpots    []hotSpotWire `json:"hot_spots"`
}

// profileAck is the ingest response.
type profileAck struct {
	Records int64 `json:"records"`
	Queued  bool  `json:"queued"`
}

// programInfo is one row of GET /v1/programs.
type programInfo struct {
	Program     string `json:"program"`
	Input       string `json:"input"`
	Scale       int64  `json:"scale"`
	ProgramHash uint64 `json:"program_hash,string"`
	Records     int64  `json:"records"`
	Versions    int    `json:"versions"`
	Pending     bool   `json:"pending"`
	LastError   string `json:"last_error,omitempty"`
}

// Handler builds the daemon's full route table: the /v1 API plus the
// telemetry tier, whose /metrics always exposes the daemon series.
func (d *Daemon) Handler() http.Handler {
	tsrv := telemetry.NewServer(d.rec)
	tsrv.AlwaysCounters(obs.DaemonCounters()...)
	tsrv.SetReady(true)

	mux := http.NewServeMux()
	mux.Handle("/", tsrv.Handler())
	mux.HandleFunc("GET /v1/programs", d.handlePrograms)
	mux.HandleFunc("POST /v1/profiles/{program}", d.handleProfile)
	mux.HandleFunc("GET /v1/packages/{program}/{version}", d.handlePackage)
	return mux
}

func (d *Daemon) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	var list []programInfo
	for _, b := range orderedNames(d.programs) {
		st := d.programs[b]
		st.mu.Lock()
		list = append(list, programInfo{
			Program:     st.name,
			Input:       st.input,
			Scale:       st.scale,
			ProgramHash: st.hash,
			Records:     st.records,
			Versions:    len(st.versions),
			Pending:     st.pending,
			LastError:   st.lastErr,
		})
		st.mu.Unlock()
	}
	writeJSON(w, list)
}

func (d *Daemon) handleProfile(w http.ResponseWriter, r *http.Request) {
	st, err := d.lookup(r.PathValue("program"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var post profilePost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		http.Error(w, fmt.Sprintf("vpackd: decode profile record: %v", err), http.StatusBadRequest)
		return
	}
	if post.ProgramHash != 0 && post.ProgramHash != st.hash {
		err := fmt.Errorf("vpackd: profile of image %016x streamed to image %016x: %w",
			post.ProgramHash, st.hash, core.ErrStaleArtifact)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	d.record(st, post.HotSpots)
	st.mu.Lock()
	ack := profileAck{Records: st.records, Queued: st.pending}
	st.mu.Unlock()
	writeJSON(w, ack)
}

func (d *Daemon) handlePackage(w http.ResponseWriter, r *http.Request) {
	st, err := d.lookup(r.PathValue("program"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	data, v, err := st.version(r.PathValue("version"))
	if err != nil {
		http.Error(w, fmt.Sprintf("vpackd: %s: %v", st.name, err), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Vpackd-Version", fmt.Sprint(v))
	w.Write(data)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// orderedNames returns map keys sorted, so /v1/programs is stable.
func orderedNames(m map[string]*programState) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
