// HTTP/JSON shim: the v1 wire format and route table. Versioned under
// /v1 so the codec can evolve; everything else (/metrics, /trace,
// /healthz, /readyz, /debug/pprof) is the shared telemetry serving tier.
package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// TraceHeader carries a request-scoped trace ID: clients may set it on
// ingest POSTs (the daemon mints an "ing-" ID otherwise), and the daemon
// echoes it on ingest responses and stamps package/provenance responses
// with the repack trace that built the served version.
const TraceHeader = "Vpackd-Trace"

// branchWire is one branch of a streamed hot-spot record.
type branchWire struct {
	PC    int64  `json:"pc"`
	Exec  uint32 `json:"exec"`
	Taken uint32 `json:"taken"`
}

// hotSpotWire is one hot-spot detection as clients stream it: the
// monitor-table contents at detection, in BBB order.
type hotSpotWire struct {
	Seq      int          `json:"seq"`
	AtBranch uint64       `json:"at_branch,string"`
	AtInst   uint64       `json:"at_inst,string"`
	Branches []branchWire `json:"branches"`
}

func (h *hotSpotWire) toHSD() hsd.HotSpot {
	hs := hsd.HotSpot{
		Seq:              h.Seq,
		DetectedAtBranch: h.AtBranch,
		DetectedAtInst:   h.AtInst,
		Branches:         make([]hsd.BranchRecord, len(h.Branches)),
	}
	for i, b := range h.Branches {
		hs.Branches[i] = hsd.BranchRecord{PC: b.PC, Exec: b.Exec, Taken: b.Taken}
	}
	return hs
}

// fromHSD lowers a detector hot spot to the wire form; the daemon's
// tests and load paths use it to build realistic ingest bodies.
func fromHSD(hs hsd.HotSpot) hotSpotWire {
	w := hotSpotWire{
		Seq:      hs.Seq,
		AtBranch: hs.DetectedAtBranch,
		AtInst:   hs.DetectedAtInst,
		Branches: make([]branchWire, len(hs.Branches)),
	}
	for i, b := range hs.Branches {
		w.Branches[i] = branchWire{PC: b.PC, Exec: b.Exec, Taken: b.Taken}
	}
	return w
}

// profilePost is POST /v1/profiles/{program}'s body. ProgramHash, when
// non-zero, must match the daemon's image for the program — a mismatch
// is answered 409 (the client's profile came from a different build).
type profilePost struct {
	ProgramHash uint64        `json:"program_hash,string"`
	HotSpots    []hotSpotWire `json:"hot_spots"`
}

// profileAck is the ingest response. Trace echoes the request's trace ID
// (client-supplied or daemon-minted), the handle for following the
// records through /v1/events and into a version's provenance chain.
type profileAck struct {
	Records int64  `json:"records"`
	Queued  bool   `json:"queued"`
	Trace   string `json:"trace"`
}

// programInfo is one row of GET /v1/programs.
type programInfo struct {
	Program     string `json:"program"`
	Input       string `json:"input"`
	Scale       int64  `json:"scale"`
	ProgramHash uint64 `json:"program_hash,string"`
	Records     int64  `json:"records"`
	Versions    int    `json:"versions"`
	Pending     bool   `json:"pending"`
	LastError   string `json:"last_error,omitempty"`
	// DriftScore is the program's live composite drift score (0 when
	// drift tracking is disabled or no baseline is published yet).
	DriftScore float64 `json:"drift_score"`
}

// timelineReply is GET /v1/timeline/{program}'s body.
type timelineReply struct {
	Program string                `json:"program"`
	Windows []drift.WindowSummary `json:"windows"`
}

// eventsReply is GET /v1/events' body: the retained events after the
// cursor, plus the ring cursors for resuming and gap detection.
type eventsReply struct {
	Events   []drift.StreamEvent `json:"events"`
	Earliest int64               `json:"earliest"`
	Next     int64               `json:"next"`
}

// Handler builds the daemon's full route table: the /v1 API plus the
// telemetry tier, whose /metrics always exposes the daemon series.
func (d *Daemon) Handler() http.Handler {
	tsrv := telemetry.NewServer(d.rec)
	tsrv.AlwaysCounters(obs.DaemonCounters()...)
	tsrv.AlwaysCounters(obs.DriftCounters()...)
	tsrv.AlwaysCounters(obs.StoreCounters()...)
	tsrv.AlwaysCounters(obs.EquivCounters()...)
	tsrv.AlwaysGauges(obs.DriftGauges()...)
	tsrv.AlwaysGauges(obs.StoreGauges()...)
	tsrv.AlwaysHistograms(obs.DaemonHistograms()...)
	tsrv.AlwaysHistograms(obs.DriftHistograms()...)
	tsrv.SetReady(true)

	mux := http.NewServeMux()
	mux.Handle("/", tsrv.Handler())
	mux.HandleFunc("GET /v1/programs", d.handlePrograms)
	mux.HandleFunc("POST /v1/profiles/{program}", d.handleProfile)
	mux.HandleFunc("GET /v1/packages/{program}/{version}", d.handlePackage)
	mux.HandleFunc("GET /v1/provenance/{program}/{version}", d.handleProvenance)
	mux.HandleFunc("GET /v1/drift/{program}", d.handleDrift)
	mux.HandleFunc("GET /v1/timeline/{program}", d.handleTimeline)
	mux.HandleFunc("GET /v1/events", d.handleEvents)
	return mux
}

func (d *Daemon) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	var list []programInfo
	for _, b := range orderedNames(d.programs) {
		st := d.programs[b]
		score := st.tracker.Score()
		st.mu.Lock()
		list = append(list, programInfo{
			Program:     st.name,
			Input:       st.input,
			Scale:       st.scale,
			ProgramHash: st.hash,
			Records:     st.records,
			Versions:    len(st.versions),
			Pending:     st.pending,
			LastError:   st.lastErr,
			DriftScore:  score.Composite,
		})
		st.mu.Unlock()
	}
	writeJSON(w, list)
}

func (d *Daemon) handleProfile(w http.ResponseWriter, r *http.Request) {
	st, err := d.lookup(r.PathValue("program"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var post profilePost
	if err := json.NewDecoder(r.Body).Decode(&post); err != nil {
		http.Error(w, fmt.Sprintf("vpackd: decode profile record: %v", err), http.StatusBadRequest)
		return
	}
	if post.ProgramHash != 0 && post.ProgramHash != st.hash {
		err := fmt.Errorf("vpackd: profile of image %016x streamed to image %016x: %w",
			post.ProgramHash, st.hash, core.ErrStaleArtifact)
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	trace := d.ingestTrace(r.Header.Get(TraceHeader))
	d.record(st, post.HotSpots, trace)
	st.mu.Lock()
	ack := profileAck{Records: st.records, Queued: st.pending, Trace: trace}
	st.mu.Unlock()
	w.Header().Set(TraceHeader, trace)
	writeJSON(w, ack)
}

func (d *Daemon) handlePackage(w http.ResponseWriter, r *http.Request) {
	st, err := d.lookup(r.PathValue("program"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	data, v, err := st.version(r.PathValue("version"))
	if err != nil {
		http.Error(w, fmt.Sprintf("vpackd: %s: %v", st.name, err), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Vpackd-Version", fmt.Sprint(v))
	// Surface the version's provenance in headers (the body stays a bare
	// PackageSet for decoder compatibility); the full chain is one GET
	// away at /v1/provenance/{program}/{version}.
	if prov, err := st.provenance(fmt.Sprint(v)); err == nil {
		w.Header().Set(TraceHeader, prov.Trace)
		w.Header().Set("Vpackd-Drift-Score", strconv.FormatFloat(prov.DriftScore, 'f', 4, 64))
	}
	w.Write(data)
}

func (d *Daemon) handleProvenance(w http.ResponseWriter, r *http.Request) {
	st, err := d.lookup(r.PathValue("program"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	prov, err := st.provenance(r.PathValue("version"))
	if err != nil {
		http.Error(w, fmt.Sprintf("vpackd: %s: %v", st.name, err), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceHeader, prov.Trace)
	if err := prov.EncodeJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (d *Daemon) handleDrift(w http.ResponseWriter, r *http.Request) {
	st, err := d.lookup(r.PathValue("program"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, st.tracker.Status())
}

func (d *Daemon) handleTimeline(w http.ResponseWriter, r *http.Request) {
	st, err := d.lookup(r.PathValue("program"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, timelineReply{Program: st.name, Windows: st.tracker.Timeline()})
}

// handleEvents serves the bounded event ring with cursor pagination:
// ?after=N resumes past seq N, ?limit=M caps the page.
func (d *Daemon) handleEvents(w http.ResponseWriter, r *http.Request) {
	var after int64
	var limit int
	if s := r.URL.Query().Get("after"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("vpackd: bad after %q", s), http.StatusBadRequest)
			return
		}
		after = v
	}
	if s := r.URL.Query().Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("vpackd: bad limit %q", s), http.StatusBadRequest)
			return
		}
		limit = v
	}
	events, earliest, next := d.events.Since(after, limit)
	if events == nil {
		events = []drift.StreamEvent{}
	}
	writeJSON(w, eventsReply{Events: events, Earliest: earliest, Next: next})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// orderedNames returns map keys sorted, so /v1/programs is stable.
func orderedNames(m map[string]*programState) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
