package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// newTestDaemon builds a one-benchmark daemon at scale 1 (the test
// scale the rest of the repo uses) with a small batch so a handful of
// records triggers a repack.
func newTestDaemon(t *testing.T, batch int) (*Daemon, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder()
	d, err := NewDaemon(core.ScaledConfig(), []string{"m88ksim"}, 1, 2, 4, batch,
		rec, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, rec
}

// captureSpots profiles the daemon's own image and returns the raw
// detector output in wire form — genuine hot-spot records, not mocks.
func captureSpots(t *testing.T, d *Daemon, name string) []hotSpotWire {
	t.Helper()
	st := d.programs[name]
	var spots []hotSpotWire
	det := hsd.New(d.cfg.Detector, func(h hsd.HotSpot) { spots = append(spots, fromHSD(h)) })
	m := cpu.NewMachine(st.img)
	err := m.Run(d.cfg.ProfileLimit, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.SetInstCount(m.InstCount)
			det.Branch(si.PC, si.Taken)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spots) == 0 {
		t.Fatal("profiling detected no hot spots")
	}
	return spots
}

func postSpots(t *testing.T, h http.Handler, program string, hash uint64, spots []hotSpotWire) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(profilePost{ProgramHash: hash, HotSpots: spots})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/profiles/"+program, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// awaitVersion polls the package endpoint until the daemon has built at
// least one version.
func awaitVersion(t *testing.T, h http.Handler, program string) *httptest.ResponseRecorder {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		w := get(h, "/v1/packages/"+program+"/latest")
		if w.Code == http.StatusOK {
			return w
		}
		if time.Now().After(deadline) {
			t.Fatalf("no package version after 60s: %s", w.Body.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	// Program discovery advertises the shard and its image hash.
	w := get(h, "/v1/programs")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/programs: %d", w.Code)
	}
	var progs []programInfo
	if err := json.Unmarshal(w.Body.Bytes(), &progs); err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || progs[0].Program != "m88ksim" {
		t.Fatalf("programs = %+v", progs)
	}
	if progs[0].ProgramHash != d.programs["m88ksim"].hash {
		t.Fatalf("advertised hash %016x, shard hash %016x", progs[0].ProgramHash, d.programs["m88ksim"].hash)
	}

	// Stream enough records to cross the batch threshold.
	for i := 0; i < 3; i++ {
		if w := postSpots(t, h, "m88ksim", progs[0].ProgramHash, spots); w.Code != http.StatusOK {
			t.Fatalf("POST profile: %d: %s", w.Code, w.Body.String())
		}
	}

	// The daemon repacks and publishes a version.
	w = awaitVersion(t, h, "m88ksim")
	set, err := core.DecodePackageSet(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if set.ProgramHash != progs[0].ProgramHash {
		t.Fatalf("package hash %016x, program hash %016x", set.ProgramHash, progs[0].ProgramHash)
	}
	if len(set.Packages) == 0 {
		t.Fatal("published PackageSet has no packages")
	}
	packed, err := set.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	img, err := packed.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if core.ImageHash(img) != set.PackedHash {
		t.Fatalf("reassembled image %016x, packed hash %016x", core.ImageHash(img), set.PackedHash)
	}

	// Explicit version numbers resolve; absurd ones don't.
	if w := get(h, "/v1/packages/m88ksim/1"); w.Code != http.StatusOK {
		t.Fatalf("GET version 1: %d", w.Code)
	}
	if w := get(h, "/v1/packages/m88ksim/999"); w.Code != http.StatusNotFound {
		t.Fatalf("GET version 999: %d", w.Code)
	}
	if w := get(h, "/v1/packages/m88ksim/bogus"); w.Code != http.StatusNotFound {
		t.Fatalf("GET version bogus: %d", w.Code)
	}

	// /metrics exports the daemon series.
	w = get(h, "/metrics")
	body := w.Body.String()
	for _, series := range []string{
		telemetry.MetricName(obs.DaemonQueueDepthGauge),
		telemetry.MetricName(obs.DaemonRepackLatencyHist),
		telemetry.MetricName(obs.DaemonRecordsCounter),
		telemetry.MetricName(obs.DaemonQueueRejectedCounter),
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
}

func TestDaemonUnknownProgram(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()

	if w := postSpots(t, h, "nope", 0, nil); w.Code != http.StatusNotFound {
		t.Fatalf("POST to unknown program: %d", w.Code)
	}
	if w := get(h, "/v1/packages/nope/latest"); w.Code != http.StatusNotFound {
		t.Fatalf("GET unknown program: %d", w.Code)
	}
	if _, err := d.lookup("nope"); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("lookup error %v, want ErrUnknownProgram", err)
	}
	_, err := NewDaemon(core.ScaledConfig(), []string{"nope"}, 1, 1, 1, 1,
		obs.NewRecorder(), slog.New(slog.DiscardHandler))
	if !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("NewDaemon error %v, want ErrUnknownProgram", err)
	}
}

func TestDaemonStaleProfile(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	w := postSpots(t, h, "m88ksim", d.programs["m88ksim"].hash^1, spots)
	if w.Code != http.StatusConflict {
		t.Fatalf("stale POST: %d, want 409", w.Code)
	}
	if !strings.Contains(w.Body.String(), core.ErrStaleArtifact.Error()) {
		t.Fatalf("409 body %q does not name the stale-artifact error", w.Body.String())
	}
	// A zero hash means the client didn't claim a build; accept it.
	if w := postSpots(t, h, "m88ksim", 0, spots[:1]); w.Code != http.StatusOK {
		t.Fatalf("hashless POST: %d: %s", w.Code, w.Body.String())
	}
}

// TestDaemonConcurrentStreams drives 1000 concurrent profile streams
// through the handler — the acceptance load for the ingest path: the
// per-shard mutex serializes accumulation, the bounded queue absorbs
// repack pressure, and no record is lost.
func TestDaemonConcurrentStreams(t *testing.T) {
	d, rec := newTestDaemon(t, 50)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	const streams = 1000
	perStream := spots[:1]
	var wg sync.WaitGroup
	codes := make([]int, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			codes[s] = postSpots(t, h, "m88ksim", 0, perStream).Code
		}(s)
	}
	wg.Wait()
	for s, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("stream %d: status %d", s, code)
		}
	}

	st := d.programs["m88ksim"]
	st.mu.Lock()
	records := st.records
	st.mu.Unlock()
	if records != streams {
		t.Fatalf("accepted %d records, want %d", records, streams)
	}
	if got := rec.Export().Metrics.Counters[obs.DaemonRecordsCounter]; got != streams {
		t.Fatalf("%s = %d, want %d", obs.DaemonRecordsCounter, got, streams)
	}

	// The load crossed the batch threshold many times over; the daemon
	// must still converge on at least one published version.
	awaitVersion(t, h, "m88ksim")
}

func TestDaemonCloseStopsQueue(t *testing.T) {
	rec := obs.NewRecorder()
	d, err := NewDaemon(core.ScaledConfig(), []string{"m88ksim"}, 1, 1, 1, 1,
		rec, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if d.enqueue(d.programs["m88ksim"]) {
		t.Fatal("enqueue succeeded after Close")
	}
	if got := rec.Export().Metrics.Counters[obs.DaemonQueueRejectedCounter]; got != 0 {
		t.Fatalf("closed enqueue counted as queue rejection (%d)", got)
	}
}

func TestProgramStateVersionSelection(t *testing.T) {
	st := &programState{versions: [][]byte{[]byte("v1"), []byte("v2")}}
	for _, tc := range []struct {
		sel  string
		data string
		v    int
		ok   bool
	}{
		{"latest", "v2", 2, true},
		{"1", "v1", 1, true},
		{"2", "v2", 2, true},
		{"3", "", 0, false},
		{"0", "", 0, false},
		{"-1", "", 0, false},
		{"x", "", 0, false},
	} {
		data, v, err := st.version(tc.sel)
		if tc.ok != (err == nil) {
			t.Errorf("version(%q) err = %v, want ok=%v", tc.sel, err, tc.ok)
			continue
		}
		if tc.ok && (string(data) != tc.data || v != tc.v) {
			t.Errorf("version(%q) = %q, %d; want %q, %d", tc.sel, data, v, tc.data, tc.v)
		}
	}
	empty := &programState{}
	if _, _, err := empty.version("latest"); err == nil {
		t.Error("latest on empty history should fail")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v", got)
	}
	got := splitList("a, b,,c ")
	want := []string{"a", "b", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("splitList = %v, want %v", got, want)
	}
}
