package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/drift"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// testDriftCfg sizes the drift trackers small enough that the handful of
// records a test streams closes windows.
var testDriftCfg = drift.Config{Window: 2, Ring: 16, Recent: 2}

// newTestDaemon builds a one-benchmark daemon at scale 1 (the test
// scale the rest of the repo uses) with a small batch so a handful of
// records triggers a repack.
func newTestDaemon(t *testing.T, batch int) (*Daemon, *obs.Recorder) {
	t.Helper()
	return newTestDaemonStore(t, batch, nil)
}

// newTestDaemonStore is newTestDaemon with a persistent artifact store;
// the daemon owns it (Close closes it), so restart tests reopen the
// directory for the next incarnation.
func newTestDaemonStore(t *testing.T, batch int, store *cas.Store) (*Daemon, *obs.Recorder) {
	t.Helper()
	rec := obs.NewRecorder()
	d, err := NewDaemon(core.ScaledConfig(), []string{"m88ksim"}, 1, 2, 4, batch,
		testDriftCfg, store, rec, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d, rec
}

// captureSpots profiles the daemon's own image and returns the raw
// detector output in wire form — genuine hot-spot records, not mocks.
func captureSpots(t *testing.T, d *Daemon, name string) []hotSpotWire {
	t.Helper()
	st := d.programs[name]
	var spots []hotSpotWire
	det := hsd.New(d.cfg.Detector, func(h hsd.HotSpot) { spots = append(spots, fromHSD(h)) })
	m := cpu.NewMachine(st.img)
	err := m.Run(d.cfg.ProfileLimit, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.SetInstCount(m.InstCount)
			det.Branch(si.PC, si.Taken)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spots) == 0 {
		t.Fatal("profiling detected no hot spots")
	}
	return spots
}

func postSpots(t *testing.T, h http.Handler, program string, hash uint64, spots []hotSpotWire) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(profilePost{ProgramHash: hash, HotSpots: spots})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/profiles/"+program, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// awaitVersion polls the package endpoint until the daemon has built at
// least one version.
func awaitVersion(t *testing.T, h http.Handler, program string) *httptest.ResponseRecorder {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		w := get(h, "/v1/packages/"+program+"/latest")
		if w.Code == http.StatusOK {
			return w
		}
		if time.Now().After(deadline) {
			t.Fatalf("no package version after 60s: %s", w.Body.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDaemonEndToEnd(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	// Program discovery advertises the shard and its image hash.
	w := get(h, "/v1/programs")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/programs: %d", w.Code)
	}
	var progs []programInfo
	if err := json.Unmarshal(w.Body.Bytes(), &progs); err != nil {
		t.Fatal(err)
	}
	if len(progs) != 1 || progs[0].Program != "m88ksim" {
		t.Fatalf("programs = %+v", progs)
	}
	if progs[0].ProgramHash != d.programs["m88ksim"].hash {
		t.Fatalf("advertised hash %016x, shard hash %016x", progs[0].ProgramHash, d.programs["m88ksim"].hash)
	}

	// Stream enough records to cross the batch threshold.
	for i := 0; i < 3; i++ {
		if w := postSpots(t, h, "m88ksim", progs[0].ProgramHash, spots); w.Code != http.StatusOK {
			t.Fatalf("POST profile: %d: %s", w.Code, w.Body.String())
		}
	}

	// The daemon repacks and publishes a version.
	w = awaitVersion(t, h, "m88ksim")
	set, err := core.DecodePackageSet(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if set.ProgramHash != progs[0].ProgramHash {
		t.Fatalf("package hash %016x, program hash %016x", set.ProgramHash, progs[0].ProgramHash)
	}
	if len(set.Packages) == 0 {
		t.Fatal("published PackageSet has no packages")
	}
	packed, err := set.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	img, err := packed.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if core.ImageHash(img) != set.PackedHash {
		t.Fatalf("reassembled image %016x, packed hash %016x", core.ImageHash(img), set.PackedHash)
	}

	// Explicit version numbers resolve; absurd ones don't.
	if w := get(h, "/v1/packages/m88ksim/1"); w.Code != http.StatusOK {
		t.Fatalf("GET version 1: %d", w.Code)
	}
	if w := get(h, "/v1/packages/m88ksim/999"); w.Code != http.StatusNotFound {
		t.Fatalf("GET version 999: %d", w.Code)
	}
	if w := get(h, "/v1/packages/m88ksim/bogus"); w.Code != http.StatusNotFound {
		t.Fatalf("GET version bogus: %d", w.Code)
	}

	// /metrics exports the daemon series.
	w = get(h, "/metrics")
	body := w.Body.String()
	for _, series := range []string{
		telemetry.MetricName(obs.DaemonQueueDepthGauge),
		telemetry.MetricName(obs.DaemonRepackLatencyHist),
		telemetry.MetricName(obs.DaemonRecordsCounter),
		telemetry.MetricName(obs.DaemonQueueRejectedCounter),
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
}

func TestDaemonUnknownProgram(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()

	if w := postSpots(t, h, "nope", 0, nil); w.Code != http.StatusNotFound {
		t.Fatalf("POST to unknown program: %d", w.Code)
	}
	if w := get(h, "/v1/packages/nope/latest"); w.Code != http.StatusNotFound {
		t.Fatalf("GET unknown program: %d", w.Code)
	}
	if _, err := d.lookup("nope"); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("lookup error %v, want ErrUnknownProgram", err)
	}
	_, err := NewDaemon(core.ScaledConfig(), []string{"nope"}, 1, 1, 1, 1,
		testDriftCfg, nil, obs.NewRecorder(), slog.New(slog.DiscardHandler))
	if !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("NewDaemon error %v, want ErrUnknownProgram", err)
	}
}

func TestDaemonStaleProfile(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	w := postSpots(t, h, "m88ksim", d.programs["m88ksim"].hash^1, spots)
	if w.Code != http.StatusConflict {
		t.Fatalf("stale POST: %d, want 409", w.Code)
	}
	if !strings.Contains(w.Body.String(), core.ErrStaleArtifact.Error()) {
		t.Fatalf("409 body %q does not name the stale-artifact error", w.Body.String())
	}
	// A zero hash means the client didn't claim a build; accept it.
	if w := postSpots(t, h, "m88ksim", 0, spots[:1]); w.Code != http.StatusOK {
		t.Fatalf("hashless POST: %d: %s", w.Code, w.Body.String())
	}
}

// TestDaemonConcurrentStreams drives 1000 concurrent profile streams
// through the handler — the acceptance load for the ingest path: the
// per-shard mutex serializes accumulation, the bounded queue absorbs
// repack pressure, and no record is lost.
func TestDaemonConcurrentStreams(t *testing.T) {
	d, rec := newTestDaemon(t, 50)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	const streams = 1000
	perStream := spots[:1]
	var wg, readWG sync.WaitGroup
	codes := make([]int, streams)
	// Concurrent observability readers ride along with the ingest load:
	// the bounded event ring and the drift/timeline endpoints must stay
	// consistent (and race-clean) without ever blocking ingest.
	const readers = 8
	readerErrs := make([]error, readers)
	stop := make(chan struct{})
	for rd := 0; rd < readers; rd++ {
		readWG.Add(1)
		go func(rd int) {
			defer readWG.Done()
			var cursor int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := get(h, fmt.Sprintf("/v1/events?after=%d&limit=64", cursor))
				if w.Code != http.StatusOK {
					readerErrs[rd] = fmt.Errorf("/v1/events: %d", w.Code)
					return
				}
				var ev eventsReply
				if err := json.Unmarshal(w.Body.Bytes(), &ev); err != nil {
					readerErrs[rd] = err
					return
				}
				for i := 1; i < len(ev.Events); i++ {
					if ev.Events[i].Seq != ev.Events[i-1].Seq+1 {
						readerErrs[rd] = fmt.Errorf("non-contiguous event seqs %d -> %d",
							ev.Events[i-1].Seq, ev.Events[i].Seq)
						return
					}
				}
				cursor = ev.Next
				if w := get(h, "/v1/drift/m88ksim"); w.Code != http.StatusOK {
					readerErrs[rd] = fmt.Errorf("/v1/drift: %d", w.Code)
					return
				}
				if w := get(h, "/v1/timeline/m88ksim"); w.Code != http.StatusOK {
					readerErrs[rd] = fmt.Errorf("/v1/timeline: %d", w.Code)
					return
				}
			}
		}(rd)
	}
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			codes[s] = postSpots(t, h, "m88ksim", 0, perStream).Code
		}(s)
	}
	wg.Wait()
	close(stop)
	readWG.Wait()
	for rd, err := range readerErrs {
		if err != nil {
			t.Errorf("reader %d: %v", rd, err)
		}
	}
	for s, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("stream %d: status %d", s, code)
		}
	}

	st := d.programs["m88ksim"]
	st.mu.Lock()
	records := st.records
	st.mu.Unlock()
	if records != streams {
		t.Fatalf("accepted %d records, want %d", records, streams)
	}
	if got := rec.Export().Metrics.Counters[obs.DaemonRecordsCounter]; got != streams {
		t.Fatalf("%s = %d, want %d", obs.DaemonRecordsCounter, got, streams)
	}

	// The load crossed the batch threshold many times over; the daemon
	// must still converge on at least one published version.
	awaitVersion(t, h, "m88ksim")
}

func TestDaemonCloseStopsQueue(t *testing.T) {
	rec := obs.NewRecorder()
	d, err := NewDaemon(core.ScaledConfig(), []string{"m88ksim"}, 1, 1, 1, 1,
		testDriftCfg, nil, rec, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
	d.Close() // idempotent
	if d.enqueue(d.programs["m88ksim"]) {
		t.Fatal("enqueue succeeded after Close")
	}
	if got := rec.Export().Metrics.Counters[obs.DaemonQueueRejectedCounter]; got != 0 {
		t.Fatalf("closed enqueue counted as queue rejection (%d)", got)
	}
}

func TestProgramStateVersionSelection(t *testing.T) {
	st := &programState{versions: [][]byte{[]byte("v1"), []byte("v2")}}
	for _, tc := range []struct {
		sel  string
		data string
		v    int
		ok   bool
	}{
		{"latest", "v2", 2, true},
		{"1", "v1", 1, true},
		{"2", "v2", 2, true},
		{"3", "", 0, false},
		{"0", "", 0, false},
		{"-1", "", 0, false},
		{"x", "", 0, false},
	} {
		data, v, err := st.version(tc.sel)
		if tc.ok != (err == nil) {
			t.Errorf("version(%q) err = %v, want ok=%v", tc.sel, err, tc.ok)
			continue
		}
		if tc.ok && (string(data) != tc.data || v != tc.v) {
			t.Errorf("version(%q) = %q, %d; want %q, %d", tc.sel, data, v, tc.data, tc.v)
		}
	}
	empty := &programState{}
	if _, _, err := empty.version("latest"); err == nil {
		t.Error("latest on empty history should fail")
	}
}

// shiftSpots synthesizes a phase shift from captured records: the first
// ~40% of each record's branches are dropped (hot-set change) and the
// survivors' taken counts are flipped (bias flips). The PCs stay real,
// so the daemon's phase database still accepts the records.
func shiftSpots(spots []hotSpotWire) []hotSpotWire {
	out := make([]hotSpotWire, len(spots))
	for i, s := range spots {
		ns := s
		drop := len(s.Branches) * 2 / 5
		ns.Branches = make([]branchWire, 0, len(s.Branches)-drop)
		for _, b := range s.Branches[drop:] {
			b.Taken = b.Exec - b.Taken
			ns.Branches = append(ns.Branches, b)
		}
		out[i] = ns
	}
	return out
}

// postSpotsTrace is postSpots with a client-supplied trace header.
func postSpotsTrace(t *testing.T, h http.Handler, program string, hash uint64, spots []hotSpotWire, trace string) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(profilePost{ProgramHash: hash, HotSpots: spots})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/profiles/"+program, bytes.NewReader(body))
	req.Header.Set(TraceHeader, trace)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestDaemonDriftEndpoints exercises the drift observability surface
// end to end: stream → repack → baseline → /v1/drift, /v1/timeline,
// /v1/events and the always-present vp_drift_* series on /metrics.
func TestDaemonDriftEndpoints(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	// The drift series exist before any traffic — the no-gaps contract.
	body := get(h, "/metrics").Body.String()
	for _, name := range append(append(obs.DriftCounters(), obs.DriftGauges()...), obs.DriftHistograms()...) {
		if !strings.Contains(body, telemetry.MetricName(name)) {
			t.Errorf("/metrics missing %s before traffic", telemetry.MetricName(name))
		}
	}
	if !strings.Contains(body, telemetry.MetricName(obs.DaemonQueueWaitHist)) {
		t.Errorf("/metrics missing %s before traffic", telemetry.MetricName(obs.DaemonQueueWaitHist))
	}

	for i := 0; i < 3; i++ {
		postSpots(t, h, "m88ksim", 0, spots)
	}
	awaitVersion(t, h, "m88ksim")

	// /v1/drift reports an enabled tracker with a published baseline.
	w := get(h, "/v1/drift/m88ksim")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/drift: %d: %s", w.Code, w.Body.String())
	}
	var status drift.Status
	if err := json.Unmarshal(w.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if !status.Enabled || status.Program != "m88ksim" {
		t.Fatalf("drift status = %+v", status)
	}
	if status.BaselineVersion < 1 {
		t.Fatalf("no baseline after publish: %+v", status)
	}
	if status.Samples != int64(3*len(spots)) {
		t.Fatalf("drift samples = %d, want %d", status.Samples, 3*len(spots))
	}

	// /v1/timeline retains closed windows.
	w = get(h, "/v1/timeline/m88ksim")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/timeline: %d", w.Code)
	}
	var tl timelineReply
	if err := json.Unmarshal(w.Body.Bytes(), &tl); err != nil {
		t.Fatal(err)
	}
	if len(tl.Windows) == 0 {
		t.Fatal("timeline empty after streaming")
	}
	if tl.Windows[0].Records != testDriftCfg.Window {
		t.Fatalf("window records = %d, want %d", tl.Windows[0].Records, testDriftCfg.Window)
	}

	// /v1/events carries the full chain: ingests, windows, repacks,
	// baseline publishes — and the cursor paginates.
	w = get(h, "/v1/events")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /v1/events: %d", w.Code)
	}
	var ev eventsReply
	if err := json.Unmarshal(w.Body.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, e := range ev.Events {
		kinds[e.Kind]++
	}
	for _, k := range []string{drift.EventIngest, drift.EventWindow, drift.EventRepackStart, drift.EventRepackDone, drift.EventBaseline} {
		if kinds[k] == 0 {
			t.Errorf("no %q event in stream (have %v)", k, kinds)
		}
	}
	w = get(h, fmt.Sprintf("/v1/events?after=%d&limit=2", ev.Events[0].Seq))
	var page eventsReply
	if err := json.Unmarshal(w.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Events) != 2 || page.Events[0].Seq != ev.Events[0].Seq+1 {
		t.Fatalf("cursor page = %+v", page.Events)
	}
	if w := get(h, "/v1/events?after=x"); w.Code != http.StatusBadRequest {
		t.Fatalf("bad cursor accepted: %d", w.Code)
	}

	// Unknown programs 404 on every new endpoint.
	for _, path := range []string{"/v1/drift/nope", "/v1/timeline/nope", "/v1/provenance/nope/latest"} {
		if w := get(h, path); w.Code != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, w.Code)
		}
	}

	// After traffic the queue-wait histogram has samples and the
	// per-program drift series exist.
	body = get(h, "/metrics").Body.String()
	if !strings.Contains(body, telemetry.MetricName(obs.DaemonQueueWaitHist)+"_count") {
		t.Error("queue-wait histogram not rendered")
	}
	if !strings.Contains(body, telemetry.MetricName(obs.DriftScoreGauge+".m88ksim")) {
		t.Error("per-program drift score series missing")
	}
}

// TestDaemonProvenanceChain checks that a published version links back
// to the ingest traces that fed it and the artifact hashes it produced.
func TestDaemonProvenanceChain(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	// Client-scoped traces: the daemon must chain these, not invent IDs.
	traces := []string{"client-alpha", "client-beta", "client-gamma"}
	for _, tr := range traces {
		w := postSpotsTrace(t, h, "m88ksim", 0, spots, tr)
		if w.Code != http.StatusOK {
			t.Fatalf("POST: %d", w.Code)
		}
		if got := w.Header().Get(TraceHeader); got != tr {
			t.Fatalf("ingest echoed trace %q, want %q", got, tr)
		}
		var ack profileAck
		if err := json.Unmarshal(w.Body.Bytes(), &ack); err != nil {
			t.Fatal(err)
		}
		if ack.Trace != tr {
			t.Fatalf("ack trace %q, want %q", ack.Trace, tr)
		}
	}
	pkg := awaitVersion(t, h, "m88ksim")

	w := get(h, "/v1/provenance/m88ksim/latest")
	if w.Code != http.StatusOK {
		t.Fatalf("GET provenance: %d: %s", w.Code, w.Body.String())
	}
	prov, err := core.DecodeProvenance(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if prov.Program != "m88ksim" || prov.Version < 1 {
		t.Fatalf("provenance = %+v", prov)
	}
	if !strings.HasPrefix(prov.Trace, "rpk-") {
		t.Fatalf("repack trace %q", prov.Trace)
	}
	got := make(map[string]bool)
	for _, ing := range prov.Ingests {
		got[ing.Trace] = true
		if ing.Records != len(spots) {
			t.Fatalf("ingest ref %+v, want %d records", ing, len(spots))
		}
	}
	if !got[traces[0]] {
		t.Fatalf("version 1 provenance lost ingest %q: %+v", traces[0], prov.Ingests)
	}
	if prov.ProgramHash != d.programs["m88ksim"].hash {
		t.Fatalf("provenance program hash %016x, shard %016x", prov.ProgramHash, d.programs["m88ksim"].hash)
	}
	if prov.ProfileHash == 0 || prov.RegionHash == 0 || prov.PackageHash == 0 {
		t.Fatalf("artifact hashes missing: %+v", prov)
	}
	if prov.QueueWaitUS < 0 || prov.BuildUS <= 0 {
		t.Fatalf("timings: %+v", prov)
	}
	if len(prov.Spans) < 2 {
		t.Fatalf("stage spans missing: %+v", prov.Spans)
	}

	// The artifact chain is consistent with what's actually served: the
	// published PackageSet's content hash matches the provenance record.
	set, err := core.DecodePackageSet(bytes.NewReader(pkg.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	setHash, err := set.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if setHash != prov.PackageHash {
		t.Fatalf("served set hash %016x, provenance %016x", setHash, prov.PackageHash)
	}

	// The package response advertises its provenance in headers.
	if got := pkg.Header().Get(TraceHeader); got != prov.Trace {
		t.Fatalf("package trace header %q, provenance trace %q", got, prov.Trace)
	}
	if pkg.Header().Get("Vpackd-Drift-Score") == "" {
		t.Fatal("package response missing drift-score header")
	}
}

// TestDaemonDriftScoreRises is the tentpole's acceptance check at unit
// scale: a phase shift in the stream demonstrably moves the score.
func TestDaemonDriftScoreRises(t *testing.T) {
	d, _ := newTestDaemon(t, 3)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")

	for i := 0; i < 3; i++ {
		postSpots(t, h, "m88ksim", 0, spots)
	}
	awaitVersion(t, h, "m88ksim")

	var before drift.Status
	if err := json.Unmarshal(get(h, "/v1/drift/m88ksim").Body.Bytes(), &before); err != nil {
		t.Fatal(err)
	}

	// Keep the stream identical: the score stays low.
	postSpots(t, h, "m88ksim", 0, spots)
	var stable drift.Status
	if err := json.Unmarshal(get(h, "/v1/drift/m88ksim").Body.Bytes(), &stable); err != nil {
		t.Fatal(err)
	}
	if stable.Score.Composite > 0.3 {
		t.Fatalf("stable stream scored %.3f", stable.Score.Composite)
	}

	// Shift the phase: the composite must rise well past the stable level
	// and the peak must record it.
	postSpots(t, h, "m88ksim", 0, shiftSpots(spots))
	var after drift.Status
	if err := json.Unmarshal(get(h, "/v1/drift/m88ksim").Body.Bytes(), &after); err != nil {
		t.Fatal(err)
	}
	if after.Score.Composite <= stable.Score.Composite+0.2 {
		t.Fatalf("shift did not move the score: stable %.3f, shifted %.3f",
			stable.Score.Composite, after.Score.Composite)
	}
	if after.Score.Peak < after.Score.Composite {
		t.Fatalf("peak %.3f below composite %.3f", after.Score.Peak, after.Score.Composite)
	}
	if after.Score.BiasFlips == 0 {
		t.Fatal("flipped stream reported no bias flips")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Errorf("splitList(\"\") = %v", got)
	}
	got := splitList("a, b,,c ")
	want := []string{"a", "b", "c"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("splitList = %v, want %v", got, want)
	}
}

// TestDaemonEquivGate runs the daemon with translation validation gating
// every repack: the published version must carry per-package certificates
// proving the build, the vp_equiv_* series must be live on /metrics, and
// no rejection may fire on a clean build. (The blocking path itself —
// a refuted proof leaves st.lastErr set and never appends the version —
// shares the repack error machinery exercised by TestDaemonStaleProfile;
// the refutation corpus lives in internal/equiv.)
func TestDaemonEquivGate(t *testing.T) {
	rec := obs.NewRecorder()
	cfg := core.ScaledConfig()
	cfg.Equiv = true
	d, err := NewDaemon(cfg, []string{"m88ksim"}, 1, 2, 4, 3,
		testDriftCfg, nil, rec, slog.New(slog.DiscardHandler))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	h := d.Handler()
	spots := captureSpots(t, d, "m88ksim")
	hash := d.programs["m88ksim"].hash
	for i := 0; i < 3; i++ {
		if w := postSpots(t, h, "m88ksim", hash, spots); w.Code != http.StatusOK {
			t.Fatalf("POST profile: %d: %s", w.Code, w.Body.String())
		}
	}
	w := awaitVersion(t, h, "m88ksim")
	set, err := core.DecodePackageSet(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Equiv) != len(set.Packages) {
		t.Fatalf("published version has %d certificates for %d packages", len(set.Equiv), len(set.Packages))
	}
	for _, c := range set.Equiv {
		if !c.Equivalent {
			t.Fatalf("published version carries a non-equivalent certificate: %s", c.Verdict())
		}
	}

	counters := rec.Export().Metrics.Counters
	if counters[obs.EquivPackagesCounter] == 0 {
		t.Fatal("equiv-gated repack recorded no proved packages")
	}
	if counters[obs.EquivViolationsCounter] != 0 {
		t.Fatalf("clean repack recorded %d equiv violations", counters[obs.EquivViolationsCounter])
	}
	if counters[obs.DaemonEquivRejectedCounter] != 0 {
		t.Fatalf("clean repack recorded %d equiv rejections", counters[obs.DaemonEquivRejectedCounter])
	}

	// The equiv series are always-on for the serving tier: present on
	// /metrics even before any violation.
	body := get(h, "/metrics").Body.String()
	for _, series := range []string{
		telemetry.MetricName(obs.EquivPackagesCounter),
		telemetry.MetricName(obs.EquivViolationsCounter),
		telemetry.MetricName(obs.DaemonEquivRejectedCounter),
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics is missing %s", series)
		}
	}
}
