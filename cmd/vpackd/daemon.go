// Daemon core: per-program sharded profile accumulators, a bounded
// repack queue drained by a fixed worker pool, and versioned package
// serving. The HTTP layer is a thin JSON shim over this; the heavy
// lifting is the staged pipeline API (core.RegionStage/PackageStage)
// resumed from each program's accumulated profile artifact.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/report"
	"repro/internal/workload"
)

// ErrUnknownProgram reports a request naming a program the daemon does
// not serve. It is always wrapped with the offending name via %w; match
// it with errors.Is.
var ErrUnknownProgram = errors.New("unknown program")

// programState is one benchmark's shard: its pristine program and image
// (read-only after registration), the mutexed profile accumulator
// streamed records merge into, and the versioned package history.
type programState struct {
	name  string
	input string
	scale int64
	prog  *prog.Program
	img   *prog.Image
	hash  uint64

	mu      sync.Mutex
	db      *phasedb.DB
	records int64 // total hot-spot records accepted
	dirty   int   // records since the last enqueued repack
	pending bool  // queued or mid-repack
	// versions holds each repack's encoded PackageSet; version N is
	// versions[N-1]. lastErr keeps the most recent repack failure for
	// /v1/programs (ErrNoPhases early in a stream is expected).
	versions [][]byte
	lastErr  string
}

// Daemon is the continuous-optimization service state.
type Daemon struct {
	cfg    core.Config
	rec    *obs.Recorder
	logger *slog.Logger
	batch  int

	programs map[string]*programState

	// queueMu guards queue against sends after Close; the channel itself
	// is the bounded repack work queue.
	queueMu sync.Mutex
	closed  bool
	queue   chan *programState
	poolWG  sync.WaitGroup
}

// NewDaemon registers one programState per benchmark (restricted to
// names when non-empty), each built from its first input at scale
// (0 = the input's own), and starts workers repack goroutines draining
// the queue, which holds at most queueCap pending repacks. batch is how
// many fresh records accumulate before a shard re-enters the queue.
func NewDaemon(cfg core.Config, benches []string, scale int64, workers, queueCap, batch int, rec *obs.Recorder, logger *slog.Logger) (*Daemon, error) {
	ordered := workload.Ordered()
	if len(benches) > 0 {
		var sel []*workload.Benchmark
		for _, name := range benches {
			b, err := workload.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("vpackd: %q: %w", name, ErrUnknownProgram)
			}
			sel = append(sel, b)
		}
		ordered = sel
	}
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if batch < 1 {
		batch = 1
	}
	d := &Daemon{
		cfg:      cfg,
		rec:      rec,
		logger:   logger,
		batch:    batch,
		programs: make(map[string]*programState, len(ordered)),
		queue:    make(chan *programState, queueCap),
	}
	for _, b := range ordered {
		in := b.Inputs[0]
		if scale > 0 {
			in.Scale = scale
		}
		p := b.Build(in)
		img, err := p.Linearize()
		if err != nil {
			return nil, fmt.Errorf("vpackd: %s: linearize: %w", b.Name, err)
		}
		d.programs[b.Name] = &programState{
			name:  b.Name,
			input: in.Name,
			scale: in.Scale,
			prog:  p,
			img:   img,
			hash:  core.ImageHash(img),
			db:    phasedb.New(cfg.Filter),
		}
	}
	// Fixed worker pool over the bounded queue — the same ForEachN
	// discipline the suite runner fans out with; each index is one
	// long-lived drain loop, and the pool returns when Close closes
	// the queue.
	d.poolWG.Add(1)
	go func() {
		defer d.poolWG.Done()
		report.ForEachN(workers, workers, func(int) {
			for st := range d.queue {
				d.rec.Gauge(obs.DaemonQueueDepthGauge, float64(len(d.queue)))
				d.repack(st)
			}
		})
	}()
	d.rec.Gauge(obs.DaemonQueueDepthGauge, 0)
	return d, nil
}

// lookup resolves a program name, wrapping ErrUnknownProgram.
func (d *Daemon) lookup(name string) (*programState, error) {
	if st, ok := d.programs[name]; ok {
		return st, nil
	}
	return nil, fmt.Errorf("vpackd: %q: %w", name, ErrUnknownProgram)
}

// record merges n decoded hot spots into the shard's accumulator and
// enqueues a repack once batch fresh records have piled up. A full queue
// rejects the enqueue (counted, gauge untouched); the next record past
// the threshold retries.
func (d *Daemon) record(st *programState, spots []hotSpotWire) {
	st.mu.Lock()
	for i := range spots {
		st.db.Record(spots[i].toHSD())
	}
	st.records += int64(len(spots))
	st.dirty += len(spots)
	enqueue := !st.pending && st.dirty >= d.batch
	if enqueue {
		st.pending = true
	}
	st.mu.Unlock()
	if enqueue && !d.enqueue(st) {
		st.mu.Lock()
		st.pending = false
		st.mu.Unlock()
	}
	d.rec.Count(obs.DaemonRecordsCounter, int64(len(spots)))
	d.rec.Count(obs.DaemonRecordsCounter+"."+st.name, int64(len(spots)))
}

// enqueue offers st to the bounded queue without blocking the ingest
// path; false means the queue was full (or the daemon closed).
func (d *Daemon) enqueue(st *programState) bool {
	d.queueMu.Lock()
	defer d.queueMu.Unlock()
	if d.closed {
		return false
	}
	select {
	case d.queue <- st:
		d.rec.Gauge(obs.DaemonQueueDepthGauge, float64(len(d.queue)))
		return true
	default:
		d.rec.Count(obs.DaemonQueueRejectedCounter, 1)
		return false
	}
}

// repack runs stages 2+3 from the shard's accumulated profile: snapshot
// the database (so ingest keeps streaming), wrap it as a ProfileArtifact
// stamped with the shard's image hash, resume RegionStage+PackageStage
// against a fresh clone, and publish the encoded PackageSet as the next
// version. Runs on a pool worker; only the snapshot and publish steps
// hold the shard mutex.
func (d *Daemon) repack(st *programState) {
	start := time.Now()
	st.mu.Lock()
	snap := st.db.Snapshot()
	st.dirty = 0
	st.mu.Unlock()

	pa := &core.ProfileArtifact{
		Schema:      core.ProfileArtifactSchema,
		Program:     st.name,
		ProgramHash: st.hash,
		ProfileKey:  d.cfg.ProfileKey(),
		Phases:      snap,
	}
	encoded, err := d.buildVersion(st, pa)

	st.mu.Lock()
	if err != nil {
		st.lastErr = err.Error()
	} else {
		st.lastErr = ""
		st.versions = append(st.versions, encoded)
	}
	st.pending = false
	// Records that streamed in mid-repack re-arm the queue themselves
	// once they cross the batch threshold again; nothing to do here.
	st.mu.Unlock()

	d.rec.Observe(obs.DaemonRepackLatencyHist, float64(time.Since(start).Microseconds()))
	d.rec.Count(obs.DaemonRepacksCounter, 1)
	if err != nil {
		// ErrNoPhases just means the stream is still too thin to package.
		if !errors.Is(err, core.ErrNoPhases) {
			d.logger.Warn("repack failed", "program", st.name, "err", err)
		}
		return
	}
	d.rec.Count(obs.DaemonVersionsCounter, 1)
	d.logger.Info("repacked", "program", st.name,
		"version", len(st.versions), "elapsed", time.Since(start).Round(time.Millisecond))
}

// buildVersion resumes the staged pipeline from pa and returns the
// encoded PackageSet.
func (d *Daemon) buildVersion(st *programState, pa *core.ProfileArtifact) ([]byte, error) {
	clone := st.prog.Clone()
	cloneImg, err := clone.Linearize()
	if err != nil {
		return nil, err
	}
	ra, err := core.RegionStage(d.cfg, cloneImg, pa)
	if err != nil {
		return nil, err
	}
	set, err := core.PackageStage(d.cfg, clone, cloneImg, ra)
	if err != nil {
		return nil, err
	}
	set.Program = st.name
	var buf bytes.Buffer
	if err := set.EncodeJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// version returns the encoded PackageSet for a 1-based version number,
// or the newest one for latest.
func (st *programState) version(sel string) ([]byte, int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.versions)
	if sel == "latest" {
		if n == 0 {
			return nil, 0, fmt.Errorf("no versions yet")
		}
		return st.versions[n-1], n, nil
	}
	var v int
	if _, err := fmt.Sscanf(sel, "%d", &v); err != nil || v < 1 {
		return nil, 0, fmt.Errorf("bad version %q", sel)
	}
	if v > n {
		return nil, 0, fmt.Errorf("version %d not yet built (have %d)", v, n)
	}
	return st.versions[v-1], v, nil
}

// Close stops accepting repacks and waits for in-flight ones to finish.
// Ingest handlers may still run afterwards (the HTTP server drains
// separately); their enqueue attempts fail closed.
func (d *Daemon) Close() {
	d.queueMu.Lock()
	if !d.closed {
		d.closed = true
		close(d.queue)
	}
	d.queueMu.Unlock()
	d.poolWG.Wait()
}
