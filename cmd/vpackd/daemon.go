// Daemon core: per-program sharded profile accumulators, a bounded
// repack queue drained by a fixed worker pool, and versioned package
// serving. The HTTP layer is a thin JSON shim over this; the heavy
// lifting is the staged pipeline API (core.RegionStage/PackageStage)
// resumed from each program's accumulated profile artifact.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/equiv"
	"repro/internal/hsd"
	"repro/internal/obs"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/report"
	"repro/internal/workload"
)

// ErrUnknownProgram reports a request naming a program the daemon does
// not serve. It is always wrapped with the offending name via %w; match
// it with errors.Is.
var ErrUnknownProgram = errors.New("unknown program")

// programState is one benchmark's shard: its pristine program and image
// (read-only after registration), the mutexed profile accumulator
// streamed records merge into, and the versioned package history.
type programState struct {
	name  string
	input string
	scale int64
	prog  *prog.Program
	img   *prog.Image
	hash  uint64

	// tracker is the shard's drift timeline; its own mutex serializes it,
	// so ingest touches it outside the shard lock.
	tracker *drift.Tracker

	mu      sync.Mutex
	db      *phasedb.DB
	records int64 // total hot-spot records accepted
	dirty   int   // records since the last enqueued repack
	pending bool  // queued or mid-repack
	// enqueuedAt stamps the last successful enqueue, for the
	// queue-wait histogram at worker pickup.
	enqueuedAt time.Time
	// pendIngests chains the ingest traces contributing records since the
	// last snapshot (capped at maxProvIngests); pendIngestN is the
	// uncapped count. Both reset when a repack snapshots the shard.
	pendIngests []core.IngestRef
	pendIngestN int64
	// versions holds each repack's encoded PackageSet; version N is
	// versions[N-1], its build record provs[N-1]. lastErr keeps the most
	// recent repack failure for /v1/programs (ErrNoPhases early in a
	// stream is expected).
	versions [][]byte
	provs    []*core.Provenance
	lastErr  string
}

// maxProvIngests caps the ingest-trace chain a provenance record retains;
// IngestsTotal keeps the uncapped count.
const maxProvIngests = 32

// Daemon is the continuous-optimization service state.
type Daemon struct {
	cfg      core.Config
	driftCfg drift.Config
	rec      *obs.Recorder
	logger   *slog.Logger
	batch    int

	// store, when non-nil, persists every published version and its
	// provenance; the daemon owns it (Close flushes and closes it) and
	// recovers the version history from it at boot.
	store *cas.Store

	programs map[string]*programState

	// events is the bounded /v1/events ring; ingestSeq and repackSeq mint
	// the request-scoped trace IDs.
	events    *drift.EventRing
	ingestSeq atomic.Int64
	repackSeq atomic.Int64

	// queueMu guards queue against sends after Close; the channel itself
	// is the bounded repack work queue.
	queueMu sync.Mutex
	closed  bool
	queue   chan *programState
	poolWG  sync.WaitGroup
}

// NewDaemon registers one programState per benchmark (restricted to
// names when non-empty), each built from its first input at scale
// (0 = the input's own), and starts workers repack goroutines draining
// the queue, which holds at most queueCap pending repacks. batch is how
// many fresh records accumulate before a shard re-enters the queue.
// driftCfg sizes the per-program drift trackers (a disabled config keeps
// ingest and repack working with the drift series pinned at zero).
//
// store, when non-nil, is the persistent artifact store: each program's
// published version history is recovered from it before the daemon
// starts serving — a restarted daemon answers /v1/packages/{p}/latest
// (and the matching provenance) immediately, without waiting for a
// repack — and every future repack writes through to it. The daemon
// takes ownership: Close flushes and closes it. Drift baselines are
// deliberately not recovered; the tracker re-baselines at the first
// post-restart repack, so drift scores restart from zero rather than
// comparing against a snapshot that no longer reflects the live stream.
func NewDaemon(cfg core.Config, benches []string, scale int64, workers, queueCap, batch int, driftCfg drift.Config, store *cas.Store, rec *obs.Recorder, logger *slog.Logger) (*Daemon, error) {
	ordered := workload.Ordered()
	if len(benches) > 0 {
		var sel []*workload.Benchmark
		for _, name := range benches {
			b, err := workload.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("vpackd: %q: %w", name, ErrUnknownProgram)
			}
			sel = append(sel, b)
		}
		ordered = sel
	}
	if workers < 1 {
		workers = 1
	}
	if queueCap < 1 {
		queueCap = 1
	}
	if batch < 1 {
		batch = 1
	}
	d := &Daemon{
		cfg:      cfg,
		driftCfg: driftCfg,
		rec:      rec,
		logger:   logger,
		batch:    batch,
		store:    store,
		programs: make(map[string]*programState, len(ordered)),
		events:   drift.NewEventRing(drift.DefaultEventRing),
		queue:    make(chan *programState, queueCap),
	}
	for _, b := range ordered {
		in := b.Inputs[0]
		if scale > 0 {
			in.Scale = scale
		}
		p := b.Build(in)
		img, err := p.Linearize()
		if err != nil {
			return nil, fmt.Errorf("vpackd: %s: linearize: %w", b.Name, err)
		}
		st := &programState{
			name:    b.Name,
			input:   in.Name,
			scale:   in.Scale,
			prog:    p,
			img:     img,
			hash:    core.ImageHash(img),
			db:      phasedb.New(cfg.Filter),
			tracker: drift.NewTracker(driftCfg, b.Name, rec),
		}
		if n := d.recoverVersions(st); n > 0 {
			rec.Count(obs.DaemonRecoveredCounter, int64(n))
			logger.Info("recovered versions", "program", b.Name, "versions", n)
		}
		d.programs[b.Name] = st
	}
	// Fixed worker pool over the bounded queue — the same ForEachN
	// discipline the suite runner fans out with; each index is one
	// long-lived drain loop, and the pool returns when Close closes
	// the queue.
	d.poolWG.Add(1)
	go func() {
		defer d.poolWG.Done()
		report.ForEachN(workers, workers, func(int) {
			for st := range d.queue {
				d.rec.Gauge(obs.DaemonQueueDepthGauge, float64(len(d.queue)))
				d.repack(st)
			}
		})
	}()
	d.rec.Gauge(obs.DaemonQueueDepthGauge, 0)
	if d.store != nil {
		d.publishStoreGauges()
	}
	return d, nil
}

// recoverVersions reloads st's published version history from the
// artifact store: versions 1..N under (NameKey(name), v) until the first
// gap. Each recovered PackageSet must decode and claim the live
// program's image hash — a stale store (the benchmark's build changed
// under it) stops recovery at the last version that still matches, so
// the daemon never serves packages for a program it isn't running.
// Corrupt blobs likewise end recovery as a clean stop, never a panic.
func (d *Daemon) recoverVersions(st *programState) int {
	if d.store == nil {
		return 0
	}
	for v := 1; ; v++ {
		encoded, err := d.store.GetDaemonVersion(st.name, v)
		if err != nil {
			if !errors.Is(err, cas.ErrNotFound) {
				d.logger.Warn("version recovery stopped", "program", st.name, "version", v, "err", err)
			}
			break
		}
		set, err := core.DecodePackageSet(bytes.NewReader(encoded))
		if err != nil {
			d.logger.Warn("version recovery stopped", "program", st.name, "version", v, "err", err)
			break
		}
		if set.ProgramHash != st.hash {
			d.logger.Warn("stored versions are for a different program build; ignoring",
				"program", st.name, "version", v,
				"stored", fmt.Sprintf("%016x", set.ProgramHash),
				"live", fmt.Sprintf("%016x", st.hash))
			break
		}
		prov, err := d.store.GetDaemonProvenance(st.name, v)
		if err != nil {
			d.logger.Warn("version recovery stopped", "program", st.name, "version", v, "err", err)
			break
		}
		st.versions = append(st.versions, encoded)
		st.provs = append(st.provs, prov)
	}
	return len(st.versions)
}

// lookup resolves a program name, wrapping ErrUnknownProgram.
func (d *Daemon) lookup(name string) (*programState, error) {
	if st, ok := d.programs[name]; ok {
		return st, nil
	}
	return nil, fmt.Errorf("vpackd: %q: %w", name, ErrUnknownProgram)
}

// ingestTrace resolves the request-scoped trace ID for one profile POST:
// the client's own (Vpackd-Trace header) when supplied, else a
// daemon-minted "ing-" ID. Every downstream artifact of the ingest —
// queue entry, repack, published version — carries it.
func (d *Daemon) ingestTrace(client string) string {
	if client != "" {
		return client
	}
	return fmt.Sprintf("ing-%08d", d.ingestSeq.Add(1))
}

// record merges n decoded hot spots into the shard's accumulator and
// enqueues a repack once batch fresh records have piled up. A full queue
// rejects the enqueue (counted, gauge untouched); the next record past
// the threshold retries. trace is the ingest's request-scoped ID; it is
// chained into the provenance of whichever version packages the records.
func (d *Daemon) record(st *programState, spots []hotSpotWire, trace string) {
	hss := make([]hsd.HotSpot, len(spots))
	phaseIDs := make([]int, len(spots))
	for i := range spots {
		hss[i] = spots[i].toHSD()
	}

	st.mu.Lock()
	for i := range hss {
		if ph := st.db.Record(hss[i]); ph != nil {
			phaseIDs[i] = ph.ID
		} else {
			phaseIDs[i] = -1
		}
	}
	st.records += int64(len(spots))
	st.dirty += len(spots)
	if len(spots) > 0 {
		st.pendIngestN++
		if len(st.pendIngests) < maxProvIngests {
			st.pendIngests = append(st.pendIngests, core.IngestRef{Trace: trace, Records: len(spots)})
		}
	}
	enqueue := !st.pending && st.dirty >= d.batch
	if enqueue {
		st.pending = true
		st.enqueuedAt = time.Now()
	}
	st.mu.Unlock()
	if enqueue && !d.enqueue(st) {
		st.mu.Lock()
		st.pending = false
		st.mu.Unlock()
	}

	// Fold the records into the drift timeline (the tracker has its own
	// mutex, so the shard lock is not held across it) and surface every
	// closed window on the event stream.
	windowsClosed := 0
	for i := range hss {
		if st.tracker.Observe(hss[i], phaseIDs[i]) {
			windowsClosed++
		}
	}
	if windowsClosed > 0 {
		score := st.tracker.Score()
		for i := 0; i < windowsClosed; i++ {
			d.events.Append(drift.StreamEvent{
				UnixUS:  time.Now().UnixMicro(),
				Kind:    drift.EventWindow,
				Program: st.name,
				Trace:   trace,
				N:       int64(d.driftCfg.Window),
				Score:   score.Composite,
			})
		}
		d.publishDriftAggregate()
	}
	d.events.Append(drift.StreamEvent{
		UnixUS:  time.Now().UnixMicro(),
		Kind:    drift.EventIngest,
		Program: st.name,
		Trace:   trace,
		N:       int64(len(spots)),
	})

	d.rec.Count(obs.DaemonRecordsCounter, int64(len(spots)))
	d.rec.Count(obs.DaemonRecordsCounter+"."+st.name, int64(len(spots)))
}

// publishDriftAggregate refreshes the unsuffixed vp_drift_* gauges as the
// maximum across all programs' trackers — "the most drifted program" is
// the alertable fleet signal; per-program values live on the suffixed
// series.
func (d *Daemon) publishDriftAggregate() {
	var score, peak, div, flips, cross float64
	for _, st := range d.programs {
		s := st.tracker.Score()
		score = max(score, s.Composite)
		peak = max(peak, s.Peak)
		div = max(div, s.HotSetDivergence)
		flips = max(flips, float64(s.BiasFlips))
		cross = max(cross, s.FilterCrossings)
	}
	d.rec.Gauge(obs.DriftScoreGauge, score)
	d.rec.Gauge(obs.DriftPeakGauge, peak)
	d.rec.Gauge(obs.DriftDivergenceGauge, div)
	d.rec.Gauge(obs.DriftBiasFlipsGauge, flips)
	d.rec.Gauge(obs.DriftCrossingsGauge, cross)
}

// enqueue offers st to the bounded queue without blocking the ingest
// path; false means the queue was full (or the daemon closed).
func (d *Daemon) enqueue(st *programState) bool {
	d.queueMu.Lock()
	defer d.queueMu.Unlock()
	if d.closed {
		return false
	}
	select {
	case d.queue <- st:
		d.rec.Gauge(obs.DaemonQueueDepthGauge, float64(len(d.queue)))
		return true
	default:
		d.rec.Count(obs.DaemonQueueRejectedCounter, 1)
		return false
	}
}

// repack runs stages 2+3 from the shard's accumulated profile: snapshot
// the database (so ingest keeps streaming), wrap it as a ProfileArtifact
// stamped with the shard's image hash, resume RegionStage+PackageStage
// against a fresh clone, and publish the encoded PackageSet as the next
// version. Runs on a pool worker; only the snapshot and publish steps
// hold the shard mutex.
func (d *Daemon) repack(st *programState) {
	start := time.Now()
	trace := fmt.Sprintf("rpk-%05d", d.repackSeq.Add(1))

	st.mu.Lock()
	snap := st.db.Snapshot()
	st.dirty = 0
	queueWait := time.Since(st.enqueuedAt)
	ingests := st.pendIngests
	ingestsTotal := st.pendIngestN
	st.pendIngests = nil
	st.pendIngestN = 0
	records := st.records
	st.mu.Unlock()

	d.rec.Observe(obs.DaemonQueueWaitHist, float64(queueWait.Microseconds()))
	d.events.Append(drift.StreamEvent{
		UnixUS: start.UnixMicro(), Kind: drift.EventRepackStart,
		Program: st.name, Trace: trace,
	})

	// The drift measurement at snapshot time is part of the version's
	// provenance: it says how stale the *previous* baseline had become
	// when this build replaced it.
	driftAtBuild := st.tracker.Score()

	pa := &core.ProfileArtifact{
		Schema:      core.ProfileArtifactSchema,
		Program:     st.name,
		ProgramHash: st.hash,
		ProfileKey:  d.cfg.ProfileKey(),
		Phases:      snap,
	}
	prov := &core.Provenance{
		Schema:        core.ProvenanceSchema,
		Program:       st.name,
		Trace:         trace,
		ProgramHash:   st.hash,
		Records:       records,
		Ingests:       ingests,
		IngestsTotal:  ingestsTotal,
		DriftScore:    driftAtBuild.Composite,
		DriftBaseline: driftAtBuild.BaselineVersion,
		QueueWaitUS:   queueWait.Microseconds(),
	}
	encoded, err := d.buildVersion(st, pa, prov)
	prov.BuildUS = time.Since(start).Microseconds()

	version := 0
	st.mu.Lock()
	if err != nil {
		st.lastErr = err.Error()
	} else {
		st.lastErr = ""
		st.versions = append(st.versions, encoded)
		version = len(st.versions)
		prov.Version = version
		st.provs = append(st.provs, prov)
	}
	st.pending = false
	// Records that streamed in mid-repack re-arm the queue themselves
	// once they cross the batch threshold again; nothing to do here.
	st.mu.Unlock()

	d.rec.Observe(obs.DaemonRepackLatencyHist, float64(time.Since(start).Microseconds()))
	d.rec.Count(obs.DaemonRepacksCounter, 1)
	if err != nil {
		d.events.Append(drift.StreamEvent{
			UnixUS: time.Now().UnixMicro(), Kind: drift.EventRepackDone,
			Program: st.name, Trace: trace, Detail: err.Error(),
		})
		// A refuted equivalence proof is a miscompile caught before
		// publication: the version is never appended, so clients keep
		// being served the last good one.
		if errors.Is(err, core.ErrNotEquivalent) {
			n := len(equiv.Counterexamples(err))
			if n == 0 {
				n = 1
			}
			d.rec.Count(obs.DaemonEquivRejectedCounter, 1)
			d.rec.Count(obs.EquivViolationsCounter, int64(n))
		}
		// ErrNoPhases just means the stream is still too thin to package.
		if !errors.Is(err, core.ErrNoPhases) {
			d.logger.Warn("repack failed", "program", st.name, "err", err)
		}
		return
	}

	// Write the published version through to the artifact store and make
	// it durable before announcing: a crash after this point loses
	// nothing, a crash before it simply rebuilds the version from the
	// next stream. Persistence failures degrade the store, not serving.
	if d.store != nil {
		if perr := d.persistVersion(st.name, version, encoded, prov); perr != nil {
			d.logger.Warn("version persist failed", "program", st.name, "version", version, "err", perr)
		}
	}

	// The published version's snapshot becomes the new drift baseline:
	// future windows measure against what is now actually deployed.
	st.tracker.SetBaseline(snap, version)
	d.publishDriftAggregate()
	d.events.Append(drift.StreamEvent{
		UnixUS: time.Now().UnixMicro(), Kind: drift.EventRepackDone,
		Program: st.name, Trace: trace, N: int64(version), Score: driftAtBuild.Composite,
	})
	d.events.Append(drift.StreamEvent{
		UnixUS: time.Now().UnixMicro(), Kind: drift.EventBaseline,
		Program: st.name, Trace: trace, N: int64(version),
	})

	d.rec.Count(obs.DaemonVersionsCounter, 1)
	d.logger.Info("repacked", "program", st.name,
		"version", version, "trace", trace,
		"queue_wait", queueWait.Round(time.Microsecond),
		"drift", fmt.Sprintf("%.3f", driftAtBuild.Composite),
		"elapsed", time.Since(start).Round(time.Millisecond))
}

// persistVersion writes one published version and its build record to
// the store and flushes, so the version survives an immediate crash.
// Serialized by the store's own lock; repack workers may race here.
func (d *Daemon) persistVersion(name string, version int, encoded []byte, prov *core.Provenance) error {
	if err := d.store.PutDaemonVersion(name, version, encoded); err != nil {
		return err
	}
	if err := d.store.PutDaemonProvenance(name, version, prov); err != nil {
		return err
	}
	if err := d.store.Flush(); err != nil {
		return err
	}
	d.publishStoreGauges()
	return nil
}

// publishStoreGauges refreshes the vp_store_* footprint gauges from the
// store's live stats.
func (d *Daemon) publishStoreGauges() {
	sst := d.store.Stats()
	d.rec.Gauge(obs.StoreBytesGauge, float64(sst.DiskBytes))
	d.rec.Gauge(obs.StoreSegmentsGauge, float64(sst.Segments))
}

// buildVersion resumes the staged pipeline from pa, filling prov's
// artifact hashes and stage spans, and returns the encoded PackageSet.
func (d *Daemon) buildVersion(st *programState, pa *core.ProfileArtifact, prov *core.Provenance) ([]byte, error) {
	clone := st.prog.Clone()
	cloneImg, err := clone.Linearize()
	if err != nil {
		return nil, err
	}
	if h, err := pa.Hash(); err == nil {
		prov.ProfileHash = h
	}

	stage := time.Now()
	ra, err := core.RegionStage(d.cfg, cloneImg, pa)
	prov.Spans = append(prov.Spans, core.SpanSummary{Name: "region_stage", US: time.Since(stage).Microseconds()})
	if err != nil {
		return nil, err
	}
	if h, err := ra.Hash(); err == nil {
		prov.RegionHash = h
	}

	stage = time.Now()
	set, err := core.PackageStage(d.cfg, clone, cloneImg, ra)
	prov.Spans = append(prov.Spans, core.SpanSummary{Name: "package_stage", US: time.Since(stage).Microseconds()})
	if err != nil {
		return nil, err
	}
	set.Program = st.name
	for _, c := range set.Equiv {
		d.rec.Count(obs.EquivPackagesCounter, 1)
		d.rec.Count(obs.EquivPathsProvedCounter, int64(c.PathsProved))
		d.rec.Count(obs.EquivPathsFuzzedCounter, int64(c.PathsFuzzed))
	}

	stage = time.Now()
	var buf bytes.Buffer
	if err := set.EncodeJSON(&buf); err != nil {
		return nil, err
	}
	if h, err := set.Hash(); err == nil {
		prov.PackageHash = h
	}
	prov.Spans = append(prov.Spans, core.SpanSummary{Name: "encode", US: time.Since(stage).Microseconds()})
	return buf.Bytes(), nil
}

// version returns the encoded PackageSet for a 1-based version number,
// or the newest one for latest.
func (st *programState) version(sel string) ([]byte, int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.versions)
	if sel == "latest" {
		if n == 0 {
			return nil, 0, fmt.Errorf("no versions yet")
		}
		return st.versions[n-1], n, nil
	}
	var v int
	if _, err := fmt.Sscanf(sel, "%d", &v); err != nil || v < 1 {
		return nil, 0, fmt.Errorf("bad version %q", sel)
	}
	if v > n {
		return nil, 0, fmt.Errorf("version %d not yet built (have %d)", v, n)
	}
	return st.versions[v-1], v, nil
}

// provenance returns the build record for a 1-based version number
// ("latest" for the newest). Records exist for exactly the published
// versions, so the same selectors resolve.
func (st *programState) provenance(sel string) (*core.Provenance, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := len(st.provs)
	if sel == "latest" {
		if n == 0 {
			return nil, fmt.Errorf("no versions yet")
		}
		return st.provs[n-1], nil
	}
	var v int
	if _, err := fmt.Sscanf(sel, "%d", &v); err != nil || v < 1 {
		return nil, fmt.Errorf("bad version %q", sel)
	}
	if v > n {
		return nil, fmt.Errorf("version %d not yet built (have %d)", v, n)
	}
	return st.provs[v-1], nil
}

// Close stops accepting repacks, waits for in-flight ones to finish,
// then flushes and closes the artifact store — pending writes hit disk
// and the manifest is fsynced before the process exits, so a SIGTERM'd
// daemon restarts with its full version history. Ingest handlers may
// still run afterwards (the HTTP server drains separately); their
// enqueue attempts fail closed.
func (d *Daemon) Close() {
	d.queueMu.Lock()
	if !d.closed {
		d.closed = true
		close(d.queue)
	}
	d.queueMu.Unlock()
	d.poolWG.Wait()
	if d.store != nil {
		if err := d.store.Close(); err != nil {
			d.logger.Warn("store close failed", "err", err)
		}
	}
}
