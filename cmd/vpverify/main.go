// Command vpverify runs the Vacuum Packing pipeline with the static
// verifier gating every stage and reports the verdict: every rule
// violation is printed with its rule ID, stage and location. It is the
// standalone front-end to internal/verify (the same checks vpack/vpbench
// enable with -verify), intended for CI gates and for debugging pipeline
// changes.
//
// Usage:
//
//	vpverify -bench perl -input A          # all four paper variants
//	vpverify -bench gzip -variant 3        # one variant (0-3, paper order)
//	vpverify -asm program.vpasm            # hand-written VPIR assembly
//	vpverify -all                          # every benchmark input
//	vpverify -all -equiv                   # + symbolic equivalence proofs
//
// With -equiv, translation validation proves every optimized package
// observationally equivalent to its region code and prints one verdict
// line per package; a refutation counts as a violation and its
// structured counterexample is printed.
//
// Exit status: 0 all checks passed, 3 at least one rule fired or proof
// was refuted, 1 the pipeline failed before verification could complete.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/verify"
	"repro/internal/workload"
)

func main() {
	var (
		asmPath = flag.String("asm", "", "verify a hand-written VPIR assembly file instead of a benchmark")
		bench   = flag.String("bench", "perl", "benchmark name")
		input   = flag.String("input", "A", "input name: A, B or C")
		scale   = flag.Int64("scale", 0, "override the input's iteration scale")
		variant = flag.Int("variant", -1, "verify only paper variant N (0-3); default all four")
		all     = flag.Bool("all", false, "verify every benchmark input (ignores -bench/-input)")
		sink    = flag.Bool("sink", false, "also enable the cold-code sinking pass")
		dynL    = flag.Bool("dynlaunch", false, "use dynamic launch-point selection instead of static links")
		equivOn = cliflags.EquivFlag(flag.CommandLine)
		quiet   = flag.Bool("q", false, "print only failures and the final verdict")
	)
	flag.Parse()

	type target struct {
		name  string
		build func() (*prog.Program, error)
	}
	var targets []target
	switch {
	case *asmPath != "":
		src, err := os.ReadFile(*asmPath)
		if err != nil {
			fatal(err)
		}
		targets = append(targets, target{*asmPath, func() (*prog.Program, error) {
			return asm.Assemble(string(src))
		}})
	case *all:
		for _, b := range workload.Ordered() {
			for _, in := range b.Inputs {
				b, in := b, in
				if *scale > 0 {
					in.Scale = *scale
				}
				targets = append(targets, target{
					fmt.Sprintf("%s/%s", b.Name, in.Name),
					func() (*prog.Program, error) { return b.Build(in), nil },
				})
			}
		}
	default:
		b, err := workload.ByName(*bench)
		if err != nil {
			fatal(err)
		}
		in, err := b.InputByName(*input)
		if err != nil {
			fatal(err)
		}
		if *scale > 0 {
			in.Scale = *scale
		}
		targets = append(targets, target{
			fmt.Sprintf("%s/%s", b.Name, in.Name),
			func() (*prog.Program, error) { return b.Build(in), nil },
		})
	}

	variants := core.Variants()
	if *variant >= 0 {
		if *variant >= len(variants) {
			fmt.Fprintf(os.Stderr, "vpverify: -variant must be 0-%d\n", len(variants)-1)
			os.Exit(2)
		}
		variants = variants[*variant : *variant+1]
	}

	violations, failures := 0, 0
	for _, tgt := range targets {
		for _, v := range variants {
			p, err := tgt.build()
			if err != nil {
				fatal(err)
			}
			cfg := v.Apply(core.ScaledConfig())
			cfg.Verify = true
			cfg.Equiv = *equivOn
			cfg.EnableSink = *sink
			if *dynL {
				cfg.Pack.DynamicLaunch = true
				cfg.Pack.EnableLinking = false
			}
			rec := obs.NewRecorder()
			out, err := core.RunObserved(cfg, p, rec)
			checked := rec.Export().Metrics.Counters["verify.checked"]
			label := fmt.Sprintf("%s [%s]", tgt.name, v.Name())
			switch {
			case err == nil:
				if !*quiet {
					fmt.Printf("ok    %-44s %3d checks\n", label, checked)
					if *equivOn {
						for _, c := range out.Equiv {
							fmt.Printf("      %s\n", c.Verdict())
						}
					}
				}
			case errors.Is(err, core.ErrNoPhases) || errors.Is(err, core.ErrNoPackages):
				// Nothing extracted means nothing to verify; not a failure.
				if !*quiet {
					fmt.Printf("skip  %-44s (%v)\n", label, err)
				}
			case errors.Is(err, core.ErrVerifyFailed):
				diags := verify.Diagnostics(err)
				violations += len(diags)
				fmt.Printf("FAIL  %-44s %d violation(s) after %d checks\n", label, len(diags), checked)
				for _, d := range diags {
					fmt.Printf("      %s\n", d)
				}
			case errors.Is(err, core.ErrNotEquivalent):
				ces := equiv.Counterexamples(err)
				violations += len(ces)
				fmt.Printf("FAIL  %-44s translation validation refuted (%d counterexample(s))\n", label, len(ces))
				for _, ce := range ces {
					fmt.Printf("      %s\n", ce.String())
				}
			default:
				failures++
				fmt.Printf("ERROR %-44s %v\n", label, err)
			}
		}
	}
	switch {
	case violations > 0:
		fmt.Printf("vpverify: %d rule violation(s)\n", violations)
		os.Exit(3)
	case failures > 0:
		os.Exit(1)
	default:
		fmt.Println("vpverify: all checks passed")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vpverify:", err)
	os.Exit(1)
}
