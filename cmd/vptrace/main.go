// Command vptrace analyzes vptrace/v1 JSON trace files written by
// vpack -trace and vpbench -trace (or scraped from /trace on a
// vpbench -serve process).
//
// Usage:
//
//	vptrace top [-n 15] trace.json           # hottest spans by total wall time
//	vptrace diff [-threshold 0.1] [-min-wall 1ms] old.json new.json
//	vptrace flame trace.json > folded.txt    # folded stacks for flamegraph.pl
//	vptrace drift trace.json                 # per-program drift summary
//                                           # (vpackd's /trace carries the series)
//
// diff compares per-stage wall-time totals and counters and exits 1 when
// anything regresses past the threshold — scripts/verify.sh runs it
// between a fresh trace and testdata/trace_golden.json as the CI
// trace-regression gate. Against a Normalize()d golden the wall-time
// columns are zero, so the gate bites on the deterministic counters
// (simulated cycles, phase/package/link counts); between two live traces
// it bites on wall time too.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "top":
		cmdTop(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "flame":
		cmdFlame(os.Args[2:])
	case "drift":
		cmdDrift(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vptrace top [-n 15] trace.json
  vptrace diff [-threshold 0.1] [-min-wall 1ms] old.json new.json
  vptrace flame trace.json
  vptrace drift trace.json`)
	os.Exit(2)
}

func readTrace(path string) *obs.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := obs.ReadTrace(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return t
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 15, "show the N hottest span names")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := readTrace(fs.Arg(0))

	totals := t.SpanTotals()
	// Hottest first; SpanTotals order (first appearance) breaks ties so
	// the listing is deterministic.
	for i := 1; i < len(totals); i++ {
		for j := i; j > 0 && totals[j].Total > totals[j-1].Total; j-- {
			totals[j], totals[j-1] = totals[j-1], totals[j]
		}
	}
	if len(totals) > *n {
		totals = totals[:*n]
	}
	fmt.Printf("%-32s %6s %14s %14s\n", "span", "count", "total", "avg")
	for _, st := range totals {
		avg := time.Duration(0)
		if st.Count > 0 {
			avg = st.Total / time.Duration(st.Count)
		}
		fmt.Printf("%-32s %6d %14v %14v\n", st.Name, st.Count,
			st.Total.Round(time.Microsecond), avg.Round(time.Microsecond))
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "fractional growth tolerated before a row regresses")
	minWall := fs.Duration("min-wall", time.Millisecond, "noise floor: stages faster than this in both traces never regress")
	all := fs.Bool("all", false, "print unchanged counters too")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	oldT, newT := readTrace(fs.Arg(0)), readTrace(fs.Arg(1))

	d := obs.DiffTraces(oldT, newT, obs.DiffOptions{Threshold: *threshold, MinWall: *minWall})

	fmt.Printf("stage wall-time (threshold +%.1f%%, noise floor %v):\n", *threshold*100, *minWall)
	fmt.Printf("  %-32s %12s %12s %9s\n", "span", "old", "new", "delta")
	for _, sd := range d.Stages {
		mark := ""
		if sd.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Printf("  %-32s %12v %12v %+8.1f%%%s\n", sd.Name,
			time.Duration(sd.OldUS)*time.Microsecond,
			time.Duration(sd.NewUS)*time.Microsecond,
			sd.Frac*100, mark)
	}

	fmt.Println("counters:")
	changed := 0
	for _, cd := range d.Counters {
		if cd.Old == cd.New && !*all {
			continue
		}
		changed++
		mark := ""
		if cd.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Printf("  %-32s %12d %12d %+8.1f%%%s\n", cd.Name, cd.Old, cd.New, cd.Frac*100, mark)
	}
	if changed == 0 {
		fmt.Println("  (all counters identical)")
	}

	if d.Regressions > 0 {
		fmt.Printf("%d regression(s) past threshold\n", d.Regressions)
		os.Exit(1)
	}
	fmt.Println("no regressions")
}

// cmdDrift summarizes the drift observability series a daemon trace
// carries (scraped from vpackd's /trace): one row per tracked program
// from the suffixed vp-drift gauges/counters, plus the typed drift
// events' window/score/baseline history.
func cmdDrift(args []string) {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := readTrace(fs.Arg(0))

	// Programs are discovered from the per-program series suffixes and
	// the drift events' Name labels.
	progs := map[string]bool{}
	prefix := obs.DriftScoreGauge + "."
	for name := range t.Metrics.Gauges {
		if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			progs[name[len(prefix):]] = true
		}
	}
	windowEvents := map[string]int{}
	baselines := map[string][]int64{}
	var lastScored = map[string]float64{}
	for _, e := range t.Events {
		switch e.Kind {
		case obs.DriftWindow.String():
			progs[e.Name] = true
			windowEvents[e.Name]++
		case obs.DriftScored.String():
			progs[e.Name] = true
			// DriftScored events carry the composite in basis points.
			lastScored[e.Name] = float64(e.N) / 10000
		case obs.DriftBaseline.String():
			progs[e.Name] = true
			baselines[e.Name] = append(baselines[e.Name], e.N)
		}
	}
	if len(progs) == 0 {
		fmt.Println("no drift series in trace (is this a vpackd /trace with drift tracking enabled?)")
		return
	}
	names := make([]string, 0, len(progs))
	for p := range progs {
		names = append(names, p)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}

	fmt.Printf("%-16s %8s %8s %7s %7s %7s %6s %7s %9s\n",
		"program", "samples", "windows", "score", "peak", "diverg", "flips", "cross", "baseline")
	for _, p := range names {
		fmt.Printf("%-16s %8d %8d %7.3f %7.3f %7.3f %6.0f %7.3f %9.0f\n",
			p,
			t.Metrics.Counters[obs.DriftSamplesCounter+"."+p],
			t.Metrics.Counters[obs.DriftWindowsCounter+"."+p],
			t.Metrics.Gauges[obs.DriftScoreGauge+"."+p],
			t.Metrics.Gauges[obs.DriftPeakGauge+"."+p],
			t.Metrics.Gauges[obs.DriftDivergenceGauge+"."+p],
			t.Metrics.Gauges[obs.DriftBiasFlipsGauge+"."+p],
			t.Metrics.Gauges[obs.DriftCrossingsGauge+"."+p],
			t.Metrics.Gauges[obs.DriftBaselineVersionGauge+"."+p])
	}

	fmt.Println("\nevents:")
	for _, p := range names {
		fmt.Printf("  %-16s %d window events, last scored %.3f, baselines %v\n",
			p, windowEvents[p], lastScored[p], baselines[p])
	}
	if h, ok := t.Metrics.Histograms[obs.DriftScoreHist]; ok && h.Count > 0 {
		fmt.Printf("\nscore histogram (%%): %d observations, mean %.1f\n", h.Count, h.Sum/float64(h.Count))
	}
}

func cmdFlame(args []string) {
	fs := flag.NewFlagSet("flame", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := readTrace(fs.Arg(0))
	for _, fl := range t.Folded() {
		fmt.Printf("%s %d\n", fl.Stack, fl.SelfUS)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vptrace:", err)
	os.Exit(1)
}
