// Command vptrace analyzes vptrace/v1 JSON trace files written by
// vpack -trace and vpbench -trace (or scraped from /trace on a
// vpbench -serve process).
//
// Usage:
//
//	vptrace top [-n 15] trace.json           # hottest spans by total wall time
//	vptrace diff [-threshold 0.1] [-min-wall 1ms] old.json new.json
//	vptrace flame trace.json > folded.txt    # folded stacks for flamegraph.pl
//
// diff compares per-stage wall-time totals and counters and exits 1 when
// anything regresses past the threshold — scripts/verify.sh runs it
// between a fresh trace and testdata/trace_golden.json as the CI
// trace-regression gate. Against a Normalize()d golden the wall-time
// columns are zero, so the gate bites on the deterministic counters
// (simulated cycles, phase/package/link counts); between two live traces
// it bites on wall time too.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "top":
		cmdTop(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "flame":
		cmdFlame(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  vptrace top [-n 15] trace.json
  vptrace diff [-threshold 0.1] [-min-wall 1ms] old.json new.json
  vptrace flame trace.json`)
	os.Exit(2)
}

func readTrace(path string) *obs.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	t, err := obs.ReadTrace(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return t
}

func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 15, "show the N hottest span names")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := readTrace(fs.Arg(0))

	totals := t.SpanTotals()
	// Hottest first; SpanTotals order (first appearance) breaks ties so
	// the listing is deterministic.
	for i := 1; i < len(totals); i++ {
		for j := i; j > 0 && totals[j].Total > totals[j-1].Total; j-- {
			totals[j], totals[j-1] = totals[j-1], totals[j]
		}
	}
	if len(totals) > *n {
		totals = totals[:*n]
	}
	fmt.Printf("%-32s %6s %14s %14s\n", "span", "count", "total", "avg")
	for _, st := range totals {
		avg := time.Duration(0)
		if st.Count > 0 {
			avg = st.Total / time.Duration(st.Count)
		}
		fmt.Printf("%-32s %6d %14v %14v\n", st.Name, st.Count,
			st.Total.Round(time.Microsecond), avg.Round(time.Microsecond))
	}
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "fractional growth tolerated before a row regresses")
	minWall := fs.Duration("min-wall", time.Millisecond, "noise floor: stages faster than this in both traces never regress")
	all := fs.Bool("all", false, "print unchanged counters too")
	fs.Parse(args)
	if fs.NArg() != 2 {
		usage()
	}
	oldT, newT := readTrace(fs.Arg(0)), readTrace(fs.Arg(1))

	d := obs.DiffTraces(oldT, newT, obs.DiffOptions{Threshold: *threshold, MinWall: *minWall})

	fmt.Printf("stage wall-time (threshold +%.1f%%, noise floor %v):\n", *threshold*100, *minWall)
	fmt.Printf("  %-32s %12s %12s %9s\n", "span", "old", "new", "delta")
	for _, sd := range d.Stages {
		mark := ""
		if sd.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Printf("  %-32s %12v %12v %+8.1f%%%s\n", sd.Name,
			time.Duration(sd.OldUS)*time.Microsecond,
			time.Duration(sd.NewUS)*time.Microsecond,
			sd.Frac*100, mark)
	}

	fmt.Println("counters:")
	changed := 0
	for _, cd := range d.Counters {
		if cd.Old == cd.New && !*all {
			continue
		}
		changed++
		mark := ""
		if cd.Regressed {
			mark = "  REGRESSED"
		}
		fmt.Printf("  %-32s %12d %12d %+8.1f%%%s\n", cd.Name, cd.Old, cd.New, cd.Frac*100, mark)
	}
	if changed == 0 {
		fmt.Println("  (all counters identical)")
	}

	if d.Regressions > 0 {
		fmt.Printf("%d regression(s) past threshold\n", d.Regressions)
		os.Exit(1)
	}
	fmt.Println("no regressions")
}

func cmdFlame(args []string) {
	fs := flag.NewFlagSet("flame", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	t := readTrace(fs.Arg(0))
	for _, fl := range t.Folded() {
		fmt.Printf("%s %d\n", fl.Stack, fl.SelfUS)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vptrace:", err)
	os.Exit(1)
}
