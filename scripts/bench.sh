#!/usr/bin/env bash
# Runs the perf-regression benchmark set and refreshes BENCH_pipeline.json.
#
# The JSON file is a trajectory: `history` entries are curated by hand (one
# per PR that moved a number) and preserved across refreshes; `latest` is
# overwritten with this run's suite timing by vpbench -benchjson.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"

echo "== interpreter hot-loop microbenchmarks (internal/cpu) =="
go test -run '^$' \
  -bench 'BenchmarkMachineStep|BenchmarkMachineRunTimed|BenchmarkMemory|BenchmarkCacheAccess|BenchmarkTimingObserve' \
  -benchtime "$BENCHTIME" ./internal/cpu/

echo
echo "== detector, timed-run and suite-parallelism benches (repo root) =="
go test -run '^$' \
  -bench 'BenchmarkTable2Machine|BenchmarkHSDThroughput|BenchmarkSuiteJobs' \
  -benchtime "$BENCHTIME" .

echo
echo "== full suite wall time (scale 1, default -j) =="
go run ./cmd/vpbench -q -scale 1 -benchjson BENCH_pipeline.json >/dev/null
echo "BENCH_pipeline.json refreshed:"
grep -E '"wall_seconds"|"jobs"|"insts_per_second"' BENCH_pipeline.json | tail -3
