#!/usr/bin/env bash
# Runs the perf-regression benchmark set and refreshes BENCH_pipeline.json.
#
# The JSON file is a trajectory: `history` entries are curated by hand (one
# per PR that moved a number) and preserved across refreshes; `latest` is
# overwritten with this run's suite timing by vpbench -benchjson.
#
# The observability layer's overhead contract (disabled path free, enabled
# path — spans, events, counters, gauges and the histogram buckets behind
# /metrics — cheap) is measured every run and recorded in
# BENCH_obs_overhead.json next to BENCH_pipeline.json.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"

echo "== interpreter hot-loop microbenchmarks (internal/cpu) =="
go test -run '^$' \
  -bench 'BenchmarkMachineStep|BenchmarkMachineRunTimed|BenchmarkTimedBlock|BenchmarkTimedNoCache|BenchmarkMemory|BenchmarkCacheAccess|BenchmarkTimingObserve' \
  -benchtime "$BENCHTIME" ./internal/cpu/

echo
echo "== observer microbenchmarks (internal/obs) =="
go test -run '^$' \
  -bench 'BenchmarkNopObserver|BenchmarkRecorderObserver' \
  -benchtime "$BENCHTIME" ./internal/obs/

echo
echo "== detector, timed-run and suite-parallelism benches (repo root) =="
go test -run '^$' \
  -bench 'BenchmarkTable2Machine|BenchmarkHSDThroughput|BenchmarkSuiteJobs' \
  -benchtime "$BENCHTIME" .

echo
echo "== static-verifier serial cost per pipeline run (internal/verify) =="
go test -run '^$' -bench 'BenchmarkPipelineVerify' \
  -benchtime "$BENCHTIME" ./internal/verify/

echo
echo "== full suite wall time (scale 1, default -j) + verifier/equiv overhead =="
# -verifyoverhead re-runs the suite with the static verifier gating every
# stage and records verify_wall_seconds / verify_overhead_fraction in the
# benchjson. The verifier's serial cost is ~4% of pipeline CPU (see the
# BenchmarkPipelineVerify delta above); the suite-level fraction target is
# < 3%, met outright when suite parallelism overlaps the verify work and
# noise-bounded on single-core hosts. Best-of-7 on both sides keeps
# scheduler luck out of the comparison, and the recorded fraction floors
# at zero (the verifier cannot make the suite faster).
#
# -storecompare additionally times one suite run against a fresh artifact
# store (cold: everything computed and written through) and one against
# the store it left behind (warm: every profile and package served from
# disk, zero misses or vpbench exits nonzero), recording both walls and
# the warm hit tally under store_cold_wall_seconds / store_warm_wall_seconds
# / "store" in the benchjson. The main suite stays storeless so
# wall_seconds remains comparable across PRs.
#
# -equivoverhead records translation validation's cost in two regimes.
# equiv_overhead_fraction is the cold cost: a storeless suite run proving
# every optimized package from scratch by symbolic path enumeration —
# expensive by design (it visits every acyclic path of every package) and
# reported for visibility, not budgeted. equiv_warm_overhead_fraction is
# the steady-state cost: certificates ride the package-set artifact, so a
# store-backed rerun serves proved packages from disk and re-proves
# nothing. That is what a continuously-operating pipeline pays per run
# (prove once per image+config, reuse until either changes), and the
# budget is < 5%: a larger fraction means proofs stopped being served
# from the store and the key scheme or artifact round-trip regressed.
store_tmp="$(mktemp -d)"
trap 'rm -rf "$store_tmp"' EXIT
go run ./cmd/vpbench -q -scale 1 -reps 7 -verifyoverhead -equivoverhead \
  -store "$store_tmp" -storecompare -benchjson BENCH_pipeline.json >/dev/null
echo "BENCH_pipeline.json refreshed:"
grep -E '"wall_seconds"|"jobs"|"insts_per_second"|"blockcache_hit_rate"|"superblock_|"verify_|"equiv_|"store_' BENCH_pipeline.json | tail -16

# Enforce the steady-state equiv budget recorded above.
python3 - <<'EOF'
import json
d = json.load(open("BENCH_pipeline.json"))["latest"]
f = d.get("equiv_warm_overhead_fraction")
cold = d.get("equiv_overhead_fraction")
if f is None:
    raise SystemExit("bench.sh: equiv_warm_overhead_fraction missing from BENCH_pipeline.json")
print(f"equiv overhead: cold {cold:.1%} (full proving), warm {f:.1%} (store-served, budget < 5%)")
if f >= 0.05:
    raise SystemExit(f"bench.sh: steady-state equiv overhead {f:.1%} exceeds the 5% budget")
EOF

echo
echo "== drift-tracker ingest cost (internal/drift) =="
# Per-record cost of the daemon's drift path: an enabled tracker with a
# baseline set (window aggregation + scoring at window close) vs a
# disabled tracker (-driftwindow 0), which must be within noise of free —
# a single atomic-free Enabled() check per record.
drift_tmp="$(mktemp)"
trap 'rm -f "$drift_tmp"; rm -rf "$store_tmp"' EXIT
go test -run '^$' -bench 'BenchmarkTrackerObserve' \
  -benchtime "$BENCHTIME" ./internal/drift/ | tee "$drift_tmp"
drift_on=$(awk '$1 ~ /^BenchmarkTrackerObserve-|^BenchmarkTrackerObserve$/ {print $3}' "$drift_tmp")
drift_off=$(awk '$1 ~ /^BenchmarkTrackerObserveDisabled/ {print $3}' "$drift_tmp")

echo
echo "== observer overhead (disabled vs enabled suite run) =="
obs_tmp="$(mktemp)"
trap 'rm -f "$obs_tmp" "$drift_tmp"; rm -rf "$store_tmp"' EXIT
go run ./cmd/vpbench -q -scale 1 -metrics -benchjson "$obs_tmp" >/dev/null
# The trajectory file repeats "wall_seconds" in history entries; the last
# occurrence is this run's `latest` block. The tmp file has only one.
disabled=$(grep '"wall_seconds"' BENCH_pipeline.json | tail -1 | grep -o '[0-9.]*')
enabled=$(grep '"wall_seconds"' "$obs_tmp" | tail -1 | grep -o '[0-9.]*')
awk -v d="$disabled" -v e="$enabled" -v don="${drift_on:-0}" -v doff="${drift_off:-0}" 'BEGIN {
  delta = (d > 0) ? (e - d) / d : 0
  printf "{\n  \"schema\": \"obs-overhead/v1\",\n  \"disabled_wall_seconds\": %.3f,\n  \"enabled_wall_seconds\": %.3f,\n  \"overhead_fraction\": %.4f,\n  \"drift_enabled_ns_per_record\": %.1f,\n  \"drift_disabled_ns_per_record\": %.1f\n}\n", d, e, delta, don, doff
}' > BENCH_obs_overhead.json
echo "BENCH_obs_overhead.json refreshed:"
cat BENCH_obs_overhead.json
