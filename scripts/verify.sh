#!/usr/bin/env bash
# Tier-1 verification: build, vet, full test suite, race-detector passes
# over the parallel evaluation engine's worker pool and the observability
# + telemetry-serving layers it reports through, and the trace regression
# gate (a fresh pipeline trace diffed against the committed golden).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go vet ./internal/obs/...
go vet ./internal/telemetry/...
go test ./...
go test -race ./internal/report/...
go test -race ./internal/obs/...
go test -race ./internal/telemetry/...
# Block-structured timed simulation: race the cache's concurrent-use shape
# (shared image, private caches) and the memo-backed suite plumbing. The
# full-suite equivalence table runs in the plain `go test ./...` above;
# racing it too would double wall time for no extra coverage.
go test -race -run 'TestBlockCache' ./internal/cpu/

# Trace regression gate: the golden is Normalize()d (wall times zeroed),
# so this diff bites exactly on the deterministic pipeline counters —
# phases detected, regions grown, packages built/linked, simulated
# cycles. A counter regressing >10% fails verification. The gate runs
# twice — block cache on (the default) and off — because the two timed
# paths must be bit-identical: one golden serves both.
trace_tmp="$(mktemp)"
trap 'rm -f "$trace_tmp"' EXIT
go run ./cmd/vpack -bench gzip -input A -scale 1 -q -log off -trace "$trace_tmp" >/dev/null
go run ./cmd/vptrace diff -threshold 0.10 testdata/trace_golden.json "$trace_tmp"
go run ./cmd/vpack -bench gzip -input A -scale 1 -q -log off -blockcache=off -trace "$trace_tmp" >/dev/null
go run ./cmd/vptrace diff -threshold 0.10 testdata/trace_golden.json "$trace_tmp"

echo "tier-1 verify: OK"
