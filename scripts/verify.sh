#!/usr/bin/env bash
# Tier-1 verification: build, vet (including the repo's own vplint checks),
# full test suite, race-detector passes over the parallel evaluation
# engine's worker pool and the observability + telemetry-serving layers it
# reports through, a verifier-gated suite pass, and the trace regression
# gate (a fresh pipeline trace diffed against the committed golden).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go vet ./internal/obs/...
go vet ./internal/telemetry/...

# Repository-specific static checks (insts-mutation, dropped-observer,
# mutate-after-hash) via the vet unitchecker protocol; vplint needs an
# absolute path.
mkdir -p bin
go build -o bin/vplint ./cmd/vplint
go vet -vettool="$(pwd)/bin/vplint" ./...
go test ./...
go test -race ./internal/report/...
go test -race ./internal/obs/...
go test -race ./internal/telemetry/...
# Two-tier timed simulation: race the whole cpu package — the block
# cache's concurrent-use shape (shared image, private caches), the
# superblock tier's promotion/demotion machinery, and the randomized
# tier-equivalence property tests all run under the race detector.
go test -race ./internal/cpu/...
# Staged pipeline API + daemon: artifact round trips, staleness checks,
# the resumability golden (staged == straight-through, byte for byte)
# and vpackd's sharded ingest under 1000 concurrent streams.
go test -race ./cmd/vpackd/... ./internal/core/...
# Drift telemetry: windowed trackers and the bounded event ring under
# concurrent writers/readers.
go test -race ./internal/drift/...
# Persistent artifact store: chunked segments, manifest recovery,
# corruption-safety (truncated/bit-flipped/missing segments, stale or
# tampered manifests) and GC, all under the race detector.
go test -race ./internal/cas/...
# Translation validation: concurrent proofs share nothing but the
# read-only snapshot; race the whole prover, including the mutation
# corpus (every seeded semantic bug must be refuted with a usable
# counterexample — TestMutationCorpus fails otherwise).
go test -race ./internal/equiv/...

# Verifier-gated pipeline pass: every stage's output re-checked against
# the internal/verify rule catalog on a real multi-benchmark run. Any
# rule firing exits 3 and fails verification here.
go run ./cmd/vpverify -q -bench gzip -input A -scale 1
go run ./cmd/vpverify -q -bench perl -input A -scale 1

# Equivalence-gated pipeline pass: every optimized package of every
# variant symbolically proved against the region code it replaced (exit
# 4 on refutation — a live miscompile in the opt/pack passes).
go run ./cmd/vpverify -q -equiv -bench gzip -input A -scale 1
go run ./cmd/vpverify -q -equiv -bench m88ksim -input A -scale 1

# Trace regression gate: the golden is Normalize()d (wall times zeroed),
# so this diff bites exactly on the deterministic pipeline counters —
# phases detected, regions grown, packages built/linked, simulated
# cycles. A counter regressing >10% fails verification. The gate runs
# three times — superblocks on (the default), superblocks off (tier 0
# only), and block cache off entirely (the legacy path) — because all
# three timed paths must be bit-identical: one golden serves them all.
trace_tmp="$(mktemp)"
trap 'rm -f "$trace_tmp"' EXIT
go run ./cmd/vpack -bench gzip -input A -scale 1 -q -log off -trace "$trace_tmp" >/dev/null
go run ./cmd/vptrace diff -threshold 0.10 testdata/trace_golden.json "$trace_tmp"
go run ./cmd/vpack -bench gzip -input A -scale 1 -q -log off -superblock=off -trace "$trace_tmp" >/dev/null
go run ./cmd/vptrace diff -threshold 0.10 testdata/trace_golden.json "$trace_tmp"
go run ./cmd/vpack -bench gzip -input A -scale 1 -q -log off -blockcache=off -trace "$trace_tmp" >/dev/null
go run ./cmd/vptrace diff -threshold 0.10 testdata/trace_golden.json "$trace_tmp"
# Fourth pass: -store enabled against a fresh directory. The store-aware
# pipeline path must emit a byte-identical trace (profile write-through
# happens outside the observed spans), so the same golden gates it.
store_tmp="$(mktemp -d)"
trap 'rm -f "$trace_tmp"; rm -rf "$store_tmp"' EXIT
go run ./cmd/vpack -bench gzip -input A -scale 1 -q -log off -store "$store_tmp/st" -trace "$trace_tmp" >/dev/null
go run ./cmd/vptrace diff -threshold 0.10 testdata/trace_golden.json "$trace_tmp"

# Store cold→warm→restart smoke. Cold suite populates a fresh store;
# the warm rerun must serve every profile and package from it (vpbench
# exits nonzero on any warm miss, and the benchjson records the tally —
# assert it here too); vpcache must verify the store clean.
go build -o bin/vpbench ./cmd/vpbench
go build -o bin/vpcache ./cmd/vpcache
bin/vpbench -q -bench m88ksim,perl -scale 1 -store "$store_tmp/suite" -storecompare \
    -benchjson "$store_tmp/bench.json" >/dev/null
grep -q '"profile_misses": 0' "$store_tmp/bench.json" \
    || { echo "warm store run recorded profile misses" >&2; exit 1; }
grep -q '"package_misses": 0' "$store_tmp/bench.json" \
    || { echo "warm store run recorded package misses" >&2; exit 1; }
grep -q '"store_warm_wall_seconds"' "$store_tmp/bench.json" \
    || { echo "benchjson missing store wall times" >&2; exit 1; }
bin/vpcache verify -store "$store_tmp/suite" >/dev/null

# Daemon smoke test: boot vpackd on a free port, stream 100 hot-spot
# records from 8 concurrent clients (vpbench's load-generator mode,
# which also fetches the published package and asserts every expected
# /metrics series — queue, repack, queue-wait and vp_drift_* — naming
# any that are missing), then induce a phase shift (-phaseshift) and
# confirm the drift score demonstrably rises: a nonzero vp_drift_peak
# must appear on /metrics and the vptrace drift view must report the
# program. Finally verify SIGTERM shuts the daemon down cleanly
# (exit 0, queue drained). The -driftwindow knob is the shared
# internal/cliflags flag and must match on both sides so vpbench's
# shift burst spans whole tracker windows.
daemon_dir="$(mktemp -d)"
daemon_pid=""
trap 'rm -f "$trace_tmp"; rm -rf "$store_tmp" "$daemon_dir"; [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true' EXIT
go build -o bin/vpackd ./cmd/vpackd
go build -o bin/vpbench ./cmd/vpbench
go build -o bin/vptrace ./cmd/vptrace
bin/vpackd -addr 127.0.0.1:0 -addrfile "$daemon_dir/addr" -bench m88ksim -scale 1 -batch 10 \
    -driftwindow 4 -driftring 32 -log off &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -s "$daemon_dir/addr" ] && break
    sleep 0.1
done
[ -s "$daemon_dir/addr" ] || { echo "vpackd never wrote its address" >&2; exit 1; }
daemon_addr="$(cat "$daemon_dir/addr")"
bin/vpbench -daemon "http://$daemon_addr" -streams 8 -records 100 -phaseshift -driftwindow 4 -log off
curl -sf "http://$daemon_addr/v1/packages/m88ksim/latest" >/dev/null
curl -sf "http://$daemon_addr/v1/provenance/m88ksim/latest" | grep -q '"trace"'
curl -sf "http://$daemon_addr/v1/drift/m88ksim" | grep -q '"enabled": *true'
metrics="$(curl -sf "http://$daemon_addr/metrics")"
echo "$metrics" | grep -q '^vp_vpackd_queue_depth'
echo "$metrics" | grep -q '^vp_vpackd_repack_latency_us'
echo "$metrics" | grep -q '^vp_vpackd_queue_wait_us_count'
echo "$metrics" | awk '$1=="vp_drift_peak"{found=1; exit !($2>0)} END{if(!found) exit 1}' \
    || { echo "phase shift left vp_drift_peak at zero" >&2; exit 1; }
curl -sf "http://$daemon_addr/trace" > "$daemon_dir/trace.json"
bin/vptrace drift "$daemon_dir/trace.json" | grep -q '^m88ksim' \
    || { echo "vptrace drift view missing m88ksim row" >&2; exit 1; }
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "vpackd did not exit cleanly" >&2; exit 1; }
daemon_pid=""

# Daemon store restart: boot with -store, ingest enough records to
# trigger a repack (which persists the version + provenance), SIGTERM
# (drains and fsyncs the manifest), then reboot on the same store
# directory and fetch the previous latest package and provenance
# WITHOUT streaming a single record — restart recovery, not a repack.
bin/vpackd -addr 127.0.0.1:0 -addrfile "$daemon_dir/addr2" -bench m88ksim -scale 1 -batch 10 \
    -store "$daemon_dir/store" -log off &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -s "$daemon_dir/addr2" ] && break
    sleep 0.1
done
[ -s "$daemon_dir/addr2" ] || { echo "vpackd (store) never wrote its address" >&2; exit 1; }
daemon_addr="$(cat "$daemon_dir/addr2")"
bin/vpbench -daemon "http://$daemon_addr" -streams 4 -records 50 -log off
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "vpackd (store) did not exit cleanly" >&2; exit 1; }
daemon_pid=""
bin/vpackd -addr 127.0.0.1:0 -addrfile "$daemon_dir/addr3" -bench m88ksim -scale 1 -batch 10 \
    -store "$daemon_dir/store" -log off &
daemon_pid=$!
for _ in $(seq 1 100); do
    [ -s "$daemon_dir/addr3" ] && break
    sleep 0.1
done
[ -s "$daemon_dir/addr3" ] || { echo "vpackd (restart) never wrote its address" >&2; exit 1; }
daemon_addr="$(cat "$daemon_dir/addr3")"
curl -sf "http://$daemon_addr/v1/packages/m88ksim/latest" >/dev/null \
    || { echo "restarted vpackd lost the published package" >&2; exit 1; }
curl -sf "http://$daemon_addr/v1/provenance/m88ksim/latest" | grep -q '"trace"' \
    || { echo "restarted vpackd lost the provenance record" >&2; exit 1; }
curl -sf "http://$daemon_addr/metrics" | grep -q '^vp_vpackd_versions_recovered [1-9]' \
    || { echo "restarted vpackd recovered no versions" >&2; exit 1; }
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "vpackd (restart) did not exit cleanly" >&2; exit 1; }
daemon_pid=""

echo "tier-1 verify: OK"
