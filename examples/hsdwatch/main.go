// hsdwatch: watch the Hot Spot Detector operate in real time. The example
// attaches the hardware model to a running program and logs every
// detection with the branches it captured, then shows how the software
// filter collapses the raw detections into unique phases — step 1 of the
// Vacuum Packing pipeline in isolation.
//
//	go run ./examples/hsdwatch
package main

import (
	"fmt"
	"log"

	vp "repro"
)

func main() {
	bench, err := vp.Benchmark("mpeg2dec")
	if err != nil {
		log.Fatal(err)
	}
	program := bench.Build(bench.Inputs[0])
	img, err := program.Linearize()
	if err != nil {
		log.Fatal(err)
	}

	db := vp.NewPhaseDB()
	detector := vp.NewDetector(vp.ScaledConfig().Detector, func(h vp.HotSpot) {
		ph := db.Record(h)
		status := "NEW PHASE"
		if ph.Detections > 1 {
			status = fmt.Sprintf("phase %d again", ph.ID)
		}
		fmt.Printf("detection #%-3d at branch %-8d: %2d hot branches -> %s\n",
			h.Seq, h.DetectedAtBranch, len(h.Branches), status)
	})

	machine := vp.NewMachine(img)
	err = machine.Run(0, func(si *vp.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			detector.SetInstCount(machine.InstCount)
			detector.Branch(si.PC, si.Taken)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s\n", db)
	fmt.Printf("detector internals: %d refreshes, %d clears, %d contention drops, %d counter saturations\n",
		detector.Stats.Refreshes, detector.Stats.Clears,
		detector.Stats.ContentionDrop, detector.Stats.Saturations)

	for _, ph := range db.Phases {
		fmt.Printf("\nphase %d (%d detections, live %d..%d):\n",
			ph.ID, ph.Detections, ph.FirstAtBranch, ph.LastAtBranch)
		for i, bs := range ph.SortedBranches() {
			if i >= 6 {
				fmt.Printf("  ... and %d more branches\n", len(ph.Branches)-6)
				break
			}
			blk := img.BlockAt(bs.PC)
			fmt.Printf("  pc=%-7d %-22v exec=%-4d taken=%.0f%%\n",
				bs.PC, blk, bs.WindowExec(), bs.TakenFraction()*100)
		}
	}

	cz := db.Categorize()
	fmt.Println("\nbranch behavior across phases (Figure 9 taxonomy):")
	for c := vp.Category(0); c < vp.NumCategories; c++ {
		fmt.Printf("  %-16s %5.1f%% of dynamic hot-spot branches (%d static)\n",
			c, cz.Fraction(c)*100, cz.Count[c])
	}
}
