// Quickstart: run the complete Vacuum Packing pipeline on one benchmark
// through the public API and print what it did at every stage.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	vp "repro"
)

func main() {
	// 1. Build a phased workload (a perl-like interpreter with three
	//    command-mix phases).
	bench, err := vp.Benchmark("perl")
	if err != nil {
		log.Fatal(err)
	}
	input, err := bench.InputByName("A")
	if err != nil {
		log.Fatal(err)
	}
	program := bench.Build(input)
	fmt.Printf("program: %d functions, %d basic blocks, %d static instructions\n",
		len(program.Funcs), program.NumBlocks(), program.NumInsts())

	// 2. Run the pipeline: profile under the Hot Spot Detector, filter
	//    phases, identify regions, extract + link + optimize packages.
	outcome, err := vp.Run(vp.ScaledConfig(), program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d instructions, %d conditional branches\n",
		outcome.ProfileInsts, outcome.ProfileBranches)
	fmt.Printf("detector fired %d times -> %d unique phases after filtering\n",
		outcome.Detections, len(outcome.DB.Phases))
	for _, r := range outcome.Regions {
		fmt.Printf("  phase %d region: %d profiled branches, %d hot blocks (+%d inferred, %d grown)\n",
			r.PhaseID, r.ProfiledBranches, r.NumHot(), r.InferredHot, r.GrownBlocks)
	}
	fmt.Printf("built %d packages, %d links, %d launch points\n",
		len(outcome.Pack.Packages), outcome.Pack.Links, outcome.Pack.LaunchPoints)
	fmt.Printf("static code: +%.1f%% growth, %.1f%% of instructions selected, replication %.2fx\n",
		outcome.Pack.CodeGrowth()*100, outcome.Pack.SelectedFraction()*100, outcome.Pack.Replication())

	// 3. Evaluate: time the original and the packed program on the EPIC
	//    machine model and confirm they compute the same results.
	ev, err := outcome.Evaluate(vp.DefaultMachine(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles (IPC %.2f)\n", ev.Base.Cycles, ev.Base.IPC())
	fmt.Printf("packed:   %d cycles (IPC %.2f)\n", ev.Packed.Cycles, ev.Packed.IPC())
	fmt.Printf("coverage: %.1f%% of dynamic instructions ran inside packages\n", ev.Coverage*100)
	fmt.Printf("speedup:  %.3fx, functionally equivalent: %v\n", ev.Speedup, ev.Equivalent)
}
