// phasestudy: reproduce the paper's m88ksim observation interactively —
// two program phases share a launch point, and package linking is what
// makes the second phase's specialized code reachable (§5.1). The example
// runs all four evaluation configurations and prints the coverage/speedup
// matrix for one benchmark.
//
//	go run ./examples/phasestudy [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	vp "repro"
)

func main() {
	name := "m88ksim"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench, err := vp.Benchmark(name)
	if err != nil {
		log.Fatal(err)
	}
	input := bench.Inputs[0]

	fmt.Printf("%s (%s): four configurations, fresh pipeline each\n\n", bench.Name, bench.Paper)
	fmt.Printf("%-24s %10s %10s %9s %7s %7s\n",
		"configuration", "coverage", "speedup", "packages", "links", "phases")
	for _, v := range vp.Variants() {
		cfg := v.Apply(vp.ScaledConfig())
		outcome, err := vp.Run(cfg, bench.Build(input))
		if err != nil {
			log.Fatal(err)
		}
		ev, err := outcome.Evaluate(vp.DefaultMachine(), 0)
		if err != nil {
			log.Fatal(err)
		}
		if !ev.Equivalent {
			log.Fatalf("%s: packed program diverged", v.Name())
		}
		fmt.Printf("%-24s %9.1f%% %10.3f %9d %7d %7d\n",
			v.Name(), ev.Coverage*100, ev.Speedup,
			len(outcome.Pack.Packages), outcome.Pack.Links, len(outcome.Regions))
	}
	fmt.Println("\nEvery phase shares the same root function, so without linking only the")
	fmt.Println("left-most package is reachable from the shared launch point; its")
	fmt.Println("specialization is wrong for the other phase and execution keeps falling")
	fmt.Println("out through cold exits. Links retarget those exits into the sibling")
	fmt.Println("package built for the phase that is actually running.")
}
