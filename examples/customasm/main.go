// customasm: write a VPIR program by hand in assembly, profile it with the
// Hot Spot Detector, extract packages, and disassemble the result — the
// full post-link-optimizer workflow on code you control instruction by
// instruction.
//
//	go run ./examples/customasm
package main

import (
	"fmt"
	"log"
	"strings"

	vp "repro"
)

// A two-phase program: phase 1 scans an array summing positives; phase 2
// scans it counting negatives. Both phases share the scan loop (the shared
// root that package linking exists for); the branch in the middle flips
// bias between the phases.
const src = `
; data: phase table + 64-element array
.data 0

.func fillarray            ; arr[i] = (i*2654435761) % 97 - 48
  li r1, 0                 ; i
  li r2, 64
  li r5, 1048584           ; &arr[0] (DataBase + 8)
fill:
  muli r3, r1, 2654435761
  li r4, 97
  rem r3, r3, r4
  addi r3, r3, -48
  shli r4, r1, 3
  add r4, r4, r5
  st r3, 0(r4)
  addi r1, r1, 1
  blt r1, r2, fill
  ret

.func scan                 ; one pass over the array; r20 = mode (0 sum+, 1 count-)
  addi sp, sp, -8
  st ra, 0(sp)
  li r1, 0                 ; i
  li r2, 64
  li r5, 1048584
  li r6, 0                 ; result accumulator
loop:
  shli r4, r1, 3
  add r4, r4, r5
  ld r3, 0(r4)
  blt r3, r0, negative     ; bias flips with the data mix per phase
positive:
  beq r20, r0, addpos
  jmp next
addpos:
  add r6, r6, r3
  jmp next
negative:
  beq r20, r0, next
  addi r6, r6, 1
next:
  addi r1, r1, 1
  blt r1, r2, loop
  st r6, 1048576(r0)       ; publish result at DataBase
  ld ra, 0(sp)
  addi sp, sp, 8
  ret

.func main
.main
  call fillarray
  li r20, 0                ; phase 1: sum positives, many times
  li r21, 3000
phase1:
  call scan
  addi r21, r21, -1
  bne r21, r0, phase1
  li r20, 1                ; phase 2: count negatives
  li r21, 3000
phase2:
  call scan
  addi r21, r21, -1
  bne r21, r0, phase2
  halt
`

func main() {
	program, err := vp.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d functions, %d instructions\n", len(program.Funcs), program.NumInsts())

	cfg := vp.ScaledConfig()
	outcome, err := vp.Run(cfg, program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d phases from %d raw detections\n",
		len(outcome.DB.Phases), outcome.Detections)

	for _, pk := range outcome.Pack.Packages {
		linked := 0
		for _, e := range pk.Exits {
			if e.Linked != nil {
				linked++
			}
		}
		fmt.Printf("  package %-18s root=%-6s blocks=%-3d exits=%d (%d linked)\n",
			pk.Fn.Name, pk.Root.Name, len(pk.Fn.Blocks), len(pk.Exits), linked)
	}

	ev, err := outcome.Evaluate(vp.DefaultMachine(), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage %.1f%%, speedup %.3fx, equivalent=%v\n",
		ev.Coverage*100, ev.Speedup, ev.Equivalent)

	// Show the extracted code the way a post-link tool would: disassemble
	// the first package.
	if len(outcome.Pack.Packages) > 0 {
		text := vp.Disassemble(outcome.Packed)
		name := outcome.Pack.Packages[0].Fn.Name
		fmt.Printf("\ndisassembly of %s:\n", name)
		inPkg := false
		lines := 0
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, ".func ") {
				inPkg = strings.Contains(line, name)
			}
			if inPkg && lines < 30 {
				fmt.Println(line)
				lines++
			}
		}
	}
}
