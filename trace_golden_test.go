package vacuumpack

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestTraceGoldenSchema locks the JSON trace schema: a full observed
// pipeline run over gzip/A at scale 1 is deterministic once wall-clock
// fields are normalized away, so the exported trace must match the golden
// file byte for byte. Regenerate with `go test -run TraceGolden -update .`
// after an intentional schema or pipeline change.
func TestTraceGoldenSchema(t *testing.T) {
	bench, err := Benchmark("gzip")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1

	rec := NewRecorder()
	outcome, err := RunObserved(ScaledConfig(), bench.Build(in), rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := outcome.EvaluateObserved(DefaultMachine(), 0, rec); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rec.Export().Normalize().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// The trace must be valid JSON carrying the schema marker and a span
	// for every pipeline stage, independent of the golden comparison.
	var tr Trace
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tr.Schema != "vptrace/v1" {
		t.Errorf("schema = %q", tr.Schema)
	}
	have := make(map[string]bool)
	for _, s := range tr.Spans {
		have[s.Name] = true
	}
	for _, stage := range []string{"pipeline", "profile", "filter", "region", "package", "link", "optimize", "evaluate"} {
		if !have[stage] {
			t.Errorf("stage span %q missing from trace", stage)
		}
	}

	golden := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from %s (%d vs %d bytes); regenerate with -update if the change is intentional",
			golden, buf.Len(), len(want))
	}
}
