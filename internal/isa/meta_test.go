package isa

import "testing"

// TestMetaMatchesOpTable pins the flat Meta table to the per-opcode
// methods and the canonical switch-based classifications it replaces on
// the simulator's hot paths.
func TestMetaMatchesOpTable(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		m := Meta[op]
		if m.FU != op.FU() {
			t.Errorf("%v: Meta.FU = %v, FU() = %v", op, m.FU, op.FU())
		}
		if int(m.Latency) != op.Latency() {
			t.Errorf("%v: Meta.Latency = %d, Latency() = %d", op, m.Latency, op.Latency())
		}
		if m.HasRd != op.HasRd() || m.HasRs1 != op.HasRs1() || m.HasRs2 != op.HasRs2() {
			t.Errorf("%v: Meta operand flags disagree with methods", op)
		}
		if m.IsControl != op.isControlSlow() {
			t.Errorf("%v: Meta.IsControl = %v, want %v", op, m.IsControl, op.isControlSlow())
		}
		if m.IsCondBranch != op.isCondBranchSlow() {
			t.Errorf("%v: Meta.IsCondBranch = %v, want %v", op, m.IsCondBranch, op.isCondBranchSlow())
		}
	}
	// Undefined opcodes carry the zero OpMeta so hot-path indexing by any
	// uint8 value is safe and inert.
	for op := int(numOpcodes); op < 256; op++ {
		if Meta[op] != (OpMeta{}) {
			t.Errorf("undefined opcode %d has non-zero Meta", op)
		}
	}
}
