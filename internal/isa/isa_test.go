package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{R0, "r0"},
		{Reg(4), "r4"},
		{RSP, "sp"},
		{RRA, "ra"},
		{F(0), "f0"},
		{F(15), "f15"},
		{Reg(200), "reg?200"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(c.r), got, c.want)
		}
	}
}

func TestFRange(t *testing.T) {
	if got := F(3); got != Reg(NumIntRegs+3) {
		t.Errorf("F(3) = %d, want %d", got, NumIntRegs+3)
	}
	defer func() {
		if recover() == nil {
			t.Error("F(16) did not panic")
		}
	}()
	F(16)
}

func TestRegClassification(t *testing.T) {
	if F(0).IsFP() != true || Reg(5).IsFP() != false {
		t.Error("IsFP misclassifies registers")
	}
	if !Reg(NumRegs-1).Valid() || Reg(NumRegs).Valid() {
		t.Error("Valid boundary wrong")
	}
}

func TestOpcodeTablesComplete(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if opTable[op].name == "" {
			t.Errorf("opcode %d has no table entry", uint8(op))
		}
		if opTable[op].latency < 1 {
			t.Errorf("opcode %s has latency %d < 1", op, opTable[op].latency)
		}
		got, ok := OpcodeByName(op.String())
		if !ok || got != op {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v, true", op.String(), got, ok, op)
		}
	}
	if _, ok := OpcodeByName("bogus"); ok {
		t.Error("OpcodeByName accepted bogus mnemonic")
	}
}

func TestOpcodeClassPredicates(t *testing.T) {
	condBranches := []Opcode{BEQ, BNE, BLT, BGE}
	for _, op := range condBranches {
		if !op.IsCondBranch() || !op.IsControl() {
			t.Errorf("%s should be a conditional branch and control", op)
		}
		if op.FU() != FUBranch {
			t.Errorf("%s FU = %v, want branch", op, op.FU())
		}
	}
	for _, op := range []Opcode{JMP, CALL, RET, HALT} {
		if op.IsCondBranch() {
			t.Errorf("%s should not be a conditional branch", op)
		}
		if !op.IsControl() {
			t.Errorf("%s should be control", op)
		}
	}
	for _, op := range []Opcode{ADD, LD, FADD, LA, LI} {
		if op.IsControl() {
			t.Errorf("%s should not be control", op)
		}
	}
}

func TestDefsUses(t *testing.T) {
	cases := []struct {
		in       Inst
		wantDef  Reg
		hasDef   bool
		wantUses []Reg
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, 1, true, []Reg{2, 3}},
		{Inst{Op: ADD, Rd: R0, Rs1: 2, Rs2: 3}, 0, false, []Reg{2, 3}},
		{Inst{Op: ADD, Rd: 1, Rs1: R0, Rs2: R0}, 1, true, nil},
		{Inst{Op: CALL, Target: 10}, RRA, true, nil},
		{Inst{Op: RET}, 0, false, []Reg{RRA}},
		{Inst{Op: ST, Rs1: 4, Rs2: 5}, 0, false, []Reg{4, 5}},
		{Inst{Op: LI, Rd: 7, Imm: 3}, 7, true, nil},
		{Inst{Op: JMP, Target: 3}, 0, false, nil},
	}
	for _, c := range cases {
		d, ok := c.in.Defs()
		if ok != c.hasDef || (ok && d != c.wantDef) {
			t.Errorf("%v Defs() = %v,%v; want %v,%v", c.in, d, ok, c.wantDef, c.hasDef)
		}
		uses := c.in.Uses(nil)
		if len(uses) != len(c.wantUses) {
			t.Errorf("%v Uses() = %v; want %v", c.in, uses, c.wantUses)
			continue
		}
		for i := range uses {
			if uses[i] != c.wantUses[i] {
				t.Errorf("%v Uses()[%d] = %v; want %v", c.in, i, uses[i], c.wantUses[i])
			}
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, "add r1, r2, r3"},
		{Inst{Op: ADDI, Rd: 1, Rs1: 2, Imm: -4}, "addi r1, r2, -4"},
		{Inst{Op: LI, Rd: 9, Imm: 100}, "li r9, 100"},
		{Inst{Op: LD, Rd: 1, Rs1: RSP, Imm: 8}, "ld r1, 8(sp)"},
		{Inst{Op: ST, Rs2: 3, Rs1: RSP, Imm: 16}, "st r3, 16(sp)"},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Target: 42}, "beq r1, r2, @42"},
		{Inst{Op: JMP, Target: 7}, "jmp @7"},
		{Inst{Op: RET}, "ret"},
		{Inst{Op: LA, Rd: 5, Target: 9}, "la r5, @9"},
		{Inst{Op: FCVTIF, Rd: F(1), Rs1: 3}, "fcvtif f1, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

// randomInst builds a valid instruction for property tests.
func randomInst(r *rand.Rand) Inst {
	op := Opcode(r.Intn(NumOpcodes))
	in := Inst{Op: op}
	if op.HasRd() {
		in.Rd = Reg(r.Intn(NumRegs))
	}
	if op.HasRs1() {
		in.Rs1 = Reg(r.Intn(NumRegs))
	}
	if op.HasRs2() {
		in.Rs2 = Reg(r.Intn(NumRegs))
	}
	if op.HasImm() {
		in.Imm = r.Int63() - r.Int63()
	}
	if op.HasTarget() {
		in.Target = int64(r.Intn(1 << 20))
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := randomInst(r)
		var buf [EncodedSize]byte
		if err := in.Encode(buf[:]); err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if out != in {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	var buf [EncodedSize]byte
	if err := (Inst{Op: Opcode(250)}).Encode(buf[:]); err == nil {
		t.Error("invalid opcode encoded without error")
	}
	if err := (Inst{Op: ADD, Rd: Reg(99)}).Encode(buf[:]); err == nil {
		t.Error("invalid register encoded without error")
	}
	if err := (Inst{Op: JMP, Target: -1}).Encode(buf[:]); err == nil {
		t.Error("negative target encoded without error")
	}
	if err := (Inst{Op: ADD}).Encode(buf[:4]); err == nil {
		t.Error("short buffer encoded without error")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 3)); err == nil {
		t.Error("short buffer decoded without error")
	}
	bad := make([]byte, EncodedSize)
	bad[0] = 250
	if _, err := Decode(bad); err == nil {
		t.Error("invalid opcode decoded without error")
	}
	bad[0] = byte(ADD)
	bad[1] = 200
	if _, err := Decode(bad); err == nil {
		t.Error("invalid register decoded without error")
	}
}

func TestImageRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	code := make([]Inst, 300)
	for i := range code {
		code[i] = randomInst(r)
	}
	data, err := EncodeImage(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(code)*EncodedSize {
		t.Fatalf("image size = %d, want %d", len(data), len(code)*EncodedSize)
	}
	back, err := DecodeImage(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range code {
		if back[i] != code[i] {
			t.Fatalf("slot %d: got %+v, want %+v", i, back[i], code[i])
		}
	}
	if _, err := DecodeImage(data[:EncodedSize+1]); err == nil {
		t.Error("ragged image decoded without error")
	}
}

// Property: every encodable instruction survives a round trip, regardless of
// junk in unused fields being rejected or normalized.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(opRaw uint8, rd, rs1, rs2 uint8, imm int64, target uint32) bool {
		op := Opcode(opRaw % uint8(NumOpcodes))
		in := Inst{
			Op:     op,
			Rd:     Reg(rd % NumRegs),
			Rs1:    Reg(rs1 % NumRegs),
			Rs2:    Reg(rs2 % NumRegs),
			Imm:    imm,
			Target: int64(target),
		}
		var buf [EncodedSize]byte
		if err := in.Encode(buf[:]); err != nil {
			return false
		}
		out, err := Decode(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFUClassString(t *testing.T) {
	for _, c := range []FUClass{FUNone, FUIALU, FUFP, FUMem, FUBranch} {
		if s := c.String(); s == "" || strings.HasPrefix(s, "fu?") {
			t.Errorf("FUClass(%d).String() = %q", uint8(c), s)
		}
	}
	if s := FUClass(9).String(); s != "fu?9" {
		t.Errorf("unknown FUClass string = %q", s)
	}
}
