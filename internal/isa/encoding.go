package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding. Each instruction packs into 16 bytes:
//
//	byte 0     opcode
//	byte 1     rd
//	byte 2     rs1
//	byte 3     rs2
//	bytes 4-7  target (uint32, instruction-slot address)
//	bytes 8-15 immediate (int64, little endian)
//
// The encoding exists so code images can be written to disk and so
// round-trip properties pin down the instruction format; the simulator
// executes decoded Inst values directly.

// EncodedSize is the byte length of one encoded instruction.
const EncodedSize = 16

// MaxTarget is the largest encodable control-flow target.
const MaxTarget = 1<<32 - 1

// Encode packs the instruction into buf, which must be at least EncodedSize
// bytes. It returns an error for invalid opcodes, registers, or targets out
// of range.
func (in Inst) Encode(buf []byte) error {
	if len(buf) < EncodedSize {
		return fmt.Errorf("isa: encode buffer too small: %d < %d", len(buf), EncodedSize)
	}
	if !in.Op.Valid() {
		return fmt.Errorf("isa: encode: invalid opcode %d", uint8(in.Op))
	}
	for _, r := range [...]Reg{in.Rd, in.Rs1, in.Rs2} {
		if !r.Valid() {
			return fmt.Errorf("isa: encode %s: invalid register %d", in.Op, uint8(r))
		}
	}
	if in.Target < 0 || in.Target > MaxTarget {
		return fmt.Errorf("isa: encode %s: target %d out of range", in.Op, in.Target)
	}
	buf[0] = byte(in.Op)
	buf[1] = byte(in.Rd)
	buf[2] = byte(in.Rs1)
	buf[3] = byte(in.Rs2)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(in.Target))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(in.Imm))
	return nil
}

// Decode unpacks one instruction from buf.
func Decode(buf []byte) (Inst, error) {
	if len(buf) < EncodedSize {
		return Inst{}, fmt.Errorf("isa: decode buffer too small: %d < %d", len(buf), EncodedSize)
	}
	in := Inst{
		Op:     Opcode(buf[0]),
		Rd:     Reg(buf[1]),
		Rs1:    Reg(buf[2]),
		Rs2:    Reg(buf[3]),
		Target: int64(binary.LittleEndian.Uint32(buf[4:8])),
		Imm:    int64(binary.LittleEndian.Uint64(buf[8:16])),
	}
	if !in.Op.Valid() {
		return Inst{}, fmt.Errorf("isa: decode: invalid opcode %d", buf[0])
	}
	for _, r := range [...]Reg{in.Rd, in.Rs1, in.Rs2} {
		if !r.Valid() {
			return Inst{}, fmt.Errorf("isa: decode %s: invalid register %d", in.Op, uint8(r))
		}
	}
	return in, nil
}

// EncodeImage encodes a whole code image.
func EncodeImage(code []Inst) ([]byte, error) {
	out := make([]byte, len(code)*EncodedSize)
	for i, in := range code {
		if err := in.Encode(out[i*EncodedSize:]); err != nil {
			return nil, fmt.Errorf("isa: image slot %d: %w", i, err)
		}
	}
	return out, nil
}

// DecodeImage decodes a whole code image.
func DecodeImage(data []byte) ([]Inst, error) {
	if len(data)%EncodedSize != 0 {
		return nil, fmt.Errorf("isa: image length %d not a multiple of %d", len(data), EncodedSize)
	}
	code := make([]Inst, len(data)/EncodedSize)
	for i := range code {
		in, err := Decode(data[i*EncodedSize:])
		if err != nil {
			return nil, fmt.Errorf("isa: image slot %d: %w", i, err)
		}
		code[i] = in
	}
	return code, nil
}
