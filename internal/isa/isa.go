// Package isa defines VPIR, the small load/store instruction set used by the
// Vacuum Packing reproduction. VPIR stands in for the EPIC/IMPACT binaries
// used in the paper: it is simple enough to assemble, simulate and rewrite,
// yet rich enough that branch profiles, partial inlining and list scheduling
// all behave the way the paper's algorithms expect.
//
// The machine is word oriented: every register holds a 64-bit value, memory
// is byte addressed but accessed in 8-byte words, and every instruction
// occupies one 8-byte slot in the linearized code image. Program counters
// count instruction slots, not bytes.
package isa

import "fmt"

// Reg names an architectural register. Registers 0..31 are the integer file
// and 32..47 are the floating-point file (F0..F15). R0 reads as zero and
// ignores writes, matching common RISC practice; RSP and RRA have the usual
// stack-pointer and return-address conventions.
type Reg uint8

// Integer register conventions.
const (
	R0  Reg = 0  // hardwired zero
	RSP Reg = 30 // stack pointer
	RRA Reg = 31 // return address (written by CALL, read by RET)
)

// NumIntRegs and NumFPRegs size the two register files. Reg values in
// [NumIntRegs, NumIntRegs+NumFPRegs) name floating-point registers.
const (
	NumIntRegs = 32
	NumFPRegs  = 16
	NumRegs    = NumIntRegs + NumFPRegs
)

// F returns the Reg naming floating-point register i.
func F(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: FP register F%d out of range", i))
	}
	return Reg(NumIntRegs + i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= NumIntRegs && r < NumRegs }

// Valid reports whether r names an architectural register at all.
func (r Reg) Valid() bool { return r < NumRegs }

// String renders the register in assembly syntax (r4, sp, ra, f2, ...).
func (r Reg) String() string {
	switch {
	case r == RSP:
		return "sp"
	case r == RRA:
		return "ra"
	case r < NumIntRegs:
		return fmt.Sprintf("r%d", uint8(r))
	case r < NumRegs:
		return fmt.Sprintf("f%d", uint8(r)-NumIntRegs)
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Opcode enumerates every VPIR operation.
type Opcode uint8

// Opcodes. The comment gives the assembly shape and semantics.
const (
	NOP Opcode = iota // nop

	// Integer ALU, register-register.
	ADD // add rd, rs1, rs2    rd = rs1 + rs2
	SUB // sub rd, rs1, rs2
	MUL // mul rd, rs1, rs2
	DIV // div rd, rs1, rs2    (div by zero yields 0)
	REM // rem rd, rs1, rs2    (rem by zero yields 0)
	AND // and rd, rs1, rs2
	OR  // or  rd, rs1, rs2
	XOR // xor rd, rs1, rs2
	SHL // shl rd, rs1, rs2    rd = rs1 << (rs2 & 63)
	SHR // shr rd, rs1, rs2    logical right shift
	SLT // slt rd, rs1, rs2    rd = rs1 < rs2 ? 1 : 0 (signed)
	SEQ // seq rd, rs1, rs2    rd = rs1 == rs2 ? 1 : 0

	// Integer ALU, register-immediate.
	ADDI // addi rd, rs1, imm
	MULI // muli rd, rs1, imm
	ANDI // andi rd, rs1, imm
	ORI  // ori  rd, rs1, imm
	XORI // xori rd, rs1, imm
	SHLI // shli rd, rs1, imm
	SHRI // shri rd, rs1, imm
	SLTI // slti rd, rs1, imm
	LI   // li   rd, imm        rd = imm (64-bit)

	// Memory. Addresses are rs1 + imm, must be 8-byte aligned.
	LD // ld rd, imm(rs1)
	ST // st rs2, imm(rs1)     mem[rs1+imm] = rs2

	// Floating point (operands in the FP file; FCVTIF/FCVTFI move across).
	FADD   // fadd fd, fs1, fs2
	FSUB   // fsub fd, fs1, fs2
	FMUL   // fmul fd, fs1, fs2
	FDIV   // fdiv fd, fs1, fs2   (div by zero yields 0)
	FSLT   // fslt rd, fs1, fs2   integer rd = fs1 < fs2 ? 1 : 0
	FCVTIF // fcvtif fd, rs1      int -> float
	FCVTFI // fcvtfi rd, fs1      float -> int (truncating)
	FLD    // fld fd, imm(rs1)
	FST    // fst fs2, imm(rs1)

	// Control. Targets are absolute instruction-slot addresses after
	// linearization; before that, the program layer keeps them symbolic.
	BEQ  // beq rs1, rs2, target   branch if rs1 == rs2
	BNE  // bne rs1, rs2, target
	BLT  // blt rs1, rs2, target   signed
	BGE  // bge rs1, rs2, target   signed
	JMP  // jmp target
	CALL // call target            ra = pc+1; pc = target
	RET  // ret                    pc = ra
	JR   // jr rs1                 pc = rs1 (indirect jump)
	LA   // la rd, target          rd = target address (materialized label)
	HALT // halt

	numOpcodes
)

// NumOpcodes is the count of defined opcodes (for table sizing and fuzzing).
const NumOpcodes = int(numOpcodes)

// FUClass identifies which functional-unit pool an instruction issues to,
// mirroring the five unit types of the paper's EPIC machine model.
type FUClass uint8

// Functional unit classes (Table 2 of the paper).
const (
	FUNone   FUClass = iota // NOP, HALT: consume an issue slot only
	FUIALU                  // integer ALU
	FUFP                    // floating point
	FUMem                   // memory
	FUBranch                // control
)

func (c FUClass) String() string {
	switch c {
	case FUNone:
		return "none"
	case FUIALU:
		return "ialu"
	case FUFP:
		return "fp"
	case FUMem:
		return "mem"
	case FUBranch:
		return "branch"
	default:
		return fmt.Sprintf("fu?%d", uint8(c))
	}
}

// opInfo is the static description of one opcode.
type opInfo struct {
	name    string
	fu      FUClass
	latency int // cycles from issue to result availability (L1 hit for loads)
	// operand shape flags
	hasRd, hasRs1, hasRs2, hasImm, hasTarget bool
}

// OpMeta is the flattened per-opcode metadata consulted on the simulator's
// hottest paths (Machine.Step, Timing.Observe). Keeping everything in one
// cache-line-friendly struct turns a handful of per-instruction method
// calls into a single table load.
type OpMeta struct {
	FU           FUClass
	Latency      uint8
	HasRd        bool
	HasRs1       bool
	HasRs2       bool
	IsControl    bool
	IsCondBranch bool
}

// Meta is the flat opcode-indexed metadata table. It is sized 256 so that
// indexing with any uint8-valued Opcode needs no bounds check; undefined
// opcodes hold the zero OpMeta (FUNone, zero latency, no flags).
var Meta [256]OpMeta

func init() {
	for op := Opcode(0); op < numOpcodes; op++ {
		info := opTable[op]
		Meta[op] = OpMeta{
			FU:           info.fu,
			Latency:      uint8(info.latency),
			HasRd:        info.hasRd,
			HasRs1:       info.hasRs1,
			HasRs2:       info.hasRs2,
			IsControl:    op.isControlSlow(),
			IsCondBranch: op.isCondBranchSlow(),
		}
	}
}

var opTable = [numOpcodes]opInfo{
	NOP: {name: "nop", fu: FUNone, latency: 1},

	ADD: {name: "add", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	SUB: {name: "sub", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	MUL: {name: "mul", fu: FUIALU, latency: 3, hasRd: true, hasRs1: true, hasRs2: true},
	DIV: {name: "div", fu: FUIALU, latency: 8, hasRd: true, hasRs1: true, hasRs2: true},
	REM: {name: "rem", fu: FUIALU, latency: 8, hasRd: true, hasRs1: true, hasRs2: true},
	AND: {name: "and", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	OR:  {name: "or", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	XOR: {name: "xor", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	SHL: {name: "shl", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	SHR: {name: "shr", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	SLT: {name: "slt", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},
	SEQ: {name: "seq", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasRs2: true},

	ADDI: {name: "addi", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasImm: true},
	MULI: {name: "muli", fu: FUIALU, latency: 3, hasRd: true, hasRs1: true, hasImm: true},
	ANDI: {name: "andi", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasImm: true},
	ORI:  {name: "ori", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasImm: true},
	XORI: {name: "xori", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasImm: true},
	SHLI: {name: "shli", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasImm: true},
	SHRI: {name: "shri", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasImm: true},
	SLTI: {name: "slti", fu: FUIALU, latency: 1, hasRd: true, hasRs1: true, hasImm: true},
	LI:   {name: "li", fu: FUIALU, latency: 1, hasRd: true, hasImm: true},

	LD: {name: "ld", fu: FUMem, latency: 3, hasRd: true, hasRs1: true, hasImm: true},
	ST: {name: "st", fu: FUMem, latency: 1, hasRs1: true, hasRs2: true, hasImm: true},

	FADD:   {name: "fadd", fu: FUFP, latency: 3, hasRd: true, hasRs1: true, hasRs2: true},
	FSUB:   {name: "fsub", fu: FUFP, latency: 3, hasRd: true, hasRs1: true, hasRs2: true},
	FMUL:   {name: "fmul", fu: FUFP, latency: 3, hasRd: true, hasRs1: true, hasRs2: true},
	FDIV:   {name: "fdiv", fu: FUFP, latency: 8, hasRd: true, hasRs1: true, hasRs2: true},
	FSLT:   {name: "fslt", fu: FUFP, latency: 3, hasRd: true, hasRs1: true, hasRs2: true},
	FCVTIF: {name: "fcvtif", fu: FUFP, latency: 3, hasRd: true, hasRs1: true},
	FCVTFI: {name: "fcvtfi", fu: FUFP, latency: 3, hasRd: true, hasRs1: true},
	FLD:    {name: "fld", fu: FUMem, latency: 3, hasRd: true, hasRs1: true, hasImm: true},
	FST:    {name: "fst", fu: FUMem, latency: 1, hasRs1: true, hasRs2: true, hasImm: true},

	BEQ:  {name: "beq", fu: FUBranch, latency: 1, hasRs1: true, hasRs2: true, hasTarget: true},
	BNE:  {name: "bne", fu: FUBranch, latency: 1, hasRs1: true, hasRs2: true, hasTarget: true},
	BLT:  {name: "blt", fu: FUBranch, latency: 1, hasRs1: true, hasRs2: true, hasTarget: true},
	BGE:  {name: "bge", fu: FUBranch, latency: 1, hasRs1: true, hasRs2: true, hasTarget: true},
	JMP:  {name: "jmp", fu: FUBranch, latency: 1, hasTarget: true},
	CALL: {name: "call", fu: FUBranch, latency: 1, hasTarget: true},
	RET:  {name: "ret", fu: FUBranch, latency: 1},
	JR:   {name: "jr", fu: FUBranch, latency: 1, hasRs1: true},
	LA:   {name: "la", fu: FUIALU, latency: 1, hasRd: true, hasTarget: true},
	HALT: {name: "halt", fu: FUNone, latency: 1},
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < numOpcodes }

// String returns the assembly mnemonic.
func (op Opcode) String() string {
	if !op.Valid() {
		return fmt.Sprintf("op?%d", uint8(op))
	}
	return opTable[op].name
}

// FU returns the functional-unit class op issues to.
func (op Opcode) FU() FUClass {
	if !op.Valid() {
		return FUNone
	}
	return opTable[op].fu
}

// Latency returns the issue-to-result latency in cycles. Loads report their
// L1-hit latency; the timing model adds miss penalties.
func (op Opcode) Latency() int {
	if !op.Valid() {
		return 1
	}
	return opTable[op].latency
}

// HasRd reports whether op writes a destination register.
func (op Opcode) HasRd() bool { return op.Valid() && opTable[op].hasRd }

// HasRs1 reports whether op reads Rs1.
func (op Opcode) HasRs1() bool { return op.Valid() && opTable[op].hasRs1 }

// HasRs2 reports whether op reads Rs2.
func (op Opcode) HasRs2() bool { return op.Valid() && opTable[op].hasRs2 }

// HasImm reports whether op carries an immediate operand.
func (op Opcode) HasImm() bool { return op.Valid() && opTable[op].hasImm }

// HasTarget reports whether op carries a control-flow target.
func (op Opcode) HasTarget() bool { return op.Valid() && opTable[op].hasTarget }

// IsCondBranch reports whether op is a conditional branch — the instruction
// class profiled by the Branch Behavior Buffer.
func (op Opcode) IsCondBranch() bool { return Meta[op].IsCondBranch }

func (op Opcode) isCondBranchSlow() bool {
	switch op {
	case BEQ, BNE, BLT, BGE:
		return true
	}
	return false
}

// IsControl reports whether op can redirect the program counter.
func (op Opcode) IsControl() bool { return Meta[op].IsControl }

func (op Opcode) isControlSlow() bool {
	switch op {
	case BEQ, BNE, BLT, BGE, JMP, CALL, RET, JR, HALT:
		return true
	}
	return false
}

// OpcodeByName resolves an assembly mnemonic; ok is false for unknown names.
func OpcodeByName(name string) (op Opcode, ok bool) {
	o, ok := opsByName[name]
	return o, ok
}

var opsByName = func() map[string]Opcode {
	m := make(map[string]Opcode, NumOpcodes)
	for op := Opcode(0); op < numOpcodes; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// Inst is one decoded VPIR instruction. Target is an absolute
// instruction-slot address; it is only meaningful after linearization (the
// program layer keeps symbolic block/function references until then).
type Inst struct {
	Op     Opcode
	Rd     Reg
	Rs1    Reg
	Rs2    Reg
	Imm    int64
	Target int64
}

// Defs returns the register op writes, and ok=false if it writes none.
// CALL's implicit write of RRA is reported here so dependence analysis and
// the scoreboard see it.
func (in Inst) Defs() (Reg, bool) {
	if in.Op == CALL {
		return RRA, true
	}
	if in.Op.HasRd() && in.Rd != R0 {
		return in.Rd, true
	}
	return 0, false
}

// Uses appends the registers in reads to dst and returns it. RET's implicit
// read of RRA is included.
func (in Inst) Uses(dst []Reg) []Reg {
	if in.Op.HasRs1() && in.Rs1 != R0 {
		dst = append(dst, in.Rs1)
	}
	if in.Op.HasRs2() && in.Rs2 != R0 {
		dst = append(dst, in.Rs2)
	}
	if in.Op == RET {
		dst = append(dst, RRA)
	}
	return dst
}

// String renders the instruction in assembly syntax with numeric targets.
func (in Inst) String() string {
	info := opTable[in.Op]
	switch {
	case in.Op == LD || in.Op == FLD:
		return fmt.Sprintf("%s %s, %d(%s)", info.name, in.Rd, in.Imm, in.Rs1)
	case in.Op == ST || in.Op == FST:
		return fmt.Sprintf("%s %s, %d(%s)", info.name, in.Rs2, in.Imm, in.Rs1)
	case in.Op == LI:
		return fmt.Sprintf("%s %s, %d", info.name, in.Rd, in.Imm)
	case in.Op == LA:
		return fmt.Sprintf("%s %s, @%d", info.name, in.Rd, in.Target)
	case info.hasTarget && info.hasRs1: // conditional branches
		return fmt.Sprintf("%s %s, %s, @%d", info.name, in.Rs1, in.Rs2, in.Target)
	case info.hasTarget:
		return fmt.Sprintf("%s @%d", info.name, in.Target)
	case info.hasRd && info.hasRs1 && info.hasRs2:
		return fmt.Sprintf("%s %s, %s, %s", info.name, in.Rd, in.Rs1, in.Rs2)
	case info.hasRd && info.hasRs1 && info.hasImm:
		return fmt.Sprintf("%s %s, %s, %d", info.name, in.Rd, in.Rs1, in.Imm)
	case info.hasRd && info.hasRs1:
		return fmt.Sprintf("%s %s, %s", info.name, in.Rd, in.Rs1)
	default:
		return info.name
	}
}
