package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestSlogHandlerStampsActiveSpanAndStage(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder()
	logger := slog.New(NewSlogHandler(slog.NewTextHandler(&buf, nil), rec))

	logger.Info("outside")
	if out := buf.String(); strings.Contains(out, "stage=") || strings.Contains(out, "span=") {
		t.Errorf("record outside any span was stamped: %q", out)
	}
	buf.Reset()

	sp := rec.StartSpan(StageProfile)
	inner := rec.StartSpan("input:gzip/A") // non-canonical innermost span
	logger.Info("inside")
	inner.End()
	sp.End()

	out := buf.String()
	if !strings.Contains(out, "span=input:gzip/A") {
		t.Errorf("missing span attribute: %q", out)
	}
	if !strings.Contains(out, "stage="+StageProfile) {
		t.Errorf("missing stage attribute (innermost canonical): %q", out)
	}
}

func TestSlogHandlerNilRecorderPassesThrough(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(NewSlogHandler(slog.NewTextHandler(&buf, nil), nil))
	logger.With("k", "v").WithGroup("g").Info("msg", "a", 1)
	if out := buf.String(); !strings.Contains(out, "msg") || !strings.Contains(out, "k=v") {
		t.Errorf("pass-through lost the record: %q", out)
	}
}
