package obs

import (
	"math"
	"math/bits"
)

// Histogram bucket scheme. Every histogram shares one fixed, log-spaced
// bucket layout: bucket i counts observations v <= 2^i for i in
// [0, NumHistogramBounds), and one final overflow bucket catches the rest.
// A fixed shared layout is what makes Absorb's histogram merge a plain
// per-bucket addition — deterministic regardless of merge order — and
// keeps the Prometheus exposition's `le` labels identical across
// processes and runs.
//
// Values are unit-free: instrumented sites record wall times in
// microseconds (histogram names carry the `span_us.` prefix or `_us`
// suffix by convention; Normalize relies on it), block/link counts as
// counts, and simulated cycles as cycles. 2^39 (~5.5e11) comfortably
// covers all of them.
const NumHistogramBounds = 40

// HistogramBounds returns the shared upper bounds (exclusive of the
// overflow bucket), i.e. 1, 2, 4, …, 2^39.
func HistogramBounds() []float64 {
	b := make([]float64, NumHistogramBounds)
	for i := range b {
		b[i] = float64(uint64(1) << uint(i))
	}
	return b
}

// bucketIndex maps an observation to its bucket: the smallest i with
// v <= 2^i, or the overflow slot. Non-positive values land in bucket 0.
func bucketIndex(v float64) int {
	if v <= 1 {
		return 0
	}
	u := uint64(math.Ceil(v))
	idx := bits.Len64(u - 1)
	if idx >= NumHistogramBounds {
		return NumHistogramBounds
	}
	return idx
}

// hist is the in-recorder histogram state: per-bucket counts (last slot
// is overflow), the running sum and observation count.
type hist struct {
	counts [NumHistogramBounds + 1]uint64
	sum    float64
	n      uint64
}

func (h *hist) observe(v float64) {
	h.counts[bucketIndex(v)]++
	h.sum += v
	h.n++
}

// record exports the histogram with trailing zero buckets trimmed (the
// JSON stays compact; merge re-pads as needed).
func (h *hist) record() HistogramRecord {
	last := -1
	for i, c := range h.counts {
		if c != 0 {
			last = i
		}
	}
	r := HistogramRecord{Count: h.n, Sum: h.sum}
	if last >= 0 {
		r.Buckets = append([]uint64(nil), h.counts[:last+1]...)
	}
	return r
}

// merge adds an exported record back into the histogram.
func (h *hist) merge(r HistogramRecord) {
	for i, c := range r.Buckets {
		if i > NumHistogramBounds {
			break
		}
		h.counts[i] += c
	}
	h.sum += r.Sum
	h.n += r.Count
}
