// Trace analysis: the comparison and flame-graph folds behind the
// vptrace CLI. Everything here works on exported Traces, so two runs can
// be compared offline — in particular a fresh trace against a committed
// golden, which is how scripts/verify.sh gates stage wall-time and
// counter regressions in CI.

package obs

import (
	"sort"
	"time"
)

// DiffOptions parameterizes DiffTraces.
type DiffOptions struct {
	// Threshold is the fractional growth tolerated before a stage
	// wall-time or counter increase counts as a regression (0.10 = +10%).
	// Zero means the default 0.10.
	Threshold float64
	// MinWall is the noise floor for wall-time comparisons: a stage whose
	// totals are below it in both traces never regresses. Zero means the
	// default 1ms.
	MinWall time.Duration
}

func (o DiffOptions) threshold() float64 {
	if o.Threshold == 0 {
		return 0.10
	}
	return o.Threshold
}

func (o DiffOptions) minWall() time.Duration {
	if o.MinWall == 0 {
		return time.Millisecond
	}
	return o.MinWall
}

// StageDelta compares one span name's aggregate wall time across two
// traces. Frac is (new-old)/old, or 0 when old is 0 (a new stage is
// reported but never flagged: the schema grew, nothing got slower).
type StageDelta struct {
	Name         string
	OldUS, NewUS int64
	OldN, NewN   int
	Frac         float64
	Regressed    bool
}

// CounterDelta compares one counter across two traces.
type CounterDelta struct {
	Name      string
	Old, New  int64
	Frac      float64
	Regressed bool
}

// Diff is the result of comparing two traces.
type Diff struct {
	Stages      []StageDelta
	Counters    []CounterDelta
	Regressions int
}

// DiffTraces compares per-span-name wall-time totals and counters of two
// traces. Stage rows come first in canonical pipeline order, then the
// remaining span names sorted; counters are sorted by name. A row
// regresses when the new value exceeds the old by more than the threshold
// fraction (wall times additionally require either total to clear the
// MinWall noise floor; comparisons against a Normalize()d trace therefore
// exercise only the counters, which are deterministic).
func DiffTraces(oldT, newT *Trace, opts DiffOptions) *Diff {
	d := &Diff{}
	thr := opts.threshold()
	minUS := opts.minWall().Microseconds()

	totals := func(t *Trace) map[string]spanTot {
		m := make(map[string]spanTot)
		for _, st := range t.SpanTotals() {
			m[st.Name] = spanTot{us: st.Total.Microseconds(), n: st.Count}
		}
		return m
	}
	ot, nt := totals(oldT), totals(newT)
	for _, name := range spanNameOrder(ot, nt) {
		o, n := ot[name], nt[name]
		sd := StageDelta{Name: name, OldUS: o.us, NewUS: n.us, OldN: o.n, NewN: n.n}
		if o.us > 0 {
			sd.Frac = float64(n.us-o.us) / float64(o.us)
			sd.Regressed = sd.Frac > thr && (o.us >= minUS || n.us >= minUS)
		}
		if sd.Regressed {
			d.Regressions++
		}
		d.Stages = append(d.Stages, sd)
	}

	names := make(map[string]bool)
	for k := range oldT.Metrics.Counters {
		names[k] = true
	}
	for k := range newT.Metrics.Counters {
		names[k] = true
	}
	sorted := make([]string, 0, len(names))
	for k := range names {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, name := range sorted {
		o, n := oldT.Metrics.Counters[name], newT.Metrics.Counters[name]
		cd := CounterDelta{Name: name, Old: o, New: n}
		if o > 0 {
			cd.Frac = float64(n-o) / float64(o)
			cd.Regressed = cd.Frac > thr
		}
		if cd.Regressed {
			d.Regressions++
		}
		d.Counters = append(d.Counters, cd)
	}
	return d
}

type spanTot struct {
	us int64
	n  int
}

// spanNameOrder returns the union of span names: canonical stages first
// in pipeline order, then the rest sorted.
func spanNameOrder(maps ...map[string]spanTot) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range maps {
		for k := range m {
			seen[k] = true
		}
	}
	for _, s := range Stages() {
		if seen[s] {
			out = append(out, s)
			delete(seen, s)
		}
	}
	rest := make([]string, 0, len(seen))
	for k := range seen {
		rest = append(rest, k)
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// FoldedLine is one stack of flame-graph folded output: semicolon-joined
// span path and the self time in microseconds.
type FoldedLine struct {
	Stack  string
	SelfUS int64
}

// Folded renders the span tree as folded stacks (the format flamegraph.pl
// and speedscope consume): one line per unique root-to-span path, valued
// by self time — the span's duration minus its children's. Paths appear
// in first-appearance (span) order; same-path spans aggregate.
func (t *Trace) Folded() []FoldedLine {
	child := make([]int64, len(t.Spans)) // summed child duration per span
	for _, s := range t.Spans {
		if s.Parent >= 0 && int(s.Parent) < len(t.Spans) {
			child[s.Parent] += s.DurUS
		}
	}
	paths := make([]string, len(t.Spans))
	idx := make(map[string]int)
	var out []FoldedLine
	for i, s := range t.Spans {
		p := s.Name
		if s.Parent >= 0 && int(s.Parent) < i {
			p = paths[s.Parent] + ";" + s.Name
		}
		paths[i] = p
		self := s.DurUS - child[i]
		if self < 0 {
			self = 0
		}
		j, ok := idx[p]
		if !ok {
			j = len(out)
			idx[p] = j
			out = append(out, FoldedLine{Stack: p})
		}
		out[j].SelfUS += self
	}
	return out
}
