package obs

import (
	"sync"
	"testing"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 0}, {0, 0}, {0.5, 0}, {1, 0},
		{1.5, 1}, {2, 1},
		{3, 2}, {4, 2},
		{5, 3},
		{1024, 10}, {1025, 11},
		{1 << 39, 39},
		{float64(uint64(1)<<39) + 1, NumHistogramBounds}, // overflow
		{1e18, NumHistogramBounds},
	}
	bounds := HistogramBounds()
	if len(bounds) != NumHistogramBounds || bounds[0] != 1 || bounds[10] != 1024 {
		t.Fatalf("bounds layout wrong: len=%d first=%v", len(bounds), bounds[0])
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestRecorderHistogramExport(t *testing.T) {
	r := NewRecorder()
	r.Observe("eval.cycles", 3)    // bucket 2
	r.Observe("eval.cycles", 4)    // bucket 2
	r.Observe("eval.cycles", 1000) // bucket 10
	tr := r.Export()
	h, ok := tr.Metrics.Histograms["eval.cycles"]
	if !ok {
		t.Fatal("histogram missing from export")
	}
	if h.Count != 3 || h.Sum != 1007 {
		t.Errorf("count=%d sum=%v, want 3/1007", h.Count, h.Sum)
	}
	if len(h.Buckets) != 11 || h.Buckets[2] != 2 || h.Buckets[10] != 1 {
		t.Errorf("buckets = %v, want trimmed length 11 with [2]=2 [10]=1", h.Buckets)
	}
}

func TestSpanEndFeedsWallTimeHistogram(t *testing.T) {
	r := NewRecorder()
	r.StartSpan(StageProfile).End()
	r.StartSpan(StageProfile).End()
	tr := r.Export()
	h, ok := tr.Metrics.Histograms["span_us."+StageProfile]
	if !ok {
		t.Fatal("span wall-time histogram missing")
	}
	if h.Count != 2 {
		t.Errorf("count = %d, want 2", h.Count)
	}
}

func TestAbsorbMergesHistograms(t *testing.T) {
	child := NewRecorder()
	child.Observe("eval.cycles", 3)
	child.Observe("eval.cycles", 5000)
	parent := NewRecorder()
	parent.Observe("eval.cycles", 3)
	parent.Absorb(child.Export())
	parent.Absorb(child.Export())
	h := parent.Export().Metrics.Histograms["eval.cycles"]
	if h.Count != 5 || h.Sum != 3+2*5003.0 {
		t.Errorf("merged count=%d sum=%v, want 5/%v", h.Count, h.Sum, 3+2*5003.0)
	}
	if h.Buckets[2] != 3 {
		t.Errorf("bucket[2] = %d, want 3", h.Buckets[2])
	}
}

func TestNormalizeZeroesTimeValuedHistogramsOnly(t *testing.T) {
	r := NewRecorder()
	r.StartSpan(StageProfile).End() // span_us.profile
	r.Observe("eval.cycles", 42)
	r.Observe("custom_us", 17)
	tr := r.Export().Normalize()
	if h := tr.Metrics.Histograms["span_us."+StageProfile]; h.Count != 0 || h.Sum != 0 || h.Buckets != nil {
		t.Errorf("span_us histogram not zeroed: %+v", h)
	}
	if h := tr.Metrics.Histograms["custom_us"]; h.Count != 0 {
		t.Errorf("_us-suffixed histogram not zeroed: %+v", h)
	}
	if h := tr.Metrics.Histograms["eval.cycles"]; h.Count != 1 || h.Sum != 42 {
		t.Errorf("count-valued histogram was zeroed: %+v", h)
	}
}

func TestRecorderCapsDropAndCount(t *testing.T) {
	r := NewRecorder()
	r.SetCaps(2, 3)
	var spans []Span
	for i := 0; i < 5; i++ {
		spans = append(spans, r.StartSpan(StageProfile))
	}
	for _, sp := range spans {
		sp.End() // ending dropped (zero) spans is harmless
	}
	for i := 0; i < 5; i++ {
		r.Emit(Event{Kind: PhaseDetected, Phase: i})
	}
	ds, de := r.Dropped()
	if ds != 3 || de != 2 {
		t.Fatalf("dropped = %d spans / %d events, want 3/2", ds, de)
	}
	tr := r.Export()
	if len(tr.Spans) != 2 || len(tr.Events) != 3 {
		t.Errorf("retained %d spans / %d events, want 2/3", len(tr.Spans), len(tr.Events))
	}
	if tr.Metrics.Counters[DroppedSpansCounter] != 3 || tr.Metrics.Counters[DroppedEventsCounter] != 2 {
		t.Errorf("dropped counters = %+v", tr.Metrics.Counters)
	}

	// Absorb honors the caps too, and the child's dropped counters merge.
	parent := NewRecorder()
	parent.SetCaps(1, 1)
	parent.Absorb(tr)
	pt := parent.Export()
	if len(pt.Spans) != 1 || len(pt.Events) != 1 {
		t.Errorf("absorbed %d spans / %d events past caps", len(pt.Spans), len(pt.Events))
	}
	if pt.Metrics.Counters[DroppedSpansCounter] != 3+1 || pt.Metrics.Counters[DroppedEventsCounter] != 2+2 {
		t.Errorf("merged dropped counters = %+v", pt.Metrics.Counters)
	}
}

func TestUncappedTraceOmitsDroppedCounters(t *testing.T) {
	r := NewRecorder()
	r.StartSpan("a").End()
	tr := r.Export()
	if _, ok := tr.Metrics.Counters[DroppedSpansCounter]; ok {
		t.Error("obs.dropped_spans present with no drops (would churn goldens)")
	}
}

// TestRecorderConcurrent hammers one recorder from many goroutines mixing
// StartSpan/End, Emit, Count, Gauge, Observe and Absorb — the shapes a
// parallel suite run and a live /metrics scrape produce concurrently.
// It exists to run under -race (scripts/verify.sh does).
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	donor := NewRecorder()
	donor.StartSpan("pipeline").End()
	donor.Count("c", 1)
	donor.Observe("eval.cycles", 9)
	donorTrace := donor.Export()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := r.StartSpan(StageProfile)
				r.Emit(Event{Kind: PhaseDetected, Phase: i})
				r.Count("profile.insts", 10)
				r.Gauge("eval.speedup", 1.01)
				r.Observe("eval.cycles", float64(i))
				if i%50 == 0 {
					r.Absorb(donorTrace)
				}
				if i%10 == 0 {
					r.ActiveSpan()
					r.ActiveStage()
					r.Export() // concurrent scrape
				}
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	tr := r.Export()
	if tr.Metrics.Counters["profile.insts"] != 8*200*10 {
		t.Errorf("counter = %d, want %d", tr.Metrics.Counters["profile.insts"], 8*200*10)
	}
	wantObs := uint64(8*200) + 4*8 // direct observations + absorbed donor histograms
	if h := tr.Metrics.Histograms["eval.cycles"]; h.Count != wantObs {
		t.Errorf("histogram count = %d, want %d", h.Count, wantObs)
	}
}
