package obs

import (
	"strings"
	"testing"
	"time"
)

// traceWith builds a minimal trace with one span per (name, durUS) pair
// and the given counters.
func traceWith(spans map[string]int64, counters map[string]int64) *Trace {
	t := &Trace{Schema: TraceSchema}
	id := int32(0)
	for _, name := range spanNameOrderFromMap(spans) {
		t.Spans = append(t.Spans, SpanRecord{ID: id, Parent: -1, Name: name, DurUS: spans[name]})
		id++
	}
	t.Metrics.Counters = counters
	return t
}

func spanNameOrderFromMap(m map[string]int64) []string {
	seen := make(map[string]spanTot, len(m))
	for k := range m {
		seen[k] = spanTot{}
	}
	return spanNameOrder(seen)
}

func TestDiffTracesFlagsWallTimeRegression(t *testing.T) {
	oldT := traceWith(map[string]int64{"profile": 100_000, "evaluate": 50_000}, nil)
	newT := traceWith(map[string]int64{"profile": 130_000, "evaluate": 51_000}, nil)
	d := DiffTraces(oldT, newT, DiffOptions{Threshold: 0.10})
	if d.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (profile +30%%)", d.Regressions)
	}
	for _, sd := range d.Stages {
		if sd.Name == "profile" && !sd.Regressed {
			t.Error("profile +30% not flagged")
		}
		if sd.Name == "evaluate" && sd.Regressed {
			t.Error("evaluate +2% wrongly flagged")
		}
	}
}

func TestDiffTracesNoiseFloor(t *testing.T) {
	oldT := traceWith(map[string]int64{"filter": 10}, nil)
	newT := traceWith(map[string]int64{"filter": 20}, nil) // +100% of nothing
	d := DiffTraces(oldT, newT, DiffOptions{Threshold: 0.10, MinWall: time.Millisecond})
	if d.Regressions != 0 {
		t.Fatalf("sub-noise-floor span flagged: %+v", d.Stages)
	}
}

func TestDiffTracesCountersAgainstNormalizedGolden(t *testing.T) {
	// A Normalize()d golden has zero wall times everywhere: the gate must
	// not fire on new>0 there, but must fire on a counter regression.
	golden := traceWith(map[string]int64{"profile": 0},
		map[string]int64{"eval.packed_cycles": 1000, "profile.phases": 4})
	fresh := traceWith(map[string]int64{"profile": 80_000},
		map[string]int64{"eval.packed_cycles": 1200, "profile.phases": 4})
	d := DiffTraces(golden, fresh, DiffOptions{Threshold: 0.10})
	if d.Regressions != 1 {
		t.Fatalf("regressions = %d, want exactly the cycle counter: %+v", d.Regressions, d.Counters)
	}
	for _, cd := range d.Counters {
		if cd.Name == "eval.packed_cycles" && !cd.Regressed {
			t.Error("packed_cycles +20% not flagged")
		}
	}
}

func TestDiffStageOrderCanonicalFirst(t *testing.T) {
	oldT := traceWith(map[string]int64{"zz": 1, "profile": 1, "suite": 1}, nil)
	d := DiffTraces(oldT, oldT, DiffOptions{})
	if len(d.Stages) != 3 || d.Stages[0].Name != "suite" || d.Stages[1].Name != "profile" || d.Stages[2].Name != "zz" {
		t.Errorf("stage order = %+v", d.Stages)
	}
}

func TestFoldedSelfTimes(t *testing.T) {
	tr := &Trace{Schema: TraceSchema}
	tr.Spans = []SpanRecord{
		{ID: 0, Parent: -1, Name: "pipeline", DurUS: 100},
		{ID: 1, Parent: 0, Name: "profile", DurUS: 60},
		{ID: 2, Parent: 0, Name: "evaluate", DurUS: 30},
		{ID: 3, Parent: 0, Name: "profile", DurUS: 5}, // same path aggregates
	}
	lines := tr.Folded()
	want := map[string]int64{
		"pipeline":          100 - 60 - 30 - 5,
		"pipeline;profile":  65,
		"pipeline;evaluate": 30,
	}
	if len(lines) != len(want) {
		t.Fatalf("lines = %+v", lines)
	}
	for _, fl := range lines {
		if want[fl.Stack] != fl.SelfUS {
			t.Errorf("%s = %d, want %d", fl.Stack, fl.SelfUS, want[fl.Stack])
		}
	}
}

func TestReadTraceValidatesSchema(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"schema":"bogus/v9"}`)); err == nil {
		t.Error("bad schema accepted")
	}
	tr, err := ReadTrace(strings.NewReader(`{"schema":"vptrace/v1","epoch_us":0}`))
	if err != nil || tr.Schema != TraceSchema {
		t.Errorf("valid trace rejected: %v", err)
	}
}
