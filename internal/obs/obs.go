// Package obs is the pipeline observability layer: stage-scoped spans
// (name, wall time, parent), a typed event stream (phase detected /
// filtered / skipped, region grown, package built / linked, pass applied)
// and a counter/gauge metrics registry, with JSON export.
//
// Two implementations of Observer exist: Nop, whose methods do nothing and
// allocate nothing (the disabled path every library entry point defaults
// to), and *Recorder, a mutex-guarded in-memory collector. Per-worker
// recorders from a parallel run merge deterministically via Absorb, so a
// suite trace is byte-identical (modulo wall times) at every -j setting.
package obs

import (
	"sync"
	"time"
)

// Canonical stage-span names, one per pipeline stage plus the two
// enclosing scopes. Instrumented code uses these so traces aggregate by
// stage regardless of which layer opened the span.
const (
	StageSuite    = "suite"
	StagePipeline = "pipeline"
	StageProfile  = "profile"
	StageFilter   = "filter"
	StageRegion   = "region"
	StagePackage  = "package"
	StageLink     = "link"
	StageOptimize = "optimize"
	StageEvaluate = "evaluate"
)

// Stages lists the canonical stage names in pipeline order (enclosing
// scopes first). CLI metric tables render rows in this order.
func Stages() []string {
	return []string{
		StageSuite, StagePipeline, StageProfile, StageFilter,
		StageRegion, StagePackage, StageLink, StageOptimize, StageEvaluate,
	}
}

// EventKind types the event stream.
type EventKind uint8

// Event kinds. PhaseFiltered is a raw detection the software filter merged
// into an existing phase; PhaseSkipped is a phase dropped later in the
// pipeline (Event.Name carries the reason). The Drift* kinds come from the
// internal/drift timeline layer: DriftWindow closes one analysis window
// (Name = program, N = records), DriftScored reports a fresh composite
// drift score (N = score in basis points, so 10000 = 1.0), and
// DriftBaseline marks a published version becoming the drift baseline
// (N = version).
const (
	PhaseDetected EventKind = iota
	PhaseFiltered
	PhaseSkipped
	RegionGrown
	PackageBuilt
	PackageLinked
	PassApplied
	DriftWindow
	DriftScored
	DriftBaseline
)

var kindNames = [...]string{
	PhaseDetected: "phase_detected",
	PhaseFiltered: "phase_filtered",
	PhaseSkipped:  "phase_skipped",
	RegionGrown:   "region_grown",
	PackageBuilt:  "package_built",
	PackageLinked: "package_linked",
	PassApplied:   "pass_applied",
	DriftWindow:   "drift_window",
	DriftScored:   "drift_scored",
	DriftBaseline: "drift_baseline",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one typed pipeline occurrence. Phase is the phase ID the event
// concerns, or -1 when it has none. Name carries the pass / package name
// or skip reason; N a kind-specific magnitude (blocks grown, instructions
// moved, …).
type Event struct {
	Kind  EventKind
	Phase int
	Name  string
	N     int64
}

// Observer receives spans, events and metrics from an instrumented
// pipeline run. Implementations must be safe for concurrent use; Nop is
// the zero-cost disabled implementation.
type Observer interface {
	// Enabled reports whether the observer records anything. Instrumented
	// code may use it to skip building expensive span names or event
	// payloads; plain Emit/Count calls need no guard.
	Enabled() bool
	// StartSpan opens a span parented under the most recently started
	// still-open span (or at the root). The caller must End it.
	StartSpan(name string) Span
	// Emit appends one event to the stream.
	Emit(e Event)
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge to v (last write wins).
	Gauge(name string, v float64)
	// Observe adds one sample to the named histogram (fixed log-spaced
	// buckets shared by every histogram; see HistogramBounds).
	Observe(name string, v float64)
	// Absorb merges a finished trace (typically from a per-worker
	// recorder) into this observer: its root spans are re-parented under
	// the currently open span, events append in order, counters and
	// histogram buckets add and gauges overwrite.
	Absorb(t *Trace)
}

// Nop is the disabled observer: every method is a no-op and the whole
// instrumentation path allocates nothing (asserted by TestNopZeroAlloc).
type Nop struct{}

func (Nop) Enabled() bool           { return false }
func (Nop) StartSpan(string) Span   { return Span{} }
func (Nop) Emit(Event)              {}
func (Nop) Count(string, int64)     {}
func (Nop) Gauge(string, float64)   {}
func (Nop) Observe(string, float64) {}
func (Nop) Absorb(*Trace)           {}

// Span is a handle to one open span. The zero Span (from Nop or an
// already-ended recorder) is valid and inert.
type Span struct {
	rec *Recorder
	id  int32
}

// End closes the span, fixing its duration. Ending the zero Span or
// ending twice is harmless.
func (s Span) End() {
	if s.rec != nil {
		s.rec.endSpan(s.id)
	}
}

// Child opens a span explicitly parented under s, bypassing the
// recorder's open-span stack.
func (s Span) Child(name string) Span {
	if s.rec == nil {
		return Span{}
	}
	return s.rec.startSpan(name, s.id)
}

// Default span/event caps. A long-lived -serve process records every
// span and event of every suite iteration; the caps bound its memory.
// They are generous — a full suite run at default scale stays well under
// 1% of either — and overflow is observable: drops are counted and
// surfaced as the obs.dropped_spans / obs.dropped_events counters in the
// trace and on /metrics.
const (
	DefaultMaxSpans  = 1 << 18
	DefaultMaxEvents = 1 << 19
)

// Recorder is the collecting Observer. All methods are safe for
// concurrent use; under heavy parallelism prefer one Recorder per worker
// merged with Absorb so event order stays deterministic.
type Recorder struct {
	mu       sync.Mutex
	epoch    time.Time
	spans    []spanRec
	stack    []int32 // open spans, innermost last
	events   []Event
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist

	// Caps: 0 means the package default, negative means unlimited.
	maxSpans      int
	maxEvents     int
	droppedSpans  int64
	droppedEvents int64
}

type spanRec struct {
	name   string
	parent int32
	start  time.Duration // since epoch
	dur    time.Duration
	open   bool
}

// NewRecorder returns an empty recorder whose span clock starts now.
func NewRecorder() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Enabled always reports true for a Recorder.
func (r *Recorder) Enabled() bool { return true }

// SetCaps bounds how many spans and events the recorder retains. Zero
// selects the package defaults (DefaultMaxSpans / DefaultMaxEvents),
// negative means unlimited. Records past a cap are dropped and counted;
// Export surfaces the counts as obs.dropped_spans / obs.dropped_events.
func (r *Recorder) SetCaps(maxSpans, maxEvents int) {
	r.mu.Lock()
	r.maxSpans = maxSpans
	r.maxEvents = maxEvents
	r.mu.Unlock()
}

// Dropped reports how many spans and events the caps have discarded.
func (r *Recorder) Dropped() (spans, events int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedSpans, r.droppedEvents
}

func capOrDefault(set, def int) int {
	if set == 0 {
		return def
	}
	return set
}

// spanCapReached reports whether one more span would exceed the cap.
// Caller holds mu.
func (r *Recorder) spanCapReached() bool {
	max := capOrDefault(r.maxSpans, DefaultMaxSpans)
	return max > 0 && len(r.spans) >= max
}

func (r *Recorder) eventCapReached() bool {
	max := capOrDefault(r.maxEvents, DefaultMaxEvents)
	return max > 0 && len(r.events) >= max
}

// StartSpan opens a span under the innermost open span.
func (r *Recorder) StartSpan(name string) Span {
	return r.startSpan(name, -2)
}

// startSpan opens a span; parent -2 means "top of the open stack".
func (r *Recorder) startSpan(name string, parent int32) Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spanCapReached() {
		r.droppedSpans++
		return Span{} // inert: End is harmless, children re-parent upward
	}
	if parent == -2 {
		parent = -1
		if n := len(r.stack); n > 0 {
			parent = r.stack[n-1]
		}
	}
	id := int32(len(r.spans))
	r.spans = append(r.spans, spanRec{
		name:   name,
		parent: parent,
		start:  time.Since(r.epoch),
		open:   true,
	})
	r.stack = append(r.stack, id)
	return Span{rec: r, id: id}
}

func (r *Recorder) endSpan(id int32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &r.spans[id]
	if !s.open {
		return
	}
	s.open = false
	s.dur = time.Since(r.epoch) - s.start
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == id {
			r.stack = append(r.stack[:i], r.stack[i+1:]...)
			break
		}
	}
	// Every finished span feeds the per-name wall-time distribution; the
	// span_us. prefix marks these as time-valued for Normalize.
	r.observeLocked("span_us."+s.name, float64(s.dur.Microseconds()))
}

// ActiveSpan returns the innermost open span's name.
func (r *Recorder) ActiveSpan() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.stack); n > 0 {
		return r.spans[r.stack[n-1]].name, true
	}
	return "", false
}

// ActiveStage returns the innermost open span whose name is one of the
// canonical stage names — the value the obs slog handler stamps records
// with.
func (r *Recorder) ActiveStage() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.stack) - 1; i >= 0; i-- {
		if name := r.spans[r.stack[i]].name; stageSet[name] {
			return name, true
		}
	}
	return "", false
}

var stageSet = func() map[string]bool {
	m := make(map[string]bool)
	for _, s := range Stages() {
		m[s] = true
	}
	return m
}()

// Emit appends one event.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	if r.eventCapReached() {
		r.droppedEvents++
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// Count adds delta to a counter.
func (r *Recorder) Count(name string, delta int64) {
	r.mu.Lock()
	if r.counters == nil {
		r.counters = make(map[string]int64)
	}
	r.counters[name] += delta
	r.mu.Unlock()
}

// Gauge sets a gauge.
func (r *Recorder) Gauge(name string, v float64) {
	r.mu.Lock()
	if r.gauges == nil {
		r.gauges = make(map[string]float64)
	}
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe adds one sample to the named histogram.
func (r *Recorder) Observe(name string, v float64) {
	r.mu.Lock()
	r.observeLocked(name, v)
	r.mu.Unlock()
}

func (r *Recorder) observeLocked(name string, v float64) {
	h := r.hists[name]
	if h == nil {
		if r.hists == nil {
			r.hists = make(map[string]*hist)
		}
		h = &hist{}
		r.hists[name] = h
	}
	h.observe(v)
}

// Absorb merges a finished trace into the recorder: spans keep their
// relative order and timing (re-anchored to this recorder's epoch via the
// trace's own epoch), root spans re-parent under the innermost open span,
// events append in order, counters and histogram buckets add, gauges
// overwrite. The recorder's caps apply to absorbed spans and events too;
// the trace's own obs.dropped_* counters (if any) merge like any counter,
// so drop totals survive the per-worker merge.
func (r *Recorder) Absorb(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	base := int32(len(r.spans))
	top := int32(-1)
	if n := len(r.stack); n > 0 {
		top = r.stack[n-1]
	}
	offset := time.Duration(t.EpochUS)*time.Microsecond - time.Duration(r.epoch.UnixMicro())*time.Microsecond
	absorbed := int32(0)
	for _, sr := range t.Spans {
		if r.spanCapReached() {
			r.droppedSpans++
			continue
		}
		parent := top
		if sr.Parent >= 0 && sr.Parent < absorbed {
			parent = sr.Parent + base
		}
		r.spans = append(r.spans, spanRec{
			name:   sr.Name,
			parent: parent,
			start:  time.Duration(sr.StartUS)*time.Microsecond + offset,
			dur:    time.Duration(sr.DurUS) * time.Microsecond,
		})
		absorbed++
	}
	for _, er := range t.Events {
		if r.eventCapReached() {
			r.droppedEvents++
			continue
		}
		r.events = append(r.events, Event{Kind: er.eventKind(), Phase: er.Phase, Name: er.Name, N: er.N})
	}
	if len(t.Metrics.Counters) > 0 && r.counters == nil {
		r.counters = make(map[string]int64)
	}
	for k, v := range t.Metrics.Counters {
		r.counters[k] += v
	}
	if len(t.Metrics.Gauges) > 0 && r.gauges == nil {
		r.gauges = make(map[string]float64)
	}
	for k, v := range t.Metrics.Gauges {
		r.gauges[k] = v
	}
	for k, hr := range t.Metrics.Histograms {
		h := r.hists[k]
		if h == nil {
			if r.hists == nil {
				r.hists = make(map[string]*hist)
			}
			h = &hist{}
			r.hists[k] = h
		}
		h.merge(hr)
	}
}
