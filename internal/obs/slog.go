package obs

import (
	"context"
	"log/slog"
)

// SlogHandler is a log/slog handler middleware that stamps every record
// with the recorder's currently active span: a "stage" attribute carrying
// the innermost open canonical stage span, and a "span" attribute with
// the innermost open span of any name (input:…, variant:…). Records
// logged outside any span pass through unstamped. With a nil recorder the
// handler is a transparent pass-through, so CLIs can wire it
// unconditionally.
//
// Under a parallel suite run the shared recorder only has the suite span
// open (workers record into private recorders), so stamped stages are
// coarse there; single-pipeline runs (vpack) stamp the exact stage.
type SlogHandler struct {
	inner slog.Handler
	rec   *Recorder
}

// NewSlogHandler wraps inner, stamping records from rec's open spans.
func NewSlogHandler(inner slog.Handler, rec *Recorder) *SlogHandler {
	return &SlogHandler{inner: inner, rec: rec}
}

func (h *SlogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *SlogHandler) Handle(ctx context.Context, r slog.Record) error {
	if h.rec != nil {
		if span, ok := h.rec.ActiveSpan(); ok {
			r.AddAttrs(slog.String("span", span))
		}
		if stage, ok := h.rec.ActiveStage(); ok {
			r.AddAttrs(slog.String("stage", stage))
		}
	}
	return h.inner.Handle(ctx, r)
}

func (h *SlogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &SlogHandler{inner: h.inner.WithAttrs(attrs), rec: h.rec}
}

func (h *SlogHandler) WithGroup(name string) slog.Handler {
	return &SlogHandler{inner: h.inner.WithGroup(name), rec: h.rec}
}
