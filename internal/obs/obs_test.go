package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// instrument performs one representative slice of pipeline
// instrumentation through the Observer interface: the same shape of
// calls core.RunObserved issues per stage.
func instrument(o Observer) {
	sp := o.StartSpan(StagePipeline)
	ps := o.StartSpan(StageProfile)
	o.Emit(Event{Kind: PhaseDetected, Phase: 0, N: 1})
	o.Count("profile.insts", 12345)
	ps.End()
	rs := o.StartSpan(StageRegion)
	o.Emit(Event{Kind: RegionGrown, Phase: 0, N: 2})
	o.Gauge("eval.speedup", 1.05)
	o.Observe("region.hot_blocks", 7)
	rs.End()
	sp.End()
}

func TestNopZeroAlloc(t *testing.T) {
	var o Observer = Nop{}
	allocs := testing.AllocsPerRun(100, func() { instrument(o) })
	if allocs != 0 {
		t.Fatalf("disabled-observer instrumentation allocates %.1f times per run, want 0", allocs)
	}
}

func TestRecorderSpansNestAndParent(t *testing.T) {
	r := NewRecorder()
	root := r.StartSpan("pipeline")
	inner := r.StartSpan("profile") // implicit child of pipeline
	inner.End()
	child := root.Child("region") // explicit child
	child.End()
	root.End()

	tr := r.Export()
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tr.Spans))
	}
	if tr.Spans[0].Parent != -1 {
		t.Errorf("root parent = %d, want -1", tr.Spans[0].Parent)
	}
	for i := 1; i < 3; i++ {
		if tr.Spans[i].Parent != tr.Spans[0].ID {
			t.Errorf("span %q parent = %d, want %d", tr.Spans[i].Name, tr.Spans[i].Parent, tr.Spans[0].ID)
		}
	}
	if tr.Spans[0].DurUS < tr.Spans[1].DurUS {
		t.Errorf("outer span shorter than inner: %d < %d", tr.Spans[0].DurUS, tr.Spans[1].DurUS)
	}
}

func TestRecorderDoubleEndHarmless(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan("a")
	sp.End()
	sp.End()
	Span{}.End() // zero Span
	if n := len(r.Export().Spans); n != 1 {
		t.Fatalf("spans = %d, want 1", n)
	}
}

func TestRecorderMetrics(t *testing.T) {
	r := NewRecorder()
	r.Count("x", 2)
	r.Count("x", 3)
	r.Gauge("g", 1.5)
	r.Gauge("g", 2.5)
	tr := r.Export()
	if tr.Metrics.Counters["x"] != 5 {
		t.Errorf("counter x = %d, want 5", tr.Metrics.Counters["x"])
	}
	if tr.Metrics.Gauges["g"] != 2.5 {
		t.Errorf("gauge g = %v, want 2.5 (last write wins)", tr.Metrics.Gauges["g"])
	}
}

func TestAbsorbMergesDeterministically(t *testing.T) {
	child := NewRecorder()
	cs := child.StartSpan("pipeline")
	child.Emit(Event{Kind: PackageBuilt, Phase: 1, Name: "pkg", N: 7})
	child.Count("pack.packages", 1)
	cs.End()
	ct := child.Export()

	parent := NewRecorder()
	suite := parent.StartSpan(StageSuite)
	parent.Count("pack.packages", 2)
	parent.Absorb(ct)
	suite.End()

	tr := parent.Export()
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	if tr.Spans[1].Name != "pipeline" || tr.Spans[1].Parent != tr.Spans[0].ID {
		t.Errorf("absorbed span %q parent %d, want pipeline under suite (%d)",
			tr.Spans[1].Name, tr.Spans[1].Parent, tr.Spans[0].ID)
	}
	if len(tr.Events) != 1 || tr.Events[0].Kind != "package_built" || tr.Events[0].N != 7 {
		t.Errorf("absorbed events wrong: %+v", tr.Events)
	}
	if tr.Metrics.Counters["pack.packages"] != 3 {
		t.Errorf("merged counter = %d, want 3", tr.Metrics.Counters["pack.packages"])
	}
	parent.Absorb(nil) // harmless
}

func TestTraceJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan("pipeline")
	r.Emit(Event{Kind: PhaseSkipped, Phase: 3, Name: "reason"})
	r.Count("c", 1)
	sp.End()

	var buf bytes.Buffer
	if err := r.Export().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back.Schema != TraceSchema {
		t.Errorf("schema = %q, want %q", back.Schema, TraceSchema)
	}
	if len(back.Spans) != 1 || len(back.Events) != 1 {
		t.Errorf("round trip lost records: %d spans, %d events", len(back.Spans), len(back.Events))
	}
	if back.Events[0].Kind != PhaseSkipped.String() || back.Events[0].Name != "reason" {
		t.Errorf("event round trip: %+v", back.Events[0])
	}
}

func TestNormalizeZeroesTimes(t *testing.T) {
	r := NewRecorder()
	r.StartSpan("a").End()
	tr := r.Export().Normalize()
	if tr.EpochUS != 0 || tr.Spans[0].StartUS != 0 || tr.Spans[0].DurUS != 0 {
		t.Errorf("Normalize left wall-clock fields: %+v", tr)
	}
}

func TestSpanTotals(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 3; i++ {
		sp := r.StartSpan("region")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	totals := r.Export().SpanTotals()
	if len(totals) != 1 || totals[0].Name != "region" || totals[0].Count != 3 {
		t.Fatalf("totals = %+v", totals)
	}
	if totals[0].Total < 3*time.Millisecond {
		t.Errorf("total %v, want >= 3ms", totals[0].Total)
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{PhaseDetected, PhaseFiltered, PhaseSkipped, RegionGrown, PackageBuilt, PackageLinked, PassApplied}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Errorf("kind %d renders %q", k, s)
		}
		seen[s] = true
		if kindFromString(s) != k {
			t.Errorf("kindFromString(%q) = %v, want %v", s, kindFromString(s), k)
		}
	}
}

// BenchmarkNopObserver measures (and via ReportAllocs documents) the
// disabled-observer instrumentation path; scripts/bench.sh records its
// delta next to BENCH_pipeline.json.
func BenchmarkNopObserver(b *testing.B) {
	var o Observer = Nop{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		instrument(o)
	}
}

// BenchmarkRecorderObserver is the enabled-path cost for comparison. A
// fresh recorder per iteration mirrors real usage (one per run) and keeps
// the benchmark's memory bounded.
func BenchmarkRecorderObserver(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		instrument(NewRecorder())
	}
}
