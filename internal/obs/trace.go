package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// TraceSchema versions the JSON trace export.
const TraceSchema = "vptrace/v1"

// Trace is the exported, JSON-serializable form of a Recorder: a span
// tree, the event stream and the metrics registry.
type Trace struct {
	Schema string `json:"schema"`
	// EpochUS is the recorder's span-clock origin as unix microseconds;
	// span start offsets are relative to it.
	EpochUS int64         `json:"epoch_us"`
	Spans   []SpanRecord  `json:"spans"`
	Events  []EventRecord `json:"events"`
	Metrics Metrics       `json:"metrics"`
}

// SpanRecord is one finished (or still-open) span. Parent is the index of
// the enclosing span in Trace.Spans, or -1 at the root.
type SpanRecord struct {
	ID      int32  `json:"id"`
	Parent  int32  `json:"parent"`
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// EventRecord is one event with its kind rendered as a string.
type EventRecord struct {
	Kind  string `json:"kind"`
	Phase int    `json:"phase"`
	Name  string `json:"name,omitempty"`
	N     int64  `json:"n,omitempty"`
}

// Metrics is the exported counter/gauge/histogram registry.
type Metrics struct {
	Counters   map[string]int64           `json:"counters,omitempty"`
	Gauges     map[string]float64         `json:"gauges,omitempty"`
	Histograms map[string]HistogramRecord `json:"histograms,omitempty"`
}

// HistogramRecord is one exported histogram: observation count, value
// sum, and per-bucket counts over the shared log-spaced layout (bucket i
// counts v <= 2^i; a trailing overflow slot catches the rest). Buckets is
// trimmed at its last non-zero slot.
type HistogramRecord struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// timeValuedMetric reports whether a histogram holds wall-clock values
// (microseconds) by naming convention: the automatic per-span histograms
// carry the span_us. prefix, and any explicitly recorded time histogram
// must use the _us suffix. Normalize zeroes exactly these.
func timeValuedMetric(name string) bool {
	return strings.HasPrefix(name, "span_us.") || strings.HasSuffix(name, "_us")
}

func kindFromString(s string) EventKind {
	for k, name := range kindNames {
		if name == s {
			return EventKind(k)
		}
	}
	return PhaseDetected
}

func (er EventRecord) eventKind() EventKind { return kindFromString(er.Kind) }

// Export snapshots the recorder as a Trace. Open spans export with the
// duration they have accumulated so far.
func (r *Recorder) Export() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &Trace{Schema: TraceSchema, EpochUS: r.epoch.UnixMicro()}
	now := time.Since(r.epoch)
	for i, s := range r.spans {
		dur := s.dur
		if s.open {
			dur = now - s.start
		}
		t.Spans = append(t.Spans, SpanRecord{
			ID:      int32(i),
			Parent:  s.parent,
			Name:    s.name,
			StartUS: s.start.Microseconds(),
			DurUS:   dur.Microseconds(),
		})
	}
	for _, e := range r.events {
		t.Events = append(t.Events, EventRecord{
			Kind: e.Kind.String(), Phase: e.Phase, Name: e.Name, N: e.N,
		})
	}
	if len(r.counters) > 0 {
		t.Metrics.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			t.Metrics.Counters[k] = v
		}
	}
	if len(r.gauges) > 0 {
		t.Metrics.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			t.Metrics.Gauges[k] = v
		}
	}
	if len(r.hists) > 0 {
		t.Metrics.Histograms = make(map[string]HistogramRecord, len(r.hists))
		for k, h := range r.hists {
			t.Metrics.Histograms[k] = h.record()
		}
	}
	// Drops are surfaced as counters only when they happened, so traces
	// from an uncapped run keep their golden-stable shape.
	if r.droppedSpans > 0 || r.droppedEvents > 0 {
		if t.Metrics.Counters == nil {
			t.Metrics.Counters = make(map[string]int64, 2)
		}
		if r.droppedSpans > 0 {
			t.Metrics.Counters[DroppedSpansCounter] += r.droppedSpans
		}
		if r.droppedEvents > 0 {
			t.Metrics.Counters[DroppedEventsCounter] += r.droppedEvents
		}
	}
	return t
}

// Counter names under which Export surfaces records discarded by the
// recorder's span/event caps.
const (
	DroppedSpansCounter  = "obs.dropped_spans"
	DroppedEventsCounter = "obs.dropped_events"
)

// Canonical counter names for the two-tier timed execution engine:
// basic-block cache traffic and superblock (tier 1) trace activity.
// Evaluation stages emit these; telemetry always exposes them.
const (
	BlockCacheHitsCounter      = "blockcache.hits"
	BlockCacheMissesCounter    = "blockcache.misses"
	BlockCacheEvictionsCounter = "blockcache.evictions"
	SuperblockPromotedCounter  = "superblock.promoted"
	SuperblockDemotedCounter   = "superblock.demoted"
	SuperblockSideExitsCounter = "superblock.side_exits"
	SuperblockChainedCounter   = "superblock.chained_insts"
)

// EngineCounters lists the execution-engine counter names in render
// order, for layers that expose or print the whole group.
func EngineCounters() []string {
	return []string{
		BlockCacheHitsCounter, BlockCacheMissesCounter, BlockCacheEvictionsCounter,
		SuperblockPromotedCounter, SuperblockDemotedCounter,
		SuperblockSideExitsCounter, SuperblockChainedCounter,
	}
}

// Canonical metric names for the persistent artifact store
// (internal/cas): hit/miss traffic against the (kind, key) index, the
// on-disk footprint, and GC reclamation. The suite additionally splits
// traffic by artifact class (store.profile_* / store.package_*) for its
// own assertions; the unsuffixed pair aggregates.
const (
	StoreHitsCounter          = "store.hits"
	StoreMissesCounter        = "store.misses"
	StoreGCReclaimedCounter   = "store.gc_reclaimed"
	StoreProfileHitsCounter   = "store.profile_hits"
	StoreProfileMissesCounter = "store.profile_misses"
	StorePackageHitsCounter   = "store.package_hits"
	StorePackageMissesCounter = "store.package_misses"
	StoreBytesGauge           = "store.bytes"
	StoreSegmentsGauge        = "store.segments"
)

// StoreCounters lists the store counter names the serving tier always
// exposes (zero without a -store), so cache hit rates can be dashboarded
// without series gaps.
func StoreCounters() []string {
	return []string{StoreHitsCounter, StoreMissesCounter, StoreGCReclaimedCounter}
}

// StoreGauges lists the store gauge names the serving tier always
// exposes.
func StoreGauges() []string {
	return []string{StoreBytesGauge, StoreSegmentsGauge}
}

// Canonical metric names for the translation-validation engine
// (internal/equiv, gated by the -equiv config knob): packages checked,
// paths proved symbolically, differential trials run past the path
// budget, and refutations.
const (
	EquivPackagesCounter    = "equiv.packages"
	EquivPathsProvedCounter = "equiv.paths_proved"
	EquivPathsFuzzedCounter = "equiv.paths_fuzzed"
	EquivViolationsCounter  = "equiv.violations"
)

// EquivCounters lists the translation-validation counter names the
// serving tier always exposes (zero without -equiv), so proof coverage
// and refutation rates can be dashboarded without series gaps.
func EquivCounters() []string {
	return []string{
		EquivPackagesCounter, EquivPathsProvedCounter,
		EquivPathsFuzzedCounter, EquivViolationsCounter,
	}
}

// Canonical metric names for the continuous-optimization daemon
// (cmd/vpackd): stream and repack counters, the bounded-queue depth
// gauge, and the repack wall-time histogram. Per-program stream counters
// derive from DaemonRecordsCounter by suffixing ".<program>".
const (
	DaemonRecordsCounter       = "vpackd.records"
	DaemonRepacksCounter       = "vpackd.repacks"
	DaemonQueueRejectedCounter = "vpackd.queue_rejected"
	DaemonVersionsCounter      = "vpackd.versions"
	// DaemonRecoveredCounter counts versions reloaded from the artifact
	// store at boot — served immediately without a repack.
	DaemonRecoveredCounter = "vpackd.versions_recovered"
	// DaemonEquivRejectedCounter counts repacks whose publication the
	// daemon refused because translation validation refuted a package.
	DaemonEquivRejectedCounter = "vpackd.equiv_rejected"
	DaemonQueueDepthGauge      = "vpackd.queue_depth"
	DaemonRepackLatencyHist    = "vpackd.repack_latency_us"
	// DaemonQueueWaitHist measures enqueue-to-worker-pickup latency: how
	// long a shard sat in the bounded repack queue before a worker drained
	// it. Together with DaemonRepackLatencyHist (pickup to publish) it
	// decomposes end-to-end repack latency into queueing and service time.
	DaemonQueueWaitHist = "vpackd.queue_wait_us"
)

// DaemonCounters lists the daemon counter names the serving tier always
// exposes (zero when idle), so queue-rejection and repack rates can be
// alerted on without series gaps.
func DaemonCounters() []string {
	return []string{
		DaemonRecordsCounter, DaemonRepacksCounter,
		DaemonQueueRejectedCounter, DaemonVersionsCounter,
		DaemonRecoveredCounter, DaemonEquivRejectedCounter,
	}
}

// DaemonHistograms lists the daemon histogram names the serving tier
// always exposes (empty when idle), so queue-wait and repack-latency
// quantiles render from the first scrape on.
func DaemonHistograms() []string {
	return []string{DaemonQueueWaitHist, DaemonRepackLatencyHist}
}

// Canonical metric names for the drift-observability layer
// (internal/drift): per-program windowed timelines of incoming profile
// shards scored against the phase snapshot backing the latest published
// PackageSet. Per-program series derive by suffixing ".<program>"; the
// unsuffixed gauges aggregate (max) across programs.
const (
	// DriftScoreGauge is the composite drift score in [0,1]: 0 means the
	// recent windows look exactly like the baseline profile, 1 means they
	// share nothing with it.
	DriftScoreGauge = "drift.score"
	// DriftPeakGauge is the maximum composite score ever observed (never
	// reset, not even by a new baseline), so a transient phase shift stays
	// visible to later scrapes.
	DriftPeakGauge = "drift.peak"
	// DriftDivergenceGauge is the weighted hot-set divergence component:
	// total-variation distance between the recent windows' and the
	// baseline's normalized branch-weight distributions.
	DriftDivergenceGauge = "drift.hot_set_divergence"
	// DriftBiasFlipsGauge counts branches common to the recent windows and
	// the baseline whose bias (taken/not-taken under the phasedb
	// thresholds) flipped direction.
	DriftBiasFlipsGauge = "drift.bias_flips"
	// DriftCrossingsGauge is the fraction of recent windows whose branch
	// set fails the paper's 30% filter rule against every baseline phase —
	// windows that would have founded a new phase.
	DriftCrossingsGauge = "drift.filter_crossings"
	// DriftBaselineVersionGauge is the published PackageSet version the
	// current baseline snapshot came from (0 = no baseline yet).
	DriftBaselineVersionGauge = "drift.baseline_version"
	// DriftWindowsCounter counts closed analysis windows;
	// DriftSamplesCounter counts hot-spot records observed.
	DriftWindowsCounter = "drift.windows"
	DriftSamplesCounter = "drift.samples"
	// DriftScoreHist distributes the per-window composite score as a
	// percentage (score x 100), so the shared power-of-two buckets resolve
	// it: <=1%, <=2%, <=4%, ... <=64%, overflow.
	DriftScoreHist = "drift.score_pct"
)

// DriftGauges lists the drift gauge names the serving tier always exposes
// (zero before the first window closes), so dashboards can plot drift from
// the first scrape without series gaps.
func DriftGauges() []string {
	return []string{
		DriftScoreGauge, DriftPeakGauge, DriftDivergenceGauge,
		DriftBiasFlipsGauge, DriftCrossingsGauge, DriftBaselineVersionGauge,
	}
}

// DriftCounters lists the drift counter names the serving tier always
// exposes.
func DriftCounters() []string {
	return []string{DriftWindowsCounter, DriftSamplesCounter}
}

// DriftHistograms lists the drift histogram names the serving tier always
// exposes.
func DriftHistograms() []string {
	return []string{DriftScoreHist}
}

// ReadTrace decodes one JSON trace and validates its schema marker.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("obs: decode trace: %w", err)
	}
	if t.Schema != TraceSchema {
		return nil, fmt.Errorf("obs: trace schema %q, want %q", t.Schema, TraceSchema)
	}
	return &t, nil
}

// WriteJSON writes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// Normalize zeroes every wall-clock field (epoch, span starts and
// durations, and the contents of time-valued histograms — span_us.* and
// *_us names) in place and returns t, making two traces of the same run
// byte-comparable; the golden-file schema test relies on it. Count-valued
// histograms (region sizes, link counts, simulated cycles) are
// deterministic and stay intact.
func (t *Trace) Normalize() *Trace {
	t.EpochUS = 0
	for i := range t.Spans {
		t.Spans[i].StartUS = 0
		t.Spans[i].DurUS = 0
	}
	for name := range t.Metrics.Histograms {
		if timeValuedMetric(name) {
			t.Metrics.Histograms[name] = HistogramRecord{}
		}
	}
	return t
}

// SpanTotal aggregates every span sharing one name.
type SpanTotal struct {
	Name  string
	Count int
	Total time.Duration
}

// SpanTotals aggregates span durations by name, in first-appearance
// order. Nested same-named spans each contribute their full duration.
func (t *Trace) SpanTotals() []SpanTotal {
	idx := make(map[string]int)
	var out []SpanTotal
	for _, s := range t.Spans {
		i, ok := idx[s.Name]
		if !ok {
			i = len(out)
			idx[s.Name] = i
			out = append(out, SpanTotal{Name: s.Name})
		}
		out[i].Count++
		out[i].Total += time.Duration(s.DurUS) * time.Microsecond
	}
	return out
}
