// Package hsd models the Hot Spot Detector of Merten et al. (ISCA'99), the
// transparent hardware profiler the paper uses for phase detection: a
// set-associative Branch Behavior Buffer (BBB) that tabulates retiring
// conditional branches, and a saturating Hot Spot Detection Counter (HDC)
// that fires when the branches tracked as candidates account for a
// sufficient share of the dynamic branch stream.
//
// The model reproduces the artifacts the Vacuum Packing algorithms exist to
// tolerate: entries lost to set contention, branches that begin profiling
// late, counter saturation that freezes a branch's taken fraction, and
// periodic refresh/clear sweeps.
package hsd

import "fmt"

// Config sizes the detector. DefaultConfig mirrors Table 2 of the paper.
type Config struct {
	Sets        int // number of BBB sets
	Ways        int // BBB associativity
	CounterBits uint
	// CandidateThreshold is the executed count at which a tracked branch
	// becomes a candidate branch.
	CandidateThreshold uint32
	// RefreshInterval is the branch count between refresh sweeps that
	// evict entries which have not reached candidate status.
	RefreshInterval uint64
	// ClearInterval is the branch count without a detection after which
	// the whole BBB and the HDC are reset.
	ClearInterval uint64
	HDCBits       uint
	// HDCDec is subtracted from the HDC when a candidate branch retires;
	// HDCInc is added when a non-candidate branch retires. Detection fires
	// when the HDC reaches zero, i.e. when candidate branches account for
	// more than HDCInc/(HDCInc+HDCDec) of the stream.
	HDCDec uint32
	HDCInc uint32
}

// DefaultConfig returns the paper's detector parameters (Table 2).
func DefaultConfig() Config {
	return Config{
		Sets:               512,
		Ways:               4,
		CounterBits:        9,
		CandidateThreshold: 16,
		RefreshInterval:    8192,
		ClearInterval:      65536,
		HDCBits:            13,
		HDCDec:             2,
		HDCInc:             1,
	}
}

// ScaledConfig returns a detector scaled to this reproduction's synthetic
// workloads. The paper profiles phases of 10^8-10^9 branches with a
// 2048-entry BBB against hot working sets of thousands of static branches;
// our workloads run phases of ~10^4-10^5 branches with working sets of
// ~10^2. ScaledConfig keeps the BBB-capacity : working-set ratio and the
// detection-window : phase-length ratio of the paper's setup, so the
// artifacts the Vacuum Packing algorithms tolerate — set contention,
// candidacy races, late-starting branches — actually occur. Counter widths
// and the candidate threshold are unchanged.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	cfg.Sets = 64 // 256 entries vs the paper's 2048
	cfg.RefreshInterval = 4096
	cfg.ClearInterval = 32768
	cfg.HDCBits = 12 // detection after ~2k candidate-dominated branches
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sets <= 0 || c.Ways <= 0:
		return fmt.Errorf("hsd: sets/ways must be positive: %d/%d", c.Sets, c.Ways)
	case c.CounterBits == 0 || c.CounterBits > 31:
		return fmt.Errorf("hsd: counter bits %d out of range", c.CounterBits)
	case c.HDCBits == 0 || c.HDCBits > 31:
		return fmt.Errorf("hsd: HDC bits %d out of range", c.HDCBits)
	case c.HDCDec == 0 && c.HDCInc == 0:
		return fmt.Errorf("hsd: HDC increments are both zero")
	case c.RefreshInterval == 0 || c.ClearInterval == 0:
		return fmt.Errorf("hsd: refresh/clear intervals must be positive")
	}
	return nil
}

// BranchRecord is one BBB entry snapshot: the static branch PC with its
// executed and taken counts accumulated during the detection window.
type BranchRecord struct {
	PC    int64
	Exec  uint32
	Taken uint32
}

// TakenFraction returns taken/exec.
func (r BranchRecord) TakenFraction() float64 {
	if r.Exec == 0 {
		return 0
	}
	return float64(r.Taken) / float64(r.Exec)
}

// HotSpot is a detected hot spot: the candidate branches in the BBB at
// detection time.
type HotSpot struct {
	// Seq numbers detections in order.
	Seq int
	// DetectedAtBranch is the retired conditional-branch count at detection.
	DetectedAtBranch uint64
	// DetectedAtInst is filled by the caller if instruction counts are
	// tracked alongside; zero otherwise.
	DetectedAtInst uint64
	Branches       []BranchRecord
}

type entry struct {
	valid     bool
	candidate bool
	saturated bool
	pc        int64
	exec      uint32
	taken     uint32
	lastUse   uint64
}

// Stats counts detector-internal events.
type Stats struct {
	BranchesSeen   uint64
	Detections     uint64
	Refreshes      uint64
	Clears         uint64
	ContentionDrop uint64 // retired branches untrackable: set full of candidates
	Saturations    uint64 // entries whose exec counter saturated
}

// Detector is the hardware model. Feed it the retired conditional-branch
// stream via Branch; it invokes OnDetect synchronously at each detection.
type Detector struct {
	cfg        Config
	counterMax uint32
	hdcMax     uint32

	table []entry // Sets*Ways
	hdc   uint32

	branchCount  uint64
	instCount    uint64
	sinceRefresh uint64
	sinceClear   uint64
	seq          int

	// OnDetect is called at every hot-spot detection, before the BBB is
	// cleared for the next window. The slice is freshly allocated per call.
	OnDetect func(HotSpot)

	Stats Stats
}

// New builds a detector; it panics on invalid configuration (a programming
// error, not an input error).
func New(cfg Config, onDetect func(HotSpot)) *Detector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &Detector{
		cfg:        cfg,
		counterMax: 1<<cfg.CounterBits - 1,
		hdcMax:     1<<cfg.HDCBits - 1,
		table:      make([]entry, cfg.Sets*cfg.Ways),
		OnDetect:   onDetect,
	}
	d.hdc = d.hdcMax
	return d
}

// SetInstCount lets the driver report the current retired-instruction count
// so detections can be timestamped in instructions as well as branches.
func (d *Detector) SetInstCount(n uint64) { d.instCount = n }

// Branch feeds one retired conditional branch into the detector.
func (d *Detector) Branch(pc int64, taken bool) {
	d.branchCount++
	d.Stats.BranchesSeen++
	d.sinceRefresh++
	d.sinceClear++

	set := int(uint64(pc) % uint64(d.cfg.Sets))
	base := set * d.cfg.Ways
	ways := d.table[base : base+d.cfg.Ways]

	var e, invalid, lruNonCand *entry
	for i := range ways {
		w := &ways[i]
		if w.valid && w.pc == pc {
			e = w
			break
		}
		if !w.valid {
			if invalid == nil {
				invalid = w
			}
			continue
		}
		if !w.candidate && (lruNonCand == nil || w.lastUse < lruNonCand.lastUse) {
			lruNonCand = w
		}
	}
	if e == nil {
		victim := invalid
		if victim == nil {
			victim = lruNonCand
		}
		if victim == nil {
			// Every way holds a candidate: the new branch cannot be
			// tracked. This is the contention artifact §3.1 describes.
			d.Stats.ContentionDrop++
			d.updateHDC(false)
			d.timers()
			return
		}
		*victim = entry{valid: true, pc: pc}
		e = victim
	}
	e.lastUse = d.branchCount
	if !e.saturated {
		e.exec++
		if taken {
			e.taken++
		}
		if e.exec >= d.counterMax {
			// Counters freeze at saturation so the taken fraction is
			// preserved (§3.1).
			e.saturated = true
			d.Stats.Saturations++
		}
	}
	if !e.candidate && e.exec >= d.cfg.CandidateThreshold {
		e.candidate = true
	}
	d.updateHDC(e.candidate)
	d.timers()
}

func (d *Detector) updateHDC(candidate bool) {
	if candidate {
		if d.hdc <= d.cfg.HDCDec {
			d.hdc = 0
			d.detect()
			return
		}
		d.hdc -= d.cfg.HDCDec
		return
	}
	if d.hdc+d.cfg.HDCInc >= d.hdcMax {
		d.hdc = d.hdcMax
	} else {
		d.hdc += d.cfg.HDCInc
	}
}

func (d *Detector) timers() {
	if d.sinceRefresh >= d.cfg.RefreshInterval {
		d.refresh()
	}
	if d.sinceClear >= d.cfg.ClearInterval {
		d.clear()
		d.Stats.Clears++
	}
}

// refresh evicts entries that have not reached candidate status, freeing
// table space for the branches of the current phase.
func (d *Detector) refresh() {
	d.Stats.Refreshes++
	d.sinceRefresh = 0
	for i := range d.table {
		if d.table[i].valid && !d.table[i].candidate {
			d.table[i] = entry{}
		}
	}
}

// clear resets the whole detector state (but not statistics or sequence
// numbers).
func (d *Detector) clear() {
	for i := range d.table {
		d.table[i] = entry{}
	}
	d.hdc = d.hdcMax
	d.sinceRefresh = 0
	d.sinceClear = 0
}

// detect snapshots the candidate branches, reports the hot spot, and
// resets the detector for the next window.
func (d *Detector) detect() {
	d.Stats.Detections++
	hs := HotSpot{
		Seq:              d.seq,
		DetectedAtBranch: d.branchCount,
		DetectedAtInst:   d.instCount,
	}
	d.seq++
	for i := range d.table {
		e := &d.table[i]
		if e.valid && e.candidate {
			hs.Branches = append(hs.Branches, BranchRecord{PC: e.pc, Exec: e.exec, Taken: e.taken})
		}
	}
	if d.OnDetect != nil {
		d.OnDetect(hs)
	}
	d.clear()
}

// HDC exposes the current counter value (for tests and introspection).
func (d *Detector) HDC() uint32 { return d.hdc }

// TrackedBranches returns how many valid entries the BBB currently holds.
func (d *Detector) TrackedBranches() int {
	n := 0
	for i := range d.table {
		if d.table[i].valid {
			n++
		}
	}
	return n
}
