package hsd

import "testing"

func spotOf(pcs ...int64) HotSpot {
	hs := HotSpot{}
	for _, pc := range pcs {
		hs.Branches = append(hs.Branches, BranchRecord{PC: pc, Exec: 100, Taken: 50})
	}
	return hs
}

func TestSignatureProperties(t *testing.T) {
	a := spotOf(8, 16, 24, 32)
	b := spotOf(8, 16, 24, 32)
	c := spotOf(1000, 2000, 3000, 4000)
	if SignatureOf(a) != SignatureOf(b) {
		t.Error("identical hot spots should have identical signatures")
	}
	if SignatureOf(a) == SignatureOf(c) {
		t.Error("disjoint hot spots should (almost surely) differ")
	}
	if got := SignatureOf(a).Jaccard(SignatureOf(b)); got != 1 {
		t.Errorf("self similarity = %v, want 1", got)
	}
	if got := Signature(0).Jaccard(0); got != 1 {
		t.Errorf("empty/empty similarity = %v, want 1", got)
	}
	if got := SignatureOf(a).Jaccard(SignatureOf(c)); got > 0.5 {
		t.Errorf("disjoint similarity = %v, suspiciously high", got)
	}
}

func TestHistoryFilterSuppressesRepeats(t *testing.T) {
	f := NewHistoryFilter(1, 0.9)
	a := spotOf(8, 16, 24)
	if !f.Admit(a) {
		t.Fatal("first detection must pass")
	}
	if f.Admit(a) {
		t.Fatal("immediate re-detection must be suppressed")
	}
	if f.Suppressed != 1 || f.Passed != 1 {
		t.Errorf("stats = %d/%d, want 1/1", f.Suppressed, f.Passed)
	}
}

func TestHistoryFilterDepth(t *testing.T) {
	// Alternating phases A,B: depth 1 re-admits on every switch; depth 2
	// stays quiet after both are known.
	a := spotOf(8, 16, 24)
	b := spotOf(4096, 8192, 12288)

	f1 := NewHistoryFilter(1, 0.9)
	admits1 := 0
	for i := 0; i < 10; i++ {
		hs := a
		if i%2 == 1 {
			hs = b
		}
		if f1.Admit(hs) {
			admits1++
		}
	}
	if admits1 != 10 {
		t.Errorf("depth-1 alternation admits = %d, want 10 (history of one thrashes)", admits1)
	}

	f2 := NewHistoryFilter(2, 0.9)
	admits2 := 0
	for i := 0; i < 10; i++ {
		hs := a
		if i%2 == 1 {
			hs = b
		}
		if f2.Admit(hs) {
			admits2++
		}
	}
	if admits2 != 2 {
		t.Errorf("depth-2 alternation admits = %d, want 2", admits2)
	}
}

func TestHistoryFilterDisabled(t *testing.T) {
	f := NewHistoryFilter(0, 0.9)
	a := spotOf(8)
	for i := 0; i < 5; i++ {
		if !f.Admit(a) {
			t.Fatal("depth 0 must admit everything")
		}
	}
	if f.Passed != 5 || f.Suppressed != 0 {
		t.Error("depth-0 stats wrong")
	}
}

func TestWrapDetector(t *testing.T) {
	f := NewHistoryFilter(1, 0.9)
	var got []HotSpot
	sink := f.WrapDetector(func(h HotSpot) { got = append(got, h) })
	a := spotOf(8, 16)
	sink(a)
	sink(a)
	sink(spotOf(4096, 8192))
	if len(got) != 2 {
		t.Errorf("forwarded %d hot spots, want 2", len(got))
	}
}

// Integration: a real detector behind the filter records far fewer hot
// spots on a stable phase without losing the phase itself.
func TestHistoryFilterWithDetector(t *testing.T) {
	var raw, filtered int
	dRaw := New(smallConfig(), func(HotSpot) { raw++ })
	f := NewHistoryFilter(2, 0.8)
	dFil := New(smallConfig(), f.WrapDetector(func(HotSpot) { filtered++ }))
	for i := 0; i < 20000; i++ {
		dRaw.Branch(100, true)
		dRaw.Branch(104, i%4 == 0)
		dFil.Branch(100, true)
		dFil.Branch(104, i%4 == 0)
	}
	if raw < 4 {
		t.Fatalf("raw detections = %d, too few to test filtering", raw)
	}
	if filtered != 1 {
		t.Errorf("filtered detections = %d, want 1 for a single stable phase", filtered)
	}
}
