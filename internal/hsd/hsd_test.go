package hsd

import (
	"testing"
	"testing/quick"
)

// smallConfig keeps detection windows short for tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Sets = 16
	cfg.Ways = 4
	cfg.RefreshInterval = 256
	cfg.ClearInterval = 4096
	cfg.HDCBits = 8 // detect after ~128 candidate-dominated branches
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.Sets = 0; return c }(),
		func() Config { c := DefaultConfig(); c.CounterBits = 40; return c }(),
		func() Config { c := DefaultConfig(); c.HDCBits = 0; return c }(),
		func() Config { c := DefaultConfig(); c.HDCInc, c.HDCDec = 0, 0; return c }(),
		func() Config { c := DefaultConfig(); c.RefreshInterval = 0; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config should panic")
		}
	}()
	New(Config{}, nil)
}

func TestDetectsTightLoop(t *testing.T) {
	var spots []HotSpot
	d := New(smallConfig(), func(h HotSpot) { spots = append(spots, h) })
	// Two branches executed round-robin: a loop backedge (always taken)
	// and an if (taken 25%).
	for i := 0; i < 5000; i++ {
		d.Branch(100, true)
		d.Branch(104, i%4 == 0)
	}
	if len(spots) == 0 {
		t.Fatal("no hot spot detected for a tight loop")
	}
	hs := spots[0]
	if len(hs.Branches) != 2 {
		t.Fatalf("hot spot has %d branches, want 2", len(hs.Branches))
	}
	byPC := map[int64]BranchRecord{}
	for _, b := range hs.Branches {
		byPC[b.PC] = b
	}
	if f := byPC[100].TakenFraction(); f < 0.99 {
		t.Errorf("backedge taken fraction = %v, want ~1", f)
	}
	if f := byPC[104].TakenFraction(); f < 0.15 || f > 0.35 {
		t.Errorf("if taken fraction = %v, want ~0.25", f)
	}
	if hs.DetectedAtBranch == 0 {
		t.Error("detection timestamp missing")
	}
}

func TestNoDetectionForUniformRandomStream(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg, func(h HotSpot) {
		t.Error("detected a hot spot in a stream with no locality")
	})
	// Thousands of distinct branch PCs, each executed a couple of times:
	// none become candidates, so the HDC never drains.
	pc := int64(0)
	for i := 0; i < 20000; i++ {
		d.Branch(pc, i%2 == 0)
		pc += 7
	}
	if d.Stats.Detections != 0 {
		t.Error("unexpected detections")
	}
	if d.Stats.Clears == 0 {
		t.Error("clear timer should have fired for an undetectable stream")
	}
}

func TestCounterSaturationPreservesFraction(t *testing.T) {
	cfg := smallConfig()
	cfg.ClearInterval = 1 << 20 // keep the entry alive
	cfg.HDCBits = 12            // delay detection past counter saturation
	var got *HotSpot
	d := New(cfg, func(h HotSpot) { got = &h })
	// One branch, 75% taken, executed far beyond the 9-bit counter range.
	for i := 0; i < 4000 && got == nil; i++ {
		d.Branch(42, i%4 != 0)
	}
	if d.Stats.Saturations == 0 {
		t.Fatal("counter should have saturated")
	}
	if got == nil {
		t.Fatal("expected a detection")
	}
	var rec *BranchRecord
	for i := range got.Branches {
		if got.Branches[i].PC == 42 {
			rec = &got.Branches[i]
		}
	}
	if rec == nil {
		t.Fatal("saturated branch missing from hot spot")
	}
	if rec.Exec > 1<<cfg.CounterBits-1 {
		t.Errorf("exec count %d exceeds counter width", rec.Exec)
	}
	if f := rec.TakenFraction(); f < 0.70 || f > 0.80 {
		t.Errorf("taken fraction after saturation = %v, want ~0.75", f)
	}
}

func TestContentionDropsUntrackableBranches(t *testing.T) {
	cfg := smallConfig()
	cfg.Sets = 1
	cfg.Ways = 2
	cfg.HDCBits = 16
	d := New(cfg, nil)
	// Two branches become candidates and fill the only set.
	for i := 0; i < 64; i++ {
		d.Branch(1, true)
		d.Branch(2, true)
	}
	if d.TrackedBranches() != 2 {
		t.Fatalf("tracked = %d, want 2", d.TrackedBranches())
	}
	before := d.Stats.ContentionDrop
	d.Branch(3, true) // no free way, both ways are candidates
	if d.Stats.ContentionDrop != before+1 {
		t.Error("third branch should have been dropped for contention")
	}
}

func TestRefreshEvictsNonCandidates(t *testing.T) {
	cfg := smallConfig()
	cfg.RefreshInterval = 64
	d := New(cfg, nil)
	// A candidate branch plus a one-shot branch.
	for i := 0; i < 32; i++ {
		d.Branch(1, true)
	}
	d.Branch(999, true)
	if d.TrackedBranches() != 2 {
		t.Fatalf("tracked = %d, want 2", d.TrackedBranches())
	}
	for i := 0; i < 64; i++ {
		d.Branch(1, true)
	}
	if d.Stats.Refreshes == 0 {
		t.Fatal("refresh should have fired")
	}
	if d.TrackedBranches() != 1 {
		t.Errorf("tracked after refresh = %d, want 1 (non-candidate evicted)", d.TrackedBranches())
	}
}

func TestDetectionResetsForNextPhase(t *testing.T) {
	var spots []HotSpot
	d := New(smallConfig(), func(h HotSpot) { spots = append(spots, h) })
	for i := 0; i < 3000; i++ {
		d.Branch(100, true)
	}
	n1 := len(spots)
	if n1 == 0 {
		t.Fatal("phase 1 not detected")
	}
	// New phase with different branches: detected as well.
	for i := 0; i < 3000; i++ {
		d.Branch(500, false)
		d.Branch(504, true)
	}
	if len(spots) <= n1 {
		t.Fatal("phase 2 not detected")
	}
	last := spots[len(spots)-1]
	for _, b := range last.Branches {
		if b.PC == 100 {
			t.Error("stale phase-1 branch in phase-2 hot spot")
		}
	}
	// Sequence numbers are strictly increasing.
	for i := 1; i < len(spots); i++ {
		if spots[i].Seq != spots[i-1].Seq+1 {
			t.Error("non-sequential hot spot numbering")
		}
	}
}

func TestSetInstCountStampsDetections(t *testing.T) {
	var got HotSpot
	d := New(smallConfig(), func(h HotSpot) { got = h })
	d.SetInstCount(12345)
	for i := 0; i < 3000; i++ {
		d.Branch(7, true)
	}
	if d.Stats.Detections == 0 {
		t.Fatal("no detection")
	}
	if got.DetectedAtInst != 12345 {
		t.Errorf("DetectedAtInst = %d, want 12345", got.DetectedAtInst)
	}
}

// Property: counters never exceed their configured widths and taken <= exec
// for every reported record, for arbitrary branch streams.
func TestQuickCounterInvariants(t *testing.T) {
	cfg := smallConfig()
	f := func(pcs []uint16, dirs []bool) bool {
		ok := true
		d := New(cfg, func(h HotSpot) {
			for _, b := range h.Branches {
				if b.Taken > b.Exec || b.Exec > 1<<cfg.CounterBits-1 {
					ok = false
				}
			}
		})
		for i, pc := range pcs {
			taken := i < len(dirs) && dirs[i%len(dirs)]
			// Restrict to 64 distinct PCs so candidates actually form.
			d.Branch(int64(pc%64)*4, taken)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHDCBounds(t *testing.T) {
	cfg := smallConfig()
	d := New(cfg, nil)
	max := uint32(1<<cfg.HDCBits - 1)
	if d.HDC() != max {
		t.Fatalf("initial HDC = %d, want %d", d.HDC(), max)
	}
	// Non-candidate stream keeps it pinned at max.
	for i := 0; i < 100; i++ {
		d.Branch(int64(i*8), true)
	}
	if d.HDC() != max {
		t.Errorf("HDC = %d after non-candidate stream, want %d", d.HDC(), max)
	}
}
