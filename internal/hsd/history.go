package hsd

// This file implements the detection-time filtering enhancements §3.1
// sketches: "Enhancements to the BBB provide a history of one hot spot and
// record a phase only when it is different than the previous phase. This
// history could be extended to more than one ... Working set signatures
// could be extended to hot spot signatures to allow inexpensive
// comparisons between a detected hot spot and a history of previously
// recorded hot spots."
//
// A hot-spot signature is a small bitvector over hashed branch PCs (after
// Dhodapkar & Smith's working-set signatures). The HistoryFilter keeps the
// signatures of the last N recorded hot spots and suppresses a new
// detection whose signature is sufficiently similar to one of them,
// reducing the volume of data the hardware must hand to software. It is a
// hardware-plausible pre-filter: the software similarity rules of
// phasedb remain the authority on phase identity.
//
// Known limitation, kept deliberately: phases that differ only in branch
// bias (not branch membership) are distinguished through a single
// quantized bias bit per branch. A detection window that straddles the
// phase boundary averages the two phases' biases, and its bits can land on
// the new phase's side — the filter then treats the following clean
// windows as re-detections and forwards only the straddling one. Real
// hardware signatures have the same blind spot; deployments that care
// about bias-only phases should keep the history shallow or leave the
// filtering to software (depth 0, the paper's configuration).

// Signature is a compact hot-spot fingerprint.
type Signature uint64

// signatureBits is the signature width; 64 bits suffices for the hot-spot
// sizes the BBB can hold.
const signatureBits = 64

// SignatureOf hashes a hot spot's branches into a signature. Each branch
// contributes its PC *and* its bias direction bit, so two phases over the
// same static branches with flipped biases — the paper's second similarity
// criterion — produce different signatures and are not suppressed.
func SignatureOf(hs HotSpot) Signature {
	var sig Signature
	for _, b := range hs.Branches {
		bias := uint64(0)
		if 2*b.Taken >= b.Exec {
			bias = 1
		}
		h := (uint64(b.PC)<<1 | bias) * 0x9e3779b97f4a7c15
		sig |= 1 << (h >> 58) // top 6 bits select one of 64 positions
	}
	return sig
}

// Jaccard estimates the similarity of two signatures as the ratio of
// shared to total set bits.
func (s Signature) Jaccard(t Signature) float64 {
	inter := popcount(uint64(s & t))
	union := popcount(uint64(s | t))
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// HistoryFilter suppresses re-detections of recently recorded hot spots.
type HistoryFilter struct {
	// Depth is how many recent signatures are remembered (the paper's
	// "history could be extended to more than one").
	depth int
	// threshold is the Jaccard similarity above which a detection is
	// considered a re-detection and suppressed.
	threshold float64

	ring []Signature
	next int
	full bool

	// Suppressed counts detections the filter swallowed; Passed counts
	// detections forwarded to software.
	Suppressed uint64
	Passed     uint64
}

// NewHistoryFilter builds a filter of the given depth and similarity
// threshold (e.g. 0.8). Depth 0 disables filtering.
func NewHistoryFilter(depth int, threshold float64) *HistoryFilter {
	if depth < 0 {
		depth = 0
	}
	return &HistoryFilter{
		depth:     depth,
		threshold: threshold,
		ring:      make([]Signature, depth),
	}
}

// Admit decides whether a detection should be recorded. Admitted hot spots
// enter the history; suppressed ones do not (so an alternation between two
// phases with a depth-2 history stays quiet until a third appears).
func (f *HistoryFilter) Admit(hs HotSpot) bool {
	if f.depth == 0 {
		f.Passed++
		return true
	}
	sig := SignatureOf(hs)
	n := f.depth
	if !f.full {
		n = f.next
	}
	for i := 0; i < n; i++ {
		if f.ring[i].Jaccard(sig) >= f.threshold {
			f.Suppressed++
			return false
		}
	}
	f.ring[f.next] = sig
	f.next++
	if f.next == f.depth {
		f.next = 0
		f.full = true
	}
	f.Passed++
	return true
}

// WrapDetector interposes the filter between a detector and its consumer:
// only admitted hot spots reach onDetect.
func (f *HistoryFilter) WrapDetector(onDetect func(HotSpot)) func(HotSpot) {
	return func(hs HotSpot) {
		if f.Admit(hs) && onDetect != nil {
			onDetect(hs)
		}
	}
}
