package equiv

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// Term canonicalization tests: the prover's soundness rests on interned
// terms being pointer-equal iff semantically identified by the
// normalization rules, and on foldInt matching machine semantics exactly.

func TestTermInterning(t *testing.T) {
	it := newInterner()
	a, b := it.Init(4), it.Init(5)
	if it.Op2(isa.ADD, a, b) != it.Op2(isa.ADD, a, b) {
		t.Error("identical ops not interned to one term")
	}
	if it.Const(7) != it.Const(7) {
		t.Error("identical consts not interned")
	}
	if it.Const(7) == it.Const(8) {
		t.Error("distinct consts interned together")
	}
}

func TestTermCommutativeCanon(t *testing.T) {
	it := newInterner()
	a, b := it.Init(4), it.Init(5)
	for _, op := range []isa.Opcode{isa.ADD, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SEQ} {
		if it.Op2(op, a, b) != it.Op2(op, b, a) {
			t.Errorf("%v not canonicalized commutatively", op)
		}
	}
	// SUB is not commutative; the orders must stay distinct.
	if it.Op2(isa.SUB, a, b) == it.Op2(isa.SUB, b, a) {
		t.Error("SUB wrongly treated as commutative")
	}
}

func TestTermIdentities(t *testing.T) {
	it := newInterner()
	a := it.Init(4)
	zero, one := it.Const(0), it.Const(1)
	cases := []struct {
		name string
		got  *Term
		want *Term
	}{
		{"x+0", it.Op2(isa.ADD, a, zero), a},
		{"x-0", it.Op2(isa.SUB, a, zero), a},
		{"x-x", it.Op2(isa.SUB, a, a), zero},
		{"x|0", it.Op2(isa.OR, a, zero), a},
		{"x^0", it.Op2(isa.XOR, a, zero), a},
		{"x^x", it.Op2(isa.XOR, a, a), zero},
		{"x*1", it.Op2(isa.MUL, a, one), a},
		{"x*0", it.Op2(isa.MUL, a, zero), zero},
		{"x&0", it.Op2(isa.AND, a, zero), zero},
		{"x&x", it.Op2(isa.AND, a, a), a},
		{"x|x", it.Op2(isa.OR, a, a), a},
		{"x/1", it.Op2(isa.DIV, a, one), a},
		{"x%1", it.Op2(isa.REM, a, one), zero},
		{"x<<0", it.Op2(isa.SHL, a, zero), a},
		{"x>>0", it.Op2(isa.SHR, a, zero), a},
		{"x<x", it.Op2(isa.SLT, a, a), zero},
		{"x==x", it.Op2(isa.SEQ, a, a), one},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, c.got, c.want)
		}
	}
}

func TestFoldIntMachineSemantics(t *testing.T) {
	it := newInterner()
	c := func(v int64) *Term { return it.Const(v) }
	cases := []struct {
		name string
		got  *Term
		want int64
	}{
		{"add", it.Op2(isa.ADD, c(3), c(4)), 7},
		{"div0", it.Op2(isa.DIV, c(9), c(0)), 0},
		{"rem0", it.Op2(isa.REM, c(9), c(0)), 0},
		{"divneg", it.Op2(isa.DIV, c(-7), c(2)), -3},
		{"shl-mask", it.Op2(isa.SHL, c(1), c(65)), 2},
		{"shr-logical", it.Op2(isa.SHR, c(-1), c(60)), 15},
		{"slt-true", it.Op2(isa.SLT, c(-1), c(0)), 1},
		{"slt-false", it.Op2(isa.SLT, c(0), c(-1)), 0},
		{"seq", it.Op2(isa.SEQ, c(5), c(5)), 1},
	}
	for _, cse := range cases {
		if cse.got.kind != kConst || cse.got.k != cse.want {
			t.Errorf("%s: got %s, want const %d", cse.name, cse.got, cse.want)
		}
	}
}

func TestPredFolding(t *testing.T) {
	it := newInterner()
	a, b := it.Init(4), it.Init(5)
	if p := it.Pred(isa.BEQ, a, a); p != it.one {
		t.Errorf("x==x pred should fold true, got %s", p)
	}
	if p := it.Pred(isa.BEQ, it.Const(1), it.Const(2)); p != it.zero {
		t.Errorf("1==2 pred should fold false, got %s", p)
	}
	if p := it.Pred(isa.BLT, it.Const(1), it.Const(2)); p != it.one {
		t.Errorf("1<2 pred should fold true, got %s", p)
	}
	// BEQ operands are order-canonicalized so both orientations share a
	// constraint slot.
	if it.Pred(isa.BEQ, a, b) != it.Pred(isa.BEQ, b, a) {
		t.Error("BEQ pred not canonicalized over operand order")
	}
}

func TestStoreChainCanonicalization(t *testing.T) {
	it := newInterner()
	base := it.Init(10)
	a0 := it.Op2(isa.ADD, base, it.Const(0))
	a8 := it.Op2(isa.ADD, base, it.Const(8))
	v1, v2 := it.Init(4), it.Init(5)
	mem := it.MemInit()

	// Same-address overwrite collapses to the latest store.
	m1 := it.Store(mem, a0, v1)
	m2 := it.Store(m1, a0, v2)
	if m2 != it.Store(mem, a0, v2) {
		t.Error("same-address overwrite not collapsed")
	}

	// Provably-disjoint stores commute into one canonical order.
	ab := it.Store(it.Store(mem, a0, v1), a8, v2)
	ba := it.Store(it.Store(mem, a8, v2), a0, v1)
	if ab != ba {
		t.Error("disjoint stores not order-canonicalized")
	}

	// May-alias stores (distinct symbolic bases) must NOT commute.
	other := it.Init(11)
	xy := it.Store(it.Store(mem, base, v1), other, v2)
	yx := it.Store(it.Store(mem, other, v2), base, v1)
	if xy == yx {
		t.Error("may-alias stores wrongly commuted")
	}
}

func TestLoadForwarding(t *testing.T) {
	it := newInterner()
	base := it.Init(10)
	a0 := it.Op2(isa.ADD, base, it.Const(0))
	a8 := it.Op2(isa.ADD, base, it.Const(8))
	v := it.Init(4)
	mem := it.MemInit()

	if got := it.Load(it.Store(mem, a0, v), a0); got != v {
		t.Errorf("load of just-stored addr should forward the value, got %s", got)
	}
	// A provably-disjoint intervening store is skipped.
	m := it.Store(it.Store(mem, a0, v), a8, it.Init(5))
	if got := it.Load(m, a0); got != v {
		t.Errorf("load should skip disjoint store, got %s", got)
	}
	// A may-alias intervening store blocks forwarding.
	blocked := it.Store(it.Store(mem, a0, v), it.Init(11), it.Init(5))
	if got := it.Load(blocked, a0); got == v {
		t.Error("load must not forward past a may-alias store")
	}
}

func TestTermRenderBounded(t *testing.T) {
	it := newInterner()
	t1 := it.Init(4)
	for i := 0; i < 40; i++ {
		t1 = it.Op2(isa.ADD, t1, it.Init(isa.Reg(5+i%20)))
	}
	s := t1.String()
	if !strings.Contains(s, "#") {
		t.Errorf("deep term render should truncate with #id refs: %s", s)
	}
	if len(s) > 4096 {
		t.Errorf("render unbounded: %d bytes", len(s))
	}
}

func TestRegImmLowering(t *testing.T) {
	it := newInterner()
	a := it.Init(4)
	got := it.Op2(isa.ADD, a, it.Const(5))
	// stepIns lowers ADDI r,a,5 through regImmLower to the same term.
	op, ok := regImmLower(isa.ADDI)
	if !ok || op != isa.ADD {
		t.Fatalf("ADDI should lower to ADD")
	}
	if it.Op2(op, a, it.Const(5)) != got {
		t.Error("reg-imm lowering not confluent with reg-reg form")
	}
}
