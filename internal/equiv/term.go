// Package equiv is the pipeline's translation-validation engine: it
// proves each optimized package observationally equivalent to the region
// code it replaced. Where internal/verify re-checks structural invariants
// and transformation certificates, equiv re-executes both versions
// symbolically, path by path, and demands that every observable effect —
// live-out register values, the memory write sequence, side-exit targets,
// call and return states — is the *same term* over the package's initial
// state. Dead differences introduced by merging, sinking, relayout or
// rescheduling are tolerated; real semantic drift is rejected with a
// structured counterexample (Counterexample) carrying the diverging path,
// the mismatched terms and, when the term constraints can be solved, a
// concrete witness state.
//
// The proof obligation is discharged per package: Capture snapshots the
// package function after installation and linking but before the §5.4
// passes, Prove enumerates the acyclic paths of the optimized function
// (cutting each path at its first block revisit) and replays the snapshot
// under the same branch constraints. When the path budget is exceeded the
// engine falls back to bounded differential execution (fuzz.go), which
// cannot prove equivalence but still catches drift; the Certificate
// records which of the two regimes covered the package.
package equiv

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// termKind classifies a node of the interned term DAG.
type termKind uint8

const (
	kConst    termKind = iota // integer constant (k)
	kInit                     // initial value of register k at package entry
	kHavoc                    // value of register k&0xff after call number k>>8
	kOp                       // ALU operation op over a (and b)
	kLoad                     // load: a = memory chain, b = address
	kStore                    // store: a = previous chain, b = address, c = value
	kMemInit                  // memory at package entry
	kMemHavoc                 // memory after call number k
	kCodeAddr                 // address of block blk (LA materialization)
	kPred                     // predicate: op is isa.BEQ (==) or isa.BLT (signed <)
)

// Term is one hash-consed node. Terms are interned per proof: two terms
// are semantically checked equal exactly when they are pointer-equal, so
// comparison along paths is O(1) and the DAG never duplicates structure.
type Term struct {
	id      int
	kind    termKind
	op      isa.Opcode
	a, b, c *Term
	k       int64
	blk     *prog.Block
}

// nodeKey is the interner identity of an interior node (kOp, kPred,
// kLoad, kStore): kind and opcode packed together plus the child IDs.
// Interior nodes never carry k or blk, which keeps the key at 16 bytes —
// the interner lookup is the prover's hottest path, and hashing this
// compact key is several times cheaper than hashing the full node shape.
type nodeKey struct {
	ko      uint32 // kind<<16 | opcode
	a, b, c int32  // child IDs, -1 for absent
}

// codeKey is the interner identity of a kCodeAddr leaf.
type codeKey struct {
	blk *prog.Block
	k   int64
}

// Leaf tags distinguishing the scalar-keyed kinds sharing one fast
// int64-keyed map; k is shifted left past the tag.
const (
	leafInit = iota
	leafHavoc
	leafMemHavoc
	numLeafTags
)

// interner hash-conses terms for one package proof, with one map per key
// shape so every lookup hashes the smallest possible key. It is not safe
// for concurrent use; each Prove call owns its own interner, which keeps
// concurrent proofs over different packages trivially race-free.
type interner struct {
	consts  map[int64]*Term   // kConst, keyed by value
	leaves  map[int64]*Term   // kInit/kHavoc/kMemHavoc, keyed by k*numLeafTags+tag
	nodes   map[nodeKey]*Term // kOp, kPred, kLoad, kStore
	code    map[codeKey]*Term // kCodeAddr
	memInit *Term             // kMemInit singleton
	n       int               // next term ID
	zero    *Term
	one     *Term
}

func newInterner() *interner {
	it := &interner{
		consts: make(map[int64]*Term, 64),
		leaves: make(map[int64]*Term, 64),
		nodes:  make(map[nodeKey]*Term, 256),
		code:   make(map[codeKey]*Term, 8),
	}
	it.zero = it.Const(0)
	it.one = it.Const(1)
	return it
}

// size returns the number of distinct terms interned so far.
func (it *interner) size() int { return it.n }

func tid(t *Term) int32 {
	if t == nil {
		return -1
	}
	return int32(t.id)
}

func (it *interner) newTerm(kind termKind, op isa.Opcode, a, b, c *Term, k int64, blk *prog.Block) *Term {
	t := &Term{id: it.n, kind: kind, op: op, a: a, b: b, c: c, k: k, blk: blk}
	it.n++
	return t
}

func (it *interner) mk(kind termKind, op isa.Opcode, a, b, c *Term, k int64, blk *prog.Block) *Term {
	switch kind {
	case kConst:
		if t, ok := it.consts[k]; ok {
			return t
		}
		t := it.newTerm(kind, op, a, b, c, k, blk)
		it.consts[k] = t
		return t
	case kInit, kHavoc, kMemHavoc:
		tag := int64(leafInit)
		switch kind {
		case kHavoc:
			tag = leafHavoc
		case kMemHavoc:
			tag = leafMemHavoc
		}
		key := k*numLeafTags + tag
		if t, ok := it.leaves[key]; ok {
			return t
		}
		t := it.newTerm(kind, op, a, b, c, k, blk)
		it.leaves[key] = t
		return t
	case kMemInit:
		if it.memInit == nil {
			it.memInit = it.newTerm(kind, op, a, b, c, k, blk)
		}
		return it.memInit
	case kCodeAddr:
		key := codeKey{blk: blk, k: k}
		if t, ok := it.code[key]; ok {
			return t
		}
		t := it.newTerm(kind, op, a, b, c, k, blk)
		it.code[key] = t
		return t
	default: // kOp, kPred, kLoad, kStore: interior nodes, k and blk unused
		key := nodeKey{ko: uint32(kind)<<16 | uint32(op), a: tid(a), b: tid(b), c: tid(c)}
		if t, ok := it.nodes[key]; ok {
			return t
		}
		t := it.newTerm(kind, op, a, b, c, k, blk)
		it.nodes[key] = t
		return t
	}
}

// Const returns the constant term for v.
func (it *interner) Const(v int64) *Term { return it.mk(kConst, isa.NOP, nil, nil, nil, v, nil) }

// Init returns the term for register r's value at package entry.
func (it *interner) Init(r isa.Reg) *Term {
	return it.mk(kInit, isa.NOP, nil, nil, nil, int64(r), nil)
}

// Havoc returns the unknown value of register r after the path's seq-th
// call. Both versions of a path havoc with the same sequence numbers, so
// matching positions yield matching terms.
func (it *interner) Havoc(seq int, r isa.Reg) *Term {
	return it.mk(kHavoc, isa.NOP, nil, nil, nil, int64(seq)<<8|int64(r), nil)
}

// MemInit returns the memory chain bottom at package entry.
func (it *interner) MemInit() *Term { return it.mk(kMemInit, isa.NOP, nil, nil, nil, 0, nil) }

// MemHavoc returns the unknown memory state after the path's seq-th call.
func (it *interner) MemHavoc(seq int) *Term {
	return it.mk(kMemHavoc, isa.NOP, nil, nil, nil, int64(seq), nil)
}

// CodeAddr returns the term for a block's code address (LA, call return
// addresses). blk may be nil for pre-resolved numeric targets, in which
// case the raw target value disambiguates.
func (it *interner) CodeAddr(blk *prog.Block, target int64) *Term {
	if blk != nil {
		target = 0
	}
	return it.mk(kCodeAddr, isa.NOP, nil, nil, nil, target, blk)
}

// intFoldable reports whether op is an integer ALU operation with exact
// machine semantics the interner folds; FP operations stay uninterpreted
// (both versions build identical FP terms, so folding buys nothing and
// risks diverging from the machine's float behavior).
func intFoldable(op isa.Opcode) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SEQ:
		return true
	}
	return false
}

// foldInt mirrors cpu.Machine.exec exactly: division and remainder by
// zero yield 0, shifts mask their amount to 6 bits, SHR is logical, SLT
// is signed.
func foldInt(op isa.Opcode, a, b int64) int64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.MUL:
		return a * b
	case isa.DIV:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.REM:
		if b == 0 {
			return 0
		}
		return a % b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SHL:
		return a << uint(b&63)
	case isa.SHR:
		return int64(uint64(a) >> uint(b&63))
	case isa.SLT:
		if a < b {
			return 1
		}
		return 0
	case isa.SEQ:
		if a == b {
			return 1
		}
		return 0
	}
	panic("equiv: foldInt on non-integer opcode " + op.String())
}

// commutative reports ops whose operands the interner may canonically
// reorder. The passes never rewrite operand order inside an instruction,
// but canonical form makes address terms built through different
// lowering orders compare equal.
func commutative(op isa.Opcode) bool {
	switch op {
	case isa.ADD, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SEQ:
		return true
	}
	return false
}

// Op2 builds (or folds) a two-operand ALU term. Register-immediate forms
// are lowered to their register-register opcode with a constant operand
// before reaching here.
func (it *interner) Op2(op isa.Opcode, a, b *Term) *Term {
	if intFoldable(op) {
		if a.kind == kConst && b.kind == kConst {
			return it.Const(foldInt(op, a.k, b.k))
		}
		if commutative(op) {
			// Constants to the right; otherwise order by ID. This is what
			// addrSplit relies on to find `base + const` shapes.
			if a.kind == kConst || (b.kind != kConst && a.id > b.id) {
				a, b = b, a
			}
		}
		// Algebraic identities. Only rewrites that hold for every operand
		// value under the machine's exact semantics are applied.
		switch op {
		case isa.ADD, isa.OR, isa.XOR, isa.SHL, isa.SHR:
			if b.kind == kConst && b.k == 0 {
				return a
			}
		case isa.SUB:
			if b.kind == kConst && b.k == 0 {
				return a
			}
			if a == b {
				return it.zero
			}
		case isa.MUL:
			if b.kind == kConst {
				if b.k == 1 {
					return a
				}
				if b.k == 0 {
					return it.zero
				}
			}
		case isa.AND:
			if b.kind == kConst && b.k == 0 {
				return it.zero
			}
			if a == b {
				return a
			}
		case isa.DIV:
			if b.kind == kConst && b.k == 1 {
				return a
			}
		case isa.REM:
			if b.kind == kConst && b.k == 1 {
				return it.zero
			}
		case isa.SLT:
			if a == b {
				return it.zero
			}
		case isa.SEQ:
			if a == b {
				return it.one
			}
		}
		if op == isa.OR && a == b {
			return a
		}
		if op == isa.XOR && a == b {
			return it.zero
		}
	}
	return it.mk(kOp, op, a, b, nil, 0, nil)
}

// Op1 builds a one-operand (conversion) term; uninterpreted.
func (it *interner) Op1(op isa.Opcode, a *Term) *Term {
	return it.mk(kOp, op, a, nil, nil, 0, nil)
}

// Pred builds the canonical predicate for a conditional branch. op must
// be isa.BEQ (equality) or isa.BLT (signed less-than); BNE and BGE
// callers negate the sense instead, which is how layout's branch
// inversions collapse to the same predicate term.
func (it *interner) Pred(op isa.Opcode, a, b *Term) *Term {
	if a.kind == kConst && b.kind == kConst {
		hold := false
		switch op {
		case isa.BEQ:
			hold = a.k == b.k
		case isa.BLT:
			hold = a.k < b.k
		}
		if hold {
			return it.one
		}
		return it.zero
	}
	if a == b {
		if op == isa.BEQ {
			return it.one
		}
		return it.zero // x < x is false
	}
	if op == isa.BEQ && a.id > b.id {
		a, b = b, a
	}
	return it.mk(kPred, op, a, b, nil, 0, nil)
}

// addrSplit decomposes an address term into (base, constant offset):
// a constant is (nil, k), `base + const` is (base, const), anything else
// is (term, 0). Op2's canonical form keeps the constant on the right of
// commutative ADDs, so one shape test suffices.
func addrSplit(t *Term) (*Term, int64) {
	if t.kind == kConst {
		return nil, t.k
	}
	if t.kind == kOp && t.op == isa.ADD && t.b != nil && t.b.kind == kConst {
		return t.a, t.b.k
	}
	return t, 0
}

// disjointAddrs reports whether two address terms provably name different
// words. It mirrors the scheduler's static disambiguation rule — equal
// bases with different offsets cannot alias — so every reorder the
// scheduler may legally perform normalizes away, and nothing weaker is
// assumed.
func disjointAddrs(x, y *Term) bool {
	bx, ox := addrSplit(x)
	by, oy := addrSplit(y)
	return bx == by && ox != oy
}

// addrLess is the canonical store order for provably disjoint addresses:
// by base term ID (nil bases first), then offset.
func addrLess(x, y *Term) bool {
	bx, ox := addrSplit(x)
	by, oy := addrSplit(y)
	if bx != by {
		return tid(bx) < tid(by)
	}
	return ox < oy
}

// Store appends a write to a memory chain in canonical form: a write to
// the address at the top of the chain overwrites it, and a write provably
// disjoint from the top sinks below it when the canonical order says so.
// Two versions that perform the same set of pairwise-disjoint writes in
// different orders therefore build the same chain term.
func (it *interner) Store(mem, addr, val *Term) *Term {
	if mem.kind == kStore {
		if mem.b == addr {
			return it.mk(kStore, isa.NOP, mem.a, addr, val, 0, nil)
		}
		if disjointAddrs(addr, mem.b) && addrLess(addr, mem.b) {
			inner := it.Store(mem.a, addr, val)
			return it.mk(kStore, isa.NOP, inner, mem.b, mem.c, 0, nil)
		}
	}
	return it.mk(kStore, isa.NOP, mem, addr, val, 0, nil)
}

// Load reads addr from a memory chain: a store to the same address term
// forwards its value, provably disjoint stores are skipped, and the first
// may-aliasing store blocks resolution. The load term then hangs off the
// *blocker's* sub-chain, not the full chain — so a load the scheduler
// legally hoisted above a disjoint store still compares equal to its
// un-hoisted twin.
func (it *interner) Load(mem, addr *Term) *Term {
	m := mem
	for m.kind == kStore {
		if m.b == addr {
			return m.c
		}
		if !disjointAddrs(addr, m.b) {
			break // may alias: cannot see past this store
		}
		m = m.a
	}
	return it.mk(kLoad, isa.NOP, m, addr, nil, 0, nil)
}

// regImmLower maps a register-immediate ALU opcode to its register-
// register twin (the immediate becomes a constant operand).
func regImmLower(op isa.Opcode) (isa.Opcode, bool) {
	switch op {
	case isa.ADDI:
		return isa.ADD, true
	case isa.MULI:
		return isa.MUL, true
	case isa.ANDI:
		return isa.AND, true
	case isa.ORI:
		return isa.OR, true
	case isa.XORI:
		return isa.XOR, true
	case isa.SHLI:
		return isa.SHL, true
	case isa.SHRI:
		return isa.SHR, true
	case isa.SLTI:
		return isa.SLT, true
	}
	return op, false
}

// String renders the term as a depth-capped s-expression for diagnostics.
func (t *Term) String() string {
	var sb strings.Builder
	t.render(&sb, 6)
	return sb.String()
}

func (t *Term) render(sb *strings.Builder, depth int) {
	if t == nil {
		sb.WriteString("?")
		return
	}
	if depth <= 0 {
		fmt.Fprintf(sb, "#%d", t.id)
		return
	}
	switch t.kind {
	case kConst:
		fmt.Fprintf(sb, "%d", t.k)
	case kInit:
		fmt.Fprintf(sb, "%s₀", isa.Reg(t.k))
	case kHavoc:
		fmt.Fprintf(sb, "havoc(%s,call%d)", isa.Reg(t.k&0xff), t.k>>8)
	case kMemInit:
		sb.WriteString("mem₀")
	case kMemHavoc:
		fmt.Fprintf(sb, "mem(call%d)", t.k)
	case kCodeAddr:
		if t.blk != nil {
			fmt.Fprintf(sb, "&%s", t.blk)
		} else {
			fmt.Fprintf(sb, "&@%d", t.k)
		}
	case kOp:
		fmt.Fprintf(sb, "(%s ", t.op)
		t.a.render(sb, depth-1)
		if t.b != nil {
			sb.WriteString(" ")
			t.b.render(sb, depth-1)
		}
		sb.WriteString(")")
	case kLoad:
		sb.WriteString("(ld ")
		t.b.render(sb, depth-1)
		sb.WriteString(" ")
		t.a.render(sb, depth-1)
		sb.WriteString(")")
	case kStore:
		sb.WriteString("(st ")
		t.b.render(sb, depth-1)
		sb.WriteString("=")
		t.c.render(sb, depth-1)
		sb.WriteString(" ")
		t.a.render(sb, depth-1)
		sb.WriteString(")")
	case kPred:
		rel := "=="
		if t.op == isa.BLT {
			rel = "<"
		}
		sb.WriteString("(")
		t.a.render(sb, depth-1)
		sb.WriteString(rel)
		t.b.render(sb, depth-1)
		sb.WriteString(")")
	default:
		fmt.Fprintf(sb, "term?%d", t.kind)
	}
}
