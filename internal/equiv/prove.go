package equiv

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Config parameterizes one proof.
type Config struct {
	// MaxPaths caps the number of acyclic paths enumerated symbolically
	// per package (0 = 4096). When exceeded, the proof degrades to
	// bounded differential execution.
	MaxPaths int
	// FuzzTrials is the number of differential-execution trials per entry
	// in the fallback regime (0 = 8); FuzzSteps bounds each trial's
	// dynamic block count (0 = 2048).
	FuzzTrials int
	FuzzSteps  int
}

func (c Config) withDefaults() Config {
	if c.MaxPaths <= 0 {
		c.MaxPaths = 4096
	}
	if c.FuzzTrials <= 0 {
		c.FuzzTrials = 8
	}
	if c.FuzzSteps <= 0 {
		c.FuzzSteps = 2048
	}
	return c
}

// blockSnap is one block's captured pre-optimization contents. Blocks are
// mutated in place by the §5.4 passes, so the snapshot keys by the block
// pointer — which stays stable — and copies everything the passes touch.
type blockSnap struct {
	insts    []prog.Ins
	kind     prog.TermKind
	cmpOp    isa.Opcode
	rs1, rs2 isa.Reg
	taken    *prog.Block
	next     *prog.Block
	callee   *prog.Func
	consumes []isa.Reg
}

// view is the walker-facing shape of a block, served either from the live
// (optimized) block or from the reference snapshot.
type view struct {
	insts    []prog.Ins
	kind     prog.TermKind
	cmpOp    isa.Opcode
	rs1, rs2 isa.Reg
	taken    *prog.Block
	next     *prog.Block
	callee   *prog.Func
	consumes []isa.Reg
}

func liveView(b *prog.Block) view {
	return view{
		insts: b.Insts, kind: b.Kind, cmpOp: b.CmpOp,
		rs1: b.Rs1, rs2: b.Rs2, taken: b.Taken, next: b.Next,
		callee: b.Callee, consumes: b.ExitConsumes,
	}
}

// Snapshot is one package function captured after installation and
// linking but before optimization: the reference the optimized version is
// proved against.
type Snapshot struct {
	fn      *prog.Func
	name    string
	phase   int
	blocks  map[*prog.Block]*blockSnap
	liveIn  map[*prog.Block]prog.RegSet
	entries []*prog.Block
}

// Package returns the snapshot's package function name.
func (s *Snapshot) Package() string { return s.name }

// Entries returns the proof entry blocks, in block-ID order.
func (s *Snapshot) Entries() []*prog.Block { return s.entries }

func (s *Snapshot) refView(b *prog.Block) (view, bool) {
	bs, ok := s.blocks[b]
	if !ok {
		return view{}, false
	}
	return view{
		insts: bs.insts, kind: bs.kind, cmpOp: bs.cmpOp,
		rs1: bs.rs1, rs2: bs.rs2, taken: bs.taken, next: bs.next,
		callee: bs.callee, consumes: bs.consumes,
	}, true
}

// Capture snapshots fn (a package function of p) for later proof. It must
// run after installation and linking — so launch arcs, linked exits and
// dummy-consumer sets are in place — and before the optimization passes
// mutate the function. entries seeds the proof's entry set (the package's
// launch-target copies); Capture completes it with every block entered
// from outside the function (linked sibling exits) and every block whose
// address escapes through an LA instruction (dynamic-launch slots,
// materialized return addresses), since those can be reached with
// arbitrary machine state too.
func Capture(p *prog.Program, fn *prog.Func, entries []*prog.Block) *Snapshot {
	s := &Snapshot{
		fn:     fn,
		name:   fn.Name,
		phase:  fn.PhaseID,
		blocks: make(map[*prog.Block]*blockSnap, len(fn.Blocks)),
	}
	for _, b := range fn.Blocks {
		s.blocks[b] = &blockSnap{
			insts:    append([]prog.Ins(nil), b.Insts...),
			kind:     b.Kind,
			cmpOp:    b.CmpOp,
			rs1:      b.Rs1,
			rs2:      b.Rs2,
			taken:    b.Taken,
			next:     b.Next,
			callee:   b.Callee,
			consumes: append([]isa.Reg(nil), b.ExitConsumes...),
		}
	}
	// Live-in sets for loop-cut comparison come from the same per-function
	// liveness the sink pass consults, so everything sink may legally kill
	// is dead under them and nothing more.
	s.liveIn = prog.ComputeLiveness(fn).In

	seen := make(map[*prog.Block]bool, len(entries)+4)
	add := func(b *prog.Block) {
		if b != nil && b.Fn == fn && !seen[b] {
			seen[b] = true
			s.entries = append(s.entries, b)
		}
	}
	for _, b := range entries {
		add(b)
	}
	add(fn.Entry())
	p.ComputePreds()
	for _, b := range fn.Blocks {
		for _, pr := range b.Preds() {
			if pr.Fn != fn {
				add(b)
				break
			}
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for i := range b.Insts {
				if bt := b.Insts[i].BlockTarget; bt != nil && bt.Fn == fn {
					add(bt)
				}
			}
		}
	}
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].ID < s.entries[j].ID })
	return s
}

// allRegs lists every architectural register except the hardwired zero.
var allRegs = func() []isa.Reg {
	out := make([]isa.Reg, 0, isa.NumRegs-1)
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		out = append(out, r)
	}
	return out
}()

// symState is the symbolic machine state: one term per register plus the
// memory chain. It is copied by value at path forks.
type symState struct {
	regs [isa.NumRegs]*Term
	mem  *Term
}

func (st *symState) get(it *interner, r isa.Reg) *Term {
	if r == isa.R0 || !r.Valid() {
		return it.zero
	}
	return st.regs[r]
}

func (st *symState) set(r isa.Reg, t *Term) {
	if r == isa.R0 || !r.Valid() {
		return
	}
	st.regs[r] = t
}

// stepIns executes one non-terminator instruction symbolically, mirroring
// cpu.Machine.exec: integer ALU ops fold exactly, loads and stores go
// through the alias-aware chain, FP ops stay uninterpreted.
func stepIns(it *interner, st *symState, in prog.Ins) {
	if lop, ok := regImmLower(in.Op); ok {
		st.set(in.Rd, it.Op2(lop, st.get(it, in.Rs1), it.Const(in.Imm)))
		return
	}
	switch in.Op {
	case isa.NOP:
	case isa.LI:
		st.set(in.Rd, it.Const(in.Imm))
	case isa.LA:
		st.set(in.Rd, it.CodeAddr(in.BlockTarget, in.Target))
	case isa.LD, isa.FLD:
		addr := it.Op2(isa.ADD, st.get(it, in.Rs1), it.Const(in.Imm))
		st.set(in.Rd, it.Load(st.mem, addr))
	case isa.ST, isa.FST:
		addr := it.Op2(isa.ADD, st.get(it, in.Rs1), it.Const(in.Imm))
		st.mem = it.Store(st.mem, addr, st.get(it, in.Rs2))
	case isa.FCVTIF, isa.FCVTFI:
		st.set(in.Rd, it.Op1(in.Op, st.get(it, in.Rs1)))
	default:
		if intFoldable(in.Op) || in.Op == isa.FADD || in.Op == isa.FSUB ||
			in.Op == isa.FMUL || in.Op == isa.FDIV || in.Op == isa.FSLT {
			st.set(in.Rd, it.Op2(in.Op, st.get(it, in.Rs1), st.get(it, in.Rs2)))
			return
		}
		// Defensive: an opcode that should not appear mid-block. Model it
		// as an opaque operation so both versions diverge (or agree)
		// identically rather than crashing the prover.
		if in.Op.HasRd() {
			var a, b *Term
			if in.Op.HasRs1() {
				a = st.get(it, in.Rs1)
			} else {
				a = it.Const(in.Imm)
			}
			if in.Op.HasRs2() {
				b = st.get(it, in.Rs2)
			}
			st.set(in.Rd, it.mk(kOp, in.Op, a, b, it.Const(in.Imm), 0, nil))
		}
	}
}

// havoc forgets everything a call may change: every register (the callee
// has no ABI contract) and all of memory. Matching call positions on the
// two versions use the same sequence number, so their havocs unify.
func (st *symState) havoc(it *interner, seq int) {
	for _, r := range allRegs {
		st.regs[r] = it.Havoc(seq, r)
	}
	st.mem = it.MemHavoc(seq)
}

// canonBranch canonicalizes a conditional terminator to a base predicate
// (== or signed <) plus the sense connecting it to the taken arc. BNE and
// BGE negate the sense rather than the predicate, which is exactly how a
// layout-inverted branch collapses onto its original's term.
func canonBranch(it *interner, st *symState, v view) (pred *Term, takenIfTrue bool) {
	a, b := st.get(it, v.rs1), st.get(it, v.rs2)
	switch v.cmpOp {
	case isa.BEQ:
		return it.Pred(isa.BEQ, a, b), true
	case isa.BNE:
		return it.Pred(isa.BEQ, a, b), false
	case isa.BLT:
		return it.Pred(isa.BLT, a, b), true
	case isa.BGE:
		return it.Pred(isa.BLT, a, b), false
	}
	return it.zero, true // malformed CmpOp; prog.Verify rejects these upstream
}

// evKind classifies one observable path event.
type evKind uint8

const (
	evCall evKind = iota // call into a non-inlined function
	evRet                // return through RRA
	evHalt               // machine halt
	evJr                 // indirect jump
	evExit               // transfer to a block outside the package function
	evLoop               // path cut at the first block revisit
)

func (k evKind) String() string {
	switch k {
	case evCall:
		return "call"
	case evRet:
		return "ret"
	case evHalt:
		return "halt"
	case evJr:
		return "jr"
	case evExit:
		return "exit"
	case evLoop:
		return "loop"
	default:
		return fmt.Sprintf("ev?%d", uint8(k))
	}
}

// event is one observable point on a path. The comparator decides which
// registers matter per kind (everything for calls/returns/indirect jumps,
// the dummy-consumer set for exits, the reference live-in set for loop
// cuts, nothing for halts).
type event struct {
	kind     evKind
	callee   *prog.Func
	target   *prog.Block
	jr       *Term
	regs     [isa.NumRegs]*Term
	mem      *Term
	consumes []isa.Reg
}

// prover carries one package proof.
type prover struct {
	snap      *Snapshot
	cfg       Config
	it        *interner
	cert      *Certificate
	ce        *Counterexample
	exceeded  bool
	pathsDone int
	memo      map[*prog.Block]*replayNode
	refBuf    []event              // scratch for materialized replay sequences
	onPath    map[*prog.Block]bool // scratch for refRun cycle detection
}

func (pv *prover) entryState() symState {
	var st symState
	st.regs[0] = pv.it.zero
	for _, r := range allRegs {
		st.regs[r] = pv.it.Init(r)
	}
	st.mem = pv.it.MemInit()
	return st
}

// Prove checks the optimized package function against its snapshot and
// returns the certificate. A nil error means every enumerated path was
// proved (or, past the path budget, every differential trial agreed); a
// non-nil error is always an *Error matching ErrNotEquivalent, carrying
// the structured counterexample.
func Prove(snap *Snapshot, cfg Config) (*Certificate, error) {
	cfg = cfg.withDefaults()
	pv := &prover{snap: snap, cfg: cfg, it: newInterner()}
	pv.cert = &Certificate{Package: snap.name, Phase: snap.phase, Entries: len(snap.entries)}

	for _, entry := range snap.entries {
		w := &optWalker{
			pv:     pv,
			entry:  entry,
			onPath: make(map[*prog.Block]bool, 16),
			cons:   make(map[*Term]bool, 8),
		}
		if !w.walk(entry, pv.entryState(), 0) {
			break // counterexample found or budget exceeded
		}
	}
	pv.cert.PathsProved = pv.pathsDone
	pv.cert.BudgetExceeded = pv.exceeded
	if pv.ce == nil && pv.exceeded {
		pv.ce = pv.fuzz()
	}
	pv.cert.Terms = pv.it.size()
	pv.cert.Equivalent = pv.ce == nil
	if pv.ce != nil {
		return pv.cert, &Error{Package: snap.name, Cert: pv.cert, Counterexamples: []Counterexample{*pv.ce}}
	}
	return pv.cert, nil
}

// optWalker enumerates the optimized function's acyclic paths by DFS,
// forking at every undetermined branch and accumulating the fork
// decisions as predicate constraints.
type optWalker struct {
	pv        *prover
	entry     *prog.Block
	onPath    map[*prog.Block]bool
	trail     []string
	events    []event
	cons      map[*Term]bool
	consOrder []*Term
}

// walk explores from b with state st; it returns false when exploration
// must stop globally (counterexample or budget).
func (w *optWalker) walk(b *prog.Block, st symState, calls int) bool {
	evMark, trMark := len(w.events), len(w.trail)
	w.onPath[b] = true
	ok := w.walkBlock(b, st, calls)
	delete(w.onPath, b)
	w.events = w.events[:evMark]
	w.trail = w.trail[:trMark]
	return ok
}

func (w *optWalker) walkBlock(b *prog.Block, st symState, calls int) bool {
	pv := w.pv
	it := pv.it
	w.trail = append(w.trail, fmt.Sprintf("b%d", b.ID))
	v := liveView(b)
	for _, in := range v.insts {
		stepIns(it, &st, in)
	}
	switch v.kind {
	case prog.TermHalt:
		return w.finish(event{kind: evHalt, mem: st.mem})
	case prog.TermRet:
		return w.finish(event{kind: evRet, regs: st.regs, mem: st.mem})
	case prog.TermJumpReg:
		return w.finish(event{kind: evJr, jr: st.get(it, v.rs1), regs: st.regs, mem: st.mem})
	case prog.TermCall:
		ev := event{kind: evCall, callee: v.callee, regs: st.regs, mem: st.mem}
		ev.regs[isa.RRA] = it.CodeAddr(v.next, 0)
		w.events = append(w.events, ev)
		st.havoc(it, calls)
		calls++
		return w.transition(v.next, v, st, calls)
	case prog.TermFall:
		return w.transition(v.next, v, st, calls)
	case prog.TermBranch:
		pred, tif := canonBranch(it, &st, v)
		if pred.kind == kConst {
			to, suffix := v.next, "-"
			if (pred == it.one) == tif {
				to, suffix = v.taken, "+"
			}
			w.trail[len(w.trail)-1] += suffix
			return w.transition(to, v, st, calls)
		}
		if hold, decided := w.cons[pred]; decided {
			to, suffix := v.next, "-"
			if hold == tif {
				to, suffix = v.taken, "+"
			}
			w.trail[len(w.trail)-1] += suffix
			return w.transition(to, v, st, calls)
		}
		// Fork: taken side first, then fallthrough.
		base := w.trail[len(w.trail)-1]
		w.cons[pred] = tif
		w.consOrder = append(w.consOrder, pred)
		w.trail[len(w.trail)-1] = base + "+"
		if !w.transition(v.taken, v, st, calls) {
			delete(w.cons, pred)
			w.consOrder = w.consOrder[:len(w.consOrder)-1]
			return false
		}
		w.cons[pred] = !tif
		w.trail[len(w.trail)-1] = base + "-"
		ok := w.transition(v.next, v, st, calls)
		delete(w.cons, pred)
		w.consOrder = w.consOrder[:len(w.consOrder)-1]
		return ok
	}
	return w.finish(event{kind: evHalt, mem: st.mem}) // unreachable TermKind
}

// transition follows one arc out of the current block: an external target
// ends the path with an exit event, a block already on the path ends it
// with a loop-cut event, anything else recurses.
func (w *optWalker) transition(to *prog.Block, from view, st symState, calls int) bool {
	if to == nil || to.Fn != w.pv.snap.fn {
		return w.finish(event{kind: evExit, target: to, regs: st.regs, mem: st.mem, consumes: from.consumes})
	}
	if w.onPath[to] {
		return w.finish(event{kind: evLoop, target: to, regs: st.regs, mem: st.mem})
	}
	return w.walk(to, st, calls)
}

// finish completes one optimized path: replay the reference under the
// path's constraints and compare the event sequences.
func (w *optWalker) finish(terminal event) bool {
	pv := w.pv
	if pv.pathsDone >= pv.cfg.MaxPaths {
		pv.exceeded = true
		return false
	}
	w.events = append(w.events, terminal)
	// The terminal belongs to this completed path only; sibling forks in
	// the enclosing walkBlock frame reuse the shared events slice.
	defer func() { w.events = w.events[:len(w.events)-1] }()
	if n := len(w.trail); n > pv.cert.MaxPathBlocks {
		pv.cert.MaxPathBlocks = n
	}
	refEvents, ce := pv.replay(w.entry, w.cons)
	if ce == nil {
		ce = pv.compare(refEvents, w.events)
	}
	if ce != nil {
		ce.Package = pv.snap.name
		ce.Entry = w.entry.String()
		ce.Path = append([]string(nil), w.trail...)
		pv.attachWitness(ce, w.consOrder, w.cons)
		pv.ce = ce
		return false
	}
	pv.pathsDone++
	return true
}

// replayNode is one vertex of the per-entry reference-replay decision
// trie. Consecutive optimized paths differ only in their last few forks,
// so their reference replays share long prefixes; the trie caches the
// symbolic state at every symbolic branch and resumes from the deepest
// matching decision instead of re-executing the whole path. A node is
// either terminal (the replay ended: ownEvents completes the sequence,
// or ce records a constraint-independent structural failure) or a paused
// decision (execution stopped at branchBlk just before deciding pred).
// Each node stores only the events and blocks of its own segment and
// chains to its parent; replay materializes the full sequence into a
// reusable scratch buffer, so resuming allocates nothing proportional to
// the shared prefix.
type replayNode struct {
	parent     *replayNode
	ownEvents  []event         // events emitted by this segment
	ownBlocks  []*prog.Block   // blocks executed by this segment
	depth      int             // total blocks executed up to and including this segment
	ce         *Counterexample // structural failure; cacheable, independent of constraints
	pred       *Term           // nil when terminal
	tif        bool            // the taken arc is followed when pred holds
	taken      *prog.Block
	next       *prog.Block
	st         symState
	calls      int
	branchBlk  *prog.Block // for the unresolved-branch message
	branchCmp  isa.Opcode
	branchRs1  isa.Reg
	branchRs2  isa.Reg
	branchCons []isa.Reg // the branch block's exit-consume set
	t, f       *replayNode
}

// chainEvents materializes the node's full event sequence (root to node)
// into buf, reusing its capacity.
func (n *replayNode) chainEvents(buf []event) []event {
	if n == nil {
		return buf[:0]
	}
	buf = n.parent.chainEvents(buf)
	return append(buf, n.ownEvents...)
}

// replay executes the reference snapshot from entry, deciding every
// branch by constant folding or by the optimized path's constraints. An
// undecidable branch means the optimized version never evaluated this
// predicate — a dropped, retargeted or rewritten branch — and is itself a
// divergence. Replays are memoized in a decision trie keyed by the
// branch outcomes, so a path's reference run costs only its un-shared
// suffix. The returned slice is valid until the next replay call.
func (pv *prover) replay(entry *prog.Block, cons map[*Term]bool) ([]event, *Counterexample) {
	if pv.memo == nil {
		pv.memo = make(map[*prog.Block]*replayNode, len(pv.snap.entries))
	}
	node := pv.memo[entry]
	if node == nil {
		node = pv.refRun(nil, pv.entryState(), 0, entry, nil)
		pv.memo[entry] = node
	}
	for {
		if node.ce != nil {
			pv.refBuf = node.chainEvents(pv.refBuf)
			ce := *node.ce
			return pv.refBuf, &ce
		}
		if node.pred == nil {
			pv.refBuf = node.chainEvents(pv.refBuf)
			return pv.refBuf, nil
		}
		hold, decided := cons[node.pred]
		if !decided {
			pv.refBuf = node.chainEvents(pv.refBuf)
			return pv.refBuf, &Counterexample{
				Kind:    "unresolved-branch",
				RefTerm: node.pred.String(),
				Detail: fmt.Sprintf("reference branch at %s (%s %s, %s) was never decided by the optimized version",
					node.branchBlk, node.branchCmp, node.branchRs1, node.branchRs2),
			}
		}
		child := &node.f
		if hold {
			child = &node.t
		}
		if *child == nil {
			to := node.next
			if hold == node.tif {
				to = node.taken
			}
			*child = pv.refRun(node, node.st, node.calls, to, node.branchCons)
		}
		node = *child
	}
}

// refRun executes the reference from the arc leading to `to` until the
// replay terminates or pauses at a symbolic branch, returning the trie
// node for that segment (chained to parent). st must be private to this
// call (symState is a value; the caller's copy is not aliased).
func (pv *prover) refRun(parent *replayNode, st symState, calls int, to *prog.Block, fromConsumes []isa.Reg) *replayNode {
	it := pv.it
	if pv.onPath == nil {
		pv.onPath = make(map[*prog.Block]bool, 32)
	} else {
		clear(pv.onPath)
	}
	onPath := pv.onPath
	depth := 0
	for n := parent; n != nil; n = n.parent {
		for _, b := range n.ownBlocks {
			onPath[b] = true
		}
	}
	if parent != nil {
		depth = parent.depth
	}
	var ownEvents []event
	var ownBlocks []*prog.Block
	done := func(ev event) *replayNode {
		return &replayNode{parent: parent, ownEvents: append(ownEvents, ev),
			ownBlocks: ownBlocks, depth: depth}
	}
	for {
		if to == nil || to.Fn != pv.snap.fn {
			return done(event{kind: evExit, target: to, regs: st.regs, mem: st.mem, consumes: fromConsumes})
		}
		if onPath[to] {
			return done(event{kind: evLoop, target: to, regs: st.regs, mem: st.mem})
		}
		b := to
		if depth > len(pv.snap.fn.Blocks)+1 {
			return &replayNode{parent: parent, ownEvents: ownEvents, ownBlocks: ownBlocks, depth: depth,
				ce: &Counterexample{
					Kind:   "event-shape",
					Detail: fmt.Sprintf("reference replay exceeded %d blocks without a path cut", depth),
				}}
		}
		onPath[b] = true
		ownBlocks = append(ownBlocks, b)
		depth++
		v, ok := pv.snap.refView(b)
		if !ok {
			return &replayNode{parent: parent, ownEvents: ownEvents, ownBlocks: ownBlocks, depth: depth,
				ce: &Counterexample{
					Kind:   "event-shape",
					Detail: fmt.Sprintf("reference replay reached %s, which is not in the pre-optimization snapshot", b),
				}}
		}
		for _, in := range v.insts {
			stepIns(it, &st, in)
		}
		switch v.kind {
		case prog.TermHalt:
			return done(event{kind: evHalt, mem: st.mem})
		case prog.TermRet:
			return done(event{kind: evRet, regs: st.regs, mem: st.mem})
		case prog.TermJumpReg:
			return done(event{kind: evJr, jr: st.get(it, v.rs1), regs: st.regs, mem: st.mem})
		case prog.TermCall:
			ev := event{kind: evCall, callee: v.callee, regs: st.regs, mem: st.mem}
			ev.regs[isa.RRA] = it.CodeAddr(v.next, 0)
			ownEvents = append(ownEvents, ev)
			st.havoc(it, calls)
			calls++
			to = v.next
		case prog.TermFall:
			to = v.next
		case prog.TermBranch:
			pred, tif := canonBranch(it, &st, v)
			if pred.kind != kConst {
				return &replayNode{
					parent: parent, ownEvents: ownEvents, ownBlocks: ownBlocks, depth: depth,
					pred: pred, tif: tif,
					taken: v.taken, next: v.next,
					st: st, calls: calls,
					branchBlk: b, branchCmp: v.cmpOp, branchRs1: v.rs1, branchRs2: v.rs2,
					branchCons: v.consumes,
				}
			}
			if (pred == it.one) == tif {
				to = v.taken
			} else {
				to = v.next
			}
		}
		fromConsumes = v.consumes
	}
}

// compare checks two event sequences for observational equality. The
// reference event picks the live set: the exiting block's dummy-consumer
// registers for exits (everything when the set is absent, mirroring
// prog.ComputeLiveness's treatment), the reference live-in set at loop
// cuts, every register at calls, returns and indirect jumps.
func (pv *prover) compare(ref, opt []event) *Counterexample {
	n := len(ref)
	if len(opt) < n {
		n = len(opt)
	}
	for i := 0; i < n; i++ {
		re, oe := &ref[i], &opt[i]
		if re.kind != oe.kind {
			return &Counterexample{
				Kind:    "event-shape",
				RefTerm: re.kind.String(),
				OptTerm: oe.kind.String(),
				Detail:  fmt.Sprintf("observable event %d differs in kind", i),
			}
		}
		switch re.kind {
		case evCall:
			if re.callee != oe.callee {
				rn, on := "<nil>", "<nil>"
				if re.callee != nil {
					rn = re.callee.Name
				}
				if oe.callee != nil {
					on = oe.callee.Name
				}
				return &Counterexample{Kind: "callee", RefTerm: rn, OptTerm: on,
					Detail: fmt.Sprintf("call event %d targets different functions", i)}
			}
			if re.regs[isa.RRA] != oe.regs[isa.RRA] {
				return &Counterexample{Kind: "return-address",
					RefTerm: re.regs[isa.RRA].String(), OptTerm: oe.regs[isa.RRA].String(),
					refT: re.regs[isa.RRA], optT: oe.regs[isa.RRA],
					Detail: fmt.Sprintf("call event %d resumes at different blocks", i)}
			}
			if ce := cmpRegs(re, oe, allRegs, i); ce != nil {
				return ce
			}
			if ce := cmpMem(re, oe, i); ce != nil {
				return ce
			}
		case evRet:
			if ce := cmpRegs(re, oe, allRegs, i); ce != nil {
				return ce
			}
			if ce := cmpMem(re, oe, i); ce != nil {
				return ce
			}
		case evJr:
			if re.jr != oe.jr {
				return &Counterexample{Kind: "jump-target",
					RefTerm: re.jr.String(), OptTerm: oe.jr.String(),
					refT: re.jr, optT: oe.jr,
					Detail: fmt.Sprintf("indirect jump event %d targets differ", i)}
			}
			if ce := cmpRegs(re, oe, allRegs, i); ce != nil {
				return ce
			}
			if ce := cmpMem(re, oe, i); ce != nil {
				return ce
			}
		case evHalt:
			if ce := cmpMem(re, oe, i); ce != nil {
				return ce
			}
		case evExit:
			if re.target != oe.target {
				return &Counterexample{Kind: "exit-target",
					RefTerm: re.target.String(), OptTerm: oe.target.String(),
					Detail: fmt.Sprintf("exit event %d transfers to different original blocks", i)}
			}
			live := allRegs
			if len(re.consumes) > 0 {
				live = re.consumes
			}
			if ce := cmpRegs(re, oe, live, i); ce != nil {
				return ce
			}
			if ce := cmpMem(re, oe, i); ce != nil {
				return ce
			}
		case evLoop:
			if re.target != oe.target {
				return &Counterexample{Kind: "loop-point",
					RefTerm: re.target.String(), OptTerm: oe.target.String(),
					Detail: fmt.Sprintf("loop cut %d revisits different blocks", i)}
			}
			var live []isa.Reg
			for _, r := range allRegs {
				if pv.snap.liveIn[re.target].Has(r) {
					live = append(live, r)
				}
			}
			if ce := cmpRegs(re, oe, live, i); ce != nil {
				return ce
			}
			if ce := cmpMem(re, oe, i); ce != nil {
				return ce
			}
		}
	}
	if len(ref) != len(opt) {
		return &Counterexample{
			Kind:    "event-shape",
			RefTerm: fmt.Sprintf("%d events", len(ref)),
			OptTerm: fmt.Sprintf("%d events", len(opt)),
			Detail:  "the versions perform different numbers of observable events",
		}
	}
	return nil
}

func cmpRegs(re, oe *event, live []isa.Reg, i int) *Counterexample {
	for _, r := range live {
		if r == isa.R0 {
			continue
		}
		if re.regs[r] != oe.regs[r] {
			return &Counterexample{Kind: "reg", Reg: r.String(),
				RefTerm: re.regs[r].String(), OptTerm: oe.regs[r].String(),
				refT: re.regs[r], optT: oe.regs[r],
				Detail: fmt.Sprintf("live-out register diverges at %s event %d", re.kind, i)}
		}
	}
	return nil
}

func cmpMem(re, oe *event, i int) *Counterexample {
	if re.mem != oe.mem {
		return &Counterexample{Kind: "mem",
			RefTerm: re.mem.String(), OptTerm: oe.mem.String(),
			refT: re.mem, optT: oe.mem,
			Detail: fmt.Sprintf("memory effect chain diverges at %s event %d", re.kind, i)}
	}
	return nil
}
