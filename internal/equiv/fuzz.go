package equiv

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Bounded differential execution: the fallback regime when symbolic path
// enumeration exceeds its budget. Both versions are run concretely from
// every entry under the same pseudo-random initial state, loops and all,
// and their observable event streams are compared. Unlike the symbolic
// regime this cannot prove equivalence — it covers only the executed
// paths — but it is immune to path explosion and still catches drift; the
// certificate records the fallback so callers can see which packages are
// proved and which are merely fuzzed.

// cstate is the concrete machine state of one differential run. All 48
// registers live in one int64 array with FP values held as their IEEE
// bits (exactly how FLD/FST move them); memory is sparse with unwritten
// words defaulting to a deterministic function of the address and the
// current havoc epoch.
type cstate struct {
	seed  int64
	epoch int64
	regs  [isa.NumRegs]int64
	mem   map[int64]int64
	sum   int64 // incremental XOR digest of mix(addr, val) over mem
}

func (st *cstate) get(r isa.Reg) int64 {
	if r == isa.R0 || !r.Valid() {
		return 0
	}
	return st.regs[r]
}

func (st *cstate) set(r isa.Reg, v int64) {
	if r == isa.R0 || !r.Valid() {
		return
	}
	st.regs[r] = v
}

func (st *cstate) load(addr int64) int64 {
	if v, ok := st.mem[addr]; ok {
		return v
	}
	return mix(st.seed, 50+st.epoch, addr)
}

func (st *cstate) store(addr, v int64) {
	if old, ok := st.mem[addr]; ok {
		st.sum ^= mix(addr, old)
	}
	st.sum ^= mix(addr, v)
	st.mem[addr] = v
}

// memSum is an order-independent digest of the written words plus the
// havoc epoch: two memories with the same digest read identically at
// every address under this model. The digest is maintained incrementally
// by store, so reading it is O(1).
func (st *cstate) memSum() int64 {
	return st.sum ^ mix(60, st.epoch)
}

// cevent is one observable event of a concrete run, the differential twin
// of event.
type cevent struct {
	kind     evKind
	callee   *prog.Func
	target   *prog.Block
	jr       int64
	regs     [isa.NumRegs]int64
	memSum   int64
	consumes []isa.Reg
}

// cstep executes one non-terminator instruction with the machine's exact
// semantics (integer ops via foldInt, FP via IEEE bits, FDIV by zero
// yielding 0).
func cstep(st *cstate, in prog.Ins) {
	if lop, ok := regImmLower(in.Op); ok {
		st.set(in.Rd, foldInt(lop, st.get(in.Rs1), in.Imm))
		return
	}
	switch in.Op {
	case isa.NOP:
	case isa.LI:
		st.set(in.Rd, in.Imm)
	case isa.LA:
		st.set(in.Rd, codeAddrVal(in.BlockTarget, in.Target))
	case isa.LD, isa.FLD:
		st.set(in.Rd, st.load(st.get(in.Rs1)+in.Imm))
	case isa.ST, isa.FST:
		st.store(st.get(in.Rs1)+in.Imm, st.get(in.Rs2))
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		a := math.Float64frombits(uint64(st.get(in.Rs1)))
		b := math.Float64frombits(uint64(st.get(in.Rs2)))
		var r float64
		switch in.Op {
		case isa.FADD:
			r = a + b
		case isa.FSUB:
			r = a - b
		case isa.FMUL:
			r = a * b
		case isa.FDIV:
			if b != 0 {
				r = a / b
			}
		}
		st.set(in.Rd, int64(math.Float64bits(r)))
	case isa.FSLT:
		a := math.Float64frombits(uint64(st.get(in.Rs1)))
		b := math.Float64frombits(uint64(st.get(in.Rs2)))
		if a < b {
			st.set(in.Rd, 1)
		} else {
			st.set(in.Rd, 0)
		}
	case isa.FCVTIF:
		st.set(in.Rd, int64(math.Float64bits(float64(st.get(in.Rs1)))))
	case isa.FCVTFI:
		st.set(in.Rd, int64(math.Float64frombits(uint64(st.get(in.Rs1)))))
	default:
		if intFoldable(in.Op) {
			st.set(in.Rd, foldInt(in.Op, st.get(in.Rs1), st.get(in.Rs2)))
		} else if in.Op.HasRd() {
			st.set(in.Rd, mix(6, int64(in.Op), st.get(in.Rs1), in.Imm))
		}
	}
}

// crun executes one version (ref selects the snapshot) from entry under
// trial's initial state. It returns the event stream and whether the run
// reached a terminal event before exhausting the step budget.
func (pv *prover) crun(entry *prog.Block, trial int, ref bool) ([]cevent, bool) {
	seed := int64(trial)*0x9e37 + 1
	st := &cstate{seed: seed, mem: make(map[int64]int64, 32)}
	for _, r := range allRegs {
		st.regs[r] = initFor(trial, r)
	}
	var events []cevent
	b := entry
	calls := int64(0)
	for steps := 0; steps < pv.cfg.FuzzSteps; steps++ {
		var v view
		if ref {
			var ok bool
			if v, ok = pv.snap.refView(b); !ok {
				// The reference can only leave the snapshot through an exit
				// arc; record it as such defensively.
				return append(events, cevent{kind: evExit, target: b, regs: st.regs, memSum: st.memSum()}), true
			}
		} else {
			v = liveView(b)
		}
		for _, in := range v.insts {
			cstep(st, in)
		}
		var to *prog.Block
		switch v.kind {
		case prog.TermHalt:
			return append(events, cevent{kind: evHalt, memSum: st.memSum()}), true
		case prog.TermRet:
			return append(events, cevent{kind: evRet, regs: st.regs, memSum: st.memSum()}), true
		case prog.TermJumpReg:
			return append(events, cevent{kind: evJr, jr: st.get(v.rs1), regs: st.regs, memSum: st.memSum()}), true
		case prog.TermCall:
			ev := cevent{kind: evCall, callee: v.callee, regs: st.regs, memSum: st.memSum()}
			ev.regs[isa.RRA] = codeAddrVal(v.next, 0)
			events = append(events, ev)
			for _, r := range allRegs {
				st.regs[r] = mix(seed, 100+calls, int64(r))
			}
			st.mem = make(map[int64]int64, 32)
			st.sum = 0
			st.epoch = calls + 1
			calls++
			to = v.next
		case prog.TermFall:
			to = v.next
		case prog.TermBranch:
			a, c := st.get(v.rs1), st.get(v.rs2)
			taken := false
			switch v.cmpOp {
			case isa.BEQ:
				taken = a == c
			case isa.BNE:
				taken = a != c
			case isa.BLT:
				taken = a < c
			case isa.BGE:
				taken = a >= c
			}
			if taken {
				to = v.taken
			} else {
				to = v.next
			}
		}
		if to == nil || to.Fn != pv.snap.fn {
			return append(events, cevent{kind: evExit, target: to, regs: st.regs, memSum: st.memSum(), consumes: v.consumes}), true
		}
		b = to
	}
	return events, false
}

// fuzz runs the differential trials over every entry and returns the
// first divergence, or nil when all trials agree.
func (pv *prover) fuzz() *Counterexample {
	for trial := 0; trial < pv.cfg.FuzzTrials; trial++ {
		for _, entry := range pv.snap.entries {
			pv.cert.PathsFuzzed++
			refEvents, refDone := pv.crun(entry, trial, true)
			optEvents, optDone := pv.crun(entry, trial, false)
			if ce := pv.ccompare(refEvents, refDone, optEvents, optDone); ce != nil {
				ce.Package = pv.snap.name
				ce.Entry = entry.String()
				ce.Kind = "fuzz"
				ce.Witness = fmt.Sprintf("differential trial %d", trial)
				return ce
			}
		}
	}
	return nil
}

// ccompare checks two concrete event streams. When either side ran out of
// step budget only the common prefix is comparable; trailing differences
// are not evidence either way and are accepted.
func (pv *prover) ccompare(ref []cevent, refDone bool, opt []cevent, optDone bool) *Counterexample {
	n := len(ref)
	if len(opt) < n {
		n = len(opt)
	}
	for i := 0; i < n; i++ {
		re, oe := &ref[i], &opt[i]
		if re.kind != oe.kind {
			return &Counterexample{RefTerm: re.kind.String(), OptTerm: oe.kind.String(),
				Detail: fmt.Sprintf("concrete event %d differs in kind", i)}
		}
		switch re.kind {
		case evCall:
			if re.callee != oe.callee {
				return &Counterexample{Detail: fmt.Sprintf("concrete call event %d targets different functions", i)}
			}
		case evExit:
			if re.target != oe.target {
				return &Counterexample{Detail: fmt.Sprintf("concrete exit event %d transfers to different blocks", i)}
			}
		case evJr:
			if re.jr != oe.jr {
				return &Counterexample{RefTerm: fmt.Sprint(re.jr), OptTerm: fmt.Sprint(oe.jr),
					Detail: fmt.Sprintf("concrete indirect-jump target differs at event %d", i)}
			}
		}
		live := allRegs
		switch re.kind {
		case evHalt:
			live = nil
		case evExit:
			if len(re.consumes) > 0 {
				live = re.consumes
			}
		}
		for _, r := range live {
			if r == isa.R0 {
				continue
			}
			if re.regs[r] != oe.regs[r] {
				return &Counterexample{Reg: r.String(),
					RefTerm: fmt.Sprint(re.regs[r]), OptTerm: fmt.Sprint(oe.regs[r]),
					Detail: fmt.Sprintf("concrete register divergence at %s event %d", re.kind, i)}
			}
		}
		if re.memSum != oe.memSum {
			return &Counterexample{Detail: fmt.Sprintf("concrete memory divergence at %s event %d", re.kind, i)}
		}
	}
	if refDone && optDone && len(ref) != len(opt) {
		return &Counterexample{RefTerm: fmt.Sprintf("%d events", len(ref)), OptTerm: fmt.Sprintf("%d events", len(opt)),
			Detail: "concrete runs perform different numbers of observable events"}
	}
	return nil
}
