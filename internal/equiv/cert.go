package equiv

import (
	"errors"
	"fmt"
	"strings"
)

// ErrNotEquivalent is the sentinel every refutation matches. core
// re-exports it as core.ErrNotEquivalent; match with errors.Is — the
// concrete error is always an *Error carrying the counterexamples.
var ErrNotEquivalent = errors.New("translation validation failed: optimized package is not equivalent to its region code")

// Certificate summarizes one package's translation-validation outcome.
// It is attached to opt.PassRecord and serialized into PackageSet
// artifacts, so a served package set carries its own proof metadata.
type Certificate struct {
	// Package is the package function's name; Phase the detected phase it
	// specializes.
	Package string `json:"package"`
	Phase   int    `json:"phase"`
	// Entries counts the proof's entry points: launch targets, linked-exit
	// targets and address-taken blocks, each proved under an arbitrary
	// machine state.
	Entries int `json:"entries"`
	// PathsProved counts acyclic paths whose observable effects were
	// proved term-equal. PathsFuzzed counts bounded differential-execution
	// trials run when the symbolic path budget was exceeded.
	PathsProved int `json:"paths_proved"`
	PathsFuzzed int `json:"paths_fuzzed,omitempty"`
	// BudgetExceeded reports that path enumeration hit Config.MaxPaths and
	// the uncovered paths were only fuzzed, not proved.
	BudgetExceeded bool `json:"budget_exceeded,omitempty"`
	// Terms is the size of the proof's interned term DAG; MaxPathBlocks
	// the longest path explored, in blocks.
	Terms         int `json:"terms"`
	MaxPathBlocks int `json:"max_path_blocks,omitempty"`
	// Equivalent reports the verdict. False means a counterexample was
	// found; the Prove error carries it.
	Equivalent bool `json:"equivalent"`
}

// Verdict renders a one-line human-readable summary.
func (c *Certificate) Verdict() string {
	state := "EQUIVALENT"
	if !c.Equivalent {
		state = "NOT EQUIVALENT"
	}
	mode := "proved"
	if c.BudgetExceeded {
		mode = "budget exceeded"
	}
	return fmt.Sprintf("%s phase=%d %s: %d entries, %d paths proved (%s), %d fuzz trials, %d terms",
		c.Package, c.Phase, state, c.Entries, c.PathsProved, mode, c.PathsFuzzed, c.Terms)
}

// Counterexample is one structured refutation: the path along which the
// two versions diverge and what diverged there.
type Counterexample struct {
	// Package and Entry locate the proof; Path lists the optimized
	// version's blocks with the branch decision taken at each ("b12+"
	// taken, "b12-" fallthrough, "b7" unconditional).
	Package string   `json:"package"`
	Entry   string   `json:"entry"`
	Path    []string `json:"path,omitempty"`
	// Kind classifies the divergence: "reg" (live-out register term),
	// "mem" (memory effect chain), "exit-target", "loop-point", "callee",
	// "return-address", "jump-target", "event-shape" (one version performs
	// more observable events than the other), "unresolved-branch" (the
	// reference takes a branch the optimized version never decided — a
	// dropped or retargeted branch), or "fuzz" (differential execution
	// divergence).
	Kind string `json:"kind"`
	// Reg names the diverging register for Kind "reg".
	Reg string `json:"reg,omitempty"`
	// RefTerm and OptTerm render the diverging terms (or event shapes)
	// for the reference and optimized versions.
	RefTerm string `json:"ref,omitempty"`
	OptTerm string `json:"opt,omitempty"`
	// Witness, when non-empty, is a concrete entry state (register
	// assignments) satisfying the path constraints under which the two
	// terms evaluate differently in the term model.
	Witness string `json:"witness,omitempty"`
	// Detail is a free-form human-readable explanation.
	Detail string `json:"detail,omitempty"`

	// refT and optT hold the diverging term nodes for witness search; they
	// are proof-internal and never serialized.
	refT, optT *Term
}

func (ce *Counterexample) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s divergence", ce.Package, ce.Kind)
	if ce.Entry != "" {
		fmt.Fprintf(&sb, " from entry %s", ce.Entry)
	}
	if len(ce.Path) > 0 {
		fmt.Fprintf(&sb, " along %s", strings.Join(ce.Path, " "))
	}
	if ce.Reg != "" {
		fmt.Fprintf(&sb, ": %s", ce.Reg)
	}
	if ce.RefTerm != "" || ce.OptTerm != "" {
		fmt.Fprintf(&sb, ": ref %s vs opt %s", ce.RefTerm, ce.OptTerm)
	}
	if ce.Detail != "" {
		fmt.Fprintf(&sb, " (%s)", ce.Detail)
	}
	if ce.Witness != "" {
		fmt.Fprintf(&sb, " [witness: %s]", ce.Witness)
	}
	return sb.String()
}

// Error is a refutation: the package is not observationally equivalent to
// its region code. It matches ErrNotEquivalent under errors.Is.
type Error struct {
	Package         string
	Cert            *Certificate
	Counterexamples []Counterexample
}

func (e *Error) Error() string {
	if len(e.Counterexamples) == 0 {
		return fmt.Sprintf("equiv: package %s is not equivalent", e.Package)
	}
	return fmt.Sprintf("equiv: package %s is not equivalent: %s", e.Package, e.Counterexamples[0].String())
}

// Is makes errors.Is(err, ErrNotEquivalent) — and through the core
// re-export, errors.Is(err, core.ErrNotEquivalent) — match any
// refutation.
func (e *Error) Is(target error) bool { return target == ErrNotEquivalent }

// Counterexamples extracts the structured counterexamples from any error
// in err's chain, or nil.
func Counterexamples(err error) []Counterexample {
	var e *Error
	if errors.As(err, &e) {
		return e.Counterexamples
	}
	return nil
}
