package equiv_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/workload"
)

// The mutation corpus: each entry injects one distinct semantic bug into
// an optimized package — the kinds of miscompiles a broken opt pass would
// produce — and the test asserts translation validation rejects every one
// with a usable counterexample. Mutations are applied through aliased
// slices and terminator fields on purpose: the injected bugs are exactly
// the in-place block mutations a pass performs.

// target is one package prepared for mutation: snapshotted pre-opt, then
// run through the real pass stack.
type target struct {
	fn   *prog.Func
	snap *equiv.Snapshot
}

// buildTargets constructs a freshly packed program (each call builds from
// scratch — mutations destroy the program they are applied to) and
// returns its packages with pre-optimization snapshots, after applying
// the full real pass stack (merge, sink, layout, schedule).
func buildTargets(t *testing.T) []*target {
	t.Helper()
	b, err := workload.ByName("perl")
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.InputByName("A")
	if err != nil {
		t.Fatal(err)
	}
	in.Scale = 1
	p := b.Build(in)
	cfg := core.ScaledConfig()
	// Passes run manually below, between capture and proof.
	cfg.EnableMerge, cfg.EnableSink, cfg.EnableLayout, cfg.EnableSchedule = false, false, false, false
	out, err := core.Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	regByPhase := make(map[int]*region.Region, len(out.Regions))
	for _, r := range out.Regions {
		regByPhase[r.PhaseID] = r
	}
	var targets []*target
	for _, pk := range out.Pack.Packages {
		r := regByPhase[pk.PhaseID]
		if r == nil {
			continue
		}
		entries := make([]*prog.Block, 0, len(pk.Entries))
		for _, c := range pk.Entries {
			entries = append(entries, c)
		}
		snap := equiv.Capture(out.Packed, pk.Fn, entries)
		ps := opt.Passes{
			Merge: true, Sink: true, Layout: true, Schedule: true,
			Sched: cfg.Sched, EntrySeedWeight: cfg.EntrySeedWeight,
		}
		if err := opt.ApplyPasses(ps, out.Packed, pk.Fn, entries, r, obs.Nop{}); err != nil {
			t.Fatal(err)
		}
		targets = append(targets, &target{fn: pk.Fn, snap: snap})
	}
	if len(targets) == 0 {
		t.Fatal("workload built no packages")
	}
	return targets
}

// site identifies one mutation candidate inside a function.
type site struct {
	b *prog.Block
	i int // instruction index, -1 for terminator-level mutations
}

// instSites collects every instruction matching pred, in layout order.
func instSites(fn *prog.Func, pred func(b *prog.Block, i int) bool) []site {
	var out []site
	for _, b := range fn.Blocks {
		for i := range b.Insts {
			if pred(b, i) {
				out = append(out, site{b, i})
			}
		}
	}
	return out
}

// blockSites collects every block matching pred.
func blockSites(fn *prog.Func, pred func(b *prog.Block) bool) []site {
	var out []site
	for _, b := range fn.Blocks {
		if pred(b) {
			out = append(out, site{b, -1})
		}
	}
	return out
}

// nopOut replaces one instruction with a NOP through an aliased slice
// (deleting it without reshaping the block).
func nopOut(b *prog.Block, i int) {
	ins := b.Insts
	ins[i] = prog.Ins{Inst: isa.Inst{Op: isa.NOP}}
}

func isIntALU(op isa.Opcode) bool {
	switch op {
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
		isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SEQ:
		return true
	}
	return false
}

// mutation is one corpus entry: sites enumerates candidates in a
// function; apply injects the bug at one of them.
type mutation struct {
	name  string
	sites func(fn *prog.Func) []site
	apply func(s site)
}

var mutations = []mutation{
	{
		// A pass swaps a non-commutative operation's operands (the classic
		// wrong-operand-after-rewrite bug).
		name: "wrong-operand-swap",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				in := b.Insts[i]
				switch in.Op {
				case isa.SUB, isa.DIV, isa.REM, isa.SHL, isa.SHR, isa.SLT:
					return in.Rs1 != in.Rs2
				}
				return false
			})
		},
		apply: func(s site) {
			ins := s.b.Insts
			ins[s.i].Rs1, ins[s.i].Rs2 = ins[s.i].Rs2, ins[s.i].Rs1
		},
	},
	{
		// A store silently dropped from the schedule.
		name: "dropped-store",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				op := b.Insts[i].Op
				return op == isa.ST || op == isa.FST
			})
		},
		apply: func(s site) { nopOut(s.b, s.i) },
	},
	{
		// A live ALU instruction dropped.
		name: "dropped-alu",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				in := b.Insts[i]
				return isIntALU(in.Op) && in.Rd != isa.R0
			})
		},
		apply: func(s site) { nopOut(s.b, s.i) },
	},
	{
		// A load displaced by one word (bad address rewrite).
		name: "load-offset-off-by-8",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				op := b.Insts[i].Op
				return op == isa.LD || op == isa.FLD
			})
		},
		apply: func(s site) { s.b.Insts[s.i].Imm += 8 },
	},
	{
		// A constant materialization off by one.
		name: "wrong-immediate",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				return b.Insts[i].Op == isa.LI
			})
		},
		apply: func(s site) { s.b.Insts[s.i].Imm++ },
	},
	{
		// Store with its address and value registers exchanged.
		name: "swapped-store-operands",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				in := b.Insts[i]
				return in.Op == isa.ST && in.Rs1 != in.Rs2
			})
		},
		apply: func(s site) {
			ins := s.b.Insts
			ins[s.i].Rs1, ins[s.i].Rs2 = ins[s.i].Rs2, ins[s.i].Rs1
		},
	},
	{
		// A store duplicated at block end after its value register was
		// redefined — the duplicate writes the wrong (newer) value. Falls
		// back to a stray store one cache line away when no such site
		// exists.
		name: "duplicated-store",
		sites: func(fn *prog.Func) []site {
			redef := instSites(fn, func(b *prog.Block, i int) bool {
				in := b.Insts[i]
				if in.Op != isa.ST {
					return false
				}
				for j := i + 1; j < len(b.Insts); j++ {
					if d, ok := b.Insts[j].Defs(); ok && d == in.Rs2 {
						return true
					}
				}
				return false
			})
			if len(redef) > 0 {
				return redef
			}
			return instSites(fn, func(b *prog.Block, i int) bool {
				return b.Insts[i].Op == isa.ST
			})
		},
		apply: func(s site) {
			dup := s.b.Insts[s.i]
			for j := s.i + 1; j < len(s.b.Insts); j++ {
				if d, ok := s.b.Insts[j].Defs(); ok && d == dup.Rs2 {
					s.b.Append(dup)
					return
				}
			}
			dup.Imm += 64
			s.b.Append(dup)
		},
	},
	{
		// Two RAW-dependent instructions reordered (illegal schedule).
		name: "raw-reorder",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				if i+1 >= len(b.Insts) {
					return false
				}
				d, ok := b.Insts[i].Defs()
				if !ok {
					return false
				}
				for _, u := range b.Insts[i+1].Uses(nil) {
					if u == d {
						return true
					}
				}
				return false
			})
		},
		apply: func(s site) {
			ins := s.b.Insts
			ins[s.i], ins[s.i+1] = ins[s.i+1], ins[s.i]
		},
	},
	{
		// An extra instruction clobbering a register the exit stub hands
		// back to original code.
		name: "clobbered-live-reg",
		sites: func(fn *prog.Func) []site {
			return blockSites(fn, func(b *prog.Block) bool {
				return len(b.ExitConsumes) > 0 && b.ExitConsumes[0] != isa.R0
			})
		},
		apply: func(s site) {
			s.b.Append(prog.Ins{Inst: isa.Inst{Op: isa.LI, Rd: s.b.ExitConsumes[0], Imm: 1234567}})
		},
	},
	{
		// A "sink" of an instruction past a use of its result (illegal
		// code motion): the def is removed from its slot and re-appended
		// to a successor block, so the intervening uses read stale data.
		name: "bogus-sink",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				if b.Kind != prog.TermBranch || b.Taken == nil || b.Taken.Fn != fn {
					return false
				}
				in := b.Insts[i]
				if !isIntALU(in.Op) || in.Rd == isa.R0 {
					return false
				}
				for j := i + 1; j < len(b.Insts); j++ {
					for _, u := range b.Insts[j].Uses(nil) {
						if u == in.Rd {
							return true
						}
					}
					if d, ok := b.Insts[j].Defs(); ok && d == in.Rd {
						return false
					}
				}
				return false
			})
		},
		apply: func(s site) {
			moved := s.b.Insts[s.i]
			nopOut(s.b, s.i)
			s.b.Taken.Append(moved)
		},
	},
	{
		// Branch sense inverted without swapping the arcs.
		name: "inverted-branch-sense",
		sites: func(fn *prog.Func) []site {
			return blockSites(fn, func(b *prog.Block) bool { return b.Kind == prog.TermBranch })
		},
		apply: func(s site) {
			switch s.b.CmpOp {
			case isa.BEQ:
				s.b.CmpOp = isa.BNE
			case isa.BNE:
				s.b.CmpOp = isa.BEQ
			case isa.BLT:
				s.b.CmpOp = isa.BGE
			case isa.BGE:
				s.b.CmpOp = isa.BLT
			}
		},
	},
	{
		// Branch arcs swapped without inverting the sense.
		name: "swapped-branch-arcs",
		sites: func(fn *prog.Func) []site {
			return blockSites(fn, func(b *prog.Block) bool {
				return b.Kind == prog.TermBranch && b.Taken != b.Next
			})
		},
		apply: func(s site) { s.b.Taken, s.b.Next = s.b.Next, s.b.Taken },
	},
	{
		// Branch comparing the wrong register.
		name: "branch-operand-register",
		sites: func(fn *prog.Func) []site {
			return blockSites(fn, func(b *prog.Block) bool { return b.Kind == prog.TermBranch })
		},
		apply: func(s site) {
			r := isa.Reg(5)
			if s.b.Rs1 == r {
				r = 6
			}
			s.b.Rs1 = r
		},
	},
	{
		// An intra-function arc rewired to skip a block (lost its
		// effects). Candidates are fall or branch fallthrough arcs whose
		// target carries instructions; the skipped block keeps an arc of
		// its own to land on.
		name: "skipped-block-arc",
		sites: func(fn *prog.Func) []site {
			return blockSites(fn, func(b *prog.Block) bool {
				c := b.Next
				return (b.Kind == prog.TermFall || b.Kind == prog.TermBranch) &&
					c != nil && c.Fn == fn && c != b &&
					(c.Kind == prog.TermFall || c.Kind == prog.TermBranch) &&
					c.Next != nil && c.Next != b && len(c.Insts) > 0
			})
		},
		apply: func(s site) { s.b.Next = s.b.Next.Next },
	},
	{
		// An exit arc retargeted at a different original block.
		name: "retargeted-exit",
		sites: func(fn *prog.Func) []site {
			exits := blockSites(fn, func(b *prog.Block) bool {
				return b.Kind == prog.TermFall && b.Next != nil && b.Next.Fn != fn
			})
			// Need a second, distinct external target to rewire to.
			var out []site
			for _, s := range exits {
				for _, o := range exits {
					if o.b.Next != s.b.Next {
						out = append(out, s)
						break
					}
				}
			}
			return out
		},
		apply: func(s site) {
			for _, b := range s.b.Fn.Blocks {
				if b.Kind == prog.TermFall && b.Next != nil && b.Next.Fn != s.b.Fn && b.Next != s.b.Next {
					s.b.Next = b.Next
					return
				}
			}
		},
	},
	{
		// An LA materializing the wrong block address (bad launch stub).
		name: "la-retarget",
		sites: func(fn *prog.Func) []site {
			return instSites(fn, func(b *prog.Block, i int) bool {
				bt := b.Insts[i].BlockTarget
				return b.Insts[i].Op == isa.LA && bt != nil
			})
		},
		apply: func(s site) {
			ins := s.b.Insts
			old := ins[s.i].BlockTarget
			for _, b := range old.Fn.Blocks {
				if b != old {
					ins[s.i].BlockTarget = b
					return
				}
			}
		},
	},
	{
		// A return terminator degraded to a halt.
		name: "ret-to-halt",
		sites: func(fn *prog.Func) []site {
			return blockSites(fn, func(b *prog.Block) bool { return b.Kind == prog.TermRet })
		},
		apply: func(s site) { s.b.Kind = prog.TermHalt },
	},
}

func TestMutationCorpus(t *testing.T) {
	if len(mutations) < 15 {
		t.Fatalf("corpus has %d mutations, want >= 15", len(mutations))
	}
	for _, m := range mutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			const maxSites = 40
			for siteIdx := 0; siteIdx < maxSites; siteIdx++ {
				// Fresh build per attempt: a mutated program is spent.
				targets := buildTargets(t)
				var tg *target
				var st site
				rem := siteIdx
				for _, cand := range targets {
					ss := m.sites(cand.fn)
					if rem < len(ss) {
						tg, st = cand, ss[rem]
						break
					}
					rem -= len(ss)
				}
				if tg == nil {
					if siteIdx == 0 {
						t.Fatalf("mutation %s found no applicable site in any package", m.name)
					}
					t.Fatalf("mutation %s: exhausted %d sites, none rejected", m.name, siteIdx)
				}
				m.apply(st)
				cert, err := equiv.Prove(tg.snap, equiv.Config{})
				if err == nil {
					// The bug landed on provably dead code at this site; a
					// translation validator must tolerate dead differences, so
					// try the next site.
					continue
				}
				if !errors.Is(err, equiv.ErrNotEquivalent) {
					t.Fatalf("mutation %s: error does not match ErrNotEquivalent: %v", m.name, err)
				}
				if cert == nil || cert.Equivalent {
					t.Fatalf("mutation %s: refuting certificate missing or marked equivalent", m.name)
				}
				ces := equiv.Counterexamples(err)
				if len(ces) == 0 {
					t.Fatalf("mutation %s: refutation carries no counterexample", m.name)
				}
				ce := ces[0]
				if ce.Kind == "" || ce.Package == "" || ce.Entry == "" {
					t.Errorf("mutation %s: counterexample not usable: %+v", m.name, ce)
				}
				t.Logf("%s caught at site %d: %s", m.name, siteIdx, ce.String())
				return
			}
			t.Fatalf("mutation %s survived %d sites undetected", m.name, maxSites)
		})
	}
}
