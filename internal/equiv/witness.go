package equiv

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// mix is a splitmix64-style hash used wherever the proof needs a
// deterministic "arbitrary" value: havoc register contents, unwritten
// memory words, code addresses, uninterpreted-operation results. It is a
// pure function of its inputs, so matching positions on the reference and
// optimized sides always agree.
func mix(xs ...int64) int64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, x := range xs {
		h ^= uint64(x)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}

// termEval evaluates terms in the term model: integer operations use the
// exact machine semantics, initial registers come from the trial
// assignment, havocs and unwritten memory are deterministic functions of
// their identity, and uninterpreted operations (FP, conversions) are
// deterministic functions of their opcode and operand values — congruence
// is what the symbolic proof uses too, so a witness found here refutes
// exactly what the prover compared.
type termEval struct {
	seed int64
	init [isa.NumRegs]int64
	memo map[*Term]int64
}

func newTermEval(seed int64) *termEval {
	return &termEval{seed: seed, memo: make(map[*Term]int64, 64)}
}

func (ev *termEval) eval(t *Term) int64 {
	if t == nil {
		return 0
	}
	if v, ok := ev.memo[t]; ok {
		return v
	}
	var v int64
	switch t.kind {
	case kConst:
		v = t.k
	case kInit:
		v = ev.init[t.k]
	case kHavoc:
		v = mix(ev.seed, 2, t.k)
	case kCodeAddr:
		v = codeAddrVal(t.blk, t.k)
	case kPred:
		a, b := ev.eval(t.a), ev.eval(t.b)
		switch {
		case t.op == isa.BEQ && a == b:
			v = 1
		case t.op == isa.BLT && a < b:
			v = 1
		}
	case kLoad:
		v = ev.evalLoad(t.a, ev.eval(t.b))
	case kOp:
		if intFoldable(t.op) {
			v = foldInt(t.op, ev.eval(t.a), ev.eval(t.b))
		} else if t.b != nil {
			v = mix(6, int64(t.op), ev.eval(t.a), ev.eval(t.b))
		} else {
			v = mix(6, int64(t.op), ev.eval(t.a))
		}
	case kMemInit, kMemHavoc, kStore:
		// Memory chains have no scalar value; they are only observed
		// through evalLoad. A defensive structural hash keeps the evaluator
		// total.
		v = mix(ev.seed, 3, int64(t.id))
	}
	ev.memo[t] = v
	return v
}

// evalLoad reads a concrete address from a memory chain: the topmost
// store whose address evaluates equal forwards its value, everything else
// is skipped, and the chain bottom supplies a deterministic default.
func (ev *termEval) evalLoad(chain *Term, addr int64) int64 {
	m := chain
	for m != nil && m.kind == kStore {
		if ev.eval(m.b) == addr {
			return ev.eval(m.c)
		}
		m = m.a
	}
	if m != nil && m.kind == kMemHavoc {
		return mix(5, 1+m.k, addr)
	}
	return mix(5, 0, addr)
}

// codeAddrVal is the concrete stand-in for a block's code address, shared
// by the term evaluator and the differential executor.
func codeAddrVal(blk *prog.Block, raw int64) int64 {
	if blk != nil {
		return mix(7, int64(blk.ID), 0)
	}
	return mix(7, raw, 1)
}

// initFor is trial t's initial value for register r: structured corner
// cases first (zeros, ones, register identity, word-aligned addresses,
// negatives, spread primes), then pseudo-random fill.
func initFor(trial int, r isa.Reg) int64 {
	switch trial {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return int64(r)
	case 3:
		return 8 * int64(r)
	case 4:
		return -int64(r)
	case 5:
		return int64(r) * 7919
	default:
		return mix(int64(trial), int64(r))
	}
}

const witnessTrials = 64

// attachWitness tries to find a concrete entry state that satisfies every
// constraint on the diverging path and makes the two diverging terms
// evaluate to different values in the term model. Finding one upgrades
// the counterexample from "the terms differ structurally" to "here is an
// input on which the versions disagree"; not finding one leaves the
// structural refutation standing.
func (pv *prover) attachWitness(ce *Counterexample, order []*Term, cons map[*Term]bool) {
	if ce.refT == nil && ce.optT == nil {
		return
	}
	for trial := 0; trial < witnessTrials; trial++ {
		ev := newTermEval(int64(trial) + 1)
		for _, r := range allRegs {
			ev.init[r] = initFor(trial, r)
		}
		sat := true
		for _, p := range order {
			if (ev.eval(p) != 0) != cons[p] {
				sat = false
				break
			}
		}
		if !sat {
			continue
		}
		if ce.Kind == "mem" {
			if w := memWitness(ev, ce.refT, ce.optT); w != "" {
				ce.Witness = renderAssignment(ev, ce.refT, ce.optT) + w
				return
			}
			continue
		}
		rv, ov := ev.eval(ce.refT), ev.eval(ce.optT)
		if rv == ov {
			continue
		}
		ce.Witness = fmt.Sprintf("%s⇒ ref=%d, opt=%d", renderAssignment(ev, ce.refT, ce.optT), rv, ov)
		return
	}
}

// memWitness probes every store address appearing on either chain and
// reports the first word the two memories disagree on.
func memWitness(ev *termEval, ref, opt *Term) string {
	var addrs []*Term
	for _, chain := range []*Term{ref, opt} {
		for m := chain; m != nil && m.kind == kStore; m = m.a {
			addrs = append(addrs, m.b)
		}
	}
	seen := make(map[int64]bool, len(addrs))
	for _, at := range addrs {
		a := ev.eval(at)
		if seen[a] {
			continue
		}
		seen[a] = true
		rv, ov := ev.evalLoad(ref, a), ev.evalLoad(opt, a)
		if rv != ov {
			return fmt.Sprintf("⇒ mem[%d]: ref=%d, opt=%d", a, rv, ov)
		}
	}
	return ""
}

// renderAssignment renders the initial-register assignment restricted to
// the registers the diverging terms actually mention.
func renderAssignment(ev *termEval, ts ...*Term) string {
	regs := make(map[isa.Reg]bool)
	seen := make(map[*Term]bool)
	for _, t := range ts {
		collectInits(t, seen, regs)
	}
	if len(regs) == 0 {
		return ""
	}
	var order []isa.Reg
	for r := range regs {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	if len(order) > 8 {
		order = order[:8]
	}
	var sb strings.Builder
	for _, r := range order {
		fmt.Fprintf(&sb, "%s₀=%d, ", r, ev.init[r])
	}
	return sb.String()
}

func collectInits(t *Term, seen map[*Term]bool, regs map[isa.Reg]bool) {
	if t == nil || seen[t] {
		return
	}
	seen[t] = true
	if t.kind == kInit {
		regs[isa.Reg(t.k)] = true
		return
	}
	collectInits(t.a, seen, regs)
	collectInits(t.b, seen, regs)
	collectInits(t.c, seen, regs)
}
