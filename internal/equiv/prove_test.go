package equiv_test

import (
	"sync"
	"testing"

	"repro/internal/equiv"
)

// TestProveClean proves the unmutated pass stack equivalent on every
// package of the corpus workload.
func TestProveClean(t *testing.T) {
	for _, tg := range buildTargets(t) {
		cert, err := equiv.Prove(tg.snap, equiv.Config{})
		if err != nil {
			t.Fatalf("%s: clean pass stack refuted: %v", tg.snap.Package(), err)
		}
		if !cert.Equivalent {
			t.Fatalf("%s: %s", tg.snap.Package(), cert.Verdict())
		}
	}
}

// TestProveDeterministic locks proof reproducibility: the same snapshot
// proved twice yields identical certificates (path counts, term counts,
// budget outcome) — a prerequisite for byte-identical pipeline traces.
func TestProveDeterministic(t *testing.T) {
	for _, tg := range buildTargets(t) {
		a, err := equiv.Prove(tg.snap, equiv.Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := equiv.Prove(tg.snap, equiv.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if a.PathsProved != b.PathsProved || a.PathsFuzzed != b.PathsFuzzed ||
			a.Terms != b.Terms || a.MaxPathBlocks != b.MaxPathBlocks ||
			a.BudgetExceeded != b.BudgetExceeded {
			t.Fatalf("%s: nondeterministic proof: %+v vs %+v", tg.snap.Package(), a, b)
		}
	}
}

// TestProveConcurrent drives independent proofs from many goroutines at
// once — the race detector checks Prove shares no hidden mutable state
// across snapshots (each pipeline worker proves its own packages).
func TestProveConcurrent(t *testing.T) {
	targets := buildTargets(t)
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(targets)*rounds)
	for r := 0; r < rounds; r++ {
		for _, tg := range targets {
			tg := tg
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := equiv.Prove(tg.snap, equiv.Config{}); err != nil {
					errs <- err
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestProveBudgetFallback forces a tiny path budget and checks the
// prover degrades to differential fuzzing instead of rejecting.
func TestProveBudgetFallback(t *testing.T) {
	targets := buildTargets(t)
	cert, err := equiv.Prove(targets[0].snap, equiv.Config{MaxPaths: 1, FuzzTrials: 4})
	if err != nil {
		t.Fatalf("budget exhaustion must fall back to fuzzing, not reject: %v", err)
	}
	if !cert.BudgetExceeded {
		t.Skip("package proved within one path; budget fallback not exercised")
	}
	if cert.PathsFuzzed == 0 {
		t.Error("budget exceeded but no differential trials recorded")
	}
	if !cert.Equivalent {
		t.Errorf("clean package rejected under budget fallback: %s", cert.Verdict())
	}
}
