package opt

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustProg(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const diamondLoopSrc = `
.func main
.main
  li r1, 0
  li r2, 50
loop:
  beq r1, r2, done
  blt r1, r2, hotside
coldside:
  addi r3, r3, 2
  jmp join
hotside:
  addi r3, r3, 1
join:
  addi r1, r1, 1
  jmp loop
done:
  halt
`

func constProb(p float64) BranchProb {
	return func(*prog.Block) float64 { return p }
}

func TestWeightsFollowProbabilities(t *testing.T) {
	p := mustProg(t, diamondLoopSrc)
	fn := p.Main
	// Block roles by shape.
	var hot, cold *prog.Block
	for _, b := range fn.Blocks {
		if b.Kind == prog.TermFall && len(b.Insts) == 1 && b.Insts[0].Op == isa.ADDI {
			switch b.Insts[0].Imm {
			case 2:
				cold = b
			case 1:
				hot = b
			}
		}
	}
	if hot == nil || cold == nil {
		t.Fatal("fixture blocks not found")
	}
	// blt taken (hotside) with probability 0.9.
	prob := func(b *prog.Block) float64 {
		if b.CmpOp == isa.BLT {
			return 0.9
		}
		return 0.02 // beq exit rarely taken
	}
	w := Weights(fn, prob, map[*prog.Block]float64{fn.Entry(): 1000})
	if w[hot] <= w[cold] {
		t.Errorf("hot side weight %v should exceed cold side %v", w[hot], w[cold])
	}
	if w[fn.Entry()] <= 0 {
		t.Error("entry weight missing")
	}
}

func TestArcWeights(t *testing.T) {
	p := mustProg(t, diamondLoopSrc)
	fn := p.Main
	w := Weights(fn, constProb(0.5), map[*prog.Block]float64{fn.Entry(): 100})
	aw := ArcWeights(fn, w, constProb(0.5))
	if len(aw) == 0 {
		t.Fatal("no arc weights")
	}
	for k, x := range aw {
		if x < 0 {
			t.Errorf("arc %v has negative weight", k)
		}
	}
}

func TestLayoutKeepsEntryFirstAndAllBlocks(t *testing.T) {
	p := mustProg(t, diamondLoopSrc)
	fn := p.Main
	entry := fn.Entry()
	before := len(fn.Blocks)
	w := Weights(fn, constProb(0.9), map[*prog.Block]float64{entry: 1000})
	Layout(fn, w, constProb(0.9))
	if fn.Entry() != entry {
		t.Fatal("layout moved the entry block")
	}
	if len(fn.Blocks) != before {
		t.Fatalf("layout lost blocks: %d -> %d", before, len(fn.Blocks))
	}
	seen := map[*prog.Block]bool{}
	for _, b := range fn.Blocks {
		if seen[b] {
			t.Fatal("layout duplicated a block")
		}
		seen[b] = true
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutImprovesFallthrough(t *testing.T) {
	// With taken probability ~1, the taken target should end up adjacent
	// after layout, reducing layout jumps in the linearized image.
	src := `
.func main
.main
  li r1, 0
  li r2, 1000
loop:
  blt r1, r2, body
exit:
  halt
body:
  addi r1, r1, 1
  jmp loop
`
	p := mustProg(t, src)
	imgBefore, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	fn := p.Main
	prob := func(b *prog.Block) float64 { return 0.999 }
	w := Weights(fn, prob, map[*prog.Block]float64{fn.Entry(): 1000})
	Layout(fn, w, prob)
	imgAfter, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	count := func(img *prog.Image) int {
		n := 0
		for _, in := range img.Code {
			if in.Op == isa.JMP {
				n++
			}
		}
		return n
	}
	if count(imgAfter) > count(imgBefore) {
		t.Errorf("layout increased jumps: %d -> %d", count(imgBefore), count(imgAfter))
	}
}

// randomBlock builds a block of random but dependency-rich ALU/memory code.
func randomBlock(r *rand.Rand, n int) *prog.Block {
	b := &prog.Block{Kind: prog.TermHalt}
	for i := 0; i < n; i++ {
		var in isa.Inst
		switch r.Intn(5) {
		case 0:
			in = isa.Inst{Op: isa.ADD, Rd: isa.Reg(1 + r.Intn(8)), Rs1: isa.Reg(1 + r.Intn(8)), Rs2: isa.Reg(1 + r.Intn(8))}
		case 1:
			in = isa.Inst{Op: isa.MUL, Rd: isa.Reg(1 + r.Intn(8)), Rs1: isa.Reg(1 + r.Intn(8)), Rs2: isa.Reg(1 + r.Intn(8))}
		case 2:
			in = isa.Inst{Op: isa.LI, Rd: isa.Reg(1 + r.Intn(8)), Imm: int64(r.Intn(100))}
		case 3:
			in = isa.Inst{Op: isa.LD, Rd: isa.Reg(1 + r.Intn(8)), Rs1: isa.R0, Imm: int64(r.Intn(8)) * 8}
		default:
			in = isa.Inst{Op: isa.ST, Rs2: isa.Reg(1 + r.Intn(8)), Rs1: isa.R0, Imm: int64(r.Intn(8)) * 8}
		}
		b.Insts = append(b.Insts, prog.Ins{Inst: in})
	}
	return b
}

// simulate executes a block's instructions on a tiny interpreter, returning
// final registers and memory, to check scheduling preserves semantics.
func simulate(b *prog.Block) ([9]int64, [8]int64) {
	var regs [9]int64
	var mem [8]int64
	for i := range regs {
		regs[i] = int64(i * 7)
	}
	get := func(r isa.Reg) int64 {
		if r == 0 {
			return 0
		}
		return regs[r]
	}
	for _, in := range b.Insts {
		switch in.Op {
		case isa.ADD:
			regs[in.Rd] = get(in.Rs1) + get(in.Rs2)
		case isa.MUL:
			regs[in.Rd] = get(in.Rs1) * get(in.Rs2)
		case isa.LI:
			regs[in.Rd] = in.Imm
		case isa.LD:
			regs[in.Rd] = mem[in.Imm/8]
		case isa.ST:
			mem[in.Imm/8] = get(in.Rs2)
		}
	}
	return regs, mem
}

// Property: scheduling preserves block semantics on random blocks.
func TestScheduleSemanticsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	res := DefaultResources()
	for trial := 0; trial < 300; trial++ {
		b := randomBlock(r, 2+r.Intn(30))
		want := append([]prog.Ins(nil), b.Insts...)
		regsBefore, memBefore := simulate(b)
		scheduleBlock(b, res, nil)
		if len(b.Insts) != len(want) {
			t.Fatalf("trial %d: schedule changed instruction count", trial)
		}
		regsAfter, memAfter := simulate(b)
		if regsBefore != regsAfter || memBefore != memAfter {
			t.Fatalf("trial %d: schedule changed semantics\nbefore: %v\nafter:  %v",
				trial, want, b.Insts)
		}
	}
}

func TestSchedulePacksIndependentOps(t *testing.T) {
	// A dependent chain interleaved with independent ops: scheduling
	// should reduce simulated cycles.
	src := `
.func main
.main
  li r1, 1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  li r2, 2
  li r3, 3
  li r4, 4
  li r5, 5
  mul r6, r2, r3
  halt
`
	p := mustProg(t, src)
	img1, _ := p.Linearize()
	s1, _, err := cpu.RunTimed(cpu.DefaultConfig(), img1, 0)
	if err != nil {
		t.Fatal(err)
	}
	Schedule(p.Main, DefaultResources())
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	img2, _ := p.Linearize()
	s2, m, err := cpu.RunTimed(cpu.DefaultConfig(), img2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[1] != 16 || m.IntRegs[6] != 6 {
		t.Fatal("scheduled program computed wrong values")
	}
	if s2.Cycles > s1.Cycles {
		t.Errorf("scheduling slowed the block: %d -> %d cycles", s1.Cycles, s2.Cycles)
	}
}

func TestScheduleRespectsMemoryOrdering(t *testing.T) {
	// st then ld from the same address must not reorder.
	b := &prog.Block{Kind: prog.TermHalt}
	b.Insts = []prog.Ins{
		{Inst: isa.Inst{Op: isa.LI, Rd: 1, Imm: 42}},
		{Inst: isa.Inst{Op: isa.ST, Rs2: 1, Rs1: isa.R0, Imm: 0}},
		{Inst: isa.Inst{Op: isa.LD, Rd: 2, Rs1: isa.R0, Imm: 0}},
		{Inst: isa.Inst{Op: isa.ST, Rs2: 2, Rs1: isa.R0, Imm: 8}},
	}
	scheduleBlock(b, DefaultResources(), nil)
	storeSeen, loadSeen := -1, -1
	for i, in := range b.Insts {
		if in.Op == isa.ST && in.Imm == 0 {
			storeSeen = i
		}
		if in.Op == isa.LD {
			loadSeen = i
		}
	}
	if storeSeen > loadSeen {
		t.Error("load reordered above conflicting store")
	}
}

func TestProbFromRegionFallbacks(t *testing.T) {
	p := mustProg(t, diamondLoopSrc)
	// Fake a region with one measured and some arc-temp-only blocks.
	var branch *prog.Block
	for _, b := range p.Main.Blocks {
		if b.Kind == prog.TermBranch {
			branch = b
			break
		}
	}
	reg := newTestRegion()
	reg.TakenProb[branch] = 0.77
	prob := ProbFromRegion(reg)
	if got := prob(branch); got != 0.77 {
		t.Errorf("measured prob = %v, want 0.77", got)
	}
	other := p.Main.Blocks[len(p.Main.Blocks)-1]
	if got := prob(other); got != 0.5 {
		t.Errorf("unknown block prob = %v, want 0.5", got)
	}
}

func TestApproxWeightsTracksIterative(t *testing.T) {
	p := mustProg(t, diamondLoopSrc)
	fn := p.Main
	prob := func(b *prog.Block) float64 {
		if b.CmpOp == isa.BLT {
			return 0.9
		}
		return 0.02
	}
	seed := map[*prog.Block]float64{fn.Entry(): 1000}
	exact := Weights(fn, prob, seed)
	approx := ApproxWeights(fn, prob, seed)
	if len(approx) == 0 {
		t.Fatal("approx weights empty")
	}
	// The approximation must agree with the solver on ORDER for the blocks
	// layout cares about: hot side > cold side.
	var hot, cold *prog.Block
	for _, b := range fn.Blocks {
		if b.Kind == prog.TermFall && len(b.Insts) == 1 && b.Insts[0].Op == isa.ADDI {
			switch b.Insts[0].Imm {
			case 2:
				cold = b
			case 1:
				hot = b
			}
		}
	}
	if approx[hot] <= approx[cold] {
		t.Errorf("approx: hot %v <= cold %v", approx[hot], approx[cold])
	}
	if (exact[hot] > exact[cold]) != (approx[hot] > approx[cold]) {
		t.Error("approx and exact disagree on hot/cold ordering")
	}
	// WeightsFor dispatches.
	if got := WeightsFor(true, fn, prob, seed); got[hot] != approx[hot] {
		t.Error("WeightsFor(true) did not use the approximation")
	}
}

func TestMergeBlocksFusesChains(t *testing.T) {
	// A pruned-diamond shape: entry -> mid -> tail, all single-pred
	// fallthroughs, must fuse into one block; a branch target with two
	// predecessors must survive.
	src := `
.func main
.main
  li r1, 1
step1:
  addi r1, r1, 1
step2:
  addi r1, r1, 2
  beq r1, r0, out
  addi r1, r1, 3
out:
  halt
`
	p := mustProg(t, src)
	fn := p.Main
	fn.IsPackage = true // merging targets package functions
	before := len(fn.Blocks)
	n := MergeBlocks(p, fn)
	if n == 0 {
		t.Fatal("nothing merged")
	}
	if len(fn.Blocks) != before-n {
		t.Fatalf("blocks %d -> %d but merged %d", before, len(fn.Blocks), n)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// `out` has two predecessors (branch taken + fallthrough path): the
	// program must still compute the same result.
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.NewMachine(img)
	if err := m.Run(1000, nil); err != nil {
		t.Fatal(err)
	}
	if m.IntRegs[1] != 7 {
		t.Errorf("r1 = %d, want 7", m.IntRegs[1])
	}
}

func TestMergeBlocksRespectsLATargets(t *testing.T) {
	src := `
.func main
.main
  li r1, 1
  la r9, keepme
keepme:
  addi r1, r1, 1
  halt
`
	p := mustProg(t, src)
	fn := p.Main
	fn.IsPackage = true
	if n := MergeBlocks(p, fn); n != 0 {
		t.Fatalf("merged %d blocks across an LA target", n)
	}
}

func TestScheduleDisambiguatesMemory(t *testing.T) {
	// Same base register, different offsets: the load may hoist above the
	// store, breaking the serial chain.
	b := &prog.Block{Kind: prog.TermHalt}
	b.Insts = []prog.Ins{
		{Inst: isa.Inst{Op: isa.LI, Rd: 1, Imm: 42}},
		{Inst: isa.Inst{Op: isa.ST, Rs2: 1, Rs1: isa.R0, Imm: 0}},
		{Inst: isa.Inst{Op: isa.MUL, Rd: 3, Rs1: 1, Rs2: 1}},
		{Inst: isa.Inst{Op: isa.LD, Rd: 2, Rs1: isa.R0, Imm: 8}}, // disjoint from the store
	}
	scheduleBlock(b, DefaultResources(), nil)
	pos := map[isa.Opcode]int{}
	for i, in := range b.Insts {
		pos[in.Op] = i
	}
	if pos[isa.LD] > pos[isa.MUL] {
		t.Errorf("disjoint load did not hoist: %v", b.Insts)
	}
	// Aliasing pair must keep order.
	b2 := &prog.Block{Kind: prog.TermHalt}
	b2.Insts = []prog.Ins{
		{Inst: isa.Inst{Op: isa.LI, Rd: 1, Imm: 42}},
		{Inst: isa.Inst{Op: isa.ST, Rs2: 1, Rs1: isa.R0, Imm: 0}},
		{Inst: isa.Inst{Op: isa.LD, Rd: 2, Rs1: isa.R0, Imm: 0}},
	}
	scheduleBlock(b2, DefaultResources(), nil)
	st, ld := -1, -1
	for i, in := range b2.Insts {
		if in.Op == isa.ST {
			st = i
		}
		if in.Op == isa.LD {
			ld = i
		}
	}
	if st > ld {
		t.Error("aliasing load reordered above store")
	}
}

func TestScheduleRedefinedBaseIsConservative(t *testing.T) {
	// The base register is redefined between two accesses with different
	// offsets: they may alias and must stay ordered.
	b := &prog.Block{Kind: prog.TermHalt}
	b.Insts = []prog.Ins{
		{Inst: isa.Inst{Op: isa.LI, Rd: 4, Imm: 1048576}},
		{Inst: isa.Inst{Op: isa.ST, Rs2: 4, Rs1: 4, Imm: 0}},
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 4, Rs1: 4, Imm: -8}},
		{Inst: isa.Inst{Op: isa.LD, Rd: 5, Rs1: 4, Imm: 8}}, // same address as the store!
	}
	scheduleBlock(b, DefaultResources(), nil)
	st, ld := -1, -1
	for i, in := range b.Insts {
		if in.Op == isa.ST {
			st = i
		}
		if in.Op == isa.LD {
			ld = i
		}
	}
	if st > ld {
		t.Error("load with redefined base reordered above may-alias store")
	}
}
