package opt

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// SinkColdCode implements the redundancy-elimination optimization §5.4
// names as future work: "moves cold instructions (those whose results are
// not consumed within the hot package) to the side exit block". An
// instruction whose result is dead on every hot successor but needed (or
// possibly needed) by original code through a side exit is removed from
// the hot path and re-materialized in the exit block, shortening the hot
// schedule without changing what the exit path observes.
//
// Sinking is deliberately conservative:
//
//   - only pure register-computing operations move (no loads, stores, or
//     anything with memory or control effects),
//   - the destination must be an exit block with this block as its sole
//     predecessor,
//   - the result must be dead along every other successor,
//   - neither the result nor any operand may be touched later in the
//     source block.
//
// It returns the number of instructions sunk.
func SinkColdCode(fn *prog.Func) int {
	return sinkColdCode(fn, nil)
}

func sinkColdCode(fn *prog.Func, rec *PassRecord) int {
	fn.ComputePreds()
	lv := prog.ComputeLiveness(fn)
	sunk := 0
	for _, b := range fn.Blocks {
		sunk += sinkFromBlock(fn, b, lv, rec)
	}
	return sunk
}

// isExitBlock reports whether s is a package side exit: an unconditional
// transfer out of the function (to original code or a linked sibling).
func isExitBlock(s *prog.Block, fn *prog.Func) bool {
	return s != nil && s.Fn == fn && s.Kind == prog.TermFall &&
		s.Next != nil && s.Next.Fn != fn && len(s.Insts) >= 0
}

// pureOp reports whether the instruction computes a register result with
// no memory or control effects.
func pureOp(in prog.Ins) bool {
	switch in.Op {
	case isa.LD, isa.ST, isa.FLD, isa.FST, isa.NOP:
		return false
	}
	return in.Op.HasRd() && !in.Op.IsControl()
}

func sinkFromBlock(fn *prog.Func, b *prog.Block, lv *prog.Liveness, rec *PassRecord) int {
	if b.Kind != prog.TermBranch {
		return 0
	}
	var exit *prog.Block
	var others []*prog.Block
	for _, s := range b.Succs(nil) {
		if isExitBlock(s, fn) && len(s.Preds()) == 1 {
			if exit != nil {
				return 0 // both sides exit: no unique hot path to shorten
			}
			exit = s
		} else {
			others = append(others, s)
		}
	}
	if exit == nil {
		return 0
	}

	sunk := 0
	// Iterate to a local fixpoint: sinking the last eligible instruction
	// can expose the one before it.
	for {
		idx := -1
		var uses []isa.Reg
	scan:
		for k := len(b.Insts) - 1; k >= 0; k-- {
			in := b.Insts[k]
			if !pureOp(in) {
				continue
			}
			d, ok := in.Defs()
			if !ok {
				continue
			}
			// Result must be dead on every non-exit successor...
			for _, s := range others {
				if lv.In[s].Has(d) {
					continue scan
				}
			}
			// ...unused by the terminator...
			if (b.Rs1 == d && b.Rs1 != isa.R0) || (b.Rs2 == d && b.Rs2 != isa.R0) {
				continue
			}
			// ...and untouched after k, with operands also untouched.
			opnds := in.Uses(nil)
			for j := k + 1; j < len(b.Insts); j++ {
				later := b.Insts[j]
				uses = later.Uses(uses[:0])
				for _, r := range uses {
					if r == d {
						continue scan
					}
				}
				if ld, ok := later.Defs(); ok {
					if ld == d {
						continue scan
					}
					for _, r := range opnds {
						if ld == r {
							continue scan
						}
					}
				}
			}
			idx = k
			break
		}
		if idx < 0 {
			return sunk
		}
		in := b.Insts[idx]
		b.Insts = append(b.Insts[:idx], b.Insts[idx+1:]...)
		exit.Insts = append([]prog.Ins{in}, exit.Insts...)
		if rec != nil {
			d, _ := in.Defs()
			rec.Sinks = append(rec.Sinks, SinkRecord{From: b, Exit: exit, Ins: in, Def: d})
		}
		sunk++
	}
}
