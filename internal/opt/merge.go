package opt

import (
	"repro/internal/prog"
)

// MergeBlocks fuses single-entry fallthrough chains inside a package
// function. Pruning cold paths removes merge points' other predecessors
// (§5.4: "the elimination of cold paths may increase block scope by
// eliminating side entrances"), so what used to be a diamond join with two
// predecessors is often left with one — merging it into that predecessor
// hands the list scheduler a larger window.
//
// A successor is merged only when it is reachable from exactly one place:
// a single program-wide predecessor, no LA instruction materializing its
// address, not a function entry (call/launch target). MergeBlocks returns
// the number of blocks fused.
func MergeBlocks(p *prog.Program, fn *prog.Func) int {
	return mergeBlocks(p, fn, nil)
}

func mergeBlocks(p *prog.Program, fn *prog.Func, rec *PassRecord) int {
	p.ComputePreds()
	// Blocks whose address escapes through LA must stay addressable.
	laTargets := make(map[*prog.Block]bool)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.BlockTarget != nil {
					laTargets[in.BlockTarget] = true
				}
			}
		}
	}
	merged := 0
	changed := true
	for changed {
		changed = false
		for _, b := range fn.Blocks {
			if b.Kind != prog.TermFall {
				continue
			}
			c := b.Next
			if c == nil || c.Fn != fn || c == b || c == fn.Entry() {
				continue
			}
			if laTargets[c] || len(c.Preds()) != 1 {
				continue
			}
			// Fuse c into b.
			b.Insts = append(b.Insts, c.Insts...)
			b.Kind = c.Kind
			b.CmpOp = c.CmpOp
			b.Rs1, b.Rs2 = c.Rs1, c.Rs2
			b.Taken, b.Next, b.Callee = c.Taken, c.Next, c.Callee
			if len(c.ExitConsumes) > 0 && len(b.ExitConsumes) == 0 {
				b.ExitConsumes = c.ExitConsumes
			}
			// Remove c from the layout.
			for i, blk := range fn.Blocks {
				if blk == c {
					fn.Blocks = append(fn.Blocks[:i], fn.Blocks[i+1:]...)
					break
				}
			}
			if rec != nil {
				rec.Merges = append(rec.Merges, MergeRecord{Into: b, Fused: c})
			}
			merged++
			changed = true
			p.ComputePreds()
			break // layout changed under us; restart the scan
		}
	}
	return merged
}
