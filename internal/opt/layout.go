package opt

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/region"
)

// Layout reorders fn's blocks so the hottest arcs become fallthroughs,
// using bottom-up chain formation (Pettis–Hansen style). The entry block
// always stays first: packages are entered at Blocks[0] by calls and the
// linearizer takes the function entry from there.
func Layout(fn *prog.Func, w map[*prog.Block]float64, prob BranchProb) {
	if len(fn.Blocks) <= 2 {
		return
	}
	entry := fn.Blocks[0]

	// Chains: doubly indexed by head and tail.
	next := make(map[*prog.Block]*prog.Block) // within-chain successor
	head := make(map[*prog.Block]*prog.Block) // block -> chain head
	tail := make(map[*prog.Block]*prog.Block) // chain head -> chain tail
	for _, b := range fn.Blocks {
		head[b] = b
		tail[b] = b
	}

	type arc struct {
		k region.ArcKey
		w float64
	}
	aw := ArcWeights(fn, w, prob)
	arcs := make([]arc, 0, len(aw))
	for k, x := range aw {
		arcs = append(arcs, arc{k, x})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].w != arcs[j].w {
			return arcs[i].w > arcs[j].w
		}
		// Deterministic tie-break.
		if arcs[i].k.From.ID != arcs[j].k.From.ID {
			return arcs[i].k.From.ID < arcs[j].k.From.ID
		}
		return arcs[i].k.Taken && !arcs[j].k.Taken
	})

	for _, a := range arcs {
		from, to := a.k.From, a.k.Dest()
		if to == nil || to.Fn != fn {
			continue
		}
		// Merge only a chain tail into another chain's head, and never
		// place anything before the entry block.
		if tail[head[from]] != from || head[to] != to || to == entry {
			continue
		}
		if head[from] == to {
			continue // would close a cycle
		}
		next[from] = to
		h := head[from]
		t := tail[to]
		for b := to; b != nil; b = next[b] {
			head[b] = h
		}
		tail[h] = t
	}

	// Order chains: entry's chain first, the rest by max block weight.
	var chainHeads []*prog.Block
	seen := make(map[*prog.Block]bool)
	for _, b := range fn.Blocks {
		h := head[b]
		if !seen[h] {
			seen[h] = true
			chainHeads = append(chainHeads, h)
		}
	}
	chainWeight := make(map[*prog.Block]float64)
	for _, b := range fn.Blocks {
		if w[b] > chainWeight[head[b]] {
			chainWeight[head[b]] = w[b]
		}
	}
	sort.SliceStable(chainHeads, func(i, j int) bool {
		hi, hj := chainHeads[i], chainHeads[j]
		if (hi == head[entry]) != (hj == head[entry]) {
			return hi == head[entry]
		}
		if chainWeight[hi] != chainWeight[hj] {
			return chainWeight[hi] > chainWeight[hj]
		}
		return hi.ID < hj.ID
	})

	out := make([]*prog.Block, 0, len(fn.Blocks))
	for _, h := range chainHeads {
		for b := h; b != nil; b = next[b] {
			out = append(out, b)
		}
	}
	if len(out) != len(fn.Blocks) || out[0] != entry {
		// Defensive: never corrupt the function if chain bookkeeping went
		// wrong; keep the original layout instead.
		return
	}
	fn.Blocks = out
	invertBranchesForLayout(fn)
}

// invertBranchesForLayout flips branch conditions whose taken target became
// the physically-next block, turning hot taken arcs into fallthroughs so
// the linearizer emits no layout jump and the fetch unit sees straight-line
// code.
func invertBranchesForLayout(fn *prog.Func) {
	for i, b := range fn.Blocks {
		if b.Kind != prog.TermBranch || i+1 >= len(fn.Blocks) {
			continue
		}
		next := fn.Blocks[i+1]
		if b.Taken != next || b.Next == next {
			continue
		}
		inv, ok := invertCmp(b.CmpOp)
		if !ok {
			continue
		}
		b.CmpOp = inv
		b.Taken, b.Next = b.Next, b.Taken
	}
}

// invertCmp returns the opcode computing the negated condition with the
// same operands.
func invertCmp(op isa.Opcode) (isa.Opcode, bool) {
	switch op {
	case isa.BEQ:
		return isa.BNE, true
	case isa.BNE:
		return isa.BEQ, true
	case isa.BLT:
		return isa.BGE, true
	case isa.BGE:
		return isa.BLT, true
	}
	return op, false
}
