package opt

import (
	"repro/internal/equiv"
	"repro/internal/isa"
	"repro/internal/prog"
)

// PassRecord collects transformation certificates from the optimization
// passes so a verifier can re-check their soundness after the fact. One
// record may accumulate over several functions (core uses one per
// installed program). Recording is off unless Passes.Record is set; the
// default pass entry points never allocate for it.
type PassRecord struct {
	// Merges lists every block fusion MergeBlocks performed, in order.
	Merges []MergeRecord
	// Sinks lists every instruction SinkColdCode moved into an exit block.
	Sinks []SinkRecord
	// Cycles maps each scheduled block to the issue cycle of every
	// instruction, indexed in the block's final (post-schedule) order.
	Cycles map[*prog.Block][]int
	// Scheduled lists the functions Schedule ran over, in order.
	Scheduled []*prog.Func
	// Res is the resource model the schedules were packed for.
	Res Resources
	// Equiv holds the translation-validation certificates core attaches
	// when the -equiv gate is on, one per proved package in package order.
	// The passes themselves never write it.
	Equiv []*equiv.Certificate
}

// MergeRecord certifies one MergeBlocks fusion: Fused was appended onto
// Into and removed from the layout.
type MergeRecord struct {
	Into  *prog.Block
	Fused *prog.Block
}

// SinkRecord certifies one SinkColdCode move: Ins, defining Def, was
// removed from From's body and prepended to its side exit Exit.
type SinkRecord struct {
	From *prog.Block
	Exit *prog.Block
	Ins  prog.Ins
	Def  isa.Reg
}
