package opt

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

// sinkFixture builds a package-shaped function by hand:
//
//	entry:  d1 = r1+r2 (cold: only the exit consumes it)
//	        d2 = r1*r2 (hot: the join consumes it)
//	        branch -> exit block (rare) / join
//	exitb:  (exit) -> original
//	join:   use d2; halt
func sinkFixture() (*prog.Program, *prog.Func, *prog.Block, *prog.Block) {
	bd := prog.NewBuilder()
	orig := bd.Func("orig")
	bd.Halt()
	origBlk := orig.Blocks[0]

	pkg := bd.Func("pkg")
	bd.Main() // entry point so Verify/Linearize work
	entry := bd.Cur()
	exitb := bd.NewBlock()
	join := bd.NewBlock()

	bd.Op3(isa.ADD, 10, 1, 2) // d1 = cold
	bd.Op3(isa.MUL, 11, 1, 2) // d2 = hot
	bd.Branch(isa.BEQ, 3, isa.R0, exitb, join)

	bd.SetBlock(exitb)
	bd.Goto(origBlk)
	exitb.ExitConsumes = []isa.Reg{10} // original code reads d1

	bd.SetBlock(join)
	bd.Op3(isa.ADD, 12, 11, 11)
	bd.Halt()

	pkg.IsPackage = true
	_ = entry
	return bd.P, pkg, entry, exitb
}

func TestSinkMovesColdResultToExit(t *testing.T) {
	p, pkg, entry, exitb := sinkFixture()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	n := SinkColdCode(pkg)
	if n != 1 {
		t.Fatalf("sunk %d instructions, want 1", n)
	}
	// The ADD (cold) moved; the MUL (hot) stayed.
	if len(entry.Insts) != 1 || entry.Insts[0].Op != isa.MUL {
		t.Errorf("entry insts after sink = %v", entry.Insts)
	}
	if len(exitb.Insts) != 1 || exitb.Insts[0].Op != isa.ADD {
		t.Errorf("exit insts after sink = %v", exitb.Insts)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkRefusesLiveOnHotPath(t *testing.T) {
	p, pkg, entry, _ := sinkFixture()
	_ = p
	// Make the join consume d1 too: now nothing may sink.
	join := pkg.Blocks[2]
	join.Insts = append(join.Insts, prog.Ins{Inst: isa.Inst{Op: isa.ADD, Rd: 13, Rs1: 10, Rs2: 10}})
	if n := SinkColdCode(pkg); n != 0 {
		t.Fatalf("sunk %d instructions, want 0 (result live on hot path)", n)
	}
	if len(entry.Insts) != 2 {
		t.Error("entry block modified despite refusal")
	}
}

func TestSinkRefusesImpureOps(t *testing.T) {
	p, pkg, entry, _ := sinkFixture()
	_ = p
	// Replace the cold ADD with a load: loads never sink.
	entry.Insts[0] = prog.Ins{Inst: isa.Inst{Op: isa.LD, Rd: 10, Rs1: isa.R0, Imm: prog.DataBase}}
	if n := SinkColdCode(pkg); n != 0 {
		t.Fatalf("sunk %d, want 0 (loads are not pure)", n)
	}
}

func TestSinkRefusesClobberedOperands(t *testing.T) {
	p, pkg, entry, _ := sinkFixture()
	_ = p
	// Clobber r1 after the cold ADD, and make the new r1 live on the hot
	// path so the clobberer itself cannot sink along with it: the ADD must
	// then stay put (its operand would change value).
	entry.Insts = append(entry.Insts, prog.Ins{Inst: isa.Inst{Op: isa.LI, Rd: 1, Imm: 9}})
	join := pkg.Blocks[2]
	join.Insts = append(join.Insts, prog.Ins{Inst: isa.Inst{Op: isa.ADD, Rd: 13, Rs1: 1, Rs2: 1}})
	if n := SinkColdCode(pkg); n != 0 {
		t.Fatalf("sunk %d, want 0 (operand clobbered later)", n)
	}
}

func TestSinkClobbererMayFollow(t *testing.T) {
	// When the clobbering instruction is itself cold, the fixpoint sinks
	// both in original order, which preserves semantics on the exit path.
	p, pkg, entry, exitb := sinkFixture()
	_ = p
	entry.Insts = append(entry.Insts, prog.Ins{Inst: isa.Inst{Op: isa.LI, Rd: 1, Imm: 9}})
	if n := SinkColdCode(pkg); n != 2 {
		t.Fatalf("sunk %d, want 2 (value and its clobberer, in order)", n)
	}
	if len(exitb.Insts) != 2 || exitb.Insts[0].Op != isa.ADD || exitb.Insts[1].Op != isa.LI {
		t.Errorf("exit order wrong: %v", exitb.Insts)
	}
}

func TestSinkChains(t *testing.T) {
	// Two cold instructions where the second consumes the first: both sink
	// in order.
	p, pkg, entry, exitb := sinkFixture()
	_ = p
	entry.Insts = []prog.Ins{
		{Inst: isa.Inst{Op: isa.ADD, Rd: 10, Rs1: 1, Rs2: 2}},   // cold
		{Inst: isa.Inst{Op: isa.ADDI, Rd: 14, Rs1: 10, Imm: 5}}, // cold, uses r10
		{Inst: isa.Inst{Op: isa.MUL, Rd: 11, Rs1: 1, Rs2: 2}},   // hot
	}
	exitb.ExitConsumes = []isa.Reg{14}
	if n := SinkColdCode(pkg); n != 2 {
		t.Fatalf("sunk %d, want 2", n)
	}
	if len(exitb.Insts) != 2 || exitb.Insts[0].Op != isa.ADD || exitb.Insts[1].Op != isa.ADDI {
		t.Errorf("exit order wrong: %v", exitb.Insts)
	}
}
