package opt

import (
	"sort"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Resources describes the issue bandwidth the scheduler packs for,
// mirroring the machine model (Table 2).
type Resources struct {
	IssueWidth  int
	IntALUs     int
	FPUnits     int
	MemUnits    int
	BranchUnits int
}

// DefaultResources matches the paper's 8-issue EPIC machine.
func DefaultResources() Resources {
	return Resources{IssueWidth: 8, IntALUs: 5, FPUnits: 3, MemUnits: 3, BranchUnits: 3}
}

// Limit returns the per-cycle issue capacity of one functional-unit
// class (FUNone falls back to the machine's issue width).
func (r Resources) Limit(fu isa.FUClass) int { return r.limit(fu) }

func (r Resources) limit(fu isa.FUClass) int {
	switch fu {
	case isa.FUIALU:
		return r.IntALUs
	case isa.FUFP:
		return r.FPUnits
	case isa.FUMem:
		return r.MemUnits
	case isa.FUBranch:
		return r.BranchUnits
	default:
		return r.IssueWidth
	}
}

// Schedule list-schedules every block of fn for the given resources,
// reordering instructions within each block to pack issue slots and to
// separate producers from consumers. Dependences (register RAW/WAR/WAW and
// conservative memory ordering) are preserved exactly; the terminator stays
// the block's final operation.
func Schedule(fn *prog.Func, res Resources) {
	schedule(fn, res, nil)
}

func schedule(fn *prog.Func, res Resources, rec *PassRecord) {
	if rec == nil {
		for _, b := range fn.Blocks {
			scheduleBlock(b, res, nil)
		}
		return
	}
	if rec.Cycles == nil {
		rec.Cycles = make(map[*prog.Block][]int, len(fn.Blocks))
	}
	rec.Scheduled = append(rec.Scheduled, fn)
	rec.Res = res
	// One backing array serves every block's cycle record: scheduling only
	// reorders instructions, so the total is known up front and the buffer
	// never reallocates under the stored subslices.
	total := 0
	for _, b := range fn.Blocks {
		total += len(b.Insts)
	}
	cycbuf := make([]int, 0, total)
	for _, b := range fn.Blocks {
		base := len(cycbuf)
		cycbuf = scheduleBlock(b, res, cycbuf)
		rec.Cycles[b] = cycbuf[base:len(cycbuf):len(cycbuf)]
	}
}

type schedNode struct {
	idx      int
	succs    []int
	npred    int
	priority int // critical-path length to the block end
	latency  int
}

// scheduleBlock reorders b.Insts by critical-path list scheduling. With
// a non-nil cycbuf it appends the issue cycle of each instruction in the
// final order and returns the extended buffer (nil otherwise).
func scheduleBlock(b *prog.Block, res Resources, cycbuf []int) []int {
	record := cycbuf != nil
	n := len(b.Insts)
	if n < 2 {
		if record {
			for i := 0; i < n; i++ {
				cycbuf = append(cycbuf, 0) // 0 or 1 instructions issue at cycle 0
			}
			return cycbuf
		}
		return nil
	}
	nodes := make([]schedNode, n)
	for i := range nodes {
		nodes[i].idx = i
		nodes[i].latency = b.Insts[i].Op.Latency()
	}
	addEdge := func(from, to int) {
		if from == to {
			return
		}
		nodes[from].succs = append(nodes[from].succs, to)
		nodes[to].npred++
	}

	// Register dependences. lastDef/lastUses index into b.Insts.
	lastDef := make(map[isa.Reg]int)
	lastUses := make(map[isa.Reg][]int)
	// Memory ordering with static disambiguation: two accesses through the
	// same base register *cannot* alias when their offsets differ (the
	// base values are equal by construction), and *must* alias when the
	// offsets match. Accesses through different base registers are ordered
	// conservatively. The base's defining instruction may sit between the
	// two accesses; registers redefined since an access was recorded fall
	// back to may-alias, which the baseIdx check below enforces.
	type memRef struct {
		idx     int
		base    isa.Reg
		baseIdx int // lastDef of base at access time (-1 = block entry)
		off     int64
	}
	baseAt := func(r isa.Reg) int {
		if d, ok := lastDef[r]; ok {
			return d
		}
		return -1
	}
	mayAlias := func(a, b memRef) bool {
		if a.base != b.base || a.baseIdx != b.baseIdx {
			return true // different or re-defined base: unknown
		}
		return a.off == b.off
	}
	var stores, loads []memRef
	var uses []isa.Reg
	for i, in := range b.Insts {
		uses = in.Uses(uses[:0])
		for _, r := range uses {
			if d, ok := lastDef[r]; ok {
				addEdge(d, i) // RAW
			}
			lastUses[r] = append(lastUses[r], i)
		}
		switch in.Op {
		case isa.ST, isa.FST:
			ref := memRef{idx: i, base: in.Rs1, baseIdx: baseAt(in.Rs1), off: in.Imm}
			for _, s := range stores {
				if mayAlias(ref, s) {
					addEdge(s.idx, i)
				}
			}
			for _, l := range loads {
				if mayAlias(ref, l) {
					addEdge(l.idx, i)
				}
			}
			stores = append(stores, ref)
		case isa.LD, isa.FLD:
			ref := memRef{idx: i, base: in.Rs1, baseIdx: baseAt(in.Rs1), off: in.Imm}
			for _, s := range stores {
				if mayAlias(ref, s) {
					addEdge(s.idx, i)
				}
			}
			loads = append(loads, ref)
		}
		if d, ok := in.Defs(); ok {
			if prev, okd := lastDef[d]; okd {
				addEdge(prev, i) // WAW
			}
			for _, u := range lastUses[d] {
				addEdge(u, i) // WAR
			}
			lastDef[d] = i
			lastUses[d] = nil
		}
	}
	// The terminator consumes its compare registers and all memory: keep
	// every def of Rs1/Rs2 and every store before it — automatic, since
	// the terminator is not scheduled. Nothing to add.

	// Critical-path priorities (reverse topological over the DAG; succs
	// always point forward so a reverse index scan works).
	for i := n - 1; i >= 0; i-- {
		p := nodes[i].latency
		for _, s := range nodes[i].succs {
			if cand := nodes[i].latency + nodes[s].priority; cand > p {
				p = cand
			}
		}
		nodes[i].priority = p
	}

	// List scheduling with cycle-accurate ready times.
	ready := make([]int, 0, n) // node indices ready to issue
	readyAt := make([]int, n)  // earliest cycle each node may issue
	npred := make([]int, n)
	for i := range nodes {
		npred[i] = nodes[i].npred
		if npred[i] == 0 {
			ready = append(ready, i)
		}
	}
	out := make([]prog.Ins, 0, n)
	cycle := 0
	slots := 0
	fuUsed := map[isa.FUClass]int{}
	scheduled := 0
	finish := make([]int, n)
	for scheduled < n {
		// Pick the highest-priority ready node that fits this cycle.
		sort.SliceStable(ready, func(i, j int) bool {
			a, bn := ready[i], ready[j]
			if nodes[a].priority != nodes[bn].priority {
				return nodes[a].priority > nodes[bn].priority
			}
			return a < bn
		})
		pick := -1
		if slots < res.IssueWidth {
			for k, cand := range ready {
				if readyAt[cand] > cycle {
					continue
				}
				fu := b.Insts[cand].Op.FU()
				if fu != isa.FUNone && fuUsed[fu] >= res.limit(fu) {
					continue // this unit is full; another class may fit
				}
				pick = k
				break
			}
		}
		if pick < 0 {
			// Advance the clock.
			cycle++
			slots = 0
			for k := range fuUsed {
				fuUsed[k] = 0
			}
			continue
		}
		node := ready[pick]
		ready = append(ready[:pick], ready[pick+1:]...)
		out = append(out, b.Insts[node])
		if record {
			cycbuf = append(cycbuf, cycle)
		}
		scheduled++
		slots++
		if fu := b.Insts[node].Op.FU(); fu != isa.FUNone {
			fuUsed[fu]++
		}
		finish[node] = cycle + nodes[node].latency
		for _, s := range nodes[node].succs {
			npred[s]--
			if readyAt[s] < finish[node] {
				readyAt[s] = finish[node]
			}
			if npred[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	b.Insts = out
	if !record {
		return nil
	}
	return cycbuf
}
