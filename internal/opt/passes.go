package opt

import (
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/region"
)

// Passes selects and parameterizes the §5.4 package-optimization passes.
// core.Config translates its Enable* knobs into this.
type Passes struct {
	Merge    bool
	Sink     bool
	Layout   bool
	Schedule bool
	// Approx swaps the damped iterative weight solver for the single-pass
	// approximation when Layout is on.
	Approx bool
	Sched  Resources
	// EntrySeedWeight seeds weight propagation at package entries.
	EntrySeedWeight float64
	// Record, when set, accumulates transformation certificates (merges,
	// sinks, issue cycles) for post-hoc verification.
	Record *PassRecord
	// Check, when set, runs after each applied pass with the pass name —
	// the verifier's sandwich hook. A non-nil error aborts the remaining
	// passes and is returned by ApplyPasses.
	Check func(pass string) error
}

// ApplyPasses runs the selected passes over one package function, using
// the region's arc temperatures as branch probabilities. entries are the
// package's entry blocks (weight-propagation seeds); when empty the
// function entry is seeded instead. Each applied pass emits a PassApplied
// event (N = blocks merged, instructions sunk, or blocks touched) and
// bumps the opt.* counters on o. The returned error is always nil unless
// ps.Check rejects a pass's output.
func ApplyPasses(ps Passes, p *prog.Program, fn *prog.Func, entries []*prog.Block, r *region.Region, o obs.Observer) error {
	prob := ProbFromRegion(r)
	check := func(pass string) error {
		if ps.Check == nil {
			return nil
		}
		return ps.Check(pass)
	}
	if ps.Merge {
		n := mergeBlocks(p, fn, ps.Record)
		o.Emit(obs.Event{Kind: obs.PassApplied, Phase: r.PhaseID, Name: "merge", N: int64(n)})
		o.Count("opt.merged_blocks", int64(n))
		if err := check("merge"); err != nil {
			return err
		}
	}
	if ps.Sink {
		n := sinkColdCode(fn, ps.Record)
		o.Emit(obs.Event{Kind: obs.PassApplied, Phase: r.PhaseID, Name: "sink", N: int64(n)})
		o.Count("opt.sunk_insts", int64(n))
		if err := check("sink"); err != nil {
			return err
		}
	}
	if ps.Layout {
		seed := make(map[*prog.Block]float64)
		for _, c := range entries {
			seed[c] = ps.EntrySeedWeight
		}
		if e := fn.Entry(); e != nil && len(seed) == 0 {
			seed[e] = ps.EntrySeedWeight
		}
		w := WeightsFor(ps.Approx, fn, prob, seed)
		Layout(fn, w, prob)
		o.Emit(obs.Event{Kind: obs.PassApplied, Phase: r.PhaseID, Name: "layout", N: int64(len(fn.Blocks))})
		o.Count("opt.laid_out_blocks", int64(len(fn.Blocks)))
		if err := check("layout"); err != nil {
			return err
		}
	}
	if ps.Schedule {
		schedule(fn, ps.Sched, ps.Record)
		o.Emit(obs.Event{Kind: obs.PassApplied, Phase: r.PhaseID, Name: "schedule", N: int64(len(fn.Blocks))})
		o.Count("opt.scheduled_blocks", int64(len(fn.Blocks)))
		if err := check("schedule"); err != nil {
			return err
		}
	}
	return nil
}
