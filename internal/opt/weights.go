// Package opt holds the post-extraction optimization passes the paper
// evaluates (§5.4): profile-weight calculation from taken probabilities,
// hot-path code layout, and list scheduling of package code for the
// 8-issue EPIC machine.
package opt

import (
	"repro/internal/prog"
	"repro/internal/region"
)

// BranchProb supplies the taken probability of a branch block, typically
// derived from the phase's hot-spot record via the block's Origin.
type BranchProb func(b *prog.Block) float64

// ProbFromRegion builds a BranchProb for package code: a copy's probability
// comes from its origin's measured taken probability in the region; blocks
// without a measurement fall back to arc temperatures, then to 0.5.
func ProbFromRegion(r *region.Region) BranchProb {
	return func(b *prog.Block) float64 {
		ob := b
		if b.Origin != nil {
			ob = prog.OriginRoot(b)
		}
		if p, ok := r.TakenProb[ob]; ok {
			return p
		}
		tTemp := r.ArcTemp[region.ArcKey{From: ob, Taken: true}]
		fTemp := r.ArcTemp[region.ArcKey{From: ob, Taken: false}]
		switch {
		case tTemp == region.Hot && fTemp != region.Hot:
			return 0.9
		case fTemp == region.Hot && tTemp != region.Hot:
			return 0.1
		default:
			return 0.5
		}
	}
}

// Weights estimates per-block execution weights for one function from
// branch probabilities, using damped iterative flow propagation (the
// paper's §5.4 calculation, after [4]). seed supplies entry weights; blocks
// keyed in seed receive that inflow every iteration in addition to
// propagated flow. The result is relative, not absolute — layout only needs
// ordering.
func Weights(fn *prog.Func, prob BranchProb, seed map[*prog.Block]float64) map[*prog.Block]float64 {
	const (
		iterations = 64
		damping    = 0.85 // keeps loop flow finite without natural exits
	)
	w := make(map[*prog.Block]float64, len(fn.Blocks))
	cur := make(map[*prog.Block]float64, len(fn.Blocks))
	for b, s := range seed {
		cur[b] = s
	}
	for it := 0; it < iterations; it++ {
		next := make(map[*prog.Block]float64, len(fn.Blocks))
		for b, s := range seed {
			next[b] += s
		}
		for _, b := range fn.Blocks {
			f := cur[b]
			if f == 0 {
				continue
			}
			w[b] += f
			out := f * damping
			switch b.Kind {
			case prog.TermFall, prog.TermCall:
				if b.Next != nil && b.Next.Fn == fn {
					next[b.Next] += out
				}
			case prog.TermBranch:
				p := prob(b)
				if b.Taken != nil && b.Taken.Fn == fn {
					next[b.Taken] += out * p
				}
				if b.Next != nil && b.Next.Fn == fn {
					next[b.Next] += out * (1 - p)
				}
			}
		}
		cur = next
	}
	return w
}

// ArcWeights derives arc weights from block weights and probabilities, for
// layout chain formation.
func ArcWeights(fn *prog.Func, w map[*prog.Block]float64, prob BranchProb) map[region.ArcKey]float64 {
	out := make(map[region.ArcKey]float64)
	for _, b := range fn.Blocks {
		f := w[b]
		switch b.Kind {
		case prog.TermFall, prog.TermCall:
			if b.Next != nil && b.Next.Fn == fn {
				out[region.ArcKey{From: b, Taken: false}] = f
			}
		case prog.TermBranch:
			p := prob(b)
			if b.Taken != nil && b.Taken.Fn == fn {
				out[region.ArcKey{From: b, Taken: true}] = f * p
			}
			if b.Next != nil && b.Next.Fn == fn {
				out[region.ArcKey{From: b, Taken: false}] = f * (1 - p)
			}
		}
	}
	return out
}
