package opt

import (
	"repro/internal/prog"
	"repro/internal/region"
)

// newTestRegion builds an empty region for ProbFromRegion tests.
func newTestRegion() *region.Region {
	return &region.Region{
		TakenProb: map[*prog.Block]float64{},
		ArcTemp:   map[region.ArcKey]region.Temp{},
	}
}
