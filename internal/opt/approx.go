package opt

import (
	"repro/internal/prog"
)

// ApproxWeights is the cheap single-pass estimator §5.4 alludes to: "For
// run-time systems, such a calculation may be too computationally
// expensive and a simpler approximate-weight propagation method may
// suffice." It walks the blocks once in layout order, splitting each
// block's weight across its successors by branch probability, and
// approximates loop amplification with a fixed multiplier on back-edge
// targets instead of iterating to convergence.
func ApproxWeights(fn *prog.Func, prob BranchProb, seed map[*prog.Block]float64) map[*prog.Block]float64 {
	const loopFactor = 8.0
	back := prog.BackEdges(fn)
	isLoopHead := make(map[*prog.Block]bool)
	for e := range back {
		isLoopHead[e.To] = true
	}
	w := make(map[*prog.Block]float64, len(fn.Blocks))
	for b, s := range seed {
		w[b] += s
	}
	for _, b := range fn.Blocks {
		f := w[b]
		if f == 0 {
			continue
		}
		if isLoopHead[b] {
			f *= loopFactor
			w[b] = f
		}
		push := func(dst *prog.Block, x float64) {
			// Only forward flow: back edges are folded into loopFactor.
			if dst == nil || dst.Fn != fn || back[prog.Edge{From: b, To: dst}] {
				return
			}
			w[dst] += x
		}
		switch b.Kind {
		case prog.TermFall, prog.TermCall:
			push(b.Next, f)
		case prog.TermBranch:
			p := prob(b)
			push(b.Taken, f*p)
			push(b.Next, f*(1-p))
		}
	}
	return w
}

// WeightsFor selects the §5.4 weight calculation: the damped iterative
// solver (the paper's offline choice) or the single-pass approximation
// (its suggested run-time fallback).
func WeightsFor(approx bool, fn *prog.Func, prob BranchProb, seed map[*prog.Block]float64) map[*prog.Block]float64 {
	if approx {
		return ApproxWeights(fn, prob, seed)
	}
	return Weights(fn, prob, seed)
}
