package prog

import "repro/internal/isa"

// Clone deep-copies the whole program: functions, blocks, arcs (including
// cross-function package arcs), data segment and Main designation. Block
// IDs are preserved so clones linearize identically to their originals.
// Origin pointers are preserved as-is (they refer to blocks of this same
// program when set by package extraction, and the clone redirects them to
// the cloned blocks when possible).
func (p *Program) Clone() *Program {
	np := New()
	np.Data = append([]int64(nil), p.Data...)
	np.ScratchWords = p.ScratchWords
	np.nextBlockID = p.nextBlockID

	fm := make(map[*Func]*Func, len(p.Funcs))
	bm := make(map[*Block]*Block, p.NumBlocks())
	for _, f := range p.Funcs {
		nf := &Func{Name: f.Name, IsPackage: f.IsPackage, PhaseID: f.PhaseID}
		np.Funcs = append(np.Funcs, nf)
		fm[f] = nf
		for _, b := range f.Blocks {
			nb := &Block{
				ID:           b.ID,
				Fn:           nf,
				Insts:        append([]Ins(nil), b.Insts...),
				Kind:         b.Kind,
				CmpOp:        b.CmpOp,
				Rs1:          b.Rs1,
				Rs2:          b.Rs2,
				ExitConsumes: append([]isa.Reg(nil), b.ExitConsumes...),
			}
			nf.Blocks = append(nf.Blocks, nb)
			bm[b] = nb
		}
	}
	redirect := func(b *Block) *Block {
		if b == nil {
			return nil
		}
		if nb, ok := bm[b]; ok {
			return nb
		}
		return b
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			nb := bm[b]
			nb.Taken = redirect(b.Taken)
			nb.Next = redirect(b.Next)
			if b.Callee != nil {
				if nf, ok := fm[b.Callee]; ok {
					nb.Callee = nf
				} else {
					nb.Callee = b.Callee
				}
			}
			if b.Origin != nil {
				nb.Origin = redirect(b.Origin)
			}
			for i := range nb.Insts {
				if bt := nb.Insts[i].BlockTarget; bt != nil {
					nb.Insts[i].BlockTarget = redirect(bt)
				}
			}
		}
	}
	if p.Main != nil {
		np.Main = fm[p.Main]
	}
	return np
}
