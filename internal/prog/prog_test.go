package prog

import (
	"testing"

	"repro/internal/isa"
)

// buildDiamond constructs main with a diamond CFG:
//
//	entry -> (branch) -> left/right -> join -> halt
func buildDiamond(t *testing.T) (*Program, *Func) {
	t.Helper()
	bd := NewBuilder()
	f := bd.Func("main")
	bd.Main()
	entry := bd.Cur()
	left := bd.NewBlock()
	right := bd.NewBlock()
	join := bd.NewBlock()

	bd.Li(1, 10).Li(2, 20)
	bd.Branch(isa.BLT, 1, 2, left, right)
	bd.SetBlock(left).OpI(isa.ADDI, 3, 1, 1)
	bd.Goto(join)
	bd.SetBlock(right).OpI(isa.ADDI, 3, 2, 2)
	bd.Goto(join)
	bd.SetBlock(join).Op3(isa.ADD, 4, 3, 3)
	bd.Halt()

	_ = entry
	return bd.P, f
}

func TestBuilderAndVerify(t *testing.T) {
	p, f := buildDiamond(t)
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(f.Blocks))
	}
	if !f.Blocks[0].IsEntry() || f.Blocks[1].IsEntry() {
		t.Error("IsEntry misidentifies the entry block")
	}
}

func TestComputePreds(t *testing.T) {
	p, f := buildDiamond(t)
	p.ComputePreds()
	entry, left, right, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if len(entry.Preds()) != 0 {
		t.Errorf("entry preds = %v, want none", entry.Preds())
	}
	for _, b := range []*Block{left, right} {
		if len(b.Preds()) != 1 || b.Preds()[0] != entry {
			t.Errorf("%s preds = %v, want [entry]", b, b.Preds())
		}
	}
	if len(join.Preds()) != 2 {
		t.Errorf("join preds = %v, want 2", join.Preds())
	}
}

func TestSuccs(t *testing.T) {
	p, f := buildDiamond(t)
	_ = p
	entry := f.Blocks[0]
	succs := entry.Succs(nil)
	if len(succs) != 2 {
		t.Fatalf("entry succs = %v, want 2", succs)
	}
	join := f.Blocks[3]
	if got := join.Succs(nil); len(got) != 0 {
		t.Errorf("halt block succs = %v, want none", got)
	}
	// A branch whose taken target equals its fallthrough yields one succ.
	b := &Block{Kind: TermBranch, Taken: entry, Next: entry}
	if got := b.Succs(nil); len(got) != 1 {
		t.Errorf("degenerate branch succs = %v, want 1", got)
	}
}

func TestLinearizeDiamond(t *testing.T) {
	p, f := buildDiamond(t)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0 {
		t.Errorf("entry = %d, want 0", img.Entry)
	}
	// entry: li, li, blt (fallthrough `right` is not adjacent, so a layout
	// jmp follows) = slots 0..3; left: addi + jmp to join = 4..5;
	// right: addi (join adjacent) = 6; join: add, halt = 7..8.
	want := []isa.Opcode{isa.LI, isa.LI, isa.BLT, isa.JMP, isa.ADDI, isa.JMP, isa.ADDI, isa.ADD, isa.HALT}
	if len(img.Code) != len(want) {
		t.Fatalf("code len = %d, want %d (%v)", len(img.Code), len(want), img.Code)
	}
	for i, op := range want {
		if img.Code[i].Op != op {
			t.Errorf("slot %d = %v, want %v", i, img.Code[i].Op, op)
		}
	}
	left, right, join := f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if img.Code[2].Target != img.BlockAddr[left] {
		t.Errorf("branch target = %d, want %d", img.Code[2].Target, img.BlockAddr[left])
	}
	if img.Code[3].Target != img.BlockAddr[right] {
		t.Errorf("layout jmp target = %d, want %d", img.Code[3].Target, img.BlockAddr[right])
	}
	if img.Code[5].Target != img.BlockAddr[join] {
		t.Errorf("jmp target = %d, want %d", img.Code[5].Target, img.BlockAddr[join])
	}
	if img.BlockAddr[right] != 6 {
		t.Errorf("right block addr = %d, want 6", img.BlockAddr[right])
	}
	// Address maps are mutually consistent.
	for b, a := range img.BlockAddr {
		if img.BlockAt(a) != b {
			t.Errorf("BlockAt(%d) = %v, want %v", a, img.BlockAt(a), b)
		}
	}
	if img.BlockAt(-1) != nil || img.BlockAt(int64(len(img.Code))) != nil {
		t.Error("BlockAt out of range should be nil")
	}
	// The branch's profiled PC is recorded.
	if got := img.TermAddr[f.Blocks[0]]; got != 2 {
		t.Errorf("TermAddr(entry) = %d, want 2", got)
	}
}

func TestLinearizeCallAndLA(t *testing.T) {
	bd := NewBuilder()
	callee := bd.Func("callee")
	bd.OpI(isa.ADDI, 5, 5, 1)
	bd.Ret()

	bd.Func("main")
	bd.Main()
	cont := bd.NewBlock()
	bd.Li(5, 0)
	bd.Call(callee, cont)
	bd.SetBlock(cont)
	bd.La(6, cont)
	bd.Halt()

	if err := bd.P.Verify(); err != nil {
		t.Fatal(err)
	}
	img, err := bd.P.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry == 0 {
		t.Error("main should not be at address 0 (callee is emitted first)")
	}
	// Find the LA and check its target resolved to cont's address.
	contAddr := img.BlockAddr[bd.P.FuncByName("main").Blocks[1]]
	var laSeen bool
	for _, in := range img.Code {
		if in.Op == isa.LA {
			laSeen = true
			if in.Target != contAddr {
				t.Errorf("LA target = %d, want %d", in.Target, contAddr)
			}
		}
		if in.Op == isa.CALL {
			if in.Target != img.BlockAddr[callee.Entry()] {
				t.Errorf("CALL target = %d, want %d", in.Target, img.BlockAddr[callee.Entry()])
			}
		}
	}
	if !laSeen {
		t.Error("no LA emitted")
	}
}

func TestLinearizeErrors(t *testing.T) {
	p := New()
	if _, err := p.Linearize(); err == nil {
		t.Error("linearize with no Main should fail")
	}
	bd := NewBuilder()
	bd.Func("main")
	bd.Main()
	bd.Halt()
	empty := bd.P.AddFunc("empty")
	_ = empty
	if _, err := bd.P.Linearize(); err == nil {
		t.Error("linearize with empty function should fail")
	}
}

func TestVerifyCatchesBadArcs(t *testing.T) {
	p, f := buildDiamond(t)
	other := NewBuilder()
	other.Func("other")
	other.Halt()
	// Arc to a block in another *program*.
	f.Blocks[1].Next = other.P.Funcs[0].Blocks[0]
	if err := p.Verify(); err == nil {
		t.Error("verify should reject arc to foreign program")
	}
}

func TestVerifyCatchesCrossFunctionArcWithoutPackage(t *testing.T) {
	bd := NewBuilder()
	bd.Func("a")
	aEntry := bd.Cur()
	bd.Halt()
	bd.Func("main")
	bd.Main()
	bd.Goto(aEntry) // cross-function, neither is a package
	if err := bd.P.Verify(); err == nil {
		t.Error("verify should reject cross-function arc with no package")
	}
	// Marking the target function as a package legitimizes it.
	bd.P.FuncByName("a").IsPackage = true
	if err := bd.P.Verify(); err != nil {
		t.Errorf("verify rejected a package launch arc: %v", err)
	}
}

func TestVerifyCatchesControlInBody(t *testing.T) {
	p, f := buildDiamond(t)
	f.Blocks[0].Insts = append(f.Blocks[0].Insts, Ins{Inst: isa.Inst{Op: isa.JMP}})
	if err := p.Verify(); err == nil {
		t.Error("verify should reject control op inside block body")
	}
}

func TestVerifyCatchesStrayFields(t *testing.T) {
	p, f := buildDiamond(t)
	join := f.Blocks[3]
	join.Taken = f.Blocks[0] // halt block with Taken set
	if err := p.Verify(); err == nil {
		t.Error("verify should reject stray Taken on halt block")
	}
}

func TestVerifyCatchesBadBranchFields(t *testing.T) {
	p, f := buildDiamond(t)
	f.Blocks[0].CmpOp = isa.ADD
	if err := p.Verify(); err == nil {
		t.Error("verify should reject non-branch CmpOp")
	}
}

func TestCloneFunc(t *testing.T) {
	p, f := buildDiamond(t)
	clone, m := p.CloneFunc(f, "main.copy")
	if err := p.Verify(); err != nil {
		t.Fatalf("Verify after clone: %v", err)
	}
	if len(clone.Blocks) != len(f.Blocks) {
		t.Fatalf("clone blocks = %d, want %d", len(clone.Blocks), len(f.Blocks))
	}
	for _, b := range f.Blocks {
		nb := m[b]
		if nb == nil || nb.Fn != clone {
			t.Fatalf("block %s not cloned properly", b)
		}
		if OriginRoot(nb) != b {
			t.Errorf("clone of %s has OriginRoot %s", b, OriginRoot(nb))
		}
		if nb.ID == b.ID {
			t.Errorf("clone of %s shares ID %d", b, b.ID)
		}
	}
	// Arcs were redirected into the clone.
	entryClone := m[f.Blocks[0]]
	if entryClone.Taken != m[f.Blocks[1]] || entryClone.Next != m[f.Blocks[2]] {
		t.Error("clone arcs not redirected")
	}
	// Mutating the clone must not affect the original.
	entryClone.Insts[0].Imm = 999
	if f.Blocks[0].Insts[0].Imm == 999 {
		t.Error("clone shares instruction storage with original")
	}
	// Cloning a clone keeps OriginRoot pointing at the true original.
	clone2, m2 := p.CloneFunc(clone, "main.copy2")
	_ = clone2
	if OriginRoot(m2[entryClone]) != f.Blocks[0] {
		t.Error("OriginRoot through two clones should reach the original")
	}
}

func TestCallSitesAndCallees(t *testing.T) {
	bd := NewBuilder()
	callee := bd.Func("callee")
	bd.Ret()
	bd.Func("main")
	bd.Main()
	c1 := bd.NewBlock()
	c2 := bd.NewBlock()
	bd.Call(callee, c1)
	bd.SetBlock(c1)
	bd.Call(callee, c2)
	bd.SetBlock(c2)
	bd.Halt()

	sites := bd.P.CallSites()
	if len(sites) != 2 {
		t.Fatalf("call sites = %d, want 2", len(sites))
	}
	fns := Callees(bd.P.Main)
	if len(fns) != 1 || fns[0] != callee {
		t.Errorf("Callees = %v, want [callee]", fns)
	}
}

func TestLivenessDiamond(t *testing.T) {
	p, f := buildDiamond(t)
	_ = p
	lv := ComputeLiveness(f)
	entry, left, join := f.Blocks[0], f.Blocks[1], f.Blocks[3]
	// r3 is defined on both sides and consumed at join: live into left.
	if lv.In[left].Has(3) {
		t.Error("r3 live into left though left defines it")
	}
	if !lv.In[left].Has(1) {
		t.Error("r1 should be live into left (used by addi)")
	}
	if !lv.In[join].Has(3) {
		t.Error("r3 should be live into join")
	}
	// entry defines r1/r2 itself, so nothing need be live in.
	if lv.In[entry].Has(1) || lv.In[entry].Has(2) {
		t.Error("entry should not have r1/r2 live-in")
	}
}

func TestLivenessAcrossCall(t *testing.T) {
	bd := NewBuilder()
	callee := bd.Func("callee")
	bd.Ret()
	bd.Func("main")
	bd.Main()
	cont := bd.NewBlock()
	bd.Li(7, 42)
	bd.Call(callee, cont)
	bd.SetBlock(cont)
	bd.Op3(isa.ADD, 8, 7, 7)
	bd.Halt()

	lv := ComputeLiveness(bd.P.Main)
	callBlock := bd.P.Main.Blocks[0]
	if !lv.Out[callBlock].Has(7) {
		t.Error("r7 should be live out of the call block")
	}
	// Conservative model: call blocks expose (almost) everything.
	if !lv.In[callBlock].Has(20) {
		t.Error("conservative call liveness should mark r20 live-in")
	}
}

func TestRegSetOps(t *testing.T) {
	var s RegSet
	s = s.Add(3).Add(isa.RRA).Add(isa.F(2))
	if !s.Has(3) || !s.Has(isa.RRA) || !s.Has(isa.F(2)) || s.Has(4) {
		t.Error("RegSet Add/Has wrong")
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
	regs := s.Regs()
	if len(regs) != 3 || regs[0] != 3 {
		t.Errorf("Regs = %v", regs)
	}
	s = s.Remove(3)
	if s.Has(3) || s.Count() != 2 {
		t.Error("Remove failed")
	}
	u := s.Union(RegSet(0).Add(1))
	if !u.Has(1) || !u.Has(isa.RRA) {
		t.Error("Union failed")
	}
}

func TestNumInsts(t *testing.T) {
	p, f := buildDiamond(t)
	// entry: 2 insts + branch = 3; left/right: 1 + 0 (fall) = 1 each;
	// join: 1 + halt = 2. Total 7.
	if got := f.NumInsts(); got != 7 {
		t.Errorf("NumInsts = %d, want 7", got)
	}
	if got := p.NumInsts(); got != 7 {
		t.Errorf("Program.NumInsts = %d, want 7", got)
	}
	if p.NumBlocks() != 4 {
		t.Errorf("NumBlocks = %d, want 4", p.NumBlocks())
	}
}

func TestTermKindString(t *testing.T) {
	kinds := []TermKind{TermFall, TermBranch, TermCall, TermRet, TermHalt}
	want := []string{"fall", "branch", "call", "ret", "halt"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("TermKind(%d) = %q, want %q", uint8(k), k.String(), want[i])
		}
	}
}
