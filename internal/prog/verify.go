package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Verify checks the structural invariants every pipeline stage must
// preserve. It returns the first violation found, or nil.
//
// Invariants:
//   - Main is set and belongs to the program.
//   - every function has at least one block; every block's Fn back-pointer
//     is correct; block IDs are unique program-wide.
//   - terminator fields are consistent with Kind (Taken set only on
//     branches, Callee set only on calls, CmpOp a conditional branch
//     opcode, ...).
//   - every arc target and call target belongs to this program. Arcs may
//     cross function boundaries only when a package function is involved
//     (launch points, package links and side exits back to original code).
//   - instruction operands are valid registers; control-flow opcodes never
//     appear in block bodies; LA instructions with a BlockTarget point at
//     blocks of this program.
func (p *Program) Verify() error {
	if p.Main == nil {
		return fmt.Errorf("prog: verify: Main is nil")
	}
	funcSet := make(map[*Func]bool, len(p.Funcs))
	blockSet := make(map[*Block]bool)
	ids := make(map[int]*Block)
	for _, f := range p.Funcs {
		if funcSet[f] {
			return fmt.Errorf("prog: verify: function %s appears twice", f.Name)
		}
		funcSet[f] = true
		if len(f.Blocks) == 0 {
			return fmt.Errorf("prog: verify: function %s has no blocks", f.Name)
		}
		for _, b := range f.Blocks {
			if b.Fn != f {
				return fmt.Errorf("prog: verify: block %s has Fn %q, is listed in %q", b, b.Fn.Name, f.Name)
			}
			if blockSet[b] {
				return fmt.Errorf("prog: verify: block %s appears twice", b)
			}
			blockSet[b] = true
			if other, dup := ids[b.ID]; dup {
				return fmt.Errorf("prog: verify: blocks %s and %s share ID %d", b, other, b.ID)
			}
			ids[b.ID] = b
		}
	}
	if !funcSet[p.Main] {
		return fmt.Errorf("prog: verify: Main %q is not in Funcs", p.Main.Name)
	}

	checkArc := func(from, to *Block, what string) error {
		if !blockSet[to] {
			return fmt.Errorf("prog: verify: block %s %s target %s is not in the program", from, what, to)
		}
		if to.Fn != from.Fn && !from.Fn.IsPackage && !to.Fn.IsPackage {
			return fmt.Errorf("prog: verify: block %s %s target %s crosses functions with no package involved", from, what, to)
		}
		return nil
	}

	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			switch b.Kind {
			case TermFall:
				if b.Next == nil {
					return fmt.Errorf("prog: verify: fall block %s has nil Next", b)
				}
				if b.Taken != nil || b.Callee != nil {
					return fmt.Errorf("prog: verify: fall block %s has stray terminator fields", b)
				}
				if err := checkArc(b, b.Next, "fallthrough"); err != nil {
					return err
				}
			case TermBranch:
				if b.Taken == nil || b.Next == nil {
					return fmt.Errorf("prog: verify: branch block %s missing Taken or Next", b)
				}
				if !b.CmpOp.IsCondBranch() {
					return fmt.Errorf("prog: verify: branch block %s has CmpOp %v", b, b.CmpOp)
				}
				if !b.Rs1.Valid() || !b.Rs2.Valid() {
					return fmt.Errorf("prog: verify: branch block %s has invalid compare registers", b)
				}
				if b.Callee != nil {
					return fmt.Errorf("prog: verify: branch block %s has Callee set", b)
				}
				if err := checkArc(b, b.Taken, "taken"); err != nil {
					return err
				}
				if err := checkArc(b, b.Next, "fallthrough"); err != nil {
					return err
				}
			case TermCall:
				if b.Callee == nil || b.Next == nil {
					return fmt.Errorf("prog: verify: call block %s missing Callee or Next", b)
				}
				if !funcSet[b.Callee] {
					return fmt.Errorf("prog: verify: call block %s targets function %q not in program", b, b.Callee.Name)
				}
				if b.Taken != nil {
					return fmt.Errorf("prog: verify: call block %s has Taken set", b)
				}
				// The continuation must stay in the same function (or
				// package): a call returns to pc+1.
				if err := checkArc(b, b.Next, "continuation"); err != nil {
					return err
				}
			case TermRet, TermHalt:
				if b.Taken != nil || b.Next != nil || b.Callee != nil {
					return fmt.Errorf("prog: verify: %v block %s has stray terminator fields", b.Kind, b)
				}
			case TermJumpReg:
				if !b.Rs1.Valid() {
					return fmt.Errorf("prog: verify: jr block %s has invalid register", b)
				}
				if b.Taken != nil || b.Next != nil || b.Callee != nil {
					return fmt.Errorf("prog: verify: jr block %s has stray terminator fields", b)
				}
			default:
				return fmt.Errorf("prog: verify: block %s has invalid terminator kind %d", b, uint8(b.Kind))
			}
			for i, in := range b.Insts {
				if !in.Op.Valid() {
					return fmt.Errorf("prog: verify: block %s inst %d has invalid opcode", b, i)
				}
				if in.Op.IsControl() {
					return fmt.Errorf("prog: verify: block %s inst %d is control op %v inside block body", b, i, in.Op)
				}
				for _, r := range [...]isa.Reg{in.Rd, in.Rs1, in.Rs2} {
					if !r.Valid() {
						return fmt.Errorf("prog: verify: block %s inst %d has invalid register %d", b, i, uint8(r))
					}
				}
				if in.BlockTarget != nil {
					if in.Op != isa.LA {
						return fmt.Errorf("prog: verify: block %s inst %d: BlockTarget on non-LA op %v", b, i, in.Op)
					}
					if !blockSet[in.BlockTarget] {
						return fmt.Errorf("prog: verify: block %s inst %d: LA target %s not in program", b, i, in.BlockTarget)
					}
				}
			}
		}
	}
	return nil
}
