package prog

import "repro/internal/isa"

// RegSet is a bitset over the architectural registers.
type RegSet uint64

// Add returns s with r included.
func (s RegSet) Add(r isa.Reg) RegSet { return s | 1<<uint(r) }

// Has reports whether r is in s.
func (s RegSet) Has(r isa.Reg) bool { return s&(1<<uint(r)) != 0 }

// Union returns s ∪ t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Remove returns s without r.
func (s RegSet) Remove(r isa.Reg) RegSet { return s &^ (1 << uint(r)) }

// Regs expands the set into a register slice, lowest-numbered first.
func (s RegSet) Regs() []isa.Reg {
	var out []isa.Reg
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if s.Has(r) {
			out = append(out, r)
		}
	}
	return out
}

// Count returns the number of registers in the set.
func (s RegSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Liveness holds per-block live-in/live-out register sets for one function.
type Liveness struct {
	In  map[*Block]RegSet
	Out map[*Block]RegSet
}

// BlockUseDef computes a block's upward-exposed uses and its defs,
// including the terminator's compare operands and implicit RRA traffic.
// The verifier uses it to rebuild liveness independently of the cached
// per-function results the optimizer consumed.
func BlockUseDef(b *Block) (use, def RegSet) { return blockUseDef(b) }

// blockUseDef computes the upward-exposed uses and the defs of a block,
// including the terminator's compare operands and implicit RRA traffic.
func blockUseDef(b *Block) (use, def RegSet) {
	// Open-coded isa.Inst.Uses/Defs: this runs per instruction under every
	// liveness computation, and the append-based Uses API costs a scratch
	// slice the hot path can't afford.
	for _, in := range b.Insts {
		if in.Op.HasRs1() && in.Rs1 != isa.R0 && !def.Has(in.Rs1) {
			use = use.Add(in.Rs1)
		}
		if in.Op.HasRs2() && in.Rs2 != isa.R0 && !def.Has(in.Rs2) {
			use = use.Add(in.Rs2)
		}
		if in.Op == isa.RET && !def.Has(isa.RRA) {
			use = use.Add(isa.RRA)
		}
		if d, ok := in.Defs(); ok {
			def = def.Add(d)
		}
	}
	switch b.Kind {
	case TermBranch:
		if b.Rs1 != isa.R0 && !def.Has(b.Rs1) {
			use = use.Add(b.Rs1)
		}
		if b.Rs2 != isa.R0 && !def.Has(b.Rs2) {
			use = use.Add(b.Rs2)
		}
	case TermCall:
		def = def.Add(isa.RRA)
	case TermRet:
		if !def.Has(isa.RRA) {
			use = use.Add(isa.RRA)
		}
	case TermJumpReg:
		if b.Rs1 != isa.R0 && !def.Has(b.Rs1) {
			use = use.Add(b.Rs1)
		}
	}
	return use, def
}

// ComputeLiveness runs backward liveness over one function's CFG. Calls are
// treated conservatively: because VPIR has no calling convention baked into
// the ISA, every register except RRA is assumed live across a call (the
// callee may read anything), and return blocks are assumed to expose every
// register to the caller. This conservatism is safe for the paper's use —
// exit-block dummy consumers only need to over-approximate liveness so the
// optimizer never kills a value the original cold code might read.
func ComputeLiveness(f *Func) *Liveness {
	lv := &Liveness{
		In:  make(map[*Block]RegSet, len(f.Blocks)),
		Out: make(map[*Block]RegSet, len(f.Blocks)),
	}
	use := make(map[*Block]RegSet, len(f.Blocks))
	def := make(map[*Block]RegSet, len(f.Blocks))
	var allRegs RegSet
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		allRegs = allRegs.Add(r)
	}
	for _, b := range f.Blocks {
		u, d := blockUseDef(b)
		if b.Kind == TermCall {
			// Callee may read anything live plus its arguments; expose all.
			u = allRegs.Remove(isa.RRA)
		}
		use[b], def[b] = u, d
	}
	// Iterate to fixpoint (reverse layout order converges fast).
	changed := true
	for changed {
		changed = false
		var succs []*Block
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			var out RegSet
			switch b.Kind {
			case TermRet, TermHalt, TermJumpReg:
				if b.Kind != TermHalt {
					out = allRegs // target unknown: anything may be read
				}
			default:
				succs = b.Succs(succs[:0])
				for _, s := range succs {
					if s.Fn != f {
						// Package exit or link arc: the block's dummy
						// consumer set is the target's live-in; without
						// one, assume everything is live.
						if len(b.ExitConsumes) > 0 {
							for _, r := range b.ExitConsumes {
								out = out.Add(r)
							}
						} else {
							out = out.Union(allRegs)
						}
						continue
					}
					out = out.Union(lv.In[s])
				}
			}
			in := use[b].Union(out &^ def[b])
			if out != lv.Out[b] || in != lv.In[b] {
				lv.Out[b], lv.In[b] = out, in
				changed = true
			}
		}
	}
	return lv
}
