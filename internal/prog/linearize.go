package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Image is a linearized program: a flat VPIR code image plus the address
// maps the profiler and region identifier need to relate dynamic PCs back
// to blocks.
type Image struct {
	Prog  *Program
	Code  []isa.Inst
	Entry int64 // address of Main's entry block

	// BlockAddr maps each block to the address of its first slot.
	BlockAddr map[*Block]int64
	// TermAddr maps each block with a materialized terminator (branch,
	// call, ret, halt) to that instruction's address. Conditional-branch
	// entries are the PCs the Hot Spot Detector profiles.
	TermAddr map[*Block]int64
	// AddrBlock maps every slot back to its owning block.
	AddrBlock []*Block
}

// BlockAt returns the block owning the instruction slot at addr, or nil.
func (img *Image) BlockAt(addr int64) *Block {
	if addr < 0 || addr >= int64(len(img.AddrBlock)) {
		return nil
	}
	return img.AddrBlock[addr]
}

// Linearize lowers the program to a flat code image. Functions are emitted
// in Program.Funcs order and blocks in Func.Blocks (layout) order, so code
// layout decisions are visible to the fetch and I-cache models. Fallthrough
// edges to non-adjacent blocks cost an extra jump slot, exactly as on a
// real machine.
func (p *Program) Linearize() (*Image, error) {
	if p.Main == nil {
		return nil, fmt.Errorf("prog: linearize: program has no Main function")
	}
	// Pass 1: sizes and addresses.
	type layout struct {
		blocks []*Block
	}
	var order []*Block
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return nil, fmt.Errorf("prog: linearize: function %s has no blocks", f.Name)
		}
		order = append(order, f.Blocks...)
	}
	next := make(map[*Block]*Block, len(order)) // physically following block
	for i, b := range order {
		if i+1 < len(order) && order[i+1].Fn == b.Fn {
			next[b] = order[i+1]
		}
	}
	size := func(b *Block) int64 {
		n := int64(len(b.Insts))
		switch b.Kind {
		case TermFall:
			if b.Next != next[b] {
				n++ // jmp
			}
		case TermBranch:
			n++ // branch
			if b.Next != next[b] {
				n++ // jmp to fallthrough target
			}
		case TermCall:
			n++ // call
			if b.Next != next[b] {
				n++ // jmp to continuation
			}
		case TermRet, TermHalt, TermJumpReg:
			n++
		}
		return n
	}
	blockAddr := make(map[*Block]int64, len(order))
	addr := int64(0)
	for _, b := range order {
		blockAddr[b] = addr
		addr += size(b)
	}
	total := addr

	// Pass 2: emit.
	img := &Image{
		Prog:      p,
		Code:      make([]isa.Inst, 0, total),
		BlockAddr: blockAddr,
		TermAddr:  make(map[*Block]int64, len(order)),
		AddrBlock: make([]*Block, total),
	}
	emit := func(b *Block, in isa.Inst) {
		img.AddrBlock[len(img.Code)] = b
		img.Code = append(img.Code, in)
	}
	targetOf := func(b, t *Block, what string) (int64, error) {
		if t == nil {
			return 0, fmt.Errorf("prog: linearize: block %s has nil %s target", b, what)
		}
		a, ok := blockAddr[t]
		if !ok {
			return 0, fmt.Errorf("prog: linearize: block %s targets %s which is not in the program", b, t)
		}
		return a, nil
	}
	for _, b := range order {
		if got := int64(len(img.Code)); got != blockAddr[b] {
			return nil, fmt.Errorf("prog: linearize: internal error: block %s at %d, expected %d", b, got, blockAddr[b])
		}
		for _, in := range b.Insts {
			ii := in.Inst
			if in.BlockTarget != nil {
				a, ok := blockAddr[in.BlockTarget]
				if !ok {
					return nil, fmt.Errorf("prog: linearize: block %s LA targets %s which is not in the program", b, in.BlockTarget)
				}
				ii.Target = a
			}
			emit(b, ii)
		}
		switch b.Kind {
		case TermFall:
			if b.Next != next[b] {
				a, err := targetOf(b, b.Next, "fallthrough")
				if err != nil {
					return nil, err
				}
				img.TermAddr[b] = int64(len(img.Code))
				emit(b, isa.Inst{Op: isa.JMP, Target: a})
			}
		case TermBranch:
			a, err := targetOf(b, b.Taken, "taken")
			if err != nil {
				return nil, err
			}
			img.TermAddr[b] = int64(len(img.Code))
			emit(b, isa.Inst{Op: b.CmpOp, Rs1: b.Rs1, Rs2: b.Rs2, Target: a})
			if b.Next != next[b] {
				fa, err := targetOf(b, b.Next, "fallthrough")
				if err != nil {
					return nil, err
				}
				emit(b, isa.Inst{Op: isa.JMP, Target: fa})
			}
		case TermCall:
			if b.Callee == nil {
				return nil, fmt.Errorf("prog: linearize: call block %s has nil callee", b)
			}
			entry := b.Callee.Entry()
			if entry == nil {
				return nil, fmt.Errorf("prog: linearize: call block %s targets empty function %s", b, b.Callee.Name)
			}
			a, ok := blockAddr[entry]
			if !ok {
				return nil, fmt.Errorf("prog: linearize: call block %s targets function %s not in program", b, b.Callee.Name)
			}
			img.TermAddr[b] = int64(len(img.Code))
			emit(b, isa.Inst{Op: isa.CALL, Target: a})
			if b.Next != next[b] {
				fa, err := targetOf(b, b.Next, "continuation")
				if err != nil {
					return nil, err
				}
				emit(b, isa.Inst{Op: isa.JMP, Target: fa})
			}
		case TermRet:
			img.TermAddr[b] = int64(len(img.Code))
			emit(b, isa.Inst{Op: isa.RET})
		case TermHalt:
			img.TermAddr[b] = int64(len(img.Code))
			emit(b, isa.Inst{Op: isa.HALT})
		case TermJumpReg:
			img.TermAddr[b] = int64(len(img.Code))
			emit(b, isa.Inst{Op: isa.JR, Rs1: b.Rs1})
		default:
			return nil, fmt.Errorf("prog: linearize: block %s has invalid terminator %v", b, b.Kind)
		}
	}
	img.Entry = blockAddr[p.Main.Entry()]
	return img, nil
}
