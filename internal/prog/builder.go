package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Builder offers a compact way to construct programs in Go code. The
// workload generator and many tests use it; hand-written sources go through
// the assembler instead.
//
// A Builder tracks a current block. Emitting an instruction appends to it;
// emitting a terminator seals it. Blocks are created up front with NewBlock
// so forward references are easy.
type Builder struct {
	P *Program

	fn  *Func
	cur *Block
}

// NewBuilder returns a builder over a fresh program.
func NewBuilder() *Builder { return &Builder{P: New()} }

// Func starts a new function and returns it. Its entry block becomes
// current.
func (bd *Builder) Func(name string) *Func {
	bd.fn = bd.P.AddFunc(name)
	bd.cur = bd.P.NewBlock(bd.fn)
	return bd.fn
}

// Main marks the current function as the program entry point.
func (bd *Builder) Main() *Builder {
	if bd.fn == nil {
		panic("prog: Builder.Main before Func")
	}
	bd.P.Main = bd.fn
	return bd
}

// NewBlock creates an additional block in the current function without
// making it current (for forward branch targets).
func (bd *Builder) NewBlock() *Block {
	if bd.fn == nil {
		panic("prog: Builder.NewBlock before Func")
	}
	return bd.P.NewBlock(bd.fn)
}

// SetBlock makes b the current block for subsequent emissions.
func (bd *Builder) SetBlock(b *Block) *Builder {
	if b.Fn != bd.fn {
		panic(fmt.Sprintf("prog: Builder.SetBlock: block %s not in current function %s", b, bd.fn.Name))
	}
	bd.cur = b
	return bd
}

// Cur returns the current block.
func (bd *Builder) Cur() *Block { return bd.cur }

// Emit appends a raw instruction to the current block.
func (bd *Builder) Emit(in Ins) *Builder {
	if bd.cur == nil {
		panic("prog: Builder.Emit with no current block")
	}
	bd.cur.Insts = append(bd.cur.Insts, in)
	return bd
}

// Op3 emits a three-register ALU or FP operation.
func (bd *Builder) Op3(op isa.Opcode, rd, rs1, rs2 isa.Reg) *Builder {
	return bd.Emit(Ins{Inst: isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}})
}

// OpI emits a register-immediate operation.
func (bd *Builder) OpI(op isa.Opcode, rd, rs1 isa.Reg, imm int64) *Builder {
	return bd.Emit(Ins{Inst: isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm}})
}

// Li emits a load-immediate.
func (bd *Builder) Li(rd isa.Reg, imm int64) *Builder {
	return bd.Emit(Ins{Inst: isa.Inst{Op: isa.LI, Rd: rd, Imm: imm}})
}

// Ld emits a load: rd = mem[rs1+off].
func (bd *Builder) Ld(rd, rs1 isa.Reg, off int64) *Builder {
	return bd.Emit(Ins{Inst: isa.Inst{Op: isa.LD, Rd: rd, Rs1: rs1, Imm: off}})
}

// St emits a store: mem[rs1+off] = rs2.
func (bd *Builder) St(rs2, rs1 isa.Reg, off int64) *Builder {
	return bd.Emit(Ins{Inst: isa.Inst{Op: isa.ST, Rs1: rs1, Rs2: rs2, Imm: off}})
}

// La emits a load-address of a block.
func (bd *Builder) La(rd isa.Reg, target *Block) *Builder {
	return bd.Emit(Ins{Inst: isa.Inst{Op: isa.LA, Rd: rd}, BlockTarget: target})
}

// Branch seals the current block with a conditional branch and leaves no
// current block; callers continue with SetBlock.
func (bd *Builder) Branch(cmp isa.Opcode, rs1, rs2 isa.Reg, taken, fall *Block) {
	if !cmp.IsCondBranch() {
		panic(fmt.Sprintf("prog: Builder.Branch: %v is not a conditional branch", cmp))
	}
	b := bd.cur
	b.Kind = TermBranch
	b.CmpOp = cmp
	b.Rs1, b.Rs2 = rs1, rs2
	b.Taken, b.Next = taken, fall
	bd.cur = nil
}

// Goto seals the current block with an unconditional transfer to target.
func (bd *Builder) Goto(target *Block) {
	b := bd.cur
	b.Kind = TermFall
	b.Next = target
	bd.cur = nil
}

// Call seals the current block with a call to callee continuing at cont.
func (bd *Builder) Call(callee *Func, cont *Block) {
	b := bd.cur
	b.Kind = TermCall
	b.Callee = callee
	b.Next = cont
	bd.cur = nil
}

// Ret seals the current block with a return.
func (bd *Builder) Ret() {
	bd.cur.Kind = TermRet
	bd.cur = nil
}

// Halt seals the current block with a halt.
func (bd *Builder) Halt() {
	bd.cur.Kind = TermHalt
	bd.cur = nil
}
