package prog

import (
	"testing"

	"repro/internal/isa"
)

// buildCallPair builds caller/callee with a package-style cross arc so
// Clone exercises every redirect path.
func buildCallPair(t *testing.T) *Program {
	t.Helper()
	bd := NewBuilder()
	callee := bd.Func("callee")
	calleeEntry := bd.Cur()
	bd.OpI(isa.ADDI, 5, 5, 1)
	bd.Ret()

	bd.Func("main")
	bd.Main()
	cont := bd.NewBlock()
	bd.Li(1, 7)
	bd.Call(callee, cont)
	bd.SetBlock(cont)
	bd.La(6, cont)
	bd.Halt()

	// A package function with a cross-function exit arc and an origin.
	pkg := bd.P.AddFunc("pkg")
	pkg.IsPackage = true
	pkg.PhaseID = 2
	pb := bd.P.NewBlock(pkg)
	pb.Kind = TermFall
	pb.Next = calleeEntry
	pb.Origin = calleeEntry
	pb.ExitConsumes = []isa.Reg{5}
	return bd.P
}

func TestCloneDeepCopies(t *testing.T) {
	p := buildCallPair(t)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if err := c.Verify(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if c.Main == p.Main || c.Main == nil || c.Main.Name != "main" {
		t.Fatal("Main not redirected")
	}
	if len(c.Funcs) != len(p.Funcs) {
		t.Fatal("function count differs")
	}
	// Call targets redirected into the clone.
	var cCall *Block
	for _, b := range c.Main.Blocks {
		if b.Kind == TermCall {
			cCall = b
		}
	}
	if cCall == nil || cCall.Callee == p.Funcs[0] || cCall.Callee.Name != "callee" {
		t.Fatal("clone call not redirected")
	}
	// Package metadata, ExitConsumes and Origin preserved.
	cp := c.FuncByName("pkg")
	if cp == nil || !cp.IsPackage || cp.PhaseID != 2 {
		t.Fatal("package flags lost")
	}
	if len(cp.Blocks[0].ExitConsumes) != 1 || cp.Blocks[0].ExitConsumes[0] != 5 {
		t.Fatal("ExitConsumes lost")
	}
	if cp.Blocks[0].Origin == nil || cp.Blocks[0].Origin.Fn != c.FuncByName("callee") {
		t.Fatal("Origin not redirected into the clone")
	}
	// LA block targets redirected.
	var la *Ins
	for _, b := range c.Main.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == isa.LA {
				la = &b.Insts[i]
			}
		}
	}
	if la == nil || la.BlockTarget == nil || la.BlockTarget.Fn != c.Main {
		t.Fatal("LA target not redirected")
	}
	// Mutating the clone leaves the original untouched.
	c.Main.Blocks[0].Insts[0].Imm = 42
	if p.Main.Blocks[0].Insts[0].Imm == 42 {
		t.Fatal("clone shares instruction storage")
	}
}

func TestCloneLinearizesIdentically(t *testing.T) {
	p := buildCallPair(t)
	c := p.Clone()
	i1, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	i2, err := c.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(i1.Code) != len(i2.Code) {
		t.Fatalf("clone image size differs: %d vs %d", len(i1.Code), len(i2.Code))
	}
	for i := range i1.Code {
		if i1.Code[i] != i2.Code[i] {
			t.Fatalf("clone image differs at slot %d: %v vs %v", i, i1.Code[i], i2.Code[i])
		}
	}
	if i1.Entry != i2.Entry {
		t.Fatal("entry addresses differ")
	}
}

func TestCloneDataIndependent(t *testing.T) {
	p := buildCallPair(t)
	p.Data = []int64{1, 2, 3}
	c := p.Clone()
	c.Data[0] = 99
	if p.Data[0] == 99 {
		t.Fatal("clone shares data segment")
	}
}

func TestBackEdges(t *testing.T) {
	bd := NewBuilder()
	f := bd.Func("main")
	bd.Main()
	head := bd.NewBlock()
	body := bd.NewBlock()
	exit := bd.NewBlock()
	bd.Goto(head)
	bd.SetBlock(head)
	bd.Branch(isa.BLT, 1, 2, body, exit)
	bd.SetBlock(body)
	bd.Goto(head) // the back edge
	bd.SetBlock(exit)
	bd.Halt()

	back := BackEdges(f)
	if !back[Edge{From: body, To: head}] {
		t.Error("loop back edge not identified")
	}
	if back[Edge{From: head, To: body}] || back[Edge{From: f.Blocks[0], To: head}] {
		t.Error("forward edges misclassified as back edges")
	}
	if len(back) != 1 {
		t.Errorf("back edges = %d, want 1", len(back))
	}
}

func TestBackEdgesUnreachableBlocks(t *testing.T) {
	bd := NewBuilder()
	f := bd.Func("main")
	bd.Main()
	bd.Halt()
	// An unreachable self-loop still gets classified (visited as a root).
	orphan := bd.P.NewBlock(f)
	orphan.Kind = TermFall
	orphan.Next = orphan
	back := BackEdges(f)
	if !back[Edge{From: orphan, To: orphan}] {
		t.Error("self-loop on unreachable block not identified")
	}
}

func TestProgramComputePredsCrossFunction(t *testing.T) {
	p := buildCallPair(t)
	p.ComputePreds()
	calleeEntry := p.FuncByName("callee").Entry()
	// The package's cross-function arc counts as a predecessor
	// program-wide.
	found := false
	for _, pr := range calleeEntry.Preds() {
		if pr.Fn.Name == "pkg" {
			found = true
		}
	}
	if !found {
		t.Error("cross-function arc missing from program-wide preds")
	}
}

func TestVerifyMoreErrorCases(t *testing.T) {
	// Main not in Funcs.
	p := New()
	stray := &Func{Name: "stray"}
	b := &Block{Fn: stray, Kind: TermHalt}
	stray.Blocks = []*Block{b}
	p.Main = stray
	if err := p.Verify(); err == nil {
		t.Error("Main outside Funcs should fail")
	}

	// Duplicate function object.
	bd := NewBuilder()
	bd.Func("main")
	bd.Main()
	bd.Halt()
	bd.P.Funcs = append(bd.P.Funcs, bd.P.Funcs[0])
	if err := bd.P.Verify(); err == nil {
		t.Error("duplicate function should fail")
	}

	// Call block with nil continuation.
	bd2 := NewBuilder()
	callee := bd2.Func("callee")
	bd2.Ret()
	bd2.Func("main")
	bd2.Main()
	cont := bd2.NewBlock()
	bd2.Call(callee, cont)
	bd2.SetBlock(cont)
	bd2.Halt()
	for _, blk := range bd2.P.Main.Blocks {
		if blk.Kind == TermCall {
			blk.Next = nil
		}
	}
	if err := bd2.P.Verify(); err == nil {
		t.Error("call without continuation should fail")
	}

	// Branch with nil taken.
	p3, f3 := buildDiamond(t)
	f3.Blocks[0].Taken = nil
	if err := p3.Verify(); err == nil {
		t.Error("branch without taken target should fail")
	}

	// LA pointing outside the program.
	p4, f4 := buildDiamond(t)
	other := NewBuilder()
	other.Func("x")
	other.Halt()
	f4.Blocks[0].Insts = append(f4.Blocks[0].Insts, Ins{
		Inst:        isa.Inst{Op: isa.LA, Rd: 1},
		BlockTarget: other.P.Funcs[0].Blocks[0],
	})
	if err := p4.Verify(); err == nil {
		t.Error("LA to foreign program should fail")
	}

	// BlockTarget on a non-LA instruction.
	p5, f5 := buildDiamond(t)
	f5.Blocks[0].Insts[0].BlockTarget = f5.Blocks[1]
	if err := p5.Verify(); err == nil {
		t.Error("BlockTarget on non-LA should fail")
	}

	// Invalid register in body.
	p6, f6 := buildDiamond(t)
	f6.Blocks[0].Insts[0].Rd = isa.Reg(200)
	if err := p6.Verify(); err == nil {
		t.Error("invalid register should fail")
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Main before Func", func() { NewBuilder().Main() })
	mustPanic("NewBlock before Func", func() { NewBuilder().NewBlock() })
	mustPanic("Emit with no block", func() {
		bd := NewBuilder()
		bd.Func("f")
		bd.Halt()
		bd.Li(1, 2)
	})
	mustPanic("Branch with non-branch op", func() {
		bd := NewBuilder()
		bd.Func("f")
		b := bd.NewBlock()
		bd.Branch(isa.ADD, 1, 2, b, b)
	})
	mustPanic("SetBlock foreign block", func() {
		bd := NewBuilder()
		bd.Func("f")
		bd.Halt()
		bd2 := NewBuilder()
		bd2.Func("g")
		foreign := bd2.Cur()
		bd.Func("h")
		bd.SetBlock(foreign)
	})
}
