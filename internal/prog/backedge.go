package prog

// Edge identifies a CFG arc by endpoints (directions collapse: a branch
// whose taken and fallthrough targets coincide yields one edge).
type Edge struct {
	From, To *Block
}

// BackEdges returns the back edges of f's CFG: arcs from a block to one of
// its DFS ancestors, computed from the function entry (unreachable blocks
// are visited as extra roots in layout order). Both the paper's root/entry
// identification (§3.3.2) and region growth (§3.2.3) ignore back edges.
func BackEdges(f *Func) map[Edge]bool {
	back := make(map[Edge]bool)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Block]uint8, len(f.Blocks))

	type frame struct {
		b     *Block
		succs []*Block
		i     int
	}
	var dfs func(root *Block)
	dfs = func(root *Block) {
		if color[root] != white {
			return
		}
		stack := []frame{{b: root, succs: root.Succs(nil)}}
		color[root] = grey
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.i >= len(fr.succs) {
				color[fr.b] = black
				stack = stack[:len(stack)-1]
				continue
			}
			s := fr.succs[fr.i]
			fr.i++
			if s.Fn != f {
				continue // cross-function arcs are not part of this CFG
			}
			switch color[s] {
			case white:
				color[s] = grey
				stack = append(stack, frame{b: s, succs: s.Succs(nil)})
			case grey:
				back[Edge{fr.b, s}] = true
			}
		}
	}
	if e := f.Entry(); e != nil {
		dfs(e)
	}
	for _, b := range f.Blocks {
		dfs(b)
	}
	return back
}
