// Package prog holds the structured program representation the Vacuum
// Packing pipeline analyzes and rewrites: functions of basic blocks with
// explicit control-flow arcs and a call graph, plus the linearizer that
// lowers the structure to a flat VPIR code image for simulation.
//
// The representation mirrors the paper's: "the CFG is constructed with
// instructions divided into basic blocks, where each block contains no more
// than one branch or sub-routine call, which is always the last instruction
// in the block" (§3.2.1). Block terminators are symbolic (pointers to blocks
// and functions); only linearization assigns addresses.
package prog

import (
	"fmt"

	"repro/internal/isa"
)

// Memory layout constants shared by the linearizer, emulator and workloads.
const (
	// DataBase is the byte address of the start of the data segment.
	DataBase = 1 << 20
	// StackBase is the initial stack pointer; the stack grows down.
	StackBase = 1 << 30
	// ScratchBase is where the optimizer allocates its own state words
	// (dynamic launch-point slots). The region lies outside the
	// data-segment equivalence hash: optimizer bookkeeping holds code
	// addresses, which legitimately differ between original and rewritten
	// images.
	ScratchBase = StackBase / 2
)

// TermKind classifies a block's terminator.
type TermKind uint8

const (
	// TermFall transfers to Next unconditionally (a fallthrough or jump,
	// depending on layout adjacency).
	TermFall TermKind = iota
	// TermBranch is a conditional branch: Taken if the condition holds,
	// otherwise Next.
	TermBranch
	// TermCall calls Callee and continues at Next when it returns.
	TermCall
	// TermRet returns through the return-address register.
	TermRet
	// TermHalt stops the machine.
	TermHalt
	// TermJumpReg transfers to the address in register Rs1 (indirect
	// jump). Its successors are statically unknown; only optimizer-
	// synthesized code (dynamic launch shims) uses it.
	TermJumpReg
)

func (k TermKind) String() string {
	switch k {
	case TermFall:
		return "fall"
	case TermBranch:
		return "branch"
	case TermCall:
		return "call"
	case TermRet:
		return "ret"
	case TermHalt:
		return "halt"
	case TermJumpReg:
		return "jr"
	default:
		return fmt.Sprintf("term?%d", uint8(k))
	}
}

// Ins is one non-terminator instruction inside a block. BlockTarget, when
// non-nil, names the block whose address the linearizer substitutes into
// the instruction's Target field (used by LA to materialize return
// addresses for partially inlined calls).
type Ins struct {
	isa.Inst
	BlockTarget *Block
}

// Block is a basic block. Control leaves only through the terminator
// described by Kind and the Taken/Next/Callee fields.
type Block struct {
	ID    int
	Fn    *Func
	Insts []Ins

	Kind   TermKind
	CmpOp  isa.Opcode // TermBranch: BEQ, BNE, BLT or BGE
	Rs1    isa.Reg    // TermBranch comparison operands
	Rs2    isa.Reg
	Taken  *Block // TermBranch: target when the condition holds
	Next   *Block // TermFall/TermBranch fallthrough/TermCall continuation
	Callee *Func  // TermCall target

	// Origin points at the block this one was copied from during package
	// construction; nil for original blocks. It is the identity used by
	// package linking to find "the same branch" in sibling packages.
	Origin *Block

	// ExitConsumes lists registers live into the original cold code this
	// exit block transfers to. It models the paper's dummy consumer
	// instructions: the optimizer must treat these registers as read here.
	ExitConsumes []isa.Reg

	preds []*Block
}

// Succs appends b's control-flow successors within the CFG to dst. Call
// blocks have their continuation as the sole CFG successor; the callee
// relationship lives in the call graph.
func (b *Block) Succs(dst []*Block) []*Block {
	switch b.Kind {
	case TermFall:
		if b.Next != nil {
			dst = append(dst, b.Next)
		}
	case TermBranch:
		if b.Taken != nil {
			dst = append(dst, b.Taken)
		}
		if b.Next != nil && b.Next != b.Taken {
			dst = append(dst, b.Next)
		}
	case TermCall:
		if b.Next != nil {
			dst = append(dst, b.Next)
		}
	}
	return dst
}

// Append appends body instructions to b. Packages outside the IR's
// owners (internal/prog, internal/opt, internal/pack) must extend
// instruction lists through this method rather than writing b.Insts
// directly — cmd/vplint's insts-mutation check enforces the split, which
// keeps the optimizer's pass certificates (opt.PassRecord) honest about
// who rewrote what.
func (b *Block) Append(ins ...Ins) {
	b.Insts = append(b.Insts, ins...)
}

// Preds returns the most recently computed predecessor list. Callers that
// mutate the CFG must call Program.ComputePreds (or Func.ComputePreds)
// before relying on it.
func (b *Block) Preds() []*Block { return b.preds }

// NumInsts counts the instructions in the block including its terminator's
// primary instruction (branches, calls, returns and halts each occupy one
// slot; fallthroughs may or may not need a jump depending on layout, so
// they are not counted here).
func (b *Block) NumInsts() int {
	n := len(b.Insts)
	switch b.Kind {
	case TermBranch, TermCall, TermRet, TermHalt, TermJumpReg:
		n++
	}
	return n
}

// IsEntry reports whether b is its function's entry block.
func (b *Block) IsEntry() bool {
	return b.Fn != nil && len(b.Fn.Blocks) > 0 && b.Fn.Blocks[0] == b
}

func (b *Block) String() string {
	if b == nil {
		return "<nil>"
	}
	fn := "?"
	if b.Fn != nil {
		fn = b.Fn.Name
	}
	return fmt.Sprintf("%s.b%d", fn, b.ID)
}

// Func is a function: an ordered list of blocks whose first element is the
// entry. The order is the code layout the linearizer emits.
type Func struct {
	Name   string
	Blocks []*Block
	// IsPackage marks functions created by package extraction. Package
	// functions are entered by launch-point jumps and package links rather
	// than calls, and may contain arcs to blocks of other functions
	// (side exits back to original code).
	IsPackage bool
	// PhaseID records which detected phase a package was built for.
	PhaseID int
}

// Entry returns the function's entry block, or nil if it has no blocks.
func (f *Func) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// ComputePreds recomputes predecessor lists for blocks of this function
// considering only arcs that originate inside it.
func (f *Func) ComputePreds() {
	for _, b := range f.Blocks {
		b.preds = b.preds[:0]
	}
	var succs []*Block
	for _, b := range f.Blocks {
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			if s.Fn == f {
				s.preds = append(s.preds, b)
			}
		}
	}
}

// NumInsts sums NumInsts over the function's blocks.
func (f *Func) NumInsts() int {
	n := 0
	for _, b := range f.Blocks {
		n += b.NumInsts()
	}
	return n
}

// Program is a whole VPIR program: an entry function, the function list,
// and the initial data segment.
type Program struct {
	Funcs []*Func
	Main  *Func
	// Data is the initial contents of the data segment, one 64-bit word per
	// element, starting at byte address DataBase.
	Data []int64
	// ScratchWords counts optimizer state words allocated at ScratchBase
	// (zero-initialized at run time).
	ScratchWords int

	nextBlockID int
}

// AllocScratch reserves one optimizer state word and returns its byte
// address.
func (p *Program) AllocScratch() int64 {
	addr := int64(ScratchBase) + int64(p.ScratchWords)*8
	p.ScratchWords++
	return addr
}

// New returns an empty program.
func New() *Program { return &Program{} }

// AddFunc appends a new empty function with the given name.
func (p *Program) AddFunc(name string) *Func {
	f := &Func{Name: name}
	p.Funcs = append(p.Funcs, f)
	return f
}

// NewBlock appends a fresh block (TermHalt by default so an unfinished
// block cannot fall off the end silently) to fn and returns it.
func (p *Program) NewBlock(fn *Func) *Block {
	b := &Block{ID: p.nextBlockID, Fn: fn, Kind: TermHalt}
	p.nextBlockID++
	fn.Blocks = append(fn.Blocks, b)
	return b
}

// AdoptBlock gives an externally constructed block (e.g. a clone) a fresh
// ID and appends it to fn.
func (p *Program) AdoptBlock(fn *Func, b *Block) {
	b.ID = p.nextBlockID
	p.nextBlockID++
	b.Fn = fn
	fn.Blocks = append(fn.Blocks, b)
}

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ComputePreds recomputes predecessor lists program-wide, including arcs
// that cross function boundaries (package launch points, links and exits).
func (p *Program) ComputePreds() {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			b.preds = b.preds[:0]
		}
	}
	var succs []*Block
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			succs = b.Succs(succs[:0])
			for _, s := range succs {
				s.preds = append(s.preds, b)
			}
		}
	}
}

// NumBlocks counts blocks program-wide.
func (p *Program) NumBlocks() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
	}
	return n
}

// NumInsts counts static instructions program-wide (linearized size may be
// slightly larger because of layout jumps).
func (p *Program) NumInsts() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.NumInsts()
	}
	return n
}

// CallSites returns every call block in the program, in layout order.
func (p *Program) CallSites() []*Block {
	var sites []*Block
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Kind == TermCall {
				sites = append(sites, b)
			}
		}
	}
	return sites
}

// Callees returns the set of functions fn calls directly.
func Callees(fn *Func) []*Func {
	seen := make(map[*Func]bool)
	var out []*Func
	for _, b := range fn.Blocks {
		if b.Kind == TermCall && b.Callee != nil && !seen[b.Callee] {
			seen[b.Callee] = true
			out = append(out, b.Callee)
		}
	}
	return out
}

// CloneFunc deep-copies fn into a new function registered in p under
// newName. Arcs whose targets lie inside fn are redirected to the copies;
// arcs that leave fn keep their original targets. Each copy's Origin chain
// points at the block it was cloned from (following to the root original).
// The returned map sends original blocks to their clones.
func (p *Program) CloneFunc(fn *Func, newName string) (*Func, map[*Block]*Block) {
	nf := p.AddFunc(newName)
	m := make(map[*Block]*Block, len(fn.Blocks))
	for _, b := range fn.Blocks {
		nb := &Block{
			Fn:           nf,
			Insts:        append([]Ins(nil), b.Insts...),
			Kind:         b.Kind,
			CmpOp:        b.CmpOp,
			Rs1:          b.Rs1,
			Rs2:          b.Rs2,
			Taken:        b.Taken,
			Next:         b.Next,
			Callee:       b.Callee,
			ExitConsumes: append([]isa.Reg(nil), b.ExitConsumes...),
		}
		if b.Origin != nil {
			nb.Origin = b.Origin
		} else {
			nb.Origin = b
		}
		p.AdoptBlock(nf, nb)
		// AdoptBlock appended nb; undo the double append the loop's
		// AdoptBlock causes if callers also appended. (AdoptBlock is the
		// only append here, so nothing to undo; the map records identity.)
		m[b] = nb
	}
	for _, b := range fn.Blocks {
		nb := m[b]
		if t, ok := m[b.Taken]; ok && b.Taken != nil {
			nb.Taken = t
		}
		if t, ok := m[b.Next]; ok && b.Next != nil {
			nb.Next = t
		}
		for i := range nb.Insts {
			if bt := nb.Insts[i].BlockTarget; bt != nil {
				if t, ok := m[bt]; ok {
					nb.Insts[i].BlockTarget = t
				}
			}
		}
	}
	return nf, m
}

// OriginRoot follows a block's Origin chain to the original block it was
// ultimately copied from; for original blocks it returns the block itself.
func OriginRoot(b *Block) *Block {
	for b.Origin != nil {
		b = b.Origin
	}
	return b
}
