// Package trace implements the baseline the paper positions Vacuum
// Packing against: trace-based extraction in the style of Dynamo, rePLay
// and the other run-time systems §1-§2 discuss. From the same Hot Spot
// Detector profile, it forms superblock traces — single-entry, multi-exit
// dominant paths — and deploys them as relocated code with launch points,
// instead of forming phase-wide packages.
//
// Traces follow each branch's dominant direction while it is biased enough
// (FollowThreshold), stop at calls, returns and length caps, and may close
// back on their own head to keep loops inside the trace. What they cannot
// do — by construction — is include both directions of an unbiased branch,
// span a call, or specialize per phase beyond the profile they grew from;
// those limits are exactly the scope argument of §2, and the comparison
// bench (BenchmarkBaselineTraces) measures their cost.
package trace

import (
	"fmt"
	"sort"

	"repro/internal/phasedb"
	"repro/internal/prog"
)

// Config controls trace formation.
type Config struct {
	// FollowThreshold is the minimum probability of a branch direction for
	// the trace to follow it; below it the trace ends (classic trace
	// growing uses 0.6-0.7).
	FollowThreshold float64
	// MaxBlocks caps a single trace's length.
	MaxBlocks int
	// MaxTraces caps the total number of traces deployed.
	MaxTraces int
}

// DefaultConfig returns conventional trace-formation parameters.
func DefaultConfig() Config {
	return Config{
		FollowThreshold: 0.65,
		MaxBlocks:       24,
		MaxTraces:       64,
	}
}

// Trace is one deployed trace.
type Trace struct {
	Fn     *prog.Func
	Seed   *prog.Block // original seed block
	Blocks int         // trace length in blocks (excluding exit stubs)
	Loops  bool        // last block closes back to the trace head
}

// Result summarizes trace deployment.
type Result struct {
	Traces       []*Trace
	LaunchPoints int
	OrigInsts    int
	AddedInsts   int
}

// CodeGrowth returns AddedInsts/OrigInsts.
func (r *Result) CodeGrowth() float64 {
	if r.OrigInsts == 0 {
		return 0
	}
	return float64(r.AddedInsts) / float64(r.OrigInsts)
}

// branchStats aggregates every phase's records per block: trace formation
// is aggregate-profile-driven, which is precisely its difference from
// phase-sensitive packaging.
func branchStats(img *prog.Image, db *phasedb.DB) map[*prog.Block]phasedb.BranchStat {
	out := make(map[*prog.Block]phasedb.BranchStat)
	for _, ph := range db.Phases {
		for _, bs := range ph.Branches {
			b := img.BlockAt(bs.PC)
			if b == nil || b.Kind != prog.TermBranch || img.TermAddr[b] != bs.PC {
				continue
			}
			agg := out[b]
			agg.PC = bs.PC
			agg.Exec += bs.Exec
			agg.Taken += bs.Taken
			out[b] = agg
		}
	}
	return out
}

// Build forms and installs traces on p (mutating it) from the phase
// database gathered on an identically-linearizing image.
func Build(cfg Config, p *prog.Program, img *prog.Image, db *phasedb.DB) (*Result, error) {
	if cfg.FollowThreshold == 0 {
		cfg = DefaultConfig()
	}
	stats := branchStats(img, db)
	if len(stats) == 0 {
		return nil, fmt.Errorf("trace: no profiled branches")
	}
	res := &Result{OrigInsts: p.NumInsts()}

	// Seeds, hottest first: targets of profiled back edges (loop heads)
	// and entries of functions containing profiled branches — the places
	// run-time trace systems anchor their traces.
	type seed struct {
		b *prog.Block
		w uint64
	}
	seedWeight := make(map[*prog.Block]uint64)
	backByFunc := make(map[*prog.Func]map[prog.Edge]bool)
	for b, bs := range stats {
		back := backByFunc[b.Fn]
		if back == nil {
			back = prog.BackEdges(b.Fn)
			backByFunc[b.Fn] = back
		}
		for _, dst := range []*prog.Block{b.Taken, b.Next} {
			if dst != nil && back[prog.Edge{From: b, To: dst}] {
				seedWeight[dst] += bs.Exec
			}
		}
		if e := b.Fn.Entry(); e != nil {
			seedWeight[e] += bs.Exec / 4
		}
	}
	seeds := make([]seed, 0, len(seedWeight))
	for b, w := range seedWeight {
		seeds = append(seeds, seed{b, w})
	}
	sort.Slice(seeds, func(i, j int) bool {
		if seeds[i].w != seeds[j].w {
			return seeds[i].w > seeds[j].w
		}
		return seeds[i].b.ID < seeds[j].b.ID
	})

	claimed := make(map[*prog.Block]bool) // seed blocks already traced
	liveness := make(map[*prog.Func]*prog.Liveness)
	for _, sd := range seeds {
		if len(res.Traces) >= cfg.MaxTraces {
			break
		}
		if claimed[sd.b] {
			continue
		}
		tr := buildTrace(cfg, p, sd.b, stats, liveness)
		if tr == nil {
			continue
		}
		claimed[sd.b] = true
		res.Traces = append(res.Traces, tr)
	}
	if len(res.Traces) == 0 {
		return nil, fmt.Errorf("trace: no traces formed")
	}

	// Launch points: original arcs and call sites into the seeds.
	entries := make(map[*prog.Block]*launch)
	for _, tr := range res.Traces {
		if _, dup := entries[tr.Seed]; !dup {
			entries[tr.Seed] = &launch{fn: tr.Fn, entry: tr.Fn.Entry()}
		}
	}
	res.LaunchPoints = patch(p, entries)

	for _, tr := range res.Traces {
		res.AddedInsts += tr.Fn.NumInsts()
	}
	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("trace: install produced invalid program: %w", err)
	}
	return res, nil
}

type launch struct {
	fn    *prog.Func
	entry *prog.Block
}

// buildTrace grows one trace from seed (inlining through calls) and
// deploys it as a trace function.
func buildTrace(cfg Config, p *prog.Program, seedBlk *prog.Block, stats map[*prog.Block]phasedb.BranchStat, liveness map[*prog.Func]*prog.Liveness) *Trace {
	path, loops := selectPath(cfg, seedBlk, stats)
	if len(path) < 2 {
		return nil
	}
	livenessOf := func(f *prog.Func) *prog.Liveness {
		lv := liveness[f]
		if lv == nil {
			lv = prog.ComputeLiveness(f)
			liveness[f] = lv
		}
		return lv
	}
	return deployPath(p, seedBlk, path, loops, livenessOf(seedBlk.Fn), livenessOf)
}

// patch retargets original-code arcs and call sites into trace entries.
func patch(p *prog.Program, entries map[*prog.Block]*launch) int {
	count := 0
	for _, f := range p.Funcs {
		if f.IsPackage {
			continue
		}
		for _, b := range f.Blocks {
			if b.Kind == prog.TermBranch {
				if l, ok := entries[b.Taken]; ok {
					b.Taken = l.entry
					count++
				}
			}
			if b.Kind == prog.TermFall || b.Kind == prog.TermBranch || b.Kind == prog.TermCall {
				if l, ok := entries[b.Next]; ok {
					b.Next = l.entry
					count++
				}
			}
			if b.Kind == prog.TermCall {
				if l, ok := entries[b.Callee.Entry()]; ok {
					b.Callee = l.fn
					count++
				}
			}
		}
	}
	return count
}
