package trace

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/workload"
)

// tracePipeline profiles a workload and deploys traces instead of packages.
func tracePipeline(t *testing.T, bench string) (*Result, *cpu.TimingStats, *cpu.TimingStats, bool) {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	in := b.Inputs[0]
	in.Scale = 1
	p := b.Build(in)
	base := p.Clone()

	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := core.Profile(core.ScaledConfig(), img, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(DefaultConfig(), p, img, db)
	if err != nil {
		t.Fatal(err)
	}

	baseImg, err := base.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	tracedImg, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	baseStats, baseM, err := cpu.RunTimed(cpu.DefaultConfig(), baseImg, 0)
	if err != nil {
		t.Fatal(err)
	}
	tracedStats, tracedM, err := cpu.RunTimed(cpu.DefaultConfig(), tracedImg, 0)
	if err != nil {
		t.Fatal(err)
	}
	h1, n1 := baseM.DataHash()
	h2, n2 := tracedM.DataHash()
	return res, &baseStats, &tracedStats, h1 == h2 && n1 == n2
}

func TestTracesDeployAndPreserveSemantics(t *testing.T) {
	res, _, traced, eq := tracePipeline(t, "gzip")
	if !eq {
		t.Fatal("traced program diverged from original")
	}
	if len(res.Traces) == 0 || res.LaunchPoints == 0 {
		t.Fatalf("traces=%d launch=%d", len(res.Traces), res.LaunchPoints)
	}
	if traced.PackageCoverage() <= 0 {
		t.Error("no execution reached trace code")
	}
	loops := 0
	for _, tr := range res.Traces {
		if tr.Blocks < 2 {
			t.Errorf("trace %s has %d blocks", tr.Fn.Name, tr.Blocks)
		}
		if tr.Loops {
			loops++
		}
	}
	// Whether any trace closes its loop depends on every branch in the
	// loop body being biased past the follow threshold — gzip's unbiased
	// match-finding branch ends its traces early, which is precisely the
	// trace-scope weakness §2 argues. Loop closure is therefore reported,
	// not required.
	t.Logf("gzip traces: %d traces (%d looping), coverage %.1f%%, growth %.1f%%",
		len(res.Traces), loops, traced.PackageCoverage()*100, res.CodeGrowth()*100)
}

// The paper's scope argument: phase-wide packages should capture more
// execution than dominant-path traces formed from the same profile.
func TestPackagesBeatTracesOnCoverage(t *testing.T) {
	for _, bench := range []string{"m88ksim", "perl"} {
		bench := bench
		t.Run(bench, func(t *testing.T) {
			_, _, traced, eq := tracePipeline(t, bench)
			if !eq {
				t.Fatal("traced program diverged")
			}

			b, _ := workload.ByName(bench)
			in := b.Inputs[0]
			in.Scale = 1
			out, err := core.Run(core.ScaledConfig(), b.Build(in))
			if err != nil {
				t.Fatal(err)
			}
			ev, err := out.Evaluate(cpu.DefaultConfig(), 0)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: trace coverage %.1f%% vs package coverage %.1f%%",
				bench, traced.PackageCoverage()*100, ev.Coverage*100)
			if ev.Coverage <= traced.PackageCoverage() {
				t.Errorf("packages (%.1f%%) should out-cover traces (%.1f%%)",
					ev.Coverage*100, traced.PackageCoverage()*100)
			}
		})
	}
}

func TestBuildErrors(t *testing.T) {
	b, _ := workload.ByName("li")
	in := b.Inputs[0]
	p := b.Build(in)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	// Empty phase DB: nothing to trace.
	db, _, err := core.Profile(core.ScaledConfig(), img, nil)
	if err != nil {
		t.Fatal(err)
	}
	db.Phases = nil
	if _, err := Build(DefaultConfig(), p, img, db); err == nil {
		t.Error("empty profile should fail")
	}
}

// A hand-built loop whose body is fully biased must close into a looping
// trace, and an inlined call inside it must materialize a return address.
func TestLoopTraceClosesAndInlinesCalls(t *testing.T) {
	src := `
.func tick
  addi r5, r5, 1
  ret

.func main
.main
  li r1, 0
  li r2, 5000
loop:
  ld r3, 8(r0)
  bne r3, r0, rare
  call tick
  addi r1, r1, 1
body:
  blt r1, r2, loop
  halt
rare:
  addi r6, r6, 1
  jmp body
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	base := p.Clone()
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := core.Profile(core.ScaledConfig(), img, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(DefaultConfig(), p, img, db)
	if err != nil {
		t.Fatal(err)
	}
	var looping *Trace
	for _, tr := range res.Traces {
		if tr.Loops {
			looping = tr
		}
	}
	if looping == nil {
		t.Fatal("fully biased loop did not close a trace")
	}
	la := 0
	for _, blk := range looping.Fn.Blocks {
		for _, in := range blk.Insts {
			if in.Op == isa.LA && in.Rd == isa.RRA {
				la++
			}
		}
	}
	if la == 0 {
		t.Error("inlined call did not materialize a return address")
	}
	// Functional equivalence of the traced program.
	baseImg, _ := base.Linearize()
	tracedImg, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	mb := cpu.NewMachine(baseImg)
	if err := mb.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	mt := cpu.NewMachine(tracedImg)
	if err := mt.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	// RRA holds a code address and legitimately differs between the two
	// images; every data register must match.
	for r := 0; r < int(isa.RRA); r++ {
		if mb.IntRegs[r] != mt.IntRegs[r] {
			t.Fatalf("looping trace changed r%d: %d vs %d", r, mb.IntRegs[r], mt.IntRegs[r])
		}
	}
	// The trace must actually capture the bulk of execution.
	stats, _, err := cpu.RunTimed(cpu.DefaultConfig(), tracedImg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PackageCoverage() < 0.5 {
		t.Errorf("looping trace coverage %.1f%%, want > 50%%", stats.PackageCoverage()*100)
	}
}
