package trace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/phasedb"
	"repro/internal/prog"
)

// Trace growth with call inlining, the way Dynamo-class systems form
// interprocedural traces: a call continues the trace into the callee (the
// return address is materialized so side exits still come back), and the
// callee's return continues at the call's continuation.

// stepKind describes how a path element transfers to its successor.
type stepKind uint8

const (
	stepPlain      stepKind = iota // fall/branch following the chosen arc
	stepInlineCall                 // call followed into the callee
	stepInlineRet                  // return rejoining the pending continuation
)

type pathStep struct {
	ob   *prog.Block
	kind stepKind
	// For stepInlineCall: the original continuation block and, once the
	// path is complete, the path index holding its copy (-1 if the trace
	// ended inside the callee).
	contOrig *prog.Block
	contIdx  int
}

type pendingCont struct {
	contOrig *prog.Block
	callIdx  int
}

// selectPath grows the trace path from seed, following dominant branch
// directions and inlining through calls up to maxDepth.
func selectPath(cfg Config, seedBlk *prog.Block, stats map[*prog.Block]phasedb.BranchStat) (path []pathStep, loops bool) {
	const maxDepth = 4
	onPath := make(map[*prog.Block]bool)
	var stack []pendingCont
	cur := seedBlk
	for cur != nil && len(path) < cfg.MaxBlocks && !onPath[cur] {
		idx := len(path)
		path = append(path, pathStep{ob: cur, kind: stepPlain, contIdx: -1})
		onPath[cur] = true

		next := (*prog.Block)(nil)
		switch cur.Kind {
		case prog.TermFall:
			next = cur.Next
		case prog.TermBranch:
			bs, ok := stats[cur]
			if ok && bs.Exec > 0 {
				frac := bs.TakenFraction()
				switch {
				case frac >= cfg.FollowThreshold:
					next = cur.Taken
				case 1-frac >= cfg.FollowThreshold:
					next = cur.Next
				}
			}
		case prog.TermCall:
			if len(stack) < maxDepth && cur.Callee != nil && cur.Callee.Entry() != nil &&
				!onPath[cur.Callee.Entry()] {
				path[idx].kind = stepInlineCall
				path[idx].contOrig = cur.Next
				stack = append(stack, pendingCont{contOrig: cur.Next, callIdx: idx})
				next = cur.Callee.Entry()
			}
		case prog.TermRet:
			if len(stack) > 0 {
				pc := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				path[idx].kind = stepInlineRet
				path[idx].contOrig = pc.contOrig
				path[pc.callIdx].contIdx = len(path) // the continuation comes next
				next = pc.contOrig
			}
		}
		if next == nil {
			break
		}
		if next == seedBlk && len(stack) == 0 {
			loops = true
			break
		}
		if next.Fn != cur.Fn && path[idx].kind == stepPlain {
			break // never follow stray cross-function arcs
		}
		cur = next
	}
	return path, loops
}

// deployPath materializes the selected path as a trace function.
func deployPath(p *prog.Program, seedBlk *prog.Block, path []pathStep, loops bool, lv *prog.Liveness, livenessOf func(*prog.Func) *prog.Liveness) *Trace {
	fn := p.AddFunc(fmt.Sprintf("%s.trace.b%d", seedBlk.Fn.Name, seedBlk.ID))
	fn.IsPackage = true

	copies := make([]*prog.Block, len(path))
	for i, st := range path {
		cb := &prog.Block{
			Insts:  append([]prog.Ins(nil), st.ob.Insts...),
			Kind:   st.ob.Kind,
			CmpOp:  st.ob.CmpOp,
			Rs1:    st.ob.Rs1,
			Rs2:    st.ob.Rs2,
			Origin: prog.OriginRoot(st.ob),
		}
		p.AdoptBlock(fn, cb)
		copies[i] = cb
	}
	exitTo := func(origin *prog.Block, target *prog.Block) *prog.Block {
		eb := &prog.Block{
			Kind:         prog.TermFall,
			Next:         target,
			ExitConsumes: livenessOf(target.Fn).In[target].Regs(),
			Origin:       prog.OriginRoot(origin),
		}
		p.AdoptBlock(fn, eb)
		return eb
	}
	succCopy := func(i int) *prog.Block {
		if i+1 < len(path) {
			return copies[i+1]
		}
		if loops {
			return copies[0]
		}
		return nil
	}
	for i, st := range path {
		cb := copies[i]
		ob := st.ob
		switch st.kind {
		case stepInlineCall:
			// Materialize the return address: side exits inside the inlined
			// callee run original callee code, whose return comes back here.
			var cont *prog.Block
			var contIns prog.Ins
			if st.contIdx >= 0 && st.contIdx < len(path) {
				cont = copies[st.contIdx]
				contIns = prog.Ins{Inst: isa.Inst{Op: isa.LA, Rd: isa.RRA}, BlockTarget: cont}
			} else {
				contIns = prog.Ins{Inst: isa.Inst{Op: isa.LA, Rd: isa.RRA}, BlockTarget: ob.Next}
			}
			cb.Append(contIns)
			cb.Kind = prog.TermFall
			cb.Callee = nil
			cb.Next = succCopy(i) // the callee's entry copy
		case stepInlineRet:
			cb.Kind = prog.TermFall
			if s := succCopy(i); s != nil {
				cb.Next = s // the pending continuation copy
			} else {
				cb.Next = st.contOrig // trace ended: rejoin original code
			}
		default:
			switch ob.Kind {
			case prog.TermFall:
				if s := succCopy(i); s != nil {
					cb.Next = s
				} else {
					cb.Next = ob.Next // off-trace transfer to original code
				}
			case prog.TermBranch:
				s := succCopy(i)
				if s == nil {
					cb.Taken = exitTo(ob, ob.Taken)
					cb.Next = exitTo(ob, ob.Next)
					break
				}
				if prog.OriginRoot(s) == prog.OriginRoot(ob.Taken) {
					cb.Taken = s
					cb.Next = exitTo(ob, ob.Next)
				} else {
					cb.Next = s
					cb.Taken = exitTo(ob, ob.Taken)
				}
			case prog.TermCall:
				// Un-inlined call: it ends the trace; execution returns to
				// original code after the callee.
				cb.Callee = ob.Callee
				cb.Next = exitTo(ob, ob.Next)
			case prog.TermRet, prog.TermHalt:
				// kept as-is: trace ends here
			}
		}
	}
	_ = lv
	return &Trace{Fn: fn, Seed: seedBlk, Blocks: len(path), Loops: loops}
}
