// Package cliflags centralizes the flag declarations shared by the
// command-line tools (vpack, vpbench, vpdump, vpackd): the execution
// engine knobs (-blockcache, -superblock, -sbthreshold), the structured
// logging pair (-log, -q) and the static verifier gate (-verify). Each
// tool registers the shared groups into its own FlagSet so names,
// defaults and semantics stay identical across the toolbox.
package cliflags

import (
	"flag"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/drift"
	"repro/internal/telemetry"
)

// Machine carries the engine flags: the basic-block simulation cache,
// the superblock tier and its promotion threshold.
type Machine struct {
	blockCache  string
	superblock  string
	sbThreshold int
}

// MachineFlags registers -blockcache, -superblock and -sbthreshold on fs.
func MachineFlags(fs *flag.FlagSet) *Machine {
	m := &Machine{}
	fs.StringVar(&m.blockCache, "blockcache", "on", "basic-block simulation cache for timed runs: on|off")
	fs.StringVar(&m.superblock, "superblock", "on", "superblock (tier-1) trace chaining in the block cache: on|off")
	fs.IntVar(&m.sbThreshold, "sbthreshold", 0, "block executions before superblock promotion (0 = default)")
	return m
}

// Apply validates the parsed values and applies them to mc. The error
// text names the offending flag, ready for a "tool: error" line and a
// usage exit (2).
func (m *Machine) Apply(mc *cpu.Config) error {
	switch m.blockCache {
	case "on":
	case "off":
		mc.DisableBlockCache = true
	default:
		return fmt.Errorf("-blockcache must be on or off")
	}
	switch m.superblock {
	case "on":
	case "off":
		mc.DisableSuperblocks = true
	default:
		return fmt.Errorf("-superblock must be on or off")
	}
	if m.sbThreshold > 0 {
		mc.SuperblockThreshold = m.sbThreshold
	}
	return nil
}

// Log carries the logging pair: -log selects the structured mode, -q
// forces it off (each tool phrases its own -q usage line, since what -q
// silences differs per tool).
type Log struct {
	mode  string
	quiet bool
}

// LogFlags registers -log and -q on fs.
func LogFlags(fs *flag.FlagSet, quietUsage string) *Log {
	l := &Log{}
	fs.BoolVar(&l.quiet, "q", false, quietUsage)
	fs.StringVar(&l.mode, "log", "text", "structured log mode: "+telemetry.LogModes)
	return l
}

// Mode returns the effective log mode: "off" when -q was given,
// otherwise the -log value.
func (l *Log) Mode() string {
	if l.quiet {
		return "off"
	}
	return l.mode
}

// Quiet reports whether -q was given.
func (l *Log) Quiet() bool { return l.quiet }

// VerifyFlag registers -verify on fs.
func VerifyFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("verify", false, "run the static verifier after every pipeline stage (exit 3 on violation)")
}

// EquivFlag registers -equiv on fs: the translation-validation gate.
// Tools that accept it prove every optimized package observationally
// equivalent to its region code and refuse to proceed on refutation
// (exit 4, with a structured counterexample on stderr).
func EquivFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("equiv", false, "prove every optimized package equivalent to its region code (exit 4 on refutation)")
}

// StoreFlag registers -store on fs. Every tool parses it identically:
// an empty value (the default) keeps today's in-memory-only behavior;
// a directory enables the persistent artifact store there. Open the
// returned path with cas.Open (cliflags deliberately does not import
// internal/cas; lowering the flag to a live store is the tool's call).
func StoreFlag(fs *flag.FlagSet) *string {
	return fs.String("store", "", "persistent artifact store `directory` (empty: in-memory only)")
}

// Drift carries the drift-tracking pair: window and ring sizing. The
// same knobs size vpackd's live trackers, vpbench's phase-shift
// assertions and vpdump's offline drift report, so a score measured by
// one tool reproduces under another.
type Drift struct {
	window int
	ring   int
}

// DriftFlags registers -driftwindow and -driftring on fs.
func DriftFlags(fs *flag.FlagSet) *Drift {
	d := &Drift{}
	fs.IntVar(&d.window, "driftwindow", drift.DefaultWindow,
		"hot-spot records per drift analysis window (0 disables drift tracking)")
	fs.IntVar(&d.ring, "driftring", drift.DefaultRing,
		"closed drift windows retained per program (0 disables drift tracking)")
	return d
}

// Config lowers the parsed values to a drift tracker configuration.
func (d *Drift) Config() drift.Config {
	c := drift.DefaultConfig()
	c.Window = d.window
	c.Ring = d.ring
	return c
}
