package cliflags

import (
	"flag"
	"io"
	"testing"

	"repro/internal/cpu"
	"repro/internal/drift"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestMachineDefaults(t *testing.T) {
	fs := newFS()
	m := MachineFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	mc := cpu.DefaultConfig()
	if err := m.Apply(&mc); err != nil {
		t.Fatal(err)
	}
	if mc.DisableBlockCache || mc.DisableSuperblocks {
		t.Errorf("defaults disabled the engine tiers: %+v", mc)
	}
	if mc.SuperblockThreshold != cpu.DefaultConfig().SuperblockThreshold {
		t.Errorf("default -sbthreshold changed the threshold to %d", mc.SuperblockThreshold)
	}
}

func TestMachineOff(t *testing.T) {
	fs := newFS()
	m := MachineFlags(fs)
	if err := fs.Parse([]string{"-blockcache=off", "-superblock=off", "-sbthreshold=7"}); err != nil {
		t.Fatal(err)
	}
	mc := cpu.DefaultConfig()
	if err := m.Apply(&mc); err != nil {
		t.Fatal(err)
	}
	if !mc.DisableBlockCache || !mc.DisableSuperblocks {
		t.Errorf("off values not applied: %+v", mc)
	}
	if mc.SuperblockThreshold != 7 {
		t.Errorf("SuperblockThreshold = %d, want 7", mc.SuperblockThreshold)
	}
}

func TestMachineInvalid(t *testing.T) {
	for _, arg := range []string{"-blockcache=maybe", "-superblock=maybe"} {
		fs := newFS()
		m := MachineFlags(fs)
		if err := fs.Parse([]string{arg}); err != nil {
			t.Fatal(err)
		}
		mc := cpu.DefaultConfig()
		if err := m.Apply(&mc); err == nil {
			t.Errorf("%s: Apply accepted an invalid value", arg)
		}
	}
}

func TestLogMode(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, "text"},
		{[]string{"-log=json"}, "json"},
		{[]string{"-q"}, "off"},
		{[]string{"-log=json", "-q"}, "off"}, // -q wins
	}
	for _, c := range cases {
		fs := newFS()
		l := LogFlags(fs, "quiet")
		if err := fs.Parse(c.args); err != nil {
			t.Fatal(err)
		}
		if got := l.Mode(); got != c.want {
			t.Errorf("%v: Mode() = %q, want %q", c.args, got, c.want)
		}
	}
}

func TestVerifyFlag(t *testing.T) {
	fs := newFS()
	v := VerifyFlag(fs)
	if err := fs.Parse([]string{"-verify"}); err != nil {
		t.Fatal(err)
	}
	if !*v {
		t.Error("-verify did not set the flag")
	}
}

func TestDriftFlags(t *testing.T) {
	fs := newFS()
	d := DriftFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	c := d.Config()
	if c.Window != drift.DefaultWindow || c.Ring != drift.DefaultRing {
		t.Errorf("default drift config = %+v", c)
	}
	if !c.Enabled() {
		t.Error("default drift config disabled")
	}

	fs = newFS()
	d = DriftFlags(fs)
	if err := fs.Parse([]string{"-driftwindow=8", "-driftring=32"}); err != nil {
		t.Fatal(err)
	}
	c = d.Config()
	if c.Window != 8 || c.Ring != 32 {
		t.Errorf("parsed drift config = %+v, want 8/32", c)
	}

	fs = newFS()
	d = DriftFlags(fs)
	if err := fs.Parse([]string{"-driftwindow=0"}); err != nil {
		t.Fatal(err)
	}
	if d.Config().Enabled() {
		t.Error("-driftwindow=0 did not disable drift tracking")
	}
}
