package verify_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// BenchmarkPipelineVerify runs one full pipeline (profile, package, link,
// optimize, evaluate) with the stage-gating verifier off and on. The
// off/on delta is the verifier's serial cost per pipeline run — the
// number the <3% suite-overhead budget in scripts/bench.sh rides on.
func BenchmarkPipelineVerify(b *testing.B) {
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			bench, err := workload.ByName("perl")
			if err != nil {
				b.Fatal(err)
			}
			in := bench.Inputs[0]
			in.Scale = 1
			for i := 0; i < b.N; i++ {
				p := bench.Build(in)
				cfg := core.ScaledConfig()
				cfg.Verify = on
				if _, err := core.Run(cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
