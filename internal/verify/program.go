package verify

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Program checks the CFG well-formedness rules over a whole program:
//
//	cfg/main    — Main is set and belongs to the program
//	cfg/dup     — functions and blocks are unique, non-empty, with correct
//	              back-pointers and unique block IDs
//	cfg/term    — terminator fields are consistent with the block's Kind
//	cfg/inst    — body instructions have valid opcodes and registers, no
//	              control ops, and LA targets inside the program
//	cfg/arc     — every arc resolves inside the program, crossing function
//	              boundaries only when a package function is involved
//	cfg/callret — every called non-package function can return (has at
//	              least one ret or halt block)
//
// Unlike (*prog.Program).Verify it accumulates every violation instead of
// stopping at the first, so a corrupted program reports all of its damage
// in one pass.
func Program(stage string, p *prog.Program) error {
	c := &checker{stage: stage}
	c.program(p)
	return c.err()
}

// Func checks the same per-block rules (cfg/dup within the function,
// cfg/term, cfg/inst, cfg/arc, cfg/callret for its call sites) over a
// single function. The per-pass sandwich uses it: optimization passes
// mutate exactly one function, so re-scanning the rest of the program
// after every pass would only re-prove what the stage-boundary Program
// check already covers — at O(program) per pass instead of O(function).
func Func(stage string, p *prog.Program, fn *prog.Func) error {
	c := &checker{stage: stage}
	s := newScope(c, p)
	if len(fn.Blocks) == 0 {
		c.add("cfg/dup", fn, nil, "function has no blocks")
	}
	// One map does double duty: duplicate detection here (same pointer
	// twice shares its own ID; distinct blocks sharing an ID are the other
	// cfg/dup case) and intra-function arc membership in checkBlock, as
	// the scope's primary block set.
	member := make(map[*prog.Block]bool, len(fn.Blocks))
	ids := make(map[int]*prog.Block, len(fn.Blocks))
	for _, b := range fn.Blocks {
		if b.Fn != fn {
			c.add("cfg/dup", fn, b, "block has Fn %q but is listed in %q", b.Fn.Name, fn.Name)
		}
		if other := ids[b.ID]; other != nil {
			if other == b {
				c.add("cfg/dup", fn, b, "block appears twice")
			} else {
				c.add("cfg/dup", fn, b, "shares ID %d with %s", b.ID, other)
			}
			continue
		}
		ids[b.ID] = b
		member[b] = true
	}
	s.primaryFn, s.primary = fn, member
	for _, b := range fn.Blocks {
		s.checkBlock(fn, b)
	}
	s.checkCallRet()
	return c.err()
}

// scope carries the per-block rule machinery shared by Program and Func:
// membership resolution for arc targets and the called-function set for
// the cfg/callret sweep.
type scope struct {
	c         *checker
	p         *prog.Program
	funcSet   map[*prog.Func]bool        // built by the whole-program sweep; nil in the Func path
	ids       []*prog.Block              // block-ID index when the whole program was swept
	primaryFn *prog.Func                 // Func path: the function under check
	primary   map[*prog.Block]bool       // Func path: its block set
	called    map[*prog.Func]*prog.Block // callee -> one call site
}

func newScope(c *checker, p *prog.Program) *scope {
	return &scope{c: c, p: p, called: make(map[*prog.Func]*prog.Block)}
}

// inProgram reports whether f is one of the program's functions. The
// whole-program sweep pays for a set once; the function-scoped path
// answers its few cross-function queries by scanning Funcs instead.
func (s *scope) inProgram(f *prog.Func) bool {
	if f == nil {
		return false
	}
	if s.funcSet != nil {
		return s.funcSet[f]
	}
	for _, pf := range s.p.Funcs {
		if pf == f {
			return true
		}
	}
	return false
}

// known reports whether b is a block of a function in the program. When
// the whole program was indexed up front (Program), membership is a flat
// slice lookup on the block's ID; otherwise (Func) the checked function's
// seeded set answers intra-function arcs and rare cross-function targets
// fall back to scanning their function's block list.
func (s *scope) known(b *prog.Block) bool {
	if b.Fn == nil {
		return false
	}
	if s.ids != nil {
		return s.funcSet[b.Fn] && b.ID >= 0 && b.ID < len(s.ids) && s.ids[b.ID] == b
	}
	if b.Fn == s.primaryFn {
		return s.primary[b]
	}
	if !s.inProgram(b.Fn) {
		return false
	}
	// Cross-function target in a function-scoped check: the handful of
	// exits and launch arcs a package function carries don't justify
	// materializing the target function's membership set — scan it.
	for _, fb := range b.Fn.Blocks {
		if fb == b {
			return true
		}
	}
	return false
}

func (s *scope) checkArc(from, to *prog.Block, what string) {
	if !s.known(to) {
		s.c.add("cfg/arc", nil, from, "%s target %s is not in the program", what, to)
		return
	}
	if to.Fn != from.Fn && !from.Fn.IsPackage && !to.Fn.IsPackage {
		s.c.add("cfg/arc", nil, from, "%s target %s crosses functions with no package involved", what, to)
	}
}

// checkBlock applies cfg/term, cfg/inst and cfg/arc to one block and
// collects call sites for the cfg/callret sweep.
func (s *scope) checkBlock(f *prog.Func, b *prog.Block) {
	c := s.c
	switch b.Kind {
	case prog.TermFall:
		if b.Next == nil {
			c.add("cfg/term", f, b, "fall block has nil Next")
		} else {
			s.checkArc(b, b.Next, "fallthrough")
		}
		if b.Taken != nil || b.Callee != nil {
			c.add("cfg/term", f, b, "fall block has stray terminator fields")
		}
	case prog.TermBranch:
		if b.Taken == nil || b.Next == nil {
			c.add("cfg/term", f, b, "branch block missing Taken or Next")
		} else {
			s.checkArc(b, b.Taken, "taken")
			s.checkArc(b, b.Next, "fallthrough")
		}
		if !b.CmpOp.IsCondBranch() {
			c.add("cfg/term", f, b, "branch block has CmpOp %v", b.CmpOp)
		}
		if !b.Rs1.Valid() || !b.Rs2.Valid() {
			c.add("cfg/term", f, b, "branch block has invalid compare registers")
		}
		if b.Callee != nil {
			c.add("cfg/term", f, b, "branch block has Callee set")
		}
	case prog.TermCall:
		if b.Callee == nil || b.Next == nil {
			c.add("cfg/term", f, b, "call block missing Callee or Next")
		} else {
			if !s.inProgram(b.Callee) {
				c.add("cfg/arc", f, b, "call targets function %q not in program", b.Callee.Name)
			} else if _, seen := s.called[b.Callee]; !seen {
				s.called[b.Callee] = b
			}
			s.checkArc(b, b.Next, "continuation")
		}
		if b.Taken != nil {
			c.add("cfg/term", f, b, "call block has Taken set")
		}
	case prog.TermRet, prog.TermHalt:
		if b.Taken != nil || b.Next != nil || b.Callee != nil {
			c.add("cfg/term", f, b, "%v block has stray terminator fields", b.Kind)
		}
	case prog.TermJumpReg:
		if !b.Rs1.Valid() {
			c.add("cfg/term", f, b, "jr block has invalid register")
		}
		if b.Taken != nil || b.Next != nil || b.Callee != nil {
			c.add("cfg/term", f, b, "jr block has stray terminator fields")
		}
	default:
		c.add("cfg/term", f, b, "invalid terminator kind %d", uint8(b.Kind))
	}
	for i, in := range b.Insts {
		if !in.Op.Valid() {
			c.add("cfg/inst", f, b, "inst %d has invalid opcode", i)
			continue
		}
		if in.Op.IsControl() {
			c.add("cfg/inst", f, b, "inst %d is control op %v inside block body", i, in.Op)
		}
		for _, r := range [...]isa.Reg{in.Rd, in.Rs1, in.Rs2} {
			if !r.Valid() {
				c.add("cfg/inst", f, b, "inst %d has invalid register %d", i, uint8(r))
			}
		}
		if in.BlockTarget != nil {
			if in.Op != isa.LA {
				c.add("cfg/inst", f, b, "inst %d: BlockTarget on non-LA op %v", i, in.Op)
			}
			if !s.known(in.BlockTarget) {
				c.add("cfg/inst", f, b, "inst %d: LA target %s not in program", i, in.BlockTarget)
			}
		}
	}
}

// checkCallRet sweeps the collected call sites: a called non-package
// function must be able to return — at least one of its blocks ends in
// ret or halt. Package functions are exempt: they are entered by jumps
// and may leave through side exits into original code instead of
// returning.
func (s *scope) checkCallRet() {
	for callee, site := range s.called {
		if callee.IsPackage {
			continue
		}
		ok := false
		for _, b := range callee.Blocks {
			if b.Kind == prog.TermRet || b.Kind == prog.TermHalt {
				ok = true
				break
			}
		}
		if !ok {
			s.c.add("cfg/callret", callee, site, "called function %q has no ret or halt block", callee.Name)
		}
	}
}

func (c *checker) program(p *prog.Program) {
	if p.Main == nil {
		c.add("cfg/main", nil, nil, "Main is nil")
	}
	s := newScope(c, p)
	// Index blocks by ID — program-wide sequential, so a flat slice covers
	// duplicate detection here and arc membership in checkBlock without a
	// pointer map in sight.
	maxID := -1
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.ID > maxID {
				maxID = b.ID
			}
		}
	}
	ids := make([]*prog.Block, maxID+1)
	s.funcSet = make(map[*prog.Func]bool, len(p.Funcs))
	for _, f := range p.Funcs {
		if s.funcSet[f] {
			c.add("cfg/dup", f, nil, "function appears twice in Funcs")
			continue
		}
		s.funcSet[f] = true
		if len(f.Blocks) == 0 {
			c.add("cfg/dup", f, nil, "function has no blocks")
		}
		for _, b := range f.Blocks {
			if b.Fn != f {
				c.add("cfg/dup", f, b, "block has Fn %q but is listed in %q", b.Fn.Name, f.Name)
			}
			if b.ID < 0 {
				c.add("cfg/dup", f, b, "block has negative ID %d", b.ID)
				continue
			}
			if other := ids[b.ID]; other != nil {
				if other == b {
					c.add("cfg/dup", f, b, "block appears twice")
				} else {
					c.add("cfg/dup", f, b, "shares ID %d with %s", b.ID, other)
				}
				continue
			}
			ids[b.ID] = b
		}
	}
	s.ids = ids
	if p.Main != nil && !s.funcSet[p.Main] {
		c.add("cfg/main", p.Main, nil, "Main is not in Funcs")
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			s.checkBlock(f, b)
		}
	}
	s.checkCallRet()
}
