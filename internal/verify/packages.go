package verify

import (
	"repro/internal/isa"
	"repro/internal/pack"
	"repro/internal/prog"
)

// Packages checks the invariants of an installed package set:
//
//	cfg/reach    — every block of a package function is reachable from the
//	               function entry or a package entry copy
//	df/exit-live — every register live into an exit's target (computed by
//	               an interprocedural liveness fixpoint over the installed
//	               program) is covered by the exit block's dummy-consumer
//	               set, so pruned cold code never reads a killed value
//	pkg/origin   — every package block descends from an original block
//	pkg/copy     — each surviving copy maps back onto exactly the original
//	               block it was cloned from
//	pkg/launch   — arcs and calls from original code land only on package
//	               entry copies (or dynamic launch shims)
//	pkg/link     — linked exits target the sibling's same-context copy of
//	               the exit's original destination; unlinked exits return
//	               to their original target
//	pkg/growth   — Result.AddedInsts equals the instructions actually
//	               emitted into package functions
//
// Under dynamic launch selection (Result.Monitors > 0 or launcher shims
// present) df/exit-live and pkg/growth are skipped: indirect-jump shims
// make every register conservatively live, and monitors/launchers add
// code after the accounting snapshot by design.
func Packages(stage string, p *prog.Program, res *pack.Result) error {
	c := &checker{stage: stage}
	c.packages(p, res)
	return c.err()
}

func (c *checker) packages(p *prog.Program, res *pack.Result) {
	pkgFns := make(map[*prog.Func]*pack.Package, len(res.Packages))
	for _, pk := range res.Packages {
		pkgFns[pk.Fn] = pk
	}
	// Layout membership via the program-wide sequential block IDs: a flat
	// slice lookup instead of a pointer set over every block.
	maxID := -1
	hasShims := false
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.ID > maxID {
				maxID = b.ID
			}
		}
		if f.IsPackage && pkgFns[f] == nil {
			hasShims = true // dynamic launchers are package fns outside the result set
		}
	}
	ids := make([]*prog.Block, maxID+1)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.ID >= 0 {
				ids[b.ID] = b
			}
		}
	}
	inLayout := func(b *prog.Block) bool {
		return b != nil && b.ID >= 0 && b.ID <= maxID && ids[b.ID] == b
	}

	// cfg/reach over package functions only: patchLaunchPoints legitimately
	// strands original blocks whose every arc was retargeted, but a package
	// block nothing reaches is construction damage.
	var succs []*prog.Block
	for _, pk := range res.Packages {
		fn := pk.Fn
		inFn := make(map[*prog.Block]bool, len(fn.Blocks))
		for _, b := range fn.Blocks {
			inFn[b] = true
		}
		seen := make(map[*prog.Block]bool, len(fn.Blocks))
		var work []*prog.Block
		push := func(b *prog.Block) {
			if b != nil && inFn[b] && !seen[b] {
				seen[b] = true
				work = append(work, b)
			}
		}
		push(fn.Entry())
		for _, e := range pk.Entries {
			push(e)
		}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			succs = b.Succs(succs[:0])
			for _, s := range succs {
				push(s)
			}
		}
		for _, b := range fn.Blocks {
			if !seen[b] {
				c.add("cfg/reach", fn, b, "package block unreachable from every entry")
			}
		}
	}

	// pkg/origin and pkg/copy.
	for _, pk := range res.Packages {
		for _, b := range pk.Fn.Blocks {
			if b.Origin == nil {
				c.add("pkg/origin", pk.Fn, b, "package block has no origin")
				continue
			}
			if root := prog.OriginRoot(b); root.Fn == nil || root.Fn.IsPackage {
				c.add("pkg/origin", pk.Fn, b, "origin chain ends inside package code (%s)", root)
			}
		}
		pk.EachCopy(func(orig *prog.Block, ctx string, copy *prog.Block) {
			if !inLayout(copy) {
				return // fused away by MergeBlocks; nothing references it
			}
			if orig.Fn != nil && orig.Fn.IsPackage {
				c.add("pkg/copy", pk.Fn, copy, "copy of package-code block %s", orig)
			}
			if got := prog.OriginRoot(copy); got != orig {
				c.add("pkg/copy", pk.Fn, copy,
					"copy (ctx %q) maps to origin %s, want %s", ctx, got, orig)
			}
		})
	}

	// pkg/launch: the only ways from original code into package code are
	// entry copies and dynamic launch shim entries.
	validEntry := make(map[*prog.Block]bool)
	for _, pk := range res.Packages {
		for _, e := range pk.Entries {
			validEntry[e] = true
		}
	}
	for _, f := range p.Funcs {
		if f.IsPackage && pkgFns[f] == nil {
			validEntry[f.Entry()] = true // launcher shim head
		}
	}
	checkLaunch := func(from, to *prog.Block, what string) {
		if to == nil || to.Fn == nil || !to.Fn.IsPackage {
			return
		}
		if !validEntry[to] {
			c.add("pkg/launch", nil, from,
				"%s arc enters package %q at non-entry block %s", what, to.Fn.Name, to)
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if !f.IsPackage {
				if b.Kind == prog.TermBranch {
					checkLaunch(b, b.Taken, "taken")
				}
				if b.Kind == prog.TermFall || b.Kind == prog.TermBranch || b.Kind == prog.TermCall {
					checkLaunch(b, b.Next, "fallthrough")
				}
			}
			if b.Kind == prog.TermCall && b.Callee != nil && b.Callee.IsPackage {
				if e := b.Callee.Entry(); !validEntry[e] {
					c.add("pkg/launch", f, b,
						"call enters package %q off its entry copy", b.Callee.Name)
				}
			}
		}
	}

	// pkg/link.
	for _, pk := range res.Packages {
		for _, e := range pk.Exits {
			if !inLayout(e.Block) {
				continue // exit fused into its predecessor; its record moved with it
			}
			if e.Block.Kind != prog.TermFall {
				c.add("pkg/link", pk.Fn, e.Block, "exit block is not an unconditional transfer")
				continue
			}
			if e.Linked != nil {
				want := e.Linked.CopyOf(e.Target, e.Ctx)
				if want == nil {
					c.add("pkg/link", pk.Fn, e.Block,
						"linked into %q which holds no copy of %s under ctx %q",
						e.Linked.Fn.Name, e.Target, e.Ctx)
				} else if e.Block.Next != want {
					c.add("pkg/link", pk.Fn, e.Block,
						"linked exit targets %s, want same-context copy %s", e.Block.Next, want)
				}
			} else if e.Block.Next != e.Target {
				c.add("pkg/link", pk.Fn, e.Block,
					"unlinked exit targets %s, want original block %s", e.Block.Next, e.Target)
			}
		}
	}

	if hasShims || res.Monitors > 0 {
		return
	}

	// pkg/growth: the accounting snapshot must match what the package
	// functions actually hold. Every later pass moves or fuses
	// instructions without creating any (fall terminators are free), so
	// this holds post-optimization too.
	added := 0
	for _, pk := range res.Packages {
		added += pk.Fn.NumInsts()
	}
	if added != res.AddedInsts {
		c.add("pkg/growth", nil, nil,
			"Result.AddedInsts = %d but package functions hold %d instructions",
			res.AddedInsts, added)
	}

	// df/exit-live: recompute liveness from scratch — interprocedurally,
	// so patched launch arcs and linked exits resolve to their real
	// targets — and require every register live into an exit target to
	// appear in the exit's dummy-consumer set.
	live := globalLiveIn(p)
	for _, pk := range res.Packages {
		for _, b := range pk.Fn.Blocks {
			if b.Kind != prog.TermFall || b.Next == nil || b.Next.Fn == pk.Fn {
				continue
			}
			var consumes prog.RegSet
			for _, r := range b.ExitConsumes {
				consumes = consumes.Add(r)
			}
			for _, r := range live(b.Next).Regs() {
				if !consumes.Has(r) {
					c.add("df/exit-live", pk.Fn, b,
						"r%d live into exit target %s but not in the dummy-consumer set", r, b.Next)
				}
			}
		}
	}
}

// globalLiveIn runs backward liveness over the whole program at once,
// resolving cross-function arcs (package exits, launch points, links) to
// the actual target's live-in instead of prog.ComputeLiveness's
// dummy-consumer approximation. Calls and returns keep the conservative
// per-function treatment, so the least fixpoint here never exceeds the
// per-function result the builder consulted — a covered exit stays
// covered, and a dropped consumer is a genuine violation.
func globalLiveIn(p *prog.Program) func(*prog.Block) prog.RegSet {
	var allRegs prog.RegSet
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		allRegs = allRegs.Add(r)
	}
	// Index the program once so the fixpoint runs on flat slices: a
	// worklist over block indices converges in a few touches per block
	// where the round-robin sweep re-scanned everything per iteration.
	// The block-ID index (sequential, program-wide) stands in for a
	// pointer map; idToIdx holds 1+position so zero means absent.
	maxID := -1
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Blocks)
		for _, b := range f.Blocks {
			if b.ID > maxID {
				maxID = b.ID
			}
		}
	}
	blocks := make([]*prog.Block, 0, n)
	idToIdx := make([]int32, maxID+1)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.ID >= 0 {
				idToIdx[b.ID] = int32(len(blocks)) + 1
			}
			blocks = append(blocks, b)
		}
	}
	lookup := func(b *prog.Block) int {
		if b == nil || b.ID < 0 || b.ID > maxID {
			return -1
		}
		j := int(idToIdx[b.ID]) - 1
		if j < 0 || blocks[j] != b {
			return -1
		}
		return j
	}
	use := make([]prog.RegSet, n)
	def := make([]prog.RegSet, n)
	in := make([]prog.RegSet, n)
	// Predecessor lists in compressed form — a counting pass sizes one
	// flat backing array, so building them costs three allocations total
	// instead of an append-grown slice per block.
	predOff := make([]int32, n+1)
	var succs []*prog.Block
	for i, b := range blocks {
		u, d := prog.BlockUseDef(b)
		if b.Kind == prog.TermCall {
			u = allRegs.Remove(isa.RRA) // callee may read anything
		}
		use[i], def[i] = u, d
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			if j := lookup(s); j >= 0 {
				predOff[j+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		predOff[i+1] += predOff[i]
	}
	predData := make([]int32, predOff[n])
	cursor := make([]int32, n)
	copy(cursor, predOff[:n])
	for i, b := range blocks {
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			if j := lookup(s); j >= 0 {
				predData[cursor[j]] = int32(i)
				cursor[j]++
			}
		}
	}
	work := make([]int32, 0, n)
	queued := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		work = append(work, int32(i))
		queued[i] = true
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		queued[i] = false
		b := blocks[i]
		var out prog.RegSet
		switch b.Kind {
		case prog.TermRet, prog.TermJumpReg:
			out = allRegs // destination unknown: anything may be read
		case prog.TermHalt:
		default:
			succs = b.Succs(succs[:0])
			for _, s := range succs {
				if j := lookup(s); j >= 0 {
					out = out.Union(in[j])
				}
			}
		}
		liveIn := use[i].Union(out &^ def[i])
		if liveIn == in[i] {
			continue
		}
		in[i] = liveIn
		for _, pi := range predData[predOff[i]:predOff[i+1]] {
			if !queued[pi] {
				queued[pi] = true
				work = append(work, pi)
			}
		}
	}
	return func(b *prog.Block) prog.RegSet {
		if j := lookup(b); j >= 0 {
			return in[j]
		}
		var none prog.RegSet
		return none
	}
}
