// Package verify is the pipeline's static-analysis gate: a rule catalog
// over the prog IR that checks CFG well-formedness, dataflow soundness,
// package invariants and schedule legality after every transformation
// stage. Unlike prog.Verify — the structural first-error checker every
// stage already runs — this package accumulates every violation into
// structured diagnostics (stage, rule ID, function, block) and validates
// the *soundness* of transformations, not just the shape of their output:
// exit-block dummy consumers against recomputed liveness, sink/merge
// certificates against the rewritten CFG, and recorded issue cycles
// against functional-unit limits and operand latencies.
//
// The rule catalog (DESIGN.md §11 documents each in detail):
//
//	cfg/main    cfg/dup    cfg/term    cfg/inst   cfg/arc
//	cfg/callret cfg/reach
//	df/exit-live  df/sink  df/merge
//	pkg/origin  pkg/copy   pkg/launch  pkg/link   pkg/growth
//	sched/record  sched/width  sched/dep
//	region/profiled-hot  region/profiled-arc  region/no-cold
//
// Everything here is read-only over its inputs and independent of the
// code under test: certificates recorded by opt passes are re-checked
// against freshly computed liveness and dependence information.
package verify

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/prog"
)

// ErrFailed is the sentinel all verifier failures match. core re-exports
// it as core.ErrVerifyFailed; match with errors.Is, never equality — the
// concrete error is always an *Error carrying the diagnostics.
var ErrFailed = errors.New("static verification failed")

// Diagnostic is one rule violation.
type Diagnostic struct {
	// Stage names the pipeline stage the check ran after ("link",
	// "optimize", "region", ...).
	Stage string
	// Rule is the catalog ID, e.g. "df/exit-live".
	Rule string
	// Func and Block locate the violation; either may be empty when the
	// rule is program- or result-scoped (e.g. pkg/growth).
	Func  string
	Block string
	// Msg is the human-readable explanation.
	Msg string
}

func (d Diagnostic) String() string {
	loc := d.Func
	if d.Block != "" {
		loc = d.Block
	}
	if loc != "" {
		return fmt.Sprintf("[%s] %s: %s: %s", d.Rule, d.Stage, loc, d.Msg)
	}
	return fmt.Sprintf("[%s] %s: %s", d.Rule, d.Stage, d.Msg)
}

// Error aggregates every diagnostic one verification pass produced. It
// matches ErrFailed under errors.Is.
type Error struct {
	Stage string
	Diags []Diagnostic
}

func (e *Error) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "verify: %d violation(s) at stage %q", len(e.Diags), e.Stage)
	for i, d := range e.Diags {
		if i == 8 {
			fmt.Fprintf(&sb, "; ... %d more", len(e.Diags)-i)
			break
		}
		sb.WriteString("; ")
		sb.WriteString(d.String())
	}
	return sb.String()
}

// Is makes errors.Is(err, ErrFailed) — and through the core re-export,
// errors.Is(err, core.ErrVerifyFailed) — match any verifier Error.
func (e *Error) Is(target error) bool { return target == ErrFailed }

// checker accumulates diagnostics for one pass.
type checker struct {
	stage string
	diags []Diagnostic
}

func (c *checker) add(rule string, fn *prog.Func, b *prog.Block, format string, args ...any) {
	d := Diagnostic{Stage: c.stage, Rule: rule, Msg: fmt.Sprintf(format, args...)}
	if fn != nil {
		d.Func = fn.Name
	}
	if b != nil {
		d.Block = b.String()
		if d.Func == "" && b.Fn != nil {
			d.Func = b.Fn.Name
		}
	}
	c.diags = append(c.diags, d)
}

// err returns nil when no rule fired, or an *Error with every diagnostic.
func (c *checker) err() error {
	if len(c.diags) == 0 {
		return nil
	}
	return &Error{Stage: c.stage, Diags: c.diags}
}

// Rules lists the complete rule catalog. The mutation tests cross-check
// coverage against it: adding a rule to a checker without adding it here
// (and a corruption case firing it) fails the harness.
func Rules() []string {
	return []string{
		"cfg/main", "cfg/dup", "cfg/term", "cfg/inst", "cfg/arc",
		"cfg/callret", "cfg/reach",
		"df/exit-live", "df/sink", "df/merge",
		"pkg/origin", "pkg/copy", "pkg/launch", "pkg/link", "pkg/growth",
		"sched/record", "sched/width", "sched/dep",
		"region/profiled-hot", "region/profiled-arc", "region/no-cold",
	}
}

// Diagnostics extracts the structured diagnostics from any error chain
// produced by this package (through arbitrary %w wrapping), or nil.
func Diagnostics(err error) []Diagnostic {
	var ve *Error
	if errors.As(err, &ve) {
		return ve.Diags
	}
	return nil
}
