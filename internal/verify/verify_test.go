package verify_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/hsd"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/pack"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/report"
	"repro/internal/verify"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Fixtures.

// tinyProgram builds a minimal well-formed program: main holding one
// two-instruction halt block. The cfg/* mutations each break it one way.
func tinyProgram() (*prog.Program, *prog.Func, *prog.Block) {
	p := prog.New()
	fn := p.AddFunc("main")
	p.Main = fn
	b := p.NewBlock(fn) // TermHalt by default
	b.Append(
		prog.Ins{Inst: isa.Inst{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 1}},
		prog.Ins{Inst: isa.Inst{Op: isa.ADD, Rd: 2, Rs1: 1, Rs2: 1}},
	)
	return p, fn, b
}

// packedFixture runs the real pipeline (scaled config: inference, linking,
// layout, scheduling) on gzip/A at scale 1 and returns the packed program
// and package result, asserted verifier-clean so every package mutation
// starts from a green baseline.
func packedFixture(t *testing.T) (*prog.Program, *pack.Result) {
	t.Helper()
	bench, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	p := bench.Build(in)
	out, err := core.Run(core.ScaledConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Pack.Packages) == 0 {
		t.Fatal("fixture produced no packages")
	}
	if err := verify.Program("fixture", out.Packed); err != nil {
		t.Fatalf("fixture program not clean: %v", err)
	}
	if err := verify.Packages("fixture", out.Packed, out.Pack); err != nil {
		t.Fatalf("fixture packages not clean: %v", err)
	}
	return out.Packed, out.Pack
}

// regionFixture profiles m88ksim at scale 1 and identifies the first
// usable phase's region under the given inference setting.
func regionFixture(t *testing.T, inference bool) (region.Config, *prog.Image, *phasedb.Phase, *region.Region) {
	t.Helper()
	bench, err := workload.ByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	p := bench.Build(in)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	db := phasedb.New(phasedb.DefaultConfig())
	det := hsd.New(hsd.ScaledConfig(), func(h hsd.HotSpot) { db.Record(h) })
	m := cpu.NewMachine(img)
	if err := m.Run(0, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.Branch(si.PC, si.Taken)
		}
	}); err != nil {
		t.Fatal(err)
	}
	cfg := region.DefaultConfig()
	cfg.EnableInference = inference
	for _, ph := range db.Phases {
		r, err := region.Identify(cfg, img, ph)
		if err != nil {
			continue
		}
		if err := verify.Region("fixture", cfg, img, ph, r); err != nil {
			t.Fatalf("fixture region not clean: %v", err)
		}
		return cfg, img, ph, r
	}
	t.Fatal("no identifiable phase in fixture")
	panic("unreachable")
}

// profiledBlock returns a phase branch that mapped onto a branch block.
func profiledBlock(t *testing.T, img *prog.Image, ph *phasedb.Phase) *prog.Block {
	t.Helper()
	for _, bs := range ph.SortedBranches() {
		b := img.BlockAt(bs.PC)
		if b != nil && b.Kind == prog.TermBranch && img.TermAddr[b] == bs.PC {
			return b
		}
	}
	t.Fatal("phase has no mapped branch block")
	panic("unreachable")
}

// schedFixture hand-builds one function with n copies of the given
// instruction in a single block, plus a certificate claiming they all
// issued at the given cycles.
func schedFixture(insts []prog.Ins, cycles []int) (*prog.Program, *opt.PassRecord) {
	p := prog.New()
	fn := p.AddFunc("f")
	p.Main = fn
	b := p.NewBlock(fn)
	b.Append(insts...)
	rec := &opt.PassRecord{
		Cycles:    map[*prog.Block][]int{b: cycles},
		Scheduled: []*prog.Func{fn},
		Res:       opt.DefaultResources(),
	}
	return p, rec
}

// ---------------------------------------------------------------------------
// Mutation harness: every rule in the catalog must fire on IR corrupted
// its particular way, and every fired error must match the sentinel.

func TestMutationsFireEveryRule(t *testing.T) {
	add := func(rd, rs1, rs2 isa.Reg) prog.Ins {
		return prog.Ins{Inst: isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2}}
	}
	cases := []struct {
		rule string
		run  func(t *testing.T) error
	}{
		{"cfg/main", func(t *testing.T) error {
			p, _, _ := tinyProgram()
			p.Main = nil
			return verify.Program("mut", p)
		}},
		{"cfg/dup", func(t *testing.T) error {
			p, fn, b := tinyProgram()
			fn.Blocks = append(fn.Blocks, b) // same block listed twice
			return verify.Program("mut", p)
		}},
		{"cfg/term", func(t *testing.T) error {
			p, _, b := tinyProgram()
			b.Kind = prog.TermFall // nil Next
			return verify.Program("mut", p)
		}},
		{"cfg/inst", func(t *testing.T) error {
			p, _, b := tinyProgram()
			b.Append(prog.Ins{Inst: isa.Inst{Op: isa.JMP}}) // control op in a body
			return verify.Program("mut", p)
		}},
		{"cfg/arc", func(t *testing.T) error {
			p, fn, b := tinyProgram()
			b.Kind = prog.TermFall
			b.Next = &prog.Block{ID: 999, Fn: fn} // dangling: never adopted
			return verify.Program("mut", p)
		}},
		{"cfg/callret", func(t *testing.T) error {
			p, fn, b := tinyProgram()
			helper := p.AddFunc("helper")
			hb := p.NewBlock(helper)
			hb.Kind = prog.TermFall
			hb.Next = hb // spins forever: no ret, no halt
			cont := p.NewBlock(fn)
			b.Kind = prog.TermCall
			b.Callee = helper
			b.Next = cont
			return verify.Program("mut", p)
		}},
		{"cfg/reach", func(t *testing.T) error {
			p, res := packedFixture(t)
			pk := res.Packages[0]
			orphan := p.NewBlock(pk.Fn) // no arc ever leads here
			orphan.Origin = pk.Fn.Blocks[0].Origin
			return verify.Packages("mut", p, res)
		}},
		{"df/exit-live", func(t *testing.T) error {
			p, res := packedFixture(t)
			for _, pk := range res.Packages {
				for _, b := range pk.Fn.Blocks {
					if b.Kind == prog.TermFall && b.Next != nil && b.Next.Fn != pk.Fn {
						b.ExitConsumes = nil // drop every dummy consumer
					}
				}
			}
			return verify.Packages("mut", p, res)
		}},
		{"df/sink", func(t *testing.T) error {
			// Certificate for a sink whose exit has two predecessors.
			p := prog.New()
			fn := p.AddFunc("f")
			p.Main = fn
			src := p.NewBlock(fn)
			exit := p.NewBlock(fn)
			other := p.NewBlock(fn)
			src.Append(add(3, 1, 2))
			src.Kind = prog.TermBranch
			src.CmpOp, src.Rs1, src.Rs2 = isa.BNE, 1, 2
			src.Taken, src.Next = other, exit
			other.Kind = prog.TermFall
			other.Next = exit
			exit.Append(add(4, 3, 3))
			rec := &opt.PassRecord{Sinks: []opt.SinkRecord{
				{From: src, Exit: exit, Ins: exit.Insts[0], Def: 4},
			}}
			return verify.Passes("mut", p, rec)
		}},
		{"df/merge", func(t *testing.T) error {
			p, _, b := tinyProgram()
			rec := &opt.PassRecord{Merges: []opt.MergeRecord{
				{Into: b, Fused: b}, // "fused" block is still in the layout
			}}
			return verify.Passes("mut", p, rec)
		}},
		{"pkg/origin", func(t *testing.T) error {
			p, res := packedFixture(t)
			res.Packages[0].Fn.Blocks[0].Origin = nil
			return verify.Packages("mut", p, res)
		}},
		{"pkg/copy", func(t *testing.T) error {
			p, res := packedFixture(t)
			inProgram := make(map[*prog.Block]bool)
			for _, f := range p.Funcs {
				for _, b := range f.Blocks {
					inProgram[b] = true
				}
			}
			// Cross two copies' origin chains.
			corrupted := false
			for _, pk := range res.Packages {
				var prevOrig *prog.Block
				pk.EachCopy(func(orig *prog.Block, ctx string, copy *prog.Block) {
					if corrupted || !inProgram[copy] {
						return
					}
					if prevOrig != nil && prevOrig != orig {
						copy.Origin = prevOrig
						corrupted = true
					}
					prevOrig = orig
				})
			}
			if !corrupted {
				t.Fatal("found no pair of copies to cross")
			}
			return verify.Packages("mut", p, res)
		}},
		{"pkg/launch", func(t *testing.T) error {
			p, res := packedFixture(t)
			// Retarget a launch arc from its entry copy to an arbitrary
			// non-entry block of the same package function.
			entries := make(map[*prog.Block]bool)
			for _, pk := range res.Packages {
				for _, e := range pk.Entries {
					entries[e] = true
				}
			}
			nonEntry := func(fn *prog.Func) *prog.Block {
				for _, b := range fn.Blocks {
					if !entries[b] {
						return b
					}
				}
				return nil
			}
			for _, f := range p.Funcs {
				if f.IsPackage {
					continue
				}
				for _, b := range f.Blocks {
					if b.Kind == prog.TermBranch && b.Taken != nil && b.Taken.Fn.IsPackage {
						if nb := nonEntry(b.Taken.Fn); nb != nil {
							b.Taken = nb
							return verify.Packages("mut", p, res)
						}
					}
					if (b.Kind == prog.TermFall || b.Kind == prog.TermBranch) &&
						b.Next != nil && b.Next.Fn != nil && b.Next.Fn.IsPackage {
						if nb := nonEntry(b.Next.Fn); nb != nil {
							b.Next = nb
							return verify.Packages("mut", p, res)
						}
					}
				}
			}
			// No arc launches; this fixture launches through calls. Demote
			// the called package's entry copy from the head of the layout so
			// the call lands on a non-entry block.
			for _, f := range p.Funcs {
				for _, b := range f.Blocks {
					if b.Kind != prog.TermCall || b.Callee == nil || !b.Callee.IsPackage {
						continue
					}
					blocks := b.Callee.Blocks
					for i := 1; i < len(blocks); i++ {
						if !entries[blocks[i]] {
							blocks[0], blocks[i] = blocks[i], blocks[0]
							return verify.Packages("mut", p, res)
						}
					}
				}
			}
			t.Fatal("fixture has no retargetable launch arc or call")
			panic("unreachable")
		}},
		{"pkg/link", func(t *testing.T) error {
			p, res := packedFixture(t)
			inProgram := make(map[*prog.Block]bool)
			for _, f := range p.Funcs {
				for _, b := range f.Blocks {
					inProgram[b] = true
				}
			}
			// Prefer breaking a linked exit; fall back to an unlinked one.
			var fallback *pack.Exit
			for _, pk := range res.Packages {
				for _, e := range pk.Exits {
					if !inProgram[e.Block] {
						continue
					}
					if e.Linked != nil {
						e.Block.Next = e.Target // bypasses the sibling copy
						return verify.Packages("mut", p, res)
					}
					if fallback == nil {
						fallback = e
					}
				}
			}
			if fallback == nil {
				t.Fatal("fixture has no exits")
			}
			fallback.Block.Next = fallback.Block // anywhere but the original target
			return verify.Packages("mut", p, res)
		}},
		{"pkg/growth", func(t *testing.T) error {
			p, res := packedFixture(t)
			res.AddedInsts += 7
			return verify.Packages("mut", p, res)
		}},
		{"sched/record", func(t *testing.T) error {
			_, rec := schedFixture([]prog.Ins{add(3, 1, 2), add(4, 1, 2)}, []int{0, 0})
			for b := range rec.Cycles {
				delete(rec.Cycles, b) // lose the block's schedule
			}
			return verify.Schedule("mut", rec)
		}},
		{"sched/width", func(t *testing.T) error {
			// Six integer ALU ops all claimed to issue at cycle 0; the
			// machine has five integer ALUs.
			insts := make([]prog.Ins, 6)
			cycles := make([]int, 6)
			for i := range insts {
				insts[i] = add(isa.Reg(i+1), 1, 2)
			}
			_, rec := schedFixture(insts, cycles)
			return verify.Schedule("mut", rec)
		}},
		{"sched/dep", func(t *testing.T) error {
			// RAW pair claimed to issue in the same cycle.
			_, rec := schedFixture([]prog.Ins{add(3, 1, 2), add(4, 3, 3)}, []int{0, 0})
			return verify.Schedule("mut", rec)
		}},
		{"region/profiled-hot", func(t *testing.T) error {
			cfg, img, ph, r := regionFixture(t, true)
			r.BlockTemp[profiledBlock(t, img, ph)] = region.Cold
			return verify.Region("mut", cfg, img, ph, r)
		}},
		{"region/profiled-arc", func(t *testing.T) error {
			cfg, img, ph, r := regionFixture(t, true)
			b := profiledBlock(t, img, ph)
			delete(r.ArcTemp, region.ArcKey{From: b, Taken: true})
			delete(r.ArcTemp, region.ArcKey{From: b, Taken: false})
			return verify.Region("mut", cfg, img, ph, r)
		}},
		{"region/no-cold", func(t *testing.T) error {
			cfg, img, ph, r := regionFixture(t, false)
			r.InferredCold++
			r.BlockTemp[profiledBlock(t, img, ph).Next] = region.Cold
			return verify.Region("mut", cfg, img, ph, r)
		}},
	}

	covered := make(map[string]bool)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.rule, func(t *testing.T) {
			err := tc.run(t)
			if err == nil {
				t.Fatalf("corruption aimed at %s produced no violation", tc.rule)
			}
			if !errors.Is(err, verify.ErrFailed) {
				t.Errorf("errors.Is(err, verify.ErrFailed) = false for %v", err)
			}
			diags := verify.Diagnostics(err)
			if len(diags) == 0 {
				t.Fatalf("no diagnostics extractable from %v", err)
			}
			found := false
			for _, d := range diags {
				covered[d.Rule] = true
				if d.Rule == tc.rule {
					found = true
				}
				if d.Stage != "mut" {
					t.Errorf("diagnostic carries stage %q, want %q", d.Stage, "mut")
				}
			}
			if !found {
				t.Errorf("rule %s did not fire; got %v", tc.rule, diags)
			}
		})
	}

	// The table above IS the catalog: a rule added to the verifier without
	// a mutation case here fails this cross-check.
	for _, rule := range verify.Rules() {
		if !covered[rule] {
			t.Errorf("rule %s has no mutation covering it", rule)
		}
	}
}

// ---------------------------------------------------------------------------
// The verifier must stay silent on genuine pipeline output, across every
// variant, optional pass and launch mode.

func TestVerifyCleanOverSuite(t *testing.T) {
	for _, name := range []string{"gzip", "m88ksim", "perl", "vpr", "twolf"} {
		bench, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []string{"default", "sink", "dynamic"} {
			for _, v := range core.Variants() {
				in := bench.Inputs[0]
				in.Scale = 1
				p := bench.Build(in)
				cfg := v.Apply(core.ScaledConfig())
				cfg.Verify = true
				switch mode {
				case "sink":
					cfg.EnableSink = true
				case "dynamic":
					cfg.Pack.DynamicLaunch = true
				}
				if _, err := core.Run(cfg, p); err != nil {
					t.Errorf("%s %s %s: %v", name, mode, v.Name(), err)
				}
			}
		}
	}
}

// verifiedSuiteTrace runs the small suite with the verifier gating every
// stage and returns the normalized trace.
func verifiedSuiteTrace(t *testing.T, jobs int) *obs.Trace {
	t.Helper()
	rec := obs.NewRecorder()
	opts := report.Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim", "perl"},
		ScaleOverride: 1,
		Jobs:          jobs,
		Observer:      rec,
	}
	opts.Core.Verify = true
	if _, err := report.RunSuite(opts); err != nil {
		t.Fatal(err)
	}
	return rec.Export().Normalize()
}

// TestVerifyTraceInvariance asserts turning the verifier on leaves the
// merged observer stream deterministic across worker counts, and that the
// verification counters show work done and zero violations.
func TestVerifyTraceInvariance(t *testing.T) {
	seq := verifiedSuiteTrace(t, 1)
	par := verifiedSuiteTrace(t, 4)

	if !reflect.DeepEqual(seq.Events, par.Events) {
		t.Errorf("event streams differ between -j 1 and -j 4")
	}
	if !reflect.DeepEqual(seq.Spans, par.Spans) {
		t.Errorf("normalized span trees differ between -j 1 and -j 4")
	}
	if !reflect.DeepEqual(seq.Metrics, par.Metrics) {
		t.Errorf("metrics differ between -j 1 and -j 4:\n%+v\n%+v", seq.Metrics, par.Metrics)
	}
	if got := seq.Metrics.Counters["verify.checked"]; got == 0 {
		t.Error("verify.checked counter is zero with the verifier on")
	}
	if got := seq.Metrics.Counters["verify.violations"]; got != 0 {
		t.Errorf("verify.violations = %d on a clean suite", got)
	}
}
