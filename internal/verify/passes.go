package verify

import (
	"repro/internal/isa"
	"repro/internal/opt"
	"repro/internal/prog"
)

// Passes re-checks the transformation certificates the optimization
// passes recorded:
//
//	df/merge — a fused block really left the program: it is out of the
//	           layout and no arc or LA instruction still references it,
//	           while the surviving block remains
//	df/sink  — a sunk instruction really was safe to move: it sits in the
//	           exit block, the exit still has the source block as its only
//	           predecessor, the moved def is dead along every other
//	           successor (against freshly computed liveness) and unused by
//	           the source block's terminator
func Passes(stage string, p *prog.Program, rec *opt.PassRecord) error {
	c := &checker{stage: stage}
	c.passes(p, rec)
	return c.err()
}

func (c *checker) passes(p *prog.Program, rec *opt.PassRecord) {
	if rec == nil || (len(rec.Merges) == 0 && len(rec.Sinks) == 0) {
		return
	}
	// The certificate sets are tiny compared to the program, so instead of
	// materializing blockSet/referenced/preds maps over every block, sweep
	// the program once checking each arc against the fused blocks and sink
	// exits we actually care about. Membership of individual certificate
	// endpoints is resolved per function on demand.
	fused := make(map[*prog.Block]bool, len(rec.Merges))
	for _, m := range rec.Merges {
		fused[m.Fused] = true
	}
	type predInfo struct {
		n     int
		first *prog.Block
	}
	exits := make(map[*prog.Block]*predInfo, len(rec.Sinks))
	for _, s := range rec.Sinks {
		exits[s.Exit] = &predInfo{}
	}
	fusedRef := make(map[*prog.Block]bool)
	var succs []*prog.Block
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			succs = b.Succs(succs[:0])
			for _, s := range succs {
				if fused[s] {
					fusedRef[s] = true
				}
				if pi := exits[s]; pi != nil {
					pi.n++
					if pi.first == nil {
						pi.first = b
					}
				}
			}
			for _, in := range b.Insts {
				if in.BlockTarget != nil && fused[in.BlockTarget] {
					fusedRef[in.BlockTarget] = true
				}
			}
		}
	}
	inFn := make(map[*prog.Func]map[*prog.Block]bool)
	inProgram := func(b *prog.Block) bool {
		if b == nil || b.Fn == nil {
			return false
		}
		m := inFn[b.Fn]
		if m == nil {
			m = make(map[*prog.Block]bool, len(b.Fn.Blocks))
			for _, fb := range b.Fn.Blocks {
				m[fb] = true
			}
			inFn[b.Fn] = m
		}
		return m[b]
	}

	for _, m := range rec.Merges {
		if !inProgram(m.Into) {
			c.add("df/merge", nil, m.Into, "merge survivor is no longer in the program")
		}
		if inProgram(m.Fused) {
			c.add("df/merge", nil, m.Fused, "fused block is still in the layout")
		}
		if fusedRef[m.Fused] {
			c.add("df/merge", nil, m.Fused, "fused block is still referenced by an arc or LA")
		}
	}

	liveness := make(map[*prog.Func]*prog.Liveness)
	for _, s := range rec.Sinks {
		fn := s.From.Fn
		if !inProgram(s.From) || !inProgram(s.Exit) || s.Exit.Fn != fn {
			c.add("df/sink", fn, s.From, "sink endpoints left the program")
			continue
		}
		if pi := exits[s.Exit]; pi.n != 1 || pi.first != s.From {
			c.add("df/sink", fn, s.Exit, "exit block no longer has the source as sole predecessor")
		}
		found := false
		for _, in := range s.Exit.Insts {
			if in == s.Ins {
				found = true
				break
			}
		}
		if !found {
			c.add("df/sink", fn, s.Exit, "sunk instruction (op %v, def r%d) missing from exit block",
				s.Ins.Op, s.Def)
		}
		if s.Def != isa.R0 &&
			((s.From.Kind == prog.TermBranch && (s.From.Rs1 == s.Def || s.From.Rs2 == s.Def)) ||
				(s.From.Kind == prog.TermJumpReg && s.From.Rs1 == s.Def)) {
			c.add("df/sink", fn, s.From, "sunk def r%d is read by the source terminator", s.Def)
		}
		lv := liveness[fn]
		if lv == nil {
			lv = prog.ComputeLiveness(fn)
			liveness[fn] = lv
		}
		succs = s.From.Succs(succs[:0])
		for _, nb := range succs {
			if nb == s.Exit || nb.Fn != fn {
				continue
			}
			if lv.In[nb].Has(s.Def) {
				c.add("df/sink", fn, s.From,
					"sunk def r%d is live into non-exit successor %s", s.Def, nb)
			}
		}
	}
}

// Schedule checks the recorded issue schedules for legality:
//
//	sched/record — every block of every scheduled function has a recorded
//	               cycle per instruction, non-decreasing in layout order
//	sched/width  — no cycle issues more instructions than the machine's
//	               width or any functional unit's capacity
//	sched/dep    — dependent instructions (register RAW/WAR/WAW and
//	               conservatively aliasing memory accesses, rebuilt
//	               independently over the final order) issue in order,
//	               with consumers waiting out the producer's latency
func Schedule(stage string, rec *opt.PassRecord) error {
	c := &checker{stage: stage}
	c.schedule(rec)
	return c.err()
}

// nFUClasses counts the functional-unit classes the width check tracks.
const nFUClasses = int(isa.FUBranch) + 1

// schedScratch holds the per-block working buffers of the schedule
// checks, reused across blocks so a full sweep costs a handful of
// allocations instead of dozens per block.
type schedScratch struct {
	usage         [][1 + nFUClasses]int16
	lastUses      [isa.NumRegs][]int32
	stores, loads []memRef
}

type memRef struct {
	idx     int
	base    isa.Reg
	baseIdx int // lastDef of base at access time (-1 = block entry)
	off     int64
}

func (c *checker) schedule(rec *opt.PassRecord) {
	if rec == nil {
		return
	}
	var sc schedScratch
	seen := make(map[*prog.Func]bool)
	for _, fn := range rec.Scheduled {
		if seen[fn] {
			continue
		}
		seen[fn] = true
		for _, b := range fn.Blocks {
			cycles, ok := rec.Cycles[b]
			if !ok {
				c.add("sched/record", fn, b, "scheduled block has no recorded cycles")
				continue
			}
			if len(cycles) != len(b.Insts) {
				c.add("sched/record", fn, b, "recorded %d cycles for %d instructions",
					len(cycles), len(b.Insts))
				continue
			}
			for i := 1; i < len(cycles); i++ {
				if cycles[i] < cycles[i-1] {
					c.add("sched/record", fn, b, "recorded cycles not in issue order at inst %d", i)
				}
			}
			c.checkWidth(fn, b, cycles, rec.Res, &sc)
			c.checkDeps(fn, b, cycles, &sc)
		}
	}
}

func (c *checker) checkWidth(fn *prog.Func, b *prog.Block, cycles []int, res opt.Resources, sc *schedScratch) {
	// usage[cyc] holds per-cycle totals: index 0 all instructions, then
	// one slot per FU class. Cycles are dense and small (list scheduling
	// never skips far ahead), so a slice beats a map comfortably.
	const nFU = nFUClasses
	maxCycle := 0
	for _, cyc := range cycles {
		if cyc < 0 || cyc > 64*len(cycles)+1024 {
			c.add("sched/record", fn, b, "recorded cycle %d is outside any feasible schedule", cyc)
			return
		}
		if cyc > maxCycle {
			maxCycle = cyc
		}
	}
	if maxCycle+1 > cap(sc.usage) {
		sc.usage = make([][1 + nFU]int16, maxCycle+1)
	} else {
		sc.usage = sc.usage[:maxCycle+1]
		clear(sc.usage)
	}
	usage := sc.usage
	for i, in := range b.Insts {
		u := &usage[cycles[i]]
		u[0]++
		if fu := in.Op.FU(); fu != isa.FUNone {
			u[1+int(fu)]++
		}
	}
	for cyc := range usage {
		u := &usage[cyc]
		if int(u[0]) > res.IssueWidth {
			c.add("sched/width", fn, b, "cycle %d issues %d instructions, width is %d",
				cyc, u[0], res.IssueWidth)
		}
		for fu := 1; fu < 1+nFU; fu++ {
			if n := int(u[fu]); n > res.Limit(isa.FUClass(fu-1)) {
				c.add("sched/width", fn, b, "cycle %d issues %d ops on FU class %d, limit is %d",
					cyc, n, fu-1, res.Limit(isa.FUClass(fu-1)))
			}
		}
	}
}

// checkDeps rebuilds the block's dependence edges over its final order —
// the same register and static memory-disambiguation rules the scheduler
// used — and checks the recorded cycles against them. True dependences
// (RAW) must wait out the producer's latency; anti, output and memory
// ordering edges only need issue order.
func (c *checker) checkDeps(fn *prog.Func, b *prog.Block, cycles []int, sc *schedScratch) {
	var lastDef [isa.NumRegs]int32 // 1+index of the defining inst; 0 = none
	lastUses := &sc.lastUses
	for i := range lastUses {
		lastUses[i] = lastUses[i][:0]
	}
	baseAt := func(r isa.Reg) int {
		return int(lastDef[r]) - 1
	}
	mayAlias := func(a, bm memRef) bool {
		if a.base != bm.base || a.baseIdx != bm.baseIdx {
			return true
		}
		return a.off == bm.off
	}
	ordered := func(from, to int, rule string) {
		if cycles[to] < cycles[from] {
			c.add("sched/dep", fn, b, "inst %d (%s dependence on inst %d) issues at cycle %d before %d",
				to, rule, from, cycles[to], cycles[from])
		}
	}
	stores, loads := sc.stores[:0], sc.loads[:0]
	var usesBuf [4]isa.Reg
	uses := usesBuf[:0]
	for i, in := range b.Insts {
		uses = in.Uses(uses[:0])
		for _, r := range uses {
			if d := int(lastDef[r]) - 1; d >= 0 && d != i {
				if want := cycles[d] + b.Insts[d].Op.Latency(); cycles[i] < want {
					c.add("sched/dep", fn, b,
						"inst %d reads r%d at cycle %d; producer inst %d finishes at cycle %d",
						i, r, cycles[i], d, want)
				}
			}
			lastUses[r] = append(lastUses[r], int32(i))
		}
		switch in.Op {
		case isa.ST, isa.FST:
			ref := memRef{idx: i, base: in.Rs1, baseIdx: baseAt(in.Rs1), off: in.Imm}
			for _, s := range stores {
				if mayAlias(ref, s) {
					ordered(s.idx, i, "store-store")
				}
			}
			for _, l := range loads {
				if mayAlias(ref, l) {
					ordered(l.idx, i, "load-store")
				}
			}
			stores = append(stores, ref)
		case isa.LD, isa.FLD:
			ref := memRef{idx: i, base: in.Rs1, baseIdx: baseAt(in.Rs1), off: in.Imm}
			for _, s := range stores {
				if mayAlias(ref, s) {
					ordered(s.idx, i, "store-load")
				}
			}
			loads = append(loads, ref)
		}
		if d, ok := in.Defs(); ok {
			if prev := int(lastDef[d]) - 1; prev >= 0 && prev != i {
				ordered(prev, i, "output")
			}
			for _, u := range lastUses[d] {
				if int(u) != i {
					ordered(int(u), i, "anti")
				}
			}
			lastDef[d] = int32(i + 1)
			lastUses[d] = lastUses[d][:0]
		}
	}
	sc.stores, sc.loads = stores, loads // keep grown capacity for the next block
}
