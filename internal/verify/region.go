package verify

import (
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
)

// Region checks one identified hot region against the phase record it was
// built from (DESIGN.md §6 invariants, promoted from the old
// region-package tests into production rules):
//
//	region/profiled-hot — every hot-spot branch that maps onto a block
//	                      left that block Hot
//	region/profiled-arc — both arc directions of a profiled branch have a
//	                      known (non-Unknown) temperature
//	region/no-cold      — with inference disabled the profile is trusted
//	                      as complete, so no block may be Cold
func Region(stage string, cfg region.Config, img *prog.Image, ph *phasedb.Phase, r *region.Region) error {
	c := &checker{stage: stage}
	c.region(cfg, img, ph, r)
	return c.err()
}

func (c *checker) region(cfg region.Config, img *prog.Image, ph *phasedb.Phase, r *region.Region) {
	for _, bs := range ph.SortedBranches() {
		b := img.BlockAt(bs.PC)
		if b == nil || b.Kind != prog.TermBranch || img.TermAddr[b] != bs.PC {
			continue // unmapped record; counted by region.UnmappedBranches
		}
		if r.BlockTemp[b] != region.Hot {
			c.add("region/profiled-hot", nil, b,
				"profiled branch block is %v, want hot", r.BlockTemp[b])
		}
		for _, dir := range [2]bool{true, false} {
			if r.ArcTemp[region.ArcKey{From: b, Taken: dir}] == region.Unknown {
				c.add("region/profiled-arc", nil, b,
					"profiled arc (taken=%v) has unknown temperature", dir)
			}
		}
	}
	if !cfg.EnableInference {
		if r.InferredCold != 0 {
			c.add("region/no-cold", nil, nil,
				"phase %d: %d blocks inferred cold with inference disabled",
				ph.ID, r.InferredCold)
		}
		for b, t := range r.BlockTemp {
			if t == region.Cold {
				c.add("region/no-cold", nil, b,
					"block is cold with inference disabled")
			}
		}
	}
}
