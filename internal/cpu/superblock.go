package cpu

// Superblock tier (tier 1) of the block-structured timed simulation.
//
// Tier 0 (blockcache.go) dispatches one decoded basic block at a time:
// execBlock re-loads operand registers through geti/setf accessors,
// re-derives issue masks from the FU class, and returns to the dispatch
// loop after every block. Hot code is dominated by a few short cycles of
// blocks — the same kernels the paper's superblock packer extracts — so
// almost every dispatch takes a transition the cache has already chained.
//
// Tier 1 promotes a block whose dispatch count crosses a hotness
// threshold into a *superblock*: the chain of blocks reached by following
// its observed majority successors (fall/taken bias counters maintained
// by the dispatch loop), flattened into one specialized slot array. Each
// slot carries everything execution needs, pre-resolved at promotion
// time: direct register-file indices (register classes validated once,
// so the executor indexes IntRegs/FPRegs with a mask instead of accessor
// calls and bounds checks), the packed issue-state masks for its FU
// class, its latency, and static I-line crossing marks (inside a trace
// every line boundary is known at build time; only trace entry compares
// lines dynamically). Conditional terminators inside the trace become
// *guards*: the branch executes and predicts exactly as in tier 0, and
// if control leaves the stitched path the executor side-exits back to
// the dispatch loop at the block that actually ran last. A trace whose
// successor returns to its own head loops internally without leaving the
// executor at all.
//
// Equivalence contract: tier 1 is bit-identical to tier 0 (and hence to
// the legacy loop) in TimingStats, machine state and DataHash, *and* in
// BlockCacheStats — every internal trace transition follows a chain
// pointer tier 0 would have taken, so it counts as Chained, and every
// side exit re-enters the dispatch switch exactly where tier 0 would
// have. Promotion only specializes instructions whose semantics it can
// reproduce exactly; anything else (cross-class register operands,
// discarded loads, invalid opcodes) pins the block to tier 0 with noSB.
//
// Invalidation: superblocks hang off their head block, so Bind/
// Invalidate dropping the decoded blocks drops every trace with them.
// Demotion: a trace that keeps side-exiting (guards failing on more than
// half its passes after a warm-up) is torn down and its head pinned to
// tier 0 — the branch bias it was stitched on no longer holds.

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// DefaultSuperblockThreshold is the number of tier-0 dispatches after
// which a block is promoted into a superblock trace.
const DefaultSuperblockThreshold = 16

const (
	// maxSuperblockBlocks and maxSuperblockSlots cap trace size; traces
	// past either cap simply end early with a normal exit.
	maxSuperblockBlocks = 64
	maxSuperblockSlots  = 256

	// demoteMinExecs is the warm-up before the side-exit ratio is
	// consulted: a trace with execs >= this whose *first* guard has
	// missed on more than half of them is demoted — the bias it was
	// stitched on no longer holds. Later guard misses are not evidence
	// against the trace: the specialized prefix still ran.
	demoteMinExecs = 64
)

// Terminator-slot flags, continuing the slotNeedRs1.. group from
// blockcache.go. Exactly one of slotExit / slotLoop / neither (internal
// guard) is set on a terminator slot.
const (
	slotCtl  = 1 << 4 // terminator: control handling + guard/exit logic
	slotExit = 1 << 5 // final slot: always leaves the trace
	slotLoop = 1 << 6 // back-edge to the trace head: loop internally
)

// SuperblockStats counts tier-1 activity for one BlockCache.
type SuperblockStats struct {
	Promoted     uint64 // traces built
	Demoted      uint64 // traces torn down for side-exiting
	SideExits    uint64 // guard misses that left a trace early
	ChainedInsts uint64 // instructions retired inside traces
}

// sslot is one specialized slot of a superblock: functional opcode,
// pre-resolved register indices, timing metadata and the packed
// issue-state masks, flattened so the executor never consults isa.Meta,
// the decoded block, or the instruction image.
type sslot struct {
	kind  uint8 // isa.Opcode selecting the functional body (NOP: timing only)
	lat   uint8
	flags uint8
	rd    uint8 // scoreboardDummy when the slot defines no register
	rs1   uint8
	rs2   uint8

	// tr1/tr2 are the scoreboard indices consulted for operand
	// readiness: the architectural register when the operand is read,
	// readyDummy (an always-zero entry) otherwise, so readiness is two
	// unconditional loads instead of two data-dependent branches.
	tr1 uint8
	tr2 uint8

	need uint64 // packed issue subtract mask for this slot's FU class
	hi   uint64 // packed issue high-bit mask
	imm  int64  // immediate / static branch target / LA target
	pc   int64  // absolute slot address
	next int64  // guard: expected next PC after a terminator slot
}

// Scoreboard dummy indices, past every architectural register:
// scoreboardDummy is written by slots that define no register (making
// the executor's scoreboard update unconditional) and never read;
// readyDummy is read by operands that don't exist (always zero — no
// slot ever writes it) and never written.
const (
	scoreboardDummy = 63
	readyDummy      = 62
)

// superblock is one promoted trace.
type superblock struct {
	entry int64
	head  *block
	slots []sslot

	// Per-slot cold metadata, touched only at exits and faults: the
	// constituent block owning each slot (handed back to the dispatch
	// loop), and package-slot prefixes — exitPkg counts completed blocks
	// through the slot's own, faultPkg excludes the partial block, both
	// matching tier 0's per-completed-block coverage accounting.
	blks     []*block
	exitPkg  []uint64
	faultPkg []uint64

	totalPkg  uint64 // package slots per full pass (loop traces)
	loopFetch bool   // loop-back re-entry crosses an I-line

	// firstGuard is the slot index of the earliest guard (a terminator
	// that can side-exit), -1 when the trace has none. A side exit past
	// the first guard still ran a specialized prefix, so only first-
	// guard misses argue the stitch direction itself was wrong.
	firstGuard int

	execs      uint64 // passes started (dispatches + internal loop-backs)
	sideExits  uint64
	earlyExits uint64 // side exits at the first guard
}

// intReg reports whether r names an integer register (R0 included).
func intReg(r isa.Reg) bool { return r < isa.NumIntRegs }

// promote builds a superblock headed by b, or pins b to tier 0 (noSB)
// when any instruction on the trace resists specialization. The trace
// follows the successor with the larger observed bias at each stitched
// terminator — along the already-chained pointer, so tier 0 would count
// the same transition as Chained — and ends at dynamic-target
// terminators, unbiased successors, size caps, or a revisit (a revisit
// of the head marks an internal loop instead).
func (bc *BlockCache) promote(b *block) *superblock {
	if !b.hasTerm {
		b.noSB = true
		return nil
	}
	sb := &superblock{entry: b.entry, head: b}
	members := make(map[*block]bool, 8)
	var pkgPrefix uint64
	cur := b
	for {
		members[cur] = true
		startSlot := len(sb.slots)
		n := len(cur.insts)
		for j := 0; j < n; j++ {
			s, ok := specializeSlot(&cur.insts[j], cur.slots[j], cur.entry+int64(j), j == n-1)
			if !ok {
				b.noSB = true
				return nil
			}
			s.tr1, s.tr2 = readyDummy, readyDummy
			if s.flags&slotNeedRs1 != 0 {
				s.tr1 = s.rs1
			}
			if s.flags&slotNeedRs2 != 0 {
				s.tr2 = s.rs2
			}
			if s.flags&slotWritesRd == 0 {
				s.rd = scoreboardDummy
			}
			sb.slots = append(sb.slots, s)
			sb.blks = append(sb.blks, cur)
			sb.faultPkg = append(sb.faultPkg, pkgPrefix)
			sb.exitPkg = append(sb.exitPkg, pkgPrefix+cur.pkgN)
		}
		if startSlot > 0 {
			// Constituent entry: tier 0 compares lines at block entry;
			// inside a trace the preceding slot's line is known, so the
			// crossing is static.
			if cur.entry>>3 != sb.slots[startSlot-1].pc>>3 {
				sb.slots[startSlot].flags |= slotNewLine
			}
		}
		pkgPrefix += cur.pkgN

		last := &sb.slots[len(sb.slots)-1]
		var nxt *block
		var expected int64
		switch isa.Opcode(last.kind) {
		case isa.RET, isa.JR, isa.HALT:
			// Dynamic target (or program end): the trace ends here.
		case isa.JMP, isa.CALL:
			expected, nxt = cur.takenPC, cur.taken
		default: // conditional branch: follow the observed bias
			if cur.takenSeen > cur.fallSeen {
				expected, nxt = cur.takenPC, cur.taken
			} else {
				expected, nxt = cur.fallPC, cur.fall
			}
		}
		switch {
		case nxt == nil:
			last.flags |= slotExit
		case nxt == b:
			last.flags |= slotLoop
			last.next = expected
			sb.loopFetch = sb.entry>>3 != last.pc>>3
		case members[nxt], !nxt.hasTerm,
			len(members) >= maxSuperblockBlocks,
			len(sb.slots)+len(nxt.insts) > maxSuperblockSlots:
			last.flags |= slotExit
		default:
			last.next = expected
			cur = nxt
			continue
		}
		break
	}
	sb.totalPkg = pkgPrefix
	sb.firstGuard = -1
	for i := range sb.slots {
		if f := sb.slots[i].flags; f&slotCtl != 0 && f&slotExit == 0 {
			sb.firstGuard = i
			break
		}
	}
	b.sb = sb
	bc.SB.Promoted++
	return sb
}

// specializeSlot translates one decoded instruction into its specialized
// slot, validating register classes so the executor can index the
// register files directly. It reports false when the instruction's exact
// semantics need the generic path (tier 0 then keeps the block).
func specializeSlot(in *isa.Inst, si slotInfo, pc int64, isTerm bool) (sslot, bool) {
	s := sslot{
		kind: uint8(in.Op), lat: si.lat, flags: si.flags,
		rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2),
		need: issueNeed(si.fu), hi: issueHigh(si.fu),
		imm: in.Imm, pc: pc,
	}
	if isTerm {
		switch in.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
			if !intReg(in.Rs1) || !intReg(in.Rs2) {
				return s, false
			}
			s.imm = in.Target
		case isa.JMP, isa.CALL:
			s.imm = in.Target
		case isa.RET:
			// Tier 0 folds the implicit RRA read into operand readiness.
			s.rs1 = uint8(isa.RRA)
			s.flags |= slotNeedRs1
		case isa.JR:
			if !intReg(in.Rs1) {
				return s, false
			}
		case isa.HALT:
		default:
			return s, false
		}
		s.flags |= slotCtl
		return s, true
	}
	switch in.Op {
	case isa.NOP:
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM,
		isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR, isa.SLT, isa.SEQ:
		if !intReg(in.Rs1) || !intReg(in.Rs2) || !intReg(in.Rd) {
			return s, false
		}
		if in.Rd == isa.R0 {
			s.kind = uint8(isa.NOP) // discarded result: timing only
		}
	case isa.ADDI, isa.MULI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SHLI, isa.SHRI, isa.SLTI:
		if !intReg(in.Rs1) || !intReg(in.Rd) {
			return s, false
		}
		if in.Rd == isa.R0 {
			s.kind = uint8(isa.NOP)
		}
	case isa.LI:
		if !intReg(in.Rd) {
			return s, false
		}
		if in.Rd == isa.R0 {
			s.kind = uint8(isa.NOP)
		}
	case isa.LD:
		if !intReg(in.Rs1) || !intReg(in.Rd) || in.Rd == isa.R0 {
			return s, false
		}
	case isa.ST:
		if !intReg(in.Rs1) || !intReg(in.Rs2) {
			return s, false
		}
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV:
		if !in.Rs1.IsFP() || !in.Rs2.IsFP() || !in.Rd.IsFP() {
			return s, false
		}
	case isa.FSLT:
		if !in.Rs1.IsFP() || !in.Rs2.IsFP() || !intReg(in.Rd) {
			return s, false
		}
		if in.Rd == isa.R0 {
			s.kind = uint8(isa.NOP)
		}
	case isa.FCVTIF:
		if !intReg(in.Rs1) || !in.Rd.IsFP() {
			return s, false
		}
	case isa.FCVTFI:
		if !in.Rs1.IsFP() || !intReg(in.Rd) {
			return s, false
		}
		if in.Rd == isa.R0 {
			s.kind = uint8(isa.NOP)
		}
	case isa.FLD:
		if !intReg(in.Rs1) || !in.Rd.IsFP() {
			return s, false
		}
	case isa.FST:
		if !intReg(in.Rs1) || !in.Rs2.IsFP() {
			return s, false
		}
	case isa.LA:
		if !intReg(in.Rd) {
			return s, false
		}
		if in.Rd == isa.R0 {
			s.kind = uint8(isa.NOP)
		}
		s.imm = in.Target
	default:
		return s, false
	}
	return s, true
}

// superFault mirrors blockFault for a fault at trace slot k: retire the
// k completed slots, credit the package coverage of the blocks that
// completed, and park PC on the faulting instruction. chained is the
// dispatch's locally accumulated guard-pass count, flushed here so the
// cache's cumulative stats stay exact across a faulting run.
func (t *Timing) superFault(m *Machine, bc *BlockCache, sb *superblock, k int, chained uint64, err error) error {
	bc.Stats.Chained += chained
	t.Stats.Insts += uint64(k)
	t.Stats.PackageInsts += sb.faultPkg[k]
	m.InstCount += uint64(k)
	bc.SB.ChainedInsts += uint64(k)
	m.PC = sb.slots[k].pc
	return err
}

// execSuper runs one dispatch of a superblock trace: the specialized
// flat-slot loop, guards at stitched terminators, internal loop-backs,
// and batched accounting at every exit. It returns the next PC and the
// constituent block that actually ran last, so the dispatch loop resumes
// exactly where tier 0 would have.
//
// The hot timing state — cycle, packed issue word, fetchReady, the RAW
// stall counter and the Chained count — lives in locals for the whole
// dispatch so the slot loop runs out of registers; every return path
// writes it back through flush-style assignments first.
func (t *Timing) execSuper(m *Machine, bc *BlockCache, sb *superblock) (int64, *block, error) {
	slots := sb.slots
	sb.execs++

	cycle := t.cycle
	free := t.free
	freeInit := t.freeInit
	fetchReady := t.fetchReady
	rawStalls := t.Stats.RAWStalls
	var chained uint64

	// Memory-op state, hoisted so the LD/ST slot bodies can run the dense
	// windows, the store hash, and the D-cache latency walk inline. The
	// dense slices are re-read from mem per access — a fallback store can
	// grow them mid-trace.
	mem := m.Mem
	fast := !mem.noFast
	l1d, l2 := t.l1d, t.l2
	ldLat := uint64(isa.LD.Latency())
	l2Lat, memLat := uint64(t.cfg.L2Latency), uint64(t.cfg.MemLatency)

	// Trace entry may land on the line fetch is already on; inside the
	// trace every crossing is a static slotNewLine mark.
	if line := sb.entry >> 3; line != t.lastLine {
		fetchReady = t.lineFetchAt(sb.entry, cycle, fetchReady)
	}

	for k := 0; k < len(slots); k++ {
		s := &slots[k]
		fl := s.flags
		if fl&slotNewLine != 0 {
			fetchReady = t.lineFetchAt(s.pc, cycle, fetchReady)
		}
		earliest := max(cycle, fetchReady)
		opndReady := max(t.regReady[s.tr1&63], t.regReady[s.tr2&63])
		if opndReady > earliest {
			rawStalls += opndReady - earliest
			earliest = opndReady
		}
		if earliest > cycle {
			cycle = earliest
			free = freeInit
		}
		f2 := free - s.need
		for f2&s.hi != s.hi {
			cycle++
			free = freeInit
			f2 = free - s.need
		}
		free = f2
		issue := cycle

		if fl&slotCtl != 0 {
			op := isa.Opcode(s.kind)
			next := s.pc + 1 // the owning block's fall-through PC
			taken := false
			condBranch := false
			switch op {
			case isa.BEQ:
				condBranch = true
				taken = m.IntRegs[s.rs1&31] == m.IntRegs[s.rs2&31]
			case isa.BNE:
				condBranch = true
				taken = m.IntRegs[s.rs1&31] != m.IntRegs[s.rs2&31]
			case isa.BLT:
				condBranch = true
				taken = m.IntRegs[s.rs1&31] < m.IntRegs[s.rs2&31]
			case isa.BGE:
				condBranch = true
				taken = m.IntRegs[s.rs1&31] >= m.IntRegs[s.rs2&31]
			case isa.JMP:
				taken = true
				next = s.imm
			case isa.CALL:
				taken = true
				m.IntRegs[isa.RRA] = s.pc + 1
				next = s.imm
			case isa.RET:
				taken = true
				next = m.IntRegs[isa.RRA]
			case isa.JR:
				taken = true
				next = m.IntRegs[s.rs1&31]
			case isa.HALT:
				m.Halted = true
				t.cycle, t.free, t.fetchReady = cycle, free, fetchReady
				t.Stats.RAWStalls = rawStalls
				bc.Stats.Chained += chained
				t.Stats.Insts += uint64(k + 1)
				t.Stats.PackageInsts += sb.exitPkg[k]
				m.InstCount += uint64(k + 1)
				bc.SB.ChainedInsts += uint64(k + 1)
				m.PC = next
				return next, sb.blks[k], nil
			}
			if condBranch && taken {
				next = s.imm
			}
			if op == isa.CALL {
				// CALL implicitly defines RRA.
				if ready := issue + uint64(s.lat); t.regReady[isa.RRA] < ready {
					t.regReady[isa.RRA] = ready
				}
			}
			redirect := false
			switch {
			case condBranch:
				t.Stats.CondBranches++
				if !t.pred.PredictCond(s.pc, taken) {
					redirect = true
				} else if taken && !t.pred.LookupBTB(s.pc, next) {
					redirect = true
				}
			case op == isa.JMP:
				if !t.pred.LookupBTB(s.pc, next) {
					redirect = true
				}
			case op == isa.CALL:
				t.pred.PushRAS(s.pc + 1)
				if !t.pred.LookupBTB(s.pc, next) {
					redirect = true
				}
			case op == isa.RET:
				if !t.pred.PopRAS(next) {
					redirect = true
				}
			case op == isa.JR:
				if !t.pred.LookupBTB(s.pc, next) {
					redirect = true
				}
			}
			if redirect {
				if c := issue + uint64(t.cfg.BranchResolution); fetchReady < c {
					fetchReady = c
				}
			} else if taken {
				t.Stats.FetchBreaks++
				if fetchReady < issue+1 {
					fetchReady = issue + 1
				}
			}

			if fl&slotExit != 0 || next != s.next {
				// Trace exit: the final slot, or a guard miss (control
				// left the stitched path — a side exit).
				t.cycle, t.free, t.fetchReady = cycle, free, fetchReady
				t.Stats.RAWStalls = rawStalls
				bc.Stats.Chained += chained
				t.Stats.Insts += uint64(k + 1)
				t.Stats.PackageInsts += sb.exitPkg[k]
				m.InstCount += uint64(k + 1)
				bc.SB.ChainedInsts += uint64(k + 1)
				if fl&slotExit == 0 {
					bc.SB.SideExits++
					sb.sideExits++
					if k == sb.firstGuard {
						sb.earlyExits++
						if sb.execs >= demoteMinExecs && sb.earlyExits*2 > sb.execs {
							sb.head.sb = nil
							sb.head.noSB = true
							bc.SB.Demoted++
						}
					}
				}
				m.PC = next
				return next, sb.blks[k], nil
			}
			// Guard passed: the transition follows a chain pointer tier 0
			// would have taken.
			chained++
			if fl&slotLoop != 0 {
				// Back to the head: account the completed pass and
				// restart the slot loop without leaving the executor.
				t.Stats.Insts += uint64(len(slots))
				t.Stats.PackageInsts += sb.totalPkg
				m.InstCount += uint64(len(slots))
				bc.SB.ChainedInsts += uint64(len(slots))
				sb.execs++
				if sb.loopFetch {
					fetchReady = t.lineFetchAt(sb.entry, cycle, fetchReady)
				}
				k = -1
			}
			continue
		}

		lat := uint64(s.lat)
		switch isa.Opcode(s.kind) {
		case isa.NOP: // includes specialized discarded-result ops
		case isa.ADD:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] + m.IntRegs[s.rs2&31]
		case isa.SUB:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] - m.IntRegs[s.rs2&31]
		case isa.MUL:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] * m.IntRegs[s.rs2&31]
		case isa.DIV:
			if d := m.IntRegs[s.rs2&31]; d != 0 {
				m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] / d
			} else {
				m.IntRegs[s.rd&31] = 0
			}
		case isa.REM:
			if d := m.IntRegs[s.rs2&31]; d != 0 {
				m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] % d
			} else {
				m.IntRegs[s.rd&31] = 0
			}
		case isa.AND:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] & m.IntRegs[s.rs2&31]
		case isa.OR:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] | m.IntRegs[s.rs2&31]
		case isa.XOR:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] ^ m.IntRegs[s.rs2&31]
		case isa.SHL:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] << uint(m.IntRegs[s.rs2&31]&63)
		case isa.SHR:
			m.IntRegs[s.rd&31] = int64(uint64(m.IntRegs[s.rs1&31]) >> uint(m.IntRegs[s.rs2&31]&63))
		case isa.SLT:
			m.IntRegs[s.rd&31] = b2i(m.IntRegs[s.rs1&31] < m.IntRegs[s.rs2&31])
		case isa.SEQ:
			m.IntRegs[s.rd&31] = b2i(m.IntRegs[s.rs1&31] == m.IntRegs[s.rs2&31])

		case isa.ADDI:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] + s.imm
		case isa.MULI:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] * s.imm
		case isa.ANDI:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] & s.imm
		case isa.ORI:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] | s.imm
		case isa.XORI:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] ^ s.imm
		case isa.SHLI:
			m.IntRegs[s.rd&31] = m.IntRegs[s.rs1&31] << uint(s.imm&63)
		case isa.SHRI:
			m.IntRegs[s.rd&31] = int64(uint64(m.IntRegs[s.rs1&31]) >> uint(s.imm&63))
		case isa.SLTI:
			m.IntRegs[s.rd&31] = b2i(m.IntRegs[s.rs1&31] < s.imm)
		case isa.LI:
			m.IntRegs[s.rd&31] = s.imm

		case isa.LD:
			addr := m.IntRegs[s.rs1&31] + s.imm
			w := addr >> 3
			var v int64
			if d := w - dataBaseWord; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.data)) {
				v = mem.data[d]
			} else if d := stackBaseWord - 1 - w; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.stack)) {
				v = mem.stack[d]
			} else {
				var err error
				if v, err = mem.Load(addr); err != nil {
					return 0, nil, t.superFault(m, bc, sb, k, chained, fmt.Errorf("cpu: pc %d: %w", s.pc, err))
				}
			}
			m.IntRegs[s.rd&31] = v
			lat = ldLat
			// Inline MRU hit (same counter/stamp updates as Access).
			if addr>>lineShift == l1d.lastLine {
				l1d.Accesses++
				l1d.tick++
				l1d.entries[l1d.lastWay].lru = l1d.tick
			} else if !l1d.Access(addr) {
				lat += l2Lat
				if !l2.Access(addr) {
					lat += memLat
				}
			}
		case isa.ST:
			addr := m.IntRegs[s.rs1&31] + s.imm
			val := m.IntRegs[s.rs2&31]
			w := addr >> 3
			if d := w - dataBaseWord; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.data)) {
				mem.data[d] = val
			} else if d := stackBaseWord - 1 - w; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.stack)) {
				mem.stack[d] = val
			} else if err := mem.Store(addr, val); err != nil {
				return 0, nil, t.superFault(m, bc, sb, k, chained, fmt.Errorf("cpu: pc %d: %w", s.pc, err))
			}
			if addr >= prog.DataBase && addr < prog.StackBase/2 {
				h := mix64(m.dataHash ^ uint64(addr))
				m.dataHash = mix64(h ^ uint64(val))
				m.dataCount++
			}
			// Stores touch the cache; the latency is hidden.
			if addr>>lineShift == l1d.lastLine {
				l1d.Accesses++
				l1d.tick++
				l1d.entries[l1d.lastWay].lru = l1d.tick
			} else if !l1d.Access(addr) {
				l2.Access(addr)
			}

		case isa.FADD:
			m.FPRegs[(s.rd-32)&15] = m.FPRegs[(s.rs1-32)&15] + m.FPRegs[(s.rs2-32)&15]
		case isa.FSUB:
			m.FPRegs[(s.rd-32)&15] = m.FPRegs[(s.rs1-32)&15] - m.FPRegs[(s.rs2-32)&15]
		case isa.FMUL:
			m.FPRegs[(s.rd-32)&15] = m.FPRegs[(s.rs1-32)&15] * m.FPRegs[(s.rs2-32)&15]
		case isa.FDIV:
			if d := m.FPRegs[(s.rs2-32)&15]; d != 0 {
				m.FPRegs[(s.rd-32)&15] = m.FPRegs[(s.rs1-32)&15] / d
			} else {
				m.FPRegs[(s.rd-32)&15] = 0
			}
		case isa.FSLT:
			m.IntRegs[s.rd&31] = b2i(m.FPRegs[(s.rs1-32)&15] < m.FPRegs[(s.rs2-32)&15])
		case isa.FCVTIF:
			m.FPRegs[(s.rd-32)&15] = float64(m.IntRegs[s.rs1&31])
		case isa.FCVTFI:
			m.IntRegs[s.rd&31] = int64(m.FPRegs[(s.rs1-32)&15])
		case isa.FLD:
			addr := m.IntRegs[s.rs1&31] + s.imm
			w := addr >> 3
			var v int64
			if d := w - dataBaseWord; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.data)) {
				v = mem.data[d]
			} else if d := stackBaseWord - 1 - w; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.stack)) {
				v = mem.stack[d]
			} else {
				var err error
				if v, err = mem.Load(addr); err != nil {
					return 0, nil, t.superFault(m, bc, sb, k, chained, fmt.Errorf("cpu: pc %d: %w", s.pc, err))
				}
			}
			m.FPRegs[(s.rd-32)&15] = math.Float64frombits(uint64(v))
			lat = ldLat
			if addr>>lineShift == l1d.lastLine {
				l1d.Accesses++
				l1d.tick++
				l1d.entries[l1d.lastWay].lru = l1d.tick
			} else if !l1d.Access(addr) {
				lat += l2Lat
				if !l2.Access(addr) {
					lat += memLat
				}
			}
		case isa.FST:
			addr := m.IntRegs[s.rs1&31] + s.imm
			bits := int64(math.Float64bits(m.FPRegs[(s.rs2-32)&15]))
			w := addr >> 3
			if d := w - dataBaseWord; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.data)) {
				mem.data[d] = bits
			} else if d := stackBaseWord - 1 - w; fast && addr&7 == 0 && uint64(d) < uint64(len(mem.stack)) {
				mem.stack[d] = bits
			} else if err := mem.Store(addr, bits); err != nil {
				return 0, nil, t.superFault(m, bc, sb, k, chained, fmt.Errorf("cpu: pc %d: %w", s.pc, err))
			}
			if addr >= prog.DataBase && addr < prog.StackBase/2 {
				h := mix64(m.dataHash ^ uint64(addr))
				m.dataHash = mix64(h ^ uint64(bits))
				m.dataCount++
			}
			if addr>>lineShift == l1d.lastLine {
				l1d.Accesses++
				l1d.tick++
				l1d.entries[l1d.lastWay].lru = l1d.tick
			} else if !l1d.Access(addr) {
				l2.Access(addr)
			}

		case isa.LA:
			m.IntRegs[s.rd&31] = s.imm
		default:
			return 0, nil, t.superFault(m, bc, sb, k, chained,
				fmt.Errorf("cpu: pc %d: invalid opcode %v", s.pc, isa.Opcode(s.kind)))
		}

		// Unconditional scoreboard update: slots that define no register
		// carry the dummy index, which is never read.
		if ready := issue + lat; t.regReady[s.rd&63] < ready {
			t.regReady[s.rd&63] = ready
		}
	}
	// Unreachable: the final slot always carries slotExit or slotLoop.
	panic("cpu: superblock trace fell off its final slot")
}
