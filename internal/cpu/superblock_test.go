package cpu

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/prog"
)

// timedTriple runs img through all three execution paths — legacy
// instruction-at-a-time, tier 0 (block cache, superblocks off), and
// tier 1 (superblocks on, promotion threshold thresh) — and requires
// bit-identical TimingStats, machine state, and data hash across them.
// It returns the tier-1 cache for promotion-level assertions.
func timedTriple(t *testing.T, img *prog.Image, thresh int) *BlockCache {
	t.Helper()

	legacyCfg := DefaultConfig()
	legacyCfg.DisableBlockCache = true
	sLegacy, mLegacy, err := RunTimed(legacyCfg, img, 0)
	if err != nil {
		t.Fatalf("legacy RunTimed: %v", err)
	}

	t0Cfg := DefaultConfig()
	t0Cfg.DisableSuperblocks = true
	sT0, mT0, err := RunTimed(t0Cfg, img, 0)
	if err != nil {
		t.Fatalf("tier-0 RunTimed: %v", err)
	}

	t1Cfg := DefaultConfig()
	t1Cfg.SuperblockThreshold = thresh
	bc := NewBlockCache(img)
	sT1, mT1, err := RunTimedCached(t1Cfg, img, 0, bc)
	if err != nil {
		t.Fatalf("tier-1 RunTimed: %v", err)
	}

	if sT0 != sLegacy {
		t.Errorf("tier-0 TimingStats diverged from legacy:\n  tier 0: %+v\n  legacy: %+v", sT0, sLegacy)
	}
	if sT1 != sLegacy {
		t.Errorf("tier-1 TimingStats diverged from legacy:\n  tier 1: %+v\n  legacy: %+v", sT1, sLegacy)
	}
	for _, pair := range []struct {
		name string
		m    *Machine
	}{{"tier 0", mT0}, {"tier 1", mT1}} {
		if pair.m.InstCount != mLegacy.InstCount {
			t.Errorf("%s InstCount %d, legacy %d", pair.name, pair.m.InstCount, mLegacy.InstCount)
		}
		if pair.m.IntRegs != mLegacy.IntRegs {
			t.Errorf("%s integer register file diverged from legacy", pair.name)
		}
		if pair.m.FPRegs != mLegacy.FPRegs {
			t.Errorf("%s FP register file diverged from legacy", pair.name)
		}
		h, n := pair.m.DataHash()
		hl, nl := mLegacy.DataHash()
		if h != hl || n != nl {
			t.Errorf("%s DataHash %#x/%d, legacy %#x/%d", pair.name, h, n, hl, nl)
		}
	}
	return bc
}

// genProgram builds a random but always-terminating looped workload: a
// counted loop whose body mixes ALU ops, loads and stores against the
// data segment, and data-dependent forward branches (the skips become
// tier-1 guards). r1 holds the data base and r2 the loop counter; body
// destinations stay in r3..r12 so the loop structure survives anything
// the generator emits.
func genProgram(next func() uint64) string {
	var b strings.Builder
	b.WriteString(".data")
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&b, " %d", int64(next()%1000))
	}
	b.WriteString("\n.func main\n.main\n")
	fmt.Fprintf(&b, "  li r1, %d\n", prog.DataBase)
	fmt.Fprintf(&b, "  li r2, %d\n", 80+next()%120)
	b.WriteString("  li r3, 0\nloop:\n")

	reg := func() int { return 3 + int(next()%10) } // r3..r12
	n := 8 + int(next()%12)
	skips := 0
	for i := 0; i < n; i++ {
		switch next() % 8 {
		case 0:
			fmt.Fprintf(&b, "  add r%d, r%d, r%d\n", reg(), reg(), reg())
		case 1:
			fmt.Fprintf(&b, "  addi r%d, r%d, %d\n", reg(), reg(), int64(next()%64))
		case 2:
			fmt.Fprintf(&b, "  xor r%d, r%d, r%d\n", reg(), reg(), reg())
		case 3:
			fmt.Fprintf(&b, "  muli r%d, r%d, %d\n", reg(), reg(), 1+int64(next()%7))
		case 4:
			fmt.Fprintf(&b, "  ld r%d, %d(r1)\n", reg(), 8*(next()%64))
		case 5:
			fmt.Fprintf(&b, "  st r%d, %d(r1)\n", reg(), 8*(next()%64))
		case 6:
			fmt.Fprintf(&b, "  slt r%d, r%d, r%d\n", reg(), reg(), reg())
		case 7:
			// Data-dependent forward skip: a guard once promoted.
			fmt.Fprintf(&b, "  beq r%d, r0, skip%d\n", reg(), skips)
			fmt.Fprintf(&b, "  addi r%d, r%d, 1\n", reg(), reg())
			if next()&1 == 0 {
				fmt.Fprintf(&b, "  st r%d, %d(r1)\n", reg(), 8*(next()%64))
			}
			fmt.Fprintf(&b, "skip%d:\n", skips)
			skips++
		}
	}
	b.WriteString("  addi r2, r2, -1\n  bne r2, r0, loop\n  halt\n")
	return b.String()
}

// TestSuperblockEquivalenceRandom is the randomized property test for
// the two-tier engine: for a batch of generated looped workloads, tier 1
// must match tier 0 and the legacy loop bit-for-bit, while actually
// promoting traces (the low threshold guarantees the tier-1 path runs).
func TestSuperblockEquivalenceRandom(t *testing.T) {
	state := uint64(0x243f6a8885a308d3)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	promoted := uint64(0)
	for i := 0; i < 25; i++ {
		src := genProgram(next)
		t.Run(fmt.Sprintf("prog%02d", i), func(t *testing.T) {
			img := mustAssemble(t, src)
			bc := timedTriple(t, img, 2)
			promoted += bc.SB.Promoted
			if bc.SB.ChainedInsts == 0 && bc.SB.Promoted > 0 {
				t.Error("promoted traces retired no instructions")
			}
		})
	}
	if promoted == 0 {
		t.Error("no generated program promoted a superblock")
	}
}

// TestSuperblockPromotion checks the promotion path directly: a hot
// counted loop must cross the threshold, build a trace, and retire the
// bulk of its instructions inside it.
func TestSuperblockPromotion(t *testing.T) {
	img := mustAssemble(t, `
.func main
.main
  li r1, 0
  li r2, 2000
loop:
  addi r1, r1, 1
  add r3, r3, r1
  bne r1, r2, loop
  halt
`)
	bc := timedTriple(t, img, 4)
	if bc.SB.Promoted == 0 {
		t.Fatal("hot loop never promoted")
	}
	if bc.SB.ChainedInsts == 0 {
		t.Fatal("promoted trace retired no instructions")
	}
	// The loop runs 2000 iterations and promotes after a handful; the
	// trace should own nearly all retired instructions.
	if total := bc.SB.ChainedInsts; total < 5000 {
		t.Errorf("trace retired only %d insts; promotion came too late", total)
	}
}

// TestSuperblockSideExitDemotion flips a branch bias after promotion:
// the trace stitched on the early direction must side-exit at its first
// guard often enough to be demoted, and the run must stay bit-identical
// to the other tiers throughout.
func TestSuperblockSideExitDemotion(t *testing.T) {
	// Phase 1 (r4=0, 200 iterations): the inner branch jumps to stay, so
	// the trace is stitched along the taken edge. Phase 2 (r4=1, 600
	// iterations): it falls through instead, missing the stitched guard
	// on every pass. The discarded load on the fall path pins that
	// block to tier 0 (specialization bails on it), so no competing
	// trace can shadow the side-exiting one — the old trace keeps
	// getting dispatched and missing until demotion fires.
	img := mustAssemble(t, `
.func main
.main
  li r1, 0
  li r2, 200
  li r4, 0
phase:
loop:
  beq r4, r0, stay
  addi r5, r5, 7
  ld r0, 0(r6)
stay:
  addi r1, r1, 1
  bne r1, r2, loop
  beq r4, r0, flip
  halt
flip:
  li r4, 1
  li r1, 0
  li r2, 600
  jmp phase
`)
	bc := timedTriple(t, img, 4)
	if bc.SB.Promoted == 0 {
		t.Fatal("loop never promoted")
	}
	if bc.SB.SideExits == 0 {
		t.Fatal("flipped branch produced no side exits")
	}
	if bc.SB.Demoted == 0 {
		t.Error("persistently side-exiting trace was never demoted")
	}
}

// TestSuperblockInvalidateOnBind checks the invalidation-on-install
// rule: binding the cache to a new image evicts every block and the
// traces hanging off them; re-binding the same image keeps both.
func TestSuperblockInvalidateOnBind(t *testing.T) {
	src := `
.func main
.main
  li r1, 0
  li r2, 500
loop:
  addi r1, r1, 1
  bne r1, r2, loop
  halt
`
	img := mustAssemble(t, src)
	img2 := mustAssemble(t, src)

	cfg := DefaultConfig()
	cfg.SuperblockThreshold = 4
	bc := NewBlockCache(img)
	if _, _, err := RunTimedCached(cfg, img, 0, bc); err != nil {
		t.Fatal(err)
	}
	if bc.SB.Promoted == 0 {
		t.Fatal("warm-up run promoted nothing")
	}
	traces := 0
	for _, b := range bc.blocks {
		if b != nil && b.sb != nil {
			traces++
		}
	}
	if traces == 0 {
		t.Fatal("no decoded block holds a trace")
	}
	decoded := bc.Len()

	// Same image: everything survives.
	bc.Bind(img)
	if bc.Len() != decoded {
		t.Errorf("re-bind to same image evicted blocks: %d -> %d", decoded, bc.Len())
	}

	// New image: blocks and their traces are gone, counted as evictions.
	bc.Bind(img2)
	if bc.Len() != 0 {
		t.Errorf("bind to new image left %d blocks decoded", bc.Len())
	}
	if bc.Stats.Evicted == 0 {
		t.Error("invalidation counted no evictions")
	}
	// The rebound cache must still run correctly and re-promote.
	before := bc.SB.Promoted
	if _, _, err := RunTimedCached(cfg, img2, 0, bc); err != nil {
		t.Fatal(err)
	}
	if bc.SB.Promoted == before {
		t.Error("rebound cache never re-promoted")
	}
}

// TestSuperblockConfigGates checks both off switches: DisableSuperblocks
// and an unreachable threshold must leave the cache at tier 0 while
// remaining bit-identical (covered for the disabled case by timedTriple's
// tier-0 leg; asserted directly here).
func TestSuperblockConfigGates(t *testing.T) {
	img := mustAssemble(t, `
.func main
.main
  li r1, 0
  li r2, 300
loop:
  addi r1, r1, 1
  bne r1, r2, loop
  halt
`)
	cfg := DefaultConfig()
	cfg.DisableSuperblocks = true
	bc := NewBlockCache(img)
	if _, _, err := RunTimedCached(cfg, img, 0, bc); err != nil {
		t.Fatal(err)
	}
	if bc.SB.Promoted != 0 {
		t.Errorf("DisableSuperblocks still promoted %d traces", bc.SB.Promoted)
	}

	cfg = DefaultConfig()
	cfg.SuperblockThreshold = 1 << 30
	bc = NewBlockCache(img)
	if _, _, err := RunTimedCached(cfg, img, 0, bc); err != nil {
		t.Fatal(err)
	}
	if bc.SB.Promoted != 0 {
		t.Errorf("unreachable threshold still promoted %d traces", bc.SB.Promoted)
	}
}

// TestSuperblockConcurrentRuns exercises the documented concurrency
// contract under the race detector: one image, per-goroutine caches.
func TestSuperblockConcurrentRuns(t *testing.T) {
	img := mustAssemble(t, `
.func main
.main
  li r1, 0
  li r2, 400
loop:
  addi r1, r1, 1
  add r3, r3, r1
  bne r1, r2, loop
  halt
`)
	cfg := DefaultConfig()
	cfg.SuperblockThreshold = 2
	var wg sync.WaitGroup
	stats := make([]TimingStats, 4)
	errs := make([]error, 4)
	for i := range stats {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], _, errs[i] = RunTimedCached(cfg, img, 0, NewBlockCache(img))
		}(i)
	}
	wg.Wait()
	for i := range stats {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if stats[i] != stats[0] {
			t.Errorf("run %d stats diverged: %+v vs %+v", i, stats[i], stats[0])
		}
	}
}
