package cpu

// Block-structured timed simulation. The legacy RunTimed loop interprets
// one instruction at a time: Machine.exec fills a StepInfo record, then
// Timing.Observe re-derives per-opcode metadata, re-computes the I-line,
// and re-checks package membership for every retired instruction. Execution
// is dominated by small repeating kernels, so almost all of that work is
// identical every time a basic block re-executes.
//
// BlockCache pre-decodes each basic block once — on first dynamic entry —
// into a flat record: the instruction run (aliasing the image, never
// copied), per-slot resource class/latency/operand flags, I-line boundary
// marks, and the static intra-block summary the issue logic needs (which
// operands are live, which slots define a register). Timing.execBlock then
// dispatches whole blocks through a single fused functional+timing loop
// that touches the predictor only at block boundaries and the data caches
// only at loads/stores, with DBT-style block chaining for fall-through and
// taken successors. The cached path is bit-identical to the legacy path:
// TestBlockCacheEquivalence asserts equal TimingStats and DataHash over
// the full workload suite.
//
// Invalidation rule: a cache is valid for exactly one *prog.Image. Images
// are immutable once linearized, so entries never go stale underneath a
// run; installing a different image (Bind) evicts every decoded block.

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Per-slot flag bits, pre-decoded so the fused loop replaces three
// isa.Meta field tests and a line computation with one mask test each.
const (
	slotNeedRs1  = 1 << iota // operand 1 is read and is not R0
	slotNeedRs2              // operand 2 is read and is not R0
	slotWritesRd             // defines Rd (and Rd is not R0)
	slotNewLine              // first slot of a new I-cache line inside the block
)

// slotInfo is the pre-decoded timing metadata for one instruction slot.
type slotInfo struct {
	fu    isa.FUClass
	lat   uint8
	flags uint8
}

// block is one decoded basic block: a straight-line instruction run from
// its entry PC up to and including the first control instruction.
type block struct {
	entry int64
	insts []isa.Inst // aliases the image's code, never copied
	slots []slotInfo
	pkgN  uint64 // slots belonging to package functions (coverage metric)

	hasTerm bool  // false only when the run hit the end of the image
	fallPC  int64 // PC after the block (not-taken / fall-through successor)
	takenPC int64 // terminator's static target, or -1 (RET, JR, HALT)

	// Chained successors, resolved lazily on first dispatch.
	fall  *block
	taken *block

	// Tier-1 promotion state. count rises on each tier-0 dispatch until
	// it reaches the promotion threshold; fallSeen/takenSeen record the
	// observed successor bias that steers superblock stitching. sb is the
	// promoted trace headed by this block; noSB pins the block to tier 0
	// (specialization bailed, or the trace was demoted for side-exiting).
	count     uint32
	fallSeen  uint32
	takenSeen uint32
	noSB      bool
	sb        *superblock
}

// BlockCacheStats counts cache traffic. A dispatch is served either by a
// chained successor pointer (Chained), an entry-PC table hit (Hits), or a
// decode (Misses). Evicted counts blocks discarded by invalidation.
type BlockCacheStats struct {
	Hits    uint64
	Chained uint64
	Misses  uint64
	Evicted uint64
}

// HitRate returns the fraction of block dispatches that did not decode.
func (s BlockCacheStats) HitRate() float64 {
	total := s.Hits + s.Chained + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Chained) / float64(total)
}

// BlockCache holds the decoded blocks of one image, keyed by entry PC.
// It is not safe for concurrent use; give each concurrent timed run its
// own cache (they are cheap — decode is lazy and aliases the image).
type BlockCache struct {
	img    *prog.Image
	blocks []*block
	Stats  BlockCacheStats
	SB     SuperblockStats
}

// NewBlockCache returns an empty cache bound to img.
func NewBlockCache(img *prog.Image) *BlockCache {
	return &BlockCache{img: img, blocks: make([]*block, len(img.Code))}
}

// Bind points the cache at img, applying the invalidation-on-install
// rule: binding to a different image evicts every decoded block (counted
// in Stats.Evicted). Re-binding to the same image keeps all entries —
// that is what makes repeated timed runs of one image cheap.
func (c *BlockCache) Bind(img *prog.Image) {
	if c.img == img {
		return
	}
	c.Invalidate()
	c.img = img
	c.blocks = make([]*block, len(img.Code))
}

// Invalidate evicts every decoded block, keeping the image binding.
func (c *BlockCache) Invalidate() {
	for i, b := range c.blocks {
		if b != nil {
			c.Stats.Evicted++
			c.blocks[i] = nil
		}
	}
}

// Len reports how many blocks are currently decoded.
func (c *BlockCache) Len() int {
	n := 0
	for _, b := range c.blocks {
		if b != nil {
			n++
		}
	}
	return n
}

// lookup returns the block entered at pc, decoding it on first visit.
// The caller has bounds-checked pc against the image.
func (c *BlockCache) lookup(pc int64) *block {
	if b := c.blocks[pc]; b != nil {
		c.Stats.Hits++
		return b
	}
	c.Stats.Misses++
	b := c.decode(pc)
	c.blocks[pc] = b
	return b
}

// decode scans the straight-line run starting at entry and builds its
// block record. Blocks are keyed by entry PC, so runs entered mid-way
// (e.g. a return landing after a call slot) simply decode their own,
// overlapping record.
func (c *BlockCache) decode(entry int64) *block {
	code := c.img.Code
	end := entry
	hasTerm := false
	for end < int64(len(code)) {
		op := code[end].Op
		end++
		if isa.Meta[op].IsControl {
			hasTerm = true
			break
		}
	}
	b := &block{
		entry:   entry,
		insts:   code[entry:end],
		slots:   make([]slotInfo, end-entry),
		hasTerm: hasTerm,
		fallPC:  end,
		takenPC: -1,
	}
	for j := range b.insts {
		in := &b.insts[j]
		meta := &isa.Meta[in.Op]
		var f uint8
		if meta.HasRs1 && in.Rs1 != isa.R0 {
			f |= slotNeedRs1
		}
		if meta.HasRs2 && in.Rs2 != isa.R0 {
			f |= slotNeedRs2
		}
		if meta.HasRd && in.Rd != isa.R0 {
			f |= slotWritesRd
		}
		// The fetch stream inside a straight-line run is strictly
		// ascending, so a new I-line begins exactly at slot addresses
		// divisible by the line width (8 slots of 8 bytes per 64-byte
		// line). The entry slot is excluded: the block may be entered
		// on the line fetch is already on, so it compares at run time.
		if j > 0 && (entry+int64(j))&7 == 0 {
			f |= slotNewLine
		}
		b.slots[j] = slotInfo{fu: meta.FU, lat: meta.Latency, flags: f}
		if blk := c.img.AddrBlock[entry+int64(j)]; blk != nil && blk.Fn.IsPackage {
			b.pkgN++
		}
	}
	if hasTerm {
		switch term := &b.insts[len(b.insts)-1]; term.Op {
		case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.JMP, isa.CALL:
			b.takenPC = term.Target
		}
	}
	return b
}

// runBlocks is the two-tier block-dispatch loop. Tier 0 executes one
// decoded block at a time through execBlock, chasing chained successor
// pointers when the next PC matches the block's fall-through or taken
// target and falling back to a table lookup otherwise. Blocks dispatched
// often enough are promoted into superblock traces (tier 1, see
// superblock.go) and thereafter run through the specialized trace
// executor, which returns control here at the trace's exit block. Both
// tiers classify dispatches identically into BlockCacheStats.
func (t *Timing) runBlocks(m *Machine, bc *BlockCache) error {
	n := int64(len(m.Img.Code))
	pc := m.PC
	if uint64(pc) >= uint64(n) {
		return fmt.Errorf("cpu: PC %d outside code image (len %d)", pc, n)
	}
	sbOn := !t.cfg.DisableSuperblocks
	thresh := uint32(DefaultSuperblockThreshold)
	if t.cfg.SuperblockThreshold > 0 {
		thresh = uint32(t.cfg.SuperblockThreshold)
	}
	b := bc.lookup(pc)
	for {
		var next int64
		var err error
		if sbOn && b.sb != nil {
			next, b, err = t.execSuper(m, bc, b.sb)
		} else {
			if sbOn && !b.noSB && b.count < thresh {
				b.count++
				if b.count == thresh {
					if sb := bc.promote(b); sb != nil {
						next, b, err = t.execSuper(m, bc, sb)
						goto dispatched
					}
				}
			}
			next, err = t.execBlock(m, b)
		}
	dispatched:
		if err != nil {
			return err
		}
		if m.Halted {
			return nil
		}
		switch next {
		case b.fallPC:
			b.fallSeen++
			if nb := b.fall; nb != nil {
				bc.Stats.Chained++
				b = nb
				continue
			}
			if uint64(next) >= uint64(n) {
				return fmt.Errorf("cpu: PC %d outside code image (len %d)", next, n)
			}
			b.fall = bc.lookup(next)
			b = b.fall
		case b.takenPC:
			b.takenSeen++
			if nb := b.taken; nb != nil {
				bc.Stats.Chained++
				b = nb
				continue
			}
			if uint64(next) >= uint64(n) {
				return fmt.Errorf("cpu: PC %d outside code image (len %d)", next, n)
			}
			b.taken = bc.lookup(next)
			b = b.taken
		default:
			// Dynamic target (RET, JR): no chain slot, table lookup.
			if uint64(next) >= uint64(n) {
				return fmt.Errorf("cpu: PC %d outside code image (len %d)", next, n)
			}
			b = bc.lookup(next)
		}
	}
}

// blockFault restores the per-instruction invariants the legacy loop would
// leave behind after a fault at slot j — retired counts for the j slots
// that completed, PC parked on the faulting instruction — so diagnostics
// and partial machine state agree between the two paths.
func (t *Timing) blockFault(m *Machine, b *block, j int, err error) error {
	t.Stats.Insts += uint64(j)
	m.InstCount += uint64(j)
	m.PC = b.entry + int64(j)
	return err
}

// execBlock retires every instruction of b — functional execution and
// cycle accounting fused in one pass — and returns the next PC. It is the
// batched equivalent of Machine.exec + Timing.Observe per slot; any
// semantic change here must be mirrored there (and vice versa), which
// TestBlockCacheEquivalence enforces over the whole workload suite.
func (t *Timing) execBlock(m *Machine, b *block) (int64, error) {
	insts := b.insts
	slots := b.slots
	entry := b.entry
	n := len(insts)
	straight := n
	if b.hasTerm {
		straight--
	}

	// Entry fetch: the block may begin mid-line (fall-through, or a jump
	// back into the line fetch is already on), so compare lines here; the
	// per-slot slotNewLine marks cover the rest of the run.
	if line := entry >> 3; line != t.lastLine {
		t.lineFetch(entry)
	}

	for j := 0; j < straight; j++ {
		in := &insts[j]
		si := slots[j]
		pc := entry + int64(j)

		if si.flags&slotNewLine != 0 {
			t.lineFetch(pc)
		}

		// Earliest issue cycle: fetch availability and operand readiness.
		earliest := t.cycle
		if t.fetchReady > earliest {
			earliest = t.fetchReady
		}
		var opndReady uint64
		if si.flags&slotNeedRs1 != 0 {
			opndReady = t.regReady[in.Rs1&63]
		}
		if si.flags&slotNeedRs2 != 0 && t.regReady[in.Rs2&63] > opndReady {
			opndReady = t.regReady[in.Rs2&63]
		}
		if opndReady > earliest {
			t.Stats.RAWStalls += opndReady - earliest
			earliest = opndReady
		}
		if earliest > t.cycle {
			t.advanceTo(earliest)
		}
		need, hi := issueNeed(si.fu), issueHigh(si.fu)
		f2 := t.free - need
		for f2&hi != hi {
			t.nextCycle()
			f2 = t.free - need
		}
		t.free = f2
		issue := t.cycle

		lat := int(si.lat)
		switch in.Op {
		case isa.NOP:
		case isa.ADD:
			m.seti(in.Rd, m.geti(in.Rs1)+m.geti(in.Rs2))
		case isa.SUB:
			m.seti(in.Rd, m.geti(in.Rs1)-m.geti(in.Rs2))
		case isa.MUL:
			m.seti(in.Rd, m.geti(in.Rs1)*m.geti(in.Rs2))
		case isa.DIV:
			if d := m.geti(in.Rs2); d != 0 {
				m.seti(in.Rd, m.geti(in.Rs1)/d)
			} else {
				m.seti(in.Rd, 0)
			}
		case isa.REM:
			if d := m.geti(in.Rs2); d != 0 {
				m.seti(in.Rd, m.geti(in.Rs1)%d)
			} else {
				m.seti(in.Rd, 0)
			}
		case isa.AND:
			m.seti(in.Rd, m.geti(in.Rs1)&m.geti(in.Rs2))
		case isa.OR:
			m.seti(in.Rd, m.geti(in.Rs1)|m.geti(in.Rs2))
		case isa.XOR:
			m.seti(in.Rd, m.geti(in.Rs1)^m.geti(in.Rs2))
		case isa.SHL:
			m.seti(in.Rd, m.geti(in.Rs1)<<uint(m.geti(in.Rs2)&63))
		case isa.SHR:
			m.seti(in.Rd, int64(uint64(m.geti(in.Rs1))>>uint(m.geti(in.Rs2)&63)))
		case isa.SLT:
			m.seti(in.Rd, b2i(m.geti(in.Rs1) < m.geti(in.Rs2)))
		case isa.SEQ:
			m.seti(in.Rd, b2i(m.geti(in.Rs1) == m.geti(in.Rs2)))

		case isa.ADDI:
			m.seti(in.Rd, m.geti(in.Rs1)+in.Imm)
		case isa.MULI:
			m.seti(in.Rd, m.geti(in.Rs1)*in.Imm)
		case isa.ANDI:
			m.seti(in.Rd, m.geti(in.Rs1)&in.Imm)
		case isa.ORI:
			m.seti(in.Rd, m.geti(in.Rs1)|in.Imm)
		case isa.XORI:
			m.seti(in.Rd, m.geti(in.Rs1)^in.Imm)
		case isa.SHLI:
			m.seti(in.Rd, m.geti(in.Rs1)<<uint(in.Imm&63))
		case isa.SHRI:
			m.seti(in.Rd, int64(uint64(m.geti(in.Rs1))>>uint(in.Imm&63)))
		case isa.SLTI:
			m.seti(in.Rd, b2i(m.geti(in.Rs1) < in.Imm))
		case isa.LI:
			m.seti(in.Rd, in.Imm)

		case isa.LD:
			addr := m.geti(in.Rs1) + in.Imm
			v, err := m.Mem.Load(addr)
			if err != nil {
				return 0, t.blockFault(m, b, j, fmt.Errorf("cpu: pc %d: %w", pc, err))
			}
			m.seti(in.Rd, v)
			lat = t.dLatency(addr)
		case isa.ST:
			addr := m.geti(in.Rs1) + in.Imm
			if err := m.Mem.Store(addr, m.geti(in.Rs2)); err != nil {
				return 0, t.blockFault(m, b, j, fmt.Errorf("cpu: pc %d: %w", pc, err))
			}
			m.hashStore(addr, m.geti(in.Rs2))
			t.dLatency(addr) // stores touch the cache; latency hidden

		case isa.FADD:
			m.setf(in.Rd, m.getf(in.Rs1)+m.getf(in.Rs2))
		case isa.FSUB:
			m.setf(in.Rd, m.getf(in.Rs1)-m.getf(in.Rs2))
		case isa.FMUL:
			m.setf(in.Rd, m.getf(in.Rs1)*m.getf(in.Rs2))
		case isa.FDIV:
			if d := m.getf(in.Rs2); d != 0 {
				m.setf(in.Rd, m.getf(in.Rs1)/d)
			} else {
				m.setf(in.Rd, 0)
			}
		case isa.FSLT:
			m.seti(in.Rd, b2i(m.getf(in.Rs1) < m.getf(in.Rs2)))
		case isa.FCVTIF:
			m.setf(in.Rd, float64(m.geti(in.Rs1)))
		case isa.FCVTFI:
			m.seti(in.Rd, int64(m.getf(in.Rs1)))
		case isa.FLD:
			addr := m.geti(in.Rs1) + in.Imm
			v, err := m.Mem.Load(addr)
			if err != nil {
				return 0, t.blockFault(m, b, j, fmt.Errorf("cpu: pc %d: %w", pc, err))
			}
			m.setf(in.Rd, math.Float64frombits(uint64(v)))
			lat = t.dLatency(addr)
		case isa.FST:
			addr := m.geti(in.Rs1) + in.Imm
			bits := int64(math.Float64bits(m.getf(in.Rs2)))
			if err := m.Mem.Store(addr, bits); err != nil {
				return 0, t.blockFault(m, b, j, fmt.Errorf("cpu: pc %d: %w", pc, err))
			}
			m.hashStore(addr, bits)
			t.dLatency(addr)

		case isa.LA:
			m.seti(in.Rd, in.Target)
		default:
			return 0, t.blockFault(m, b, j, fmt.Errorf("cpu: pc %d: invalid opcode %v", pc, in.Op))
		}

		if si.flags&slotWritesRd != 0 {
			if ready := issue + uint64(lat); t.regReady[in.Rd&63] < ready {
				t.regReady[in.Rd&63] = ready
			}
		}
	}

	next := b.fallPC
	if b.hasTerm {
		j := n - 1
		in := &insts[j]
		si := slots[j]
		pc := entry + int64(j)
		op := in.Op

		if si.flags&slotNewLine != 0 {
			t.lineFetch(pc)
		}

		earliest := t.cycle
		if t.fetchReady > earliest {
			earliest = t.fetchReady
		}
		var opndReady uint64
		if si.flags&slotNeedRs1 != 0 {
			opndReady = t.regReady[in.Rs1&63]
		}
		if si.flags&slotNeedRs2 != 0 && t.regReady[in.Rs2&63] > opndReady {
			opndReady = t.regReady[in.Rs2&63]
		}
		if op == isa.RET && t.regReady[isa.RRA] > opndReady {
			opndReady = t.regReady[isa.RRA]
		}
		if opndReady > earliest {
			t.Stats.RAWStalls += opndReady - earliest
			earliest = opndReady
		}
		if earliest > t.cycle {
			t.advanceTo(earliest)
		}
		need, hi := issueNeed(si.fu), issueHigh(si.fu)
		f2 := t.free - need
		for f2&hi != hi {
			t.nextCycle()
			f2 = t.free - need
		}
		t.free = f2
		issue := t.cycle

		taken := false
		condBranch := false
		switch op {
		case isa.BEQ:
			condBranch = true
			taken = m.geti(in.Rs1) == m.geti(in.Rs2)
		case isa.BNE:
			condBranch = true
			taken = m.geti(in.Rs1) != m.geti(in.Rs2)
		case isa.BLT:
			condBranch = true
			taken = m.geti(in.Rs1) < m.geti(in.Rs2)
		case isa.BGE:
			condBranch = true
			taken = m.geti(in.Rs1) >= m.geti(in.Rs2)
		case isa.JMP:
			taken = true
			next = in.Target
		case isa.CALL:
			taken = true
			m.seti(isa.RRA, pc+1)
			next = in.Target
		case isa.RET:
			taken = true
			next = m.geti(isa.RRA)
		case isa.JR:
			taken = true
			next = m.geti(in.Rs1)
		case isa.HALT:
			m.Halted = true
		default:
			return 0, t.blockFault(m, b, j, fmt.Errorf("cpu: pc %d: invalid opcode %v", pc, op))
		}
		if condBranch && taken {
			next = in.Target
		}

		if op == isa.CALL {
			// CALL implicitly defines RRA.
			if ready := issue + uint64(si.lat); t.regReady[isa.RRA] < ready {
				t.regReady[isa.RRA] = ready
			}
		}

		if op != isa.HALT {
			redirect := false
			switch {
			case condBranch:
				t.Stats.CondBranches++
				if !t.pred.PredictCond(pc, taken) {
					redirect = true
				} else if taken && !t.pred.LookupBTB(pc, next) {
					redirect = true
				}
			case op == isa.JMP:
				if !t.pred.LookupBTB(pc, next) {
					redirect = true
				}
			case op == isa.CALL:
				t.pred.PushRAS(pc + 1)
				if !t.pred.LookupBTB(pc, next) {
					redirect = true
				}
			case op == isa.RET:
				if !t.pred.PopRAS(next) {
					redirect = true
				}
			case op == isa.JR:
				if !t.pred.LookupBTB(pc, next) {
					redirect = true
				}
			}
			if redirect {
				if c := issue + uint64(t.cfg.BranchResolution); t.fetchReady < c {
					t.fetchReady = c
				}
			} else if taken {
				t.Stats.FetchBreaks++
				if t.fetchReady < issue+1 {
					t.fetchReady = issue + 1
				}
			}
		}
	}

	// Batched per-block accounting: the per-instruction counters are not
	// observable mid-block, so one add per block is equivalent.
	t.Stats.Insts += uint64(n)
	t.Stats.PackageInsts += b.pkgN
	m.InstCount += uint64(n)
	m.PC = next
	return next, nil
}
