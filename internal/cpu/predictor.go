package cpu

// Predictor bundles the front-end prediction structures of the evaluation
// machine: a gshare conditional-branch predictor, a branch target buffer
// for taken control transfers, and a return address stack.
type Predictor struct {
	historyBits uint
	history     uint64
	pht         []uint8 // 2-bit saturating counters

	btb     []int64 // direct-mapped: tag<<32 | target is overkill; store pc and target
	btbPC   []int64
	btbSize int
	btbMask uint64 // btbSize-1; entry count is rounded to a power of two

	ras    []int64
	rasTop int

	CondSeen       uint64
	CondMispredict uint64
	BTBMisses      uint64
	RASMisses      uint64
}

// NewPredictor builds a predictor with a 2^historyBits-entry PHT, the given
// BTB entry count (rounded up to a power of two so the index is a mask
// rather than a division) and RAS depth.
func NewPredictor(historyBits uint, btbEntries, rasDepth int) *Predictor {
	pow2 := 1
	for pow2 < btbEntries {
		pow2 <<= 1
	}
	btbEntries = pow2
	pow2 = 1
	for pow2 < rasDepth {
		pow2 <<= 1
	}
	rasDepth = pow2
	p := &Predictor{
		historyBits: historyBits,
		pht:         make([]uint8, 1<<historyBits),
		btb:         make([]int64, btbEntries),
		btbPC:       make([]int64, btbEntries),
		btbSize:     btbEntries,
		btbMask:     uint64(btbEntries - 1),
		ras:         make([]int64, rasDepth),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not taken
	}
	for i := range p.btbPC {
		p.btbPC[i] = -1
	}
	return p
}

func (p *Predictor) phtIndex(pc int64) int {
	return int((uint64(pc) ^ p.history) & (1<<p.historyBits - 1))
}

// PredictCond predicts the direction of the conditional branch at pc, then
// updates predictor state with the actual outcome and reports whether the
// prediction was correct.
func (p *Predictor) PredictCond(pc int64, actual bool) bool {
	p.CondSeen++
	idx := p.phtIndex(pc)
	pred := p.pht[idx] >= 2
	if actual {
		if p.pht[idx] < 3 {
			p.pht[idx]++
		}
	} else if p.pht[idx] > 0 {
		p.pht[idx]--
	}
	p.history = (p.history<<1 | b2u(actual)) & (1<<p.historyBits - 1)
	if pred != actual {
		p.CondMispredict++
		return false
	}
	return true
}

// LookupBTB checks whether the taken control transfer at pc has its target
// cached, updating the entry, and reports a hit. A BTB miss on a taken
// transfer costs a fetch redirect in the timing model.
func (p *Predictor) LookupBTB(pc, target int64) bool {
	i := int(uint64(pc) & p.btbMask)
	hit := p.btbPC[i] == pc && p.btb[i] == target
	p.btbPC[i] = pc
	p.btb[i] = target
	if !hit {
		p.BTBMisses++
	}
	return hit
}

// PushRAS records a call's return address.
func (p *Predictor) PushRAS(ret int64) {
	p.ras[p.rasTop&(len(p.ras)-1)] = ret
	p.rasTop++
}

// PopRAS predicts a return target and reports whether it matched actual.
func (p *Predictor) PopRAS(actual int64) bool {
	if p.rasTop == 0 {
		p.RASMisses++
		return false
	}
	p.rasTop--
	if p.ras[p.rasTop&(len(p.ras)-1)] != actual {
		p.RASMisses++
		return false
	}
	return true
}

// MispredictRate returns conditional mispredictions per conditional branch.
func (p *Predictor) MispredictRate() float64 {
	if p.CondSeen == 0 {
		return 0
	}
	return float64(p.CondMispredict) / float64(p.CondSeen)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
