package cpu

import (
	"fmt"

	"repro/internal/prog"
)

// Memory is a sparse, word-granular memory. Addresses are byte addresses
// but all accesses are 8-byte aligned words, matching the VPIR load/store
// instructions.
//
// Layout-aware fast paths back the two regions every program hammers:
// the data segment (growing up from prog.DataBase) and the stack (growing
// down from prog.StackBase) live in dense slices indexed by a subtraction,
// so the common case never touches the page map. Everything else falls
// back to 64 KB pages with a one-entry cache of the last page hit.
type Memory struct {
	data  []int64 // words at [DataBase, DataBase+len(data)*8)
	stack []int64 // words at [StackBase-len(stack)*8, StackBase); stack[i] is word StackBase/8-1-i

	pages     map[int64][]int64
	lastPage  int64   // key of lastSlice in pages, or -1
	lastSlice []int64 // one-entry page cache

	// noFast forces every access through the paged path; the equivalence
	// test uses it to prove the dense fast paths retire identical state.
	noFast bool
}

// pageWords is the number of 64-bit words per page (64 KB pages).
const (
	pageWords = 8192
	pageShift = 13 // log2(pageWords)
	pageMask  = pageWords - 1

	dataBaseWord  = prog.DataBase >> 3
	stackBaseWord = prog.StackBase >> 3

	// maxDenseDataWords caps the dense data segment at 32 MB; stores past
	// the cap (sparse far-heap traffic) fall back to pages.
	maxDenseDataWords = 1 << 22
	// maxDenseStackWords caps the dense stack at 8 MB of depth.
	maxDenseStackWords = 1 << 20
)

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64][]int64), lastPage: -1}
}

// NewMemorySized returns an empty memory with the dense data segment
// pre-materialized for dataWords words, so a program's data initialization
// and steady-state accesses never grow mid-run.
func NewMemorySized(dataWords int) *Memory {
	m := NewMemory()
	if dataWords > 0 {
		if dataWords > maxDenseDataWords {
			dataWords = maxDenseDataWords
		}
		m.data = make([]int64, dataWords)
	}
	return m
}

func checkAddr(addr int64) error {
	if addr&7 != 0 {
		return fmt.Errorf("cpu: unaligned access at %#x", addr)
	}
	return fmt.Errorf("cpu: negative address %#x", addr)
}

// growData extends the dense data segment to cover word index d (relative
// to DataBase), growing geometrically to amortize.
func (m *Memory) growData(d int64) {
	n := int64(cap(m.data))
	if n < 1024 {
		n = 1024
	}
	for n <= d {
		n *= 2
	}
	if n > maxDenseDataWords {
		n = maxDenseDataWords
	}
	nd := make([]int64, n)
	copy(nd, m.data)
	m.data = nd
}

// growStack extends the dense stack to depth d words below StackBase.
func (m *Memory) growStack(d int64) {
	n := int64(cap(m.stack))
	if n < 1024 {
		n = 1024
	}
	for n < d {
		n *= 2
	}
	if n > maxDenseStackWords {
		n = maxDenseStackWords
	}
	ns := make([]int64, n)
	copy(ns, m.stack)
	m.stack = ns
}

// Load reads the word at addr.
func (m *Memory) Load(addr int64) (int64, error) {
	if addr&7 != 0 || addr < 0 {
		return 0, checkAddr(addr)
	}
	w := addr >> 3
	if !m.noFast {
		if d := w - dataBaseWord; uint64(d) < uint64(len(m.data)) {
			return m.data[d], nil
		}
		if d := stackBaseWord - 1 - w; uint64(d) < uint64(len(m.stack)) {
			return m.stack[d], nil
		}
		// Unwritten words in the dense windows read as zero without
		// materializing anything.
		if w >= dataBaseWord && w < dataBaseWord+maxDenseDataWords {
			return 0, nil
		}
		if w < stackBaseWord && w >= stackBaseWord-maxDenseStackWords {
			return 0, nil
		}
	}
	page := w >> pageShift
	if page == m.lastPage {
		return m.lastSlice[w&pageMask], nil
	}
	p, ok := m.pages[page]
	if !ok {
		return 0, nil
	}
	m.lastPage = page
	m.lastSlice = p
	return p[w&pageMask], nil
}

// Store writes the word at addr.
func (m *Memory) Store(addr, val int64) error {
	if addr&7 != 0 || addr < 0 {
		return checkAddr(addr)
	}
	w := addr >> 3
	if !m.noFast {
		if d := w - dataBaseWord; uint64(d) < uint64(len(m.data)) {
			m.data[d] = val
			return nil
		}
		if d := stackBaseWord - 1 - w; uint64(d) < uint64(len(m.stack)) {
			m.stack[d] = val
			return nil
		}
		if d := w - dataBaseWord; d >= 0 && d < maxDenseDataWords {
			m.growData(d)
			m.data[d] = val
			return nil
		}
		if d := stackBaseWord - w; d > 0 && d <= maxDenseStackWords {
			m.growStack(d)
			m.stack[d-1] = val
			return nil
		}
	}
	page := w >> pageShift
	var p []int64
	if page == m.lastPage {
		p = m.lastSlice
	} else if p = m.pages[page]; p == nil {
		p = make([]int64, pageWords)
		m.pages[page] = p
	}
	m.lastPage = page
	m.lastSlice = p
	p[w&pageMask] = val
	return nil
}

// Snapshot copies the contents of the byte range [start, start+words*8) as
// words. Unwritten locations read as zero.
func (m *Memory) Snapshot(start int64, words int) ([]int64, error) {
	out := make([]int64, words)
	for i := range out {
		v, err := m.Load(start + int64(i)*8)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// PagesTouched reports how many backing allocations have been materialized:
// sparse pages plus the dense data and stack segments (one each when
// present).
func (m *Memory) PagesTouched() int {
	n := len(m.pages)
	if len(m.data) > 0 {
		n++
	}
	if len(m.stack) > 0 {
		n++
	}
	return n
}
