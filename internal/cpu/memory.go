package cpu

import "fmt"

// Memory is a sparse, paged, word-granular memory. Addresses are byte
// addresses but all accesses are 8-byte aligned words, matching the VPIR
// load/store instructions.
type Memory struct {
	pages map[int64][]int64
}

// pageWords is the number of 64-bit words per page (64 KB pages).
const pageWords = 8192

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[int64][]int64)}
}

func splitAddr(addr int64) (page int64, idx int64, err error) {
	if addr&7 != 0 {
		return 0, 0, fmt.Errorf("cpu: unaligned access at %#x", addr)
	}
	if addr < 0 {
		return 0, 0, fmt.Errorf("cpu: negative address %#x", addr)
	}
	w := addr >> 3
	return w / pageWords, w % pageWords, nil
}

// Load reads the word at addr.
func (m *Memory) Load(addr int64) (int64, error) {
	page, idx, err := splitAddr(addr)
	if err != nil {
		return 0, err
	}
	p, ok := m.pages[page]
	if !ok {
		return 0, nil
	}
	return p[idx], nil
}

// Store writes the word at addr.
func (m *Memory) Store(addr, val int64) error {
	page, idx, err := splitAddr(addr)
	if err != nil {
		return err
	}
	p, ok := m.pages[page]
	if !ok {
		p = make([]int64, pageWords)
		m.pages[page] = p
	}
	p[idx] = val
	return nil
}

// Snapshot copies the contents of the byte range [start, start+words*8) as
// words. Unwritten locations read as zero.
func (m *Memory) Snapshot(start int64, words int) ([]int64, error) {
	out := make([]int64, words)
	for i := range out {
		v, err := m.Load(start + int64(i)*8)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// PagesTouched reports how many pages have been materialized.
func (m *Memory) PagesTouched() int { return len(m.pages) }
