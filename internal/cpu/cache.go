package cpu

// Cache is a set-associative cache model with true-LRU replacement. It
// tracks hits and misses only — the timing model converts misses into
// latency. Addresses are byte addresses.
type Cache struct {
	name     string
	lineBits uint
	sets     int
	setMask  int64 // sets-1; sets is always a power of two
	ways     int

	// Tag and LRU stamp are interleaved per way so a lookup touches one
	// hardware cache line per set instead of two parallel arrays. LRU
	// stamps are 64-bit: a 32-bit tick wraps after ~4.3 B accesses,
	// after which stamp comparisons pick the wrong victim.
	entries []cacheWay // sets*ways entries
	tick    uint64

	// lastLine/lastWay remember the most recently touched line and its
	// way index in entries, so back-to-back accesses to one line (stack
	// traffic, sequential fetch) skip the tag scan. The MRU line can
	// never be the LRU victim of another set's insertion (ways >= 2), and
	// a single-way insertion updates the pair itself, so the shortcut is
	// exactly the scan's hit path: same counters, same stamp.
	lastLine int64
	lastWay  int32

	Accesses uint64
	Misses   uint64
}

type cacheWay struct {
	tag int64 // -1 = invalid
	lru uint64
}

// lineShift is log2 of the (fixed) 64-byte line size, shared with the
// hot paths that pre-compute line numbers without a field load.
const lineShift = 6

// NewCache builds a cache of the given total size with 64-byte lines. The
// set count is rounded up to a power of two so the hot-path set index is a
// mask instead of an int64 division; sizeBytes should be a multiple of
// ways*64 (and a power-of-two total, as real cache geometries are).
func NewCache(name string, sizeBytes, ways int) *Cache {
	const lineBytes = 1 << lineShift
	sets := sizeBytes / (lineBytes * ways)
	if sets < 1 {
		sets = 1
	}
	// Round up to the next power of two (no-op for the Table 2 geometries,
	// which are already powers of two).
	pow2 := 1
	for pow2 < sets {
		pow2 <<= 1
	}
	sets = pow2
	c := &Cache{
		name:     name,
		lineBits: lineShift,
		sets:     sets,
		setMask:  int64(sets - 1),
		ways:     ways,
		entries:  make([]cacheWay, sets*ways),
	}
	for i := range c.entries {
		c.entries[i].tag = -1
	}
	c.lastLine = -1
	return c
}

// Access looks up addr, inserting the line on a miss. It reports a hit.
// The MRU shortcut handles repeated accesses to the last-touched line
// without scanning; everything else takes the full lookup.
func (c *Cache) Access(addr int64) bool {
	line := addr >> c.lineBits
	c.Accesses++
	c.tick++
	if line == c.lastLine {
		c.entries[c.lastWay].lru = c.tick
		return true
	}
	// Full set lookup: the tag scan runs bare first — hits (the
	// overwhelmingly common case) skip the LRU victim bookkeeping
	// entirely; the victim scan picks the same first-oldest way the
	// fused scan did.
	set := int(line & c.setMask)
	base := set * c.ways
	ws := c.entries[base : base+c.ways]
	for w := range ws {
		if ws[w].tag == line {
			ws[w].lru = c.tick
			// Move the hit way to the front of the set so hot lines are
			// found on the first probe next time. Physical way order is
			// invisible to the model: stamps are unique (tick is
			// monotonic), so both the tag scan and the strict-minimum
			// victim scan are position-independent; the only stamp ties
			// are between identical invalid entries.
			if w != 0 {
				ws[0], ws[w] = ws[w], ws[0]
			}
			c.lastLine = line
			c.lastWay = int32(base)
			return true
		}
	}
	victim := 0
	oldest := ws[0].lru
	for w := 1; w < len(ws); w++ {
		if ws[w].lru < oldest {
			oldest = ws[w].lru
			victim = w
		}
	}
	c.Misses++
	ws[victim].tag = line
	ws[victim].lru = c.tick
	c.lastLine = line
	c.lastWay = int32(base + victim)
	return false
}

// MissRate returns misses/accesses, or 0 if the cache was never accessed.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.entries {
		c.entries[i] = cacheWay{tag: -1}
	}
	c.lastLine = -1
	c.lastWay = 0
	c.tick = 0
	c.Accesses = 0
	c.Misses = 0
}
