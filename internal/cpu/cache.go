package cpu

// Cache is a set-associative cache model with true-LRU replacement. It
// tracks hits and misses only — the timing model converts misses into
// latency. Addresses are byte addresses.
type Cache struct {
	name     string
	lineBits uint
	sets     int
	ways     int

	tags []int64  // sets*ways entries, -1 = invalid
	lru  []uint32 // per-entry LRU stamps
	tick uint32

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size with 64-byte lines.
// sizeBytes must be a multiple of ways*64.
func NewCache(name string, sizeBytes, ways int) *Cache {
	const lineBytes = 64
	sets := sizeBytes / (lineBytes * ways)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{
		name:     name,
		lineBits: 6,
		sets:     sets,
		ways:     ways,
		tags:     make([]int64, sets*ways),
		lru:      make([]uint32, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Access looks up addr, inserting the line on a miss. It reports a hit.
func (c *Cache) Access(addr int64) bool {
	c.Accesses++
	c.tick++
	line := addr >> c.lineBits
	set := int(line % int64(c.sets))
	base := set * c.ways
	victim := base
	oldest := c.lru[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.lru[i] = c.tick
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.lru[victim] = c.tick
	return false
}

// MissRate returns misses/accesses, or 0 if the cache was never accessed.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.lru[i] = 0
	}
	c.tick = 0
	c.Accesses = 0
	c.Misses = 0
}
