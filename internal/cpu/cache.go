package cpu

// Cache is a set-associative cache model with true-LRU replacement. It
// tracks hits and misses only — the timing model converts misses into
// latency. Addresses are byte addresses.
type Cache struct {
	name     string
	lineBits uint
	sets     int
	setMask  int64 // sets-1; sets is always a power of two
	ways     int

	tags []int64 // sets*ways entries, -1 = invalid
	// LRU stamps are 64-bit: a 32-bit tick wraps after ~4.3 B accesses,
	// after which stamp comparisons pick the wrong victim.
	lru  []uint64
	tick uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size with 64-byte lines. The
// set count is rounded up to a power of two so the hot-path set index is a
// mask instead of an int64 division; sizeBytes should be a multiple of
// ways*64 (and a power-of-two total, as real cache geometries are).
func NewCache(name string, sizeBytes, ways int) *Cache {
	const lineBytes = 64
	sets := sizeBytes / (lineBytes * ways)
	if sets < 1 {
		sets = 1
	}
	// Round up to the next power of two (no-op for the Table 2 geometries,
	// which are already powers of two).
	pow2 := 1
	for pow2 < sets {
		pow2 <<= 1
	}
	sets = pow2
	c := &Cache{
		name:     name,
		lineBits: 6,
		sets:     sets,
		setMask:  int64(sets - 1),
		ways:     ways,
		tags:     make([]int64, sets*ways),
		lru:      make([]uint64, sets*ways),
	}
	for i := range c.tags {
		c.tags[i] = -1
	}
	return c
}

// Access looks up addr, inserting the line on a miss. It reports a hit.
func (c *Cache) Access(addr int64) bool {
	c.Accesses++
	c.tick++
	line := addr >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.ways
	victim := base
	oldest := c.lru[base]
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.lru[i] = c.tick
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.Misses++
	c.tags[victim] = line
	c.lru[victim] = c.tick
	return false
}

// MissRate returns misses/accesses, or 0 if the cache was never accessed.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = -1
		c.lru[i] = 0
	}
	c.tick = 0
	c.Accesses = 0
	c.Misses = 0
}
