package cpu

import (
	"testing"

	"repro/internal/prog"
	"repro/internal/workload"
)

// benchImage builds a representative workload image (mcf input A at
// scale 1) for the interpreter microbenchmarks.
func benchImage(b *testing.B) *prog.Image {
	b.Helper()
	bench, err := workload.ByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	img, err := bench.Build(in).Linearize()
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// BenchmarkMachineStep measures the functional interpreter alone — the
// fused Run loop with no observer — in retired instructions per second.
func BenchmarkMachineStep(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		m := NewMachine(img)
		if err := m.Run(0, nil); err != nil {
			b.Fatal(err)
		}
		total += m.InstCount
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkMachineRunTimed measures the fused functional+timing loop, the
// configuration every suite evaluation runs in.
func BenchmarkMachineRunTimed(b *testing.B) {
	img := benchImage(b)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		stats, _, err := RunTimed(DefaultConfig(), img, 0)
		if err != nil {
			b.Fatal(err)
		}
		total += stats.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkTimedBlock measures the block-structured timed path with a
// shared block cache — the steady state of repeated suite evaluations:
// every dispatch after the first run is a hit or a chained transition.
func BenchmarkTimedBlock(b *testing.B) {
	img := benchImage(b)
	bc := NewBlockCache(img)
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		stats, _, err := RunTimedCached(DefaultConfig(), img, 0, bc)
		if err != nil {
			b.Fatal(err)
		}
		total += stats.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
	b.ReportMetric(bc.Stats.HitRate(), "hit-rate")
}

// BenchmarkTimedNoCache measures the legacy instruction-at-a-time loop
// (cache disabled) — the baseline the block path is gated against.
func BenchmarkTimedNoCache(b *testing.B) {
	img := benchImage(b)
	cfg := DefaultConfig()
	cfg.DisableBlockCache = true
	b.ResetTimer()
	var total uint64
	for i := 0; i < b.N; i++ {
		stats, _, err := RunTimed(cfg, img, 0)
		if err != nil {
			b.Fatal(err)
		}
		total += stats.Insts
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkMemoryDense exercises the dense data-segment fast path with a
// strided read-modify-write sweep.
func BenchmarkMemoryDense(b *testing.B) {
	m := NewMemorySized(1 << 12)
	for i := 0; i < b.N; i++ {
		addr := prog.DataBase + int64(i%4096)*8
		v, _ := m.Load(addr)
		_ = m.Store(addr, v+1)
	}
}

// BenchmarkMemoryStack exercises the dense stack fast path with the
// push/pop locality pattern spill code produces.
func BenchmarkMemoryStack(b *testing.B) {
	m := NewMemory()
	for i := 0; i < b.N; i++ {
		addr := prog.StackBase - int64(i%256+1)*8
		v, _ := m.Load(addr)
		_ = m.Store(addr, v+1)
	}
}

// BenchmarkMemoryPaged exercises the paged fallback (scratch-region
// addresses outside both dense windows), including the one-entry page
// cache on its repeated-page hits.
func BenchmarkMemoryPaged(b *testing.B) {
	m := NewMemory()
	for i := 0; i < b.N; i++ {
		addr := prog.ScratchBase + int64(i%4096)*8
		v, _ := m.Load(addr)
		_ = m.Store(addr, v+1)
	}
}

// BenchmarkCacheAccess measures the set-associative lookup with the
// power-of-two mask index on a mixed hit/miss stream.
func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache("bench", 64<<10, 4)
	for i := 0; i < b.N; i++ {
		c.Access(int64(i%100_000) * 64)
	}
}

// BenchmarkTimingObserve isolates the cycle-accounting model by replaying
// a canned retirement stream through Observe.
func BenchmarkTimingObserve(b *testing.B) {
	img := benchImage(b)
	// Record a window of the real retirement stream once.
	var stream []StepInfo
	m := NewMachine(img)
	if err := m.Run(200_000, func(si *StepInfo) {
		if len(stream) < 100_000 {
			stream = append(stream, *si)
		}
	}); err != nil && len(stream) < 100_000 {
		b.Fatal(err)
	}
	b.ResetTimer()
	t := NewTiming(DefaultConfig(), img)
	for i := 0; i < b.N; i++ {
		t.Observe(&stream[i%len(stream)])
	}
}
