package cpu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
	"repro/internal/workload"
)

// newPagedMachine builds a machine whose memory is forced through the
// legacy paged path for every access, bypassing the dense data/stack fast
// paths and the one-entry page cache's dense windows.
func newPagedMachine(img *prog.Image) *Machine {
	m := &Machine{Img: img, Mem: NewMemory(), PC: img.Entry}
	m.Mem.noFast = true
	for i, v := range img.Prog.Data {
		if err := m.Mem.Store(prog.DataBase+int64(i)*8, v); err != nil {
			panic(err)
		}
	}
	m.IntRegs[isa.RSP] = prog.StackBase
	m.dataHash = fnv64offset
	return m
}

// TestMemoryFastPathEquivalence proves the dense fast-path memory retires
// the same architectural state as the paged implementation: every workload
// runs to completion under both and must agree on registers, instruction
// count, and the data-segment store hash.
func TestMemoryFastPathEquivalence(t *testing.T) {
	for _, bench := range workload.Ordered() {
		in := bench.Inputs[0]
		in.Scale = 1
		img, err := bench.Build(in).Linearize()
		if err != nil {
			t.Fatalf("%s: %v", bench.Name, err)
		}

		fast := NewMachine(img)
		if err := fast.Run(0, nil); err != nil {
			t.Fatalf("%s: fast run: %v", bench.Name, err)
		}
		paged := newPagedMachine(img)
		if err := paged.Run(0, nil); err != nil {
			t.Fatalf("%s: paged run: %v", bench.Name, err)
		}

		if fast.InstCount != paged.InstCount {
			t.Errorf("%s: InstCount %d vs %d", bench.Name, fast.InstCount, paged.InstCount)
		}
		if fast.IntRegs != paged.IntRegs {
			t.Errorf("%s: integer register files disagree", bench.Name)
		}
		if fast.FPRegs != paged.FPRegs {
			t.Errorf("%s: FP register files disagree", bench.Name)
		}
		fh, fn := fast.DataHash()
		ph, pn := paged.DataHash()
		if fh != ph || fn != pn {
			t.Errorf("%s: data hash %#x/%d vs %#x/%d", bench.Name, fh, fn, ph, pn)
		}
	}
}

// TestMemoryFastPathRandomAccess drives both implementations with an
// identical pseudo-random mix of loads and stores across the data, stack,
// scratch and far-sparse regions and checks every observed value.
func TestMemoryFastPathRandomAccess(t *testing.T) {
	fast := NewMemory()
	paged := NewMemory()
	paged.noFast = true

	regions := []int64{
		prog.DataBase,                       // dense data window
		prog.DataBase + maxDenseDataWords*8, // just past the dense cap
		prog.StackBase - 8,                  // dense stack window (grows down)
		prog.ScratchBase,                    // paged scratch
		1 << 40,                             // far sparse page
		0,                                   // low memory, below DataBase
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 200_000; i++ {
		r := regions[next()%uint64(len(regions))]
		off := int64(next()%8192) * 8
		addr := r + off
		if r == prog.StackBase-8 {
			addr = r - off // stack accesses go downward
		}
		if next()&1 == 0 {
			val := int64(next())
			ef := fast.Store(addr, val)
			ep := paged.Store(addr, val)
			if (ef == nil) != (ep == nil) {
				t.Fatalf("store %#x: error mismatch %v vs %v", addr, ef, ep)
			}
		} else {
			vf, ef := fast.Load(addr)
			vp, ep := paged.Load(addr)
			if vf != vp || (ef == nil) != (ep == nil) {
				t.Fatalf("load %#x: %d/%v vs %d/%v", addr, vf, ef, vp, ep)
			}
		}
	}
}
