package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Image {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m := NewMachine(mustAssemble(t, src))
	if err := m.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestALUOps(t *testing.T) {
	m := run(t, `
.func main
.main
  li r1, 6
  li r2, 4
  add r3, r1, r2
  sub r4, r1, r2
  mul r5, r1, r2
  div r6, r1, r2
  rem r7, r1, r2
  and r8, r1, r2
  or  r9, r1, r2
  xor r10, r1, r2
  shl r11, r1, r2
  shr r12, r1, r2
  slt r13, r1, r2
  slt r14, r2, r1
  seq r15, r1, r1
  halt
`)
	want := map[int]int64{3: 10, 4: 2, 5: 24, 6: 1, 7: 2, 8: 4, 9: 6, 10: 2,
		11: 96, 12: 0, 13: 0, 14: 1, 15: 1}
	for r, v := range want {
		if m.IntRegs[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.IntRegs[r], v)
		}
	}
}

func TestImmediateOps(t *testing.T) {
	m := run(t, `
.func main
.main
  li r1, 10
  addi r2, r1, -3
  muli r3, r1, 5
  andi r4, r1, 6
  ori r5, r1, 1
  xori r6, r1, 2
  shli r7, r1, 2
  shri r8, r1, 1
  slti r9, r1, 11
  halt
`)
	want := map[int]int64{2: 7, 3: 50, 4: 2, 5: 11, 6: 8, 7: 40, 8: 5, 9: 1}
	for r, v := range want {
		if m.IntRegs[r] != v {
			t.Errorf("r%d = %d, want %d", r, m.IntRegs[r], v)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	m := run(t, `
.func main
.main
  li r1, 5
  li r2, 0
  div r3, r1, r2
  rem r4, r1, r2
  halt
`)
	if m.IntRegs[3] != 0 || m.IntRegs[4] != 0 {
		t.Errorf("div/rem by zero = %d/%d, want 0/0", m.IntRegs[3], m.IntRegs[4])
	}
}

func TestR0IsZero(t *testing.T) {
	m := run(t, `
.func main
.main
  li r0, 77
  add r1, r0, r0
  halt
`)
	if m.IntRegs[0] != 0 || m.IntRegs[1] != 0 {
		t.Error("r0 should stay zero")
	}
}

func TestMemoryAndData(t *testing.T) {
	m := run(t, `
.data 11 22 33
.func main
.main
  li r1, 1048576
  ld r2, 0(r1)
  ld r3, 8(r1)
  ld r4, 16(r1)
  add r5, r2, r3
  st r5, 24(r1)
  ld r6, 24(r1)
  halt
`)
	if m.IntRegs[6] != 33 {
		t.Errorf("stored/loaded = %d, want 33", m.IntRegs[6])
	}
	if m.IntRegs[4] != 33 {
		t.Errorf("data[2] = %d, want 33", m.IntRegs[4])
	}
	h, n := m.DataHash()
	if n != 1 || h == fnv64offset {
		t.Errorf("data hash not updated: %d stores", n)
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
.func main
.main
  li r1, 7
  li r2, 2
  fcvtif f1, r1
  fcvtif f2, r2
  fadd f3, f1, f2
  fsub f4, f1, f2
  fmul f5, f1, f2
  fdiv f6, f1, f2
  fslt r3, f2, f1
  fcvtfi r4, f6
  li r10, 1048576
  fst f5, 0(r10)
  fld f7, 0(r10)
  fcvtfi r5, f7
  halt
`)
	if got := m.FPRegs[3-0]; got != 9 { // f3
		t.Errorf("f3 = %v, want 9", got)
	}
	if m.IntRegs[3] != 1 {
		t.Errorf("fslt = %d, want 1", m.IntRegs[3])
	}
	if m.IntRegs[4] != 3 { // 7/2 = 3.5 truncated
		t.Errorf("fcvtfi(3.5) = %d, want 3", m.IntRegs[4])
	}
	if m.IntRegs[5] != 14 {
		t.Errorf("fst/fld round trip = %d, want 14", m.IntRegs[5])
	}
}

func TestFDivByZero(t *testing.T) {
	m := run(t, `
.func main
.main
  li r1, 3
  fcvtif f1, r1
  fdiv f2, f1, f0
  fcvtfi r2, f2
  halt
`)
	if m.IntRegs[2] != 0 {
		t.Errorf("fdiv by zero = %d, want 0", m.IntRegs[2])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	m := run(t, `
.func main
.main
  li r1, 0    ; i
  li r2, 10   ; n
  li r3, 0    ; sum
loop:
  bge r1, r2, done
  add r3, r3, r1
  addi r1, r1, 1
  jmp loop
done:
  halt
`)
	if m.IntRegs[3] != 45 {
		t.Errorf("sum = %d, want 45", m.IntRegs[3])
	}
}

func TestCallRetAndRA(t *testing.T) {
	m := run(t, `
.func double
  add r1, r1, r1
  ret
.func main
.main
  li r1, 21
  call double
  halt
`)
	if m.IntRegs[1] != 42 {
		t.Errorf("r1 = %d, want 42", m.IntRegs[1])
	}
}

func TestNestedCallsWithSpill(t *testing.T) {
	m := run(t, `
.func leaf
  addi r1, r1, 1
  ret
.func mid
  addi sp, sp, -8
  st ra, 0(sp)
  call leaf
  call leaf
  ld ra, 0(sp)
  addi sp, sp, 8
  ret
.func main
.main
  li r1, 0
  call mid
  call mid
  halt
`)
	if m.IntRegs[1] != 4 {
		t.Errorf("r1 = %d, want 4", m.IntRegs[1])
	}
}

func TestLAAndIndirectReturn(t *testing.T) {
	// LA materializes a code address into ra; ret then jumps there, the
	// pattern partial inlining uses.
	m := run(t, `
.func main
.main
  li r5, 1
  la ra, after
  jmp body
body:
  addi r5, r5, 10
  ret
after:
  addi r5, r5, 100
  halt
`)
	if m.IntRegs[5] != 111 {
		t.Errorf("r5 = %d, want 111", m.IntRegs[5])
	}
}

func TestHaltStops(t *testing.T) {
	m := run(t, ".func main\n.main\n  halt\n")
	if !m.Halted {
		t.Error("machine should halt")
	}
	if err := m.Step(nil); err == nil {
		t.Error("step on halted machine should fail")
	}
}

func TestRunLimit(t *testing.T) {
	img := mustAssemble(t, `
.func main
.main
loop:
  jmp loop
`)
	m := NewMachine(img)
	if err := m.Run(100, nil); err == nil {
		t.Error("infinite loop should hit the limit")
	}
	if m.InstCount != 100 {
		t.Errorf("InstCount = %d, want 100", m.InstCount)
	}
}

func TestUnalignedAccessFaults(t *testing.T) {
	img := mustAssemble(t, `
.func main
.main
  li r1, 3
  ld r2, 0(r1)
  halt
`)
	m := NewMachine(img)
	if err := m.Run(0, nil); err == nil {
		t.Error("unaligned load should fault")
	}
}

func TestStepInfo(t *testing.T) {
	img := mustAssemble(t, `
.func main
.main
  li r1, 1
  beq r1, r0, never
  st r1, -8(sp)
  halt
never:
  halt
`)
	m := NewMachine(img)
	var infos []StepInfo
	if err := m.Run(0, func(si *StepInfo) { infos = append(infos, *si) }); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("retired %d instructions, want 4", len(infos))
	}
	branch := infos[1]
	if branch.Inst.Op != isa.BEQ || branch.Taken {
		t.Errorf("branch info wrong: %+v", branch)
	}
	store := infos[2]
	if store.MemAddr != prog.StackBase-8 {
		t.Errorf("store MemAddr = %d", store.MemAddr)
	}
	if infos[0].MemAddr != -1 {
		t.Errorf("non-memory MemAddr = %d, want -1", infos[0].MemAddr)
	}
}

func TestDataHashIgnoresStack(t *testing.T) {
	m := run(t, `
.func main
.main
  li r1, 5
  st r1, -8(sp)
  halt
`)
	if _, n := m.DataHash(); n != 0 {
		t.Errorf("stack store counted in data hash: %d", n)
	}
}

const timingLoop = `
.func main
.main
  li r1, 0
  li r2, 2000
loop:
  bge r1, r2, done
  addi r1, r1, 1
  jmp loop
done:
  halt
`

func TestTimingBasics(t *testing.T) {
	img := mustAssemble(t, timingLoop)
	stats, m, err := RunTimed(DefaultConfig(), img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Insts != m.InstCount {
		t.Errorf("stats.Insts = %d, machine count %d", stats.Insts, m.InstCount)
	}
	if stats.Cycles == 0 || stats.Cycles > stats.Insts*20 {
		t.Errorf("cycles = %d looks wrong for %d insts", stats.Cycles, stats.Insts)
	}
	if stats.IPC() <= 0 || stats.IPC() > float64(DefaultConfig().IssueWidth) {
		t.Errorf("IPC = %v out of range", stats.IPC())
	}
	if stats.CondBranches != 2001 {
		t.Errorf("cond branches = %d, want 2001", stats.CondBranches)
	}
	// A tight loop should predict almost perfectly after warmup.
	if stats.CondMispredict > 30 {
		t.Errorf("mispredicts = %d, too many for a biased loop", stats.CondMispredict)
	}
}

func TestTimingDependentChainSlowerThanIndependent(t *testing.T) {
	dep := `
.func main
.main
  li r1, 1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  add r1, r1, r1
  halt
`
	indep := `
.func main
.main
  li r1, 1
  add r2, r1, r1
  add r3, r1, r1
  add r4, r1, r1
  add r5, r1, r1
  add r6, r1, r1
  add r7, r1, r1
  add r8, r1, r1
  add r9, r1, r1
  halt
`
	sDep, _, err := RunTimed(DefaultConfig(), mustAssemble(t, dep), 0)
	if err != nil {
		t.Fatal(err)
	}
	sInd, _, err := RunTimed(DefaultConfig(), mustAssemble(t, indep), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sInd.Cycles >= sDep.Cycles {
		t.Errorf("independent chain (%d cycles) should beat dependent chain (%d cycles)",
			sInd.Cycles, sDep.Cycles)
	}
}

func TestTimingLoadLatency(t *testing.T) {
	// A load-use chain should cost more than a pure ALU chain of the same
	// length because of the 3-cycle L1 latency and cold misses.
	loads := `
.data 8 16 24 32
.func main
.main
  li r1, 1048576
  ld r2, 0(r1)
  add r3, r2, r2
  halt
`
	s, _, err := RunTimed(DefaultConfig(), mustAssemble(t, loads), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.L1DAccesses == 0 {
		t.Error("no D-cache accesses recorded")
	}
	if s.L1DMisses == 0 {
		t.Error("cold load should miss")
	}
}

func TestTimingIssueWidthCap(t *testing.T) {
	// 20 independent ALU ops with 5 ALUs cannot finish in fewer than 4
	// issue cycles.
	src := ".func main\n.main\n  li r1, 1\n"
	for i := 0; i < 20; i++ {
		src += "  add r2, r1, r1\n"
	}
	src += "  halt\n"
	s, _, err := RunTimed(DefaultConfig(), mustAssemble(t, src), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cycles < 4 {
		t.Errorf("cycles = %d, ALU limit should force >= 4", s.Cycles)
	}
}

func TestCacheModel(t *testing.T) {
	c := NewCache("t", 64*4*2, 4) // 2 sets, 4 ways
	if hit := c.Access(0); hit {
		t.Error("first access should miss")
	}
	if hit := c.Access(0); !hit {
		t.Error("second access should hit")
	}
	// Fill set 0 (lines 0,2,4,6 map to set 0 with 2 sets).
	c.Access(2 * 64)
	c.Access(4 * 64)
	c.Access(6 * 64)
	c.Access(8 * 64) // evicts LRU (line 0)
	if hit := c.Access(0); hit {
		t.Error("line 0 should have been evicted")
	}
	if c.MissRate() <= 0 || c.MissRate() > 1 {
		t.Errorf("miss rate = %v", c.MissRate())
	}
	c.Reset()
	if c.Accesses != 0 || c.Misses != 0 {
		t.Error("reset did not clear stats")
	}
	if hit := c.Access(0); hit {
		t.Error("reset did not clear contents")
	}
}

func TestPredictorGshareLearnsPattern(t *testing.T) {
	p := NewPredictor(10, 1024, 32)
	// Alternating pattern is learnable with history.
	correct := 0
	for i := 0; i < 2000; i++ {
		if p.PredictCond(100, i%2 == 0) {
			correct++
		}
	}
	if correct < 1800 {
		t.Errorf("gshare learned alternating pattern only %d/2000", correct)
	}
}

func TestPredictorBTB(t *testing.T) {
	p := NewPredictor(10, 16, 32)
	if p.LookupBTB(5, 100) {
		t.Error("cold BTB should miss")
	}
	if !p.LookupBTB(5, 100) {
		t.Error("warm BTB should hit")
	}
	if p.LookupBTB(5, 200) {
		t.Error("changed target should miss")
	}
	if p.LookupBTB(5+16, 100) {
		t.Error("aliased entry should miss")
	}
}

func TestPredictorRAS(t *testing.T) {
	p := NewPredictor(10, 16, 4)
	p.PushRAS(10)
	p.PushRAS(20)
	if !p.PopRAS(20) || !p.PopRAS(10) {
		t.Error("RAS should predict LIFO returns")
	}
	if p.PopRAS(99) {
		t.Error("empty RAS should miss")
	}
	// Overflow wraps: deepest entries are lost.
	for i := 0; i < 6; i++ {
		p.PushRAS(int64(100 + i))
	}
	for i := 5; i >= 2; i-- {
		if !p.PopRAS(int64(100 + i)) {
			t.Errorf("RAS lost recent entry %d", 100+i)
		}
	}
}

func TestMemorySnapshotAndErrors(t *testing.T) {
	m := NewMemory()
	if err := m.Store(16, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Load(16); v != 7 {
		t.Error("store/load failed")
	}
	if v, _ := m.Load(1 << 40); v != 0 {
		t.Error("unwritten memory should read 0")
	}
	if _, err := m.Load(-8); err == nil {
		t.Error("negative address should fault")
	}
	if err := m.Store(3, 1); err == nil {
		t.Error("unaligned store should fault")
	}
	snap, err := m.Snapshot(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 || snap[1] != 7 {
		t.Errorf("snapshot = %v", snap)
	}
	if m.PagesTouched() == 0 {
		t.Error("pages touched should be > 0")
	}
}

func TestTimedMatchesFunctional(t *testing.T) {
	img := mustAssemble(t, timingLoop)
	mFunc := NewMachine(img)
	if err := mFunc.Run(0, nil); err != nil {
		t.Fatal(err)
	}
	_, mTimed, err := RunTimed(DefaultConfig(), img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mFunc.IntRegs != mTimed.IntRegs {
		t.Error("timed and functional runs disagree on final registers")
	}
	h1, n1 := mFunc.DataHash()
	h2, n2 := mTimed.DataHash()
	if h1 != h2 || n1 != n2 {
		t.Error("timed and functional runs disagree on data hash")
	}
}

func TestJRIndirectJump(t *testing.T) {
	// jr through a register loaded with la: the dynamic launch pattern.
	m := run(t, `
.func main
.main
  la r29, there
  jr r29
  halt          ; unreachable
there:
  li r5, 77
  halt
`)
	if m.IntRegs[5] != 77 {
		t.Errorf("r5 = %d, want 77 (jr did not reach target)", m.IntRegs[5])
	}
}

func TestJRTimingPredictsThroughBTB(t *testing.T) {
	// A jr with a stable target should mispredict once and then hit.
	img := mustAssemble(t, `
.func main
.main
  li r1, 0
  li r2, 300
  la r29, body
loop:
  jr r29
body:
  addi r1, r1, 1
  blt r1, r2, loop
  halt
`)
	stats, _, err := RunTimed(DefaultConfig(), img, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BTBMisses > 20 {
		t.Errorf("BTB misses = %d; a stable indirect target should be predictable", stats.BTBMisses)
	}
}
