package cpu

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/prog"
	"repro/internal/workload"
)

func timedPair(t *testing.T, img *prog.Image) (on, off TimingStats, bc *BlockCache) {
	t.Helper()
	offCfg := DefaultConfig()
	offCfg.DisableBlockCache = true
	sOff, mOff, err := RunTimed(offCfg, img, 0)
	if err != nil {
		t.Fatalf("legacy RunTimed: %v", err)
	}
	bc = NewBlockCache(img)
	sOn, mOn, err := RunTimedCached(DefaultConfig(), img, 0, bc)
	if err != nil {
		t.Fatalf("cached RunTimed: %v", err)
	}
	hOn, cOn := mOn.DataHash()
	hOff, cOff := mOff.DataHash()
	if hOn != hOff || cOn != cOff {
		t.Errorf("DataHash diverged: cache on (%#x, %d) vs off (%#x, %d)", hOn, cOn, hOff, cOff)
	}
	if mOn.InstCount != mOff.InstCount {
		t.Errorf("InstCount diverged: cache on %d vs off %d", mOn.InstCount, mOff.InstCount)
	}
	return sOn, sOff, bc
}

// TestBlockCacheEquivalence is the bit-identity gate for the block-
// structured timed path: for every workload input at scale 1, TimingStats
// and the functional data hash must match the legacy instruction-at-a-time
// loop exactly — not approximately.
func TestBlockCacheEquivalence(t *testing.T) {
	for _, bench := range workload.Ordered() {
		for _, in := range bench.Inputs {
			in.Scale = 1
			t.Run(bench.Name+"/"+in.Name, func(t *testing.T) {
				img, err := bench.Build(in).Linearize()
				if err != nil {
					t.Fatalf("linearize: %v", err)
				}
				sOn, sOff, bc := timedPair(t, img)
				if sOn != sOff {
					t.Errorf("TimingStats diverged:\n  cache on:  %+v\n  cache off: %+v", sOn, sOff)
				}
				if bc.Stats.Misses == 0 {
					t.Error("block cache decoded no blocks")
				}
				if bc.Stats.Hits+bc.Stats.Chained == 0 {
					t.Error("block cache never re-dispatched a decoded block")
				}
			})
		}
	}
}

// TestBlockCacheReuse runs the same image twice through one cache: the
// second run must decode nothing new and still be bit-identical.
func TestBlockCacheReuse(t *testing.T) {
	bench := workload.Ordered()[0]
	in := bench.Inputs[0]
	in.Scale = 1
	img, err := bench.Build(in).Linearize()
	if err != nil {
		t.Fatalf("linearize: %v", err)
	}
	bc := NewBlockCache(img)
	s1, _, err := RunTimedCached(DefaultConfig(), img, 0, bc)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	misses := bc.Stats.Misses
	s2, _, err := RunTimedCached(DefaultConfig(), img, 0, bc)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if s1 != s2 {
		t.Errorf("repeat run diverged:\n  first:  %+v\n  second: %+v", s1, s2)
	}
	if bc.Stats.Misses != misses {
		t.Errorf("second run decoded %d new blocks, want 0", bc.Stats.Misses-misses)
	}
	if bc.Stats.Evicted != 0 {
		t.Errorf("re-binding to the same image evicted %d blocks, want 0", bc.Stats.Evicted)
	}
}

// TestBlockCacheInvalidateOnInstall checks the invalidation rule: binding
// a cache to a different image evicts every decoded block, and the run on
// the new image is still bit-identical to the legacy path.
func TestBlockCacheInvalidateOnInstall(t *testing.T) {
	benches := workload.Ordered()
	inA := benches[0].Inputs[0]
	inA.Scale = 1
	imgA, err := benches[0].Build(inA).Linearize()
	if err != nil {
		t.Fatalf("linearize A: %v", err)
	}
	inB := benches[1].Inputs[0]
	inB.Scale = 1
	imgB, err := benches[1].Build(inB).Linearize()
	if err != nil {
		t.Fatalf("linearize B: %v", err)
	}

	bc := NewBlockCache(imgA)
	if _, _, err := RunTimedCached(DefaultConfig(), imgA, 0, bc); err != nil {
		t.Fatalf("run A: %v", err)
	}
	decoded := bc.Len()
	if decoded == 0 {
		t.Fatal("no blocks decoded for image A")
	}

	sOn, _, err := RunTimedCached(DefaultConfig(), imgB, 0, bc)
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if got := bc.Stats.Evicted; got != uint64(decoded) {
		t.Errorf("installing image B evicted %d blocks, want %d", got, decoded)
	}
	offCfg := DefaultConfig()
	offCfg.DisableBlockCache = true
	sOff, _, err := RunTimed(offCfg, imgB, 0)
	if err != nil {
		t.Fatalf("legacy run B: %v", err)
	}
	if sOn != sOff {
		t.Errorf("post-invalidation stats diverged:\n  cache on:  %+v\n  cache off: %+v", sOn, sOff)
	}
}

// TestBlockCacheConcurrentRuns exercises concurrent timed runs over one
// shared image, each with a private cache — the shape report.RunSuite
// produces under -j N. Run under -race, this asserts that neither decode
// nor dispatch mutates the shared image.
func TestBlockCacheConcurrentRuns(t *testing.T) {
	bench := workload.Ordered()[0]
	in := bench.Inputs[0]
	in.Scale = 1
	img, err := bench.Build(in).Linearize()
	if err != nil {
		t.Fatalf("linearize: %v", err)
	}
	const workers = 4
	var wg sync.WaitGroup
	stats := make([]TimingStats, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], _, errs[i] = RunTimedCached(DefaultConfig(), img, 0, NewBlockCache(img))
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if stats[i] != stats[0] {
			t.Errorf("worker %d stats diverged from worker 0", i)
		}
	}
}

// TestBlockCacheLimitFallsBack: limit > 0 must use the per-instruction
// loop so the limit is exact, and must keep the legacy error text.
func TestBlockCacheLimitFallsBack(t *testing.T) {
	bench := workload.Ordered()[0]
	in := bench.Inputs[0]
	in.Scale = 1
	img, err := bench.Build(in).Linearize()
	if err != nil {
		t.Fatalf("linearize: %v", err)
	}
	_, m, err := RunTimed(DefaultConfig(), img, 1000)
	if err == nil {
		t.Fatal("want instruction-limit error, got nil")
	}
	if !strings.Contains(err.Error(), "instruction limit 1000 reached") {
		t.Errorf("unexpected error text: %v", err)
	}
	if m.InstCount != 1000 {
		t.Errorf("limit run retired %d insts, want exactly 1000", m.InstCount)
	}
}

// TestBlockCacheFaultState: a faulting run must park PC on the faulting
// instruction and count only retired instructions, matching the legacy
// loop's partial state.
func TestBlockCacheFaultState(t *testing.T) {
	src := `
.func main
.main
  li r1, 3
  ld r2, 0(r1)
  halt
`
	img := mustAssemble(t, src)
	offCfg := DefaultConfig()
	offCfg.DisableBlockCache = true
	_, mOff, errOff := RunTimed(offCfg, img, 0)
	_, mOn, errOn := RunTimed(DefaultConfig(), img, 0)
	if errOff == nil || errOn == nil {
		t.Fatalf("want faults on both paths, got off=%v on=%v", errOff, errOn)
	}
	if errOn.Error() != errOff.Error() {
		t.Errorf("fault text diverged:\n  cache on:  %v\n  cache off: %v", errOn, errOff)
	}
	if mOn.PC != mOff.PC || mOn.InstCount != mOff.InstCount {
		t.Errorf("fault state diverged: cache on (pc %d, %d insts) vs off (pc %d, %d insts)",
			mOn.PC, mOn.InstCount, mOff.PC, mOff.InstCount)
	}
}
