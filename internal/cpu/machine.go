// Package cpu simulates the paper's evaluation machine: a functional VPIR
// emulator plus a cycle-level timing model of a 10-stage, 8-issue in-order
// EPIC pipeline with caches and branch prediction (Table 2 of the paper).
package cpu

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/prog"
)

// StepInfo describes one retired instruction for observers (the Hot Spot
// Detector, the timing model, coverage accounting).
type StepInfo struct {
	PC     int64
	Inst   isa.Inst
	NextPC int64
	// Taken is meaningful for control instructions: whether the
	// conditional branch was taken (always true for JMP/CALL/RET).
	Taken bool
	// MemAddr is the effective address for memory operations, else -1.
	MemAddr int64
}

// Machine is the functional emulator. It executes a linearized image
// in-order and architecturally exactly; the timing model layers cycle
// accounting on top of the retirement stream.
type Machine struct {
	Img *prog.Image
	Mem *Memory

	IntRegs [isa.NumIntRegs]int64
	FPRegs  [isa.NumFPRegs]float64
	PC      int64
	Halted  bool

	// InstCount counts retired instructions.
	InstCount uint64

	// dataHash accumulates a hash of data-segment stores for functional
	// equivalence checks; code-address values (return addresses spilled to
	// the stack) deliberately do not feed it.
	dataHash  uint64
	dataCount uint64
}

// NewMachine builds a machine for an image, loads the program's data
// segment and initializes the stack pointer.
func NewMachine(img *prog.Image) *Machine {
	m := &Machine{Img: img, Mem: NewMemorySized(len(img.Prog.Data)), PC: img.Entry}
	for i, v := range img.Prog.Data {
		// Data segment initialization cannot fail: addresses are aligned
		// and positive by construction.
		if err := m.Mem.Store(prog.DataBase+int64(i)*8, v); err != nil {
			panic(fmt.Sprintf("cpu: data init: %v", err))
		}
	}
	m.IntRegs[isa.RSP] = prog.StackBase
	m.dataHash = fnv64offset
	return m
}

const fnv64offset = 14695981039346656037

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer that
// costs three multiplies/shifts instead of the byte-at-a-time FNV loop the
// hash used previously (store hashing was ~8% of a timed run).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

func (m *Machine) hashStore(addr, val int64) {
	// Only data-segment stores participate: the stack holds spilled return
	// addresses whose numeric values differ between original and packed
	// code images.
	if addr < prog.DataBase || addr >= prog.StackBase/2 {
		return
	}
	// Chaining through the running hash keeps the digest order-sensitive,
	// as the functional-equivalence check requires.
	h := m.dataHash
	h = mix64(h ^ uint64(addr))
	h = mix64(h ^ uint64(val))
	m.dataHash = h
	m.dataCount++
}

// DataHash returns the running hash of data-segment stores and the number
// of such stores. Two runs that compute the same results agree on both.
func (m *Machine) DataHash() (hash uint64, stores uint64) {
	return m.dataHash, m.dataCount
}

func (m *Machine) geti(r isa.Reg) int64 {
	if r == isa.R0 {
		return 0
	}
	return m.IntRegs[r]
}

func (m *Machine) seti(r isa.Reg, v int64) {
	if r != isa.R0 && r < isa.NumIntRegs {
		m.IntRegs[r] = v
	}
}

func (m *Machine) getf(r isa.Reg) float64 {
	if !r.IsFP() {
		return 0
	}
	return m.FPRegs[r-isa.NumIntRegs]
}

func (m *Machine) setf(r isa.Reg, v float64) {
	if r.IsFP() {
		m.FPRegs[r-isa.NumIntRegs] = v
	}
}

// Step executes one instruction, filling info if non-nil. It returns an
// error for architectural faults (bad PC, unaligned access); a halted
// machine returns an error as well.
func (m *Machine) Step(info *StepInfo) error {
	if m.Halted {
		return fmt.Errorf("cpu: step on halted machine")
	}
	if m.PC < 0 || m.PC >= int64(len(m.Img.Code)) {
		return fmt.Errorf("cpu: PC %d outside code image (len %d)", m.PC, len(m.Img.Code))
	}
	var scratch StepInfo
	if info == nil {
		info = &scratch
	}
	return m.exec(m.Img.Code[m.PC], info)
}

// exec executes one decoded instruction whose validity checks (halted
// state, PC bounds) have already been done by the caller, filling info
// unconditionally. Run hoists those checks and the code-slice load out of
// its loop and calls exec directly.
func (m *Machine) exec(in isa.Inst, info *StepInfo) error {
	next := m.PC + 1
	taken := false
	memAddr := int64(-1)

	switch in.Op {
	case isa.NOP:
	case isa.ADD:
		m.seti(in.Rd, m.geti(in.Rs1)+m.geti(in.Rs2))
	case isa.SUB:
		m.seti(in.Rd, m.geti(in.Rs1)-m.geti(in.Rs2))
	case isa.MUL:
		m.seti(in.Rd, m.geti(in.Rs1)*m.geti(in.Rs2))
	case isa.DIV:
		if d := m.geti(in.Rs2); d != 0 {
			m.seti(in.Rd, m.geti(in.Rs1)/d)
		} else {
			m.seti(in.Rd, 0)
		}
	case isa.REM:
		if d := m.geti(in.Rs2); d != 0 {
			m.seti(in.Rd, m.geti(in.Rs1)%d)
		} else {
			m.seti(in.Rd, 0)
		}
	case isa.AND:
		m.seti(in.Rd, m.geti(in.Rs1)&m.geti(in.Rs2))
	case isa.OR:
		m.seti(in.Rd, m.geti(in.Rs1)|m.geti(in.Rs2))
	case isa.XOR:
		m.seti(in.Rd, m.geti(in.Rs1)^m.geti(in.Rs2))
	case isa.SHL:
		m.seti(in.Rd, m.geti(in.Rs1)<<uint(m.geti(in.Rs2)&63))
	case isa.SHR:
		m.seti(in.Rd, int64(uint64(m.geti(in.Rs1))>>uint(m.geti(in.Rs2)&63)))
	case isa.SLT:
		m.seti(in.Rd, b2i(m.geti(in.Rs1) < m.geti(in.Rs2)))
	case isa.SEQ:
		m.seti(in.Rd, b2i(m.geti(in.Rs1) == m.geti(in.Rs2)))

	case isa.ADDI:
		m.seti(in.Rd, m.geti(in.Rs1)+in.Imm)
	case isa.MULI:
		m.seti(in.Rd, m.geti(in.Rs1)*in.Imm)
	case isa.ANDI:
		m.seti(in.Rd, m.geti(in.Rs1)&in.Imm)
	case isa.ORI:
		m.seti(in.Rd, m.geti(in.Rs1)|in.Imm)
	case isa.XORI:
		m.seti(in.Rd, m.geti(in.Rs1)^in.Imm)
	case isa.SHLI:
		m.seti(in.Rd, m.geti(in.Rs1)<<uint(in.Imm&63))
	case isa.SHRI:
		m.seti(in.Rd, int64(uint64(m.geti(in.Rs1))>>uint(in.Imm&63)))
	case isa.SLTI:
		m.seti(in.Rd, b2i(m.geti(in.Rs1) < in.Imm))
	case isa.LI:
		m.seti(in.Rd, in.Imm)

	case isa.LD:
		memAddr = m.geti(in.Rs1) + in.Imm
		v, err := m.Mem.Load(memAddr)
		if err != nil {
			return fmt.Errorf("cpu: pc %d: %w", m.PC, err)
		}
		m.seti(in.Rd, v)
	case isa.ST:
		memAddr = m.geti(in.Rs1) + in.Imm
		if err := m.Mem.Store(memAddr, m.geti(in.Rs2)); err != nil {
			return fmt.Errorf("cpu: pc %d: %w", m.PC, err)
		}
		m.hashStore(memAddr, m.geti(in.Rs2))

	case isa.FADD:
		m.setf(in.Rd, m.getf(in.Rs1)+m.getf(in.Rs2))
	case isa.FSUB:
		m.setf(in.Rd, m.getf(in.Rs1)-m.getf(in.Rs2))
	case isa.FMUL:
		m.setf(in.Rd, m.getf(in.Rs1)*m.getf(in.Rs2))
	case isa.FDIV:
		if d := m.getf(in.Rs2); d != 0 {
			m.setf(in.Rd, m.getf(in.Rs1)/d)
		} else {
			m.setf(in.Rd, 0)
		}
	case isa.FSLT:
		m.seti(in.Rd, b2i(m.getf(in.Rs1) < m.getf(in.Rs2)))
	case isa.FCVTIF:
		m.setf(in.Rd, float64(m.geti(in.Rs1)))
	case isa.FCVTFI:
		m.seti(in.Rd, int64(m.getf(in.Rs1)))
	case isa.FLD:
		memAddr = m.geti(in.Rs1) + in.Imm
		v, err := m.Mem.Load(memAddr)
		if err != nil {
			return fmt.Errorf("cpu: pc %d: %w", m.PC, err)
		}
		m.setf(in.Rd, math.Float64frombits(uint64(v)))
	case isa.FST:
		memAddr = m.geti(in.Rs1) + in.Imm
		bits := int64(math.Float64bits(m.getf(in.Rs2)))
		if err := m.Mem.Store(memAddr, bits); err != nil {
			return fmt.Errorf("cpu: pc %d: %w", m.PC, err)
		}
		m.hashStore(memAddr, bits)

	case isa.BEQ:
		taken = m.geti(in.Rs1) == m.geti(in.Rs2)
	case isa.BNE:
		taken = m.geti(in.Rs1) != m.geti(in.Rs2)
	case isa.BLT:
		taken = m.geti(in.Rs1) < m.geti(in.Rs2)
	case isa.BGE:
		taken = m.geti(in.Rs1) >= m.geti(in.Rs2)
	case isa.JMP:
		taken = true
		next = in.Target
	case isa.CALL:
		taken = true
		m.seti(isa.RRA, m.PC+1)
		next = in.Target
	case isa.RET:
		taken = true
		next = m.geti(isa.RRA)
	case isa.JR:
		taken = true
		next = m.geti(in.Rs1)
	case isa.LA:
		m.seti(in.Rd, in.Target)
	case isa.HALT:
		m.Halted = true
	default:
		return fmt.Errorf("cpu: pc %d: invalid opcode %v", m.PC, in.Op)
	}
	if isa.Meta[in.Op].IsCondBranch && taken {
		next = in.Target
	}

	info.PC = m.PC
	info.Inst = in
	info.NextPC = next
	info.Taken = taken
	info.MemAddr = memAddr
	m.PC = next
	m.InstCount++
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Run executes until halt or until limit instructions have retired (0 means
// no limit). observe, if non-nil, is called for every retired instruction.
// It returns an error for architectural faults or when the limit is hit
// before the program halts.
//
// The loop is fused with the per-instruction dispatch: the code slice, its
// bounds and the halted/observer checks are hoisted out of the retirement
// path rather than re-derived inside Step for every instruction.
func (m *Machine) Run(limit uint64, observe func(*StepInfo)) error {
	var info StepInfo
	code := m.Img.Code
	n := int64(len(code))
	if observe == nil {
		for !m.Halted {
			if limit > 0 && m.InstCount >= limit {
				return fmt.Errorf("cpu: instruction limit %d reached at pc %d", limit, m.PC)
			}
			pc := m.PC
			if uint64(pc) >= uint64(n) {
				return fmt.Errorf("cpu: PC %d outside code image (len %d)", pc, n)
			}
			if err := m.exec(code[pc], &info); err != nil {
				return err
			}
		}
		return nil
	}
	for !m.Halted {
		if limit > 0 && m.InstCount >= limit {
			return fmt.Errorf("cpu: instruction limit %d reached at pc %d", limit, m.PC)
		}
		pc := m.PC
		if uint64(pc) >= uint64(n) {
			return fmt.Errorf("cpu: PC %d outside code image (len %d)", pc, n)
		}
		if err := m.exec(code[pc], &info); err != nil {
			return err
		}
		observe(&info)
	}
	return nil
}
