package cpu

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/prog"
)

// Config holds the machine-model parameters. DefaultConfig mirrors Table 2
// of the paper.
type Config struct {
	IssueWidth  int
	IntALUs     int
	FPUnits     int
	MemUnits    int
	BranchUnits int

	L1DSizeBytes int
	L1ISizeBytes int
	L2SizeBytes  int
	CacheWays    int

	L2Latency  int // extra cycles on an L1 miss that hits L2
	MemLatency int // extra cycles on an L2 miss

	BranchResolution int // pipeline depth from fetch to branch resolve
	GshareBits       uint
	BTBEntries       int
	RASEntries       int

	// FetchLineSlots is how many instruction slots share an I-cache line
	// (64-byte lines of 8-byte slots).
	FetchLineSlots int

	// DisableBlockCache forces RunTimed onto the legacy
	// instruction-at-a-time loop instead of the block-structured path
	// (see blockcache.go). The two are bit-identical; this is an escape
	// hatch for debugging and for A/B-testing the cache itself.
	DisableBlockCache bool

	// DisableSuperblocks keeps the block-structured path on tier 0
	// (one basic block per dispatch) instead of promoting hot blocks
	// into specialized superblock traces (see superblock.go). All three
	// paths — legacy, tier 0, tier 1 — are bit-identical.
	DisableSuperblocks bool

	// SuperblockThreshold is the number of tier-0 dispatches after which
	// a block is promoted into a superblock trace; 0 means
	// DefaultSuperblockThreshold.
	SuperblockThreshold int
}

// DefaultConfig returns the paper's Table 2 machine model.
func DefaultConfig() Config {
	return Config{
		IssueWidth:  8,
		IntALUs:     5,
		FPUnits:     3,
		MemUnits:    3,
		BranchUnits: 3,

		L1DSizeBytes: 64 << 10,
		L1ISizeBytes: 512 << 10,
		L2SizeBytes:  64 << 10,
		CacheWays:    4,

		L2Latency:  10,
		MemLatency: 80,

		BranchResolution: 7,
		GshareBits:       10,
		BTBEntries:       1024,
		RASEntries:       32,

		FetchLineSlots: 8,
	}
}

// TimingStats aggregates one timed run.
type TimingStats struct {
	Cycles       uint64
	Insts        uint64
	PackageInsts uint64 // instructions retired from package code

	CondBranches   uint64
	CondMispredict uint64
	BTBMisses      uint64
	RASMisses      uint64

	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2Accesses, L2Misses   uint64

	FetchBreaks uint64 // taken transfers that ended a fetch packet
	RAWStalls   uint64 // cycles lost waiting on operands (approximate)
}

// IPC returns retired instructions per cycle.
func (s TimingStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// PackageCoverage returns the fraction of dynamic instructions retired
// from package code.
func (s TimingStats) PackageCoverage() float64 {
	if s.Insts == 0 {
		return 0
	}
	return float64(s.PackageInsts) / float64(s.Insts)
}

// Timing is the cycle-level model. It consumes the functional machine's
// retirement stream in program order and accounts:
//
//   - in-order issue of at most IssueWidth instructions per cycle, limited
//     by per-class functional units,
//   - register scoreboarding (an instruction cannot issue before its
//     operands' producing latencies have elapsed),
//   - fetch-packet breaks at taken control transfers, I-cache misses at
//     line boundaries, and
//   - branch resolution: a mispredicted conditional branch, a BTB-missing
//     taken transfer or a RAS-missing return redirects fetch
//     BranchResolution cycles after the transfer issued.
//
// The model is a faithful accounting abstraction of the paper's ten-stage
// EPIC pipeline rather than a structural register-transfer simulation; it
// rewards exactly the behaviors the paper's optimizations target: packed
// issue slots, fall-through layout and phase-local instruction footprints.
type Timing struct {
	cfg  Config
	pred *Predictor
	l1i  *Cache
	l1d  *Cache
	l2   *Cache

	cycle uint64

	// Packed per-cycle issue state: one byte per FU class (bytes 0..4,
	// indexed by isa.FUClass), byte 7 the issue-width budget; bytes 5-6
	// are unused and never limit. Each byte holds 0x80|remaining, so
	// issuing one instruction is a single uint64 subtraction and the
	// cycle is full for that class exactly when a high bit clears.
	// freeInit is the per-cycle refill value derived from the config
	// (per-class capacities clamped to 126, far above any real model).
	free     uint64
	freeInit uint64

	// regReady is sized to a power of two so hot loops can index it with
	// a mask instead of a bounds check; entries past isa.NumRegs stay 0.
	regReady   [64]uint64
	fetchReady uint64 // earliest cycle the next instruction can issue
	lastLine   int64

	inPkg []bool

	Stats TimingStats
}

// NewTiming builds a timing model for an image. Instructions belonging to
// package functions are identified up front for coverage accounting.
func NewTiming(cfg Config, img *prog.Image) *Timing {
	t := &Timing{
		cfg:      cfg,
		pred:     NewPredictor(cfg.GshareBits, cfg.BTBEntries, cfg.RASEntries),
		l1i:      NewCache("L1I", cfg.L1ISizeBytes, cfg.CacheWays),
		l1d:      NewCache("L1D", cfg.L1DSizeBytes, cfg.CacheWays),
		l2:       NewCache("L2", cfg.L2SizeBytes, cfg.CacheWays),
		lastLine: -1,
		inPkg:    make([]bool, len(img.Code)),
	}
	t.freeInit = packIssueInit(cfg)
	t.free = t.freeInit
	for addr, b := range img.AddrBlock {
		if b != nil && b.Fn.IsPackage {
			t.inPkg[addr] = true
		}
	}
	return t
}

// issueWidthShift is the bit position of the issue-width byte in the
// packed issue word.
const issueWidthShift = 56

// packIssueInit builds the per-cycle refill value for the packed issue
// state: 0x80|capacity in each FU byte and the width byte, 0x80|0x7e in
// the FUNone and unused bytes so they never limit. Capacities clamp to
// [0, 126]; a zero capacity stalls the class forever, exactly like the
// old fuLimit==0 behavior.
func packIssueInit(cfg Config) uint64 {
	pack := func(v int) uint64 {
		if v < 0 {
			v = 0
		}
		if v > 0x7e {
			v = 0x7e
		}
		return uint64(v)
	}
	return 0x8080808080808080 |
		0x7e | // FUNone: consumes an issue slot but no unit
		pack(cfg.IntALUs)<<(8*uint(isa.FUIALU)) |
		pack(cfg.FPUnits)<<(8*uint(isa.FUFP)) |
		pack(cfg.MemUnits)<<(8*uint(isa.FUMem)) |
		pack(cfg.BranchUnits)<<(8*uint(isa.FUBranch)) |
		0x7e<<40 | 0x7e<<48 | // unused bytes
		pack(cfg.IssueWidth)<<issueWidthShift
}

// issueNeed and issueHigh are the subtract mask and high-bit mask for
// issuing one instruction of FU class fu: one count from the class byte
// and one from the width byte.
func issueNeed(fu isa.FUClass) uint64 {
	return 1<<(8*uint(fu)) | 1<<issueWidthShift
}

func issueHigh(fu isa.FUClass) uint64 {
	return 0x80<<(8*uint(fu)) | 0x80<<issueWidthShift
}

// nextCycle advances to a fresh issue cycle.
func (t *Timing) nextCycle() {
	t.cycle++
	t.free = t.freeInit
}

// advanceTo jumps the issue clock to cycle c (> current).
func (t *Timing) advanceTo(c uint64) {
	t.cycle = c
	t.free = t.freeInit
}

// lineFetch charges the I-cache hierarchy for fetch crossing onto the
// line holding pc and delays fetchReady on a miss. The caller has decided
// the crossing happened (statically via slotNewLine / superblock stitch
// marks, or by comparing against lastLine at a block entry).
func (t *Timing) lineFetch(pc int64) {
	t.fetchReady = t.lineFetchAt(pc, t.cycle, t.fetchReady)
}

// lineFetchAt is lineFetch for callers that keep cycle and fetchReady in
// locals (the superblock executor); it returns the updated fetchReady.
func (t *Timing) lineFetchAt(pc int64, cycle, fetchReady uint64) uint64 {
	t.lastLine = pc >> 3
	if !t.l1i.Access(pc * 8) {
		extra := t.cfg.L2Latency
		if !t.l2.Access(pc * 8) {
			extra += t.cfg.MemLatency
		}
		if c := cycle + uint64(extra); fetchReady < c {
			fetchReady = c
		}
	}
	return fetchReady
}

// dLatency models a data access through the cache hierarchy and returns
// the total load-use latency.
func (t *Timing) dLatency(addr int64) int {
	lat := isa.LD.Latency()
	if t.l1d.Access(addr) {
		return lat
	}
	lat += t.cfg.L2Latency
	if t.l2.Access(addr) {
		return lat
	}
	return lat + t.cfg.MemLatency
}

// iFetch charges I-cache time when the fetch stream crosses into a new
// line and returns extra cycles to delay fetch.
func (t *Timing) iFetch(pc int64) int {
	line := (pc * 8) >> 6
	if line == t.lastLine {
		return 0
	}
	t.lastLine = line
	if t.l1i.Access(pc * 8) {
		return 0
	}
	extra := t.cfg.L2Latency
	if !t.l2.Access(pc * 8) {
		extra += t.cfg.MemLatency
	}
	return extra
}

// Observe accounts one retired instruction. Call it in retirement order.
// Per-opcode properties come from the flat isa.Meta table — one load per
// instruction instead of a method call per property.
func (t *Timing) Observe(info *StepInfo) {
	in := info.Inst
	op := in.Op
	meta := &isa.Meta[op]

	// Fetch: line-crossing I-cache charge.
	if extra := t.iFetch(info.PC); extra > 0 {
		c := t.cycle + uint64(extra)
		if t.fetchReady < c {
			t.fetchReady = c
		}
	}

	// Earliest issue cycle: fetch availability and operand readiness.
	earliest := t.cycle
	if t.fetchReady > earliest {
		earliest = t.fetchReady
	}
	var opndReady uint64
	if meta.HasRs1 && in.Rs1 != isa.R0 && t.regReady[in.Rs1&63] > opndReady {
		opndReady = t.regReady[in.Rs1&63]
	}
	if meta.HasRs2 && in.Rs2 != isa.R0 && t.regReady[in.Rs2&63] > opndReady {
		opndReady = t.regReady[in.Rs2&63]
	}
	if op == isa.RET && t.regReady[isa.RRA] > opndReady {
		opndReady = t.regReady[isa.RRA]
	}
	if opndReady > earliest {
		t.Stats.RAWStalls += opndReady - earliest
		earliest = opndReady
	}
	if earliest > t.cycle {
		t.advanceTo(earliest)
	}
	// Resource constraints: issue width and FU availability.
	need, hi := issueNeed(meta.FU), issueHigh(meta.FU)
	f2 := t.free - need
	for f2&hi != hi {
		t.nextCycle()
		f2 = t.free - need
	}
	t.free = f2
	issueCycle := t.cycle

	// Result latency.
	lat := int(meta.Latency)
	if op == isa.LD || op == isa.FLD {
		lat = t.dLatency(info.MemAddr)
	} else if op == isa.ST || op == isa.FST {
		t.dLatency(info.MemAddr) // stores touch the cache; latency hidden
		lat = 1
	}
	if op == isa.CALL {
		// CALL implicitly defines RRA (see Inst.Defs).
		ready := issueCycle + uint64(lat)
		if t.regReady[isa.RRA] < ready {
			t.regReady[isa.RRA] = ready
		}
	} else if meta.HasRd && in.Rd != isa.R0 {
		ready := issueCycle + uint64(lat)
		if t.regReady[in.Rd&63] < ready {
			t.regReady[in.Rd&63] = ready
		}
	}

	// Control flow and prediction.
	if meta.IsControl && op != isa.HALT {
		redirect := false
		switch {
		case meta.IsCondBranch:
			t.Stats.CondBranches++
			if !t.pred.PredictCond(info.PC, info.Taken) {
				redirect = true
			} else if info.Taken && !t.pred.LookupBTB(info.PC, info.NextPC) {
				redirect = true
			}
		case op == isa.JMP:
			if !t.pred.LookupBTB(info.PC, info.NextPC) {
				redirect = true
			}
		case op == isa.CALL:
			t.pred.PushRAS(info.PC + 1)
			if !t.pred.LookupBTB(info.PC, info.NextPC) {
				redirect = true
			}
		case op == isa.RET:
			if !t.pred.PopRAS(info.NextPC) {
				redirect = true
			}
		case op == isa.JR:
			// Indirect jumps predict through the BTB: the paper's dynamic
			// launch-point alternative pays a redirect when the target
			// changes (i.e. at phase transitions).
			if !t.pred.LookupBTB(info.PC, info.NextPC) {
				redirect = true
			}
		}
		if redirect {
			// Fetch restarts after the branch resolves.
			c := issueCycle + uint64(t.cfg.BranchResolution)
			if t.fetchReady < c {
				t.fetchReady = c
			}
		} else if info.Taken {
			// Correctly predicted taken transfer still ends the fetch
			// packet: following instructions issue next cycle at best.
			t.Stats.FetchBreaks++
			if t.fetchReady < issueCycle+1 {
				t.fetchReady = issueCycle + 1
			}
		}
	}

	t.Stats.Insts++
	if t.inPkg[info.PC] {
		t.Stats.PackageInsts++
	}
}

// Finish freezes and returns the statistics.
func (t *Timing) Finish() TimingStats {
	s := t.Stats
	s.Cycles = t.cycle + 1
	s.CondMispredict = t.pred.CondMispredict
	s.BTBMisses = t.pred.BTBMisses
	s.RASMisses = t.pred.RASMisses
	s.L1IAccesses, s.L1IMisses = t.l1i.Accesses, t.l1i.Misses
	s.L1DAccesses, s.L1DMisses = t.l1d.Accesses, t.l1d.Misses
	s.L2Accesses, s.L2Misses = t.l2.Accesses, t.l2.Misses
	return s
}

// RunTimed runs the program to completion on a fresh machine under this
// timing model and returns the statistics. limit bounds retired
// instructions (0 = unlimited). It dispatches through a private, run-local
// block cache; use RunTimedCached to share decoded blocks across repeated
// runs of the same image.
func RunTimed(cfg Config, img *prog.Image, limit uint64) (TimingStats, *Machine, error) {
	return RunTimedCached(cfg, img, limit, nil)
}

// RunTimedCached is RunTimed with an explicit block cache. A nil bc gets a
// fresh cache; a non-nil bc is re-bound to img (evicting its decoded
// blocks if it was bound to a different image — the invalidation-on-
// install rule) and keeps its entries otherwise, making repeated timed
// runs of one image skip decode entirely.
//
// The legacy instruction-at-a-time loop is used when the config disables
// the cache or when limit > 0 (the limit must be checked per instruction,
// not per block; limits are only used for runaway-guard runs, never on the
// measured suite path).
func RunTimedCached(cfg Config, img *prog.Image, limit uint64, bc *BlockCache) (TimingStats, *Machine, error) {
	m := NewMachine(img)
	t := NewTiming(cfg, img)
	if cfg.DisableBlockCache || limit > 0 {
		if err := t.runLegacy(m, limit); err != nil {
			return TimingStats{}, m, err
		}
		return t.Finish(), m, nil
	}
	if bc == nil {
		bc = NewBlockCache(img)
	} else {
		bc.Bind(img)
	}
	if err := t.runBlocks(m, bc); err != nil {
		return TimingStats{}, m, err
	}
	return t.Finish(), m, nil
}

// runLegacy is the instruction-at-a-time retire/observe loop. The loop is
// fused so Observe is a direct method call on the concrete Timing instead
// of an indirect call through a func value for every retired instruction.
func (t *Timing) runLegacy(m *Machine, limit uint64) error {
	var info StepInfo
	code := m.Img.Code
	n := int64(len(code))
	for !m.Halted {
		if limit > 0 && m.InstCount >= limit {
			return fmt.Errorf("cpu: instruction limit %d reached at pc %d", limit, m.PC)
		}
		pc := m.PC
		if uint64(pc) >= uint64(n) {
			return fmt.Errorf("cpu: PC %d outside code image (len %d)", pc, n)
		}
		if err := m.exec(code[pc], &info); err != nil {
			return err
		}
		t.Observe(&info)
	}
	return nil
}
