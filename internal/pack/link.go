package pack

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/prog"
)

// Install finalizes extraction: it groups packages by root function, picks
// a link ordering per group by the paper's rank metric, retargets cold
// exits into compatible sibling packages (§3.3.4), patches launch points in
// the original code, and returns the bookkeeping a report needs. pkgs holds
// every package from every phase; the program must already contain their
// functions (BuildPhase appended them).
func Install(cfg Config, p *prog.Program, pkgs []*Package) (*Result, error) {
	return InstallObserved(cfg, p, pkgs, obs.Nop{})
}

// InstallObserved is Install reporting to an observer: the whole
// installation runs inside a "link" span, every exit retarget emits a
// PackageLinked event, and the pack.links / pack.launch_points /
// pack.monitors counters are bumped.
func InstallObserved(cfg Config, p *prog.Program, pkgs []*Package, o obs.Observer) (*Result, error) {
	sp := o.StartSpan(obs.StageLink)
	defer sp.End()
	res := &Result{
		Packages: pkgs,
		Groups:   make(map[*prog.Func][]*Package),
	}

	// Static accounting.
	selected := make(map[*prog.Block]bool)
	for _, f := range p.Funcs {
		n := f.NumInsts()
		if f.IsPackage {
			res.AddedInsts += n
		} else {
			res.OrigInsts += n
		}
	}
	for _, pk := range pkgs {
		for key := range pk.copies {
			selected[key.orig] = true
		}
	}
	for b := range selected {
		res.SelectedInsts += b.NumInsts()
	}

	// Group by root, preserving package creation order.
	var rootOrder []*prog.Func
	for _, pk := range pkgs {
		if len(res.Groups[pk.Root]) == 0 {
			rootOrder = append(rootOrder, pk.Root)
		}
		res.Groups[pk.Root] = append(res.Groups[pk.Root], pk)
	}

	for _, root := range rootOrder {
		group := res.Groups[root]
		ordered := group
		var links []linkChoice
		if cfg.DynamicLaunch && len(group) > 1 {
			ordered, links = chooseOrdering(cfg, group)
			res.Groups[root] = ordered
			launches, monitors := installDynamic(p, ordered, links)
			res.LaunchPoints += launches
			res.Monitors += monitors
			continue
		}
		if cfg.EnableLinking && len(group) > 1 {
			ordered, links = chooseOrdering(cfg, group)
			res.Groups[root] = ordered
			for _, lc := range links {
				lc.exit.Block.Next = lc.target
				lc.exit.Linked = lc.pkg
				res.Links++
				o.Emit(obs.Event{Kind: obs.PackageLinked, Phase: lc.pkg.PhaseID, Name: lc.pkg.Fn.Name})
			}
		}
		res.LaunchPoints += patchLaunchPoints(p, ordered)
	}

	if err := p.Verify(); err != nil {
		return nil, fmt.Errorf("pack: install produced invalid program: %w", err)
	}
	if cfg.Verify != nil {
		if err := cfg.Verify(p, res); err != nil {
			return nil, fmt.Errorf("pack: install verification: %w", err)
		}
	}
	o.Count("pack.links", int64(res.Links))
	o.Count("pack.launch_points", int64(res.LaunchPoints))
	o.Count("pack.monitors", int64(res.Monitors))
	if o.Enabled() {
		for _, pk := range pkgs {
			linked := 0
			for _, e := range pk.Exits {
				if e.Linked != nil {
					linked++
				}
			}
			o.Observe("pack.links_per_package", float64(linked))
		}
	}
	return res, nil
}

// linkChoice is one exit retarget decision.
type linkChoice struct {
	exit   *Exit
	pkg    *Package
	target *prog.Block
}

// chooseOrdering evaluates orderings of a same-root package group and
// returns the best ordering with its link set. Linking follows the paper's
// two rules: an exit links to the first compatible package to its right
// (wrapping), and compatibility means the sibling holds a copy of the
// exit's target block under the identical inlining context.
func chooseOrdering(cfg Config, group []*Package) ([]*Package, []linkChoice) {
	n := len(group)
	var best []*Package
	var bestLinks []linkChoice
	bestRank := -1.0

	consider := func(perm []*Package) {
		links := resolveLinks(perm)
		rank := rankOrdering(perm, links)
		if rank > bestRank {
			bestRank = rank
			best = append([]*Package(nil), perm...)
			bestLinks = links
		}
	}

	if n <= cfg.MaxExhaustiveOrder {
		permute(group, consider)
	} else {
		consider(group)
	}
	return best, bestLinks
}

// resolveLinks computes, for the given circular ordering, each exit's link
// target: the first package to the right holding a same-context copy of
// the exit's original target block.
func resolveLinks(ordered []*Package) []linkChoice {
	var out []linkChoice
	n := len(ordered)
	for i, pk := range ordered {
		for _, e := range pk.Exits {
			for step := 1; step < n; step++ {
				q := ordered[(i+step)%n]
				if c := q.CopyOf(e.Target, e.Ctx); c != nil {
					out = append(out, linkChoice{exit: e, pkg: q, target: c})
					break
				}
			}
		}
	}
	return out
}

// rankOrdering scores an ordering per §3.3.4: each package's ratio is its
// incoming link count over its branch count; the rank accumulates
// left-to-right with a multiplicative weight.
func rankOrdering(ordered []*Package, links []linkChoice) float64 {
	incoming := make(map[*Package]int, len(ordered))
	for _, lc := range links {
		incoming[lc.pkg]++
	}
	rank := 0.0
	weight := 1.0
	for i, pk := range ordered {
		den := pk.Branches
		if den == 0 {
			den = 1
		}
		ratio := float64(incoming[pk]) / float64(den)
		if i == 0 {
			weight = ratio
			rank = ratio
			continue
		}
		weight *= ratio
		rank += weight
	}
	return rank
}

// permute invokes f on every permutation of xs (Heap's algorithm).
func permute(xs []*Package, f func([]*Package)) {
	perm := append([]*Package(nil), xs...)
	var rec func(k int)
	rec = func(k int) {
		if k == 1 {
			f(perm)
			return
		}
		for i := 0; i < k; i++ {
			rec(k - 1)
			if k%2 == 0 {
				perm[i], perm[k-1] = perm[k-1], perm[i]
			} else {
				perm[0], perm[k-1] = perm[k-1], perm[0]
			}
		}
	}
	rec(len(perm))
}

// patchLaunchPoints retargets original-code arcs and call sites into the
// ordered group's packages. The left-most package holding an entry block
// gets precedence when entries overlap (§3.3.4).
func patchLaunchPoints(p *prog.Program, ordered []*Package) int {
	// Union of original entry blocks, first-package-first.
	type launch struct {
		copyBlock *prog.Block
		pkg       *Package
	}
	targets := make(map[*prog.Block]launch)
	for _, pk := range ordered {
		for oe, c := range pk.Entries {
			if _, claimed := targets[oe]; !claimed {
				targets[oe] = launch{c, pk}
			}
		}
	}
	if len(targets) == 0 {
		return 0
	}
	root := ordered[0].Root
	count := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			// Inside package code only calls are retargeted: residual
			// calls to a packaged root (recursion past the inlined copy,
			// non-inlinable callees) re-enter the root's own package. Arcs
			// are left alone — exits transfer to original code unless
			// package linking retargeted them.
			if !f.IsPackage {
				if b.Kind == prog.TermBranch {
					if l, ok := targets[b.Taken]; ok {
						b.Taken = l.copyBlock
						count++
					}
				}
				if b.Kind == prog.TermFall || b.Kind == prog.TermBranch || b.Kind == prog.TermCall {
					if l, ok := targets[b.Next]; ok {
						b.Next = l.copyBlock
						count++
					}
				}
			}
			if b.Kind == prog.TermCall && b.Callee == root {
				if l, ok := targets[root.Entry()]; ok && l.pkg.Fn.Entry() == l.copyBlock {
					b.Callee = l.pkg.Fn
					count++
				}
			}
		}
	}
	return count
}
