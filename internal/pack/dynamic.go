package pack

import (
	"repro/internal/isa"
	"repro/internal/prog"
)

// Dynamic launch-point selection, the alternative §3.3.4 discusses and
// sets aside: "Another solution would have been to dynamically modify the
// launch point branch to point to the expected best package. ... a
// monitoring code snippet could be introduced along the exit path to feed
// a dynamic predictor."
//
// Implementation: each shared entry block gets a launch *slot* (one
// optimizer state word at prog.ScratchBase) and a launcher function:
//
//	root.launch.bN:
//	        ld  ropt, slot(r0)
//	        beq ropt, r0, <left-most package's entry copy>   ; cold start
//	        jr  ropt
//
// Original-code arcs into the entry are retargeted to the launcher, and
// call sites simply call it — the launcher transfers with jumps, so the
// caller's return address flows through to the package unchanged. Exits
// that static linking would have wired into a sibling package instead gain
// a monitoring snippet — `la ropt, <sibling entry copy>; st ropt,
// slot(r0)` — and continue to original code: the *next* launch lands in
// the package built for the phase that is actually running. The indirect
// jump predicts through the BTB, so the mechanism pays one redirect per
// phase change.
//
// ROpt (r29) is architecturally reserved for optimizer-synthesized code.

// ROpt is the scratch register reserved for dynamic launch shims and
// monitors. Programs must not use it.
const ROpt = isa.Reg(29)

// installDynamic wires one same-root package group for dynamic launch
// selection. It returns the number of launch points patched and monitor
// snippets inserted.
func installDynamic(p *prog.Program, ordered []*Package, links []linkChoice) (launches, monitors int) {
	root := ordered[0].Root

	// One slot and launcher function per shared original entry block.
	type shimInfo struct {
		slot int64
		fn   *prog.Func
	}
	shims := make(map[*prog.Block]shimInfo)
	for _, pk := range ordered {
		for oe := range pk.Entries {
			if _, done := shims[oe]; done {
				continue
			}
			// The left-most package holding this entry provides the
			// cold-start target.
			var def *prog.Block
			for _, q := range ordered {
				if c, ok := q.Entries[oe]; ok {
					def = c
					break
				}
			}
			slot := p.AllocScratch()
			fn := p.AddFunc(root.Name + ".launch." + oe.String())
			fn.IsPackage = true
			head := p.NewBlock(fn)
			head.Kind = prog.TermBranch
			head.CmpOp = isa.BEQ
			head.Rs1, head.Rs2 = ROpt, isa.R0
			head.Insts = []prog.Ins{{Inst: isa.Inst{Op: isa.LD, Rd: ROpt, Rs1: isa.R0, Imm: slot}}}
			jr := p.NewBlock(fn)
			jr.Kind = prog.TermJumpReg
			jr.Rs1 = ROpt
			head.Taken = def
			head.Next = jr
			shims[oe] = shimInfo{slot: slot, fn: fn}
		}
	}

	// Retarget original-code arcs and call sites into the launchers.
	rootEntry := root.Entry()
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Kind == prog.TermCall && b.Callee == root {
				if sh, ok := shims[rootEntry]; ok {
					b.Callee = sh.fn
					launches++
				}
			}
			if f.IsPackage {
				continue
			}
			if b.Kind == prog.TermBranch {
				if sh, ok := shims[b.Taken]; ok && b.Taken != nil {
					b.Taken = sh.fn.Entry()
					launches++
				}
			}
			if b.Kind == prog.TermFall || b.Kind == prog.TermBranch || b.Kind == prog.TermCall {
				if sh, ok := shims[b.Next]; ok && b.Next != nil {
					b.Next = sh.fn.Entry()
					launches++
				}
			}
		}
	}

	// Monitoring snippets: where static linking would have retargeted an
	// exit into package Q, dynamic launch instead records Q's entry as the
	// next launch target and lets the exit return to original code.
	for _, lc := range links {
		q := lc.pkg
		for oe, sh := range shims {
			qEntry, ok := q.Entries[oe]
			if !ok {
				continue
			}
			snippet := []prog.Ins{
				{Inst: isa.Inst{Op: isa.LA, Rd: ROpt}, BlockTarget: qEntry},
				{Inst: isa.Inst{Op: isa.ST, Rs2: ROpt, Rs1: isa.R0, Imm: sh.slot}},
			}
			lc.exit.Block.Insts = append(snippet, lc.exit.Block.Insts...)
			monitors++
		}
	}
	return launches, monitors
}
