package pack

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/hsd"
	"repro/internal/isa"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
)

// fixture assembles a program, identifies a region from the given branch
// records and returns everything a pack test needs.
type fixture struct {
	p   *prog.Program
	img *prog.Image
	reg *region.Region
}

type brec struct {
	fn          string
	branchIdx   int // nth TermBranch block of fn, in layout order
	exec, taken uint32
}

func mkFixture(t *testing.T, src string, phaseID int, recs []brec) *fixture {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	var hsrecs []hsd.BranchRecord
	for _, r := range recs {
		fn := p.FuncByName(r.fn)
		if fn == nil {
			t.Fatalf("no function %s", r.fn)
		}
		n := 0
		var blk *prog.Block
		for _, b := range fn.Blocks {
			if b.Kind == prog.TermBranch {
				if n == r.branchIdx {
					blk = b
					break
				}
				n++
			}
		}
		if blk == nil {
			t.Fatalf("branch %d not found in %s", r.branchIdx, r.fn)
		}
		hsrecs = append(hsrecs, hsd.BranchRecord{PC: img.TermAddr[blk], Exec: r.exec, Taken: r.taken})
	}
	db := phasedb.New(phasedb.DefaultConfig())
	for i := 0; i < phaseID; i++ {
		// burn phase IDs so the region gets the requested one
		db.Record(hsd.HotSpot{Branches: []hsd.BranchRecord{{PC: int64(90000 + i), Exec: 100, Taken: 50}}})
	}
	ph := db.Record(hsd.HotSpot{Branches: hsrecs})
	reg, err := region.Identify(region.DefaultConfig(), img, ph)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{p: p, img: img, reg: reg}
}

// loopWithCalleeSrc: main loops calling main-level work; work calls helper.
const loopWithCalleeSrc = `
.func helper
  addi sp, sp, -8
  st ra, 0(sp)
  li r4, 3
hloop:
  addi r4, r4, -1
  bne r4, r0, hloop
  ld ra, 0(sp)
  addi sp, sp, 8
  ret

.func work
  addi sp, sp, -8
  st ra, 0(sp)
  li r3, 5
wloop:
  call helper
  addi r3, r3, -1
  bne r3, r0, wloop
  ld ra, 0(sp)
  addi sp, sp, 8
  ret

.func main
.main
  li r1, 100
mloop:
  call work
  addi r1, r1, -1
  bne r1, r0, mloop
  halt
`

func TestBuildPhaseInlinesCallee(t *testing.T) {
	fx := mkFixture(t, loopWithCalleeSrc, 0, []brec{
		{"main", 0, 400, 396},
		{"work", 0, 400, 320},
		{"helper", 0, 400, 260},
	})
	pkgs, err := BuildPhase(DefaultConfig(), fx.p, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("packages = %d, want 1 (main roots everything)", len(pkgs))
	}
	pk := pkgs[0]
	if pk.Root != fx.p.Main {
		t.Errorf("root = %s, want main", pk.Root.Name)
	}
	if pk.InlinedCalls != 2 {
		t.Errorf("inlined calls = %d, want 2 (work into main, helper into work)", pk.InlinedCalls)
	}
	if !pk.Fn.IsPackage {
		t.Error("package function not flagged")
	}
	// The package must contain an LA materializing a return address for
	// each inlined call.
	las := 0
	for _, b := range pk.Fn.Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.LA && in.Rd == isa.RRA {
				las++
			}
		}
	}
	if las != 2 {
		t.Errorf("LA ra count = %d, want 2", las)
	}
	if _, err := Install(DefaultConfig(), fx.p, pkgs); err != nil {
		t.Fatal(err)
	}
	if err := fx.p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestExitBlocksCarryLiveness(t *testing.T) {
	// A branch with one cold side: the pruned side becomes an exit block
	// with dummy-consumer metadata.
	src := `
.func main
.main
  li r1, 0
  li r2, 200
loop:
  ld r3, 0(r0)
  beq r3, r2, rare
  addi r1, r1, 1
back:
  blt r1, r2, loop
  halt
rare:
  add r4, r1, r3
  jmp back
`
	fx := mkFixture(t, src, 0, []brec{
		{"main", 0, 450, 5},   // beq: rare taken 1%
		{"main", 1, 450, 440}, // blt: loop backedge
	})
	pkgs, err := BuildPhase(DefaultConfig(), fx.p, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	var exits, withConsumers int
	for _, pk := range pkgs {
		for _, e := range pk.Exits {
			exits++
			if e.Block.Kind != prog.TermFall {
				t.Error("exit block should be an unconditional transfer")
			}
			if e.Target == nil || e.Target.Fn.IsPackage {
				t.Error("exit must target original code before linking")
			}
			if len(e.Block.ExitConsumes) > 0 {
				withConsumers++
			}
		}
	}
	if exits == 0 {
		t.Fatal("no exits created for pruned cold path")
	}
	// The exit into the rare block must consume r1/r3 (live into original
	// code); exits into the final halt block legitimately consume nothing.
	if withConsumers == 0 {
		t.Error("no exit carries a live-register consumer set")
	}
}

func TestSelfRecursiveRoot(t *testing.T) {
	src := `
.func rec
  addi sp, sp, -8
  st ra, 0(sp)
  ld r2, 0(r0)
  beq r2, r0, base
  addi r2, r2, -1
  st r2, 0(r0)
  call rec
base:
  ld ra, 0(sp)
  addi sp, sp, 8
  ret

.func main
.main
  li r9, 300
mloop:
  li r3, 5
  st r3, 0(r0)
  call rec
  addi r9, r9, -1
  bne r9, r0, mloop
  halt
`
	fx := mkFixture(t, src, 0, []brec{
		{"rec", 0, 400, 70}, // base case taken ~17%
		{"main", 0, 400, 390},
	})
	pkgs, err := BuildPhase(DefaultConfig(), fx.p, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	// rec is self-recursive, so it must be a root of its own package even
	// though main also inlines it.
	var recPkg *Package
	for _, pk := range pkgs {
		if pk.Root.Name == "rec" {
			recPkg = pk
		}
	}
	if recPkg == nil {
		t.Fatal("self-recursive function did not become a root")
	}
	if _, err := Install(DefaultConfig(), fx.p, pkgs); err != nil {
		t.Fatal(err)
	}
	// Inside rec's package, recursion beyond the single inlined copy must
	// re-enter a package (its own or via the patched call), never be lost.
	foundRecursiveCall := false
	for _, b := range recPkg.Fn.Blocks {
		if b.Kind == prog.TermCall && b.Callee != nil && b.Callee.IsPackage {
			foundRecursiveCall = true
		}
	}
	if !foundRecursiveCall {
		t.Error("recursive call does not re-enter package code")
	}
}

func TestLaunchPointsPatchOriginalCode(t *testing.T) {
	// Only work/helper are hot: the package roots at work, and main's call
	// site becomes the launch point. (A region rooted at main itself has
	// no launch points — nothing calls main.)
	fx := mkFixture(t, loopWithCalleeSrc, 0, []brec{
		{"work", 0, 400, 320},
		{"helper", 0, 400, 260},
	})
	pkgs, err := BuildPhase(DefaultConfig(), fx.p, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Install(DefaultConfig(), fx.p, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.LaunchPoints == 0 {
		t.Fatal("no launch points patched")
	}
	if res.OrigInsts == 0 || res.AddedInsts == 0 || res.SelectedInsts == 0 {
		t.Error("static accounting empty")
	}
	// Replication can dip slightly below 1 for a single tiny package:
	// inlined returns become fallthroughs and drop their slot.
	if res.CodeGrowth() <= 0 || res.SelectedFraction() <= 0 || res.Replication() < 0.5 {
		t.Errorf("growth=%v selected=%v repl=%v", res.CodeGrowth(), res.SelectedFraction(), res.Replication())
	}
}

// twoPhaseFixture builds two same-root phases with opposite biases and
// returns their packages plus the program.
func twoPhaseFixture(t *testing.T) (*prog.Program, []*Package) {
	t.Helper()
	src := `
.func main
.main
  li r1, 1000
loop:
  ld r3, 8(r0)
  beq r3, r0, sideB
sideA:
  addi r4, r4, 1
  jmp join
sideB:
  addi r4, r4, 2
join:
  addi r1, r1, -1
  bne r1, r0, loop
  halt
`
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	var branches []*prog.Block
	for _, b := range p.Main.Blocks {
		if b.Kind == prog.TermBranch {
			branches = append(branches, b)
		}
	}
	db := phasedb.New(phasedb.DefaultConfig())
	mk := func(takenFrac float64) *phasedb.Phase {
		return db.Record(hsd.HotSpot{Branches: []hsd.BranchRecord{
			{PC: img.TermAddr[branches[0]], Exec: 400, Taken: uint32(400 * takenFrac)},
			{PC: img.TermAddr[branches[1]], Exec: 400, Taken: 396},
		}})
	}
	ph1 := mk(0.02) // phase 0: sideA
	ph2 := mk(0.98) // phase 1: sideB — bias flip separates the phases
	if ph1 == ph2 {
		t.Fatal("phases should be distinct")
	}
	var pkgs []*Package
	for _, ph := range []*phasedb.Phase{ph1, ph2} {
		reg, err := region.Identify(region.DefaultConfig(), img, ph)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := BuildPhase(DefaultConfig(), p, reg)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, ps...)
	}
	return p, pkgs
}

func TestLinkingConnectsSameRootPackages(t *testing.T) {
	p, pkgs := twoPhaseFixture(t)
	if len(pkgs) != 2 {
		t.Fatalf("packages = %d, want 2", len(pkgs))
	}
	res, err := Install(DefaultConfig(), p, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Links == 0 {
		t.Fatal("same-root opposite-bias packages formed no links")
	}
	// Linked exits must target package code under the same origin block.
	for _, pk := range res.Packages {
		for _, e := range pk.Exits {
			if e.Linked == nil {
				continue
			}
			if !strings.HasPrefix(e.Linked.Fn.Name, pk.Root.Name) {
				t.Errorf("link went to foreign root package %s", e.Linked.Fn.Name)
			}
			if e.Block.Next.Fn != e.Linked.Fn {
				t.Error("linked exit does not jump into the linked package")
			}
			if prog.OriginRoot(e.Block.Next) != e.Target {
				t.Error("linked exit target has wrong origin block")
			}
		}
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkingDisabled(t *testing.T) {
	p, pkgs := twoPhaseFixture(t)
	cfg := DefaultConfig()
	cfg.EnableLinking = false
	res, err := Install(cfg, p, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Links != 0 {
		t.Errorf("links = %d with linking disabled", res.Links)
	}
	for _, pk := range res.Packages {
		for _, e := range pk.Exits {
			if e.Linked != nil || e.Block.Next.Fn.IsPackage {
				t.Error("exit was linked despite linking disabled")
			}
		}
	}
}

func TestRankOrdering(t *testing.T) {
	// Reproduce the paper's §3.3.4 arithmetic: ratios 2/5, 2/5, 3/6 give
	// rank 0.4 + 0.4*0.4 + 0.16*0.5 = 0.64.
	mk := func(branches, incoming int) *Package {
		return &Package{Fn: &prog.Func{Name: "t"}, Branches: branches}
	}
	a, b, c := mk(5, 0), mk(5, 0), mk(6, 0)
	links := []linkChoice{}
	addLinks := func(pk *Package, n int) {
		for i := 0; i < n; i++ {
			links = append(links, linkChoice{pkg: pk})
		}
	}
	addLinks(a, 2)
	addLinks(b, 2)
	addLinks(c, 3)
	rank := rankOrdering([]*Package{a, b, c}, links)
	if rank < 0.639 || rank > 0.641 {
		t.Errorf("rank = %v, want 0.64", rank)
	}
}

func TestPermute(t *testing.T) {
	xs := []*Package{{}, {}, {}}
	count := 0
	permute(xs, func(p []*Package) { count++ })
	if count != 6 {
		t.Errorf("permutations = %d, want 6", count)
	}
}

func TestBuildPhaseErrors(t *testing.T) {
	p, err := asm.Assemble(".func main\n.main\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	reg := &region.Region{
		BlockTemp: map[*prog.Block]region.Temp{},
		ArcTemp:   map[region.ArcKey]region.Temp{},
	}
	if _, err := BuildPhase(DefaultConfig(), p, reg); err == nil {
		t.Error("empty region should fail")
	}
}

func TestPackagePreservesSemantics(t *testing.T) {
	// End-to-end check at the pack level: the packed program computes the
	// same result. (core tests cover this at scale; this is the minimal
	// reproduction.)
	fx := mkFixture(t, loopWithCalleeSrc, 0, []brec{
		{"main", 0, 400, 396},
		{"work", 0, 400, 320},
		{"helper", 0, 400, 260},
	})
	pkgs, err := BuildPhase(DefaultConfig(), fx.p, fx.reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Install(DefaultConfig(), fx.p, pkgs); err != nil {
		t.Fatal(err)
	}
	if err := fx.p.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.p.Linearize(); err != nil {
		t.Fatal(err)
	}
}
