// Package pack implements step 3 of Vacuum Packing (§3.3): turning each
// phase's hot region into extracted code packages. It prunes function
// copies to their hot blocks, preserves data-flow at side exits with dummy
// consumer metadata, locates root functions and entry blocks, performs
// partial inlining across the region call graph, patches launch points in
// the original code, and links sibling packages that share a root function
// so phase transitions can reach the right specialization.
package pack

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/prog"
	"repro/internal/region"
)

// Config controls package construction.
type Config struct {
	// EnableLinking turns inter-package linking (§3.3.4) on. Without it,
	// exit blocks always return to original code and only one package per
	// launch point is reachable — the paper's "no linking" ablation.
	EnableLinking bool
	// DynamicLaunch replaces static package linking with the §3.3.4
	// alternative the paper sets aside: launch points become indirect
	// jumps through per-entry slots, and exit paths carry monitoring
	// snippets that record the next phase's package (see dynamic.go).
	DynamicLaunch bool
	// MaxInlineCopies bounds how many times one callee may be inlined into
	// a single package, guaranteeing termination on call-graph cycles.
	MaxInlineCopies int
	// MaxExhaustiveOrder is the largest same-root package group ordered by
	// exhaustive permutation search; larger groups use a greedy order.
	MaxExhaustiveOrder int
	// Verify, when set, runs over the installed program at the end of
	// InstallObserved (after the built-in structural check); a non-nil
	// error fails the installation. core wires the static verifier in here
	// so pack need not import it.
	Verify func(*prog.Program, *Result) error
}

// DefaultConfig returns the paper's configuration (linking on).
func DefaultConfig() Config {
	return Config{
		EnableLinking:      true,
		MaxInlineCopies:    16,
		MaxExhaustiveOrder: 6,
	}
}

// ctxKey identifies a block copy inside a package by its original block and
// its inlining context (the path of original call-site block IDs from the
// root). Copies with equal keys in different packages are the paper's
// "identical calling contexts" — the only legal link targets.
type ctxKey struct {
	orig *prog.Block
	ctx  string
}

// Exit is a cold side exit from a package: an exit block that transfers
// control back to original code (or, after linking, into a sibling
// package).
type Exit struct {
	// Block is the exit block inside the package; it holds ExitConsumes
	// and ends with an unconditional transfer.
	Block *prog.Block
	// From is the original block whose pruned arc this exit represents;
	// TakenDir says which direction of From it was.
	From     *prog.Block
	TakenDir bool
	// Target is the original destination block the exit returns to.
	Target *prog.Block
	// Ctx is the inlining context of the copy of From.
	Ctx string
	// Linked records the package this exit was retargeted into, if any.
	Linked *Package
}

// Package is one extracted, phase-specialized code package.
type Package struct {
	Fn      *prog.Func
	PhaseID int
	Root    *prog.Func // original root function

	// Entries maps original entry blocks to their copies; launch points
	// in original code are retargeted to these.
	Entries map[*prog.Block]*prog.Block
	// Exits lists the package's side exits in creation order.
	Exits []*Exit

	// copies indexes every copied block by (original, context).
	copies map[ctxKey]*prog.Block
	// Branches counts conditional branch blocks, the denominator of the
	// paper's link-rank ratio.
	Branches int
	// InlinedCalls counts partial-inlining expansions performed.
	InlinedCalls int
	// CalleeRoots lists region functions that could not be inlined and
	// therefore stayed as calls (they become roots themselves).
	CalleeRoots []*prog.Func
}

// CopyOf returns the package's copy of an original block under the given
// inlining context, or nil.
func (pk *Package) CopyOf(orig *prog.Block, ctx string) *prog.Block {
	return pk.copies[ctxKey{orig, ctx}]
}

// EachCopy visits every (original block, context, copy) triple in the
// package in a deterministic order: original block ID, then context.
func (pk *Package) EachCopy(f func(orig *prog.Block, ctx string, copy *prog.Block)) {
	keys := make([]ctxKey, 0, len(pk.copies))
	for k := range pk.copies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].orig.ID != keys[j].orig.ID {
			return keys[i].orig.ID < keys[j].orig.ID
		}
		return keys[i].ctx < keys[j].ctx
	})
	for _, k := range keys {
		f(k.orig, k.ctx, pk.copies[k])
	}
}

// Result is the outcome of building and installing all packages.
type Result struct {
	Packages []*Package
	// Groups holds same-root package groups in their chosen link order.
	Groups map[*prog.Func][]*Package
	// Links counts exit retargets into sibling packages.
	Links int
	// Monitors counts dynamic-launch monitoring snippets inserted (only
	// with Config.DynamicLaunch).
	Monitors int
	// LaunchPoints counts original-code arcs or call sites retargeted into
	// packages.
	LaunchPoints int
	// OrigInsts is the static instruction count before extraction;
	// AddedInsts the instructions added by packages; SelectedInsts the
	// distinct original instructions selected into at least one package.
	OrigInsts     int
	AddedInsts    int
	SelectedInsts int
}

// CodeGrowth returns AddedInsts/OrigInsts.
func (r *Result) CodeGrowth() float64 {
	if r.OrigInsts == 0 {
		return 0
	}
	return float64(r.AddedInsts) / float64(r.OrigInsts)
}

// SelectedFraction returns SelectedInsts/OrigInsts.
func (r *Result) SelectedFraction() float64 {
	if r.OrigInsts == 0 {
		return 0
	}
	return float64(r.SelectedInsts) / float64(r.OrigInsts)
}

// Replication returns AddedInsts/SelectedInsts, the paper's ~2.6 factor.
func (r *Result) Replication() float64 {
	if r.SelectedInsts == 0 {
		return 0
	}
	return float64(r.AddedInsts) / float64(r.SelectedInsts)
}

// funcSpec is the pruned view of one region function: which blocks are in,
// which arcs are internal, and whether partial inlining is legal.
type funcSpec struct {
	fn  *prog.Func
	reg *region.Region
	// hot is the inclusion set: Hot blocks reachable from the spec's entry
	// set through included arcs.
	hot map[*prog.Block]bool
	// entries are blocks with no included forward in-arc (roots of the hot
	// subgraph, §3.3.2).
	entries []*prog.Block
	// inlinable: has hot prologue, hot epilogue (RET block) and a hot path
	// between them (§3.3.3).
	inlinable bool
	// selfRecursive: calls itself from a hot block.
	selfRecursive bool
	liveness      *prog.Liveness
}

// arcIncluded reports whether an arc is part of the extracted region: it
// must be Hot and its destination block Hot.
func arcIncluded(reg *region.Region, k region.ArcKey) bool {
	d := k.Dest()
	return reg.ArcTemp[k] == region.Hot && d != nil && reg.BlockTemp[d] == region.Hot
}

// buildSpec analyzes one function's hot subgraph for a region.
func buildSpec(reg *region.Region, fn *prog.Func, hotBlocks []*prog.Block) *funcSpec {
	s := &funcSpec{
		fn:  fn,
		reg: reg,
		hot: make(map[*prog.Block]bool, len(hotBlocks)),
	}
	hotSet := make(map[*prog.Block]bool, len(hotBlocks))
	for _, b := range hotBlocks {
		hotSet[b] = true
	}
	back := prog.BackEdges(fn)

	// Entry candidates: hot blocks with no included forward in-arc.
	var outs []region.ArcKey
	hasHotIn := make(map[*prog.Block]bool)
	for _, b := range hotBlocks {
		outs = region.OutArcs(b, outs[:0])
		for _, k := range outs {
			d := k.Dest()
			if hotSet[d] && arcIncluded(reg, k) && !back[prog.Edge{From: b, To: d}] {
				hasHotIn[d] = true
			}
		}
	}
	for _, b := range hotBlocks {
		if !hasHotIn[b] {
			s.entries = append(s.entries, b)
		}
	}
	sort.Slice(s.entries, func(i, j int) bool { return s.entries[i].ID < s.entries[j].ID })

	// Reachability from entries through included arcs defines the final
	// inclusion set; disjoint hot segments are discarded (§3.3.3).
	work := append([]*prog.Block(nil), s.entries...)
	for _, b := range work {
		s.hot[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		outs = region.OutArcs(b, outs[:0])
		for _, k := range outs {
			d := k.Dest()
			if hotSet[d] && arcIncluded(reg, k) && !s.hot[d] {
				s.hot[d] = true
				work = append(work, d)
			}
		}
	}

	// Inlinability: prologue = function entry block hot & included;
	// epilogue = an included RET block reachable from the prologue.
	prologue := fn.Entry()
	if s.hot[prologue] {
		seen := map[*prog.Block]bool{prologue: true}
		stack := []*prog.Block{prologue}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if b.Kind == prog.TermRet {
				s.inlinable = true
				break
			}
			outs = region.OutArcs(b, outs[:0])
			for _, k := range outs {
				d := k.Dest()
				if s.hot[d] && arcIncluded(reg, k) && !seen[d] {
					seen[d] = true
					stack = append(stack, d)
				}
			}
		}
	}

	for b := range s.hot {
		if b.Kind == prog.TermCall && b.Callee == fn {
			s.selfRecursive = true
		}
	}
	s.liveness = prog.ComputeLiveness(fn)
	return s
}

// rootFuncs picks the region's root functions per §3.3.2: functions with no
// region-internal callers (ignoring call-graph back edges), functions that
// cannot be inlined, and self-recursive functions.
func rootFuncs(p *prog.Program, specs map[*prog.Func]*funcSpec) []*prog.Func {
	// Region call graph over spec'd functions: arcs from hot call blocks.
	callees := make(map[*prog.Func][]*prog.Func)
	for fn, s := range specs {
		seen := map[*prog.Func]bool{}
		for b := range s.hot {
			if b.Kind == prog.TermCall && b.Callee != nil && specs[b.Callee] != nil &&
				b.Callee != fn && !seen[b.Callee] {
				seen[b.Callee] = true
				callees[fn] = append(callees[fn], b.Callee)
			}
		}
	}
	// DFS from every function to find call-graph back edges.
	backCallers := make(map[*prog.Func]map[*prog.Func]bool)
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*prog.Func]uint8)
	var dfs func(f *prog.Func)
	dfs = func(f *prog.Func) {
		color[f] = grey
		for _, c := range callees[f] {
			switch color[c] {
			case white:
				dfs(c)
			case grey:
				if backCallers[c] == nil {
					backCallers[c] = make(map[*prog.Func]bool)
				}
				backCallers[c][f] = true
			}
		}
		color[f] = black
	}
	var ordered []*prog.Func
	for _, f := range p.Funcs {
		if specs[f] != nil {
			ordered = append(ordered, f)
		}
	}
	for _, f := range ordered {
		if color[f] == white {
			dfs(f)
		}
	}

	hasForwardCaller := make(map[*prog.Func]bool)
	for f, cs := range callees {
		for _, c := range cs {
			if !backCallers[c][f] {
				hasForwardCaller[c] = true
			}
		}
	}
	var roots []*prog.Func
	for _, f := range ordered {
		s := specs[f]
		switch {
		case !hasForwardCaller[f]:
			roots = append(roots, f)
		case !s.inlinable:
			roots = append(roots, f)
		case s.selfRecursive:
			roots = append(roots, f)
		}
	}
	return roots
}

func ctxAppend(ctx string, callSite *prog.Block) string {
	if ctx == "" {
		return strconv.Itoa(callSite.ID)
	}
	return ctx + "." + strconv.Itoa(callSite.ID)
}

func pkgName(root *prog.Func, phaseID, n int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s.pkg.p%d", root.Name, phaseID)
	if n > 0 {
		fmt.Fprintf(&sb, ".%d", n)
	}
	return sb.String()
}
