package pack

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/region"
)

// builder constructs the packages of one region (one phase).
type builder struct {
	cfg   Config
	p     *prog.Program
	reg   *region.Region
	specs map[*prog.Func]*funcSpec
}

type pendingCall struct {
	copyBlock *prog.Block // the call block's copy inside the package
	origBlock *prog.Block // the original call block (context element)
	callee    *prog.Func
	ctx       string      // context of copyBlock
	cont      *prog.Block // continuation inside the package (copy or exit)
}

// BuildPhase constructs all packages for one identified region. It appends
// package functions to the program but does not patch launch points —
// installation happens after every phase's packages exist so linking and
// ordering can see the whole group.
func BuildPhase(cfg Config, p *prog.Program, reg *region.Region) ([]*Package, error) {
	return BuildPhaseObserved(cfg, p, reg, obs.Nop{})
}

// BuildPhaseObserved is BuildPhase reporting to an observer: each
// constructed package emits a PackageBuilt event (Name = package function,
// N = block count) and bumps the pack.* counters.
func BuildPhaseObserved(cfg Config, p *prog.Program, reg *region.Region, o obs.Observer) ([]*Package, error) {
	hot := reg.HotBlocks()
	if len(hot) == 0 {
		return nil, fmt.Errorf("pack: phase %d has no hot blocks", reg.PhaseID)
	}
	b := &builder{cfg: cfg, p: p, reg: reg, specs: make(map[*prog.Func]*funcSpec)}
	for _, fn := range reg.HotFuncs(p) {
		if fn.IsPackage {
			// Profiles gathered on already-packed programs could name
			// package code; regions are only formed over original code.
			continue
		}
		b.specs[fn] = buildSpec(reg, fn, hot[fn])
	}
	if len(b.specs) == 0 {
		return nil, fmt.Errorf("pack: phase %d has hot blocks only in package code", reg.PhaseID)
	}
	roots := rootFuncs(p, b.specs)
	if len(roots) == 0 {
		return nil, fmt.Errorf("pack: phase %d found no root functions", reg.PhaseID)
	}
	var pkgs []*Package
	for i, root := range roots {
		pk, err := b.buildPackage(root, i)
		if err != nil {
			return nil, err
		}
		if pk != nil {
			pkgs = append(pkgs, pk)
		}
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("pack: phase %d produced no packages", reg.PhaseID)
	}
	for _, pk := range pkgs {
		o.Emit(obs.Event{Kind: obs.PackageBuilt, Phase: pk.PhaseID, Name: pk.Fn.Name, N: int64(len(pk.Fn.Blocks))})
		o.Count("pack.packages", 1)
		o.Count("pack.package_blocks", int64(len(pk.Fn.Blocks)))
		o.Count("pack.inlined_calls", int64(pk.InlinedCalls))
	}
	return pkgs, nil
}

// buildPackage extracts one package rooted at root.
func (b *builder) buildPackage(root *prog.Func, seq int) (*Package, error) {
	s := b.specs[root]
	if len(s.entries) == 0 || len(s.hot) == 0 {
		return nil, nil // nothing reachable to extract
	}
	pk := &Package{
		Fn:      b.p.AddFunc(pkgName(root, b.reg.PhaseID, seq)),
		PhaseID: b.reg.PhaseID,
		Root:    root,
		Entries: make(map[*prog.Block]*prog.Block),
		copies:  make(map[ctxKey]*prog.Block),
	}
	pk.Fn.IsPackage = true
	pk.Fn.PhaseID = b.reg.PhaseID

	var pending []pendingCall
	m := b.instantiate(pk, s, "", s.entries, &pending)
	for _, e := range s.entries {
		if c, ok := m[e]; ok {
			pk.Entries[e] = c
		}
	}
	// The copy of the root's function entry must lead the layout so the
	// package can be the target of retargeted call sites.
	if c, ok := m[root.Entry()]; ok {
		blocks := pk.Fn.Blocks
		for i, blk := range blocks {
			if blk == c && i != 0 {
				copy(blocks[1:i+1], blocks[:i])
				blocks[0] = c
				break
			}
		}
	}

	inlined := make(map[*prog.Func]int)
	for len(pending) > 0 {
		pc := pending[0]
		pending = pending[1:]
		cs := b.specs[pc.callee]
		limit := b.cfg.MaxInlineCopies
		if cs != nil && (pc.callee == root || cs.selfRecursive) {
			// A single self-copy is allowed (§3.3.2); deeper recursion
			// re-enters optimized code through a call. The same bound
			// applies when inlining a self-recursive callee into another
			// root's package — without it the copy chain would unroll to
			// MaxInlineCopies.
			limit = 1
		}
		switch {
		case cs == nil:
			return nil, fmt.Errorf("pack: pending call to un-spec'd function %s", pc.callee.Name)
		case !cs.inlinable:
			// Leave the call to original code; the callee becomes a root
			// of its own package (rule b) and its launch point will catch
			// the call entry.
			pk.CalleeRoots = append(pk.CalleeRoots, pc.callee)
			pc.copyBlock.Kind = prog.TermCall
			pc.copyBlock.Callee = pc.callee
			pc.copyBlock.Next = pc.cont
		case inlined[pc.callee] >= limit:
			if pc.callee == root && pk.Fn.Entry() != nil && pk.Fn.Entry() == m[root.Entry()] {
				// Recursion beyond the inlined copy re-enters the package.
				pc.copyBlock.Kind = prog.TermCall
				pc.copyBlock.Callee = pk.Fn
				pc.copyBlock.Next = pc.cont
			} else {
				pc.copyBlock.Kind = prog.TermCall
				pc.copyBlock.Callee = pc.callee
				pc.copyBlock.Next = pc.cont
			}
		default:
			inlined[pc.callee]++
			pk.InlinedCalls++
			ctx := ctxAppend(pc.ctx, pc.origBlock)
			m2 := b.instantiate(pk, cs, ctx, []*prog.Block{cs.fn.Entry()}, &pending)
			prologue := m2[cs.fn.Entry()]
			if prologue == nil {
				return nil, fmt.Errorf("pack: inlinable callee %s lost its prologue", pc.callee.Name)
			}
			// Replace the call: materialize the continuation address into
			// RRA so side exits into original callee code still return to
			// the package, then fall into the inlined prologue.
			pc.copyBlock.Kind = prog.TermFall
			pc.copyBlock.Callee = nil
			pc.copyBlock.Next = prologue
			pc.copyBlock.Insts = append(pc.copyBlock.Insts, prog.Ins{
				Inst:        isa.Inst{Op: isa.LA, Rd: isa.RRA},
				BlockTarget: pc.cont,
			})
			// Inlined returns fall through to the continuation.
			for ob, cb := range m2 {
				if ob.Kind == prog.TermRet && cb.Kind == prog.TermRet {
					cb.Kind = prog.TermFall
					cb.Next = pc.cont
				}
			}
		}
	}
	for _, blk := range pk.Fn.Blocks {
		if blk.Kind == prog.TermBranch {
			pk.Branches++
		}
	}
	return pk, nil
}

// instantiate copies spec's hot subgraph reachable from roots into pk under
// the given context, wiring internal arcs to copies and pruned arcs to
// fresh exit blocks. Call blocks whose callee has a spec are enqueued on
// pending for partial inlining.
func (b *builder) instantiate(pk *Package, s *funcSpec, ctx string, roots []*prog.Block, pending *[]pendingCall) map[*prog.Block]*prog.Block {
	// BFS for a deterministic inclusion order.
	included := make(map[*prog.Block]bool)
	var order []*prog.Block
	var work []*prog.Block
	for _, r := range roots {
		if s.hot[r] && !included[r] {
			included[r] = true
			order = append(order, r)
			work = append(work, r)
		}
	}
	var outs []region.ArcKey
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		outs = region.OutArcs(blk, outs[:0])
		for _, k := range outs {
			d := k.Dest()
			if s.hot[d] && arcIncluded(b.reg, k) && !included[d] {
				included[d] = true
				order = append(order, d)
				work = append(work, d)
			}
		}
	}

	m := make(map[*prog.Block]*prog.Block, len(order))
	for _, ob := range order {
		cb := &prog.Block{
			Insts:  append([]prog.Ins(nil), ob.Insts...),
			Kind:   ob.Kind,
			CmpOp:  ob.CmpOp,
			Rs1:    ob.Rs1,
			Rs2:    ob.Rs2,
			Origin: prog.OriginRoot(ob),
		}
		b.p.AdoptBlock(pk.Fn, cb)
		m[ob] = cb
		pk.copies[ctxKey{ob, ctx}] = cb
	}
	// Wire arcs.
	for _, ob := range order {
		cb := m[ob]
		switch ob.Kind {
		case prog.TermBranch:
			cb.Taken = b.resolveArc(pk, s, ctx, ob, true, m)
			cb.Next = b.resolveArc(pk, s, ctx, ob, false, m)
		case prog.TermFall:
			cb.Next = b.resolveArc(pk, s, ctx, ob, false, m)
		case prog.TermCall:
			cont := b.resolveArc(pk, s, ctx, ob, false, m)
			if b.specs[ob.Callee] != nil {
				// Defer: partial inlining decides what this becomes.
				*pending = append(*pending, pendingCall{
					copyBlock: cb, origBlock: ob, callee: ob.Callee, ctx: ctx, cont: cont,
				})
				cb.Next = cont // placeholder until the pending entry is resolved
				cb.Callee = ob.Callee
			} else {
				cb.Callee = ob.Callee
				cb.Next = cont
			}
		case prog.TermRet, prog.TermHalt:
			// nothing to wire
		}
	}
	return m
}

// resolveArc returns the in-package destination for one of ob's arcs:
// either the copy of an included destination or a fresh exit block that
// transfers back to the original destination.
func (b *builder) resolveArc(pk *Package, s *funcSpec, ctx string, ob *prog.Block, takenDir bool, m map[*prog.Block]*prog.Block) *prog.Block {
	k := region.ArcKey{From: ob, Taken: takenDir}
	d := k.Dest()
	if d == nil {
		return nil
	}
	if c, ok := m[d]; ok && arcIncluded(b.reg, k) {
		return c
	}
	// Pruned arc: build an exit block carrying the dummy-consumer set for
	// the registers live into the original destination (§3.3.1).
	eb := &prog.Block{
		Kind:         prog.TermFall,
		Next:         d,
		ExitConsumes: s.liveness.In[d].Regs(),
		Origin:       prog.OriginRoot(ob),
	}
	b.p.AdoptBlock(pk.Fn, eb)
	pk.Exits = append(pk.Exits, &Exit{
		Block:    eb,
		From:     ob,
		TakenDir: takenDir,
		Target:   d,
		Ctx:      ctx,
	})
	return eb
}
