// Bounded worker-pool discipline shared by the suite runner and the
// daemon tooling (cmd/vpackd's repack queue drain, vpbench's load
// generator): fixed worker count, work handed out by index, results
// written into caller-owned slots so completion order never leaks into
// output order.
package report

import "sync"

// ForEachN invokes fn(i) for every i in [0, n), running at most workers
// invocations concurrently. workers <= 1 (or n < 2) degenerates to an
// inline sequential loop in index order. fn must write results into
// per-index slots; ForEachN provides no ordering between concurrent
// invocations beyond returning only after all complete.
func ForEachN(workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
