package report

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/phasedb"
)

func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Table1 renders the benchmark/input inventory with dynamic instruction
// counts (the reproduction's analogue of the paper's Table 1).
func (s *Suite) Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1. Benchmarks and inputs used in experiments.\n")
	fmt.Fprintf(&sb, "%-10s %-5s %-42s %12s %12s\n", "Benchmark", "Input", "Stands in for", "# of Inst", "# of Branch")
	for _, r := range s.Results {
		fmt.Fprintf(&sb, "%-10s %-5s %-42s %12d %12d\n", r.Bench, r.Input, r.Paper, r.DynInsts, r.Branches)
	}
	return sb.String()
}

// Table2 renders the machine model (the paper's Table 2).
func Table2(mc cpu.Config) string {
	var sb strings.Builder
	sb.WriteString("Table 2. Simulated EPIC machine model.\n")
	rows := [][2]string{
		{"Instruction issue", fmt.Sprintf("%d units", mc.IssueWidth)},
		{"Integer ALU", fmt.Sprintf("%d units", mc.IntALUs)},
		{"Floating point unit", fmt.Sprintf("%d units", mc.FPUnits)},
		{"Memory unit", fmt.Sprintf("%d units", mc.MemUnits)},
		{"Branch unit", fmt.Sprintf("%d units", mc.BranchUnits)},
		{"L1 data cache", fmt.Sprintf("%d KB", mc.L1DSizeBytes>>10)},
		{"L1 instruction cache", fmt.Sprintf("%d KB", mc.L1ISizeBytes>>10)},
		{"Unified L2 cache", fmt.Sprintf("%d KB", mc.L2SizeBytes>>10)},
		{"Cache associativity", fmt.Sprintf("%d-way", mc.CacheWays)},
		{"L2 latency", fmt.Sprintf("%d cycles", mc.L2Latency)},
		{"Memory latency", fmt.Sprintf("%d cycles", mc.MemLatency)},
		{"RAS size", fmt.Sprintf("%d entry", mc.RASEntries)},
		{"BTB size", fmt.Sprintf("%d entry", mc.BTBEntries)},
		{"Branch resolution", fmt.Sprintf("%d cycles", mc.BranchResolution)},
		{"Branch predictor", fmt.Sprintf("%d-bit history gshare", mc.GshareBits)},
	}
	for _, row := range rows {
		fmt.Fprintf(&sb, "  %-24s %s\n", row[0], row[1])
	}
	return sb.String()
}

func variantHeaders() []string {
	return []string{"noInf/noLink", "noInf/link", "inf/noLink", "inf/link"}
}

// Figure8 renders package coverage per input under the four configurations.
func (s *Suite) Figure8() string {
	var sb strings.Builder
	sb.WriteString("Figure 8. Percent of dynamic instructions from within packages.\n")
	fmt.Fprintf(&sb, "%-10s %-5s", "Benchmark", "Input")
	for _, h := range variantHeaders() {
		fmt.Fprintf(&sb, " %12s", h)
	}
	sb.WriteString("  [inf/link]\n")
	sums := make([]float64, 4)
	for _, r := range s.Results {
		fmt.Fprintf(&sb, "%-10s %-5s", r.Bench, r.Input)
		for i, v := range r.Variants {
			fmt.Fprintf(&sb, " %11.1f%%", v.Coverage*100)
			sums[i] += v.Coverage
		}
		fmt.Fprintf(&sb, "  %s\n", bar(r.Full().Coverage, 25))
	}
	fmt.Fprintf(&sb, "%-10s %-5s", "average", "")
	n := float64(len(s.Results))
	for _, x := range sums {
		fmt.Fprintf(&sb, " %11.1f%%", x/n*100)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Table3 renders static code expansion for the full configuration.
func (s *Suite) Table3() string {
	var sb strings.Builder
	sb.WriteString("Table 3. Code Expansion (inference + linking).\n")
	fmt.Fprintf(&sb, "%-10s %-5s %12s %16s %12s\n",
		"Benchmark", "Input", "% Incr size", "% Static selected", "Replication")
	var g, sel, rep float64
	for _, r := range s.Results {
		v := r.Full()
		fmt.Fprintf(&sb, "%-10s %-5s %12.1f %16.1f %12.2f\n",
			r.Bench, r.Input, v.Growth*100, v.Selected*100, v.Repl)
		g += v.Growth
		sel += v.Selected
		rep += v.Repl
	}
	n := float64(len(s.Results))
	fmt.Fprintf(&sb, "%-10s %-5s %12.1f %16.1f %12.2f\n", "average", "", g/n*100, sel/n*100, rep/n)
	return sb.String()
}

// Figure9 renders the hot-spot branch categorization, dynamic-weighted.
func (s *Suite) Figure9() string {
	var sb strings.Builder
	sb.WriteString("Figure 9. Categorization of hot spot branch behavior (dynamic-weighted).\n")
	fmt.Fprintf(&sb, "%-10s %-5s", "Benchmark", "Input")
	for c := phasedb.Category(0); c < phasedb.NumCategories; c++ {
		fmt.Fprintf(&sb, " %14s", c)
	}
	sb.WriteString("\n")
	var sums [phasedb.NumCategories]float64
	for _, r := range s.Results {
		fmt.Fprintf(&sb, "%-10s %-5s", r.Bench, r.Input)
		for c := phasedb.Category(0); c < phasedb.NumCategories; c++ {
			f := r.Categories.Fraction(c)
			sums[c] += f
			fmt.Fprintf(&sb, " %13.1f%%", f*100)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-10s %-5s", "average", "")
	n := float64(len(s.Results))
	for c := phasedb.Category(0); c < phasedb.NumCategories; c++ {
		fmt.Fprintf(&sb, " %13.1f%%", sums[c]/n*100)
	}
	sb.WriteString("\n")
	return sb.String()
}

// Figure10 renders speedup per input under the four configurations.
func (s *Suite) Figure10() string {
	var sb strings.Builder
	sb.WriteString("Figure 10. Performance speedup from relayout and rescheduling of packages.\n")
	fmt.Fprintf(&sb, "%-10s %-5s", "Benchmark", "Input")
	for _, h := range variantHeaders() {
		fmt.Fprintf(&sb, " %12s", h)
	}
	sb.WriteString("  equivalence\n")
	sums := make([]float64, 4)
	allEq := true
	for _, r := range s.Results {
		fmt.Fprintf(&sb, "%-10s %-5s", r.Bench, r.Input)
		eq := true
		for i, v := range r.Variants {
			fmt.Fprintf(&sb, " %12.3f", v.Speedup)
			sums[i] += v.Speedup
			eq = eq && v.Equivalent
		}
		allEq = allEq && eq
		mark := "ok"
		if !eq {
			mark = "DIVERGED"
		}
		fmt.Fprintf(&sb, "  %s\n", mark)
	}
	fmt.Fprintf(&sb, "%-10s %-5s", "average", "")
	n := float64(len(s.Results))
	for _, x := range sums {
		fmt.Fprintf(&sb, " %12.3f", x/n)
	}
	if allEq {
		sb.WriteString("  all runs functionally equivalent\n")
	} else {
		sb.WriteString("  SOME RUNS DIVERGED\n")
	}
	return sb.String()
}
