package report

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
)

// storeOpts builds a small-suite Options bound to a store.
func storeOpts(t *testing.T, dir string, o obs.Observer) (Options, *cas.Store) {
	t.Helper()
	s, err := cas.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim"},
		ScaleOverride: 1,
		Observer:      o,
		Store:         s,
	}, s
}

// stripElapsed zeroes wall-clock fields so suites compare structurally.
func stripElapsed(s *Suite) *Suite {
	cp := *s
	cp.Elapsed = 0
	cp.Results = append([]InputResult(nil), s.Results...)
	for i := range cp.Results {
		cp.Results[i].Elapsed = 0
	}
	return &cp
}

// TestRunSuiteStoreWarm is the acceptance test for the warm path: a
// cold store-backed run misses everything and writes through; the warm
// rerun hits everything — store hits == expected, zero misses — and
// executes zero profile, region and package stages, with results
// bit-identical to the cold run.
func TestRunSuiteStoreWarm(t *testing.T) {
	dir := t.TempDir()

	recCold := obs.NewRecorder()
	optsCold, st := storeOpts(t, dir, recCold)
	cold, err := RunSuite(optsCold)
	if err != nil {
		t.Fatal(err)
	}
	// m88ksim has one input and four variants.
	if cold.StoreProfileMisses != 1 || cold.StorePackageMisses != 4 {
		t.Fatalf("cold misses = %d/%d, want 1/4", cold.StoreProfileMisses, cold.StorePackageMisses)
	}
	if cold.StoreProfileHits != 0 || cold.StorePackageHits != 0 {
		t.Fatalf("cold hits = %d/%d, want 0/0", cold.StoreProfileHits, cold.StorePackageHits)
	}
	if cold.StoreBytes == 0 || cold.StoreSegments == 0 {
		t.Fatalf("cold run persisted nothing: %+v", cold)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm rerun against a fresh handle on the same directory.
	recWarm := obs.NewRecorder()
	optsWarm, _ := storeOpts(t, dir, recWarm)
	warm, err := RunSuite(optsWarm)
	if err != nil {
		t.Fatal(err)
	}
	if warm.StoreProfileHits != 1 || warm.StorePackageHits != 4 {
		t.Fatalf("warm hits = %d/%d, want 1/4", warm.StoreProfileHits, warm.StorePackageHits)
	}
	if warm.StoreProfileMisses != 0 || warm.StorePackageMisses != 0 {
		t.Fatalf("warm misses = %d/%d, want 0/0", warm.StoreProfileMisses, warm.StorePackageMisses)
	}

	// The warm trace contains no profile/region/package stage spans —
	// those stages never ran.
	warmTrace := recWarm.Export()
	for _, sp := range warmTrace.SpanTotals() {
		switch sp.Name {
		case obs.StageProfile, obs.StageRegion, obs.StagePackage, obs.StageLink, obs.StageOptimize, obs.StageFilter:
			t.Errorf("warm run executed stage %q %d times", sp.Name, sp.Count)
		}
	}
	// The memo never computed either: every profile() call was a hit on
	// the primed entry.
	if n := warmTrace.Metrics.Counters["profile_memo.misses"]; n != 0 {
		t.Errorf("warm run recorded %d profile_memo.misses, want 0", n)
	}
	if n := warmTrace.Metrics.Counters[obs.StoreMissesCounter]; n != 0 {
		t.Errorf("warm run recorded %d store.misses, want 0", n)
	}
	if n := warmTrace.Metrics.Counters[obs.StoreHitsCounter]; n != 5 {
		t.Errorf("warm run recorded %d store.hits, want 5", n)
	}

	// Timed evaluation is deterministic, so warm results equal cold
	// results exactly — coverage, speedup, growth, equivalence, engine
	// counters, everything but wall time and the hit/miss tally itself.
	a, b := stripElapsed(cold), stripElapsed(warm)
	a.StoreProfileHits, a.StoreProfileMisses, a.StorePackageHits, a.StorePackageMisses = 0, 0, 0, 0
	b.StoreProfileHits, b.StoreProfileMisses, b.StorePackageHits, b.StorePackageMisses = 0, 0, 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("warm suite differs from cold:\ncold: %+v\nwarm: %+v", a, b)
	}
}

// TestRunSuiteStoreMatchesStoreless: results with a store (cold) are
// bit-identical to results without one, and storeless runs report zero
// store traffic.
func TestRunSuiteStoreMatchesStoreless(t *testing.T) {
	plain, err := RunSuite(Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim"},
		ScaleOverride: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.StoreProfileHits+plain.StoreProfileMisses+plain.StorePackageHits+plain.StorePackageMisses != 0 {
		t.Fatalf("storeless run reported store traffic: %+v", plain)
	}
	opts, _ := storeOpts(t, t.TempDir(), nil)
	stored, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := stripElapsed(plain), stripElapsed(stored)
	// Store fields differ by construction; compare the science.
	a.StoreProfileMisses, a.StorePackageMisses = 0, 0
	b.StoreProfileMisses, b.StorePackageMisses = 0, 0
	a.StoreBytes, a.StoreSegments = 0, 0
	b.StoreBytes, b.StoreSegments = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatal("store-backed cold results differ from storeless results")
	}
}

// normalizedTraceJSON renders a recorder's normalized trace for
// byte-exact comparison.
func normalizedTraceJSON(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Export().Normalize().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunSuiteStoreParallelDeterminism: warm store runs produce
// identical traces at -j1 and -j4 (the store counters merge in paper
// order like everything else), and identical results.
func TestRunSuiteStoreParallelDeterminism(t *testing.T) {
	dir := t.TempDir()
	seed, _ := storeOpts(t, dir, nil)
	if _, err := RunSuite(seed); err != nil {
		t.Fatal(err)
	}

	run := func(jobs int) (*Suite, []byte) {
		rec := obs.NewRecorder()
		opts, _ := storeOpts(t, dir, rec)
		opts.Benchmarks = []string{"m88ksim"}
		opts.Jobs = jobs
		s, err := RunSuite(opts)
		if err != nil {
			t.Fatal(err)
		}
		return s, normalizedTraceJSON(t, rec)
	}
	s1, t1 := run(1)
	s4, t4 := run(4)
	if !reflect.DeepEqual(stripElapsed(s1), stripElapsed(s4)) {
		t.Fatal("warm results differ across -j")
	}
	if string(t1) != string(t4) {
		t.Fatal("warm traces differ across -j")
	}
}

// TestRunSuiteStoreEquivKeying is the regression gate for Config.Hash
// incorporating the equiv knobs: a store primed by a non-equiv run must
// NOT serve its package sets to an equiv-enabled run (the cached sets
// carry no certificates), and changing the path budget re-keys again.
func TestRunSuiteStoreEquivKeying(t *testing.T) {
	dir := t.TempDir()
	seed, st := storeOpts(t, dir, nil)
	if _, err := RunSuite(seed); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Equiv on: profiles may hit (ProfileKey ignores equiv knobs), but
	// every package stage must miss and recompute with proofs.
	opts, st2 := storeOpts(t, dir, nil)
	opts.Core.Equiv = true
	s, err := RunSuite(opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.StorePackageHits != 0 || s.StorePackageMisses != 4 {
		t.Fatalf("equiv-on run against non-equiv store: package hits/misses = %d/%d, want 0/4",
			s.StorePackageHits, s.StorePackageMisses)
	}
	if s.StoreProfileHits != 1 {
		t.Errorf("profile reuse should survive equiv (ProfileKey unchanged): hits = %d, want 1", s.StoreProfileHits)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// Same equiv config again: warm.
	warmOpts, st3 := storeOpts(t, dir, nil)
	warmOpts.Core.Equiv = true
	warm, err := RunSuite(warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.StorePackageHits != 4 || warm.StorePackageMisses != 0 {
		t.Fatalf("equiv-on warm rerun: package hits/misses = %d/%d, want 4/0",
			warm.StorePackageHits, warm.StorePackageMisses)
	}
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}

	// A different path budget is a different proof; it must re-key.
	budgetOpts, _ := storeOpts(t, dir, nil)
	budgetOpts.Core.Equiv = true
	budgetOpts.Core.EquivMaxPaths = 128
	b, err := RunSuite(budgetOpts)
	if err != nil {
		t.Fatal(err)
	}
	if b.StorePackageHits != 0 || b.StorePackageMisses != 4 {
		t.Fatalf("EquivMaxPaths change did not re-key the store: hits/misses = %d/%d, want 0/4",
			b.StorePackageHits, b.StorePackageMisses)
	}
}
