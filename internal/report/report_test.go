package report

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/workload"
)

// runSmallSuite runs two benchmarks at scale 1 and caches the result across
// subtests.
func runSmallSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := RunSuite(Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim", "perl"},
		ScaleOverride: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunSuiteSubset(t *testing.T) {
	s := runSmallSuite(t)
	// m88ksim has 1 input, perl has 3.
	if len(s.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(s.Results))
	}
	for _, r := range s.Results {
		if r.DynInsts == 0 || r.Branches == 0 {
			t.Errorf("%s/%s: empty profile", r.Bench, r.Input)
		}
		if len(r.Variants) != 4 {
			t.Fatalf("%s/%s: %d variants, want 4", r.Bench, r.Input, len(r.Variants))
		}
		for _, v := range r.Variants {
			if !v.Equivalent {
				t.Errorf("%s/%s %s: diverged", r.Bench, r.Input, v.Variant.Name())
			}
			if v.Coverage <= 0 || v.Coverage > 1 {
				t.Errorf("%s/%s: coverage %v out of range", r.Bench, r.Input, v.Coverage)
			}
			if v.Speedup <= 0.5 || v.Speedup > 2 {
				t.Errorf("%s/%s: speedup %v implausible", r.Bench, r.Input, v.Speedup)
			}
		}
		full := r.Full()
		if full == nil || !full.Variant.Inference || !full.Variant.Linking {
			t.Error("Full() did not return the inference+linking variant")
		}
	}
	// m88ksim's linking gain must be visible through the harness too.
	m := s.Results[0]
	if m.Bench != "m88ksim" {
		t.Fatalf("first result = %s, want m88ksim", m.Bench)
	}
	noLink := m.Variants[2] // inf, no link
	link := m.Variants[3]   // inf + link
	if link.Coverage <= noLink.Coverage {
		t.Errorf("linking should raise m88ksim coverage: %.2f vs %.2f", link.Coverage, noLink.Coverage)
	}
}

func TestFormatters(t *testing.T) {
	s := runSmallSuite(t)
	t1 := s.Table1()
	if !strings.Contains(t1, "m88ksim") || !strings.Contains(t1, "# of Inst") {
		t.Error("Table1 malformed")
	}
	t2 := Table2(cpu.DefaultConfig())
	for _, want := range []string{"8 units", "512 KB", "gshare", "1024 entry"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
	f8 := s.Figure8()
	if !strings.Contains(f8, "noInf/noLink") || !strings.Contains(f8, "average") {
		t.Error("Figure8 malformed")
	}
	t3 := s.Table3()
	if !strings.Contains(t3, "Replication") {
		t.Error("Table3 malformed")
	}
	f9 := s.Figure9()
	if !strings.Contains(f9, "Multi High") {
		t.Error("Figure9 malformed")
	}
	f10 := s.Figure10()
	if !strings.Contains(f10, "functionally equivalent") {
		t.Error("Figure10 should confirm equivalence")
	}
}

// TestRunSuiteParallelDeterminism asserts that a parallel run assembles
// results in paper order and renders every table and figure byte-identical
// to a fully sequential run, regardless of worker completion order.
func TestRunSuiteParallelDeterminism(t *testing.T) {
	opts := Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim", "perl", "li"},
		ScaleOverride: 1,
	}
	seqOpts := opts
	seqOpts.Jobs = 1
	seq, err := RunSuite(seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	parOpts := opts
	parOpts.Jobs = 4
	par, err := RunSuite(parOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("result counts differ: %d vs %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		s, p := &seq.Results[i], &par.Results[i]
		if s.Bench != p.Bench || s.Input != p.Input {
			t.Fatalf("result %d order differs: %s/%s vs %s/%s", i, s.Bench, s.Input, p.Bench, p.Input)
		}
	}
	renders := []struct {
		name     string
		seq, par string
	}{
		{"Table1", seq.Table1(), par.Table1()},
		{"Table3", seq.Table3(), par.Table3()},
		{"Figure8", seq.Figure8(), par.Figure8()},
		{"Figure9", seq.Figure9(), par.Figure9()},
		{"Figure10", seq.Figure10(), par.Figure10()},
	}
	for _, r := range renders {
		if r.seq != r.par {
			t.Errorf("%s differs between sequential and parallel runs:\n--- seq ---\n%s\n--- par ---\n%s", r.name, r.seq, r.par)
		}
	}
}

// TestRunSuiteAggregatesErrors checks that one bad benchmark name fails
// fast, while per-input pipeline failures would be joined rather than
// aborting the remaining items (exercised via the error path formatting).
func TestRunSuiteAggregatesErrors(t *testing.T) {
	// A scale so small every phase detection starves triggers per-input
	// "no usable phases" errors for every input; all of them must surface.
	opts := Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim", "perl"},
		ScaleOverride: 1,
		Jobs:          2,
	}
	opts.Core.ProfileLimit = 10 // guarantees every input fails mid-profile
	_, err := RunSuite(opts)
	if err == nil {
		t.Fatal("starved profile should fail")
	}
	for _, want := range []string{"m88ksim/A", "perl/A", "perl/B", "perl/C"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %s: %v", want, err)
		}
	}
}

func TestRunSuiteUnknownBenchmark(t *testing.T) {
	_, err := RunSuite(Options{
		Machine:    cpu.DefaultConfig(),
		Core:       core.ScaledConfig(),
		Benchmarks: []string{"nope"},
	})
	if err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestBar(t *testing.T) {
	if bar(0.5, 10) != "#####....." {
		t.Errorf("bar(0.5,10) = %q", bar(0.5, 10))
	}
	if bar(-1, 4) != "...." || bar(2, 4) != "####" {
		t.Error("bar clamping wrong")
	}
}

// observedSuiteTrace runs the small suite with a recorder at the given
// worker count and returns the normalized exported trace.
func observedSuiteTrace(t *testing.T, jobs int) *obs.Trace {
	t.Helper()
	rec := obs.NewRecorder()
	_, err := RunSuite(Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim", "perl"},
		ScaleOverride: 1,
		Jobs:          jobs,
		Observer:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Export().Normalize()
}

// TestRunSuiteObserverDeterministic asserts the merged span/event/metric
// stream is identical at -j 1 and -j 4: per-worker recorders must be
// absorbed in paper order, never completion order.
func TestRunSuiteObserverDeterministic(t *testing.T) {
	seq := observedSuiteTrace(t, 1)
	par := observedSuiteTrace(t, 4)

	if len(seq.Events) == 0 {
		t.Fatal("observed suite emitted no events")
	}
	if !reflect.DeepEqual(seq.Events, par.Events) {
		t.Errorf("event streams differ between -j 1 (%d events) and -j 4 (%d events)",
			len(seq.Events), len(par.Events))
	}
	if !reflect.DeepEqual(seq.Spans, par.Spans) {
		t.Errorf("normalized span trees differ between -j 1 (%d spans) and -j 4 (%d spans)",
			len(seq.Spans), len(par.Spans))
	}
	if !reflect.DeepEqual(seq.Metrics, par.Metrics) {
		t.Errorf("metrics differ between -j 1 and -j 4:\n%+v\n%+v", seq.Metrics, par.Metrics)
	}

	// Every pipeline stage must appear as a span.
	have := make(map[string]bool)
	for _, s := range seq.Spans {
		have[s.Name] = true
	}
	for _, stage := range obs.Stages() {
		if stage == obs.StagePipeline {
			continue // RunSuite drives stages itself; "pipeline" wraps core.RunObserved only
		}
		if !have[stage] {
			t.Errorf("stage %q missing from suite trace", stage)
		}
	}
}

// TestRunSuiteSentinelErrors drives a detector that can never promote a
// candidate branch (its threshold exceeds any reachable counter value), so
// every input fails with ErrNoPhases — which must survive RunSuite's
// wrapping and errors.Join aggregation.
func TestRunSuiteSentinelErrors(t *testing.T) {
	opts := Options{
		Machine:       cpu.DefaultConfig(),
		Core:          core.ScaledConfig(),
		Benchmarks:    []string{"m88ksim"},
		ScaleOverride: 1,
		Jobs:          2,
	}
	opts.Core.Detector.CounterBits = 31
	opts.Core.Detector.CandidateThreshold = 1 << 30
	_, err := RunSuite(opts)
	if err == nil {
		t.Fatal("candidate-starved detector should fail the suite")
	}
	if !errors.Is(err, core.ErrNoPhases) {
		t.Errorf("errors.Is(err, core.ErrNoPhases) = false for %v", err)
	}
}

// TestRunSuiteProfileMemo is the acceptance gate for cross-variant profile
// reuse: with all four variants sharing the profiling sub-config, RunSuite
// must run exactly one profile pass per (bench, input) — misses equal to
// the item count, one hit per variant.
func TestRunSuiteProfileMemo(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		rec := obs.NewRecorder()
		s, err := RunSuite(Options{
			Machine:       cpu.DefaultConfig(),
			Core:          core.ScaledConfig(),
			Benchmarks:    []string{"m88ksim", "perl"},
			ScaleOverride: 1,
			Jobs:          jobs,
			Observer:      rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		tr := rec.Export()
		items := int64(len(s.Results))
		if got := tr.Metrics.Counters["profile_memo.misses"]; got != items {
			t.Errorf("-j %d: profile_memo.misses = %d, want %d (one profile pass per input)", jobs, got, items)
		}
		if got := tr.Metrics.Counters["profile_memo.hits"]; got != 4*items {
			t.Errorf("-j %d: profile_memo.hits = %d, want %d (one hit per variant)", jobs, got, 4*items)
		}
		// The block cache is on by default; every variant's timed run must
		// report its traffic.
		if got := tr.Metrics.Counters["blockcache.misses"]; got <= 0 {
			t.Errorf("-j %d: blockcache.misses = %d, want > 0", jobs, got)
		}
		if got := tr.Metrics.Counters["blockcache.hits"]; got <= 0 {
			t.Errorf("-j %d: blockcache.hits = %d, want > 0", jobs, got)
		}
		if got := tr.Metrics.Counters["blockcache.evictions"]; got != 0 {
			t.Errorf("-j %d: blockcache.evictions = %d, want 0 (per-variant caches never rebind)", jobs, got)
		}
		for _, r := range s.Results {
			for _, v := range r.Variants {
				if v.BlockCacheHits == 0 || v.BlockCacheMisses == 0 {
					t.Errorf("%s/%s %s: block cache traffic (%d hits, %d misses) not recorded",
						r.Bench, r.Input, v.Variant.Name(), v.BlockCacheHits, v.BlockCacheMisses)
				}
			}
		}
	}
}

// TestProfileMemoConcurrent hammers one memo from many goroutines with
// two distinct profiling sub-configs: each key must compute exactly once,
// every caller must see the same shared entry, and the counters must add
// up. Run under -race (verify.sh does) this doubles as the data-race gate
// for the cross-variant sharing.
func TestProfileMemoConcurrent(t *testing.T) {
	bench, err := workload.ByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	img, err := bench.Build(in).Linearize()
	if err != nil {
		t.Fatal(err)
	}
	cfgA := core.ScaledConfig()
	cfgB := core.ScaledConfig()
	cfgB.Detector.CandidateThreshold++ // distinct profiling sub-config

	memo := &profileMemo{}
	rec := obs.NewRecorder()
	const workers = 8
	var wg sync.WaitGroup
	dbs := make([]any, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := cfgA
			if i%2 == 1 {
				cfg = cfgB
			}
			pa, _, err := memo.profile(cfg, cpu.DefaultConfig(), img, rec)
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			dbs[i] = pa.DB()
		}(i)
	}
	wg.Wait()
	for i := 2; i < workers; i++ {
		if dbs[i] != dbs[i%2] {
			t.Errorf("worker %d did not share worker %d's phase database", i, i%2)
		}
	}
	if dbs[0] == dbs[1] {
		t.Error("distinct profiling sub-configs shared one entry")
	}
	tr := rec.Export()
	hits := tr.Metrics.Counters["profile_memo.hits"]
	misses := tr.Metrics.Counters["profile_memo.misses"]
	if misses != 2 {
		t.Errorf("profile_memo.misses = %d, want 2 (one per distinct key)", misses)
	}
	if hits+misses != workers {
		t.Errorf("hits %d + misses %d != %d calls", hits, misses, workers)
	}
}

// observedEquivTrace runs the small suite with -equiv on at the given
// worker count and returns the normalized exported trace.
func observedEquivTrace(t *testing.T, jobs int) *obs.Trace {
	t.Helper()
	cfg := core.ScaledConfig()
	cfg.Equiv = true
	rec := obs.NewRecorder()
	_, err := RunSuite(Options{
		Machine:       cpu.DefaultConfig(),
		Core:          cfg,
		Benchmarks:    []string{"m88ksim", "perl"},
		ScaleOverride: 1,
		Jobs:          jobs,
		Observer:      rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Export().Normalize()
}

// TestRunSuiteEquivDeterministic is the equiv-on determinism gate: with
// translation validation enabled the suite must complete with zero
// violations, prove every package it packs, and emit byte-identical
// golden traces at any worker count — the proof work itself must be
// deterministic and scheduling-independent.
func TestRunSuiteEquivDeterministic(t *testing.T) {
	seq := observedEquivTrace(t, 1)
	par := observedEquivTrace(t, 4)

	if got := seq.Metrics.Counters[obs.EquivViolationsCounter]; got != 0 {
		t.Fatalf("clean suite recorded %d equiv violations", got)
	}
	if got := seq.Metrics.Counters[obs.EquivPackagesCounter]; got <= 0 {
		t.Fatalf("equiv-on suite proved no packages (counter %d)", got)
	}
	if seq.Metrics.Counters[obs.EquivPathsProvedCounter] <= 0 {
		t.Error("equiv-on suite recorded no proved paths")
	}
	if !reflect.DeepEqual(seq.Events, par.Events) {
		t.Errorf("equiv-on event streams differ between -j 1 (%d events) and -j 4 (%d events)",
			len(seq.Events), len(par.Events))
	}
	if !reflect.DeepEqual(seq.Spans, par.Spans) {
		t.Errorf("equiv-on span trees differ between -j 1 and -j 4")
	}
	if !reflect.DeepEqual(seq.Metrics, par.Metrics) {
		t.Errorf("equiv-on metrics differ between -j 1 and -j 4:\n%+v\n%+v", seq.Metrics, par.Metrics)
	}
}
