// Package report runs the evaluation suite and regenerates every table and
// figure of the paper's §5: Table 1 (benchmarks), Table 2 (machine model),
// Figure 8 (package coverage under the four configurations), Table 3 (code
// expansion), Figure 9 (branch categorization) and Figure 10 (speedup).
package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/phasedb"
	"repro/internal/workload"
)

// Options configures a suite run.
type Options struct {
	Machine cpu.Config
	Core    core.Config
	// Benchmarks restricts the suite (nil = all, Table 1 order).
	Benchmarks []string
	// ScaleOverride forces every input's iteration scale (0 = input's own).
	ScaleOverride int64
	// Progress, when non-nil, receives one line per input as it finishes.
	Progress io.Writer
}

// VariantResult is one bar of Figures 8/10 for one input.
type VariantResult struct {
	Variant    core.Variant
	Coverage   float64
	Speedup    float64
	Growth     float64
	Selected   float64
	Repl       float64
	Packages   int
	Links      int
	Launch     int
	Phases     int
	Equivalent bool
}

// InputResult aggregates one benchmark input.
type InputResult struct {
	Bench string
	Input string
	Paper string

	DynInsts   uint64
	Branches   uint64
	Detections uint64
	Phases     int

	Base       cpu.TimingStats
	Variants   []VariantResult
	Categories phasedb.Categorization
}

// Full returns the result for the paper's default configuration
// (inference + linking).
func (ir *InputResult) Full() *VariantResult {
	for i := range ir.Variants {
		v := &ir.Variants[i]
		if v.Variant.Inference && v.Variant.Linking {
			return v
		}
	}
	if len(ir.Variants) > 0 {
		return &ir.Variants[0]
	}
	return nil
}

// Suite is a full evaluation run.
type Suite struct {
	Machine cpu.Config
	Results []InputResult
}

// RunSuite executes the pipeline for every benchmark input and variant.
// Each input is profiled once (collecting baseline timing in the same
// pass); each of the four variants then packages a fresh clone and is
// timed.
func RunSuite(opts Options) (*Suite, error) {
	benches := workload.Ordered()
	if len(opts.Benchmarks) > 0 {
		var sel []*workload.Benchmark
		for _, name := range opts.Benchmarks {
			b, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			sel = append(sel, b)
		}
		benches = sel
	}
	suite := &Suite{Machine: opts.Machine}
	for _, b := range benches {
		for _, in := range b.Inputs {
			if opts.ScaleOverride > 0 {
				in.Scale = opts.ScaleOverride
			}
			ir, err := runInput(opts, b, in)
			if err != nil {
				return nil, fmt.Errorf("report: %s/%s: %w", b.Name, in.Name, err)
			}
			suite.Results = append(suite.Results, *ir)
			if opts.Progress != nil {
				full := ir.Full()
				fmt.Fprintf(opts.Progress, "%-9s %s  %8d insts  %2d phases  cov %5.1f%%  speedup %.3f\n",
					b.Name, in.Name, ir.DynInsts, ir.Phases, full.Coverage*100, full.Speedup)
			}
		}
	}
	return suite, nil
}

func runInput(opts Options, b *workload.Benchmark, in workload.Input) (*InputResult, error) {
	p := b.Build(in)
	img, err := p.Linearize()
	if err != nil {
		return nil, err
	}
	// One pass: HSD profile + baseline timing.
	timing := cpu.NewTiming(opts.Machine, img)
	db, st, err := core.Profile(opts.Core, img, timing.Observe)
	if err != nil {
		return nil, err
	}
	base := timing.Finish()

	ir := &InputResult{
		Bench:      b.Name,
		Input:      in.Name,
		Paper:      b.Paper,
		DynInsts:   st.Insts,
		Branches:   st.Branches,
		Detections: st.Detections,
		Phases:     len(db.Phases),
		Base:       base,
		Categories: db.Categorize(),
	}

	for _, v := range core.Variants() {
		cfg := v.Apply(opts.Core)
		clone := p.Clone()
		// The clone linearizes identically to the profiled program (IDs
		// and layout are preserved), so the phase database's PCs map onto
		// the clone's own image.
		cloneImg, err := clone.Linearize()
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.Name(), err)
		}
		out := &core.Outcome{Original: p, Packed: clone, DB: db}
		if err := core.Package(cfg, out, clone, cloneImg, db); err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.Name(), err)
		}
		packedImg, err := clone.Linearize()
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.Name(), err)
		}
		stats, m, err := cpu.RunTimed(opts.Machine, packedImg, 0)
		if err != nil {
			return nil, fmt.Errorf("variant %s: timed run: %w", v.Name(), err)
		}
		h, n := m.DataHash()
		vr := VariantResult{
			Variant:    v,
			Coverage:   stats.PackageCoverage(),
			Growth:     out.Pack.CodeGrowth(),
			Selected:   out.Pack.SelectedFraction(),
			Repl:       out.Pack.Replication(),
			Packages:   len(out.Pack.Packages),
			Links:      out.Pack.Links,
			Launch:     out.Pack.LaunchPoints,
			Phases:     len(out.Regions),
			Equivalent: h == st.DataHash && n == st.DataStores,
		}
		if stats.Cycles > 0 {
			vr.Speedup = float64(base.Cycles) / float64(stats.Cycles)
		}
		ir.Variants = append(ir.Variants, vr)
	}
	return ir, nil
}
