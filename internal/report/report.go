// Package report runs the evaluation suite and regenerates every table and
// figure of the paper's §5: Table 1 (benchmarks), Table 2 (machine model),
// Figure 8 (package coverage under the four configurations), Table 3 (code
// expansion), Figure 9 (branch categorization) and Figure 10 (speedup).
package report

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cas"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/workload"
)

// Options configures a suite run.
type Options struct {
	Machine cpu.Config
	Core    core.Config
	// Benchmarks restricts the suite (nil = all, Table 1 order).
	Benchmarks []string
	// ScaleOverride forces every input's iteration scale (0 = input's own).
	ScaleOverride int64
	// Jobs bounds how many (benchmark, input) work items run concurrently.
	// 0 means runtime.GOMAXPROCS(0); 1 forces a fully sequential run
	// (variants included). Results are assembled in paper order and are
	// identical at every setting.
	Jobs int
	// Logger, when non-nil, receives one structured record per input as
	// it finishes (bench, input, insts, phases, coverage, speedup) plus
	// suite start/end records. slog handlers serialize their own writes,
	// so records never interleave; under a parallel run their order
	// follows completion, not paper order. It supersedes Progress.
	Logger *slog.Logger
	// Progress, when non-nil and Logger is nil, receives one plain text
	// line per input as it finishes (the pre-slog format, kept for
	// callers that scrape it).
	Progress io.Writer
	// Observer, when non-nil and enabled, receives spans, events and
	// metrics for the whole suite. Each work item records into its own
	// private recorder; the per-item traces are merged into Observer in
	// paper order after the pool drains, so the merged stream is identical
	// at every Jobs setting (span wall times aside).
	Observer obs.Observer
	// Store, when non-nil, is the persistent artifact store: profiles
	// (with their baseline timings) and per-variant region artifacts and
	// package sets are looked up before being computed and written
	// through after. A fully warm store makes the suite skip every
	// profile, region and package stage — the rerun costs the timed
	// evaluation plus I/O. Each lookup emits store.* hit/miss counters
	// alongside the profile_memo.* ones; results are bit-identical with
	// the store warm, cold or absent. RunSuite flushes the store before
	// returning.
	Store *cas.Store
}

// VariantResult is one bar of Figures 8/10 for one input.
type VariantResult struct {
	Variant    core.Variant
	Coverage   float64
	Speedup    float64
	Growth     float64
	Selected   float64
	Repl       float64
	Packages   int
	Links      int
	Launch     int
	Phases     int
	Equivalent bool

	// BlockCacheHits/Misses are the timed run's basic-block cache traffic
	// (hits include chained dispatches); both zero when the cache is off.
	BlockCacheHits   uint64
	BlockCacheMisses uint64

	// Superblock tier activity for the timed run: traces promoted and
	// demoted, guard misses that left a trace early, and instructions
	// retired inside traces. TimedInsts is the run's total retirement,
	// so SuperblockInsts/TimedInsts is the tier-1 coverage fraction.
	// All zero when superblocks (or the block cache) are off.
	SuperblocksPromoted uint64
	SuperblocksDemoted  uint64
	SuperblockSideExits uint64
	SuperblockInsts     uint64
	TimedInsts          uint64
}

// InputResult aggregates one benchmark input.
type InputResult struct {
	Bench string
	Input string
	Paper string

	DynInsts   uint64
	Branches   uint64
	Detections uint64
	Phases     int

	Base       cpu.TimingStats
	Variants   []VariantResult
	Categories phasedb.Categorization

	// Elapsed is the wall-clock time this input took (profiling pass plus
	// all variants); under a parallel run variant times overlap.
	Elapsed time.Duration
}

// Full returns the result for the paper's default configuration
// (inference + linking).
func (ir *InputResult) Full() *VariantResult {
	for i := range ir.Variants {
		v := &ir.Variants[i]
		if v.Variant.Inference && v.Variant.Linking {
			return v
		}
	}
	if len(ir.Variants) > 0 {
		return &ir.Variants[0]
	}
	return nil
}

// Suite is a full evaluation run.
type Suite struct {
	Machine cpu.Config
	Results []InputResult
	// Elapsed is the whole suite's wall-clock time; Jobs is the worker
	// count the run actually used.
	Elapsed time.Duration
	Jobs    int

	// Store traffic for the run, all zero without Options.Store: lookup
	// hits/misses split by artifact class (a package hit means the
	// variant's region+package stages were skipped wholesale), and the
	// store's on-disk shape after the final flush. A fully warm run has
	// zero misses and StorePackageHits == 4 × inputs.
	StoreProfileHits   uint64
	StoreProfileMisses uint64
	StorePackageHits   uint64
	StorePackageMisses uint64
	StoreBytes         int64
	StoreSegments      int
}

// storeTally accumulates store traffic across concurrent work items.
type storeTally struct {
	profileHits, profileMisses atomic.Uint64
	packageHits, packageMisses atomic.Uint64
}

// TotalInsts sums the profiled dynamic instruction counts of every input.
func (s *Suite) TotalInsts() uint64 {
	var n uint64
	for i := range s.Results {
		n += s.Results[i].DynInsts
	}
	return n
}

// workItem is one (benchmark, input) unit of suite work, in paper order.
type workItem struct {
	b  *workload.Benchmark
	in workload.Input
}

// profileMemo shares profiling work across the variants of one input.
// Entries are keyed by core.Config.ProfileKey — the canonical hash of the
// profiling-relevant sub-config — so variants that only differ in
// packaging/optimization knobs (all four paper variants) collapse to a
// single profile pass whose phase database, profile stats and baseline
// timing are then shared read-only.
type profileMemo struct {
	mu      sync.Mutex
	entries map[uint64]*profileEntry
}

// profileEntry is one memoized profiling result: the stage-1 profile
// artifact plus the baseline timing collected in the same pass. once
// makes concurrent first callers compute exactly once; the other fields
// are written inside once.Do and read-only afterwards.
type profileEntry struct {
	once sync.Once
	pa   *core.ProfileArtifact
	base cpu.TimingStats
	err  error
}

// profile returns the memoized profile artifact for cfg's profile
// sub-config, running the pass at most once per distinct key. The pass
// executes under the observer of whichever caller reaches once.Do first;
// RunSuite always primes the memo from the input-level eager call, so the
// profile span lands in the per-item recorder and variant traces stay
// deterministic at every -j. Each call records a profile_memo.hits or
// profile_memo.misses counter into its own observer.
func (pm *profileMemo) profile(cfg core.Config, mc cpu.Config, img *prog.Image, o obs.Observer) (*core.ProfileArtifact, cpu.TimingStats, error) {
	key := cfg.ProfileKey()
	pm.mu.Lock()
	e, ok := pm.entries[key]
	if !ok {
		if pm.entries == nil {
			pm.entries = make(map[uint64]*profileEntry)
		}
		e = &profileEntry{}
		pm.entries[key] = e
	}
	pm.mu.Unlock()
	if ok {
		o.Count("profile_memo.hits", 1)
	} else {
		o.Count("profile_memo.misses", 1)
	}
	e.once.Do(func() {
		// One pass: HSD profile + baseline timing.
		timing := cpu.NewTiming(mc, img)
		e.pa, e.err = core.ProfileStageObserved(cfg, img, timing.Observe, o)
		if e.err == nil {
			e.base = timing.Finish()
		}
	})
	return e.pa, e.base, e.err
}

// prime installs a precomputed profiling result (a store hit) under key,
// so every later profile() call for that key is a memo hit and the pass
// never runs. A prime racing a compute loses cleanly: whoever fires the
// entry's once first wins and both see one consistent result.
func (pm *profileMemo) prime(key uint64, pa *core.ProfileArtifact, base cpu.TimingStats) {
	pm.mu.Lock()
	e, ok := pm.entries[key]
	if !ok {
		if pm.entries == nil {
			pm.entries = make(map[uint64]*profileEntry)
		}
		e = &profileEntry{}
		pm.entries[key] = e
	}
	pm.mu.Unlock()
	e.once.Do(func() {
		e.pa = pa
		e.base = base
	})
}

// RunSuite executes the pipeline for every benchmark input and variant.
// Each input is profiled once (collecting baseline timing in the same
// pass); each of the four variants then packages a fresh clone and is
// timed, concurrently with the other variants when Jobs != 1.
//
// Work items fan out over a bounded worker pool. Results are assembled in
// deterministic paper order regardless of completion order, and per-input
// failures are aggregated (also in paper order) instead of aborting the
// rest of the suite; on any failure the aggregated error is returned and
// the suite is nil.
func RunSuite(opts Options) (*Suite, error) {
	benches := workload.Ordered()
	if len(opts.Benchmarks) > 0 {
		var sel []*workload.Benchmark
		for _, name := range opts.Benchmarks {
			b, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			sel = append(sel, b)
		}
		benches = sel
	}
	var items []workItem
	for _, b := range benches {
		for _, in := range b.Inputs {
			if opts.ScaleOverride > 0 {
				in.Scale = opts.ScaleOverride
			}
			items = append(items, workItem{b: b, in: in})
		}
	}

	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(items) {
		jobs = len(items)
	}
	if jobs < 1 {
		jobs = 1
	}

	var o obs.Observer = obs.Nop{}
	if opts.Observer != nil {
		o = opts.Observer
	}
	suiteSpan := o.StartSpan(obs.StageSuite)
	defer suiteSpan.End()
	// Per-item recorders keep the merged stream deterministic: workers
	// never write the shared observer directly.
	traces := make([]*obs.Trace, len(items))
	itemObserver := func() (obs.Observer, *obs.Recorder) {
		if !o.Enabled() {
			return obs.Nop{}, nil
		}
		rec := obs.NewRecorder()
		return rec, rec
	}

	start := time.Now()
	results := make([]*InputResult, len(items))
	errs := make([]error, len(items))

	if opts.Logger != nil {
		opts.Logger.Info("suite start", "items", len(items), "jobs", jobs)
	}
	// Progress from concurrent workers: slog handlers serialize their own
	// writes; the legacy plain-text path funnels through one mutex so
	// lines never interleave mid-row.
	var progressMu sync.Mutex
	report := func(idx int, ir *InputResult) {
		results[idx] = ir
		// Observed directly (not via the per-item recorders) so a live
		// /metrics scrape sees progress mid-suite; histogram merge is
		// commutative and the _us name is time-valued, so completion order
		// never leaks into a Normalize()d trace.
		o.Observe("suite.input_elapsed_us", float64(ir.Elapsed.Microseconds()))
		full := ir.Full()
		if opts.Logger != nil {
			opts.Logger.Info("input complete",
				"bench", ir.Bench, "input", ir.Input,
				"insts", ir.DynInsts, "phases", ir.Phases,
				"coverage", full.Coverage, "speedup", full.Speedup,
				"elapsed", ir.Elapsed)
			return
		}
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		fmt.Fprintf(opts.Progress, "%-9s %s  %8d insts  %2d phases  cov %5.1f%%  speedup %.3f\n",
			ir.Bench, ir.Input, ir.DynInsts, ir.Phases, full.Coverage*100, full.Speedup)
		progressMu.Unlock()
	}

	// Fan out over the shared bounded pool (ForEachN); jobs == 1 runs the
	// same closure inline in paper order.
	parallel := jobs != 1
	tally := &storeTally{}
	ForEachN(jobs, len(items), func(idx int) {
		it := items[idx]
		io2, rec := itemObserver()
		ir, err := runInput(opts, it.b, it.in, parallel, io2, tally)
		if rec != nil {
			traces[idx] = rec.Export()
		}
		if err != nil {
			errs[idx] = fmt.Errorf("report: %s/%s: %w", it.b.Name, it.in.Name, err)
			return
		}
		report(idx, ir)
	})

	// Merge per-item traces in paper order while the suite span is still
	// open, so item spans re-parent under it deterministically.
	for _, t := range traces {
		o.Absorb(t)
	}

	if err := errors.Join(errs...); err != nil {
		if opts.Logger != nil {
			opts.Logger.Error("suite failed", "err", err)
		}
		return nil, err
	}
	suite := &Suite{Machine: opts.Machine, Jobs: jobs, Elapsed: time.Since(start)}
	for _, ir := range results {
		suite.Results = append(suite.Results, *ir)
	}
	if opts.Store != nil {
		// Persist everything written through during the run; the caller
		// asked for durability, so a failing flush fails the suite.
		if err := opts.Store.Flush(); err != nil {
			return nil, err
		}
		suite.StoreProfileHits = tally.profileHits.Load()
		suite.StoreProfileMisses = tally.profileMisses.Load()
		suite.StorePackageHits = tally.packageHits.Load()
		suite.StorePackageMisses = tally.packageMisses.Load()
		sst := opts.Store.Stats()
		suite.StoreBytes = sst.DiskBytes
		suite.StoreSegments = sst.Segments
		// Gauges after the single end-of-suite flush: segment contents are
		// written in sorted chunk order, so these values are deterministic
		// at every Jobs setting.
		o.Gauge(obs.StoreBytesGauge, float64(sst.DiskBytes))
		o.Gauge(obs.StoreSegmentsGauge, float64(sst.Segments))
	}
	if opts.Logger != nil {
		opts.Logger.Info("suite complete", "items", len(items), "jobs", jobs,
			"elapsed", suite.Elapsed, "insts", suite.TotalInsts())
	}
	return suite, nil
}

// runInput profiles one input once and then evaluates the four variants,
// concurrently when parallel is set. The profiled program, its image and
// the phase database are shared read-only across variants; each variant
// packages and times its own clone.
//
// With a store, the profile (and its companion baseline timing) is
// looked up under (ImageHash, ProfileKey) first: a hit primes the memo
// so the profile pass never runs; a miss runs it cold and writes both
// artifacts through. Store write failures are deliberately non-fatal
// here — a full disk degrades the cache, not the science — the
// end-of-suite Flush is where persistence problems surface.
func runInput(opts Options, b *workload.Benchmark, in workload.Input, parallel bool, o obs.Observer, tally *storeTally) (*InputResult, error) {
	start := time.Now()
	sp := obs.Span{}
	if o.Enabled() {
		sp = o.StartSpan("input:" + b.Name + "/" + in.Name)
	}
	defer sp.End()
	p := b.Build(in)
	img, err := p.Linearize()
	if err != nil {
		return nil, err
	}
	imgHash := core.ImageHash(img)
	// Prime the cross-variant memo eagerly under the item observer: the
	// single profile pass (HSD profile + baseline timing in one run) lands
	// ahead of the variant spans in the trace, and every variant whose
	// profiling sub-config matches — all four paper variants — hits.
	memo := &profileMemo{}
	storedProfile := false
	if opts.Store != nil {
		key := opts.Core.ProfileKey()
		mkey := cas.MachineKey(opts.Machine)
		if spa, gerr := opts.Store.GetProfileArtifact(imgHash, key); gerr == nil {
			if sbase, berr := opts.Store.GetBaseline(imgHash, mkey); berr == nil {
				memo.prime(key, spa, sbase)
				storedProfile = true
			}
		}
		if storedProfile {
			o.Count(obs.StoreHitsCounter, 1)
			o.Count(obs.StoreProfileHitsCounter, 1)
			tally.profileHits.Add(1)
		} else {
			o.Count(obs.StoreMissesCounter, 1)
			o.Count(obs.StoreProfileMissesCounter, 1)
			tally.profileMisses.Add(1)
		}
	}
	pa, base, err := memo.profile(opts.Core, opts.Machine, img, o)
	if err != nil {
		return nil, err
	}
	if opts.Store != nil && !storedProfile {
		_ = opts.Store.PutProfileArtifact(imgHash, opts.Core.ProfileKey(), pa)
		_ = opts.Store.PutBaseline(imgHash, cas.MachineKey(opts.Machine), base)
	}
	db := pa.DB()

	ir := &InputResult{
		Bench:      b.Name,
		Input:      in.Name,
		Paper:      b.Paper,
		DynInsts:   pa.Stats.Insts,
		Branches:   pa.Stats.Branches,
		Detections: pa.Stats.Detections,
		Phases:     len(db.Phases),
		Base:       base,
		Categories: db.Categorize(),
	}

	variants := core.Variants()
	ir.Variants = make([]VariantResult, len(variants))
	verrs := make([]error, len(variants))
	if parallel {
		// Concurrent variants record into private recorders, merged in
		// variant order below — the same stream a sequential run emits.
		vtraces := make([]*obs.Trace, len(variants))
		var wg sync.WaitGroup
		for i, v := range variants {
			wg.Add(1)
			go func(i int, v core.Variant) {
				defer wg.Done()
				var vo obs.Observer = obs.Nop{}
				var rec *obs.Recorder
				if o.Enabled() {
					rec = obs.NewRecorder()
					vo = rec
				}
				ir.Variants[i], verrs[i] = runVariant(opts, p, img, imgHash, memo, v, vo, tally)
				if rec != nil {
					vtraces[i] = rec.Export()
				}
			}(i, v)
		}
		wg.Wait()
		for _, t := range vtraces {
			o.Absorb(t)
		}
	} else {
		for i, v := range variants {
			ir.Variants[i], verrs[i] = runVariant(opts, p, img, imgHash, memo, v, o, tally)
		}
	}
	if err := errors.Join(verrs...); err != nil {
		return nil, err
	}
	ir.Elapsed = time.Since(start)
	return ir, nil
}

// runVariant packages a fresh clone of the profiled program under one
// variant configuration and times it against the shared baseline. The
// profiling result comes from the input's memo — a hit for every variant
// that shares the profiling sub-config; p and the memoized artifact/base
// are read-only here. The variant runs the staged pipeline directly:
// RegionStage and PackageStage against the clone's image, whose hash
// matches the profiled image by the Clone-preserves-linearization
// property the stages' staleness checks enforce.
// With a store, the variant first looks up its package set (and the
// region artifact that carries the phase count) under the clone-free
// key (ImageHash, Config.Hash): a hit rematerializes the packed program
// from the stored assembly — verified against the set's PackedHash, so
// corruption degrades to a recompute — and goes straight to the timed
// run, skipping clone, region and package stages wholesale. The timed
// evaluation is deterministic, so warm results equal cold results
// exactly.
func runVariant(opts Options, p *prog.Program, img *prog.Image, imgHash uint64, memo *profileMemo, v core.Variant, o obs.Observer, tally *storeTally) (VariantResult, error) {
	sp := obs.Span{}
	if o.Enabled() {
		sp = o.StartSpan("variant:" + v.Name())
	}
	defer sp.End()
	cfg := v.Apply(opts.Core)
	pa, base, err := memo.profile(cfg, opts.Machine, img, o)
	if err != nil {
		return VariantResult{}, fmt.Errorf("variant %s: %w", v.Name(), err)
	}
	st := pa.Stats
	var cfgHash uint64
	if opts.Store != nil {
		cfgHash = cfg.Hash()
		if vr, ok := storedVariant(opts, imgHash, cfgHash, v, base, st, o); ok {
			o.Count(obs.StoreHitsCounter, 1)
			o.Count(obs.StorePackageHitsCounter, 1)
			tally.packageHits.Add(1)
			return vr, nil
		}
		o.Count(obs.StoreMissesCounter, 1)
		o.Count(obs.StorePackageMissesCounter, 1)
		tally.packageMisses.Add(1)
	}
	clone := p.Clone()
	// The clone linearizes identically to the profiled program (IDs
	// and layout are preserved), so the phase database's PCs map onto
	// the clone's own image — and its image hash matches the artifact's
	// ProgramHash, which RegionStage verifies.
	cloneImg, err := clone.Linearize()
	if err != nil {
		return VariantResult{}, fmt.Errorf("variant %s: %w", v.Name(), err)
	}
	ra, err := core.RegionStageObserved(cfg, cloneImg, pa, o)
	if err != nil {
		return VariantResult{}, fmt.Errorf("variant %s: %w", v.Name(), err)
	}
	set, err := core.PackageStageObserved(cfg, clone, cloneImg, ra, o)
	if err != nil {
		return VariantResult{}, fmt.Errorf("variant %s: %w", v.Name(), err)
	}
	res := set.Result()
	packedImg, err := clone.Linearize()
	if err != nil {
		return VariantResult{}, fmt.Errorf("variant %s: %w", v.Name(), err)
	}
	stats, bc, h, n, err := timePacked(opts, packedImg, o)
	if err != nil {
		return VariantResult{}, fmt.Errorf("variant %s: timed run: %w", v.Name(), err)
	}
	if opts.Store != nil {
		// Write-through (best effort; the end-of-suite Flush surfaces
		// persistence problems). Encoding disassembles the packed program,
		// so only store-enabled cold runs pay it.
		_ = opts.Store.PutRegionArtifact(cfgHash, ra)
		_ = opts.Store.PutPackageSet(cfgHash, set)
	}
	vr := VariantResult{
		Variant:    v,
		Coverage:   stats.PackageCoverage(),
		Growth:     res.CodeGrowth(),
		Selected:   res.SelectedFraction(),
		Repl:       res.Replication(),
		Packages:   len(res.Packages),
		Links:      res.Links,
		Launch:     res.LaunchPoints,
		Phases:     ra.NumRegions(),
		Equivalent: h == st.DataHash && n == st.DataStores,
	}
	fillTimed(&vr, stats, bc, base)
	return vr, nil
}

// storedVariant attempts the warm path: fetch the variant's package set
// and region artifact, rematerialize the packed program and verify its
// image against the set's PackedHash, then run the timed evaluation.
// Any failure — missing entry, corruption, hash mismatch — returns
// ok == false and the caller recomputes cold.
func storedVariant(opts Options, imgHash, cfgHash uint64, v core.Variant, base cpu.TimingStats, st core.ProfileStats, o obs.Observer) (VariantResult, bool) {
	set, err := opts.Store.GetPackageSet(imgHash, cfgHash)
	if err != nil {
		return VariantResult{}, false
	}
	ra, err := opts.Store.GetRegionArtifact(imgHash, cfgHash)
	if err != nil {
		return VariantResult{}, false
	}
	packed, err := set.Materialize()
	if err != nil {
		return VariantResult{}, false
	}
	packedImg, err := packed.Linearize()
	if err != nil {
		return VariantResult{}, false
	}
	if set.PackedHash == 0 || core.ImageHash(packedImg) != set.PackedHash {
		return VariantResult{}, false
	}
	stats, bc, h, n, err := timePacked(opts, packedImg, o)
	if err != nil {
		return VariantResult{}, false
	}
	vr := VariantResult{
		Variant:    v,
		Coverage:   stats.PackageCoverage(),
		Growth:     set.CodeGrowth(),
		Selected:   set.SelectedFraction(),
		Repl:       set.Replication(),
		Packages:   set.Stats.Packages,
		Links:      set.Stats.Links,
		Launch:     set.Stats.LaunchPoints,
		Phases:     ra.NumRegions(),
		Equivalent: h == st.DataHash && n == st.DataStores,
	}
	fillTimed(&vr, stats, bc, base)
	return vr, true
}

// timePacked runs the timed evaluation of one packed image inside an
// evaluate span, emitting the engine counters — the shared tail of the
// cold and warm variant paths.
func timePacked(opts Options, packedImg *prog.Image, o obs.Observer) (cpu.TimingStats, *cpu.BlockCache, uint64, uint64, error) {
	esp := o.StartSpan(obs.StageEvaluate)
	var bc *cpu.BlockCache
	if !opts.Machine.DisableBlockCache {
		bc = cpu.NewBlockCache(packedImg)
	}
	stats, m, err := cpu.RunTimedCached(opts.Machine, packedImg, 0, bc)
	esp.End()
	if err != nil {
		return cpu.TimingStats{}, nil, 0, 0, err
	}
	o.Observe("eval.cycles", float64(stats.Cycles))
	if bc != nil {
		o.Count(obs.BlockCacheHitsCounter, int64(bc.Stats.Hits+bc.Stats.Chained))
		o.Count(obs.BlockCacheMissesCounter, int64(bc.Stats.Misses))
		o.Count(obs.BlockCacheEvictionsCounter, int64(bc.Stats.Evicted))
		o.Count(obs.SuperblockPromotedCounter, int64(bc.SB.Promoted))
		o.Count(obs.SuperblockDemotedCounter, int64(bc.SB.Demoted))
		o.Count(obs.SuperblockSideExitsCounter, int64(bc.SB.SideExits))
		o.Count(obs.SuperblockChainedCounter, int64(bc.SB.ChainedInsts))
	}
	h, n := m.DataHash()
	return stats, bc, h, n, nil
}

// fillTimed copies the timed run's engine fields and speedup into the
// variant result.
func fillTimed(vr *VariantResult, stats cpu.TimingStats, bc *cpu.BlockCache, base cpu.TimingStats) {
	vr.TimedInsts = stats.Insts
	if bc != nil {
		vr.BlockCacheHits = bc.Stats.Hits + bc.Stats.Chained
		vr.BlockCacheMisses = bc.Stats.Misses
		vr.SuperblocksPromoted = bc.SB.Promoted
		vr.SuperblocksDemoted = bc.SB.Demoted
		vr.SuperblockSideExits = bc.SB.SideExits
		vr.SuperblockInsts = bc.SB.ChainedInsts
	}
	if stats.Cycles > 0 {
		vr.Speedup = float64(base.Cycles) / float64(stats.Cycles)
	}
}
