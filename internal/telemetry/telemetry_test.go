package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/report"
)

func sampleRecorder() *obs.Recorder {
	rec := obs.NewRecorder()
	sp := rec.StartSpan(obs.StagePipeline)
	rec.Count("profile.insts", 12345)
	rec.Count("pack.packages", 3)
	rec.Gauge("eval.speedup", 1.07)
	rec.Observe("region.hot_blocks", 7)
	rec.Observe("region.hot_blocks", 130)
	rec.Observe("eval.cycles", 50000)
	sp.End()
	return rec
}

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

// parsePromText is a hand-rolled validator for the Prometheus text
// exposition format as WriteMetrics emits it: every sample line must
// parse, every metric must be preceded by its # TYPE line, histogram
// buckets must be cumulative and end at _count == +Inf.
func parsePromText(t *testing.T, text string) map[string]string {
	t.Helper()
	types := make(map[string]string)  // metric family -> type
	values := make(map[string]string) // full sample (with labels) -> value

	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && types[f] == "histogram" {
				return f
			}
		}
		return name
	}

	var lastCum uint64
	var curHist string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !nameRe.MatchString(parts[2]) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[parts[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", parts[2])
			}
			types[parts[2]] = parts[3]
			if parts[3] == "histogram" {
				curHist, lastCum = parts[2], 0
			}
			continue
		}
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels, val := m[1], m[2], m[3]
		fam := family(name)
		if _, ok := types[fam]; !ok {
			t.Fatalf("sample %q before its TYPE line", line)
		}
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		if fam == curHist && strings.HasSuffix(name, "_bucket") {
			cum, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				t.Fatalf("non-integer bucket in %q", line)
			}
			if cum < lastCum {
				t.Fatalf("bucket counts not cumulative at %q (%d < %d)", line, cum, lastCum)
			}
			lastCum = cum
			if labels == "" || !strings.Contains(labels, `le="`) {
				t.Fatalf("histogram bucket without le label: %q", line)
			}
		}
		values[name+labels] = val
	}
	return values
}

func TestWriteMetricsValidPrometheusText(t *testing.T) {
	var buf bytes.Buffer
	WriteMetrics(&buf, sampleRecorder().Export())
	values := parsePromText(t, buf.String())

	if values["vp_profile_insts"] != "12345" {
		t.Errorf("counter sample = %q, want 12345", values["vp_profile_insts"])
	}
	if values["vp_eval_speedup"] != "1.07" {
		t.Errorf("gauge sample = %q, want 1.07", values["vp_eval_speedup"])
	}
	// The drop counters are always exposed, zero-valued when clean.
	if values["vp_obs_dropped_spans"] != "0" || values["vp_obs_dropped_events"] != "0" {
		t.Errorf("drop counters missing or nonzero: %v %v",
			values["vp_obs_dropped_spans"], values["vp_obs_dropped_events"])
	}
	// Histogram contract: +Inf bucket equals _count, sum matches.
	if values[`vp_region_hot_blocks_bucket{le="+Inf"}`] != "2" ||
		values["vp_region_hot_blocks_count"] != "2" {
		t.Errorf("hot_blocks +Inf/count = %v/%v, want 2/2",
			values[`vp_region_hot_blocks_bucket{le="+Inf"}`], values["vp_region_hot_blocks_count"])
	}
	if values["vp_region_hot_blocks_sum"] != "137" {
		t.Errorf("hot_blocks sum = %q, want 137", values["vp_region_hot_blocks_sum"])
	}
	// 7 <= 2^3 and 130 <= 2^8: le="8" holds one, le="128" still one, le="256" both.
	if values[`vp_region_hot_blocks_bucket{le="8"}`] != "1" ||
		values[`vp_region_hot_blocks_bucket{le="128"}`] != "1" ||
		values[`vp_region_hot_blocks_bucket{le="256"}`] != "2" {
		t.Errorf("cumulative buckets wrong: le8=%v le128=%v le256=%v",
			values[`vp_region_hot_blocks_bucket{le="8"}`],
			values[`vp_region_hot_blocks_bucket{le="128"}`],
			values[`vp_region_hot_blocks_bucket{le="256"}`])
	}
}

func TestWriteMetricsDeterministicAfterNormalize(t *testing.T) {
	render := func() []byte {
		tr := sampleRecorder().Export().Normalize()
		var buf bytes.Buffer
		WriteMetrics(&buf, tr)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("two normalized renders differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	if !bytes.Contains(a, []byte("# TYPE vp_span_us_pipeline histogram")) {
		t.Errorf("span wall-time histogram family missing from render:\n%s", a)
	}
}

func TestMetricName(t *testing.T) {
	cases := map[string]string{
		"profile.insts":     "vp_profile_insts",
		"span_us.input:a/b": "vp_span_us_input_a_b",
		"already_legal":     "vp_already_legal",
	}
	for in, want := range cases {
		if got := MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestServerEndpoints(t *testing.T) {
	rec := sampleRecorder()
	srv := NewServer(rec)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string, http.Header) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header
	}

	if code, body, _ := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady = %d, want 503", code)
	}
	srv.SetReady(true)
	if code, _, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz after SetReady = %d, want 200", code)
	}
	srv.SetReady(false)
	if code, _, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after SetReady(false) = %d, want 503", code)
	}

	code, body, hdr := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	parsePromText(t, body)

	code, body, hdr = get("/trace")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("/trace = %d, content type %q", code, hdr.Get("Content-Type"))
	}
	var tr obs.Trace
	if err := json.Unmarshal([]byte(body), &tr); err != nil || tr.Schema != obs.TraceSchema {
		t.Errorf("/trace body invalid (%v), schema %q", err, tr.Schema)
	}

	if code, body, _ := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
}

func TestListenAndClose(t *testing.T) {
	srv := NewServer(sampleRecorder())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("GET over Listen-ed server: %v", err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger("json", &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hello", "k", 1)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil || rec["msg"] != "hello" {
		t.Errorf("json mode output invalid: %q (%v)", buf.String(), err)
	}

	buf.Reset()
	logger, err = NewLogger("off", &buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	logger.Error("dropped")
	if buf.Len() != 0 {
		t.Errorf("off mode wrote %q", buf.String())
	}

	if _, err := NewLogger("verbose", &buf, nil); err == nil {
		t.Error("unknown mode accepted")
	}

	// With a recorder, records inside a span carry span/stage attrs.
	buf.Reset()
	r := obs.NewRecorder()
	logger, err = NewLogger("text", &buf, r)
	if err != nil {
		t.Fatal(err)
	}
	sp := r.StartSpan(obs.StageProfile)
	logger.Info("stamped")
	sp.End()
	if out := buf.String(); !strings.Contains(out, "stage="+obs.StageProfile) {
		t.Errorf("recorder-wired logger missing stage attr: %q", out)
	}
}

// TestServeLiveSuite is the acceptance pass: while a real suite run is in
// flight with the server's recorder as its observer, /metrics must serve
// parseable text that includes at least one histogram family, and
// /healthz must answer.
func TestServeLiveSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real suite input")
	}
	rec := obs.NewRecorder()
	srv := NewServer(rec)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.SetReady(true)

	done := make(chan error, 1)
	go func() {
		_, err := report.RunSuite(report.Options{
			Machine:       cpu.DefaultConfig(),
			Core:          core.ScaledConfig(),
			Benchmarks:    []string{"gzip"},
			ScaleOverride: 1,
			Jobs:          2,
			Observer:      rec,
		})
		done <- err
	}()

	scrape := func() (string, bool) {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return string(body), strings.Contains(string(body), " histogram\n")
	}

	// Poll until a histogram family shows up mid-run (span ends feed the
	// span_us histograms almost immediately) or the run finishes.
	var sawHistogram bool
	deadline := time.After(60 * time.Second)
poll:
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("suite failed under serving: %v", err)
			}
			break poll
		case <-deadline:
			t.Fatal("suite did not finish within 60s")
		default:
			if body, ok := scrape(); ok {
				sawHistogram = true
				parsePromText(t, body)
				// Keep draining until the suite completes.
				if err := <-done; err != nil {
					t.Fatalf("suite failed under serving: %v", err)
				}
				break poll
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Whether we caught one mid-flight or only at the end, the final
	// snapshot must expose histograms.
	body, ok := scrape()
	if !ok {
		t.Fatalf("/metrics has no histogram family after the run:\n%s", body)
	}
	parsePromText(t, body)
	if !sawHistogram {
		t.Log("histogram appeared only after suite completion (fast run)")
	}
}

// The execution-engine counters (block cache + superblock tier) are part
// of the serving contract: every /metrics render carries all seven series
// even when no timed run happened, and populated counters pass through.
func TestWriteMetricsEngineCounters(t *testing.T) {
	var buf bytes.Buffer
	WriteMetrics(&buf, obs.NewRecorder().Export())
	values := parsePromText(t, buf.String())
	for _, name := range obs.EngineCounters() {
		if got := values[MetricName(name)]; got != "0" {
			t.Errorf("empty trace: %s = %q, want 0", MetricName(name), got)
		}
	}

	rec := obs.NewRecorder()
	rec.Count(obs.BlockCacheHitsCounter, 41)
	rec.Count(obs.SuperblockPromotedCounter, 3)
	rec.Count(obs.SuperblockChainedCounter, 9001)
	buf.Reset()
	WriteMetrics(&buf, rec.Export())
	values = parsePromText(t, buf.String())
	want := map[string]string{
		"vp_blockcache_hits":          "41",
		"vp_blockcache_misses":        "0",
		"vp_superblock_promoted":      "3",
		"vp_superblock_demoted":       "0",
		"vp_superblock_side_exits":    "0",
		"vp_superblock_chained_insts": "9001",
	}
	for series, v := range want {
		if values[series] != v {
			t.Errorf("populated trace: %s = %q, want %q", series, values[series], v)
		}
	}
}
