// Package telemetry is the serving tier over internal/obs: a stdlib-only
// HTTP server that exposes a live Recorder as Prometheus text-format
// /metrics (counters, gauges, histogram buckets), a /trace JSON snapshot,
// /healthz and /readyz probes and the /debug/pprof handlers, plus the
// structured-logging setup (slog text/json/off) shared by the CLIs.
//
// The server holds no state of its own beyond readiness: every endpoint
// renders a fresh snapshot of the Source at request time, so scraping a
// long vpbench -serve run observes the suite as it progresses.
package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/obs"
)

// Source supplies trace snapshots; *obs.Recorder satisfies it.
type Source interface {
	Export() *obs.Trace
}

// Server serves a Source over HTTP.
type Server struct {
	src   Source
	ready atomic.Bool
	mux   *http.ServeMux
	http  *http.Server
	// extra counter/gauge/histogram names /metrics always renders (see
	// AlwaysCounters, AlwaysGauges, AlwaysHistograms).
	extra      []string
	extraGauge []string
	extraHist  []string
}

// NewServer builds a server over src. It starts not-ready; call SetReady
// once the instrumented work is actually running.
func NewServer(src Source) *Server {
	s := &Server{src: src, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.http = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the server's route table, for mounting under httptest
// or an existing mux.
func (s *Server) Handler() http.Handler { return s.mux }

// AlwaysCounters registers additional counter names that /metrics renders
// even when the snapshot has no sample yet (value 0) — the same
// no-series-gaps contract the engine counters get by default. Call before
// Listen; names are not synchronized after serving starts.
func (s *Server) AlwaysCounters(names ...string) {
	s.extra = append(s.extra, names...)
}

// AlwaysGauges registers gauge names that /metrics renders even before the
// instrumented code first sets them (value 0). Call before Listen.
func (s *Server) AlwaysGauges(names ...string) {
	s.extraGauge = append(s.extraGauge, names...)
}

// AlwaysHistograms registers histogram names that /metrics renders even
// before the first observation (all-zero buckets, zero sum and count), so
// latency quantiles have no series gap to their first sample. Call before
// Listen.
func (s *Server) AlwaysHistograms(names ...string) {
	s.extraHist = append(s.extraHist, names...)
}

// SetReady flips the /readyz state.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Listen binds addr (":0" picks a free port) and starts serving in a new
// goroutine, returning the bound address. Use Close to stop.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go s.http.Serve(ln)
	return ln.Addr().String(), nil
}

// Close immediately stops a Listen-ed server.
func (s *Server) Close() error { return s.http.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetricsAlways(w, s.src.Export(), Always{
		Counters:   s.extra,
		Gauges:     s.extraGauge,
		Histograms: s.extraHist,
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.src.Export().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		http.Error(w, "not ready", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ready\n")
}

// MetricName sanitizes a flat obs metric name (dots, colons, slashes)
// into a legal Prometheus metric name with the vp_ namespace prefix.
func MetricName(name string) string {
	var sb strings.Builder
	sb.WriteString("vp_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteByte(c)
		case c >= '0' && c <= '9':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// WriteMetrics renders a trace snapshot in Prometheus text exposition
// format (version 0.0.4): counters, gauges, and histograms with
// cumulative le-labeled buckets over the shared log-spaced layout. Output
// is sorted by metric name, so identical traces render identical bytes —
// which is what makes /metrics diffable and, after Normalize, goldenable.
func WriteMetrics(w io.Writer, t *obs.Trace) {
	WriteMetricsExtra(w, t)
}

// WriteMetricsExtra is WriteMetrics with additional always-exposed
// counter names (rendered as 0 when the snapshot has none) — the daemon
// uses it to keep its queue/repack series gap-free from the first scrape.
func WriteMetricsExtra(w io.Writer, t *obs.Trace, extra ...string) {
	WriteMetricsAlways(w, t, Always{Counters: extra})
}

// Always names metric series /metrics renders even when the snapshot has
// no sample for them: counters as 0, gauges as 0, histograms with all-zero
// buckets. The daemon registers its queue/repack and drift series here so
// every series exists from the first scrape.
type Always struct {
	Counters   []string
	Gauges     []string
	Histograms []string
}

// WriteMetricsAlways is WriteMetrics with per-kind always-exposed series.
func WriteMetricsAlways(w io.Writer, t *obs.Trace, always Always) {
	fmtFloat := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	counters := make(map[string]int64, len(t.Metrics.Counters)+2)
	for k, v := range t.Metrics.Counters {
		counters[k] = v
	}
	// The drop counters and the execution-engine counters are part of the
	// serving contract: always exposed, zero when nothing happened, so
	// alerts and dashboards can rate() them without series gaps.
	wellKnown := append([]string{obs.DroppedSpansCounter, obs.DroppedEventsCounter},
		obs.EngineCounters()...)
	wellKnown = append(wellKnown, always.Counters...)
	for _, k := range wellKnown {
		if _, ok := counters[k]; !ok {
			counters[k] = 0
		}
	}
	names := make([]string, 0, len(counters))
	for k := range counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		m := MetricName(k)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, counters[k])
	}

	gauges := make(map[string]float64, len(t.Metrics.Gauges)+len(always.Gauges))
	for k, v := range t.Metrics.Gauges {
		gauges[k] = v
	}
	for _, k := range always.Gauges {
		if _, ok := gauges[k]; !ok {
			gauges[k] = 0
		}
	}
	names = names[:0]
	for k := range gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		m := MetricName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m, m, fmtFloat(gauges[k]))
	}

	bounds := obs.HistogramBounds()
	hists := make(map[string]obs.HistogramRecord, len(t.Metrics.Histograms)+len(always.Histograms))
	for k, h := range t.Metrics.Histograms {
		hists[k] = h
	}
	for _, k := range always.Histograms {
		if _, ok := hists[k]; !ok {
			hists[k] = obs.HistogramRecord{}
		}
	}
	names = names[:0]
	for k := range hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := hists[k]
		m := MetricName(k)
		fmt.Fprintf(w, "# TYPE %s histogram\n", m)
		var cum uint64
		for i, b := range bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m, fmtFloat(b), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", m, fmtFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", m, h.Count)
	}
}

// LogModes documents the shared -log flag values.
const LogModes = "text|json|off"

// NewLogger builds the CLI logger for one of the LogModes, writing to w.
// With a non-nil recorder the handler is wrapped in obs.NewSlogHandler,
// so records logged while a span is open carry span/stage attributes.
func NewLogger(mode string, w io.Writer, rec *obs.Recorder) (*slog.Logger, error) {
	var h slog.Handler
	switch mode {
	case "off":
		return slog.New(slog.DiscardHandler), nil
	case "text", "":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("telemetry: unknown log mode %q (want %s)", mode, LogModes)
	}
	if rec != nil {
		h = obs.NewSlogHandler(h, rec)
	}
	return slog.New(h), nil
}
