// PipelineObserved: the store-aware single-program pipeline entry the
// CLIs (vpack, vpdump) share. It mirrors core.RunObserved exactly —
// same spans, same counters, same Outcome — except that the profile
// stage is served from the store when a matching artifact exists and
// written through when it does not.
//
// Deliberately, no store.* metrics are emitted here: the single-program
// trace is the golden-trace regression surface, and a cold run with a
// fresh store must stay byte-identical to a storeless run. (The suite
// and the daemon, whose traces are not golden-gated, do emit store
// traffic.) Packaging is also never served from the store on this path:
// the CLIs report live region/package structures the decoded artifacts
// do not carry. The profile pass dominates single-run wall time, so the
// reuse that matters is still captured.
package cas

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/prog"
)

// PipelineObserved runs the full pipeline on p, reusing a stored profile
// for (ImageHash(p), cfg.ProfileKey()) when s is non-nil and has one,
// and storing the freshly computed profile otherwise. Store read
// problems (missing, corrupt) degrade to a cold run; store write
// problems are returned, since the caller asked for persistence.
func PipelineObserved(s *Store, cfg core.Config, p *prog.Program, o obs.Observer) (*core.Outcome, error) {
	if s == nil {
		return core.RunObserved(cfg, p, o)
	}
	sp := o.StartSpan(obs.StagePipeline)
	defer sp.End()
	out := &core.Outcome{Original: p.Clone(), Packed: p}

	img, err := p.Linearize()
	if err != nil {
		return nil, fmt.Errorf("core: linearize: %w", err)
	}
	imageHash := core.ImageHash(img)
	profileKey := cfg.ProfileKey()
	pa, err := s.GetProfileArtifact(imageHash, profileKey)
	if err != nil {
		pa, err = core.ProfileStageObserved(cfg, img, nil, o)
		if err != nil {
			return nil, err
		}
		if err := s.PutProfileArtifact(imageHash, profileKey, pa); err != nil {
			return nil, fmt.Errorf("cas: store profile: %w", err)
		}
	}
	out.DB = pa.DB()
	out.ProfileInsts = pa.Stats.Insts
	out.ProfileBranches = pa.Stats.Branches
	out.Detections = pa.Stats.Detections
	if err := core.PackageObserved(cfg, out, p, img, pa.DB(), o); err != nil {
		return out, err
	}
	return out, nil
}
