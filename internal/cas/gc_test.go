package cas

import (
	"testing"
	"time"
)

// fakeClock installs a controllable clock on the store.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func openClocked(t *testing.T, dir string) (*Store, *fakeClock) {
	t.Helper()
	s := open(t, dir)
	c := &fakeClock{t: time.Unix(1_000_000, 0)}
	s.now = c.now
	return s, c
}

// TestGCAge: entries older than maxAge are evicted, younger ones and
// their bytes survive, and the reclaimed byte count is real.
func TestGCAge(t *testing.T) {
	s, clk := openClocked(t, t.TempDir())
	oldData := blob(1, 2*chunkSize)
	mustPut(t, s, KindProfile, Key{A: 1}, oldData)
	clk.advance(2 * time.Hour)
	newData := blob(2, chunkSize)
	mustPut(t, s, KindProfile, Key{A: 2}, newData)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().DiskBytes

	res, err := s.GC(0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedEntries != 1 || res.LiveEntries != 1 {
		t.Fatalf("gc = %+v, want 1 dropped 1 live", res)
	}
	if res.ReclaimedBytes <= 0 || s.Stats().DiskBytes >= before {
		t.Fatalf("gc reclaimed %d bytes (disk %d -> %d)", res.ReclaimedBytes, before, s.Stats().DiskBytes)
	}
	if s.Has(KindProfile, Key{A: 1}) {
		t.Fatal("aged entry survived")
	}
	mustGet(t, s, KindProfile, Key{A: 2}, newData)
	if errs := s.Verify(); len(errs) != 0 {
		t.Fatalf("verify after gc: %v", errs)
	}
}

// TestGCSize: the size budget evicts oldest-first until the live payload
// fits.
func TestGCSize(t *testing.T) {
	s, clk := openClocked(t, t.TempDir())
	for i := uint64(1); i <= 4; i++ {
		mustPut(t, s, KindProfile, Key{A: i}, blob(byte(i), 10_000))
		clk.advance(time.Minute)
	}
	res, err := s.GC(25_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedEntries != 2 {
		t.Fatalf("dropped = %d, want 2 (oldest two)", res.DroppedEntries)
	}
	if s.Has(KindProfile, Key{A: 1}) || s.Has(KindProfile, Key{A: 2}) {
		t.Fatal("size gc evicted the wrong entries")
	}
	mustGet(t, s, KindProfile, Key{A: 3}, blob(3, 10_000))
	mustGet(t, s, KindProfile, Key{A: 4}, blob(4, 10_000))
}

// TestGCRefcount: a chunk shared by an evicted and a surviving entry
// survives; eviction of one referent never tears content out from under
// another.
func TestGCRefcount(t *testing.T) {
	s, clk := openClocked(t, t.TempDir())
	shared := blob(7, 2*chunkSize)
	mustPut(t, s, KindProfile, Key{A: 1}, shared)
	clk.advance(2 * time.Hour)
	mustPut(t, s, KindPackageSet, Key{A: 1}, shared) // same content, young entry
	res, err := s.GC(0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedEntries != 1 {
		t.Fatalf("dropped = %d, want 1", res.DroppedEntries)
	}
	mustGet(t, s, KindPackageSet, Key{A: 1}, shared)
	if errs := s.Verify(); len(errs) != 0 {
		t.Fatalf("verify: %v", errs)
	}
}

// TestGCCompactsOverwrites: overwriting a key strands its old chunks;
// GC(0,0) — no eviction policy at all — still reclaims them.
func TestGCCompactsOverwrites(t *testing.T) {
	s, _ := openClocked(t, t.TempDir())
	mustPut(t, s, KindProfile, Key{A: 1}, blob(1, 3*chunkSize))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, KindProfile, Key{A: 1}, blob(2, 100))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().DiskBytes
	res, err := s.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedBytes <= 0 || s.Stats().DiskBytes >= before {
		t.Fatalf("compaction reclaimed %d (disk %d -> %d)", res.ReclaimedBytes, before, s.Stats().DiskBytes)
	}
	mustGet(t, s, KindProfile, Key{A: 1}, blob(2, 100))
	// A second collection finds nothing.
	res2, err := s.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ReclaimedBytes != 0 || res2.DroppedEntries != 0 {
		t.Fatalf("idle gc = %+v, want no-op", res2)
	}
}

// TestGCPersists: the post-GC state survives a reopen (the manifest was
// rewritten and the dead segments deleted).
func TestGCPersists(t *testing.T) {
	dir := t.TempDir()
	s, clk := openClocked(t, dir)
	mustPut(t, s, KindProfile, Key{A: 1}, blob(1, 50_000))
	clk.advance(2 * time.Hour)
	mustPut(t, s, KindProfile, Key{A: 2}, blob(2, 50_000))
	if _, err := s.GC(0, time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	if s2.Has(KindProfile, Key{A: 1}) {
		t.Fatal("evicted entry resurrected by reopen")
	}
	mustGet(t, s2, KindProfile, Key{A: 2}, blob(2, 50_000))
	if errs := s2.Verify(); len(errs) != 0 {
		t.Fatalf("verify: %v", errs)
	}
	if st := s2.Stats(); st.Segments != 1 {
		t.Fatalf("segments after gc+reopen = %d, want 1", st.Segments)
	}
}
