// Typed artifact surface: the kind constants and encode/decode wrappers
// that map the pipeline's stage artifacts (internal/core's stable JSON
// codecs) onto the store's generic (kind, Key) → blob interface, plus
// the key-scheme helpers the callers share.
//
// Key scheme (DESIGN.md §15):
//
//	profile      (ImageHash, ProfileKey)        → ProfileArtifact JSON
//	baseline     (ImageHash, MachineKey)        → baseline TimingStats JSON
//	region       (ProgramHash, ConfigHash)      → RegionArtifact JSON
//	packageset   (ProgramHash, ConfigHash)      → PackageSet JSON
//	daemon/version    (NameKey, version)        → PackageSet JSON
//	daemon/provenance (NameKey, version)        → Provenance JSON
//
// Every Get re-checks the decoded artifact's own provenance hashes
// against the requested key, so a store whose index was tampered with
// (or a raw hash collision) degrades to a miss, never a wrong-artifact
// hit.
package cas

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/cpu"
)

// Artifact kinds in the index.
const (
	KindProfile    = "profile"
	KindBaseline   = "baseline"
	KindRegion     = "region"
	KindPackageSet = "packageset"
	KindVersion    = "daemon/version"
	KindProv       = "daemon/provenance"
)

// baselineSchema marks the baseline-timing blob codec.
const baselineSchema = "vpcas/baseline/v1"

// baselineBlob wraps a profiling run's baseline TimingStats with enough
// provenance to reject a stale or mis-keyed hit.
type baselineBlob struct {
	Schema  string          `json:"schema"`
	Image   uint64          `json:"image,string"`
	Machine uint64          `json:"machine,string"`
	Stats   cpu.TimingStats `json:"stats"`
}

// MachineKey returns a canonical hash of the timing-machine
// configuration; baseline timings are only reusable on an identical
// machine model.
func MachineKey(mc cpu.Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", mc)
	return h.Sum64()
}

// NameKey hashes a program name into key space (the daemon's publication
// index is per program name, not per content).
func NameKey(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// PutProfileArtifact stores a stage-1 profile under
// (ImageHash, ProfileKey).
func (s *Store) PutProfileArtifact(imageHash, profileKey uint64, pa *core.ProfileArtifact) error {
	var buf bytes.Buffer
	if err := pa.EncodeJSON(&buf); err != nil {
		return err
	}
	return s.Put(KindProfile, Key{A: imageHash, B: profileKey}, buf.Bytes())
}

// GetProfileArtifact fetches a stage-1 profile, verifying the decoded
// artifact's own provenance against the requested key.
func (s *Store) GetProfileArtifact(imageHash, profileKey uint64) (*core.ProfileArtifact, error) {
	data, err := s.Get(KindProfile, Key{A: imageHash, B: profileKey})
	if err != nil {
		return nil, err
	}
	pa, err := core.DecodeProfileArtifact(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("cas: profile %016x/%016x: %v: %w", imageHash, profileKey, err, ErrCorrupt)
	}
	if pa.ProgramHash != imageHash || pa.ProfileKey != profileKey {
		return nil, fmt.Errorf("cas: profile %016x/%016x: artifact claims %016x/%016x: %w",
			imageHash, profileKey, pa.ProgramHash, pa.ProfileKey, ErrCorrupt)
	}
	return pa, nil
}

// PutBaseline stores the baseline timing collected alongside a profile
// pass under (ImageHash, MachineKey).
func (s *Store) PutBaseline(imageHash, machineKey uint64, st cpu.TimingStats) error {
	data, err := json.Marshal(baselineBlob{
		Schema: baselineSchema, Image: imageHash, Machine: machineKey, Stats: st,
	})
	if err != nil {
		return err
	}
	return s.Put(KindBaseline, Key{A: imageHash, B: machineKey}, data)
}

// GetBaseline fetches a stored baseline timing.
func (s *Store) GetBaseline(imageHash, machineKey uint64) (cpu.TimingStats, error) {
	data, err := s.Get(KindBaseline, Key{A: imageHash, B: machineKey})
	if err != nil {
		return cpu.TimingStats{}, err
	}
	var b baselineBlob
	if err := json.Unmarshal(data, &b); err != nil {
		return cpu.TimingStats{}, fmt.Errorf("cas: baseline %016x/%016x: %v: %w", imageHash, machineKey, err, ErrCorrupt)
	}
	if b.Schema != baselineSchema || b.Image != imageHash || b.Machine != machineKey {
		return cpu.TimingStats{}, fmt.Errorf("cas: baseline %016x/%016x: provenance mismatch: %w",
			imageHash, machineKey, ErrCorrupt)
	}
	return b.Stats, nil
}

// PutRegionArtifact stores a stage-2 region artifact under
// (ProgramHash, ConfigHash).
func (s *Store) PutRegionArtifact(configHash uint64, ra *core.RegionArtifact) error {
	var buf bytes.Buffer
	if err := ra.EncodeJSON(&buf); err != nil {
		return err
	}
	return s.Put(KindRegion, Key{A: ra.ProgramHash, B: configHash}, buf.Bytes())
}

// GetRegionArtifact fetches a stage-2 region artifact.
func (s *Store) GetRegionArtifact(programHash, configHash uint64) (*core.RegionArtifact, error) {
	data, err := s.Get(KindRegion, Key{A: programHash, B: configHash})
	if err != nil {
		return nil, err
	}
	ra, err := core.DecodeRegionArtifact(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("cas: region %016x/%016x: %v: %w", programHash, configHash, err, ErrCorrupt)
	}
	if ra.ProgramHash != programHash {
		return nil, fmt.Errorf("cas: region %016x/%016x: artifact claims program %016x: %w",
			programHash, configHash, ra.ProgramHash, ErrCorrupt)
	}
	return ra, nil
}

// PutPackageSet stores a stage-3 package set under
// (ProgramHash, ConfigHash).
func (s *Store) PutPackageSet(configHash uint64, ps *core.PackageSet) error {
	var buf bytes.Buffer
	if err := ps.EncodeJSON(&buf); err != nil {
		return err
	}
	return s.Put(KindPackageSet, Key{A: ps.ProgramHash, B: configHash}, buf.Bytes())
}

// PutDaemonVersion stores one published daemon version — the encoded
// PackageSet exactly as served over /v1/packages — under
// (NameKey(name), version). The bytes are opaque here; recovery
// re-decodes them to check the program hash against the live program.
func (s *Store) PutDaemonVersion(name string, version int, encoded []byte) error {
	return s.Put(KindVersion, Key{A: NameKey(name), B: uint64(version)}, encoded)
}

// GetDaemonVersion fetches a published version's encoded PackageSet.
func (s *Store) GetDaemonVersion(name string, version int) ([]byte, error) {
	return s.Get(KindVersion, Key{A: NameKey(name), B: uint64(version)})
}

// PutDaemonProvenance stores a published version's build record under
// (NameKey(name), version).
func (s *Store) PutDaemonProvenance(name string, version int, prov *core.Provenance) error {
	var buf bytes.Buffer
	if err := prov.EncodeJSON(&buf); err != nil {
		return err
	}
	return s.Put(KindProv, Key{A: NameKey(name), B: uint64(version)}, buf.Bytes())
}

// GetDaemonProvenance fetches a published version's build record,
// verifying it describes the requested program and version.
func (s *Store) GetDaemonProvenance(name string, version int) (*core.Provenance, error) {
	data, err := s.Get(KindProv, Key{A: NameKey(name), B: uint64(version)})
	if err != nil {
		return nil, err
	}
	prov, err := core.DecodeProvenance(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("cas: provenance %s/%d: %v: %w", name, version, err, ErrCorrupt)
	}
	if prov.Program != name || prov.Version != version {
		return nil, fmt.Errorf("cas: provenance %s/%d: record claims %s/%d: %w",
			name, version, prov.Program, prov.Version, ErrCorrupt)
	}
	return prov, nil
}

// GetPackageSet fetches a stage-3 package set.
func (s *Store) GetPackageSet(programHash, configHash uint64) (*core.PackageSet, error) {
	data, err := s.Get(KindPackageSet, Key{A: programHash, B: configHash})
	if err != nil {
		return nil, err
	}
	ps, err := core.DecodePackageSet(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("cas: packageset %016x/%016x: %v: %w", programHash, configHash, err, ErrCorrupt)
	}
	if ps.ProgramHash != programHash {
		return nil, fmt.Errorf("cas: packageset %016x/%016x: artifact claims program %016x: %w",
			programHash, configHash, ps.ProgramHash, ErrCorrupt)
	}
	return ps, nil
}
