package cas

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedStore writes one multi-chunk blob, flushes it to a segment and
// closes the store, returning the directory and segment path.
func seedStore(t *testing.T) (dir, segPath string, data []byte) {
	t.Helper()
	dir = t.TempDir()
	s := open(t, dir)
	data = blob(42, 2*chunkSize+100)
	mustPut(t, s, KindProfile, Key{A: 1, B: 2}, data)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "seg-*"+segmentSuffix))
	if err != nil || len(names) != 1 {
		t.Fatalf("segments: %v %v", names, err)
	}
	return dir, names[0], data
}

// reopenExpectCorrupt reopens the store and requires the seeded key to
// fail with ErrCorrupt — a clean miss, not a panic and not data.
func reopenExpectCorrupt(t *testing.T, dir string) *Store {
	t.Helper()
	s := open(t, dir)
	if _, err := s.Get(KindProfile, Key{A: 1, B: 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted read error = %v, want ErrCorrupt", err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("corrupted read counted %+v, want one miss", st)
	}
	return s
}

// TestTruncatedSegment: chopping the tail off a segment file turns reads
// of the blobs inside it into clean corrupt misses and Verify into a
// typed report.
func TestTruncatedSegment(t *testing.T) {
	dir, seg, _ := seedStore(t)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	s := reopenExpectCorrupt(t, dir)
	errs := s.Verify()
	if len(errs) == 0 || !errors.Is(errs[0], ErrCorrupt) {
		t.Fatalf("verify on truncated segment: %v", errs)
	}
}

// TestBitFlippedBlob: flipping one payload bit fails the chunk CRC.
func TestBitFlippedBlob(t *testing.T) {
	dir, seg, _ := seedStore(t)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s := reopenExpectCorrupt(t, dir)
	if errs := s.Verify(); len(errs) == 0 {
		t.Fatal("verify missed the flipped bit")
	}
}

// TestMissingSegment: deleting a segment file out from under the
// manifest is a clean corrupt miss.
func TestMissingSegment(t *testing.T) {
	dir, seg, _ := seedStore(t)
	if err := os.Remove(seg); err != nil {
		t.Fatal(err)
	}
	s := reopenExpectCorrupt(t, dir)
	if errs := s.Verify(); len(errs) == 0 {
		t.Fatal("verify missed the deleted segment")
	}
}

// TestCorruptManifest: garbage where the manifest should be opens an
// empty store (a full re-profile, not an error), records the problem
// for Verify, and keeps working — including not clobbering the orphaned
// segment file of the previous generation.
func TestCorruptManifest(t *testing.T) {
	dir, seg, _ := seedStore(t)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir)
	if s.LoadErr() == nil {
		t.Fatal("LoadErr nil after corrupt manifest")
	}
	if _, err := s.Get(KindProfile, Key{A: 1, B: 2}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read after manifest loss = %v, want ErrNotFound", err)
	}
	errs := s.Verify()
	if len(errs) == 0 || !errors.Is(errs[0], ErrCorrupt) {
		t.Fatalf("verify must surface the manifest problem: %v", errs)
	}
	// The store stays usable: new writes flush into a fresh generation
	// without reusing the orphan's name.
	mustPut(t, s, KindProfile, Key{A: 9}, blob(9, 100))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(seg); err != nil {
		t.Fatalf("recovery clobbered orphan segment: %v", err)
	}
	mustGet(t, s, KindProfile, Key{A: 9}, blob(9, 100))
}

// TestStaleManifestSchema: a manifest from a future/foreign schema is
// treated exactly like corruption — empty store, typed Verify error.
func TestStaleManifestSchema(t *testing.T) {
	dir, _, _ := seedStore(t)
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"schema":"vpcas/manifest/v999","generation":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir)
	err := s.LoadErr()
	if err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "v999") {
		t.Fatalf("LoadErr = %v, want ErrCorrupt naming the schema", err)
	}
	if len(s.List()) != 0 {
		t.Fatal("stale-schema store served entries")
	}
}

// TestManifestEntryHashTamper: editing an entry's blob hash in the
// manifest makes the read fail the whole-blob check — the index can
// never redirect a key to different content.
func TestManifestEntryHashTamper(t *testing.T) {
	dir, _, _ := seedStore(t)
	path := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The entry's "size" field participates in the blob check; growing it
	// by one makes the reassembled blob mismatch.
	tampered := strings.Replace(string(raw), `"size": `, `"size": 1`, 1)
	if tampered == string(raw) {
		t.Fatal("tamper target not found in manifest")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	reopenExpectCorrupt(t, dir)
}
