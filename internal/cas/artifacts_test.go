package cas

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/obs"
	"repro/internal/workload"
)

// pipelineArtifacts runs the staged pipeline once on a small benchmark
// and returns every stage artifact plus the image hash.
func pipelineArtifacts(t *testing.T) (cfg core.Config, imageHash uint64, pa *core.ProfileArtifact, ra *core.RegionArtifact, set *core.PackageSet) {
	t.Helper()
	cfg = core.ScaledConfig()
	b, err := workload.ByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.InputByName("A")
	if err != nil {
		t.Fatal(err)
	}
	in.Scale = 1
	p := b.Build(in)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	imageHash = core.ImageHash(img)
	pa, err = core.ProfileStage(cfg, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, err = core.RegionStage(cfg, img, pa)
	if err != nil {
		t.Fatal(err)
	}
	set, err = core.PackageStage(cfg, p, img, ra)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, imageHash, pa, ra, set
}

// TestArtifactRoundTrips: each typed wrapper stores and recovers its
// artifact across a store reopen, with provenance intact.
func TestArtifactRoundTrips(t *testing.T) {
	cfg, imageHash, pa, ra, set := pipelineArtifacts(t)
	dir := t.TempDir()
	s := open(t, dir)
	cfgHash := cfg.Hash()
	mc := cpu.DefaultConfig()
	base := cpu.TimingStats{Cycles: 123, Insts: 456}
	if err := s.PutProfileArtifact(imageHash, cfg.ProfileKey(), pa); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBaseline(imageHash, MachineKey(mc), base); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRegionArtifact(cfgHash, ra); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPackageSet(cfgHash, set); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	gotPA, err := s2.GetProfileArtifact(imageHash, cfg.ProfileKey())
	if err != nil {
		t.Fatal(err)
	}
	if gotPA.Stats != pa.Stats || len(gotPA.DB().Phases) != len(pa.DB().Phases) {
		t.Fatal("profile artifact did not round trip")
	}
	gotBase, err := s2.GetBaseline(imageHash, MachineKey(mc))
	if err != nil {
		t.Fatal(err)
	}
	if gotBase != base {
		t.Fatalf("baseline = %+v, want %+v", gotBase, base)
	}
	gotRA, err := s2.GetRegionArtifact(imageHash, cfgHash)
	if err != nil {
		t.Fatal(err)
	}
	if gotRA.NumRegions() != ra.NumRegions() {
		t.Fatalf("regions = %d, want %d", gotRA.NumRegions(), ra.NumRegions())
	}
	gotSet, err := s2.GetPackageSet(imageHash, cfgHash)
	if err != nil {
		t.Fatal(err)
	}
	if gotSet.Stats != set.Stats {
		t.Fatalf("pack stats = %+v, want %+v", gotSet.Stats, set.Stats)
	}
	// The recovered set materializes to the same packed image.
	p2, err := gotSet.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	img2, err := p2.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if core.ImageHash(img2) != gotSet.PackedHash {
		t.Fatal("materialized image hash != PackedHash")
	}
}

// TestWrongKeyGuards: an index redirected to the wrong blob (simulated
// by storing under a different key) is rejected by the decoded
// artifact's own provenance, wrapped as ErrCorrupt.
func TestWrongKeyGuards(t *testing.T) {
	cfg, imageHash, pa, _, _ := pipelineArtifacts(t)
	s := open(t, t.TempDir())
	// Store the artifact under a key that does not match its provenance.
	if err := s.PutProfileArtifact(imageHash, cfg.ProfileKey(), pa); err != nil {
		t.Fatal(err)
	}
	data, err := s.Get(KindProfile, Key{A: imageHash, B: cfg.ProfileKey()})
	if err != nil {
		t.Fatal(err)
	}
	wrong := Key{A: imageHash + 1, B: cfg.ProfileKey()}
	if err := s.Put(KindProfile, wrong, data); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetProfileArtifact(wrong.A, wrong.B); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mis-keyed profile error = %v, want ErrCorrupt", err)
	}
}

// TestConfigHashSeparatesVariants: the four paper variants share one
// ProfileKey but have four distinct full-config hashes, and the Verify
// knob and Pack.Verify hook do not perturb the hash.
func TestConfigHashSeparatesVariants(t *testing.T) {
	base := core.ScaledConfig()
	seenCfg := map[uint64]bool{}
	seenProfile := map[uint64]bool{}
	for _, v := range core.Variants() {
		cfg := v.Apply(base)
		seenCfg[cfg.Hash()] = true
		seenProfile[cfg.ProfileKey()] = true
	}
	if len(seenCfg) != 4 {
		t.Fatalf("variant config hashes = %d distinct, want 4", len(seenCfg))
	}
	if len(seenProfile) != 1 {
		t.Fatalf("variant profile keys = %d distinct, want 1", len(seenProfile))
	}
	// Verify gate off/on: same hash (verification never changes outputs).
	v2 := base
	v2.Verify = true
	if base.Hash() != v2.Hash() {
		t.Fatal("Verify knob perturbed Config.Hash")
	}
	// A knob that does change artifacts must perturb it.
	v3 := base
	v3.MaxPhases = 1
	if base.Hash() == v3.Hash() {
		t.Fatal("MaxPhases did not perturb Config.Hash")
	}
}

// TestPipelineObserved: the store-aware single-program pipeline emits a
// trace byte-identical to core.RunObserved on a cold run, and a warm
// rerun reuses the stored profile while producing the same packed
// program.
func TestPipelineObserved(t *testing.T) {
	cfg := core.ScaledConfig()
	b, err := workload.ByName("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	in, err := b.InputByName("A")
	if err != nil {
		t.Fatal(err)
	}
	in.Scale = 1

	recPlain := obs.NewRecorder()
	outPlain, err := core.RunObserved(cfg, b.Build(in), recPlain)
	if err != nil {
		t.Fatal(err)
	}

	s := open(t, t.TempDir())
	recCold := obs.NewRecorder()
	outCold, err := PipelineObserved(s, cfg, b.Build(in), recCold)
	if err != nil {
		t.Fatal(err)
	}
	plainJSON := normalizedJSON(t, recPlain)
	coldJSON := normalizedJSON(t, recCold)
	if string(plainJSON) != string(coldJSON) {
		t.Fatal("cold store-aware trace differs from storeless trace")
	}

	recWarm := obs.NewRecorder()
	outWarm, err := PipelineObserved(s, cfg, b.Build(in), recWarm)
	if err != nil {
		t.Fatal(err)
	}
	warm := recWarm.Export()
	for _, st := range warm.SpanTotals() {
		if st.Name == obs.StageProfile {
			t.Fatal("warm run executed the profile stage")
		}
	}
	if outWarm.ProfileInsts != outCold.ProfileInsts || len(outWarm.Pack.Packages) != len(outCold.Pack.Packages) {
		t.Fatal("warm outcome differs from cold")
	}
	warmImg, err := outWarm.Packed.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	coldImg, err := outCold.Packed.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if core.ImageHash(warmImg) != core.ImageHash(coldImg) {
		t.Fatal("warm packed image differs from cold")
	}
	_ = outPlain
}

func normalizedJSON(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.Export().Normalize().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
