// Garbage collection: size/age-based entry eviction with chunk
// refcounting from the manifest, followed by segment compaction. GC is
// the only operation that deletes segment files, and it does so only
// after the rewritten segment and manifest are durable — a crash
// mid-collection leaves either the old store or the new one, never a
// mix.
package cas

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// GCResult summarizes one collection.
type GCResult struct {
	// ReclaimedBytes is the drop in segment-file bytes (framing
	// included); DroppedEntries how many index entries were evicted.
	ReclaimedBytes int64
	DroppedEntries int
	// LiveEntries and LiveBytes describe the store after collection.
	LiveEntries int
	LiveBytes   int64
}

// GC evicts entries and compacts segments. maxAge > 0 evicts entries
// older than it; maxBytes > 0 then evicts oldest-first until the live
// payload fits the budget. Chunks are refcounted from the surviving
// entries: a chunk still referenced by any live entry survives even if
// other entries sharing it were evicted. Zero values disable the
// respective policy; GC(0, 0) only compacts garbage left by
// overwrites.
func (s *Store) GC(maxBytes int64, maxAge time.Duration) (GCResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var res GCResult
	if s.closed {
		return res, fmt.Errorf("cas: gc: store closed")
	}
	// Spill the memtable first so collection reasons about one tier.
	if len(s.mem) > 0 {
		if err := s.writeSegmentLocked(); err != nil {
			return res, err
		}
	}

	// Eviction: age first, then size, oldest first. chunkBytes approximates
	// an entry's disk share as the summed size of chunks it references;
	// shared chunks are charged to every referent, so the size policy is
	// conservative (never evicts less than needed).
	now := s.now().Unix()
	ordered := s.listLocked()
	live := make([]*Entry, 0, len(ordered))
	for _, e := range ordered {
		if maxAge > 0 && now-e.Created > int64(maxAge/time.Second) {
			res.DroppedEntries++
			continue
		}
		live = append(live, e)
	}
	if maxBytes > 0 {
		byAge := append([]*Entry(nil), live...)
		// listLocked orders by kind/key; re-order oldest first for the
		// size policy (ties broken by the deterministic kind/key order).
		for i := 1; i < len(byAge); i++ {
			for j := i; j > 0 && byAge[j].Created < byAge[j-1].Created; j-- {
				byAge[j], byAge[j-1] = byAge[j-1], byAge[j]
			}
		}
		var total int64
		for _, e := range byAge {
			total += e.Size
		}
		drop := make(map[*Entry]bool)
		for _, e := range byAge {
			if total <= maxBytes {
				break
			}
			drop[e] = true
			total -= e.Size
			res.DroppedEntries++
		}
		if len(drop) > 0 {
			kept := live[:0]
			for _, e := range live {
				if !drop[e] {
					kept = append(kept, e)
				}
			}
			live = kept
		}
	}

	// Refcount chunks from the survivors.
	refs := make(map[uint64]int)
	for _, e := range live {
		for _, ck := range e.Chunks {
			refs[ck]++
		}
	}
	var before int64
	for _, seg := range s.segments {
		before += seg.bytes
	}
	garbage := false
	for ck := range s.chunks {
		if refs[ck] == 0 {
			garbage = true
			break
		}
	}
	if res.DroppedEntries == 0 && !garbage {
		// Nothing to collect; keep the segments as they are.
		s.stats.GCRuns++
		res.LiveEntries = len(live)
		for _, e := range live {
			res.LiveBytes += e.Size
		}
		return res, nil
	}

	// Compact: read every live chunk (verifying checksums — GC refuses to
	// propagate corruption), rewrite them as fresh memtable contents, drop
	// the old segments and flush. An entry whose chunks cannot be read is
	// evicted rather than failing the collection.
	data := make(map[uint64][]byte, len(refs))
	kept := live[:0]
	for _, e := range live {
		ok := true
		for _, ck := range e.Chunks {
			if _, have := data[ck]; have {
				continue
			}
			chunk, err := s.readChunkLocked(ck)
			if err != nil {
				ok = false
				break
			}
			data[ck] = chunk
		}
		if !ok {
			res.DroppedEntries++
			continue
		}
		kept = append(kept, e)
	}
	live = kept

	// Rebuild the index around the survivors.
	oldSegments := s.segments
	s.segments = nil
	s.chunks = make(map[uint64]chunkRef, len(data))
	s.mem = make(map[uint64][]byte, len(data))
	s.memBytes = 0
	s.entries = make(map[entryKey]*Entry, len(live))
	for _, e := range live {
		s.entries[entryKey{kind: e.Kind, key: e.Key}] = e
		for _, ck := range e.Chunks {
			if _, ok := s.mem[ck]; ok {
				continue
			}
			chunk := data[ck]
			s.mem[ck] = chunk
			s.memBytes += int64(len(chunk))
			s.chunks[ck] = chunkRef{seg: -1, n: uint32(len(chunk))}
		}
	}
	s.dirty = true
	if err := s.flushLocked(); err != nil {
		return res, err
	}
	// Old segments are garbage only once the new manifest is durable.
	for _, seg := range oldSegments {
		if seg.f != nil {
			seg.f.Close()
			seg.f = nil
		}
		os.Remove(filepath.Join(s.dir, seg.name))
	}
	if err := syncDir(s.dir); err != nil {
		return res, err
	}

	var after int64
	for _, seg := range s.segments {
		after += seg.bytes
	}
	res.ReclaimedBytes = before - after
	if res.ReclaimedBytes < 0 {
		res.ReclaimedBytes = 0
	}
	res.LiveEntries = len(s.entries)
	for _, e := range s.entries {
		res.LiveBytes += e.Size
	}
	s.stats.GCRuns++
	s.stats.GCDroppedEntries += uint64(res.DroppedEntries)
	s.stats.GCReclaimedBytes += uint64(res.ReclaimedBytes)
	return res, nil
}
