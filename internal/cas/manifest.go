// Manifest codec: the single JSON root object that makes the store's
// segment files meaningful. uint64 hashes travel as zero-padded hex
// strings (JSON numbers lose precision past 2^53), and the file is
// replaced atomically so every on-disk manifest is complete.
package cas

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

type manifestJSON struct {
	Schema     string        `json:"schema"`
	Generation uint64        `json:"generation"`
	Segments   []segmentJSON `json:"segments"`
	Entries    []entryJSON   `json:"entries"`
}

type segmentJSON struct {
	Name   string      `json:"name"`
	Bytes  int64       `json:"bytes"`
	Chunks []chunkJSON `json:"chunks"`
}

type chunkJSON struct {
	Key string `json:"key"` // %016x content hash
	Off int64  `json:"off"`
	Len uint32 `json:"len"`
	CRC uint32 `json:"crc"`
}

type entryJSON struct {
	Kind    string   `json:"kind"`
	A       string   `json:"a"` // %016x
	B       string   `json:"b"` // %016x
	Size    int64    `json:"size"`
	Hash    string   `json:"hash"` // %016x
	Chunks  []string `json:"chunks"`
	Created int64    `json:"created"`
}

func hexU64(v uint64) string { return fmt.Sprintf("%016x", v) }

func parseU64(s string) (uint64, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%016x", &v); err != nil {
		return 0, fmt.Errorf("cas: manifest: bad hash %q: %w", s, ErrCorrupt)
	}
	return v, nil
}

// writeManifestLocked atomically replaces the manifest with the current
// index state. Segments must already be durable (flushLocked orders the
// segment fsync before this call).
func (s *Store) writeManifestLocked() error {
	m := manifestJSON{Schema: manifestSchema, Generation: s.gen}
	for i, seg := range s.segments {
		sj := segmentJSON{Name: seg.name, Bytes: seg.bytes}
		for ck, ref := range s.chunks {
			if ref.seg == i {
				sj.Chunks = append(sj.Chunks, chunkJSON{
					Key: hexU64(ck), Off: ref.off, Len: ref.n, CRC: ref.crc,
				})
			}
		}
		sort.Slice(sj.Chunks, func(a, b int) bool { return sj.Chunks[a].Off < sj.Chunks[b].Off })
		m.Segments = append(m.Segments, sj)
	}
	for _, e := range s.listLocked() {
		ej := entryJSON{
			Kind: e.Kind, A: hexU64(e.Key.A), B: hexU64(e.Key.B),
			Size: e.Size, Hash: hexU64(e.Hash), Created: e.Created,
		}
		for _, ck := range e.Chunks {
			ej.Chunks = append(ej.Chunks, hexU64(ck))
		}
		m.Entries = append(m.Entries, ej)
	}

	path := filepath.Join(s.dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cas: write manifest: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(&m); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cas: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cas: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: close manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: publish manifest: %w", err)
	}
	return syncDir(s.dir)
}

// listLocked returns the live entries sorted by kind then key; the
// manifest writer and the inspection surfaces share it so their order
// is identical.
func (s *Store) listLocked() []*Entry {
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Key.A != b.Key.A {
			return a.Key.A < b.Key.A
		}
		return a.Key.B < b.Key.B
	})
	return out
}

// loadManifest reads the manifest and rebuilds the index. Any problem —
// missing fields, schema drift, unparseable hashes — is returned wrapped
// in ErrCorrupt (except a cleanly absent manifest, which is a fresh
// store).
func (s *Store) loadManifest() error {
	f, err := os.Open(filepath.Join(s.dir, manifestName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cas: open manifest: %v: %w", err, ErrCorrupt)
	}
	defer f.Close()
	var m manifestJSON
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return fmt.Errorf("cas: decode manifest: %v: %w", err, ErrCorrupt)
	}
	if m.Schema != manifestSchema {
		return fmt.Errorf("cas: manifest schema %q, want %q: %w", m.Schema, manifestSchema, ErrCorrupt)
	}
	s.gen = m.Generation
	for i, sj := range m.Segments {
		s.segments = append(s.segments, &segment{name: sj.Name, bytes: sj.Bytes})
		for _, cj := range sj.Chunks {
			ck, err := parseU64(cj.Key)
			if err != nil {
				return err
			}
			s.chunks[ck] = chunkRef{seg: i, off: cj.Off, n: cj.Len, crc: cj.CRC}
		}
	}
	for _, ej := range m.Entries {
		a, err := parseU64(ej.A)
		if err != nil {
			return err
		}
		b, err := parseU64(ej.B)
		if err != nil {
			return err
		}
		h, err := parseU64(ej.Hash)
		if err != nil {
			return err
		}
		e := &Entry{
			Kind: ej.Kind, Key: Key{A: a, B: b},
			Size: ej.Size, Hash: h, Created: ej.Created,
		}
		for _, cs := range ej.Chunks {
			ck, err := parseU64(cs)
			if err != nil {
				return err
			}
			e.Chunks = append(e.Chunks, ck)
		}
		s.entries[entryKey{kind: e.Kind, key: e.Key}] = e
	}
	return nil
}
