// Package cas is the persistent content-addressed artifact store behind
// the shared -store flag: the caching tier that makes the second run of
// any input cost approximately I/O.
//
// Layout (DESIGN.md §15) follows the classic memtable → immutable segment
// files → manifest discipline. Blobs are split into fixed-size chunks,
// each keyed by its FNV-1a content hash and checksummed with CRC32;
// chunks land in an in-memory memtable and are spilled to append-once
// segment files on Flush. A single JSON manifest maps logical keys —
// (ImageHash, ProfileKey) → profile, (ProgramHash, ConfigHash) → package
// set, and so on per kind — to chunk lists, so identical content (the
// profile shared by the four paper variants, unchanged packed programs
// across daemon restarts) is stored once regardless of how many keys
// reference it.
//
// Crash discipline: segment files are fsynced before the manifest
// references them, and the manifest itself is replaced atomically
// (write-temp, fsync, rename, fsync dir), so a crash at any point leaves
// the previous manifest — and therefore a consistent store — in place.
// Corruption on read (bad CRC, bad chunk or blob hash, truncated or
// missing segment) surfaces as an ErrCorrupt-wrapped error that callers
// treat as a cache miss; it is never a panic and never a wrong-artifact
// hit.
package cas

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Sentinel store errors; both are always wrapped with detail, so match
// with errors.Is.
var (
	// ErrNotFound reports that no entry exists under the requested key.
	ErrNotFound = errors.New("cas: not found")
	// ErrCorrupt reports that stored bytes failed a checksum, hash or
	// schema check. Callers treat it as a cache miss and recompute.
	ErrCorrupt = errors.New("cas: corrupt")
)

const (
	manifestName   = "MANIFEST.json"
	manifestSchema = "vpcas/manifest/v1"
	segmentMagic   = "vpcas/seg/v1\n"
	segmentSuffix  = ".vpseg"

	// chunkSize is the fixed split size; small enough that the per-chunk
	// CRC localizes corruption, large enough that chunk bookkeeping stays
	// a rounding error next to the payload.
	chunkSize = 64 << 10

	// recordOverhead is the per-chunk framing in a segment file:
	// key u64 + length u32 + crc u32.
	recordOverhead = 16
)

// Key addresses one logical artifact within a kind: two uint64 content
// hashes whose meaning the kind defines — (ImageHash, ProfileKey) for
// profiles, (ProgramHash, ConfigHash) for region artifacts and package
// sets, (ImageHash, MachineKey) for baseline timings, (NameKey, version)
// for daemon publications.
type Key struct {
	A uint64
	B uint64
}

// entryKey is the full index key: kind plus logical key.
type entryKey struct {
	kind string
	key  Key
}

// Entry describes one logical artifact in the index.
type Entry struct {
	Kind string
	Key  Key
	// Size and Hash cover the whole reassembled blob (FNV-1a).
	Size int64
	Hash uint64
	// Chunks lists the content-hash keys of the blob's chunks in order.
	Chunks []uint64
	// Created is the entry's write time (unix seconds); GC ages on it.
	Created int64
}

// chunkRef locates one chunk: in the memtable (seg < 0) or at a byte
// offset inside a segment file.
type chunkRef struct {
	seg int // index into Store.segments, -1 = memtable
	off int64
	n   uint32
	crc uint32
}

// segment is one immutable on-disk chunk file.
type segment struct {
	name  string
	bytes int64
	f     *os.File // lazily opened read handle
}

// Stats is a point-in-time snapshot of store shape and traffic.
type Stats struct {
	Entries  int
	Chunks   int
	Segments int
	// DiskBytes is the summed size of all segment files; MemBytes the
	// unflushed memtable payload; LiveBytes the summed logical size of
	// all entries (shared chunks counted once per entry).
	DiskBytes int64
	MemBytes  int64
	LiveBytes int64
	// Traffic over this handle's lifetime.
	Hits, Misses             uint64
	BytesRead, BytesWritten  uint64
	DedupChunks              uint64
	GCReclaimedBytes         uint64
	GCRuns, GCDroppedEntries uint64
}

// Store is one open artifact store rooted at a directory. All methods
// are safe for concurrent use.
type Store struct {
	dir string

	mu       sync.Mutex
	gen      uint64 // last segment generation number used
	segments []*segment
	chunks   map[uint64]chunkRef
	mem      map[uint64][]byte
	memBytes int64
	entries  map[entryKey]*Entry
	dirty    bool // index state diverges from the on-disk manifest
	closed   bool
	loadErr  error // non-nil when Open fell back to a fresh store
	stats    Stats

	// now is the clock; tests override it to age entries.
	now func() time.Time
}

// Open opens (or creates) the store rooted at dir. A missing directory
// is created; a missing manifest means a fresh store. A corrupt manifest
// does not fail Open — the store comes up empty (every lookup misses and
// the pipeline recomputes) with the problem retained for LoadErr and
// Verify — but unreadable directories do.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: open store: %w", err)
	}
	s := &Store{
		dir:     dir,
		chunks:  make(map[uint64]chunkRef),
		mem:     make(map[uint64][]byte),
		entries: make(map[entryKey]*Entry),
		now:     time.Now,
	}
	if err := s.loadManifest(); err != nil {
		// Fall back to an empty store: stale or corrupt metadata must cost
		// a re-profile, never an error or a wrong artifact.
		s.loadErr = err
		s.gen = s.scanMaxGeneration()
		s.segments = nil
		s.chunks = make(map[uint64]chunkRef)
		s.entries = make(map[entryKey]*Entry)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// LoadErr reports the manifest problem Open recovered from, if any.
func (s *Store) LoadErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadErr
}

// hash64 is the store's content hash (FNV-1a, matching the artifact
// codecs' hash choice).
func hash64(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Put stores data under (kind, key), replacing any previous entry. The
// data is chunked and deduplicated against every chunk already present;
// storing identical content twice costs only index metadata.
func (s *Store) Put(kind string, key Key, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("cas: put %s: store closed", kind)
	}
	blobHash := hash64(data)
	ek := entryKey{kind: kind, key: key}
	if old, ok := s.entries[ek]; ok && old.Hash == blobHash && old.Size == int64(len(data)) {
		return nil // identical content already indexed
	}
	e := &Entry{
		Kind:    kind,
		Key:     key,
		Size:    int64(len(data)),
		Hash:    blobHash,
		Created: s.now().Unix(),
	}
	for off := 0; off < len(data) || (off == 0 && len(data) == 0); off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		ck := hash64(chunk)
		e.Chunks = append(e.Chunks, ck)
		if _, ok := s.chunks[ck]; ok {
			s.stats.DedupChunks++
			continue
		}
		cp := make([]byte, len(chunk))
		copy(cp, chunk)
		s.mem[ck] = cp
		s.memBytes += int64(len(cp))
		s.chunks[ck] = chunkRef{seg: -1, n: uint32(len(cp)), crc: crc32.ChecksumIEEE(cp)}
		if len(data) == 0 {
			break
		}
	}
	s.entries[ek] = e
	s.dirty = true
	s.stats.BytesWritten += uint64(len(data))
	return nil
}

// Get returns the blob stored under (kind, key). A missing entry returns
// an ErrNotFound-wrapped error; stored bytes that fail any checksum or
// hash return an ErrCorrupt-wrapped error. Both count as misses.
func (s *Store) Get(kind string, key Key) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[entryKey{kind: kind, key: key}]
	if !ok {
		s.stats.Misses++
		return nil, fmt.Errorf("cas: %s %016x/%016x: %w", kind, key.A, key.B, ErrNotFound)
	}
	data, err := s.assembleLocked(e)
	if err != nil {
		s.stats.Misses++
		return nil, err
	}
	s.stats.Hits++
	s.stats.BytesRead += uint64(len(data))
	return data, nil
}

// Has reports whether an entry exists under (kind, key) without reading
// or verifying its chunks.
func (s *Store) Has(kind string, key Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[entryKey{kind: kind, key: key}]
	return ok
}

// assembleLocked reads, checksums and reassembles one entry's blob.
func (s *Store) assembleLocked(e *Entry) ([]byte, error) {
	data := make([]byte, 0, e.Size)
	for _, ck := range e.Chunks {
		chunk, err := s.readChunkLocked(ck)
		if err != nil {
			return nil, fmt.Errorf("cas: %s %016x/%016x: %w", e.Kind, e.Key.A, e.Key.B, err)
		}
		data = append(data, chunk...)
	}
	if int64(len(data)) != e.Size || hash64(data) != e.Hash {
		return nil, fmt.Errorf("cas: %s %016x/%016x: blob hash mismatch: %w",
			e.Kind, e.Key.A, e.Key.B, ErrCorrupt)
	}
	return data, nil
}

// readChunkLocked fetches one chunk from the memtable or its segment,
// verifying the CRC and the content hash against the chunk key.
func (s *Store) readChunkLocked(ck uint64) ([]byte, error) {
	ref, ok := s.chunks[ck]
	if !ok {
		return nil, fmt.Errorf("chunk %016x missing from index: %w", ck, ErrCorrupt)
	}
	if ref.seg < 0 {
		return s.mem[ck], nil
	}
	if ref.seg >= len(s.segments) {
		return nil, fmt.Errorf("chunk %016x: segment index out of range: %w", ck, ErrCorrupt)
	}
	seg := s.segments[ref.seg]
	if seg.f == nil {
		f, err := os.Open(filepath.Join(s.dir, seg.name))
		if err != nil {
			return nil, fmt.Errorf("chunk %016x: open segment %s: %v: %w", ck, seg.name, err, ErrCorrupt)
		}
		seg.f = f
	}
	buf := make([]byte, ref.n)
	if _, err := seg.f.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("chunk %016x: read segment %s: %v: %w", ck, seg.name, err, ErrCorrupt)
	}
	if crc32.ChecksumIEEE(buf) != ref.crc {
		return nil, fmt.Errorf("chunk %016x: crc mismatch in %s: %w", ck, seg.name, ErrCorrupt)
	}
	if hash64(buf) != ck {
		return nil, fmt.Errorf("chunk %016x: content hash mismatch in %s: %w", ck, seg.name, ErrCorrupt)
	}
	return buf, nil
}

// Flush spills the memtable into a new immutable segment file and
// rewrites the manifest. The segment is fsynced before the manifest
// references it; the manifest replace is atomic. A clean store is a
// no-op.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if len(s.mem) > 0 {
		if err := s.writeSegmentLocked(); err != nil {
			return err
		}
	}
	if !s.dirty {
		return nil
	}
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// writeSegmentLocked persists every memtable chunk into one new segment
// file, in sorted chunk-key order so identical content always produces
// identical segment bytes.
func (s *Store) writeSegmentLocked() error {
	keys := make([]uint64, 0, len(s.mem))
	for ck := range s.mem {
		keys = append(keys, ck)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	s.gen++
	name := fmt.Sprintf("seg-%016x%s", s.gen, segmentSuffix)
	path := filepath.Join(s.dir, name)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("cas: write segment: %w", err)
	}
	var (
		off  = int64(len(segmentMagic))
		refs = make(map[uint64]chunkRef, len(keys))
		hdr  [recordOverhead]byte
	)
	if _, err := f.WriteString(segmentMagic); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cas: write segment: %w", err)
	}
	for _, ck := range keys {
		chunk := s.mem[ck]
		crc := crc32.ChecksumIEEE(chunk)
		binary.LittleEndian.PutUint64(hdr[0:8], ck)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(chunk)))
		binary.LittleEndian.PutUint32(hdr[12:16], crc)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("cas: write segment: %w", err)
		}
		if _, err := f.Write(chunk); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("cas: write segment: %w", err)
		}
		refs[ck] = chunkRef{off: off + recordOverhead, n: uint32(len(chunk)), crc: crc}
		off += recordOverhead + int64(len(chunk))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("cas: sync segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: close segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cas: publish segment: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	segIdx := len(s.segments)
	s.segments = append(s.segments, &segment{name: name, bytes: off})
	for ck, ref := range refs {
		ref.seg = segIdx
		s.chunks[ck] = ref
	}
	s.mem = make(map[uint64][]byte)
	s.memBytes = 0
	s.dirty = true
	return nil
}

// Close flushes pending writes, fsyncs the manifest and releases file
// handles. Safe to call more than once.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	for _, seg := range s.segments {
		if seg.f != nil {
			seg.f.Close()
			seg.f = nil
		}
	}
	s.closed = true
	return err
}

// Stats returns a snapshot of store shape and lifetime traffic.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Chunks = len(s.chunks)
	st.Segments = len(s.segments)
	st.MemBytes = s.memBytes
	st.DiskBytes = 0
	for _, seg := range s.segments {
		st.DiskBytes += seg.bytes
	}
	st.LiveBytes = 0
	for _, e := range s.entries {
		st.LiveBytes += e.Size
	}
	return st
}

// List returns every entry (copies), sorted by kind then key, for
// inspection tools.
func (s *Store) List() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	ordered := s.listLocked()
	out := make([]Entry, 0, len(ordered))
	for _, e := range ordered {
		cp := *e
		cp.Chunks = append([]uint64(nil), e.Chunks...)
		out = append(out, cp)
	}
	return out
}

// Verify re-reads and re-checksums every entry, returning one error per
// problem found (manifest fallback included), in List order. An empty
// slice means the store is fully intact.
func (s *Store) Verify() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var errs []error
	if s.loadErr != nil {
		errs = append(errs, s.loadErr)
	}
	for _, e := range s.listLocked() {
		if _, err := s.assembleLocked(e); err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

// syncDir fsyncs a directory so a just-renamed file inside it survives a
// crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cas: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("cas: sync dir: %w", err)
	}
	return nil
}

// scanMaxGeneration finds the highest segment generation present on
// disk, so a store recovered from a corrupt manifest never reuses (and
// silently clobbers) an existing segment name.
func (s *Store) scanMaxGeneration() uint64 {
	names, err := filepath.Glob(filepath.Join(s.dir, "seg-*"+segmentSuffix))
	if err != nil {
		return 0
	}
	var max uint64
	for _, n := range names {
		base := filepath.Base(n)
		var g uint64
		if _, err := fmt.Sscanf(base, "seg-%016x"+segmentSuffix, &g); err == nil && g > max {
			max = g
		}
	}
	return max
}
