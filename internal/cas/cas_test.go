package cas

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// blob synthesizes n deterministic bytes seeded by tag.
func blob(tag byte, n int) []byte {
	b := make([]byte, n)
	x := uint32(tag)*2654435761 + 12345
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

func open(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, kind string, k Key, data []byte) {
	t.Helper()
	if err := s.Put(kind, k, data); err != nil {
		t.Fatalf("put %s: %v", kind, err)
	}
}

func mustGet(t *testing.T, s *Store, kind string, k Key, want []byte) {
	t.Helper()
	got, err := s.Get(kind, k)
	if err != nil {
		t.Fatalf("get %s: %v", kind, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("get %s: %d bytes, want %d, content differs", kind, len(got), len(want))
	}
}

// TestRoundTrip: puts of several sizes (empty, sub-chunk, multi-chunk)
// read back intact both from the memtable and, after Flush, from
// segment files — and again from a fresh Open of the same directory.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	blobs := map[Key][]byte{
		{A: 1, B: 1}: {},
		{A: 1, B: 2}: blob(1, 100),
		{A: 2, B: 1}: blob(2, chunkSize),
		{A: 2, B: 2}: blob(3, 3*chunkSize+17),
	}
	for k, d := range blobs {
		mustPut(t, s, KindProfile, k, d)
	}
	for k, d := range blobs {
		mustGet(t, s, KindProfile, k, d) // memtable reads
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for k, d := range blobs {
		mustGet(t, s, KindProfile, k, d) // segment reads
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir)
	if got := len(s2.List()); got != len(blobs) {
		t.Fatalf("reopened store has %d entries, want %d", got, len(blobs))
	}
	for k, d := range blobs {
		mustGet(t, s2, KindProfile, k, d) // recovered reads
	}
	st := s2.Stats()
	if st.Segments != 1 {
		t.Fatalf("segments = %d, want 1", st.Segments)
	}
	if st.Hits != uint64(len(blobs)) {
		t.Fatalf("hits = %d, want %d", st.Hits, len(blobs))
	}
}

// TestNotFoundAndKinds: a miss wraps ErrNotFound, and the same Key under
// different kinds addresses different blobs.
func TestNotFoundAndKinds(t *testing.T) {
	s := open(t, t.TempDir())
	k := Key{A: 7, B: 7}
	if _, err := s.Get(KindProfile, k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss error = %v, want ErrNotFound", err)
	}
	mustPut(t, s, KindProfile, k, blob(1, 64))
	mustPut(t, s, KindPackageSet, k, blob(2, 64))
	mustGet(t, s, KindProfile, k, blob(1, 64))
	mustGet(t, s, KindPackageSet, k, blob(2, 64))
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}
}

// TestDedup: identical content under many keys is stored once — the
// second key costs index metadata, not chunk bytes.
func TestDedup(t *testing.T) {
	s := open(t, t.TempDir())
	data := blob(9, 2*chunkSize)
	mustPut(t, s, KindProfile, Key{A: 1}, data)
	mem := s.Stats().MemBytes
	for i := uint64(2); i <= 5; i++ {
		mustPut(t, s, KindPackageSet, Key{A: i}, data)
	}
	st := s.Stats()
	if st.MemBytes != mem {
		t.Fatalf("memtable grew %d -> %d storing duplicate content", mem, st.MemBytes)
	}
	if st.DedupChunks != 4*2 {
		t.Fatalf("dedup chunks = %d, want 8", st.DedupChunks)
	}
	// Overwriting a key with new content replaces the entry.
	next := blob(10, 100)
	mustPut(t, s, KindProfile, Key{A: 1}, next)
	mustGet(t, s, KindProfile, Key{A: 1}, next)
}

// TestFlushIdempotent: Flush with nothing pending writes nothing new,
// and repeated put/flush cycles accumulate segments that all stay
// readable.
func TestFlushIdempotent(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	mustPut(t, s, KindProfile, Key{A: 1}, blob(1, 100))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments != 1 {
		t.Fatalf("idempotent flush made %d segments, want 1", st.Segments)
	}
	mustPut(t, s, KindProfile, Key{A: 2}, blob(2, 100))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments != 2 {
		t.Fatalf("segments = %d, want 2", st.Segments)
	}
	mustGet(t, s, KindProfile, Key{A: 1}, blob(1, 100))
	mustGet(t, s, KindProfile, Key{A: 2}, blob(2, 100))
	if errs := s.Verify(); len(errs) != 0 {
		t.Fatalf("verify: %v", errs)
	}
}

// TestConcurrent hammers one store from many goroutines — puts, gets,
// flushes — for the race detector's benefit.
func TestConcurrent(t *testing.T) {
	s := open(t, t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := Key{A: uint64(g), B: uint64(i)}
				data := blob(byte(g*20+i), 1000+i)
				if err := s.Put(KindProfile, k, data); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, err := s.Get(KindProfile, k)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("get %v: %v", k, err)
					return
				}
				if i%7 == 0 {
					if err := s.Flush(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if errs := s.Verify(); len(errs) != 0 {
		t.Fatalf("verify after concurrent load: %v", errs)
	}
}

// TestDeterministicSegments: the same content flushed in different
// insertion orders produces byte-identical segment files (chunks are
// sorted by content key at write time).
func TestDeterministicSegments(t *testing.T) {
	write := func(dir string, reverse bool) string {
		s := open(t, dir)
		keys := []Key{{A: 1}, {A: 2}, {A: 3}}
		if reverse {
			keys = []Key{{A: 3}, {A: 2}, {A: 1}}
		}
		for _, k := range keys {
			mustPut(t, s, KindProfile, k, blob(byte(k.A), 5000))
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		names, err := filepath.Glob(filepath.Join(dir, "seg-*"+segmentSuffix))
		if err != nil || len(names) != 1 {
			t.Fatalf("segments: %v %v", names, err)
		}
		return names[0]
	}
	a := write(t.TempDir(), false)
	b := write(t.TempDir(), true)
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Fatal("segment bytes differ across insertion orders")
	}
}

// TestClosedPut: a closed store refuses writes instead of corrupting
// state.
func TestClosedPut(t *testing.T) {
	s := open(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindProfile, Key{A: 1}, []byte("x")); err == nil {
		t.Fatal("put on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestManyEntriesManifest: a store with entries across kinds and several
// flush generations reopens with every entry listed in deterministic
// order.
func TestManyEntriesManifest(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir)
	kinds := []string{KindProfile, KindRegion, KindPackageSet, KindBaseline, KindVersion, KindProv}
	for i, kind := range kinds {
		for j := uint64(0); j < 3; j++ {
			mustPut(t, s, kind, Key{A: j, B: uint64(i)}, blob(byte(i*3+int(j)), 777))
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir)
	list := s2.List()
	if len(list) != len(kinds)*3 {
		t.Fatalf("entries = %d, want %d", len(list), len(kinds)*3)
	}
	for i := 1; i < len(list); i++ {
		a, b := list[i-1], list[i]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.Key.A > b.Key.A) {
			t.Fatalf("list order violated at %d: %v >= %v", i, a, b)
		}
	}
	for _, e := range list {
		if _, err := s2.Get(e.Kind, e.Key); err != nil {
			t.Fatalf("get %s %v: %v", e.Kind, e.Key, err)
		}
	}
}

// TestHas: presence checks don't count as traffic.
func TestHas(t *testing.T) {
	s := open(t, t.TempDir())
	mustPut(t, s, KindProfile, Key{A: 1}, blob(1, 10))
	if !s.Has(KindProfile, Key{A: 1}) || s.Has(KindProfile, Key{A: 2}) {
		t.Fatal("Has answered wrong")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Has counted traffic: %+v", st)
	}
}

func TestErrorStringsNameTheKey(t *testing.T) {
	s := open(t, t.TempDir())
	_, err := s.Get(KindPackageSet, Key{A: 0xabc, B: 0xdef})
	want := fmt.Sprintf("%016x", 0xabc)
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("miss error %q does not name the key", err)
	}
}
