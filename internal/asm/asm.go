// Package asm implements a two-pass assembler and a disassembler for VPIR
// programs. The textual form exists for hand-written test inputs, examples
// and debugging dumps; the workload generator builds programs directly.
//
// Syntax (one statement per line, ';' or '#' start comments):
//
//	.func NAME        start a function
//	.main             mark the current function as the program entry
//	.data V1 V2 ...   append 64-bit words to the data segment
//	LABEL:            start a new basic block
//	  li r1, 10       instructions in VPIR assembly
//	  beq r1, r2, L   conditional branch to label L, falls through
//	  jmp L           unconditional transfer
//	  call F          call function F, continues at the next statement
//	  la r1, L        materialize the address of label L
//	  ret / halt      block terminators
//
// Labels are scoped to their function. A label on a line by itself starts a
// new block; falling off the end of a block without a terminator creates a
// fallthrough arc to the next block.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// SyntaxError reports an assembly failure with its line number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

type fixup struct {
	block *prog.Block
	// what to patch once labels resolve
	field string // "taken", "next", "la"
	laIdx int    // instruction index for "la"
	label string
	line  int
}

type callFixup struct {
	block *prog.Block
	name  string
	line  int
}

type assembler struct {
	p *prog.Program

	fn  *prog.Func
	cur *prog.Block // nil when the previous statement sealed the block
	// pendingFall is a branch or call block whose fallthrough/continuation
	// arc must be wired to whatever block materializes next.
	pendingFall  *prog.Block
	labels       map[string]*prog.Block
	globalLabels map[string]*prog.Block
	fixes        []fixup
	globalFixes  []fixup
	calls        []callFixup
	line         int
}

// Assemble parses src into a program and verifies it.
func Assemble(src string) (*prog.Program, error) {
	a := &assembler{p: prog.New(), globalLabels: make(map[string]*prog.Block)}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.statement(raw); err != nil {
			return nil, err
		}
	}
	if err := a.endFunc(); err != nil {
		return nil, err
	}
	for _, fx := range a.globalFixes {
		target, ok := a.globalLabels[fx.label]
		if !ok {
			return nil, &SyntaxError{fx.line, fmt.Sprintf("undefined label %q", fx.label)}
		}
		applyFix(fx, target)
	}
	for _, cf := range a.calls {
		f := a.p.FuncByName(cf.name)
		if f == nil {
			return nil, &SyntaxError{cf.line, fmt.Sprintf("call to undefined function %q", cf.name)}
		}
		cf.block.Callee = f
	}
	if a.p.Main == nil {
		return nil, &SyntaxError{a.line, "no .main function declared"}
	}
	if err := a.p.Verify(); err != nil {
		return nil, fmt.Errorf("asm: assembled program invalid: %w", err)
	}
	return a.p, nil
}

func (a *assembler) errf(format string, args ...any) error {
	return &SyntaxError{a.line, fmt.Sprintf(format, args...)}
}

// block returns the current block, opening a new one if necessary and
// wiring any pending branch/call fallthrough arc to it.
func (a *assembler) block() (*prog.Block, error) {
	if a.fn == nil {
		return nil, a.errf("statement outside .func")
	}
	if a.cur == nil {
		a.cur = a.p.NewBlock(a.fn)
		if a.pendingFall != nil {
			a.pendingFall.Next = a.cur
			a.pendingFall = nil
		}
	}
	return a.cur, nil
}

// seal closes the current block with the given mutation applied.
func (a *assembler) seal(mut func(b *prog.Block)) error {
	b, err := a.block()
	if err != nil {
		return err
	}
	mut(b)
	a.cur = nil
	return nil
}

func (a *assembler) endFunc() error {
	if a.fn == nil {
		return nil
	}
	if a.pendingFall != nil {
		return &SyntaxError{a.line, fmt.Sprintf("branch or call at end of function %s has no fallthrough code", a.fn.Name)}
	}
	// An open trailing block keeps its default Halt terminator: code that
	// falls off the end of a function stops the machine, which surfaces
	// bugs instead of hiding them.
	a.cur = nil
	for _, fx := range a.fixes {
		target, ok := a.labels[fx.label]
		if !ok {
			// Defer to the program-wide label table; package code may
			// legitimately reference blocks of other functions.
			a.globalFixes = append(a.globalFixes, fx)
			continue
		}
		applyFix(fx, target)
	}
	for name, b := range a.labels {
		if _, dup := a.globalLabels[name]; !dup {
			a.globalLabels[name] = b
		}
	}
	a.fixes = a.fixes[:0]
	a.labels = nil
	a.fn = nil
	return nil
}

func applyFix(fx fixup, target *prog.Block) {
	switch fx.field {
	case "taken":
		fx.block.Taken = target
	case "next":
		fx.block.Next = target
	case "la":
		fx.block.Insts[fx.laIdx].BlockTarget = target
	}
}

func (a *assembler) statement(raw string) error {
	line := raw
	if i := strings.IndexAny(line, ";#"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}

	// Label prefix (possibly followed by an instruction on the same line).
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(line[:i])
		if !isIdent(name) {
			break // e.g. "ld r1, 0(r2)" contains no ':', so this is unreachable; defensive
		}
		if err := a.label(name); err != nil {
			return err
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}

	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.instruction(line)
}

func (a *assembler) label(name string) error {
	if a.fn == nil {
		return a.errf("label %q outside .func", name)
	}
	if _, dup := a.labels[name]; dup {
		return a.errf("duplicate label %q", name)
	}
	nb := a.p.NewBlock(a.fn)
	if a.cur != nil {
		// Previous block still open: fall through into the labeled block.
		a.cur.Kind = prog.TermFall
		a.cur.Next = nb
	}
	if a.pendingFall != nil {
		a.pendingFall.Next = nb
		a.pendingFall = nil
	}
	a.cur = nb
	a.labels[name] = nb
	return nil
}

func (a *assembler) directive(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".func":
		if len(fields) != 2 || !isIdent(fields[1]) {
			return a.errf(".func requires one identifier argument")
		}
		if err := a.endFunc(); err != nil {
			return err
		}
		if a.p.FuncByName(fields[1]) != nil {
			return a.errf("duplicate function %q", fields[1])
		}
		a.fn = a.p.AddFunc(fields[1])
		a.cur = nil // entry block materializes at the first statement
		a.labels = make(map[string]*prog.Block)
		return nil
	case ".main":
		if a.fn == nil {
			return a.errf(".main outside .func")
		}
		a.p.Main = a.fn
		return nil
	case ".package":
		if a.fn == nil {
			return a.errf(".package outside .func")
		}
		a.fn.IsPackage = true
		if len(fields) == 2 {
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return a.errf(".package phase id %q: %v", fields[1], err)
			}
			a.fn.PhaseID = id
		}
		return nil
	case ".data":
		for _, f := range fields[1:] {
			v, err := strconv.ParseInt(f, 0, 64)
			if err != nil {
				return a.errf(".data value %q: %v", f, err)
			}
			a.p.Data = append(a.p.Data, v)
		}
		return nil
	default:
		return a.errf("unknown directive %q", fields[0])
	}
}

func (a *assembler) instruction(line string) error {
	mnem := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, ok := isa.OpcodeByName(mnem)
	if !ok {
		return a.errf("unknown mnemonic %q", mnem)
	}
	args := splitArgs(rest)

	switch op {
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE:
		if len(args) != 3 {
			return a.errf("%s requires rs1, rs2, label", mnem)
		}
		rs1, err := a.reg(args[0])
		if err != nil {
			return err
		}
		rs2, err := a.reg(args[1])
		if err != nil {
			return err
		}
		if !isIdent(args[2]) {
			return a.errf("%s target %q is not a label", mnem, args[2])
		}
		lbl := args[2]
		b, err := a.block()
		if err != nil {
			return err
		}
		b.Kind = prog.TermBranch
		b.CmpOp = op
		b.Rs1, b.Rs2 = rs1, rs2
		a.fixes = append(a.fixes, fixup{block: b, field: "taken", label: lbl, line: a.line})
		// Fallthrough: open the next block immediately so the arc exists.
		// If a label follows, it reuses this block only via labelling a new
		// one — so instead leave cur nil and patch Next when the successor
		// block materializes.
		a.pendingFall = b
		a.cur = nil
		return nil
	case isa.JMP:
		if len(args) != 1 || !isIdent(args[0]) {
			return a.errf("jmp requires a label")
		}
		lbl := args[0]
		return a.seal(func(b *prog.Block) {
			b.Kind = prog.TermFall
			a.fixes = append(a.fixes, fixup{block: b, field: "next", label: lbl, line: a.line})
		})
	case isa.CALL:
		if len(args) != 1 || !isIdent(args[0]) {
			return a.errf("call requires a function name")
		}
		name := args[0]
		b, err := a.block()
		if err != nil {
			return err
		}
		b.Kind = prog.TermCall
		a.calls = append(a.calls, callFixup{block: b, name: name, line: a.line})
		a.pendingFall = b
		a.cur = nil
		return nil
	case isa.RET:
		if len(args) != 0 {
			return a.errf("ret takes no operands")
		}
		return a.seal(func(b *prog.Block) { b.Kind = prog.TermRet })
	case isa.JR:
		if len(args) != 1 {
			return a.errf("jr requires a register")
		}
		rs1, err := a.reg(args[0])
		if err != nil {
			return err
		}
		return a.seal(func(b *prog.Block) {
			b.Kind = prog.TermJumpReg
			b.Rs1 = rs1
		})
	case isa.HALT:
		if len(args) != 0 {
			return a.errf("halt takes no operands")
		}
		return a.seal(func(b *prog.Block) { b.Kind = prog.TermHalt })
	case isa.LA:
		if len(args) != 2 {
			return a.errf("la requires rd, label")
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		if !isIdent(args[1]) {
			return a.errf("la target %q is not a label", args[1])
		}
		b, err := a.block()
		if err != nil {
			return err
		}
		b.Append(prog.Ins{Inst: isa.Inst{Op: isa.LA, Rd: rd}})
		a.fixes = append(a.fixes, fixup{block: b, field: "la", laIdx: len(b.Insts) - 1, label: args[1], line: a.line})
		return nil
	}

	// Plain (non-control) instructions.
	in := isa.Inst{Op: op}
	switch {
	case op == isa.LD || op == isa.FLD: // ld rd, imm(rs1)
		if len(args) != 2 {
			return a.errf("%s requires rd, imm(rs1)", mnem)
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, rs1, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		in.Rd, in.Rs1, in.Imm = rd, rs1, imm
	case op == isa.ST || op == isa.FST: // st rs2, imm(rs1)
		if len(args) != 2 {
			return a.errf("%s requires rs2, imm(rs1)", mnem)
		}
		rs2, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, rs1, err := a.memOperand(args[1])
		if err != nil {
			return err
		}
		in.Rs2, in.Rs1, in.Imm = rs2, rs1, imm
	case op == isa.LI:
		if len(args) != 2 {
			return a.errf("li requires rd, imm")
		}
		rd, err := a.reg(args[0])
		if err != nil {
			return err
		}
		imm, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return a.errf("li immediate %q: %v", args[1], err)
		}
		in.Rd, in.Imm = rd, imm
	case op.HasRd() && op.HasRs1() && op.HasRs2():
		if len(args) != 3 {
			return a.errf("%s requires rd, rs1, rs2", mnem)
		}
		var err error
		if in.Rd, err = a.reg(args[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(args[1]); err != nil {
			return err
		}
		if in.Rs2, err = a.reg(args[2]); err != nil {
			return err
		}
	case op.HasRd() && op.HasRs1() && op.HasImm():
		if len(args) != 3 {
			return a.errf("%s requires rd, rs1, imm", mnem)
		}
		var err error
		if in.Rd, err = a.reg(args[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(args[1]); err != nil {
			return err
		}
		if in.Imm, err = strconv.ParseInt(args[2], 0, 64); err != nil {
			return a.errf("%s immediate %q: %v", mnem, args[2], err)
		}
	case op.HasRd() && op.HasRs1(): // fcvtif / fcvtfi
		if len(args) != 2 {
			return a.errf("%s requires rd, rs1", mnem)
		}
		var err error
		if in.Rd, err = a.reg(args[0]); err != nil {
			return err
		}
		if in.Rs1, err = a.reg(args[1]); err != nil {
			return err
		}
	case op == isa.NOP:
		if len(args) != 0 {
			return a.errf("nop takes no operands")
		}
	default:
		return a.errf("unhandled instruction shape for %q", mnem)
	}

	b, err := a.block()
	if err != nil {
		return err
	}
	b.Append(prog.Ins{Inst: in})
	return nil
}

func (a *assembler) reg(s string) (isa.Reg, error) {
	switch s {
	case "sp":
		return isa.RSP, nil
	case "ra":
		return isa.RRA, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'f') {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 {
			if s[0] == 'r' && n < isa.NumIntRegs {
				return isa.Reg(n), nil
			}
			if s[0] == 'f' && n < isa.NumFPRegs {
				return isa.F(n), nil
			}
		}
	}
	return 0, a.errf("invalid register %q", s)
}

// memOperand parses "imm(reg)".
func (a *assembler) memOperand(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, a.errf("invalid memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	imm := int64(0)
	if immStr != "" {
		v, err := strconv.ParseInt(immStr, 0, 64)
		if err != nil {
			return 0, 0, a.errf("memory offset %q: %v", immStr, err)
		}
		imm = v
	}
	r, err := a.reg(strings.TrimSpace(s[open+1 : len(s)-1]))
	if err != nil {
		return 0, 0, err
	}
	return imm, r, nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
