package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

const sampleSrc = `
; sample program: sums data words until a zero sentinel
.data 5 7 9 0

.func sum
entry:
  li r2, 0          ; accumulator
  li r3, 1048576    ; DataBase
loop:
  ld r4, 0(r3)
  beq r4, r0, done
  add r2, r2, r4
  addi r3, r3, 8
  jmp loop
done:
  ret

.func main
.main
  li sp, 1073741824
  call sum
  st r2, -8(sp)
  halt
`

func TestAssembleSample(t *testing.T) {
	p, err := Assemble(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if p.Main == nil || p.Main.Name != "main" {
		t.Fatal("main not set")
	}
	if len(p.Data) != 4 || p.Data[1] != 7 {
		t.Fatalf("data = %v", p.Data)
	}
	sum := p.FuncByName("sum")
	if sum == nil {
		t.Fatal("sum not found")
	}
	// entry (li,li) -> loop (ld, beq) -> body (add, addi, jmp) -> done(ret)
	// The entry block falls into loop; beq opens a fallthrough block.
	if got := len(sum.Blocks); got != 4 {
		t.Fatalf("sum blocks = %d, want 4", got)
	}
	loop := sum.Blocks[1]
	if loop.Kind != prog.TermBranch || loop.CmpOp != isa.BEQ {
		t.Fatalf("loop terminator = %v/%v", loop.Kind, loop.CmpOp)
	}
	if loop.Taken != sum.Blocks[3] {
		t.Errorf("beq taken = %v, want done block", loop.Taken)
	}
	if loop.Next != sum.Blocks[2] {
		t.Errorf("beq fallthrough = %v, want body block", loop.Next)
	}
	body := sum.Blocks[2]
	if body.Kind != prog.TermFall || body.Next != loop {
		t.Errorf("body should jump back to loop, got %v -> %v", body.Kind, body.Next)
	}
	// main: block0 (li, call) -> block1 (st, halt)
	if p.Main.Blocks[0].Kind != prog.TermCall || p.Main.Blocks[0].Callee != sum {
		t.Error("main should call sum")
	}
}

func TestAssembleRunsThroughLinearize(t *testing.T) {
	p, err := Assemble(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Code) == 0 {
		t.Fatal("empty image")
	}
}

func TestLabelOnSameLine(t *testing.T) {
	p, err := Assemble(".func main\n.main\nL: li r1, 5\n  beq r1, r0, L\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	f := p.Main
	if len(f.Blocks) < 2 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
}

func TestAssembleAllShapes(t *testing.T) {
	src := `
.func aux
  ret
.func main
.main
top:
  nop
  add r1, r2, r3
  addi r1, r2, -7
  li r9, 0x10
  ld r4, 8(sp)
  st r4, 0(r3)
  fld f1, 0(r3)
  fst f1, 8(r3)
  fadd f2, f1, f1
  fcvtif f3, r4
  fcvtfi r5, f3
  la r6, top
  call aux
  bge r1, r2, top
  halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Linearize(); err != nil {
		t.Fatal(err)
	}
	// Check the LA got its block target.
	var found bool
	for _, b := range p.Main.Blocks {
		for _, in := range b.Insts {
			if in.Op == isa.LA {
				found = true
				if in.BlockTarget == nil {
					t.Error("LA has no BlockTarget")
				}
			}
		}
	}
	if !found {
		t.Error("no LA found")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no main", ".func f\n  halt\n", "no .main"},
		{"unknown mnemonic", ".func m\n.main\n  frob r1\n", "unknown mnemonic"},
		{"bad reg", ".func m\n.main\n  li r99, 4\n", "invalid register"},
		{"bad fp reg", ".func m\n.main\n  li f16, 4\n", "invalid register"},
		{"outside func", "  li r1, 4\n", "outside .func"},
		{"label outside func", "L:\n", "outside .func"},
		{"undefined label", ".func m\n.main\n  jmp nowhere\n  halt\n", "undefined label"},
		{"undefined call", ".func m\n.main\n  call ghost\n  halt\n", "undefined function"},
		{"duplicate label", ".func m\n.main\nL:\n  nop\nL:\n  halt\n", "duplicate label"},
		{"duplicate func", ".func m\n.main\n  halt\n.func m\n  halt\n", "duplicate function"},
		{"bad directive", ".wat\n", "unknown directive"},
		{"bad data", ".data zebra\n", ".data value"},
		{"branch at end", ".func m\n.main\n  beq r1, r2, m2\nm2:\n  halt\n.func z\n  beq r1, r2, zz\nzz:\n  ret\n", ""},
		{"dangling branch", ".func m\n.main\n  halt\n.func z\nzz:\n  beq r1, r2, zz\n", "no fallthrough"},
		{"bad mem operand", ".func m\n.main\n  ld r1, r2\n  halt\n", "invalid memory operand"},
		{"bad imm", ".func m\n.main\n  addi r1, r2, many\n  halt\n", "immediate"},
		{"ret operands", ".func m\n.main\n  ret r1\n", "no operands"},
		{"branch arity", ".func m\n.main\n  beq r1, r2\n  halt\n", "requires"},
		{"main twice ok", ".func m\n.main\n.main\n  halt\n", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := Assemble(".func m\n.main\n  bogus\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T, want *SyntaxError", err)
	}
	if se.Line != 3 {
		t.Errorf("line = %d, want 3", se.Line)
	}
	if !strings.Contains(se.Error(), "line 3") {
		t.Errorf("Error() = %q", se.Error())
	}
}

// Round trip: disassembling and reassembling produces an identical
// linearized image.
func TestDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	img1, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}
	img2, err := p2.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(img1.Code) != len(img2.Code) {
		t.Fatalf("image sizes differ: %d vs %d\n%s", len(img1.Code), len(img2.Code), text)
	}
	for i := range img1.Code {
		if img1.Code[i] != img2.Code[i] {
			t.Fatalf("slot %d differs: %v vs %v", i, img1.Code[i], img2.Code[i])
		}
	}
	if len(p.Data) != len(p2.Data) {
		t.Fatalf("data lengths differ")
	}
	for i := range p.Data {
		if p.Data[i] != p2.Data[i] {
			t.Fatalf("data[%d] differs", i)
		}
	}
}

func TestDisassembleMarksPackage(t *testing.T) {
	p, err := Assemble(".func m\n.main\n  halt\n")
	if err != nil {
		t.Fatal(err)
	}
	pkg := p.AddFunc("pkg.1")
	b := p.NewBlock(pkg)
	b.Kind = prog.TermRet
	pkg.IsPackage = true
	pkg.PhaseID = 3
	text := Disassemble(p)
	if !strings.Contains(text, ".package 3") {
		t.Fatalf("missing .package directive:\n%s", text)
	}
	p2, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	f2 := p2.FuncByName("pkg.1")
	if f2 == nil || !f2.IsPackage || f2.PhaseID != 3 {
		t.Error("package flags lost in round trip")
	}
}

func TestDisassembleImage(t *testing.T) {
	p, err := Assemble(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	text := DisassembleImage(img)
	if !strings.Contains(text, "halt") || !strings.Contains(text, "call") {
		t.Errorf("image disassembly seems incomplete:\n%s", text)
	}
}

func TestAssembleMoreErrorShapes(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"jr ok", ".func m\n.main\n  la r29, x\nx:\n  jr r29\n", ""},
		{"jr arity", ".func m\n.main\n  jr\n", "requires a register"},
		{"jr bad reg", ".func m\n.main\n  jr r99\n", "invalid register"},
		{"la arity", ".func m\n.main\n  la r1\n  halt\n", "requires rd, label"},
		{"la bad target", ".func m\n.main\n  la r1, 77\n  halt\n", "not a label"},
		{"jmp numeric", ".func m\n.main\n  jmp 99\n  halt\n", "requires a label"},
		{"call numeric", ".func m\n.main\n  call 99\n  halt\n", "requires a function name"},
		{"branch numeric target", ".func m\n.main\n  beq r1, r2, 42\n  halt\n", "not a label"},
		{"st arity", ".func m\n.main\n  st r1\n  halt\n", "requires"},
		{"ld bad offset", ".func m\n.main\n  ld r1, zz(r2)\n  halt\n", "memory offset"},
		{"ld bad base", ".func m\n.main\n  ld r1, 8(q7)\n  halt\n", "invalid register"},
		{"li arity", ".func m\n.main\n  li r1\n  halt\n", "requires rd, imm"},
		{"cvt arity", ".func m\n.main\n  fcvtif f1\n  halt\n", "requires rd, rs1"},
		{"three-op arity", ".func m\n.main\n  add r1, r2\n  halt\n", "requires rd, rs1, rs2"},
		{"imm-op arity", ".func m\n.main\n  addi r1, r2\n  halt\n", "requires rd, rs1, imm"},
		{"nop operands", ".func m\n.main\n  nop r1\n  halt\n", "no operands"},
		{"halt operands", ".func m\n.main\n  halt r1\n", "no operands"},
		{"func arity", ".func\n", "one identifier"},
		{"func bad name", ".func 9x\n", "one identifier"},
		{"main outside", ".main\n", "outside .func"},
		{"package outside", ".package\n", "outside .func"},
		{"package bad id", ".func m\n.main\n.package zz\n  halt\n", "phase id"},
		{"empty offset ok", ".func m\n.main\n  ld r1, (sp)\n  halt\n", ""},
		{"hex data ok", ".data 0x10 -3\n.func m\n.main\n  halt\n", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if c.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v does not contain %q", err, c.want)
			}
		})
	}
}

func TestIsIdent(t *testing.T) {
	good := []string{"a", "A9", "foo.bar", "_x", "L_1"}
	bad := []string{"", "9a", "a-b", "a b", "a:b"}
	for _, s := range good {
		if !isIdent(s) {
			t.Errorf("isIdent(%q) = false", s)
		}
	}
	for _, s := range bad {
		if isIdent(s) {
			t.Errorf("isIdent(%q) = true", s)
		}
	}
}

func TestJRRoundTrip(t *testing.T) {
	src := ".func m\n.main\n  la r29, x\nx:\n  jr r29\n"
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p)
	if !strings.Contains(text, "jr r29") {
		t.Fatalf("disassembly missing jr:\n%s", text)
	}
	p2, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	i1, _ := p.Linearize()
	i2, err := p2.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	if len(i1.Code) != len(i2.Code) {
		t.Fatal("jr round trip changed image size")
	}
}
