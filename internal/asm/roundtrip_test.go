package asm

import (
	"testing"

	"repro/internal/workload"
)

// Property (DESIGN.md §6): for every workload program — thousands of
// blocks, every terminator kind, FP code, recursion — disassembling and
// reassembling produces an identical code image and data segment.
func TestDisassembleRoundTripAllWorkloads(t *testing.T) {
	for _, b := range workload.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			in := b.Inputs[0]
			in.Scale = 1
			p := b.Build(in)
			img1, err := p.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			text := Disassemble(p)
			p2, err := Assemble(text)
			if err != nil {
				t.Fatalf("reassembly failed: %v", err)
			}
			img2, err := p2.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			if len(img1.Code) != len(img2.Code) {
				t.Fatalf("image sizes differ: %d vs %d", len(img1.Code), len(img2.Code))
			}
			for i := range img1.Code {
				if img1.Code[i] != img2.Code[i] {
					t.Fatalf("slot %d differs: %v vs %v", i, img1.Code[i], img2.Code[i])
				}
			}
			if img1.Entry != img2.Entry {
				t.Fatal("entry addresses differ")
			}
			if len(p.Data) != len(p2.Data) {
				t.Fatal("data segments differ in length")
			}
			for i := range p.Data {
				if p.Data[i] != p2.Data[i] {
					t.Fatalf("data[%d] differs", i)
				}
			}
		})
	}
}
