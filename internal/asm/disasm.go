package asm

import (
	"fmt"
	"strings"

	"repro/internal/prog"
)

// Disassemble renders a program in assembler syntax. Labels are the
// globally unique `B<ID>` names, so cross-function references produced by
// package extraction render (and reassemble) correctly.
//
// The output is designed to reassemble to a semantically identical program:
// `Assemble(Disassemble(p))` linearizes to the same code image as p, though
// block identities may differ (non-adjacent branch fallthroughs become tiny
// explicit jump blocks, exactly the jumps the linearizer would synthesize).
func Disassemble(p *prog.Program) string {
	var sb strings.Builder
	if len(p.Data) > 0 {
		const perLine = 8
		for i := 0; i < len(p.Data); i += perLine {
			end := i + perLine
			if end > len(p.Data) {
				end = len(p.Data)
			}
			sb.WriteString(".data")
			for _, v := range p.Data[i:end] {
				fmt.Fprintf(&sb, " %d", v)
			}
			sb.WriteByte('\n')
		}
	}
	label := func(b *prog.Block) string { return fmt.Sprintf("B%d", b.ID) }

	for _, f := range p.Funcs {
		fmt.Fprintf(&sb, "\n.func %s\n", f.Name)
		if p.Main == f {
			sb.WriteString(".main\n")
		}
		if f.IsPackage {
			fmt.Fprintf(&sb, ".package %d\n", f.PhaseID)
		}
		for bi, b := range f.Blocks {
			fmt.Fprintf(&sb, "%s:", label(b))
			if len(b.ExitConsumes) > 0 {
				sb.WriteString(" ; exit consumes")
				for _, r := range b.ExitConsumes {
					fmt.Fprintf(&sb, " %s", r)
				}
			}
			sb.WriteByte('\n')
			for _, in := range b.Insts {
				if in.BlockTarget != nil {
					fmt.Fprintf(&sb, "  la %s, %s\n", in.Rd, label(in.BlockTarget))
					continue
				}
				fmt.Fprintf(&sb, "  %s\n", in.Inst)
			}
			var next *prog.Block
			if bi+1 < len(f.Blocks) {
				next = f.Blocks[bi+1]
			}
			switch b.Kind {
			case prog.TermFall:
				if b.Next != next {
					fmt.Fprintf(&sb, "  jmp %s\n", label(b.Next))
				}
			case prog.TermBranch:
				fmt.Fprintf(&sb, "  %s %s, %s, %s\n", b.CmpOp, b.Rs1, b.Rs2, label(b.Taken))
				if b.Next != next {
					fmt.Fprintf(&sb, "  jmp %s\n", label(b.Next))
				}
			case prog.TermCall:
				fmt.Fprintf(&sb, "  call %s\n", b.Callee.Name)
				if b.Next != next {
					fmt.Fprintf(&sb, "  jmp %s\n", label(b.Next))
				}
			case prog.TermRet:
				sb.WriteString("  ret\n")
			case prog.TermHalt:
				sb.WriteString("  halt\n")
			case prog.TermJumpReg:
				fmt.Fprintf(&sb, "  jr %s\n", b.Rs1)
			}
		}
	}
	return sb.String()
}

// DisassembleImage renders a linearized code image with one slot per line,
// for debugging dumps.
func DisassembleImage(img *prog.Image) string {
	var sb strings.Builder
	var prev *prog.Block
	for addr, in := range img.Code {
		if b := img.AddrBlock[addr]; b != prev {
			fmt.Fprintf(&sb, "%s:  ; %s\n", b, b.Fn.Name)
			prev = b
		}
		fmt.Fprintf(&sb, "%6d  %s\n", addr, in)
	}
	return sb.String()
}
