package phasedb

// Category is the Figure 9 branch taxonomy: a static branch either appears
// in exactly one phase (Unique) or in several (Multi), and its bias
// behavior across phases determines the sub-category.
type Category int

// Categories, in the paper's Figure 9 order.
const (
	UniqueBiased Category = iota
	UniqueUnbiased
	MultiHigh   // biased somewhere, taken-fraction swing across phases > 70%
	MultiLow    // biased somewhere, swing in (40%, 70%]
	MultiSame   // biased somewhere, swing <= 40%
	MultiNoBias // never biased in any phase
	NumCategories
)

func (c Category) String() string {
	switch c {
	case UniqueBiased:
		return "Unique Biased"
	case UniqueUnbiased:
		return "Unique Unbiased"
	case MultiHigh:
		return "Multi High"
	case MultiLow:
		return "Multi Low"
	case MultiSame:
		return "Multi Same"
	case MultiNoBias:
		return "Multi No Bias"
	default:
		return "?"
	}
}

// Categorization is the dynamic-execution-weighted breakdown of hot-spot
// branches for one program.
type Categorization struct {
	// Weight[c] is the total executed count of branches in category c.
	Weight [NumCategories]uint64
	// Count[c] is the number of static branches in category c.
	Count [NumCategories]int
	Total uint64
}

// Fraction returns category c's share of dynamic hot-spot branch execution.
func (cz Categorization) Fraction(c Category) float64 {
	if cz.Total == 0 {
		return 0
	}
	return float64(cz.Weight[c]) / float64(cz.Total)
}

// Categorize classifies every static branch that appears in any phase,
// weighting each by its total executed count across phases (§5.3).
func (db *DB) Categorize() Categorization {
	type agg struct {
		phases int
		exec   uint64
		minFra float64
		maxFra float64
		biased bool
	}
	branches := make(map[int64]*agg)
	for _, ph := range db.Phases {
		for pc, s := range ph.Branches {
			a := branches[pc]
			frac := s.TakenFraction()
			if a == nil {
				a = &agg{minFra: frac, maxFra: frac}
				branches[pc] = a
			}
			a.phases++
			a.exec += s.Exec
			if frac < a.minFra {
				a.minFra = frac
			}
			if frac > a.maxFra {
				a.maxFra = frac
			}
			if db.cfg.BiasOf(frac) != BiasNone {
				a.biased = true
			}
		}
	}
	var cz Categorization
	for _, a := range branches {
		var c Category
		switch {
		case a.phases == 1 && a.biased:
			c = UniqueBiased
		case a.phases == 1:
			c = UniqueUnbiased
		case !a.biased:
			c = MultiNoBias
		default:
			swing := a.maxFra - a.minFra
			switch {
			case swing > 0.70:
				c = MultiHigh
			case swing > 0.40:
				c = MultiLow
			default:
				c = MultiSame
			}
		}
		cz.Weight[c] += a.exec
		cz.Count[c]++
		cz.Total += a.exec
	}
	return cz
}
