// Snapshot is the serializable form of a phase database. The staged
// pipeline API (internal/core's ProfileArtifact) and the vpackd daemon
// both move databases across process boundaries as JSON; a Snapshot
// round-trips losslessly, including the per-phase representative-window
// weight the software filter's merge rule depends on, so a restored
// database keeps filtering new detections exactly as the original would.
package phasedb

import "sort"

// PhaseSnapshot is one phase's serializable form. Branches are sorted by
// PC so equal databases encode to equal bytes.
type PhaseSnapshot struct {
	ID         int          `json:"id"`
	Branches   []BranchStat `json:"branches"`
	Detections int          `json:"detections"`

	FirstAtBranch uint64 `json:"first_at_branch,string"`
	LastAtBranch  uint64 `json:"last_at_branch,string"`
	FirstAtInst   uint64 `json:"first_at_inst,string"`
	LastAtInst    uint64 `json:"last_at_inst,string"`

	// RepWeight is the executed weight of the representative detection
	// window currently held in Branches (see mergeInto).
	RepWeight uint64 `json:"rep_weight,string"`
}

// Snapshot is a whole database's serializable form.
type Snapshot struct {
	Config    Config          `json:"config"`
	Phases    []PhaseSnapshot `json:"phases"`
	Redundant int             `json:"redundant"`
	Timeline  []Transition    `json:"timeline,omitempty"`
}

// Snapshot returns a deep, serializable copy of the database.
func (db *DB) Snapshot() *Snapshot {
	s := &Snapshot{
		Config:    db.cfg,
		Phases:    make([]PhaseSnapshot, 0, len(db.Phases)),
		Redundant: db.Redundant,
	}
	if len(db.Timeline) > 0 {
		s.Timeline = append([]Transition(nil), db.Timeline...)
	}
	for _, ph := range db.Phases {
		s.Phases = append(s.Phases, PhaseSnapshot{
			ID:            ph.ID,
			Branches:      ph.SortedBranches(),
			Detections:    ph.Detections,
			FirstAtBranch: ph.FirstAtBranch,
			LastAtBranch:  ph.LastAtBranch,
			FirstAtInst:   ph.FirstAtInst,
			LastAtInst:    ph.LastAtInst,
			RepWeight:     ph.repWeight,
		})
	}
	return s
}

// FromSnapshot reconstructs a live database from a snapshot. The result
// is independent of the snapshot: recording further detections into it
// behaves exactly as it would have on the snapshotted original.
func FromSnapshot(s *Snapshot) *DB {
	db := New(s.Config)
	db.Redundant = s.Redundant
	if len(s.Timeline) > 0 {
		db.Timeline = append([]Transition(nil), s.Timeline...)
	}
	phases := append([]PhaseSnapshot(nil), s.Phases...)
	sort.Slice(phases, func(i, j int) bool { return phases[i].ID < phases[j].ID })
	for _, ps := range phases {
		ph := &Phase{
			ID:            ps.ID,
			Branches:      make(map[int64]*BranchStat, len(ps.Branches)),
			Detections:    ps.Detections,
			FirstAtBranch: ps.FirstAtBranch,
			LastAtBranch:  ps.LastAtBranch,
			FirstAtInst:   ps.FirstAtInst,
			LastAtInst:    ps.LastAtInst,
			repWeight:     ps.RepWeight,
		}
		for i := range ps.Branches {
			b := ps.Branches[i]
			ph.Branches[b.PC] = &b
		}
		db.Phases = append(db.Phases, ph)
	}
	return db
}
