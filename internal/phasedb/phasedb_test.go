package phasedb

import (
	"testing"

	"repro/internal/hsd"
)

func mkSpot(seq int, at uint64, branches ...hsd.BranchRecord) hsd.HotSpot {
	return hsd.HotSpot{Seq: seq, DetectedAtBranch: at, DetectedAtInst: at * 10, Branches: branches}
}

func br(pc int64, exec, taken uint32) hsd.BranchRecord {
	return hsd.BranchRecord{PC: pc, Exec: exec, Taken: taken}
}

func TestIdenticalHotSpotsMerge(t *testing.T) {
	db := New(DefaultConfig())
	a := mkSpot(0, 100, br(1, 100, 90), br(2, 100, 10))
	b := mkSpot(1, 200, br(1, 100, 95), br(2, 100, 5))
	p1 := db.Record(a)
	p2 := db.Record(b)
	if p1 != p2 {
		t.Fatal("identical hot spots should merge into one phase")
	}
	if len(db.Phases) != 1 || db.Redundant != 1 {
		t.Errorf("phases=%d redundant=%d, want 1/1", len(db.Phases), db.Redundant)
	}
	if p1.Detections != 2 {
		t.Errorf("detections = %d, want 2", p1.Detections)
	}
	// Representative-window semantics: the phase holds one window's
	// counts, not the union/sum of all windows.
	if got := p1.Branches[1].Exec; got != 100 {
		t.Errorf("representative exec = %d, want 100", got)
	}
	if p1.FirstAtBranch != 100 || p1.LastAtBranch != 200 {
		t.Errorf("span = [%d,%d], want [100,200]", p1.FirstAtBranch, p1.LastAtBranch)
	}
}

func TestDisjointBranchSetsSeparate(t *testing.T) {
	db := New(DefaultConfig())
	db.Record(mkSpot(0, 1, br(1, 50, 40), br(2, 50, 40)))
	db.Record(mkSpot(1, 2, br(10, 50, 40), br(11, 50, 40)))
	if len(db.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(db.Phases))
	}
}

func TestThirtyPercentRule(t *testing.T) {
	db := New(DefaultConfig())
	// Phase with 10 branches.
	var recs []hsd.BranchRecord
	for i := int64(0); i < 10; i++ {
		recs = append(recs, br(i, 100, 90))
	}
	db.Record(mkSpot(0, 1, recs...))

	// 2 of 10 replaced (20% missing each way): same phase.
	same := append([]hsd.BranchRecord{}, recs[:8]...)
	same = append(same, br(100, 100, 90), br(101, 100, 90))
	db.Record(mkSpot(1, 2, same...))
	if len(db.Phases) != 1 {
		t.Fatalf("20%% difference should merge, phases = %d", len(db.Phases))
	}
	// 4 of 10 replaced (40%): different phase. Use the *original* set as
	// baseline overlap so the first phase is still the nearest match.
	diff := append([]hsd.BranchRecord{}, recs[:6]...)
	diff = append(diff, br(200, 100, 90), br(201, 100, 90), br(202, 100, 90), br(203, 100, 90))
	db.Record(mkSpot(2, 3, diff...))
	if len(db.Phases) != 2 {
		t.Fatalf("40%% difference should separate, phases = %d", len(db.Phases))
	}
}

func TestBiasFlipSeparates(t *testing.T) {
	db := New(DefaultConfig())
	db.Record(mkSpot(0, 1, br(1, 100, 90), br(2, 100, 90)))
	// Same branch set but branch 2 flips from taken-biased to
	// not-taken-biased: the paper's second criterion separates them.
	db.Record(mkSpot(1, 2, br(1, 100, 90), br(2, 100, 10)))
	if len(db.Phases) != 2 {
		t.Fatalf("bias flip should separate phases, got %d", len(db.Phases))
	}
}

func TestBiasFlipToleranceConfigurable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBiasFlips = 1
	db := New(cfg)
	db.Record(mkSpot(0, 1, br(1, 100, 90), br(2, 100, 90)))
	db.Record(mkSpot(1, 2, br(1, 100, 90), br(2, 100, 10)))
	if len(db.Phases) != 1 {
		t.Fatalf("one flip should be tolerated with MaxBiasFlips=1, got %d phases", len(db.Phases))
	}
}

func TestUnbiasedDriftIsNotAFlip(t *testing.T) {
	db := New(DefaultConfig())
	db.Record(mkSpot(0, 1, br(1, 100, 90), br(2, 100, 50)))
	// Branch 2 drifts from unbiased to taken-biased: not a flip.
	db.Record(mkSpot(1, 2, br(1, 100, 90), br(2, 100, 80)))
	if len(db.Phases) != 1 {
		t.Fatalf("unbiased drift should merge, got %d phases", len(db.Phases))
	}
}

func TestEmptyHotSpots(t *testing.T) {
	db := New(DefaultConfig())
	p1 := db.Record(mkSpot(0, 1))
	p2 := db.Record(mkSpot(1, 2))
	if p1 != p2 {
		t.Error("two empty hot spots should merge")
	}
	p3 := db.Record(mkSpot(2, 3, br(1, 50, 25)))
	if p3 == p1 {
		t.Error("non-empty hot spot should not merge with empty phase")
	}
}

func TestPhaseAt(t *testing.T) {
	db := New(DefaultConfig())
	db.Record(mkSpot(0, 10, br(1, 100, 90)))              // inst 100
	db.Record(mkSpot(1, 20, br(50, 100, 90)))             // inst 200
	db.Record(mkSpot(2, 30, br(1, 100, 90), br(1, 1, 1))) // inst 300, phase 0 again
	if got := db.PhaseAt(50); got != -1 {
		t.Errorf("PhaseAt(50) = %d, want -1", got)
	}
	if got := db.PhaseAt(150); got != 0 {
		t.Errorf("PhaseAt(150) = %d, want 0", got)
	}
	if got := db.PhaseAt(250); got != 1 {
		t.Errorf("PhaseAt(250) = %d, want 1", got)
	}
	if got := db.PhaseAt(10000); got != 0 {
		t.Errorf("PhaseAt(10000) = %d, want 0 (re-detected)", got)
	}
}

func TestSortedBranchesAndTotals(t *testing.T) {
	db := New(DefaultConfig())
	ph := db.Record(mkSpot(0, 1, br(5, 10, 5), br(2, 20, 10), br(9, 30, 15)))
	sorted := ph.SortedBranches()
	if len(sorted) != 3 || sorted[0].PC != 2 || sorted[2].PC != 9 {
		t.Errorf("sorted = %v", sorted)
	}
	if ph.TotalExec() != 60 {
		t.Errorf("TotalExec = %d, want 60", ph.TotalExec())
	}
	if db.String() == "" {
		t.Error("String empty")
	}
}

func TestBiasOf(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		frac float64
		want Bias
	}{
		{0.0, BiasNotTaken}, {0.3, BiasNotTaken}, {0.31, BiasNone},
		{0.5, BiasNone}, {0.69, BiasNone}, {0.7, BiasTaken}, {1.0, BiasTaken},
	}
	for _, c := range cases {
		if got := cfg.BiasOf(c.frac); got != c.want {
			t.Errorf("BiasOf(%v) = %v, want %v", c.frac, got, c.want)
		}
	}
	if BiasTaken.String() != "T" || BiasNotTaken.String() != "F" || BiasNone.String() != "U" {
		t.Error("Bias strings wrong")
	}
}

func TestCategorize(t *testing.T) {
	db := New(DefaultConfig())
	// Phase 0: pc1 biased T, pc2 unbiased, pc3 biased T, pc4 unbiased.
	db.Record(mkSpot(0, 1,
		br(1, 100, 95), // unique biased
		br(2, 100, 50), // unique unbiased
		br(3, 100, 95), // multi high (flips to 5% in phase 1)
		br(4, 100, 55), // multi: biased in phase 1, swing 0.35 => same
		br(5, 100, 50), // multi no bias
	))
	// Phase 1 shares pc3 (flipped — separates by rule 2), pc4, pc5.
	db.Record(mkSpot(1, 2,
		br(3, 100, 5),  // flipped
		br(4, 100, 90), // biased now; swing 0.35
		br(5, 100, 45), // still unbiased
		br(6, 100, 95),
	))
	if len(db.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(db.Phases))
	}
	cz := db.Categorize()
	if cz.Count[UniqueBiased] < 2 { // pc1 and pc6
		t.Errorf("UniqueBiased count = %d, want >= 2", cz.Count[UniqueBiased])
	}
	if cz.Count[UniqueUnbiased] != 1 { // pc2
		t.Errorf("UniqueUnbiased = %d, want 1", cz.Count[UniqueUnbiased])
	}
	if cz.Count[MultiHigh] != 1 { // pc3 swings 0.90
		t.Errorf("MultiHigh = %d, want 1", cz.Count[MultiHigh])
	}
	if cz.Count[MultiSame] != 1 { // pc4 swings 0.35
		t.Errorf("MultiSame = %d, want 1", cz.Count[MultiSame])
	}
	if cz.Count[MultiNoBias] != 1 { // pc5
		t.Errorf("MultiNoBias = %d, want 1", cz.Count[MultiNoBias])
	}
	var sum float64
	for c := Category(0); c < NumCategories; c++ {
		sum += cz.Fraction(c)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("fractions sum to %v, want 1", sum)
	}
}

func TestCategoryStrings(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "?" {
			t.Errorf("category %d has no name", c)
		}
	}
}

func TestMultiLow(t *testing.T) {
	db := New(DefaultConfig())
	// Same branch in two phases with a 0.5 swing: Multi Low. To keep the
	// phases separate, give each mostly disjoint branch sets.
	db.Record(mkSpot(0, 1, br(1, 100, 90), br(2, 100, 90), br(3, 100, 90), br(10, 100, 40)))
	db.Record(mkSpot(1, 2, br(7, 100, 90), br(8, 100, 90), br(9, 100, 90), br(10, 100, 90)))
	if len(db.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(db.Phases))
	}
	cz := db.Categorize()
	if cz.Count[MultiLow] != 1 {
		t.Errorf("MultiLow = %d, want 1 (pc10 swings 0.5)", cz.Count[MultiLow])
	}
}
