// Package phasedb stores hot-spot records emitted by the Hot Spot Detector
// and performs the software filtering step of §3.1: redundant re-detections
// of the same program phase are merged, using the paper's two similarity
// criteria (the 30% branch-set difference rule and the biased-branch
// bias-flip rule). The database is the bridge between profiling and region
// identification: each unique phase becomes one region-formation input.
package phasedb

import (
	"fmt"
	"sort"

	"repro/internal/hsd"
)

// Config holds the filtering thresholds.
type Config struct {
	// DifferenceThreshold is the fraction of one hot spot's branches that
	// must be missing from the other before the two are declared different
	// (0.30 in the paper).
	DifferenceThreshold float64
	// BiasedLow and BiasedHigh delimit bias: a branch with taken fraction
	// <= BiasedLow is not-taken biased, >= BiasedHigh is taken biased,
	// anything between is unbiased.
	BiasedLow  float64
	BiasedHigh float64
	// MaxBiasFlips is how many common biased branches may flip direction
	// before two hot spots are declared different. The paper uses a single
	// flip as the separator, i.e. zero flips are tolerated.
	MaxBiasFlips int
}

// DefaultConfig returns the paper's filtering parameters.
func DefaultConfig() Config {
	return Config{
		DifferenceThreshold: 0.30,
		BiasedLow:           0.30,
		BiasedHigh:          0.70,
		MaxBiasFlips:        0,
	}
}

// Bias classifies a branch's direction preference.
type Bias int8

// Bias values.
const (
	BiasNotTaken Bias = -1
	BiasNone     Bias = 0
	BiasTaken    Bias = 1
)

func (b Bias) String() string {
	switch b {
	case BiasNotTaken:
		return "F"
	case BiasTaken:
		return "T"
	default:
		return "U"
	}
}

// BiasOf classifies a taken fraction under the configured thresholds.
func (c Config) BiasOf(frac float64) Bias {
	switch {
	case frac >= c.BiasedHigh:
		return BiasTaken
	case frac <= c.BiasedLow:
		return BiasNotTaken
	default:
		return BiasNone
	}
}

// BranchStat accumulates one static branch's behavior within one phase.
type BranchStat struct {
	PC    int64
	Exec  uint64
	Taken uint64
	// Windows counts the detection windows that contributed, so consumers
	// can recover per-window (hardware-counter-scale) weights.
	Windows int
}

// WindowExec returns the average executed count per detection window.
func (b BranchStat) WindowExec() uint64 {
	if b.Windows == 0 {
		return b.Exec
	}
	return b.Exec / uint64(b.Windows)
}

// WindowTaken returns the average taken count per detection window.
func (b BranchStat) WindowTaken() uint64 {
	if b.Windows == 0 {
		return b.Taken
	}
	return b.Taken / uint64(b.Windows)
}

// TakenFraction returns taken/exec.
func (b BranchStat) TakenFraction() float64 {
	if b.Exec == 0 {
		return 0
	}
	return float64(b.Taken) / float64(b.Exec)
}

// Phase is one unique program phase: the merged hot-spot records that the
// filter attributed to it.
type Phase struct {
	ID       int
	Branches map[int64]*BranchStat
	// Detections counts how many raw hot-spot records merged into this
	// phase (including the first).
	Detections int
	// FirstAtBranch/LastAtBranch give the detection-time span in retired
	// conditional branches; FirstAtInst/LastAtInst in retired instructions
	// when the driver supplies instruction stamps.
	FirstAtBranch, LastAtBranch uint64
	FirstAtInst, LastAtInst     uint64

	// repWeight is the total executed weight of the representative window
	// currently held in Branches.
	repWeight uint64
}

// SortedBranches returns the phase's branch stats ordered by PC.
func (p *Phase) SortedBranches() []BranchStat {
	out := make([]BranchStat, 0, len(p.Branches))
	for _, b := range p.Branches {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// TotalExec sums executed counts over the phase's branches.
func (p *Phase) TotalExec() uint64 {
	var n uint64
	for _, b := range p.Branches {
		n += b.Exec
	}
	return n
}

// DB is the phase database.
type DB struct {
	cfg    Config
	Phases []*Phase
	// Redundant counts hot-spot records merged into existing phases.
	Redundant int
	// Timeline records which phase was live when, as (instStamp, phaseID)
	// transitions ordered by time.
	Timeline []Transition
}

// Transition marks the detection of a phase at a point in time.
type Transition struct {
	AtBranch uint64
	AtInst   uint64
	PhaseID  int
}

// New returns an empty database; cfg fields at zero take defaults.
func New(cfg Config) *DB {
	def := DefaultConfig()
	if cfg.DifferenceThreshold == 0 {
		cfg.DifferenceThreshold = def.DifferenceThreshold
	}
	if cfg.BiasedLow == 0 {
		cfg.BiasedLow = def.BiasedLow
	}
	if cfg.BiasedHigh == 0 {
		cfg.BiasedHigh = def.BiasedHigh
	}
	return &DB{cfg: cfg}
}

// Config returns the database's effective configuration.
func (db *DB) Config() Config { return db.cfg }

// Record files one raw hot-spot detection, merging it into an existing
// phase when the similarity rules say it is redundant. It returns the
// phase it was attributed to.
func (db *DB) Record(hs hsd.HotSpot) *Phase {
	if ph := db.match(hs); ph != nil {
		db.Redundant++
		mergeInto(ph, hs)
		db.Timeline = append(db.Timeline, Transition{hs.DetectedAtBranch, hs.DetectedAtInst, ph.ID})
		return ph
	}
	ph := &Phase{
		ID:            len(db.Phases),
		Branches:      make(map[int64]*BranchStat, len(hs.Branches)),
		FirstAtBranch: hs.DetectedAtBranch,
		FirstAtInst:   hs.DetectedAtInst,
	}
	mergeInto(ph, hs)
	db.Phases = append(db.Phases, ph)
	db.Timeline = append(db.Timeline, Transition{hs.DetectedAtBranch, hs.DetectedAtInst, ph.ID})
	return ph
}

// mergeInto folds a redundant detection into its phase. The phase keeps a
// single *representative* detection window — the one with the largest
// total executed weight — rather than the union of all windows. The paper
// discards redundant detections outright; unioning windows would hide
// exactly the hardware-profile losses (BBB set contention, candidacy
// races) that temperature inference exists to tolerate, because the
// contended entries' victims vary between windows. Keeping the strongest
// window instead of the first avoids freezing membership on a ramp-up or
// phase-boundary snapshot.
func mergeInto(ph *Phase, hs hsd.HotSpot) {
	ph.Detections++
	ph.LastAtBranch = hs.DetectedAtBranch
	ph.LastAtInst = hs.DetectedAtInst
	var weight uint64
	for _, b := range hs.Branches {
		weight += uint64(b.Exec)
	}
	if weight <= ph.repWeight {
		return
	}
	ph.repWeight = weight
	ph.Branches = make(map[int64]*BranchStat, len(hs.Branches))
	for _, b := range hs.Branches {
		ph.Branches[b.PC] = &BranchStat{
			PC:      b.PC,
			Exec:    uint64(b.Exec),
			Taken:   uint64(b.Taken),
			Windows: 1,
		}
	}
}

// match returns the existing phase hs is redundant with, or nil. Per the
// paper, every previously recorded hot spot is eligible (full software
// filtering).
func (db *DB) match(hs hsd.HotSpot) *Phase {
	for _, ph := range db.Phases {
		if db.similar(ph, hs) {
			return ph
		}
	}
	return nil
}

// similar applies the two §3.1 criteria.
func (db *DB) similar(ph *Phase, hs hsd.HotSpot) bool {
	if len(hs.Branches) == 0 || len(ph.Branches) == 0 {
		return len(hs.Branches) == len(ph.Branches)
	}
	// Criterion 1: >= threshold of either side's branches missing from the
	// other makes them different hot spots.
	missingFromPh := 0
	for _, b := range hs.Branches {
		if _, ok := ph.Branches[b.PC]; !ok {
			missingFromPh++
		}
	}
	if float64(missingFromPh) >= db.cfg.DifferenceThreshold*float64(len(hs.Branches)) {
		return false
	}
	hsSet := make(map[int64]hsd.BranchRecord, len(hs.Branches))
	for _, b := range hs.Branches {
		hsSet[b.PC] = b
	}
	missingFromHS := 0
	for pc := range ph.Branches {
		if _, ok := hsSet[pc]; !ok {
			missingFromHS++
		}
	}
	if float64(missingFromHS) >= db.cfg.DifferenceThreshold*float64(len(ph.Branches)) {
		return false
	}
	// Criterion 2: a common biased branch whose bias flipped separates
	// phases (more than MaxBiasFlips of them, per the generalization).
	flips := 0
	for pc, s := range ph.Branches {
		b, ok := hsSet[pc]
		if !ok {
			continue
		}
		oldBias := db.cfg.BiasOf(s.TakenFraction())
		newBias := db.cfg.BiasOf(b.TakenFraction())
		if oldBias != BiasNone && newBias != BiasNone && oldBias != newBias {
			flips++
			if flips > db.cfg.MaxBiasFlips {
				return false
			}
		}
	}
	return true
}

// PhaseAt returns the ID of the phase live at the given instruction stamp,
// or -1 before the first detection.
func (db *DB) PhaseAt(inst uint64) int {
	id := -1
	for _, tr := range db.Timeline {
		if tr.AtInst > inst {
			break
		}
		id = tr.PhaseID
	}
	return id
}

// String summarizes the database.
func (db *DB) String() string {
	return fmt.Sprintf("phasedb: %d phases, %d redundant detections filtered", len(db.Phases), db.Redundant)
}
