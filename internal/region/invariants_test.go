package region_test

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/hsd"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/region"
	"repro/internal/verify"
	"repro/internal/workload"
)

// profileDB profiles an image under the scaled detector, like core.Profile
// (which tests here cannot import without a cycle).
func profileDB(t *testing.T, img *prog.Image) *phasedb.DB {
	t.Helper()
	db := phasedb.New(phasedb.DefaultConfig())
	det := hsd.New(hsd.ScaledConfig(), func(h hsd.HotSpot) { db.Record(h) })
	m := cpu.NewMachine(img)
	if err := m.Run(0, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.Branch(si.PC, si.Taken)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// Properties promised in DESIGN.md §6, checked over every real workload's
// real phases. The per-region invariants (every profiled branch block is
// Hot, profiled arcs are never Unknown, Cold inference never fires with
// inference disabled) are verify.Region's region/* rules — this test is a
// thin wrapper over the verifier, plus the determinism check the verifier
// cannot see from a single region.
func TestRegionInvariantsOverSuite(t *testing.T) {
	for _, b := range []string{"m88ksim", "perl", "vpr"} {
		b := b
		t.Run(b, func(t *testing.T) {
			bench, err := workload.ByName(b)
			if err != nil {
				t.Fatal(err)
			}
			in := bench.Inputs[0]
			in.Scale = 1
			p := bench.Build(in)
			img, err := p.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			db := profileDB(t, img)
			for _, ph := range db.Phases {
				for _, enable := range []bool{true, false} {
					cfg := region.DefaultConfig()
					cfg.EnableInference = enable
					r1, err := region.Identify(cfg, img, ph)
					if err != nil {
						continue
					}
					r2, err := region.Identify(cfg, img, ph)
					if err != nil {
						t.Fatalf("phase %d: second identification failed: %v", ph.ID, err)
					}
					// Determinism.
					if len(r1.BlockTemp) != len(r2.BlockTemp) || r1.NumHot() != r2.NumHot() {
						t.Fatalf("phase %d: identification not deterministic", ph.ID)
					}
					for blk, temp := range r1.BlockTemp {
						if r2.BlockTemp[blk] != temp {
							t.Fatalf("phase %d: block %v temp differs across runs", ph.ID, blk)
						}
					}
					// region/profiled-hot, region/profiled-arc, region/no-cold.
					if err := verify.Region("test", cfg, img, ph, r1); err != nil {
						for _, d := range verify.Diagnostics(err) {
							t.Errorf("phase %d: %s", ph.ID, d)
						}
					}
				}
			}
		})
	}
}

// Inference must be monotone relative to no-inference: everything Hot
// without inference stays Hot with it (the rules only add knowledge).
func TestInferenceIsMonotone(t *testing.T) {
	bench, err := workload.ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	p := bench.Build(in)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	db := profileDB(t, img)
	checked := 0
	for _, ph := range db.Phases {
		off := region.DefaultConfig()
		off.EnableInference = false
		off.MaxGrowBlocks = 0
		rOff, err := region.Identify(off, img, ph)
		if err != nil {
			continue
		}
		on := region.DefaultConfig()
		on.MaxGrowBlocks = 0
		rOn, err := region.Identify(on, img, ph)
		if err != nil {
			t.Fatal(err)
		}
		for blk, temp := range rOff.BlockTemp {
			if temp == region.Hot && rOn.BlockTemp[blk] != region.Hot {
				t.Errorf("phase %d: block %v Hot without inference but not with it", ph.ID, blk)
			}
		}
		if rOn.NumHot() < rOff.NumHot() {
			t.Errorf("phase %d: inference shrank the region: %d -> %d",
				ph.ID, rOff.NumHot(), rOn.NumHot())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no phases to check")
	}
}
