package region

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/hsd"
	"repro/internal/phasedb"
	"repro/internal/prog"
	"repro/internal/workload"
)

// profileDB profiles an image under the scaled detector, like core.Profile
// (which tests here cannot import without a cycle).
func profileDB(t *testing.T, img *prog.Image) *phasedb.DB {
	t.Helper()
	db := phasedb.New(phasedb.DefaultConfig())
	det := hsd.New(hsd.ScaledConfig(), func(h hsd.HotSpot) { db.Record(h) })
	m := cpu.NewMachine(img)
	if err := m.Run(0, func(si *cpu.StepInfo) {
		if si.Inst.Op.IsCondBranch() {
			det.Branch(si.PC, si.Taken)
		}
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// Properties promised in DESIGN.md §6, checked over every real workload's
// real phases:
//
//   - identification is deterministic,
//   - every profiled branch block is Hot,
//   - profiled arcs are never Unknown,
//   - Cold inference never fires with inference disabled,
//   - the fixpoint terminated with consistent Hot/Cold assignments
//     (no block both ways).
func TestRegionInvariantsOverSuite(t *testing.T) {
	for _, b := range []string{"m88ksim", "perl", "vpr"} {
		b := b
		t.Run(b, func(t *testing.T) {
			bench, err := workload.ByName(b)
			if err != nil {
				t.Fatal(err)
			}
			in := bench.Inputs[0]
			in.Scale = 1
			p := bench.Build(in)
			img, err := p.Linearize()
			if err != nil {
				t.Fatal(err)
			}
			db := profileDB(t, img)
			for _, ph := range db.Phases {
				for _, enable := range []bool{true, false} {
					cfg := DefaultConfig()
					cfg.EnableInference = enable
					r1, err := Identify(cfg, img, ph)
					if err != nil {
						continue
					}
					r2, err := Identify(cfg, img, ph)
					if err != nil {
						t.Fatalf("phase %d: second identification failed: %v", ph.ID, err)
					}
					// Determinism.
					if len(r1.BlockTemp) != len(r2.BlockTemp) || r1.NumHot() != r2.NumHot() {
						t.Fatalf("phase %d: identification not deterministic", ph.ID)
					}
					for blk, temp := range r1.BlockTemp {
						if r2.BlockTemp[blk] != temp {
							t.Fatalf("phase %d: block %v temp differs across runs", ph.ID, blk)
						}
					}
					// Profiled branches are Hot with known arcs.
					for _, bs := range ph.SortedBranches() {
						blk := img.BlockAt(bs.PC)
						if blk == nil || img.TermAddr[blk] != bs.PC {
							continue
						}
						if r1.BlockTemp[blk] != Hot {
							t.Errorf("phase %d: profiled block %v not Hot", ph.ID, blk)
						}
						for _, dir := range []bool{true, false} {
							if r1.ArcTemp[ArcKey{blk, dir}] == Unknown {
								t.Errorf("phase %d: profiled arc of %v Unknown", ph.ID, blk)
							}
						}
					}
					// No Cold inference with inference off: every Cold block
					// must be... there are none, since only inference makes
					// blocks Cold.
					if !enable && r1.InferredCold != 0 {
						t.Errorf("phase %d: %d blocks inferred Cold with inference off",
							ph.ID, r1.InferredCold)
					}
				}
			}
		})
	}
}

// Inference must be monotone relative to no-inference: everything Hot
// without inference stays Hot with it (the rules only add knowledge).
func TestInferenceIsMonotone(t *testing.T) {
	bench, err := workload.ByName("twolf")
	if err != nil {
		t.Fatal(err)
	}
	in := bench.Inputs[0]
	in.Scale = 1
	p := bench.Build(in)
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	db := profileDB(t, img)
	checked := 0
	for _, ph := range db.Phases {
		off := DefaultConfig()
		off.EnableInference = false
		off.MaxGrowBlocks = 0
		rOff, err := Identify(off, img, ph)
		if err != nil {
			continue
		}
		on := DefaultConfig()
		on.MaxGrowBlocks = 0
		rOn, err := Identify(on, img, ph)
		if err != nil {
			t.Fatal(err)
		}
		for blk, temp := range rOff.BlockTemp {
			if temp == Hot && rOn.BlockTemp[blk] != Hot {
				t.Errorf("phase %d: block %v Hot without inference but not with it", ph.ID, blk)
			}
		}
		if rOn.NumHot() < rOff.NumHot() {
			t.Errorf("phase %d: inference shrank the region: %d -> %d",
				ph.ID, rOff.NumHot(), rOn.NumHot())
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no phases to check")
	}
}
