// Package region implements step 2 of Vacuum Packing (§3.2): mapping one
// phase's hot-spot branch records onto the program CFG, inferring block and
// arc temperatures from the incomplete hardware profile, and heuristically
// growing the hot region.
package region

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/phasedb"
	"repro/internal/prog"
)

// Temp is a block or arc temperature.
type Temp uint8

// Temperatures. Blocks start Unknown; arcs of profiled branches start Hot
// or Cold; inference and growth assign the rest.
const (
	Unknown Temp = iota
	Hot
	Cold
)

func (t Temp) String() string {
	switch t {
	case Hot:
		return "hot"
	case Cold:
		return "cold"
	default:
		return "unknown"
	}
}

// ArcKey identifies a CFG arc by its source block and direction: Taken is
// true for the taken direction of a conditional branch, false for
// fallthrough/jump/continuation arcs.
type ArcKey struct {
	From  *prog.Block
	Taken bool
}

// Dest returns the arc's destination block.
func (k ArcKey) Dest() *prog.Block {
	if k.Taken {
		return k.From.Taken
	}
	return k.From.Next
}

// OutArcs appends b's outgoing CFG arcs to dst.
func OutArcs(b *prog.Block, dst []ArcKey) []ArcKey {
	switch b.Kind {
	case prog.TermFall, prog.TermCall:
		if b.Next != nil {
			dst = append(dst, ArcKey{b, false})
		}
	case prog.TermBranch:
		dst = append(dst, ArcKey{b, true})
		dst = append(dst, ArcKey{b, false})
	}
	return dst
}

// Config controls identification. Zero values take the paper's defaults via
// DefaultConfig.
type Config struct {
	// HotArcFraction: an arc direction carrying at least this fraction of
	// its branch's flow is Hot (25% in the paper).
	HotArcFraction float64
	// HotArcWeight: an arc whose weight exceeds the HSD's candidate branch
	// execution threshold is Hot regardless of fraction. The paper states
	// the rule against saturated 9-bit counters, where 16 is ~3.1% of the
	// counter range; when a detection window leaves a branch's counter
	// below saturation, the threshold is prorated by exec/CounterMax so it
	// keeps that meaning.
	HotArcWeight uint64
	// CounterMax is the saturation value of the BBB's executed counters
	// (511 for the paper's 9-bit counters).
	CounterMax uint64
	// MaxGrowBlocks bounds heuristic predecessor growth per entry block
	// (MAX_BLOCKS = 1 in the paper).
	MaxGrowBlocks int
	// EnableInference enables the full Figure 4 rule set. When false —
	// the paper's "no inference" ablation — temperatures only propagate
	// through blocks that do not end in a conditional branch, and no Cold
	// inference is performed; the recorded branch data is treated as
	// complete.
	EnableInference bool
}

// DefaultConfig returns the paper's parameters with inference enabled.
func DefaultConfig() Config {
	return Config{
		HotArcFraction:  0.25,
		HotArcWeight:    16,
		CounterMax:      511,
		MaxGrowBlocks:   1,
		EnableInference: true,
	}
}

// Region is one phase's identified hot region over the original program.
type Region struct {
	PhaseID int

	BlockTemp   map[*prog.Block]Temp
	BlockWeight map[*prog.Block]uint64
	// TakenProb holds measured taken probabilities for blocks whose
	// conditional branch appeared in the hot-spot record.
	TakenProb map[*prog.Block]float64

	ArcTemp   map[ArcKey]Temp
	ArcWeight map[ArcKey]uint64

	// Stats for reporting.
	ProfiledBranches int // hot-spot branches that mapped onto blocks
	UnmappedBranches int // hot-spot PCs with no block (should be 0)
	InferredHot      int // blocks made Hot by inference
	InferredCold     int // blocks made Cold by inference
	GrownBlocks      int // blocks added by heuristic growth
}

// HotBlocks returns the region's Hot blocks, grouped per function, with
// deterministic ordering (function appearance order, block layout order).
func (r *Region) HotBlocks() map[*prog.Func][]*prog.Block {
	out := make(map[*prog.Func][]*prog.Block)
	for b, t := range r.BlockTemp {
		if t == Hot {
			out[b.Fn] = append(out[b.Fn], b)
		}
	}
	for _, blocks := range out {
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	}
	return out
}

// HotFuncs returns the functions containing Hot blocks in program order.
func (r *Region) HotFuncs(p *prog.Program) []*prog.Func {
	hot := r.HotBlocks()
	var out []*prog.Func
	for _, f := range p.Funcs {
		if len(hot[f]) > 0 {
			out = append(out, f)
		}
	}
	return out
}

// NumHot counts Hot blocks.
func (r *Region) NumHot() int {
	n := 0
	for _, t := range r.BlockTemp {
		if t == Hot {
			n++
		}
	}
	return n
}

// Identify runs hot-spot mapping, temperature inference and heuristic
// growth for one phase against the original program image.
func Identify(cfg Config, img *prog.Image, ph *phasedb.Phase) (*Region, error) {
	return IdentifyObserved(cfg, img, ph, obs.Nop{})
}

// IdentifyObserved is Identify reporting to an observer: a successful
// identification emits one RegionGrown event (N = heuristically grown
// blocks) and bumps the region.* counters.
func IdentifyObserved(cfg Config, img *prog.Image, ph *phasedb.Phase, o obs.Observer) (*Region, error) {
	if cfg.HotArcFraction == 0 {
		cfg.HotArcFraction = 0.25
	}
	if cfg.HotArcWeight == 0 {
		cfg.HotArcWeight = 16
	}
	if cfg.CounterMax == 0 {
		cfg.CounterMax = 511
	}
	r := &Region{
		PhaseID:     ph.ID,
		BlockTemp:   make(map[*prog.Block]Temp),
		BlockWeight: make(map[*prog.Block]uint64),
		TakenProb:   make(map[*prog.Block]float64),
		ArcTemp:     make(map[ArcKey]Temp),
		ArcWeight:   make(map[ArcKey]uint64),
	}
	img.Prog.ComputePreds()

	// §3.2.1: initialize temperatures from the hot-spot record. The phase
	// database accumulates counts over every detection window merged into
	// the phase; weights are normalized back to a single window so the
	// HSD-derived thresholds keep their hardware-counter meaning (the
	// paper instead discards redundant records outright).
	for _, bs := range ph.SortedBranches() {
		b := img.BlockAt(bs.PC)
		if b == nil || b.Kind != prog.TermBranch || img.TermAddr[b] != bs.PC {
			r.UnmappedBranches++
			continue
		}
		r.ProfiledBranches++
		exec := bs.WindowExec()
		taken := bs.WindowTaken()
		r.BlockTemp[b] = Hot
		r.BlockWeight[b] = exec
		frac := bs.TakenFraction()
		r.TakenProb[b] = frac

		r.setArcFromProfile(cfg, ArcKey{b, true}, taken, frac, exec)
		r.setArcFromProfile(cfg, ArcKey{b, false}, exec-taken, 1-frac, exec)
	}
	if r.ProfiledBranches == 0 {
		return r, fmt.Errorf("region: phase %d: no hot-spot branch mapped onto a block", ph.ID)
	}

	r.infer(cfg)
	r.grow(cfg)
	o.Emit(obs.Event{Kind: obs.RegionGrown, Phase: ph.ID, N: int64(r.GrownBlocks)})
	o.Count("region.profiled_branches", int64(r.ProfiledBranches))
	o.Count("region.inferred_hot", int64(r.InferredHot))
	o.Count("region.inferred_cold", int64(r.InferredCold))
	o.Count("region.grown_blocks", int64(r.GrownBlocks))
	o.Observe("region.hot_blocks", float64(r.NumHot()))
	return r, nil
}

func (r *Region) setArcFromProfile(cfg Config, k ArcKey, weight uint64, frac float64, exec uint64) {
	r.ArcWeight[k] = weight
	// Prorate the weight threshold when the window left the counter
	// unsaturated, so "weight > 16" keeps its saturated-counter meaning.
	threshold := cfg.HotArcWeight
	if exec < cfg.CounterMax {
		threshold = exec * cfg.HotArcWeight / cfg.CounterMax
		if threshold == 0 {
			threshold = 1
		}
	}
	if frac >= cfg.HotArcFraction || weight > threshold {
		r.ArcTemp[k] = Hot
	} else {
		r.ArcTemp[k] = Cold
	}
}

// inArcs appends the in-function CFG arcs into b.
func inArcs(b *prog.Block, dst []ArcKey) []ArcKey {
	var outs []ArcKey
	for _, p := range b.Preds() {
		if p.Fn != b.Fn {
			continue
		}
		outs = OutArcs(p, outs[:0])
		for _, k := range outs {
			if k.Dest() == b {
				dst = append(dst, k)
			}
		}
	}
	return dst
}

// infer runs the Figure 4 fixpoint.
func (r *Region) infer(cfg Config) {
	// Work over the functions that contain any profiled block; inference
	// can spread into called functions, so track a growing function set.
	changed := true
	for changed {
		changed = false
		// Snapshot hot-involved functions: blocks can only gain
		// temperature through arcs from already-tempered blocks or calls
		// from Hot blocks, so iterating functions reachable in r suffices.
		funcs := r.involvedFuncs()
		for _, f := range funcs {
			for _, b := range f.Blocks {
				if r.stepBlock(cfg, b) {
					changed = true
				}
			}
		}
	}
}

func (r *Region) involvedFuncs() []*prog.Func {
	seen := make(map[*prog.Func]bool)
	var out []*prog.Func
	add := func(f *prog.Func) {
		if f != nil && !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	for b := range r.BlockTemp {
		add(b.Fn)
	}
	for k := range r.ArcTemp {
		add(k.From.Fn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// stepBlock applies every applicable inference rule to b once, reporting
// whether anything changed.
func (r *Region) stepBlock(cfg Config, b *prog.Block) bool {
	changed := false
	var outs, ins []ArcKey
	outs = OutArcs(b, outs)
	ins = inArcs(b, ins)
	endsInBranch := b.Kind == prog.TermBranch

	allCold := func(arcs []ArcKey) bool {
		if len(arcs) == 0 {
			return false
		}
		for _, k := range arcs {
			if r.ArcTemp[k] != Cold {
				return false
			}
		}
		return true
	}
	anyHot := func(arcs []ArcKey) bool {
		for _, k := range arcs {
			if r.ArcTemp[k] == Hot {
				return true
			}
		}
		return false
	}

	// Statement 4 / rule b: any adjacent Hot arc makes the block Hot. With
	// inference disabled the recorded branch data is treated as complete
	// (§5.1): only blocks that do not contain a branch may be added, so a
	// block ending in an unrecorded branch stays out of the region.
	if r.BlockTemp[b] == Unknown && (anyHot(ins) || anyHot(outs)) &&
		(cfg.EnableInference || !endsInBranch) {
		r.BlockTemp[b] = Hot
		r.InferredHot++
		changed = true
	}
	// Statement 3 / rule a: all-in-Cold or all-out-Cold makes it Cold.
	// Only with full inference: without it the profile is trusted as
	// complete and no Cold blocks are inferred.
	if cfg.EnableInference && r.BlockTemp[b] == Unknown && (allCold(ins) || allCold(outs)) {
		r.BlockTemp[b] = Cold
		r.InferredCold++
		changed = true
	}

	switch r.BlockTemp[b] {
	case Cold:
		// Statement 6 / rule d: arcs of a Cold block are Cold.
		if cfg.EnableInference {
			for _, k := range append(append([]ArcKey{}, ins...), outs...) {
				if r.ArcTemp[k] == Unknown {
					r.ArcTemp[k] = Cold
					changed = true
				}
			}
		}
	case Hot:
		// Statement 7 / rules e,f: for a Hot block, if all other arcs on a
		// side are known Cold (vacuously true for a single-arc side), the
		// remaining Unknown arc is Hot. With inference disabled this only
		// applies to blocks that do not end in a conditional branch.
		if cfg.EnableInference || !endsInBranch {
			for _, side := range [2][]ArcKey{ins, outs} {
				unknown := -1
				othersCold := true
				for i, k := range side {
					switch r.ArcTemp[k] {
					case Unknown:
						if unknown >= 0 {
							othersCold = false
						}
						unknown = i
					case Hot:
						// A Hot sibling arc does not block rule e/f in the
						// paper's formulation ("all other arcs ... have a
						// known, Cold temperature" fails), so it does.
						othersCold = false
					}
				}
				if unknown >= 0 && othersCold {
					r.ArcTemp[side[unknown]] = Hot
					changed = true
				}
			}
		}
		// Statement 9 / hot call: callee prologue becomes Hot.
		if b.Kind == prog.TermCall && b.Callee != nil {
			if e := b.Callee.Entry(); e != nil && r.BlockTemp[e] != Hot {
				r.BlockTemp[e] = Hot
				r.InferredHot++
				changed = true
			}
		}
	}
	return changed
}

// grow performs the two §3.2.3 heuristic expansions.
func (r *Region) grow(cfg Config) {
	// Step 1: include Unknown arcs between two Hot blocks.
	var outs []ArcKey
	for b, t := range r.BlockTemp {
		if t != Hot {
			continue
		}
		outs = OutArcs(b, outs[:0])
		for _, k := range outs {
			if r.ArcTemp[k] == Unknown && r.BlockTemp[k.Dest()] == Hot {
				r.ArcTemp[k] = Hot
			}
		}
	}
	// Step 2: expand entry blocks into predecessors, avoiding Cold blocks
	// and arcs, until another Hot block is reached; at most MaxGrowBlocks
	// added per entry.
	if cfg.MaxGrowBlocks <= 0 {
		return
	}
	var ins []ArcKey
	for _, e := range r.entryBlocks() {
		budget := cfg.MaxGrowBlocks
		frontier := []*prog.Block{e}
		for budget > 0 && len(frontier) > 0 {
			b := frontier[0]
			frontier = frontier[1:]
			ins = inArcs(b, ins[:0])
			for _, k := range ins {
				if budget <= 0 {
					break
				}
				p := k.From
				if r.ArcTemp[k] == Cold || r.BlockTemp[p] == Cold {
					continue
				}
				if r.BlockTemp[p] == Hot {
					// Reached existing hot code: connect and stop here.
					if r.ArcTemp[k] == Unknown {
						r.ArcTemp[k] = Hot
					}
					continue
				}
				r.BlockTemp[p] = Hot
				if r.ArcTemp[k] == Unknown {
					r.ArcTemp[k] = Hot
				}
				r.GrownBlocks++
				budget--
				frontier = append(frontier, p)
			}
		}
	}
}

// entryBlocks returns Hot blocks with no Hot forward in-arc — back edges
// are ignored, per §3.3.2 — i.e. the places original code would enter the
// region.
func (r *Region) entryBlocks() []*prog.Block {
	backByFunc := make(map[*prog.Func]map[prog.Edge]bool)
	var entries []*prog.Block
	var ins []ArcKey
	for b, t := range r.BlockTemp {
		if t != Hot {
			continue
		}
		back := backByFunc[b.Fn]
		if back == nil {
			back = prog.BackEdges(b.Fn)
			backByFunc[b.Fn] = back
		}
		hotIn := false
		ins = inArcs(b, ins[:0])
		for _, k := range ins {
			if r.ArcTemp[k] == Hot && !back[prog.Edge{From: k.From, To: b}] {
				hotIn = true
				break
			}
		}
		if !hotIn {
			entries = append(entries, b)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	return entries
}
