package region

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/hsd"
	"repro/internal/phasedb"
	"repro/internal/prog"
)

// phaseFor builds a phasedb.Phase from (block, exec, taken) triples using
// the image's terminator addresses.
func phaseFor(t *testing.T, img *prog.Image, recs ...struct {
	b           *prog.Block
	exec, taken uint32
}) *phasedb.Phase {
	t.Helper()
	db := phasedb.New(phasedb.DefaultConfig())
	hsrecs := make([]hsd.BranchRecord, 0, len(recs))
	for _, r := range recs {
		pc, ok := img.TermAddr[r.b]
		if !ok {
			t.Fatalf("block %s has no terminator address", r.b)
		}
		hsrecs = append(hsrecs, hsd.BranchRecord{PC: pc, Exec: r.exec, Taken: r.taken})
	}
	return db.Record(hsd.HotSpot{Branches: hsrecs})
}

type rec = struct {
	b           *prog.Block
	exec, taken uint32
}

func mustImage(t *testing.T, src string) *prog.Image {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Linearize()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// loopSrc: a loop whose backedge branch is profiled; body blocks carry no
// branches and must be inferred Hot; a strongly-cold error path must be
// inferred Cold.
const loopSrc = `
.func main
.main
  li r1, 0
  li r2, 100
loop:
  ld r3, 0(r1)
  beq r3, r2, rare    ; profiled, almost never taken
body:
  addi r1, r1, 1
back:
  blt r1, r2, loop    ; profiled, strongly taken
  halt
rare:
  addi r4, r4, 1
  jmp body
`

func blocks(img *prog.Image, name string) []*prog.Block {
	return img.Prog.FuncByName(name).Blocks
}

func findBranchBlock(t *testing.T, img *prog.Image, fn string, i int) *prog.Block {
	t.Helper()
	n := 0
	for _, b := range blocks(img, fn) {
		if b.Kind == prog.TermBranch {
			if n == i {
				return b
			}
			n++
		}
	}
	t.Fatalf("branch %d not found in %s", i, fn)
	return nil
}

func TestIdentifyLoop(t *testing.T) {
	img := mustImage(t, loopSrc)
	brRare := findBranchBlock(t, img, "main", 0) // beq -> rare
	brBack := findBranchBlock(t, img, "main", 1) // blt -> loop
	ph := phaseFor(t, img,
		rec{brRare, 400, 4},   // 1% taken
		rec{brBack, 400, 396}, // 99% taken
	)
	r, err := Identify(DefaultConfig(), img, ph)
	if err != nil {
		t.Fatal(err)
	}
	if r.ProfiledBranches != 2 || r.UnmappedBranches != 0 {
		t.Fatalf("profiled=%d unmapped=%d", r.ProfiledBranches, r.UnmappedBranches)
	}
	if r.BlockTemp[brRare] != Hot || r.BlockTemp[brBack] != Hot {
		t.Error("profiled branch blocks must be Hot")
	}
	// The body block (addi) carries no branch and must be inferred Hot.
	var body *prog.Block
	for _, b := range blocks(img, "main") {
		if b.Kind == prog.TermFall && b.Next == brBack {
			body = b
		}
	}
	if body == nil {
		t.Fatal("body block not found")
	}
	if r.BlockTemp[body] != Hot {
		t.Errorf("body temp = %v, want hot", r.BlockTemp[body])
	}
	// The rare path: its in-arc is Cold (1% < 25% and weight 4 <= 16), so
	// the block must be inferred Cold.
	rare := brRare.Taken
	if r.BlockTemp[rare] != Cold {
		t.Errorf("rare block temp = %v, want cold", r.BlockTemp[rare])
	}
	// TakenProb recorded.
	if p := r.TakenProb[brBack]; p < 0.98 || p > 1 {
		t.Errorf("taken prob = %v", p)
	}
	if r.NumHot() < 3 {
		t.Errorf("NumHot = %d, want >= 3", r.NumHot())
	}
}

func TestArcTemperatureThresholds(t *testing.T) {
	img := mustImage(t, loopSrc)
	brRare := findBranchBlock(t, img, "main", 0)
	brBack := findBranchBlock(t, img, "main", 1)

	// 20% taken but weight 100 > 16: both directions Hot by weight rule.
	ph := phaseFor(t, img, rec{brRare, 500, 100}, rec{brBack, 500, 495})
	r, err := Identify(DefaultConfig(), img, ph)
	if err != nil {
		t.Fatal(err)
	}
	if r.ArcTemp[ArcKey{brRare, true}] != Hot {
		t.Error("20% direction with weight > threshold should be Hot")
	}

	// 10 execs, 3 taken: 30% fraction >= 25% → Hot despite tiny weight.
	ph2 := phaseFor(t, img, rec{brRare, 10, 3}, rec{brBack, 400, 399})
	r2, err := Identify(DefaultConfig(), img, ph2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ArcTemp[ArcKey{brRare, true}] != Hot {
		t.Error("30% direction should be Hot by fraction")
	}

	// 1% taken with weight 4: Cold.
	ph3 := phaseFor(t, img, rec{brRare, 400, 4}, rec{brBack, 400, 399})
	r3, err := Identify(DefaultConfig(), img, ph3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.ArcTemp[ArcKey{brRare, true}] != Cold {
		t.Error("1% direction with small weight should be Cold")
	}
}

const callSrc = `
.func helper
  addi r5, r5, 1
  ret
.func main
.main
  li r1, 0
  li r2, 50
loop:
  call helper
  addi r1, r1, 1
  blt r1, r2, loop
  halt
`

func TestCallPropagation(t *testing.T) {
	img := mustImage(t, callSrc)
	brBack := findBranchBlock(t, img, "main", 0)
	ph := phaseFor(t, img, rec{brBack, 300, 294})
	r, err := Identify(DefaultConfig(), img, ph)
	if err != nil {
		t.Fatal(err)
	}
	helper := img.Prog.FuncByName("helper")
	if r.BlockTemp[helper.Entry()] != Hot {
		t.Error("callee prologue should be Hot (statement 9)")
	}
	funcs := r.HotFuncs(img.Prog)
	if len(funcs) != 2 {
		t.Errorf("hot funcs = %d, want 2", len(funcs))
	}
	hb := r.HotBlocks()
	if len(hb[helper]) == 0 {
		t.Error("helper has no hot blocks")
	}
}

func TestInferenceDisabledDoesNotCrossMissingBranch(t *testing.T) {
	// Two chained branches; only the first is profiled. With inference ON
	// the second branch block becomes Hot via the hot fall arc; its own
	// out-arcs stay Unknown either way, but with inference OFF the block
	// *after* it must stay Unknown.
	src := `
.func main
.main
  li r1, 0
  li r2, 10
first:
  blt r1, r2, mid
  halt
mid:
  beq r1, r0, far     ; NOT profiled (missing from BBB)
  addi r3, r3, 1
far:
  addi r1, r1, 1
  jmp first
`
	img := mustImage(t, src)
	first := findBranchBlock(t, img, "main", 0)
	mid := findBranchBlock(t, img, "main", 1)
	ph := phaseFor(t, img, rec{first, 100, 90})

	on, err := Identify(DefaultConfig(), img, ph)
	if err != nil {
		t.Fatal(err)
	}
	if on.BlockTemp[mid] != Hot {
		t.Error("inference on: mid should be Hot via hot taken arc")
	}

	cfgOff := DefaultConfig()
	cfgOff.EnableInference = false
	cfgOff.MaxGrowBlocks = 0
	off, err := Identify(cfgOff, img, ph)
	if err != nil {
		t.Fatal(err)
	}
	// mid ends in an unrecorded branch: with inference off the recorded
	// data is treated as complete, so mid stays out of the region (§5.1)
	// and so does everything behind it.
	if off.BlockTemp[mid] == Hot {
		t.Error("inference off: block with unprofiled branch should not be Hot")
	}
	fall := mid.Next
	if off.BlockTemp[fall] == Hot {
		t.Error("inference off: block behind missing branch should not be Hot")
	}
	if on.ArcTemp[ArcKey{mid, false}] != Unknown {
		t.Error("even with inference on, a 2-out-arc block with no info stays unknown")
	}
}

func TestHeuristicGrowthAddsPredecessor(t *testing.T) {
	// pre -> head(profiled branch). pre carries no branch and has no
	// profile; it is only reachable as the region entry's predecessor.
	src := `
.func main
.main
  li r1, 0
  li r2, 10
pre:
  addi r6, r6, 1
head:
  blt r1, r2, body
  halt
body:
  addi r1, r1, 1
  jmp head
`
	img := mustImage(t, src)
	head := findBranchBlock(t, img, "main", 0)
	ph := phaseFor(t, img, rec{head, 100, 90})

	cfg := DefaultConfig()
	r, err := Identify(cfg, img, ph)
	if err != nil {
		t.Fatal(err)
	}
	// pre is head's predecessor: the fall block containing addi r6.
	var pre *prog.Block
	for _, b := range blocks(img, "main") {
		if b.Kind == prog.TermFall && b.Next == head && r.BlockTemp[b] != Unknown {
			// could be body too (jmp head) — body is Hot by inference
		}
	}
	img.Prog.ComputePreds()
	for _, p := range head.Preds() {
		if p.Kind == prog.TermFall && p.Next == head && len(p.Insts) == 1 && p != head {
			// both body and pre match shape; distinguish by instruction reg
			if p.Insts[0].Rd == 6 {
				pre = p
			}
		}
	}
	if pre == nil {
		t.Fatal("pre block not found")
	}
	if r.BlockTemp[pre] != Hot {
		t.Errorf("growth should add pre block, temp = %v", r.BlockTemp[pre])
	}
	if r.GrownBlocks == 0 {
		t.Error("GrownBlocks not counted")
	}

	// With MaxGrowBlocks = 0 the pre block stays out.
	cfg0 := DefaultConfig()
	cfg0.MaxGrowBlocks = 0
	r0, err := Identify(cfg0, img, ph)
	if err != nil {
		t.Fatal(err)
	}
	if r0.BlockTemp[pre] == Hot {
		t.Error("growth disabled but pre block became Hot")
	}
}

func TestGrowthAvoidsColdPaths(t *testing.T) {
	// The entry's predecessor arc is Cold (profiled rare direction): the
	// predecessor must not be pulled in by growth.
	src := `
.func main
.main
  li r1, 0
  li r2, 10
gate:
  beq r1, r2, target   ; profiled: almost never taken
  addi r1, r1, 1
  jmp gate
target:
  addi r5, r5, 1
back:
  blt r5, r2, target   ; profiled hot loop
  halt
`
	img := mustImage(t, src)
	gate := findBranchBlock(t, img, "main", 0)
	back := findBranchBlock(t, img, "main", 1)
	ph := phaseFor(t, img, rec{gate, 500, 2}, rec{back, 500, 490})
	r, err := Identify(DefaultConfig(), img, ph)
	if err != nil {
		t.Fatal(err)
	}
	// target is hot (back's taken arc). Its in-arc from gate is Cold; gate
	// remains in the region only because its own branch was profiled.
	if r.ArcTemp[ArcKey{gate, true}] != Cold {
		t.Error("gate->target arc should be Cold")
	}
}

func TestUnknownArcBetweenHotBlocksIncluded(t *testing.T) {
	// Diamond where both sides are hot via their own profiled branches,
	// and the join arc has no profile: growth step 1 marks it Hot.
	src := `
.func main
.main
  li r1, 0
  li r2, 10
head:
  blt r1, r2, left
right:
  addi r3, r3, 2
  jmp join
left:
  addi r3, r3, 1
join:
  addi r1, r1, 1
tail:
  blt r1, r2, head
  halt
`
	img := mustImage(t, src)
	head := findBranchBlock(t, img, "main", 0)
	tail := findBranchBlock(t, img, "main", 1)
	ph := phaseFor(t, img, rec{head, 200, 100}, rec{tail, 200, 190})
	r, err := Identify(DefaultConfig(), img, ph)
	if err != nil {
		t.Fatal(err)
	}
	// left block: target of head's taken arc (50% -> Hot).
	left := head.Taken
	if r.BlockTemp[left] != Hot {
		t.Fatal("left should be hot")
	}
	join := left.Next
	if r.BlockTemp[join] != Hot {
		t.Fatal("join should be hot")
	}
	if r.ArcTemp[ArcKey{left, false}] != Hot {
		t.Error("left->join arc should be included (hot)")
	}
}

func TestIdentifyErrors(t *testing.T) {
	img := mustImage(t, loopSrc)
	db := phasedb.New(phasedb.DefaultConfig())
	// Phase whose PC maps to nothing.
	ph := db.Record(hsd.HotSpot{Branches: []hsd.BranchRecord{{PC: 99999, Exec: 10, Taken: 5}}})
	if _, err := Identify(DefaultConfig(), img, ph); err == nil {
		t.Error("expected error for unmappable phase")
	}
}

func TestTempString(t *testing.T) {
	if Unknown.String() != "unknown" || Hot.String() != "hot" || Cold.String() != "cold" {
		t.Error("Temp strings wrong")
	}
}

func TestOutArcs(t *testing.T) {
	img := mustImage(t, loopSrc)
	br := findBranchBlock(t, img, "main", 0)
	arcs := OutArcs(br, nil)
	if len(arcs) != 2 {
		t.Fatalf("branch out arcs = %d, want 2", len(arcs))
	}
	if arcs[0].Dest() != br.Taken || arcs[1].Dest() != br.Next {
		t.Error("arc destinations wrong")
	}
	halt := &prog.Block{Kind: prog.TermHalt}
	if got := OutArcs(halt, nil); len(got) != 0 {
		t.Error("halt should have no out arcs")
	}
}
