// Package lint implements the repository's custom static checks, run over
// every package by cmd/vplint (a go vet -vettool). Two rules:
//
//	lint/insts-mutation — prog.Block.Insts is assigned, element-assigned or
//	    rebuilt outside internal/prog, internal/opt and internal/pack. The
//	    instruction list is owned by the IR and its transformation passes;
//	    everyone else must treat it as read-only or the verifier's
//	    certificates (opt.PassRecord) go stale silently.
//
//	lint/dropped-observer — a function takes a non-blank obs.Observer
//	    parameter and never uses it. An accepted-then-ignored observer
//	    silently truncates the trace for every caller upstream; either
//	    forward it or make the parameter blank to document the drop.
//
//	lint/mutate-after-hash — a field of an artifact (internal/core) or IR
//	    value (prog.Func, prog.Block) is assigned after the same variable's
//	    content hash was taken with Hash() or EncodeJSON() in the same
//	    function. The hash no longer describes the value: a store keyed by
//	    it serves stale bytes, and an equivalence certificate attached to
//	    it attests to code that no longer exists. Take the hash last, or
//	    re-take it after the mutation.
//
// The analysis is purely syntactic + type-based over one package at a
// time, so it slots into the vet unitchecker protocol without needing
// facts from dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos  token.Pos
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Rule, d.Msg)
}

// instsOwners are the package-path suffixes allowed to mutate
// prog.Block.Insts: the IR itself and the two transformation layers.
var instsOwners = []string{"internal/prog", "internal/opt", "internal/pack"}

// Analyze runs both rules over one typechecked package and returns the
// findings. pkgPath is the package's import path (used to exempt the
// Insts owners); info must have Uses, Defs, Types and Selections filled.
func Analyze(fset *token.FileSet, files []*ast.File, info *types.Info, pkgPath string) []Diagnostic {
	var diags []Diagnostic
	mayMutate := false
	for _, own := range instsOwners {
		if strings.HasSuffix(pkgPath, own) {
			mayMutate = true
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if mayMutate {
					return true
				}
				for _, lhs := range n.Lhs {
					if sel, ok := instsTarget(lhs, info); ok {
						diags = append(diags, Diagnostic{
							Pos:  sel.Sel.Pos(),
							Rule: "lint/insts-mutation",
							Msg:  "prog.Block.Insts mutated outside internal/prog, internal/opt and internal/pack",
						})
					}
				}
			case *ast.FuncDecl:
				diags = append(diags, droppedObservers(n, info)...)
				diags = append(diags, mutatedAfterHash(n, info)...)
			}
			return true
		})
	}
	return diags
}

// hashedPkgs are the package-path suffixes whose named types carry
// content hashes: the IR (hashed into ProgramHash/ImageHash) and the
// artifact layer (Hash()/EncodeJSON() feed the store keys and the
// equivalence certificates).
var hashedPkgs = []string{"internal/prog", "internal/core"}

// isHashed reports whether t (or *t) is a named type from one of the
// hash-carrying packages, matching by path suffix so tests can use stub
// packages.
func isHashed(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	for _, pkg := range hashedPkgs {
		if strings.HasSuffix(obj.Pkg().Path(), pkg) {
			return true
		}
	}
	return false
}

// baseVar unwraps an expression through index, slice, paren and selector
// steps to the variable it reads or writes through, returning nil when
// the base is not a plain identifier. For `pa.Phases[i].X` it returns pa.
func baseVar(e ast.Expr, info *types.Info) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// mutatedAfterHash flags field writes through a hashed-type variable at a
// position after the same variable's Hash() or EncodeJSON() call in fn.
// The ordering is positional — good enough for straight-line build code,
// where this bug class lives; a loop that hashes then mutates on the next
// iteration is equally wrong and also caught.
func mutatedAfterHash(fn *ast.FuncDecl, info *types.Info) []Diagnostic {
	if fn.Body == nil {
		return nil
	}
	hashed := map[*types.Var]ast.Node{} // var -> earliest hash-taking call
	mark := func(v *types.Var, call *ast.CallExpr) {
		if v == nil || !isHashed(v.Type()) {
			return
		}
		if prev, ok := hashed[v]; !ok || call.Pos() < prev.Pos() {
			hashed[v] = call
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch f := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = f.Sel.Name
			if name == "Hash" || name == "EncodeJSON" {
				// Method form: pa.Hash(), set.EncodeJSON(w).
				mark(baseVar(f.X, info), call)
			}
		case *ast.Ident:
			name = f.Name
		}
		// Free-function form: ImageHash(img) and friends take the value
		// to digest as an argument.
		if name == "Hash" || name == "ImageHash" || name == "EncodeJSON" {
			for _, arg := range call.Args {
				mark(baseVar(arg, info), call)
			}
		}
		return true
	})
	if len(hashed) == 0 {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			// Rebinding the variable itself (`pa = ...`) is fine — the
			// old hashed value is unchanged. Only writes through it count.
			if _, isIdent := lhs.(*ast.Ident); isIdent {
				continue
			}
			v := baseVar(lhs, info)
			if v == nil {
				continue
			}
			if call, ok := hashed[v]; ok && lhs.Pos() > call.Pos() {
				diags = append(diags, Diagnostic{
					Pos:  lhs.Pos(),
					Rule: "lint/mutate-after-hash",
					Msg: fmt.Sprintf("%q is mutated after its content hash was taken in %s; the hash and any certificate keyed by it are now stale",
						v.Name(), fn.Name.Name),
				})
			}
		}
		return true
	})
	return diags
}

// instsTarget reports whether lhs writes through a selector
// <block>.Insts where <block> has the prog.Block named type. Element
// and slice writes (b.Insts[i] = ..., b.Insts[i:j]) unwrap to the same
// selector.
func instsTarget(lhs ast.Expr, info *types.Info) (*ast.SelectorExpr, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if e.Sel.Name != "Insts" {
				return nil, false
			}
			if isProgBlock(info.TypeOf(e.X)) {
				return e, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// isProgBlock reports whether t is prog.Block or *prog.Block, matching
// the defining package by path suffix so tests can use stub packages.
func isProgBlock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Block" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/prog")
}

// isObserver reports whether t is the obs.Observer interface.
func isObserver(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Observer" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// droppedObservers flags fn's non-blank obs.Observer parameters that the
// body never reads.
func droppedObservers(fn *ast.FuncDecl, info *types.Info) []Diagnostic {
	if fn.Body == nil || fn.Type.Params == nil {
		return nil
	}
	var params []*types.Var
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := info.Defs[name].(*types.Var)
			if !ok || !isObserver(obj.Type()) {
				continue
			}
			params = append(params, obj)
		}
	}
	if len(params) == 0 {
		return nil
	}
	used := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			used[v] = true
		}
		return true
	})
	var diags []Diagnostic
	for _, p := range params {
		if !used[p] {
			diags = append(diags, Diagnostic{
				Pos:  p.Pos(),
				Rule: "lint/dropped-observer",
				Msg: fmt.Sprintf("observer parameter %q of %s is never used; forward it or make it blank",
					p.Name(), fn.Name.Name),
			})
		}
	}
	return diags
}
