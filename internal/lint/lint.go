// Package lint implements the repository's custom static checks, run over
// every package by cmd/vplint (a go vet -vettool). Two rules:
//
//	lint/insts-mutation — prog.Block.Insts is assigned, element-assigned or
//	    rebuilt outside internal/prog, internal/opt and internal/pack. The
//	    instruction list is owned by the IR and its transformation passes;
//	    everyone else must treat it as read-only or the verifier's
//	    certificates (opt.PassRecord) go stale silently.
//
//	lint/dropped-observer — a function takes a non-blank obs.Observer
//	    parameter and never uses it. An accepted-then-ignored observer
//	    silently truncates the trace for every caller upstream; either
//	    forward it or make the parameter blank to document the drop.
//
// The analysis is purely syntactic + type-based over one package at a
// time, so it slots into the vet unitchecker protocol without needing
// facts from dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos  token.Pos
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s", d.Rule, d.Msg)
}

// instsOwners are the package-path suffixes allowed to mutate
// prog.Block.Insts: the IR itself and the two transformation layers.
var instsOwners = []string{"internal/prog", "internal/opt", "internal/pack"}

// Analyze runs both rules over one typechecked package and returns the
// findings. pkgPath is the package's import path (used to exempt the
// Insts owners); info must have Uses, Defs, Types and Selections filled.
func Analyze(fset *token.FileSet, files []*ast.File, info *types.Info, pkgPath string) []Diagnostic {
	var diags []Diagnostic
	mayMutate := false
	for _, own := range instsOwners {
		if strings.HasSuffix(pkgPath, own) {
			mayMutate = true
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if mayMutate {
					return true
				}
				for _, lhs := range n.Lhs {
					if sel, ok := instsTarget(lhs, info); ok {
						diags = append(diags, Diagnostic{
							Pos:  sel.Sel.Pos(),
							Rule: "lint/insts-mutation",
							Msg:  "prog.Block.Insts mutated outside internal/prog, internal/opt and internal/pack",
						})
					}
				}
			case *ast.FuncDecl:
				diags = append(diags, droppedObservers(n, info)...)
			}
			return true
		})
	}
	return diags
}

// instsTarget reports whether lhs writes through a selector
// <block>.Insts where <block> has the prog.Block named type. Element
// and slice writes (b.Insts[i] = ..., b.Insts[i:j]) unwrap to the same
// selector.
func instsTarget(lhs ast.Expr, info *types.Info) (*ast.SelectorExpr, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.SliceExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.SelectorExpr:
			if e.Sel.Name != "Insts" {
				return nil, false
			}
			if isProgBlock(info.TypeOf(e.X)) {
				return e, true
			}
			return nil, false
		default:
			return nil, false
		}
	}
}

// isProgBlock reports whether t is prog.Block or *prog.Block, matching
// the defining package by path suffix so tests can use stub packages.
func isProgBlock(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Block" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/prog")
}

// isObserver reports whether t is the obs.Observer interface.
func isObserver(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Observer" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/obs")
}

// droppedObservers flags fn's non-blank obs.Observer parameters that the
// body never reads.
func droppedObservers(fn *ast.FuncDecl, info *types.Info) []Diagnostic {
	if fn.Body == nil || fn.Type.Params == nil {
		return nil
	}
	var params []*types.Var
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj, ok := info.Defs[name].(*types.Var)
			if !ok || !isObserver(obj.Type()) {
				continue
			}
			params = append(params, obj)
		}
	}
	if len(params) == 0 {
		return nil
	}
	used := make(map[*types.Var]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok {
			used[v] = true
		}
		return true
	})
	var diags []Diagnostic
	for _, p := range params {
		if !used[p] {
			diags = append(diags, Diagnostic{
				Pos:  p.Pos(),
				Rule: "lint/dropped-observer",
				Msg: fmt.Sprintf("observer parameter %q of %s is never used; forward it or make it blank",
					p.Name(), fn.Name.Name),
			})
		}
	}
	return diags
}
